package asmx

import (
	"bytes"
	"testing"

	"github.com/funseeker/funseeker/internal/x86"
)

// decodeOne decodes the first instruction of code.
func decodeOne(t *testing.T, code []byte, mode x86.Mode) x86.Inst {
	t.Helper()
	inst, err := x86.Decode(code, 0x1000, mode)
	if err != nil {
		t.Fatalf("decode % x: %v", code, err)
	}
	return inst
}

func TestArithRegRegEncodings(t *testing.T) {
	tests := []struct {
		name string
		emit func(*Builder)
		want []byte
	}{
		{"add", func(b *Builder) { b.AddRegReg(RAX, RCX) }, []byte{0x48, 0x01, 0xC8}},
		{"sub", func(b *Builder) { b.SubRegReg(RDX, RBX) }, []byte{0x48, 0x29, 0xDA}},
		{"or", func(b *Builder) { b.OrRegReg(RSI, RDI) }, []byte{0x48, 0x09, 0xFE}},
		{"and", func(b *Builder) { b.AndRegReg(RAX, R8) }, []byte{0x4C, 0x21, 0xC0}},
		{"cmp", func(b *Builder) { b.CmpRegReg(RCX, RDX) }, []byte{0x48, 0x39, 0xD1}},
		{"imul", func(b *Builder) { b.ImulRegReg(RAX, RCX) }, []byte{0x48, 0x0F, 0xAF, 0xC1}},
		{"shl", func(b *Builder) { b.ShlImm(RAX, 4) }, []byte{0x48, 0xC1, 0xE0, 0x04}},
		{"sar", func(b *Builder) { b.SarImm(RDX, 2) }, []byte{0x48, 0xC1, 0xFA, 0x02}},
		{"and-imm", func(b *Builder) { b.AndImm(RCX, 0xFF) }, []byte{0x48, 0x81, 0xE1, 0xFF, 0x00, 0x00, 0x00}},
		{"cmp-imm8", func(b *Builder) { b.CmpImm(RAX, 5) }, []byte{0x48, 0x83, 0xF8, 0x05}},
		{"movsxd", func(b *Builder) { b.Movsxd(RCX, RAX) }, []byte{0x48, 0x63, 0xC8}},
		{"push-imm32", func(b *Builder) { b.PushImm32(0x11223344) }, []byte{0x68, 0x44, 0x33, 0x22, 0x11}},
		{"ud2", func(b *Builder) { b.Ud2() }, []byte{0x0F, 0x0B}},
		{"hlt", func(b *Builder) { b.Hlt() }, []byte{0xF4}},
		{"int3", func(b *Builder) { b.Int3() }, []byte{0xCC}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := New(x86.Mode64)
			tt.emit(b)
			code, err := b.Finalize(0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(code, tt.want) {
				t.Fatalf("encoded % x, want % x", code, tt.want)
			}
		})
	}
}

func TestMovsxdRegMemSIB(t *testing.T) {
	b := New(x86.Mode64)
	b.MovsxdRegMemSIB(RCX, RDX, RAX)
	code, err := b.Finalize(0)
	if err != nil {
		t.Fatal(err)
	}
	// movsxd rcx, dword [rdx+rax*4] = 48 63 0C 82
	if !bytes.Equal(code, []byte{0x48, 0x63, 0x0C, 0x82}) {
		t.Fatalf("encoded % x", code)
	}
	// Error paths.
	b = New(x86.Mode32)
	b.MovsxdRegMemSIB(RCX, RDX, RAX)
	if _, err := b.Finalize(0); err == nil {
		t.Error("movsxd in 32-bit mode must fail")
	}
	b = New(x86.Mode64)
	b.MovsxdRegMemSIB(RCX, RBP, RAX)
	if _, err := b.Finalize(0); err == nil {
		t.Error("rbp base must fail (needs displacement)")
	}
	b = New(x86.Mode64)
	b.MovsxdRegMemSIB(RCX, RDX, RSP)
	if _, err := b.Finalize(0); err == nil {
		t.Error("rsp index must fail")
	}
}

func TestPltJmpEncodings(t *testing.T) {
	// 64-bit: RIP-relative jmp through the GOT slot.
	b := New(x86.Mode64)
	b.PltJmp("got.x")
	b.SetExtern("got.x", 0x404018)
	code, err := b.Finalize(0x401000)
	if err != nil {
		t.Fatal(err)
	}
	inst := decodeOne(t, code, x86.Mode64)
	if inst.Class != x86.ClassJmpInd || !inst.HasRIPRef {
		t.Fatalf("plt jmp64 decoded as %v", inst.Class)
	}
	// RIPRef computed against the decode address 0x1000, so re-decode at
	// the real base.
	inst2, err := x86.Decode(code, 0x401000, x86.Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if inst2.RIPRef != 0x404018 {
		t.Fatalf("RIPRef = %#x", inst2.RIPRef)
	}
	// 32-bit: absolute-disp jmp.
	b = New(x86.Mode32)
	b.PltJmp("got.x")
	b.SetExtern("got.x", 0x804c018)
	code, err = b.Finalize(0x8049000)
	if err != nil {
		t.Fatal(err)
	}
	inst = decodeOne(t, code, x86.Mode32)
	if inst.Class != x86.ClassJmpInd || !inst.HasMemDisp || inst.MemDisp != 0x804c018 {
		t.Fatalf("plt jmp32 = %+v", inst)
	}
}

func TestMemoryAddressingForms(t *testing.T) {
	// MovRegMemRIPLabel (64-bit only).
	b := New(x86.Mode64)
	b.MovRegMemRIPLabel(RAX, "lit")
	b.Ret()
	b.Label("lit")
	code, err := b.Finalize(0x2000)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := x86.Decode(code, 0x2000, x86.Mode64)
	if err != nil {
		t.Fatal(err)
	}
	// "lit" sits at the end of the emitted code.
	if !inst.HasRIPRef || inst.RIPRef != 0x2000+uint64(len(code)) {
		t.Fatalf("rip load: %+v (code % x)", inst, code)
	}
	b = New(x86.Mode32)
	b.MovRegMemRIPLabel(RAX, "x")
	if _, err := b.Finalize(0); err == nil {
		t.Error("RIP-relative mov must fail in 32-bit mode")
	}
	// MovRegMemAbsLabel (32-bit only).
	b = New(x86.Mode32)
	b.MovRegMemAbsLabel(RAX, "g")
	b.SetExtern("g", 0x804a000)
	code, err = b.Finalize(0x8049000)
	if err != nil {
		t.Fatal(err)
	}
	inst = decodeOne(t, code, x86.Mode32)
	if !inst.HasMemDisp || inst.MemDisp != 0x804a000 {
		t.Fatalf("abs load: %+v", inst)
	}
	b = New(x86.Mode64)
	b.MovRegMemAbsLabel(RAX, "g")
	if _, err := b.Finalize(0); err == nil {
		t.Error("abs-disp mov must fail in 64-bit mode")
	}
	// MovRegImmLabel (32-bit only).
	b = New(x86.Mode32)
	b.MovRegImmLabel(RCX, "f")
	b.SetExtern("f", 0x8049123)
	code, err = b.Finalize(0x8049000)
	if err != nil {
		t.Fatal(err)
	}
	inst = decodeOne(t, code, x86.Mode32)
	if uint32(inst.Imm) != 0x8049123 {
		t.Fatalf("imm label = %#x", uint32(inst.Imm))
	}
}

func TestMemOperandEdgeBases(t *testing.T) {
	// RSP base always needs a SIB; RBP base with zero displacement needs
	// a disp8; R12/R13 mirror them with REX.B.
	cases := []struct {
		name string
		emit func(*Builder)
	}{
		{"rsp-base", func(b *Builder) { b.MovRegMem(RAX, RSP, 0) }},
		{"rbp-base-zero", func(b *Builder) { b.MovRegMem(RAX, RBP, 0) }},
		{"r12-base", func(b *Builder) { b.MovRegMem(RAX, R12, 8) }},
		{"r13-base-zero", func(b *Builder) { b.MovRegMem(RAX, R13, 0) }},
		{"large-disp", func(b *Builder) { b.MovMemReg(RBX, 0x1234, RCX) }},
		{"neg-large-disp", func(b *Builder) { b.LeaMem(RDX, RSI, -0x200) }},
		{"call-ind-r12", func(b *Builder) { b.CallIndMem(R12, 0x10) }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			b := New(x86.Mode64)
			tt.emit(b)
			code, err := b.Finalize(0)
			if err != nil {
				t.Fatal(err)
			}
			inst := decodeOne(t, code, x86.Mode64)
			if inst.Len != len(code) {
				t.Fatalf("decoder len %d != emitted %d (% x)", inst.Len, len(code), code)
			}
		})
	}
}

func TestBuilderMiscAPI(t *testing.T) {
	b := New(x86.Mode64)
	if b.Mode() != x86.Mode64 {
		t.Error("Mode() wrong")
	}
	b.Label("x")
	if !b.HasLabel("x") || b.HasLabel("y") {
		t.Error("HasLabel wrong")
	}
	b.Ret()
	if off, ok := b.LabelOffset("x"); !ok || off != 0 {
		t.Errorf("LabelOffset = (%d, %v)", off, ok)
	}
	if b.Offset() != 1 {
		t.Errorf("Offset = %d", b.Offset())
	}
	if b.Err() != nil {
		t.Errorf("Err = %v", b.Err())
	}
	if _, err := b.Addr("x"); err == nil {
		t.Error("Addr before Finalize must fail")
	}
	if _, err := b.Finalize(0x100); err != nil {
		t.Fatal(err)
	}
	if b.MustAddr("x") != 0x100 {
		t.Error("MustAddr wrong")
	}
	if b.MustAddr("missing") != 0 || b.Err() == nil {
		t.Error("MustAddr on missing label should record an error")
	}
}

func TestBadRegisterRejected(t *testing.T) {
	b := New(x86.Mode64)
	b.Push(Reg(99))
	if _, err := b.Finalize(0); err == nil {
		t.Error("register 99 must fail")
	}
	if Reg(99).String() == "" {
		t.Error("bad register must still render")
	}
	if RAX.String() != "rax" || R15.String() != "r15" {
		t.Error("register names changed")
	}
}

func TestRel32Overflow(t *testing.T) {
	b := New(x86.Mode64)
	b.Jmp("far")
	b.SetExtern("far", 1<<40)
	if _, err := b.Finalize(0); err == nil {
		t.Error("rel32 overflow must fail")
	}
}

func TestJmpIndMemScaledIn64Fails(t *testing.T) {
	b := New(x86.Mode64)
	b.JmpIndMemScaled(RAX, "t", true)
	if _, err := b.Finalize(0); err == nil {
		t.Error("absolute scaled jmp must fail in 64-bit mode")
	}
}
