// Package asmx implements a small x86 / x86-64 instruction encoder and a
// label-aware code builder. It is the code-generation backend of the
// synthetic CET-enabled compiler in internal/synth.
//
// The Builder appends instruction encodings to a growing buffer, records
// symbolic label definitions and references, and patches all relative and
// absolute fixups once the final load address of the buffer is known
// (Finalize). Encoding errors are sticky: the first error disables further
// emission and is reported by Finalize, so straight-line generation code
// does not need to check every call.
package asmx

import (
	"errors"
	"fmt"

	"github.com/funseeker/funseeker/internal/x86"
)

// Reg is a general-purpose register number in the standard x86 encoding
// order. The same numbers name RAX/EAX/AX depending on operand width.
type Reg uint8

// General-purpose registers.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

var regNames = [16]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// String returns the canonical 64-bit name of the register.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("reg%d", uint8(r))
}

// low3 returns the low 3 bits used in ModRM/opcode fields.
func (r Reg) low3() byte { return byte(r) & 7 }

// isExt reports whether the register needs a REX extension bit.
func (r Reg) isExt() bool { return r >= R8 }

// Cond is a condition code for conditional jumps (the low nibble of the
// 0F 8x opcode).
type Cond uint8

// Condition codes.
const (
	CondO  Cond = 0x0
	CondNO Cond = 0x1
	CondB  Cond = 0x2
	CondAE Cond = 0x3
	CondE  Cond = 0x4
	CondNE Cond = 0x5
	CondBE Cond = 0x6
	CondA  Cond = 0x7
	CondS  Cond = 0x8
	CondNS Cond = 0x9
	CondP  Cond = 0xA
	CondNP Cond = 0xB
	CondL  Cond = 0xC
	CondGE Cond = 0xD
	CondLE Cond = 0xE
	CondG  Cond = 0xF
)

// fixKind discriminates fixup flavours.
type fixKind uint8

const (
	// fixRel32 is a 4-byte displacement relative to the end of the field.
	fixRel32 fixKind = iota
	// fixAbs32 is a 4-byte absolute virtual address.
	fixAbs32
	// fixAbs64 is an 8-byte absolute virtual address.
	fixAbs64
)

// fixup is a pending patch of a label reference.
type fixup struct {
	off    int // buffer offset of the field
	kind   fixKind
	label  string
	addend int64
}

// Builder accumulates encoded instructions and label fixups for one
// contiguous code region (a section).
type Builder struct {
	mode    x86.Mode
	buf     []byte
	labels  map[string]int // label -> buffer offset
	externs map[string]uint64
	fixups  []fixup
	err     error

	base      uint64
	finalized bool
}

// New returns an empty Builder for the given mode.
func New(mode x86.Mode) *Builder {
	return &Builder{
		mode:    mode,
		labels:  make(map[string]int),
		externs: make(map[string]uint64),
	}
}

// Mode returns the builder's decode/encode mode.
func (b *Builder) Mode() x86.Mode { return b.mode }

// Size returns the number of bytes emitted so far. Fixup resolution never
// changes the size.
func (b *Builder) Size() int { return len(b.buf) }

// Err returns the first encoding error, if any.
func (b *Builder) Err() error { return b.err }

// fail records the first error.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Label defines name at the current offset. Defining the same label twice
// is an error.
func (b *Builder) Label(name string) {
	if b.err != nil {
		return
	}
	if _, dup := b.labels[name]; dup {
		b.fail("asmx: duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.buf)
}

// HasLabel reports whether name has been defined as a local label.
func (b *Builder) HasLabel(name string) bool {
	_, ok := b.labels[name]
	return ok
}

// LabelOffset returns the buffer offset of a defined label.
func (b *Builder) LabelOffset(name string) (int, bool) {
	off, ok := b.labels[name]
	return off, ok
}

// SetExtern assigns an absolute virtual address to an external label so
// references to it can be resolved at Finalize.
func (b *Builder) SetExtern(name string, va uint64) {
	b.externs[name] = va
}

// Offset returns the current emission offset; useful for recording
// function boundaries.
func (b *Builder) Offset() int { return len(b.buf) }

// resolve returns the virtual address of a label after base assignment.
func (b *Builder) resolve(name string) (uint64, error) {
	if off, ok := b.labels[name]; ok {
		return b.base + uint64(off), nil
	}
	if va, ok := b.externs[name]; ok {
		return va, nil
	}
	return 0, fmt.Errorf("asmx: undefined label %q", name)
}

// Finalize assigns the load address, patches all fixups, and returns the
// encoded bytes. The Builder must not be modified afterwards.
func (b *Builder) Finalize(base uint64) ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.finalized {
		return nil, errors.New("asmx: Finalize called twice")
	}
	b.base = base
	for _, f := range b.fixups {
		target, err := b.resolve(f.label)
		if err != nil {
			return nil, err
		}
		target = uint64(int64(target) + f.addend)
		switch f.kind {
		case fixRel32:
			rel := int64(target) - int64(base+uint64(f.off)+4)
			if rel > 0x7FFFFFFF || rel < -0x80000000 {
				return nil, fmt.Errorf("asmx: rel32 overflow to %q", f.label)
			}
			putU32(b.buf[f.off:], uint32(rel))
		case fixAbs32:
			if b.mode == x86.Mode32 && target > 0xFFFFFFFF {
				return nil, fmt.Errorf("asmx: abs32 overflow to %q", f.label)
			}
			putU32(b.buf[f.off:], uint32(target))
		case fixAbs64:
			putU64(b.buf[f.off:], target)
		}
	}
	b.finalized = true
	return b.buf, nil
}

// Addr returns the resolved virtual address of a label. Valid only after
// Finalize.
func (b *Builder) Addr(name string) (uint64, error) {
	if !b.finalized {
		return 0, errors.New("asmx: Addr before Finalize")
	}
	return b.resolve(name)
}

// MustAddr is Addr for labels the caller knows exist; it reports the error
// via the sticky error instead of returning it.
func (b *Builder) MustAddr(name string) uint64 {
	va, err := b.Addr(name)
	if err != nil {
		// Finalize already succeeded; an undefined label here is a
		// caller bug. Record it so tests surface the problem.
		if b.err == nil {
			b.err = err
		}
		return 0
	}
	return va
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

// emit appends raw bytes.
func (b *Builder) emit(bs ...byte) {
	if b.err != nil {
		return
	}
	b.buf = append(b.buf, bs...)
}

// emitU32 appends a little-endian 32-bit value.
func (b *Builder) emitU32(v uint32) {
	b.emit(byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// is64 reports 64-bit mode.
func (b *Builder) is64() bool { return b.mode == x86.Mode64 }

// checkReg validates register availability in the current mode.
func (b *Builder) checkReg(rs ...Reg) bool {
	for _, r := range rs {
		if r > R15 {
			b.fail("asmx: bad register %d", r)
			return false
		}
		if !b.is64() && r.isExt() {
			b.fail("asmx: register %v unavailable in 32-bit mode", r)
			return false
		}
	}
	return b.err == nil
}

// rex emits a REX prefix for 64-bit operand size with the given extension
// bits, or nothing in 32-bit mode.
func (b *Builder) rex(w bool, rReg, xReg, bReg Reg) {
	if !b.is64() {
		return
	}
	var p byte = 0x40
	if w {
		p |= 8
	}
	if rReg.isExt() {
		p |= 4
	}
	if xReg.isExt() {
		p |= 2
	}
	if bReg.isExt() {
		p |= 1
	}
	if p == 0x40 {
		return // no REX bits needed; keep the encoding canonical
	}
	b.emit(p)
}

// modRM emits a ModRM byte.
func (b *Builder) modRM(mod byte, reg, rm byte) {
	b.emit(mod<<6 | (reg&7)<<3 | rm&7)
}

// memOperand emits ModRM (+SIB, +disp) for [base+disp] with the given
// /reg field. RSP/R12 bases need a SIB byte; RBP/R13 bases need a
// displacement even when zero.
func (b *Builder) memOperand(regField byte, base Reg, disp int32) {
	needsSIB := base.low3() == 4 // rsp/r12
	var mod byte
	switch {
	case disp == 0 && base.low3() != 5:
		mod = 0
	case disp >= -128 && disp <= 127:
		mod = 1
	default:
		mod = 2
	}
	if needsSIB {
		b.modRM(mod, regField, 4)
		b.emit(0x24) // scale=1, index=none, base=rsp/r12
	} else {
		b.modRM(mod, regField, base.low3())
	}
	switch mod {
	case 1:
		b.emit(byte(disp))
	case 2:
		b.emitU32(uint32(disp))
	}
}
