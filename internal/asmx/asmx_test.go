package asmx

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/funseeker/funseeker/internal/x86"
)

// finalizeAt builds and finalizes at the given base, failing the test on
// error.
func finalizeAt(t *testing.T, b *Builder, base uint64) []byte {
	t.Helper()
	code, err := b.Finalize(base)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return code
}

// sweepClean decodes the produced code and fails on any decode error.
func sweepClean(t *testing.T, code []byte, base uint64, mode x86.Mode) []x86.Inst {
	t.Helper()
	var insts []x86.Inst
	off := 0
	for off < len(code) {
		inst, err := x86.Decode(code[off:], base+uint64(off), mode)
		if err != nil {
			t.Fatalf("decode error at offset %d (byte %#02x): %v", off, code[off], err)
		}
		insts = append(insts, inst)
		off += inst.Len
	}
	return insts
}

func TestEndbrEncoding(t *testing.T) {
	b64 := New(x86.Mode64)
	b64.Endbr()
	code := finalizeAt(t, b64, 0)
	if !bytes.Equal(code, []byte{0xF3, 0x0F, 0x1E, 0xFA}) {
		t.Fatalf("endbr64 = % x", code)
	}
	b32 := New(x86.Mode32)
	b32.Endbr()
	code = finalizeAt(t, b32, 0)
	if !bytes.Equal(code, []byte{0xF3, 0x0F, 0x1E, 0xFB}) {
		t.Fatalf("endbr32 = % x", code)
	}
}

func TestKnownEncodings64(t *testing.T) {
	tests := []struct {
		name string
		emit func(*Builder)
		want []byte
	}{
		{"push-rbp", func(b *Builder) { b.Push(RBP) }, []byte{0x55}},
		{"push-r12", func(b *Builder) { b.Push(R12) }, []byte{0x41, 0x54}},
		{"pop-rbp", func(b *Builder) { b.Pop(RBP) }, []byte{0x5D}},
		{"mov-rbp-rsp", func(b *Builder) { b.MovRegReg(RBP, RSP) }, []byte{0x48, 0x89, 0xE5}},
		{"mov-eax-1", func(b *Builder) { b.MovRegImm32(RAX, 1) }, []byte{0xB8, 0x01, 0x00, 0x00, 0x00}},
		{"sub-rsp-16", func(b *Builder) { b.SubImm(RSP, 16) }, []byte{0x48, 0x83, 0xEC, 0x10}},
		{"sub-rsp-256", func(b *Builder) { b.SubImm(RSP, 256) }, []byte{0x48, 0x81, 0xEC, 0x00, 0x01, 0x00, 0x00}},
		{"xor-eax", func(b *Builder) { b.XorRegReg(RAX, RAX) }, []byte{0x48, 0x31, 0xC0}},
		{"ret", func(b *Builder) { b.Ret() }, []byte{0xC3}},
		{"leave", func(b *Builder) { b.Leave() }, []byte{0xC9}},
		{"mov-mem-rbp-8", func(b *Builder) { b.MovMemReg(RBP, -8, RAX) }, []byte{0x48, 0x89, 0x45, 0xF8}},
		{"mov-from-rsp", func(b *Builder) { b.MovRegMem(RAX, RSP, 8) }, []byte{0x48, 0x8B, 0x44, 0x24, 0x08}},
		{"call-ind-rbp-16", func(b *Builder) { b.CallIndMem(RBP, -16) }, []byte{0xFF, 0x55, 0xF0}},
		{"notrack-jmp-rdx", func(b *Builder) { b.JmpIndReg(RDX, true) }, []byte{0x3E, 0xFF, 0xE2}},
		{"jmp-rax", func(b *Builder) { b.JmpIndReg(RAX, false) }, []byte{0xFF, 0xE0}},
		{"call-ind-r11", func(b *Builder) { b.CallIndReg(R11) }, []byte{0x41, 0xFF, 0xD3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := New(x86.Mode64)
			tt.emit(b)
			code := finalizeAt(t, b, 0)
			if !bytes.Equal(code, tt.want) {
				t.Fatalf("encoded % x, want % x", code, tt.want)
			}
		})
	}
}

func TestKnownEncodings32(t *testing.T) {
	tests := []struct {
		name string
		emit func(*Builder)
		want []byte
	}{
		{"push-ebp", func(b *Builder) { b.Push(RBP) }, []byte{0x55}},
		{"mov-ebp-esp", func(b *Builder) { b.MovRegReg(RBP, RSP) }, []byte{0x89, 0xE5}},
		{"xor-eax", func(b *Builder) { b.XorRegReg(RAX, RAX) }, []byte{0x31, 0xC0}},
		{"sub-esp-16", func(b *Builder) { b.SubImm(RSP, 16) }, []byte{0x83, 0xEC, 0x10}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := New(x86.Mode32)
			tt.emit(b)
			code := finalizeAt(t, b, 0)
			if !bytes.Equal(code, tt.want) {
				t.Fatalf("encoded % x, want % x", code, tt.want)
			}
		})
	}
}

func TestCallRelFixup(t *testing.T) {
	b := New(x86.Mode64)
	b.Label("f")
	b.Call("g") // at 0: call g; rel = 0x10 - 5 = 0x0B
	b.Ret()
	b.Nop(10)
	b.Align(16)
	b.Label("g")
	b.Endbr()
	b.Ret()
	code := finalizeAt(t, b, 0x401000)
	inst, err := x86.Decode(code, 0x401000, x86.Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Class != x86.ClassCallRel {
		t.Fatalf("class = %v", inst.Class)
	}
	g, err := b.Addr("g")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Target != g {
		t.Fatalf("call target %#x, want %#x", inst.Target, g)
	}
	if g%16 != 0 {
		t.Fatalf("aligned label not on 16-byte boundary: %#x", g)
	}
}

func TestBackwardJump(t *testing.T) {
	b := New(x86.Mode64)
	b.Label("loop")
	b.AddImm(RAX, 1)
	b.CmpImm(RAX, 10)
	b.Jcc(CondL, "loop")
	b.Ret()
	code := finalizeAt(t, b, 0x1000)
	insts := sweepClean(t, code, 0x1000, x86.Mode64)
	var jcc *x86.Inst
	for i := range insts {
		if insts[i].Class == x86.ClassJccRel {
			jcc = &insts[i]
		}
	}
	if jcc == nil {
		t.Fatal("no jcc found")
	}
	if jcc.Target != 0x1000 {
		t.Fatalf("jcc target %#x, want 0x1000", jcc.Target)
	}
}

func TestExternLabel(t *testing.T) {
	b := New(x86.Mode64)
	b.Call("plt.setjmp")
	b.Endbr()
	b.Ret()
	b.SetExtern("plt.setjmp", 0x400500)
	code := finalizeAt(t, b, 0x401000)
	inst, err := x86.Decode(code, 0x401000, x86.Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Target != 0x400500 {
		t.Fatalf("extern call target %#x, want 0x400500", inst.Target)
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := New(x86.Mode64)
	b.Jmp("nowhere")
	if _, err := b.Finalize(0); err == nil {
		t.Fatal("want error for undefined label")
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := New(x86.Mode64)
	b.Label("x")
	b.Label("x")
	if _, err := b.Finalize(0); err == nil {
		t.Fatal("want error for duplicate label")
	}
}

func TestModeRestrictions(t *testing.T) {
	b := New(x86.Mode32)
	b.Push(R8)
	if _, err := b.Finalize(0); err == nil {
		t.Fatal("want error for r8 in 32-bit mode")
	}
	b = New(x86.Mode32)
	b.LeaRIPLabel(RAX, "x")
	if _, err := b.Finalize(0); err == nil {
		t.Fatal("want error for rip-relative lea in 32-bit mode")
	}
	b = New(x86.Mode64)
	b.MovRegImmLabel(RAX, "x")
	if _, err := b.Finalize(0); err == nil {
		t.Fatal("want error for abs32 mov in 64-bit mode")
	}
}

func TestFinalizeTwiceFails(t *testing.T) {
	b := New(x86.Mode64)
	b.Ret()
	if _, err := b.Finalize(0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finalize(0); err == nil {
		t.Fatal("want error for double finalize")
	}
}

func TestRIPRelativeLea(t *testing.T) {
	b := New(x86.Mode64)
	b.LeaRIPLabel(RAX, "data")
	b.Ret()
	b.Label("data")
	code := finalizeAt(t, b, 0x10000)
	inst, err := x86.Decode(code, 0x10000, x86.Mode64)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := b.Addr("data")
	if !inst.HasRIPRef || inst.RIPRef != want {
		t.Fatalf("RIPRef = %#x, want %#x", inst.RIPRef, want)
	}
}

func TestJumpTable32(t *testing.T) {
	b := New(x86.Mode32)
	b.JmpIndMemScaled(RAX, "table", true)
	b.Ret()
	b.SetExtern("table", 0x804a000)
	code := finalizeAt(t, b, 0x8048000)
	inst, err := x86.Decode(code, 0x8048000, x86.Mode32)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Class != x86.ClassJmpInd || !inst.Notrack {
		t.Fatalf("class %v notrack %v, want notrack jmp-ind", inst.Class, inst.Notrack)
	}
	if !inst.HasMemDisp || inst.MemDisp != 0x804a000 {
		t.Fatalf("MemDisp = %#x, want 0x804a000", inst.MemDisp)
	}
}

func TestNopLengths(t *testing.T) {
	for n := 1; n <= 40; n++ {
		b := New(x86.Mode64)
		b.Nop(n)
		code := finalizeAt(t, b, 0)
		if len(code) != n {
			t.Fatalf("Nop(%d) emitted %d bytes", n, len(code))
		}
		insts := sweepClean(t, code, 0, x86.Mode64)
		for _, inst := range insts {
			if inst.Class != x86.ClassNop {
				t.Fatalf("Nop(%d) produced non-nop class %v", n, inst.Class)
			}
		}
	}
}

func TestAlign(t *testing.T) {
	b := New(x86.Mode64)
	b.Ret()
	b.Align(16)
	if b.Size() != 16 {
		t.Fatalf("aligned size %d, want 16", b.Size())
	}
	b.Align(16) // already aligned: no-op
	if b.Size() != 16 {
		t.Fatalf("re-align changed size to %d", b.Size())
	}
	b.Ret()
	b.AlignInt3(8)
	if b.Size() != 24 {
		t.Fatalf("int3-aligned size %d, want 24", b.Size())
	}
}

// TestEncodeDecodeRoundtripRandom emits long random instruction sequences
// and checks the decoder agrees with the encoder on every instruction
// boundary — the core property linking the two packages.
func TestEncodeDecodeRoundtripRandom(t *testing.T) {
	for _, mode := range []x86.Mode{x86.Mode32, x86.Mode64} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 50; trial++ {
				b := New(mode)
				var wantLens []int
				emitTracked := func(f func()) {
					before := b.Size()
					f()
					wantLens = append(wantLens, b.Size()-before)
				}
				regs := []Reg{RAX, RCX, RDX, RBX, RBP, RSI, RDI}
				if mode == x86.Mode64 {
					regs = append(regs, R8, R9, R10, R11, R12, R13, R14, R15)
				}
				rreg := func() Reg { return regs[rng.Intn(len(regs))] }
				n := 20 + rng.Intn(60)
				for i := 0; i < n; i++ {
					switch rng.Intn(16) {
					case 0:
						emitTracked(func() { b.Push(rreg()) })
					case 1:
						emitTracked(func() { b.Pop(rreg()) })
					case 2:
						emitTracked(func() { b.MovRegReg(rreg(), rreg()) })
					case 3:
						emitTracked(func() { b.MovRegImm32(rreg(), rng.Uint32()) })
					case 4:
						emitTracked(func() { b.AddImm(rreg(), int32(rng.Intn(4096)-2048)) })
					case 5:
						emitTracked(func() { b.SubImm(rreg(), int32(rng.Intn(100000))-50000) })
					case 6:
						emitTracked(func() { b.XorRegReg(rreg(), rreg()) })
					case 7:
						emitTracked(func() { b.MovRegMem(rreg(), rreg(), int32(rng.Intn(512)-256)) })
					case 8:
						emitTracked(func() { b.MovMemReg(rreg(), int32(rng.Intn(512)-256), rreg()) })
					case 9:
						emitTracked(func() { b.TestRegReg(rreg(), rreg()) })
					case 10:
						emitTracked(func() { b.ImulRegReg(rreg(), rreg()) })
					case 11:
						emitTracked(func() { b.ShlImm(rreg(), byte(rng.Intn(31))) })
					case 12:
						emitTracked(func() { b.Endbr() })
					case 13:
						emitTracked(func() { b.LeaMem(rreg(), rreg(), int32(rng.Intn(512)-256)) })
					case 14:
						emitTracked(func() { b.CmpImm(rreg(), int32(rng.Intn(1000))) })
					case 15:
						emitTracked(func() { b.Nop(1 + rng.Intn(9)) })
					}
				}
				emitTracked(func() { b.Ret() })
				code := finalizeAt(t, b, 0x400000)
				off := 0
				for i, want := range wantLens {
					// Nop(n) may be several instructions; decode until the
					// tracked region is consumed.
					remain := want
					for remain > 0 {
						inst, err := x86.Decode(code[off:], 0x400000+uint64(off), mode)
						if err != nil {
							t.Fatalf("trial %d inst %d: decode at %d: %v (bytes % x)", trial, i, off, err, code[off:min(off+8, len(code))])
						}
						if inst.Len > remain {
							t.Fatalf("trial %d inst %d: decoder consumed %d bytes past the %d-byte encoding at offset %d", trial, i, inst.Len, want, off)
						}
						off += inst.Len
						remain -= inst.Len
					}
				}
				if off != len(code) {
					t.Fatalf("trial %d: decoded %d of %d bytes", trial, off, len(code))
				}
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
