package asmx

// Instruction emitters. Full-width operations use the natural register
// width of the mode (64-bit registers in Mode64, 32-bit in Mode32).

// Endbr emits the end-branch marker appropriate for the mode: ENDBR64 in
// 64-bit mode, ENDBR32 in 32-bit mode.
func (b *Builder) Endbr() {
	if b.is64() {
		b.emit(0xF3, 0x0F, 0x1E, 0xFA)
	} else {
		b.emit(0xF3, 0x0F, 0x1E, 0xFB)
	}
}

// Push emits push reg.
func (b *Builder) Push(r Reg) {
	if !b.checkReg(r) {
		return
	}
	if r.isExt() {
		b.emit(0x41)
	}
	b.emit(0x50 + r.low3())
}

// Pop emits pop reg.
func (b *Builder) Pop(r Reg) {
	if !b.checkReg(r) {
		return
	}
	if r.isExt() {
		b.emit(0x41)
	}
	b.emit(0x58 + r.low3())
}

// MovRegReg emits mov dst, src at the native width.
func (b *Builder) MovRegReg(dst, src Reg) {
	if !b.checkReg(dst, src) {
		return
	}
	b.rex(b.is64(), src, 0, dst)
	b.emit(0x89)
	b.modRM(3, src.low3(), dst.low3())
}

// MovRegImm32 emits mov dst, imm32 (zero-extending in 64-bit mode, as
// compilers do for small constants).
func (b *Builder) MovRegImm32(dst Reg, imm uint32) {
	if !b.checkReg(dst) {
		return
	}
	if dst.isExt() {
		b.emit(0x41)
	}
	b.emit(0xB8 + dst.low3())
	b.emitU32(imm)
}

// MovRegImmLabel emits mov dst, imm32 whose immediate is the absolute
// address of label (32-bit mode; classic non-PIC address materialization).
func (b *Builder) MovRegImmLabel(dst Reg, label string) {
	if !b.checkReg(dst) {
		return
	}
	if b.is64() {
		b.fail("asmx: MovRegImmLabel is a 32-bit idiom; use LeaRIPLabel in 64-bit mode")
		return
	}
	b.emit(0xB8 + dst.low3())
	b.fixups = append(b.fixups, fixup{off: len(b.buf), kind: fixAbs32, label: label})
	b.emitU32(0)
}

// MovRegMem emits mov dst, [base+disp] at the native width.
func (b *Builder) MovRegMem(dst, base Reg, disp int32) {
	if !b.checkReg(dst, base) {
		return
	}
	b.rex(b.is64(), dst, 0, base)
	b.emit(0x8B)
	b.memOperand(dst.low3(), base, disp)
}

// MovMemReg emits mov [base+disp], src at the native width.
func (b *Builder) MovMemReg(base Reg, disp int32, src Reg) {
	if !b.checkReg(base, src) {
		return
	}
	b.rex(b.is64(), src, 0, base)
	b.emit(0x89)
	b.memOperand(src.low3(), base, disp)
}

// MovRegMemRIPLabel emits mov dst, [rip+label] (64-bit mode only).
func (b *Builder) MovRegMemRIPLabel(dst Reg, label string) {
	if !b.checkReg(dst) {
		return
	}
	if !b.is64() {
		b.fail("asmx: RIP-relative addressing requires 64-bit mode")
		return
	}
	b.rex(true, dst, 0, 0)
	b.emit(0x8B)
	b.modRM(0, dst.low3(), 5)
	b.fixups = append(b.fixups, fixup{off: len(b.buf), kind: fixRel32, label: label})
	b.emitU32(0)
}

// MovRegMemAbsLabel emits mov dst, [label] with a 32-bit absolute
// displacement (32-bit mode only).
func (b *Builder) MovRegMemAbsLabel(dst Reg, label string) {
	if !b.checkReg(dst) {
		return
	}
	if b.is64() {
		b.fail("asmx: absolute-disp mov is a 32-bit idiom")
		return
	}
	b.emit(0x8B)
	b.modRM(0, dst.low3(), 5)
	b.fixups = append(b.fixups, fixup{off: len(b.buf), kind: fixAbs32, label: label})
	b.emitU32(0)
}

// LeaRIPLabel emits lea dst, [rip+label] (64-bit mode only).
func (b *Builder) LeaRIPLabel(dst Reg, label string) {
	if !b.checkReg(dst) {
		return
	}
	if !b.is64() {
		b.fail("asmx: RIP-relative lea requires 64-bit mode")
		return
	}
	b.rex(true, dst, 0, 0)
	b.emit(0x8D)
	b.modRM(0, dst.low3(), 5)
	b.fixups = append(b.fixups, fixup{off: len(b.buf), kind: fixRel32, label: label})
	b.emitU32(0)
}

// LeaMem emits lea dst, [base+disp].
func (b *Builder) LeaMem(dst, base Reg, disp int32) {
	if !b.checkReg(dst, base) {
		return
	}
	b.rex(b.is64(), dst, 0, base)
	b.emit(0x8D)
	b.memOperand(dst.low3(), base, disp)
}

// arithImm emits <op> reg, imm using the 83 (imm8) or 81 (imm32) group-1
// form; regField selects the operation.
func (b *Builder) arithImm(regField byte, dst Reg, imm int32) {
	if !b.checkReg(dst) {
		return
	}
	b.rex(b.is64(), 0, 0, dst)
	if imm >= -128 && imm <= 127 {
		b.emit(0x83)
		b.modRM(3, regField, dst.low3())
		b.emit(byte(imm))
	} else {
		b.emit(0x81)
		b.modRM(3, regField, dst.low3())
		b.emitU32(uint32(imm))
	}
}

// AddImm emits add dst, imm.
func (b *Builder) AddImm(dst Reg, imm int32) { b.arithImm(0, dst, imm) }

// SubImm emits sub dst, imm.
func (b *Builder) SubImm(dst Reg, imm int32) { b.arithImm(5, dst, imm) }

// CmpImm emits cmp dst, imm.
func (b *Builder) CmpImm(dst Reg, imm int32) { b.arithImm(7, dst, imm) }

// AndImm emits and dst, imm.
func (b *Builder) AndImm(dst Reg, imm int32) { b.arithImm(4, dst, imm) }

// arithRegReg emits <op> dst, src using the /r MR form opcode.
func (b *Builder) arithRegReg(opcode byte, dst, src Reg) {
	if !b.checkReg(dst, src) {
		return
	}
	b.rex(b.is64(), src, 0, dst)
	b.emit(opcode)
	b.modRM(3, src.low3(), dst.low3())
}

// AddRegReg emits add dst, src.
func (b *Builder) AddRegReg(dst, src Reg) { b.arithRegReg(0x01, dst, src) }

// SubRegReg emits sub dst, src.
func (b *Builder) SubRegReg(dst, src Reg) { b.arithRegReg(0x29, dst, src) }

// XorRegReg emits xor dst, src.
func (b *Builder) XorRegReg(dst, src Reg) { b.arithRegReg(0x31, dst, src) }

// OrRegReg emits or dst, src.
func (b *Builder) OrRegReg(dst, src Reg) { b.arithRegReg(0x09, dst, src) }

// AndRegReg emits and dst, src.
func (b *Builder) AndRegReg(dst, src Reg) { b.arithRegReg(0x21, dst, src) }

// CmpRegReg emits cmp dst, src.
func (b *Builder) CmpRegReg(dst, src Reg) { b.arithRegReg(0x39, dst, src) }

// TestRegReg emits test dst, src.
func (b *Builder) TestRegReg(dst, src Reg) { b.arithRegReg(0x85, dst, src) }

// ImulRegReg emits imul dst, src.
func (b *Builder) ImulRegReg(dst, src Reg) {
	if !b.checkReg(dst, src) {
		return
	}
	b.rex(b.is64(), dst, 0, src)
	b.emit(0x0F, 0xAF)
	b.modRM(3, dst.low3(), src.low3())
}

// ShlImm emits shl dst, imm8.
func (b *Builder) ShlImm(dst Reg, imm byte) {
	if !b.checkReg(dst) {
		return
	}
	b.rex(b.is64(), 0, 0, dst)
	b.emit(0xC1)
	b.modRM(3, 4, dst.low3())
	b.emit(imm)
}

// SarImm emits sar dst, imm8.
func (b *Builder) SarImm(dst Reg, imm byte) {
	if !b.checkReg(dst) {
		return
	}
	b.rex(b.is64(), 0, 0, dst)
	b.emit(0xC1)
	b.modRM(3, 7, dst.low3())
	b.emit(imm)
}

// Movsxd emits movsxd dst, src32 (64-bit mode only); used by jump-table
// dispatch sequences.
func (b *Builder) Movsxd(dst, src Reg) {
	if !b.checkReg(dst, src) {
		return
	}
	if !b.is64() {
		b.fail("asmx: movsxd requires 64-bit mode")
		return
	}
	b.rex(true, dst, 0, src)
	b.emit(0x63)
	b.modRM(3, dst.low3(), src.low3())
}

// MovsxdRegMemSIB emits movsxd dst, dword [base+index*4] (64-bit mode
// only), the load half of a PIC jump-table dispatch. base must not be
// RBP/R13 (mod=00 encoding restriction).
func (b *Builder) MovsxdRegMemSIB(dst, base, index Reg) {
	if !b.checkReg(dst, base, index) {
		return
	}
	if !b.is64() {
		b.fail("asmx: movsxd requires 64-bit mode")
		return
	}
	if base.low3() == 5 {
		b.fail("asmx: movsxd SIB base %v needs a displacement", base)
		return
	}
	if index.low3() == 4 && !index.isExt() {
		b.fail("asmx: rsp cannot be an index register")
		return
	}
	b.rex(true, dst, index, base)
	b.emit(0x63)
	b.modRM(0, dst.low3(), 4)
	b.emit(2<<6 | index.low3()<<3 | base.low3())
}

// Call emits call rel32 to label.
func (b *Builder) Call(label string) {
	if b.err != nil {
		return
	}
	b.emit(0xE8)
	b.fixups = append(b.fixups, fixup{off: len(b.buf), kind: fixRel32, label: label})
	b.emitU32(0)
}

// Jmp emits jmp rel32 to label.
func (b *Builder) Jmp(label string) {
	if b.err != nil {
		return
	}
	b.emit(0xE9)
	b.fixups = append(b.fixups, fixup{off: len(b.buf), kind: fixRel32, label: label})
	b.emitU32(0)
}

// Jcc emits a conditional jump (0F 8x rel32) to label.
func (b *Builder) Jcc(cc Cond, label string) {
	if b.err != nil {
		return
	}
	b.emit(0x0F, 0x80+byte(cc))
	b.fixups = append(b.fixups, fixup{off: len(b.buf), kind: fixRel32, label: label})
	b.emitU32(0)
}

// CallIndMem emits call [base+disp] (an indirect call through memory, as
// produced for function-pointer variables).
func (b *Builder) CallIndMem(base Reg, disp int32) {
	if !b.checkReg(base) {
		return
	}
	b.rex(false, 0, 0, base)
	b.emit(0xFF)
	b.memOperand(2, base, disp)
}

// CallIndReg emits call reg.
func (b *Builder) CallIndReg(r Reg) {
	if !b.checkReg(r) {
		return
	}
	b.rex(false, 0, 0, r)
	b.emit(0xFF)
	b.modRM(3, 2, r.low3())
}

// JmpIndReg emits jmp reg, optionally NOTRACK-prefixed (the CET-sanctioned
// form for bounds-checked switch dispatch).
func (b *Builder) JmpIndReg(r Reg, notrack bool) {
	if !b.checkReg(r) {
		return
	}
	if notrack {
		b.emit(0x3E)
	}
	b.rex(false, 0, 0, r)
	b.emit(0xFF)
	b.modRM(3, 4, r.low3())
}

// JmpIndMemScaled emits jmp [index*4+table] with an absolute table address
// (32-bit non-PIC switch dispatch), optionally NOTRACK-prefixed.
func (b *Builder) JmpIndMemScaled(index Reg, table string, notrack bool) {
	if !b.checkReg(index) {
		return
	}
	if b.is64() {
		b.fail("asmx: absolute scaled jmp is a 32-bit idiom")
		return
	}
	if notrack {
		b.emit(0x3E)
	}
	b.emit(0xFF)
	b.modRM(0, 4, 4)                   // jmp /4, SIB follows
	b.emit(2<<6 | index.low3()<<3 | 5) // scale=4, base=none (disp32)
	b.fixups = append(b.fixups, fixup{off: len(b.buf), kind: fixAbs32, label: table})
	b.emitU32(0)
}

// PushImm32 emits push imm32 (the relocation-index push of a lazy PLT
// stub).
func (b *Builder) PushImm32(imm uint32) {
	b.emit(0x68)
	b.emitU32(imm)
}

// Ret emits a near return.
func (b *Builder) Ret() { b.emit(0xC3) }

// Leave emits leave.
func (b *Builder) Leave() { b.emit(0xC9) }

// Int3 emits int3.
func (b *Builder) Int3() { b.emit(0xCC) }

// Ud2 emits ud2.
func (b *Builder) Ud2() { b.emit(0x0F, 0x0B) }

// Hlt emits hlt.
func (b *Builder) Hlt() { b.emit(0xF4) }

// Nop emits n bytes of padding using the recommended multi-byte NOP forms.
func (b *Builder) Nop(n int) {
	for n > 0 {
		k := n
		if k > 9 {
			k = 9
		}
		b.emit(nopForms[k]...)
		n -= k
	}
}

// nopForms are the Intel-recommended multi-byte NOP encodings, indexed by
// length (1..9).
var nopForms = [10][]byte{
	1: {0x90},
	2: {0x66, 0x90},
	3: {0x0F, 0x1F, 0x00},
	4: {0x0F, 0x1F, 0x40, 0x00},
	5: {0x0F, 0x1F, 0x44, 0x00, 0x00},
	6: {0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00},
	7: {0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00},
	8: {0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
	9: {0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
}

// Align pads with multi-byte NOPs until the current offset is a multiple
// of align (relative to the eventual section base, which must itself be
// aligned at least as strictly).
func (b *Builder) Align(align int) {
	if align <= 1 {
		return
	}
	rem := len(b.buf) % align
	if rem != 0 {
		b.Nop(align - rem)
	}
}

// AlignInt3 pads to the alignment with int3 bytes (used between functions
// by some toolchains).
func (b *Builder) AlignInt3(align int) {
	if align <= 1 {
		return
	}
	for len(b.buf)%align != 0 {
		b.emit(0xCC)
	}
}

// Raw appends raw machine-code bytes verbatim.
func (b *Builder) Raw(bs ...byte) { b.emit(bs...) }

// PltJmp emits the first instruction of a PLT stub: an indirect jump
// through the GOT slot named by label. In 64-bit mode it is RIP-relative,
// in 32-bit mode an absolute-disp indirect jump. CET-enabled PLT stubs
// are preceded by an end branch, which the caller emits.
func (b *Builder) PltJmp(gotSlot string) {
	if b.err != nil {
		return
	}
	if b.is64() {
		b.emit(0xFF)
		b.modRM(0, 4, 5) // jmp [rip+disp32]
		b.fixups = append(b.fixups, fixup{off: len(b.buf), kind: fixRel32, label: gotSlot})
		b.emitU32(0)
		return
	}
	b.emit(0xFF)
	b.modRM(0, 4, 5) // jmp [disp32]
	b.fixups = append(b.fixups, fixup{off: len(b.buf), kind: fixAbs32, label: gotSlot})
	b.emitU32(0)
}
