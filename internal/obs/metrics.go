// Package obs is the dependency-free observability layer shared by the
// analysis engine, the funseekerd HTTP server, and the corpus CLI.
//
// It provides two things:
//
//   - A metrics registry (metrics.go): counters, gauges, and fixed-bucket
//     latency histograms with Prometheus text-format exposition. The
//     paper's headline claim is throughput — FunSeeker processes 8,136
//     binaries orders of magnitude faster than interactive tools — and a
//     service built on that claim needs latency *distributions* per
//     pipeline stage, not just totals: a p99 regression in the sweep is
//     invisible in an aggregate mean.
//   - Request tracing (trace.go): a per-request ID generated at the edge,
//     carried through context.Context, and attached to every slog line,
//     so one slow or failing upload can be followed across the access
//     log, the error envelope, and the engine.
//
// Everything here is stdlib-only and allocation-conscious: Observe on a
// histogram is a bounded scan over ~a dozen buckets plus two atomic adds,
// cheap enough to sit on the analysis hot path.
package obs

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default histogram bucket layout for stage and
// request latencies, in seconds. It spans 5µs (a cache-hit lookup) to
// 10s (a pathological corpus-scale analysis), roughly logarithmically.
var LatencyBuckets = []float64{
	5e-6, 25e-6, 100e-6, 250e-6,
	1e-3, 2.5e-3, 10e-3, 25e-3,
	100e-3, 250e-3, 1, 2.5, 10,
}

// metric is one registered family: it knows its name and how to write
// its complete exposition block (# HELP, # TYPE, samples).
type metric interface {
	metricName() string
	expose(b *bytes.Buffer)
}

// Registry holds a set of uniquely-named metric families and renders
// them in the Prometheus text exposition format. The zero value is not
// usable; call NewRegistry. All registration methods panic on a
// duplicate or syntactically invalid name — metric names are program
// constants, so a bad one is a bug, not an input error.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register adds m, enforcing name uniqueness and validity.
func (r *Registry) register(m metric) {
	name := m.metricName()
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("obs: duplicate metric name " + strconv.Quote(name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// validName enforces the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*  (label names additionally may not contain
// ':', which validLabel checks).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabel(s string) bool {
	return validName(s) && !strings.Contains(s, ":")
}

// WriteTo renders every registered family, sorted by name, in the
// Prometheus text format (version 0.0.4).
func (r *Registry) WriteTo(b *bytes.Buffer) {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].metricName() < ms[j].metricName() })
	for _, m := range ms {
		m.expose(b)
	}
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b bytes.Buffer
		r.WriteTo(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(b.Bytes())
	})
}

// header writes the # HELP / # TYPE preamble of one family.
func header(b *bytes.Buffer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// escapeHelp escapes backslashes and newlines per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) expose(b *bytes.Buffer) {
	header(b, c.name, c.help, "counter")
	fmt.Fprintf(b, "%s %d\n", c.name, c.v.Load())
}

// CounterFunc is a counter whose value is sampled from a callback at
// exposition time — the bridge for components that already keep their
// own atomic counters (like the engine's service stats) and must not
// maintain the same number twice.
type CounterFunc struct {
	name, help string
	fn         func() uint64
}

// NewCounterFunc registers a sampled counter.
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	r.register(&CounterFunc{name: name, help: help, fn: fn})
}

func (c *CounterFunc) metricName() string { return c.name }

func (c *CounterFunc) expose(b *bytes.Buffer) {
	header(b, c.name, c.help, "counter")
	fmt.Fprintf(b, "%s %d\n", c.name, c.fn())
}

// CounterVec is a family of counters split by the values of one label
// (e.g. requests by status kind). Children are created on first use and
// live for the registry's lifetime, so label values must be low
// cardinality.
type CounterVec struct {
	name, help, label string

	mu       sync.Mutex
	children map[string]*Counter
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	if !validLabel(label) {
		panic("obs: invalid label name " + strconv.Quote(label))
	}
	v := &CounterVec{name: name, help: help, label: label, children: make(map[string]*Counter)}
	r.register(v)
	return v
}

// With returns the child counter for one label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) expose(b *bytes.Buffer) {
	header(b, v.name, v.help, "counter")
	v.mu.Lock()
	values := make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	counts := make([]uint64, len(values))
	for i, val := range values {
		counts[i] = v.children[val].Value()
	}
	v.mu.Unlock()
	for i, val := range values {
		fmt.Fprintf(b, "%s{%s=\"%s\"} %d\n", v.name, v.label, escapeLabel(val), counts[i])
	}
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge registers and returns a settable gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) expose(b *bytes.Buffer) {
	header(b, g.name, g.help, "gauge")
	fmt.Fprintf(b, "%s %d\n", g.name, g.v.Load())
}

// GaugeVec is a family of gauges split by the values of one label
// (e.g. backend health by backend). Children are created on first use
// and live for the registry's lifetime, so label values must be low
// cardinality.
type GaugeVec struct {
	name, help, label string

	mu       sync.Mutex
	children map[string]*Gauge
}

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	if !validLabel(label) {
		panic("obs: invalid label name " + strconv.Quote(label))
	}
	v := &GaugeVec{name: name, help: help, label: label, children: make(map[string]*Gauge)}
	r.register(v)
	return v
}

// With returns the child gauge for one label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[value]
	if !ok {
		g = &Gauge{}
		v.children[value] = g
	}
	return g
}

func (v *GaugeVec) metricName() string { return v.name }

func (v *GaugeVec) expose(b *bytes.Buffer) {
	header(b, v.name, v.help, "gauge")
	v.mu.Lock()
	values := make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	vals := make([]int64, len(values))
	for i, val := range values {
		vals[i] = v.children[val].Value()
	}
	v.mu.Unlock()
	for i, val := range values {
		fmt.Fprintf(b, "%s{%s=\"%s\"} %d\n", v.name, v.label, escapeLabel(val), vals[i])
	}
}

// GaugeFunc is a gauge sampled from a callback at exposition time.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a sampled gauge.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&GaugeFunc{name: name, help: help, fn: fn})
}

func (g *GaugeFunc) metricName() string { return g.name }

func (g *GaugeFunc) expose(b *bytes.Buffer) {
	header(b, g.name, g.help, "gauge")
	fmt.Fprintf(b, "%s %s\n", g.name, formatFloat(g.fn()))
}

// atomicFloat is a float64 accumulated with CAS — the histogram sum.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket latency/size distribution. Buckets are
// chosen at construction and never change, so Observe is lock-free: one
// bounded scan to find the bucket, then three atomic adds.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds; +Inf is implicit
	counts     []atomic.Uint64
	sum        atomicFloat
	count      atomic.Uint64
}

// NewHistogram registers a histogram over the given ascending bucket
// upper bounds (nil selects LatencyBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, help, bounds)
	r.register(h)
	return h
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Snapshot returns a point-in-time copy of the distribution.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	// Count/Sum last: never less than the per-bucket totals read above.
	s.Count = h.count.Load()
	s.Sum = h.sum.load()
	return s
}

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) expose(b *bytes.Buffer) {
	header(b, h.name, h.help, "histogram")
	h.Snapshot().expose(b, h.name, "", "")
}

// HistSnapshot is a consistent-enough copy of one histogram, with
// quantile estimation for human-facing summaries.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra slot for
	// the implicit +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket that contains it — the same estimate Prometheus's
// histogram_quantile computes. Samples beyond the last finite bound clamp
// to that bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// expose writes the cumulative _bucket/_sum/_count series, optionally
// carrying one label pair on every sample.
func (s HistSnapshot) expose(b *bytes.Buffer, name, label, value string) {
	cum := uint64(0)
	for i := range s.Counts {
		cum += s.Counts[i]
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		if label == "" {
			fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, le, cum)
		} else {
			fmt.Fprintf(b, "%s_bucket{%s=\"%s\",le=%q} %d\n", name, label, escapeLabel(value), le, cum)
		}
	}
	suffix := ""
	if label != "" {
		suffix = fmt.Sprintf("{%s=\"%s\"}", label, escapeLabel(value))
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, formatFloat(s.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, cum)
}

// HistogramVec is a family of histograms split by one label (e.g.
// per-stage latency with stage="sweep"). All children share the bucket
// layout.
type HistogramVec struct {
	name, help, label string
	bounds            []float64

	mu       sync.Mutex
	children map[string]*Histogram
}

// NewHistogramVec registers a labeled histogram family (nil bounds
// selects LatencyBuckets).
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if !validLabel(label) {
		panic("obs: invalid label name " + strconv.Quote(label))
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	v := &HistogramVec{name: name, help: help, label: label, bounds: bounds, children: make(map[string]*Histogram)}
	r.register(v)
	return v
}

// With returns the child histogram for one label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		h = newHistogram(v.name, v.help, v.bounds)
		v.children[value] = h
	}
	return h
}

func (v *HistogramVec) metricName() string { return v.name }

func (v *HistogramVec) expose(b *bytes.Buffer) {
	header(b, v.name, v.help, "histogram")
	v.mu.Lock()
	values := make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	snaps := make([]HistSnapshot, len(values))
	for i, val := range values {
		snaps[i] = v.children[val].Snapshot()
	}
	v.mu.Unlock()
	for i, val := range values {
		snaps[i].expose(b, v.name, v.label, val)
	}
}
