package obs

import (
	"bytes"
	"context"
	"log/slog"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func exposition(r *Registry) string {
	var b bytes.Buffer
	r.WriteTo(&b)
	return b.String()
}

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}

	v := r.NewCounterVec("test_requests_total", "requests by kind", "kind")
	v.With("ok").Add(3)
	v.With("error").Inc()
	v.With("ok").Inc() // same child again

	out := exposition(r)
	for _, want := range []string{
		"# TYPE test_ops_total counter",
		"test_ops_total 5",
		`test_requests_total{kind="error"} 1`,
		`test_requests_total{kind="ok"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterFuncAndGauges(t *testing.T) {
	r := NewRegistry()
	n := uint64(7)
	r.NewCounterFunc("test_sampled_total", "sampled", func() uint64 { return n })
	g := r.NewGauge("test_in_flight", "in flight")
	g.Set(3)
	g.Add(-1)
	r.NewGaugeFunc("test_bytes", "bytes", func() float64 { return 1.5e6 })

	out := exposition(r)
	for _, want := range []string{
		"test_sampled_total 7",
		"# TYPE test_in_flight gauge",
		"test_in_flight 2",
		"test_bytes 1.5e+06",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramObserveAndExpose(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)                         // first bucket
	h.Observe(0.05)                          // second
	h.Observe(0.5)                           // third
	h.Observe(5)                             // +Inf
	h.ObserveDuration(20 * time.Millisecond) // second

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := 0.005 + 0.05 + 0.5 + 5 + 0.02; math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}

	out := exposition(r)
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="1"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		"test_latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram("q", "", []float64{1, 2, 4, 8})
	// 100 samples uniformly in (0,1]: every quantile lands inside the
	// first bucket and interpolates linearly.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i+1) / 100)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p50 = %g, want 0.5", got)
	}
	if got := s.Quantile(0.99); math.Abs(got-0.99) > 1e-9 {
		t.Fatalf("p99 = %g, want 0.99", got)
	}

	// Samples beyond the last finite bound clamp to it.
	h2 := newHistogram("q2", "", []float64{1, 2})
	h2.Observe(100)
	if got := h2.Snapshot().Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %g, want 2 (last bound)", got)
	}

	// Empty histogram quantiles are zero, not NaN.
	if got := (HistSnapshot{Bounds: []float64{1}, Counts: []uint64{0, 0}}).Quantile(0.9); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("test_stage_seconds", "per-stage", "stage", []float64{0.001, 1})
	v.With("sweep").Observe(0.0005)
	v.With("sweep").Observe(0.5)
	v.With("filter").Observe(0.0001)

	out := exposition(r)
	for _, want := range []string{
		`test_stage_seconds_bucket{stage="sweep",le="0.001"} 1`,
		`test_stage_seconds_bucket{stage="sweep",le="+Inf"} 2`,
		`test_stage_seconds_count{stage="sweep"} 2`,
		`test_stage_seconds_bucket{stage="filter",le="0.001"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram("c", "", LatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%13) * 1e-4)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
	var cum uint64
	for _, c := range s.Counts {
		cum += c
	}
	if cum != s.Count {
		t.Fatalf("bucket sum %d != count %d", cum, s.Count)
	}
}

func TestDuplicateAndInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	mustPanic(t, "duplicate name", func() { r.NewCounter("dup_total", "") })
	mustPanic(t, "invalid name", func() { r.NewCounter("bad name", "") })
	mustPanic(t, "invalid label", func() { r.NewCounterVec("ok_total", "", "bad:label") })
	mustPanic(t, "unsorted bounds", func() { r.NewHistogram("h_total", "", []float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("esc_total", "", "kind")
	v.With(`a"b\c` + "\n").Inc()
	out := exposition(r)
	if !strings.Contains(out, `esc_total{kind="a\"b\\c\n"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("handler_total", "").Inc()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "handler_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty context has a request ID")
	}
	id := NewRequestID()
	if len(id) != 16 || !ValidRequestID(id) {
		t.Fatalf("generated ID %q invalid", id)
	}
	id2 := NewRequestID()
	if id == id2 {
		t.Fatalf("two generated IDs collide: %q", id)
	}
	ctx = WithRequestID(ctx, id)
	if got := RequestID(ctx); got != id {
		t.Fatalf("round-trip = %q, want %q", got, id)
	}

	for bad, want := range map[string]bool{
		"":                      false,
		"ok-id_1.2":             true,
		"with space":            false,
		"inject\"ion":           false,
		strings.Repeat("a", 64): true,
		strings.Repeat("a", 65): false,
	} {
		if ValidRequestID(bad) != want {
			t.Fatalf("ValidRequestID(%q) = %v, want %v", bad, !want, want)
		}
	}
}

func TestLogHandlerInjectsRequestID(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(slog.NewTextHandler(&buf, nil)))

	ctx := WithRequestID(context.Background(), "abc123")
	logger.InfoContext(ctx, "traced line", "k", "v")
	logger.Info("untraced line")

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "request_id=abc123") {
		t.Fatalf("traced line missing request_id: %q", lines[0])
	}
	if strings.Contains(lines[1], "request_id") {
		t.Fatalf("untraced line has a request_id: %q", lines[1])
	}

	// WithAttrs/WithGroup preserve the injection.
	buf.Reset()
	logger.With("svc", "funseekerd").WithGroup("g").InfoContext(ctx, "grouped")
	if out := buf.String(); !strings.Contains(out, "request_id=abc123") {
		t.Fatalf("derived logger lost request_id injection: %q", out)
	}
}
