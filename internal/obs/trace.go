package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sync/atomic"
)

// RequestIDHeader is the HTTP header carrying the per-request trace ID:
// funseekerd returns it on every response, and honors a well-formed
// client-supplied value so callers can stitch their own traces through.
const RequestIDHeader = "X-Funseeker-Request-Id"

// requestIDKey is the private context key for the request ID.
type requestIDKey struct{}

// idFallback seeds request IDs when crypto/rand is unavailable (it
// effectively never is, but a trace ID is not worth failing a request
// over).
var idFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		var c [8]byte
		n := idFallback.Add(1)
		for i := range c {
			c[i] = byte(n >> (8 * i))
		}
		return hex.EncodeToString(c[:])
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a client-supplied ID is safe to adopt:
// 1–64 characters drawn from the unambiguous token alphabet. Anything
// else is replaced with a fresh ID rather than echoed into logs.
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID extracts the request ID from ctx ("" when absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// logHandler decorates an slog.Handler so every record logged with a
// context that carries a request ID gains a request_id attribute. Code
// below the HTTP edge just logs with its context — it never needs to
// know the tracing contract exists.
type logHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner with request-ID injection.
func NewLogHandler(inner slog.Handler) slog.Handler {
	return &logHandler{inner: inner}
}

func (h *logHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *logHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := RequestID(ctx); id != "" {
		rec = rec.Clone()
		rec.AddAttrs(slog.String("request_id", id))
	}
	return h.inner.Handle(ctx, rec)
}

func (h *logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *logHandler) WithGroup(name string) slog.Handler {
	return &logHandler{inner: h.inner.WithGroup(name)}
}
