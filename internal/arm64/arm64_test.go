package arm64

import "testing"

func TestDecodeKnown(t *testing.T) {
	tests := []struct {
		name   string
		word   uint32
		addr   uint64
		class  Class
		bti    BTIKind
		target uint64
	}{
		{name: "bti", word: 0xD503241F, class: ClassBTI, bti: BTINone},
		{name: "bti-c", word: 0xD503245F, class: ClassBTI, bti: BTIC},
		{name: "bti-j", word: 0xD503249F, class: ClassBTI, bti: BTIJ},
		{name: "bti-jc", word: 0xD50324DF, class: ClassBTI, bti: BTIJC},
		{name: "paciasp", word: 0xD503233F, class: ClassPACIASP},
		{name: "pacibsp", word: 0xD503237F, class: ClassPACIASP},
		{name: "nop", word: 0xD503201F, class: ClassNop},
		{name: "bl-forward", word: 0x94000004, addr: 0x1000, class: ClassBL, target: 0x1010},
		{name: "bl-backward", word: 0x97FFFFFF, addr: 0x1000, class: ClassBL, target: 0xFFC},
		{name: "b-forward", word: 0x14000002, addr: 0x2000, class: ClassB, target: 0x2008},
		{name: "b-eq", word: 0x54000040, addr: 0x100, class: ClassBCond, target: 0x108},
		{name: "b-cond-backward", word: 0x54FFFFE0, addr: 0x100, class: ClassBCond, target: 0x100 - 4},
		{name: "cbz-x0", word: 0xB4000040, addr: 0, class: ClassBCond, target: 8},
		{name: "cbnz-w1", word: 0x35000061, addr: 0, class: ClassBCond, target: 12},
		{name: "tbz", word: 0x36000040, addr: 0x10, class: ClassBCond, target: 0x18},
		{name: "ret", word: 0xD65F03C0, class: ClassRet},
		{name: "ret-x1", word: 0xD65F0020, class: ClassRet},
		{name: "br-x9", word: 0xD61F0120, class: ClassBR},
		{name: "blr-x16", word: 0xD63F0200, class: ClassBLR},
		{name: "udf", word: 0x00000000, class: ClassUDF},
		{name: "add-imm", word: 0x91000400, class: ClassOther},
		{name: "movz", word: 0xD2800020, class: ClassOther},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			inst := Decode(tt.word, tt.addr)
			if inst.Class != tt.class {
				t.Fatalf("class = %v, want %v", inst.Class, tt.class)
			}
			if tt.class == ClassBTI && inst.BTI != tt.bti {
				t.Errorf("bti kind = %v, want %v", inst.BTI, tt.bti)
			}
			if tt.target != 0 {
				if !inst.HasTarget || inst.Target != tt.target {
					t.Errorf("target = (%v, %#x), want %#x", inst.HasTarget, inst.Target, tt.target)
				}
			}
			if inst.Next() != tt.addr+4 {
				t.Errorf("Next = %#x", inst.Next())
			}
		})
	}
}

func TestBTIKindPredicates(t *testing.T) {
	if !BTIC.AcceptsCall() || BTIC.AcceptsJump() {
		t.Error("BTI c predicates wrong")
	}
	if BTIJ.AcceptsCall() || !BTIJ.AcceptsJump() {
		t.Error("BTI j predicates wrong")
	}
	if !BTIJC.AcceptsCall() || !BTIJC.AcceptsJump() {
		t.Error("BTI jc predicates wrong")
	}
	if BTINone.AcceptsCall() || BTINone.AcceptsJump() {
		t.Error("plain BTI predicates wrong")
	}
	for k, want := range map[BTIKind]string{BTINone: "bti", BTIC: "bti c", BTIJ: "bti j", BTIJC: "bti jc"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestLinearSweep(t *testing.T) {
	// bti c; bl +8; ret — little-endian words.
	words := []uint32{0xD503245F, 0x94000002, 0xD65F03C0}
	var code []byte
	for _, w := range words {
		code = append(code, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	var classes []Class
	LinearSweep(code, 0x1000, func(inst Inst) bool {
		classes = append(classes, inst.Class)
		return true
	})
	if len(classes) != 3 || classes[0] != ClassBTI || classes[1] != ClassBL || classes[2] != ClassRet {
		t.Fatalf("classes = %v", classes)
	}
	// Early stop.
	n := 0
	LinearSweep(code, 0, func(Inst) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
	// Trailing partial word ignored.
	n = 0
	LinearSweep(append(code, 0xAA), 0, func(Inst) bool { n++; return true })
	if n != 3 {
		t.Fatalf("partial word handling: %d", n)
	}
}

func TestClassString(t *testing.T) {
	if ClassBTI.String() != "bti" || ClassBL.String() != "bl" {
		t.Error("class names changed")
	}
	if Class(99).String() == "" {
		t.Error("unknown class must render")
	}
}
