package arm64

import (
	"context"
	"encoding/binary"
)

// cancelStride is how many bytes BuildIndexCtx decodes between
// cancellation checks, mirroring the x86 sweep's stride: frequent enough
// that an aborted request stops burning CPU within tens of microseconds,
// rare enough that the check never shows up in profiles.
const cancelStride = 64 << 10

// Index is the materialized form of one AArch64 linear sweep: every
// decoded instruction in address order. Because the ISA is fixed-width,
// the index needs no boundary bitmap — the instruction at va is
// Insts[(va-Base)/4] — and sharded parallel decoding would buy nothing:
// every decode start is already synchronized. An Index is immutable
// after construction and safe for concurrent readers.
type Index struct {
	// Insts holds one decoded instruction per 4-byte word of the swept
	// code, in ascending address order.
	Insts []Inst
	// Base is the virtual address decoding started at.
	Base uint64
}

// BuildIndex decodes code from base and materializes the sweep. Trailing
// bytes that do not fill a word are ignored, matching LinearSweep.
func BuildIndex(code []byte, base uint64) *Index {
	ix, _ := BuildIndexCtx(context.Background(), code, base)
	return ix
}

// BuildIndexCtx is BuildIndex with cooperative cancellation at
// cancelStride boundaries. A background context short-circuits every
// check via the Done() == nil fast path.
func BuildIndexCtx(ctx context.Context, code []byte, base uint64) (*Index, error) {
	ix := &Index{
		Insts: make([]Inst, 0, len(code)/4),
		Base:  base,
	}
	done := ctx.Done()
	next := 0
	for off := 0; off+4 <= len(code); off += 4 {
		if done != nil && off >= next {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			next = off + cancelStride
		}
		word := binary.LittleEndian.Uint32(code[off:])
		ix.Insts = append(ix.Insts, Decode(word, base+uint64(off)))
	}
	return ix, nil
}

// At returns the instruction decoded at exactly va. Misaligned and
// out-of-range addresses report false.
func (ix *Index) At(va uint64) (Inst, bool) {
	p := ix.lookup(va)
	if p < 0 {
		return Inst{}, false
	}
	return ix.Insts[p], true
}

// AtPtr returns a pointer into the index for the instruction at exactly
// va, or nil. The pointee is shared with every other reader and must not
// be modified.
func (ix *Index) AtPtr(va uint64) *Inst {
	p := ix.lookup(va)
	if p < 0 {
		return nil
	}
	return &ix.Insts[p]
}

// lookup maps va to a position in Insts, or -1.
func (ix *Index) lookup(va uint64) int {
	off := va - ix.Base
	if off%4 != 0 || off/4 >= uint64(len(ix.Insts)) {
		return -1
	}
	return int(off / 4)
}

// ScanCallPads returns every address in code holding a call-accepting
// landmark encoding (BTI c, BTI jc, PACIASP/PACIBSP), ascending. Because
// AArch64 instructions are fixed-width and word-aligned, this equals the
// pad set the linear sweep discovers — superset disassembly degenerates
// to the sweep on this ISA, there are no misaligned encodings to
// recover. It exists so the byte-level-scan option has a uniform meaning
// across backends.
func ScanCallPads(code []byte, base uint64) []uint64 {
	var out []uint64
	for off := 0; off+4 <= len(code); off += 4 {
		word := binary.LittleEndian.Uint32(code[off:])
		inst := Decode(word, base+uint64(off))
		if isCallPad(&inst) {
			out = append(out, inst.Addr)
		}
	}
	return out
}

// isCallPad reports whether inst is a landmark an indirect call may land
// on: the AArch64 analog of ENDBR for entry identification.
func isCallPad(inst *Inst) bool {
	switch inst.Class {
	case ClassBTI:
		return inst.BTI.AcceptsCall()
	case ClassPACIASP:
		return true
	}
	return false
}
