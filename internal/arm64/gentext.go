package arm64

import (
	"encoding/binary"
	"math/rand"
)

// GenText synthesizes n bytes of compiler-shaped AArch64 text for sweep
// tests and benchmarks: function-entry landmarks (BTI c / PACIASP),
// prologue/epilogue pairs, ALU and move traffic, direct calls and
// branches, conditional branches, and returns, in roughly the mix real
// GCC/Clang output shows. Every emitted word is a valid instruction —
// the ISA is fixed-width, so unlike the x86 generator there is no
// data-in-text desynchronization to model.
func GenText(n int, rng *rand.Rand) []byte {
	words := n / 4
	out := make([]byte, 0, words*4)
	emit := func(word uint32) {
		out = binary.LittleEndian.AppendUint32(out, word)
	}
	reg := func() uint32 { return uint32(rng.Intn(11)) } // x0..x10
	branchOff := func(window int) uint32 {
		// Signed word offset within ±window instructions, encoded into
		// the low 26 bits of a B/BL word.
		off := rng.Intn(2*window+1) - window
		return uint32(off) & 0x03FFFFFF
	}
	for len(out)/4 < words {
		switch r := rng.Intn(100); {
		case r < 3:
			emit(0xD503245F) // bti c
		case r < 4:
			emit(0xD50324DF) // bti jc
		case r < 6:
			emit(0xD503233F) // paciasp
		case r < 14:
			emit(0x94000000 | branchOff(1<<12)) // bl
		case r < 19:
			emit(0x14000000 | branchOff(1<<12)) // b
		case r < 26:
			// b.cond with a ±1 KiB imm19 displacement.
			imm := uint32(rng.Intn(512)-256) & 0x7FFFF
			emit(0x54000000 | imm<<5 | uint32(rng.Intn(14)))
		case r < 30:
			emit(0xD65F03C0) // ret
		case r < 33:
			emit(0xA9BF7BFD) // stp x29, x30, [sp, #-16]!
		case r < 36:
			emit(0xA8C17BFD) // ldp x29, x30, [sp], #16
		case r < 40:
			emit(0xD2800000 | uint32(rng.Intn(1<<16))<<5 | reg()) // movz
		case r < 55:
			emit(0x91000000 | uint32(rng.Intn(1<<12))<<10 | reg()<<5 | reg()) // add imm
		case r < 65:
			emit(0xD1000000 | uint32(rng.Intn(1<<12))<<10 | reg()<<5 | reg()) // sub imm
		case r < 75:
			emit(0x8B000000 | reg()<<16 | reg()<<5 | reg()) // add reg
		case r < 85:
			emit(0xF9400000 | uint32(rng.Intn(64))<<10 | reg()<<5 | reg()) // ldr
		case r < 95:
			emit(0xF9000000 | uint32(rng.Intn(64))<<10 | reg()<<5 | reg()) // str
		default:
			emit(0xD503201F) // nop
		}
	}
	return out
}
