// Package arm64 implements an AArch64 instruction decoder for
// function-identification sweeps over BTI-enabled binaries.
//
// The paper's closing observation (§VI) is that the FunSeeker algorithm
// transfers to ARMv8.5 Branch Target Identification almost unchanged:
// BTI landing pads play the role of ENDBR, BL of direct calls, and B of
// direct jumps. AArch64 instructions are fixed 4-byte words, so the
// sweep is trivially self-synchronizing; and unlike ENDBR, the BTI
// operand self-describes which indirect branches may land there:
//
//	BTI c  — indirect calls (BLR): function entries
//	BTI j  — indirect jumps (BR): switch-table case labels
//	BTI jc — both
//
// PACIASP (pointer-authentication prologue) acts as an implicit BTI c
// and is treated as such.
package arm64

import "fmt"

// Class is the coarse classification of one decoded instruction.
type Class int

// Instruction classes.
const (
	// ClassOther is any instruction without a dedicated class.
	ClassOther Class = iota
	// ClassBTI is a BTI landing pad (see BTIKind).
	ClassBTI
	// ClassPACIASP is PACIASP / PACIBSP, an implicit BTI c.
	ClassPACIASP
	// ClassBL is a direct call (branch with link).
	ClassBL
	// ClassB is a direct unconditional branch.
	ClassB
	// ClassBCond groups the conditional branches (B.cond, CBZ/CBNZ,
	// TBZ/TBNZ).
	ClassBCond
	// ClassRet is RET / RETAA / RETAB.
	ClassRet
	// ClassBR is an indirect branch (BR / BRAA...).
	ClassBR
	// ClassBLR is an indirect call (BLR / BLRAA...).
	ClassBLR
	// ClassNop is NOP and the other no-effect hints.
	ClassNop
	// ClassUDF is the permanently undefined encoding.
	ClassUDF
)

var classNames = map[Class]string{
	ClassOther:   "other",
	ClassBTI:     "bti",
	ClassPACIASP: "paciasp",
	ClassBL:      "bl",
	ClassB:       "b",
	ClassBCond:   "b.cond",
	ClassRet:     "ret",
	ClassBR:      "br",
	ClassBLR:     "blr",
	ClassNop:     "nop",
	ClassUDF:     "udf",
}

// String names the class.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// BTIKind is the BTI operand.
type BTIKind int

// BTI operand kinds, by the op2<6:5> field.
const (
	// BTINone is plain `BTI` (no indirect branches may land here; it
	// guards nothing but is a valid hint).
	BTINone BTIKind = iota
	// BTIC accepts indirect calls.
	BTIC
	// BTIJ accepts indirect jumps.
	BTIJ
	// BTIJC accepts both.
	BTIJC
)

// String renders "bti", "bti c", "bti j", or "bti jc".
func (k BTIKind) String() string {
	switch k {
	case BTIC:
		return "bti c"
	case BTIJ:
		return "bti j"
	case BTIJC:
		return "bti jc"
	default:
		return "bti"
	}
}

// AcceptsCall reports whether an indirect call may land on this pad.
func (k BTIKind) AcceptsCall() bool { return k == BTIC || k == BTIJC }

// AcceptsJump reports whether an indirect jump may land on this pad.
func (k BTIKind) AcceptsJump() bool { return k == BTIJ || k == BTIJC }

// Inst is one decoded instruction. AArch64 instructions are always four
// bytes.
type Inst struct {
	// Addr is the instruction address.
	Addr uint64
	// Raw is the instruction word.
	Raw uint32
	// Class is the classification.
	Class Class
	// BTI is the landing-pad kind for ClassBTI.
	BTI BTIKind
	// Target is the absolute branch destination for ClassBL / ClassB /
	// ClassBCond; valid when HasTarget.
	Target    uint64
	HasTarget bool
}

// Next returns the address of the following instruction.
func (i Inst) Next() uint64 { return i.Addr + 4 }

// Decode decodes the 32-bit word at addr.
func Decode(word uint32, addr uint64) Inst {
	inst := Inst{Addr: addr, Raw: word, Class: ClassOther}
	switch {
	case word == 0x00000000:
		inst.Class = ClassUDF
	case word&0xFFFFFF3F == 0xD503241F:
		inst.Class = ClassBTI
		inst.BTI = BTIKind(word >> 6 & 3)
	case word == 0xD503233F || word == 0xD503237F:
		// PACIASP / PACIBSP.
		inst.Class = ClassPACIASP
	case word&0xFFFFF01F == 0xD503201F:
		// HINT family (NOP, YIELD, WFE, ...), excluding the BTI and PAC
		// encodings matched above.
		inst.Class = ClassNop
	case word&0xFC000000 == 0x94000000:
		inst.Class = ClassBL
		inst.Target = branch26Target(word, addr)
		inst.HasTarget = true
	case word&0xFC000000 == 0x14000000:
		inst.Class = ClassB
		inst.Target = branch26Target(word, addr)
		inst.HasTarget = true
	case word&0xFF000000 == 0x54000000:
		// B.cond (and BC.cond, which sets bit 4).
		inst.Class = ClassBCond
		inst.Target = branch19Target(word, addr)
		inst.HasTarget = true
	case word&0x7E000000 == 0x34000000:
		// CBZ / CBNZ.
		inst.Class = ClassBCond
		inst.Target = branch19Target(word, addr)
		inst.HasTarget = true
	case word&0x7E000000 == 0x36000000:
		// TBZ / TBNZ: imm14 at bits 18:5.
		inst.Class = ClassBCond
		imm := int64(int32(word>>5&0x3FFF)<<18) >> 18 * 4
		inst.Target = uint64(int64(addr) + imm)
		inst.HasTarget = true
	case word&0xFFFFFC1F == 0xD65F0000 || word == 0xD65F0BFF || word == 0xD65F0FFF:
		// RET Xn, RETAA, RETAB.
		inst.Class = ClassRet
	case word&0xFFFFFC1F == 0xD61F0000:
		inst.Class = ClassBR
	case word&0xFFFFFC1F == 0xD63F0000:
		inst.Class = ClassBLR
	}
	return inst
}

// branch26Target computes a ±128 MiB BL/B destination.
func branch26Target(word uint32, addr uint64) uint64 {
	imm := int64(int32(word<<6)>>6) * 4
	return uint64(int64(addr) + imm)
}

// branch19Target computes a ±1 MiB conditional destination.
func branch19Target(word uint32, addr uint64) uint64 {
	imm := int64(int32(word>>5&0x7FFFF)<<13) >> 13 * 4
	return uint64(int64(addr) + imm)
}

// LinearSweep decodes code word by word, invoking fn for each
// instruction. Trailing bytes that do not fill a word are ignored.
func LinearSweep(code []byte, base uint64, fn func(Inst) bool) {
	for off := 0; off+4 <= len(code); off += 4 {
		word := uint32(code[off]) | uint32(code[off+1])<<8 |
			uint32(code[off+2])<<16 | uint32(code[off+3])<<24
		if !fn(Decode(word, base+uint64(off))) {
			return
		}
	}
}
