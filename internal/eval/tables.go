package eval

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"time"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// GroupKey groups results by compiler and suite (Tables I and II).
type GroupKey struct {
	Comp  synth.Compiler
	Suite corpus.Suite
}

// ArchKey groups results by architecture and suite (Table III).
type ArchKey struct {
	Mode  x86.Mode
	Suite corpus.Suite
}

// TimeAgg accumulates wall-clock time per tool.
type TimeAgg struct {
	Total time.Duration
	Runs  int
}

// Mean returns the average per-binary runtime.
func (t TimeAgg) Mean() time.Duration {
	if t.Runs == 0 {
		return 0
	}
	return t.Total / time.Duration(t.Runs)
}

// Results aggregates every experiment over one corpus pass.
type Results struct {
	// TableI is the end-branch location distribution per compiler×suite.
	TableI map[GroupKey]*core.EndbrDistribution
	// Venn is the Figure 3 function-property partition, corpus-wide.
	Venn core.VennCounts
	// TableII carries the four FunSeeker ablation configurations per
	// compiler×suite.
	TableII map[GroupKey]map[Tool]*Metrics
	// TableIII carries all four tools per architecture×suite.
	TableIII map[ArchKey]map[Tool]*Metrics
	// Times accumulates runtime for FunSeeker and FETCH (the two tools
	// the paper times).
	Times map[Tool]*TimeAgg
	// FunSeekerFailures is the §V-C failure histogram for the full
	// algorithm.
	FunSeekerFailures Failures
	// Stages aggregates the shared-context per-stage cost accounting
	// (sweep / EH parse / landing pad / filter / tail call) across every
	// binary of the run — the Table-V-style runtime breakdown.
	Stages analysis.Stats
	// Binaries is the number of binaries evaluated.
	Binaries int
	// Functions is the number of ground-truth functions across the run.
	Functions int
}

// ablationTools are the Table II configurations in presentation order:
// the paper's ①–④ plus the EH-fusion configuration ⑤.
var ablationTools = []Tool{ToolFunSeeker1, ToolFunSeeker2, ToolFunSeeker3, ToolFunSeeker, ToolFunSeeker5}

// comparisonTools are the Table III tools in presentation order.
// FunSeeker-5 rides along: it is the configuration that stays
// competitive with FETCH on binaries without CET markers.
var comparisonTools = []Tool{ToolFunSeeker, ToolFunSeeker5, ToolIDA, ToolGhidra, ToolFETCH}

// timedTools get per-binary wall-clock accounting.
var timedTools = map[Tool]bool{ToolFunSeeker: true, ToolFETCH: true}

// RunAll compiles every case once and feeds all experiments.
func RunAll(cases []Case, workers int) (*Results, error) {
	res := &Results{
		TableI:            make(map[GroupKey]*core.EndbrDistribution),
		TableII:           make(map[GroupKey]map[Tool]*Metrics),
		TableIII:          make(map[ArchKey]map[Tool]*Metrics),
		Times:             make(map[Tool]*TimeAgg),
		FunSeekerFailures: make(Failures),
	}
	var mu sync.Mutex
	err := ForEach(cases, workers, func(obs Observation) error {
		gk := GroupKey{Comp: obs.Case.Config.Compiler, Suite: obs.Case.Suite}
		ak := ArchKey{Mode: obs.Case.Config.Mode, Suite: obs.Case.Suite}

		dist, err := core.ClassifyEndbrsWithContext(obs.Ctx)
		if err != nil {
			return err
		}
		venn := core.AnalyzePropertiesWithContext(obs.Ctx, obs.Result.GT.SortedEntries())

		type toolRun struct {
			tool    Tool
			m       Metrics
			elapsed time.Duration
			timed   bool
			fails   Failures
		}
		runs := make([]toolRun, 0, len(ablationTools)+len(comparisonTools))
		seen := map[Tool]bool{}
		for _, t := range append(append([]Tool{}, ablationTools...), comparisonTools...) {
			if seen[t] {
				continue
			}
			seen[t] = true
			entries, elapsed, err := TimedRunContext(t, obs.Ctx)
			if err != nil {
				return fmt.Errorf("%s: %w", t, err)
			}
			r := toolRun{tool: t, m: Score(entries, obs.Result.GT), elapsed: elapsed, timed: timedTools[t]}
			if t == ToolFunSeeker {
				r.fails = ClassifyFailures(entries, obs.Result.GT)
			}
			runs = append(runs, r)
		}

		mu.Lock()
		defer mu.Unlock()
		res.Binaries++
		res.Functions += len(obs.Result.GT.Funcs)
		d := res.TableI[gk]
		if d == nil {
			d = &core.EndbrDistribution{}
			res.TableI[gk] = d
		}
		d.Add(dist)
		res.Venn.Add(venn)
		for _, r := range runs {
			if isAblation(r.tool) {
				cell := res.TableII[gk]
				if cell == nil {
					cell = make(map[Tool]*Metrics)
					res.TableII[gk] = cell
				}
				addMetric(cell, r.tool, r.m)
			}
			if isComparison(r.tool) {
				cell := res.TableIII[ak]
				if cell == nil {
					cell = make(map[Tool]*Metrics)
					res.TableIII[ak] = cell
				}
				addMetric(cell, r.tool, r.m)
			}
			if r.timed {
				agg := res.Times[r.tool]
				if agg == nil {
					agg = &TimeAgg{}
					res.Times[r.tool] = agg
				}
				agg.Total += r.elapsed
				agg.Runs++
			}
			if r.fails != nil {
				res.FunSeekerFailures.Add(r.fails)
			}
		}
		res.Stages.Add(obs.Ctx.Stats())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func isAblation(t Tool) bool {
	for _, a := range ablationTools {
		if a == t {
			return true
		}
	}
	return false
}

func isComparison(t Tool) bool {
	for _, c := range comparisonTools {
		if c == t {
			return true
		}
	}
	return false
}

func addMetric(cell map[Tool]*Metrics, t Tool, m Metrics) {
	agg := cell[t]
	if agg == nil {
		agg = &Metrics{}
		cell[t] = agg
	}
	agg.Add(m)
}

// --- rendering ---------------------------------------------------------

// RenderTableI formats the end-branch location distribution like the
// paper's Table I.
func (r *Results) RenderTableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Distribution of end-branch instruction locations\n")
	fmt.Fprintf(&b, "%-8s %-16s %12s %14s %12s\n", "", "", "Func. Entry", "Indirect Ret.", "Exception")
	for _, comp := range []synth.Compiler{synth.GCC, synth.Clang} {
		for _, suite := range corpus.AllSuites() {
			d, ok := r.TableI[GroupKey{Comp: comp, Suite: suite}]
			if !ok || d.Total() == 0 {
				continue
			}
			tot := float64(d.Total())
			fmt.Fprintf(&b, "%-8s %-16s %11.2f%% %13.2f%% %11.2f%%\n",
				comp, suite,
				100*float64(d.FuncEntry)/tot,
				100*float64(d.IndirectReturn)/tot,
				100*float64(d.Exception)/tot)
		}
	}
	return b.String()
}

// RenderFigure3 formats the function-property Venn partition.
func (r *Results) RenderFigure3() string {
	var b strings.Builder
	v := r.Venn
	fmt.Fprintf(&b, "Figure 3: Function property overlap (%d functions)\n", v.Total)
	regions := []struct {
		mask int
		name string
	}{
		{core.PropEndbr, "EndBrAtHead only"},
		{core.PropEndbr | core.PropDirCall, "EndBr ∩ DirCall"},
		{core.PropEndbr | core.PropDirJmp, "EndBr ∩ DirJmp"},
		{core.PropEndbr | core.PropDirCall | core.PropDirJmp, "EndBr ∩ DirCall ∩ DirJmp"},
		{core.PropDirCall, "DirCallTarget only"},
		{core.PropDirCall | core.PropDirJmp, "DirCall ∩ DirJmp"},
		{core.PropDirJmp, "DirJmpTarget only"},
		{0, "none (dead code)"},
	}
	for _, reg := range regions {
		fmt.Fprintf(&b, "  %-28s %7.2f%%\n", reg.name, v.Pct(reg.mask))
	}
	fmt.Fprintf(&b, "  %-28s %7.2f%%\n", "EndBrAtHead total", v.PctWith(core.PropEndbr))
	fmt.Fprintf(&b, "  %-28s %7.2f%%\n", "DirCallTarget total", v.PctWith(core.PropDirCall))
	fmt.Fprintf(&b, "  %-28s %7.2f%%\n", "DirJmpTarget total", v.PctWith(core.PropDirJmp))
	return b.String()
}

// RenderTableII formats the ablation study like the paper's Table II.
func (r *Results) RenderTableII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: FunSeeker precision/recall under configurations 1-5\n")
	fmt.Fprintf(&b, "%-8s %-16s", "", "")
	for i := range ablationTools {
		fmt.Fprintf(&b, " | (%d) Prec.   Rec.", i+1)
	}
	fmt.Fprintln(&b)
	total := make(map[Tool]*Metrics)
	for _, comp := range []synth.Compiler{synth.GCC, synth.Clang} {
		for _, suite := range corpus.AllSuites() {
			cell, ok := r.TableII[GroupKey{Comp: comp, Suite: suite}]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%-8s %-16s", comp, suite)
			for _, t := range ablationTools {
				m := cell[t]
				if m == nil {
					m = &Metrics{}
				}
				fmt.Fprintf(&b, " |   %7.3f %7.3f", m.Precision(), m.Recall())
				addMetric(total, t, *m)
			}
			fmt.Fprintln(&b)
		}
	}
	fmt.Fprintf(&b, "%-25s", "Total")
	for _, t := range ablationTools {
		m := total[t]
		if m == nil {
			m = &Metrics{}
		}
		fmt.Fprintf(&b, " |   %7.3f %7.3f", m.Precision(), m.Recall())
	}
	fmt.Fprintln(&b)
	return b.String()
}

// RenderTableIII formats the tool comparison like the paper's Table III.
func (r *Results) RenderTableIII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: Function identification vs. state-of-the-art tools\n")
	fmt.Fprintf(&b, "%-6s %-16s", "", "")
	for _, t := range comparisonTools {
		fmt.Fprintf(&b, " | %-9s P      R   ", t)
	}
	fmt.Fprintln(&b)
	total := make(map[Tool]*Metrics)
	for _, mode := range []x86.Mode{x86.Mode32, x86.Mode64} {
		for _, suite := range corpus.AllSuites() {
			cell, ok := r.TableIII[ArchKey{Mode: mode, Suite: suite}]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%-6s %-16s", mode, suite)
			for _, t := range comparisonTools {
				m := cell[t]
				if m == nil {
					m = &Metrics{}
				}
				fmt.Fprintf(&b, " |   %7.3f %7.3f   ", m.Precision(), m.Recall())
				addMetric(total, t, *m)
			}
			fmt.Fprintln(&b)
		}
	}
	fmt.Fprintf(&b, "%-23s", "Total")
	for _, t := range comparisonTools {
		m := total[t]
		if m == nil {
			m = &Metrics{}
		}
		fmt.Fprintf(&b, " |   %7.3f %7.3f   ", m.Precision(), m.Recall())
	}
	fmt.Fprintln(&b)
	for _, t := range comparisonTools {
		if agg, ok := r.Times[t]; ok && agg.Runs > 0 {
			fmt.Fprintf(&b, "Mean time per binary, %-10s: %10s (%d binaries)\n",
				t, agg.Mean(), agg.Runs)
		}
	}
	if fs, fe := r.Times[ToolFunSeeker], r.Times[ToolFETCH]; fs != nil && fe != nil && fs.Mean() > 0 {
		fmt.Fprintf(&b, "FETCH / FunSeeker time ratio: %.1fx\n",
			float64(fe.Mean())/float64(fs.Mean()))
	}
	return b.String()
}

// RenderStages formats the shared-context per-stage cost accounting. The
// per-tool times above are marginal costs (stages already memoized by an
// earlier tool on the same binary are cache hits); this table shows where
// the shared time actually went and how often the cache served.
func (r *Results) RenderStages() string {
	return r.Stages.Render()
}

// RenderFailures formats the §V-C failure anatomy.
func (r *Results) RenderFailures() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FunSeeker failure analysis (§V-C)\n")
	var keys []FailureKind
	for k := range r.FunSeekerFailures {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	fnTotal, fpTotal := 0, 0
	for _, k := range keys {
		switch k {
		case FNDeadFunction, FNTailCall, FNOther:
			fnTotal += r.FunSeekerFailures[k]
		default:
			fpTotal += r.FunSeekerFailures[k]
		}
	}
	for _, k := range keys {
		n := r.FunSeekerFailures[k]
		den := fnTotal
		if k == FPPartBlock || k == FPOther {
			den = fpTotal
		}
		pct := 0.0
		if den > 0 {
			pct = 100 * float64(n) / float64(den)
		}
		fmt.Fprintf(&b, "  %-18s %8d (%5.1f%% of class)\n", k, n, pct)
	}
	return b.String()
}

// RenderAll concatenates every table.
func (r *Results) RenderAll() string {
	return strings.Join([]string{
		fmt.Sprintf("Corpus: %d binaries, %d functions\n", r.Binaries, r.Functions),
		r.RenderTableI(),
		r.RenderFigure3(),
		r.RenderTableII(),
		r.RenderTableIII(),
		r.RenderStages(),
		r.RenderFailures(),
	}, "\n")
}
