package eval

import (
	"fmt"
	"strings"
	"sync"

	"github.com/funseeker/funseeker/internal/core"
)

// SupersetResult compares plain FunSeeker against FunSeeker paired with
// the superset end-branch scan on a corpus whose functions carry inline
// data blobs — the hand-written-assembly scenario the paper's §VI names
// as linear sweep's limitation and proposes superset disassembly for.
type SupersetResult struct {
	// Plain is configuration ④ with linear sweep only.
	Plain Metrics
	// Superset adds the byte-level end-branch scan.
	Superset Metrics
	// Binaries counts binaries evaluated.
	Binaries int
}

// RecallGain is the recall the superset scan recovers (points).
func (r SupersetResult) RecallGain() float64 {
	return r.Superset.Recall() - r.Plain.Recall()
}

// Render formats the ablation.
func (r SupersetResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Superset disassembly ablation (§VI) over %d data-in-text binaries\n", r.Binaries)
	fmt.Fprintf(&b, "  linear sweep only:   P=%7.3f%%  R=%7.3f%%\n", r.Plain.Precision(), r.Plain.Recall())
	fmt.Fprintf(&b, "  + superset scan:     P=%7.3f%%  R=%7.3f%%\n", r.Superset.Precision(), r.Superset.Recall())
	fmt.Fprintf(&b, "  recall recovered:    %.3f points\n", r.RecallGain())
	return b.String()
}

// RunSupersetAblation evaluates both variants over the given cases (use
// a corpus generated with Options.DataInText > 0 for a meaningful
// result).
func RunSupersetAblation(cases []Case, workers int) (*SupersetResult, error) {
	res := &SupersetResult{}
	var mu sync.Mutex
	supersetOpts := core.Config4
	supersetOpts.SupersetEndbrScan = true
	err := ForEach(cases, workers, func(obs Observation) error {
		plainReport, err := core.IdentifyWithContext(obs.Ctx, core.Config4)
		if err != nil {
			return err
		}
		superReport, err := core.IdentifyWithContext(obs.Ctx, supersetOpts)
		if err != nil {
			return err
		}
		plainM := Score(plainReport.Entries, obs.Result.GT)
		superM := Score(superReport.Entries, obs.Result.GT)
		mu.Lock()
		defer mu.Unlock()
		res.Plain.Add(plainM)
		res.Superset.Add(superM)
		res.Binaries++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
