package eval

import (
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"

	"github.com/funseeker/funseeker/internal/armsynth"
	"github.com/funseeker/funseeker/internal/bticore"
	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/synth"
)

// BTIResult aggregates the ARM BTI extension experiment: the ported
// algorithm over the same program corpus, across optimization levels and
// both branch-protection flavours.
type BTIResult struct {
	// PerConfig maps the ARM build configuration string to its metrics.
	PerConfig map[string]*Metrics
	// Total aggregates everything.
	Total Metrics
	// Binaries counts binaries evaluated.
	Binaries int
}

// Render formats the experiment.
func (r *BTIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ARM BTI extension (§VI) over %d binaries\n", r.Binaries)
	keys := make([]string, 0, len(r.PerConfig))
	for k := range r.PerConfig {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		m := r.PerConfig[k]
		fmt.Fprintf(&b, "  %-22s P=%7.3f%%  R=%7.3f%%\n", k, m.Precision(), m.Recall())
	}
	fmt.Fprintf(&b, "  %-22s P=%7.3f%%  R=%7.3f%%\n", "Total", r.Total.Precision(), r.Total.Recall())
	return b.String()
}

// btiConfigs are the ARM build configurations evaluated.
func btiConfigs() []armsynth.Config {
	var out []armsynth.Config
	for _, opt := range synth.AllOptLevels() {
		out = append(out, armsynth.Config{Opt: opt})
	}
	out = append(out, armsynth.Config{Opt: synth.O2, PAC: true})
	return out
}

// RunBTI compiles the suites for ARM and scores the BTI algorithm.
func RunBTI(suites []corpus.Suite, opts corpus.Options, workers int) (*BTIResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		spec *synth.ProgSpec
		cfg  armsynth.Config
	}
	var jobs []job
	for _, s := range suites {
		for _, spec := range corpus.Generate(s, opts) {
			for _, cfg := range btiConfigs() {
				jobs = append(jobs, job{spec: spec, cfg: cfg})
			}
		}
	}

	res := &BTIResult{PerConfig: make(map[string]*Metrics)}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	work := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				compiled, err := armsynth.Compile(j.spec, j.cfg)
				if err == nil {
					var report *bticore.Report
					report, err = bticore.IdentifyBytes(compiled.Image)
					if err == nil {
						m := Score(report.Entries, compiled.GT)
						mu.Lock()
						agg := res.PerConfig[j.cfg.String()]
						if agg == nil {
							agg = &Metrics{}
							res.PerConfig[j.cfg.String()] = agg
						}
						agg.Add(m)
						res.Total.Add(m)
						res.Binaries++
						mu.Unlock()
					}
				}
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("eval: bti %s/%s: %w", j.spec.Name, j.cfg, err)
					})
				}
			}
		}()
	}
	for _, j := range jobs {
		work <- j
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
