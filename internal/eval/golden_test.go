package eval

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenConfigs is a small deterministic cross-section of the build
// matrix: both compilers, both modes, PIE and non-PIE, spread across
// optimization levels.
func goldenConfigs() []synth.Config {
	return []synth.Config{
		{Compiler: synth.GCC, Mode: x86.Mode64, PIE: false, Opt: synth.O0},
		{Compiler: synth.GCC, Mode: x86.Mode64, PIE: true, Opt: synth.O2},
		{Compiler: synth.Clang, Mode: x86.Mode32, PIE: false, Opt: synth.O1},
		{Compiler: synth.Clang, Mode: x86.Mode64, PIE: true, Opt: synth.O3},
	}
}

// goldenResults runs the evaluation once for all golden tests. The
// corpus is tiny but covers every suite and the config cross-section;
// workers=1 keeps the run deterministic end to end.
func goldenResults(t *testing.T) *Results {
	t.Helper()
	opts := corpus.Options{Scale: 0.10, Seed: 7, Programs: 2}
	cases := Cases(corpus.AllSuites(), goldenConfigs(), opts)
	res, err := RunAll(cases, 1)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	return res
}

var (
	// durationRE matches Go duration strings (1.234ms, 17µs, 2.1s ...)
	// plus any alignment padding before them — the padding width depends
	// on the duration's magnitude, so it is timing noise too.
	durationRE = regexp.MustCompile(` *\b\d+(\.\d+)?(ns|µs|us|ms|m|h|s)\b`)
	// ratioRE matches the FETCH/FunSeeker speed ratio, which is derived
	// from timings and equally nondeterministic.
	ratioRE = regexp.MustCompile(`\b\d+(\.\d+)?x\b`)
)

// scrubTimings replaces every timing-derived token with a fixed
// placeholder, leaving counts, rates, precision, and recall intact.
func scrubTimings(s string) string {
	s = durationRE.ReplaceAllString(s, "<DUR>")
	return ratioRE.ReplaceAllString(s, "<RATIO>")
}

// checkGolden compares got (post-scrub) against the named golden file,
// rewriting the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	got = scrubTimings(got)
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\nRe-run with -update if the change is intentional.",
			name, got, want)
	}
}

func TestGoldenTables(t *testing.T) {
	res := goldenResults(t)
	t.Run("table1", func(t *testing.T) { checkGolden(t, "table1", res.RenderTableI()) })
	t.Run("figure3", func(t *testing.T) { checkGolden(t, "figure3", res.RenderFigure3()) })
	t.Run("table2", func(t *testing.T) { checkGolden(t, "table2", res.RenderTableII()) })
	t.Run("table3", func(t *testing.T) { checkGolden(t, "table3", res.RenderTableIII()) })
	t.Run("stages", func(t *testing.T) { checkGolden(t, "stages", res.RenderStages()) })
	t.Run("failures", func(t *testing.T) { checkGolden(t, "failures", res.RenderFailures()) })
}

// TestGoldenScrubIsStable guards the scrubber itself: a golden run
// rendered twice from the same Results must be byte-identical after
// scrubbing, proving no nondeterminism leaks past the regexes.
func TestGoldenScrubIsStable(t *testing.T) {
	res := goldenResults(t)
	a := scrubTimings(res.RenderAll())
	b := scrubTimings(res.RenderAll())
	if a != b {
		t.Fatal("RenderAll is not deterministic even after timing scrub")
	}
}
