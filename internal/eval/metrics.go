// Package eval scores function-identification tools against ground truth
// and regenerates the FunSeeker paper's tables and figures over the
// synthetic corpus.
package eval

import (
	"fmt"

	"github.com/funseeker/funseeker/internal/groundtruth"
)

// Metrics is a confusion-count accumulator.
type Metrics struct {
	// TP counts identified addresses that are true entries.
	TP int
	// FP counts identified addresses that are not entries.
	FP int
	// FN counts true entries the tool missed.
	FN int
}

// Add accumulates another metric set.
func (m *Metrics) Add(o Metrics) {
	m.TP += o.TP
	m.FP += o.FP
	m.FN += o.FN
}

// Precision returns TP/(TP+FP) as a percentage (100 when nothing was
// reported).
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 100
	}
	return 100 * float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN) as a percentage (100 when there was nothing
// to find).
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 100
	}
	return 100 * float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall (percentage).
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders "P=99.41% R=99.83% (tp/fp/fn)".
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.3f%% R=%.3f%% (tp=%d fp=%d fn=%d)",
		m.Precision(), m.Recall(), m.TP, m.FP, m.FN)
}

// Score compares a tool's identified entries with the ground truth.
func Score(found []uint64, gt *groundtruth.GT) Metrics {
	truth := gt.Entries()
	var m Metrics
	seen := make(map[uint64]bool, len(found))
	for _, f := range found {
		if seen[f] {
			continue
		}
		seen[f] = true
		if truth[f] {
			m.TP++
		} else {
			m.FP++
		}
	}
	for addr := range truth {
		if !seen[addr] {
			m.FN++
		}
	}
	return m
}

// FailureKind classifies a miss or a spurious entry (§V-C analysis).
type FailureKind int

// Failure classes.
const (
	// FNDeadFunction: a missed function that nothing references.
	FNDeadFunction FailureKind = iota + 1
	// FNTailCall: a missed tail-call target.
	FNTailCall
	// FNOther: any other miss.
	FNOther
	// FPPartBlock: a reported .part/.cold fragment.
	FPPartBlock
	// FPOther: any other spurious report.
	FPOther
)

// String names the failure class.
func (k FailureKind) String() string {
	switch k {
	case FNDeadFunction:
		return "FN:dead-function"
	case FNTailCall:
		return "FN:tail-call"
	case FNOther:
		return "FN:other"
	case FPPartBlock:
		return "FP:part-block"
	case FPOther:
		return "FP:other"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// Failures is a histogram over failure classes.
type Failures map[FailureKind]int

// Add accumulates another histogram.
func (f Failures) Add(o Failures) {
	for k, v := range o {
		f[k] += v
	}
}

// ClassifyFailures buckets every FP and FN of a run.
func ClassifyFailures(found []uint64, gt *groundtruth.GT) Failures {
	out := make(Failures)
	truth := gt.Entries()
	parts := make(map[uint64]bool, len(gt.PartBlocks))
	for _, p := range gt.PartBlocks {
		parts[p] = true
	}
	fset := make(map[uint64]bool, len(found))
	for _, f := range found {
		fset[f] = true
		if truth[f] {
			continue
		}
		if parts[f] {
			out[FPPartBlock]++
		} else {
			out[FPOther]++
		}
	}
	for _, fn := range gt.Funcs {
		if fset[fn.Addr] {
			continue
		}
		switch {
		case fn.Dead:
			out[FNDeadFunction]++
		default:
			out[FNTailCall]++
		}
	}
	return out
}
