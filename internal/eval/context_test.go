package eval

import (
	"strings"
	"testing"

	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// TestSharedContextSingleSweep runs the full tool×config matrix — five
// FunSeeker configurations, IDA, Ghidra, FETCH, plus the Table I and
// Figure 3 studies — and asserts on the analysis.Stats counters that each
// binary was linearly swept exactly once and its .eh_frame parsed at most
// once, with every further consumer served from the memoized context.
func TestSharedContextSingleSweep(t *testing.T) {
	opts := corpus.Options{Scale: 0.3, Seed: 21, Programs: 1}
	configs := []synth.Config{
		{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2},
		{Compiler: synth.Clang, Mode: x86.Mode64, PIE: true, Opt: synth.O2},
	}
	cases := Cases(corpus.AllSuites()[:1], configs, opts)
	res, err := RunAll(cases, 2)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if res.Binaries == 0 {
		t.Fatal("no binaries evaluated")
	}
	n := uint64(res.Binaries)

	st := res.Stages
	if st.Sweep.Computes != n {
		t.Errorf("linear sweeps = %d over %d binaries, want exactly one per binary", st.Sweep.Computes, n)
	}
	// Sweep consumers per binary: the 5 FunSeeker configurations, the IDA
	// code-reference scan, the FETCH jump scan, and the two studies — all
	// but the first must be cache hits.
	if st.Sweep.Hits < 8*n {
		t.Errorf("sweep cache hits = %d, want >= %d (8 per binary)", st.Sweep.Hits, 8*n)
	}
	if st.EHParse.Computes > n {
		t.Errorf(".eh_frame parses = %d over %d binaries, want at most one per binary", st.EHParse.Computes, n)
	}
	if st.EHParse.Computes == 0 {
		t.Error("no .eh_frame parse at all — GCC x86-64 binaries must carry FDEs")
	}
	if st.LandingPad.Computes != n {
		t.Errorf("landing-pad joins = %d, want exactly one per binary", st.LandingPad.Computes)
	}
	// FILTERENDBR runs once per FunSeeker configuration, SELECTTAILCALL
	// for configurations ④ and ⑤, and the FDE index is built once per
	// binary (configuration ⑤'s fusion stage).
	if st.Filter.Computes != 5*n {
		t.Errorf("filter stage ran %d times, want %d (5 configs per binary)", st.Filter.Computes, 5*n)
	}
	if st.TailCall.Computes != 2*n {
		t.Errorf("tail-call stage ran %d times, want %d (configs 4 and 5 only)", st.TailCall.Computes, 2*n)
	}
	if st.FDEIndex.Computes != n {
		t.Errorf("FDE index built %d times, want exactly one per binary", st.FDEIndex.Computes)
	}

	if out := res.RenderStages(); !strings.Contains(out, "sweep") {
		t.Errorf("RenderStages missing sweep row:\n%s", out)
	}
	if out := res.RenderAll(); !strings.Contains(out, "Per-stage analysis cost") {
		t.Error("RenderAll must include the stage-cost table")
	}
}
