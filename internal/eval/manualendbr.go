package eval

import (
	"fmt"
	"strings"
	"sync"

	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/synth"
)

// ManualEndbrResult compares FunSeeker on default CET builds against
// -mmanual-endbr builds of the same programs (paper §VI: the option can
// only cost FunSeeker the direct tail-call targets and unreachable
// functions, ≈1.24% of entries).
type ManualEndbrResult struct {
	// Default is FunSeeker on -fcf-protection=full builds.
	Default Metrics
	// Manual is FunSeeker on -mmanual-endbr builds.
	Manual Metrics
	// MissedUnreachable counts manual-build misses that no instruction
	// references (the "unreachable functions" the paper's §VI argument
	// sets aside — without an end branch and without references they are
	// dead code to any syntactic tool).
	MissedUnreachable int
	// MissedReachable counts manual-build misses that are referenced by
	// some direct branch (lone tail-call targets): the paper bounds this
	// class at ≈1.24% of functions.
	MissedReachable int
	// Functions counts ground-truth functions across the manual builds.
	Functions int
	// Binaries counts binary pairs evaluated.
	Binaries int
}

// RecallDrop is the recall delta (percentage points) the option costs.
func (r ManualEndbrResult) RecallDrop() float64 {
	return r.Default.Recall() - r.Manual.Recall()
}

// ReachableMissPct is the fraction of functions that are reachable yet
// missed under -mmanual-endbr — the class the paper bounds at ≈1.24%.
func (r ManualEndbrResult) ReachableMissPct() float64 {
	if r.Functions == 0 {
		return 0
	}
	return 100 * float64(r.MissedReachable) / float64(r.Functions)
}

// Render formats the comparison.
func (r ManualEndbrResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Manual-endbr ablation (§VI) over %d binary pairs\n", r.Binaries)
	fmt.Fprintf(&b, "  default build:       P=%7.3f%%  R=%7.3f%%\n", r.Default.Precision(), r.Default.Recall())
	fmt.Fprintf(&b, "  -mmanual-endbr:      P=%7.3f%%  R=%7.3f%%\n", r.Manual.Precision(), r.Manual.Recall())
	fmt.Fprintf(&b, "  recall drop:         %.3f points\n", r.RecallDrop())
	fmt.Fprintf(&b, "  misses, unreachable: %d (no instruction references them — invisible to any syntactic tool)\n", r.MissedUnreachable)
	fmt.Fprintf(&b, "  misses, reachable:   %d = %.3f%% of functions (paper bound: ≈1.24%%)\n",
		r.MissedReachable, r.ReachableMissPct())
	return b.String()
}

// RunManualEndbrAblation compiles every case twice — with and without
// automatic end-branch insertion — and scores the full FunSeeker
// algorithm on both.
func RunManualEndbrAblation(cases []Case, workers int) (*ManualEndbrResult, error) {
	res := &ManualEndbrResult{}
	var mu sync.Mutex
	err := ForEach(cases, workers, func(obs Observation) error {
		entries, err := ToolFunSeeker.RunContext(obs.Ctx)
		if err != nil {
			return err
		}
		defaultM := Score(entries, obs.Result.GT)

		manualCfg := obs.Case.Config
		manualCfg.ManualEndbr = true
		manualRes, err := synth.Compile(obs.Case.Spec, manualCfg)
		if err != nil {
			return err
		}
		manualBin, err := elfx.Load(manualRes.Stripped)
		if err != nil {
			return err
		}
		manualReport, err := core.Identify(manualBin, core.Config4)
		if err != nil {
			return err
		}
		manualM := Score(manualReport.Entries, manualRes.GT)

		// Decompose the misses: a miss with no direct branch reference
		// anywhere in the binary is unreachable code.
		referenced := make(map[uint64]bool, len(manualReport.CallTargets)+len(manualReport.JumpTargets))
		for _, a := range manualReport.CallTargets {
			referenced[a] = true
		}
		for _, a := range manualReport.JumpTargets {
			referenced[a] = true
		}
		foundSet := make(map[uint64]bool, len(manualReport.Entries))
		for _, a := range manualReport.Entries {
			foundSet[a] = true
		}
		unreachable, reachable := 0, 0
		for _, f := range manualRes.GT.Funcs {
			if foundSet[f.Addr] {
				continue
			}
			if referenced[f.Addr] {
				reachable++
			} else {
				unreachable++
			}
		}

		mu.Lock()
		defer mu.Unlock()
		res.Default.Add(defaultM)
		res.Manual.Add(manualM)
		res.MissedUnreachable += unreachable
		res.MissedReachable += reachable
		res.Functions += len(manualRes.GT.Funcs)
		res.Binaries++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
