package eval

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/fetch"
	"github.com/funseeker/funseeker/internal/ghidra"
	"github.com/funseeker/funseeker/internal/idapro"
	"github.com/funseeker/funseeker/internal/synth"
)

// Tool identifies one function-identification tool under evaluation.
type Tool int

// The evaluated tools.
const (
	// ToolFunSeeker is the full FunSeeker algorithm (configuration ④).
	ToolFunSeeker Tool = iota + 1
	// ToolFunSeeker1..3 are the ablation configurations of Table II.
	ToolFunSeeker1
	ToolFunSeeker2
	ToolFunSeeker3
	// ToolIDA is the IDA Pro model.
	ToolIDA
	// ToolGhidra is the Ghidra model.
	ToolGhidra
	// ToolFETCH is the FETCH model.
	ToolFETCH
	// ToolFunSeeker5 is configuration ⑤: configuration ④ plus EH
	// fusion (FDE starts + coverage intervals + LSDA landing pads).
	// Appended after the original tools so persisted Tool values keep
	// their meaning.
	ToolFunSeeker5
)

// String names the tool as the paper's tables do.
func (t Tool) String() string {
	switch t {
	case ToolFunSeeker:
		return "FunSeeker"
	case ToolFunSeeker1:
		return "FunSeeker-1"
	case ToolFunSeeker2:
		return "FunSeeker-2"
	case ToolFunSeeker3:
		return "FunSeeker-3"
	case ToolIDA:
		return "IDA Pro"
	case ToolGhidra:
		return "Ghidra"
	case ToolFETCH:
		return "FETCH"
	case ToolFunSeeker5:
		return "FunSeeker-5"
	default:
		return fmt.Sprintf("Tool(%d)", int(t))
	}
}

// Run executes the tool on a loaded binary with a private analysis
// context, returning the identified entries. When several tools run over
// the same binary, build one analysis.Context and use RunContext so the
// linear sweep and .eh_frame parse are shared.
func (t Tool) Run(bin *elfx.Binary) ([]uint64, error) {
	return t.RunContext(analysis.NewContext(bin))
}

// RunContext executes the tool against the shared per-binary analysis
// context.
func (t Tool) RunContext(actx *analysis.Context) ([]uint64, error) {
	switch t {
	case ToolFunSeeker, ToolFunSeeker1, ToolFunSeeker2, ToolFunSeeker3, ToolFunSeeker5:
		opts := map[Tool]core.Options{
			ToolFunSeeker:  core.Config4,
			ToolFunSeeker1: core.Config1,
			ToolFunSeeker2: core.Config2,
			ToolFunSeeker3: core.Config3,
			ToolFunSeeker5: core.Config5,
		}[t]
		r, err := core.IdentifyWithContext(actx, opts)
		if err != nil {
			return nil, err
		}
		return r.Entries, nil
	case ToolIDA:
		r, err := idapro.IdentifyWithContext(actx)
		if err != nil {
			return nil, err
		}
		return r.Entries, nil
	case ToolGhidra:
		r, err := ghidra.IdentifyWithContext(actx)
		if err != nil {
			return nil, err
		}
		return r.Entries, nil
	case ToolFETCH:
		r, err := fetch.IdentifyWithContext(actx)
		if err != nil {
			return nil, err
		}
		return r.Entries, nil
	default:
		return nil, fmt.Errorf("eval: unknown tool %d", int(t))
	}
}

// Case is one (program, configuration) cell of the evaluation matrix.
type Case struct {
	// Suite is the benchmark suite the program belongs to.
	Suite corpus.Suite
	// Spec is the program specification.
	Spec *synth.ProgSpec
	// Config is the build configuration.
	Config synth.Config
}

// Cases enumerates the full matrix for the given suites and configs.
func Cases(suites []corpus.Suite, configs []synth.Config, opts corpus.Options) []Case {
	var cases []Case
	for _, s := range suites {
		specs := corpus.Generate(s, opts)
		for _, spec := range specs {
			for _, cfg := range configs {
				cases = append(cases, Case{Suite: s, Spec: spec, Config: cfg})
			}
		}
	}
	return cases
}

// Observation hands a compiled, loaded case to an aggregator callback.
type Observation struct {
	Case Case
	// Result is the compilation output (images + ground truth).
	Result *synth.Result
	// Bin is the stripped binary, loaded.
	Bin *elfx.Binary
	// Ctx is the shared analysis context over Bin. Every tool and study
	// run against the same Observation should consume it, so the linear
	// sweep and .eh_frame parse happen once per binary no matter how
	// many cells of the tool×config matrix the binary feeds.
	Ctx *analysis.Context
}

// ForEach compiles every case and invokes fn, using workers goroutines
// (0 = GOMAXPROCS). Each binary is loaded once and wrapped in one shared
// analysis.Context; fn fans the tool×config matrix out over that context
// rather than reloading per tool. fn is called concurrently and must
// synchronize its own aggregation. Binaries are discarded after fn
// returns, so arbitrary matrix sizes run in bounded memory.
func ForEach(cases []Case, workers int, fn func(Observation) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	work := make(chan Case)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				res, err := synth.Compile(c.Spec, c.Config)
				if err == nil {
					var bin *elfx.Binary
					bin, err = elfx.Load(res.Stripped)
					if err == nil {
						err = fn(Observation{
							Case:   c,
							Result: res,
							Bin:    bin,
							Ctx:    analysis.NewContext(bin),
						})
					}
				}
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("eval: %s/%s: %w", c.Spec.Name, c.Config, err)
					})
				}
			}
		}()
	}
	for _, c := range cases {
		work <- c
	}
	close(work)
	wg.Wait()
	return firstErr
}

// TimedRun measures one tool run with a private context (cold path:
// includes the sweep and parse costs).
func TimedRun(t Tool, bin *elfx.Binary) ([]uint64, time.Duration, error) {
	start := time.Now()
	entries, err := t.Run(bin)
	return entries, time.Since(start), err
}

// TimedRunContext measures one tool run against a shared context. Stage
// costs already paid by earlier consumers of actx are not re-incurred —
// the measured time is the tool's marginal cost; consult analysis.Stats
// for the shared-stage breakdown.
func TimedRunContext(t Tool, actx *analysis.Context) ([]uint64, time.Duration, error) {
	start := time.Now()
	entries, err := t.RunContext(actx)
	return entries, time.Since(start), err
}
