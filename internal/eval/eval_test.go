package eval

import (
	"sync"
	"testing"

	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

func TestMetricsBasics(t *testing.T) {
	gt := &groundtruth.GT{Funcs: []groundtruth.Func{
		{Name: "a", Addr: 0x1000},
		{Name: "b", Addr: 0x2000},
		{Name: "c", Addr: 0x3000},
	}}
	m := Score([]uint64{0x1000, 0x2000, 0x9999}, gt)
	if m.TP != 2 || m.FP != 1 || m.FN != 1 {
		t.Fatalf("Score = %+v", m)
	}
	if p := m.Precision(); p < 66.6 || p > 66.7 {
		t.Errorf("Precision = %f", p)
	}
	if r := m.Recall(); r < 66.6 || r > 66.7 {
		t.Errorf("Recall = %f", r)
	}
	if m.F1() <= 0 {
		t.Error("F1 should be positive")
	}
	// Duplicates in found must not double-count.
	m2 := Score([]uint64{0x1000, 0x1000}, gt)
	if m2.TP != 1 {
		t.Fatalf("duplicate handling: %+v", m2)
	}
	// Empty cases.
	var zero Metrics
	if zero.Precision() != 100 || zero.Recall() != 100 {
		t.Error("empty metrics should report 100%")
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{TP: 1, FP: 2, FN: 3}
	b := Metrics{TP: 10, FP: 20, FN: 30}
	a.Add(b)
	if a.TP != 11 || a.FP != 22 || a.FN != 33 {
		t.Fatalf("Add = %+v", a)
	}
	if a.String() == "" {
		t.Error("String must render")
	}
}

func TestClassifyFailures(t *testing.T) {
	gt := &groundtruth.GT{
		Funcs: []groundtruth.Func{
			{Name: "live", Addr: 0x1000},
			{Name: "dead", Addr: 0x2000, Dead: true, Static: true},
			{Name: "tail", Addr: 0x3000, Static: true},
		},
		PartBlocks: []uint64{0x4000},
	}
	f := ClassifyFailures([]uint64{0x1000, 0x4000, 0x5000}, gt)
	if f[FPPartBlock] != 1 || f[FPOther] != 1 {
		t.Fatalf("FP classes: %v", f)
	}
	if f[FNDeadFunction] != 1 || f[FNTailCall] != 1 {
		t.Fatalf("FN classes: %v", f)
	}
	g := make(Failures)
	g.Add(f)
	g.Add(f)
	if g[FPPartBlock] != 2 {
		t.Fatalf("Failures.Add: %v", g)
	}
}

// smokeConfigs is a small but representative configuration slice.
func smokeConfigs() []synth.Config {
	return []synth.Config{
		{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2},
		{Compiler: synth.GCC, Mode: x86.Mode32, Opt: synth.O0},
		{Compiler: synth.Clang, Mode: x86.Mode64, PIE: true, Opt: synth.O3},
		{Compiler: synth.Clang, Mode: x86.Mode32, Opt: synth.O1},
	}
}

func smokeResults(t *testing.T) *Results {
	t.Helper()
	opts := corpus.Options{Scale: 0.35, Seed: 11, Programs: 3}
	cases := Cases(corpus.AllSuites(), smokeConfigs(), opts)
	res, err := RunAll(cases, 0)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	return res
}

func TestRunAllShapes(t *testing.T) {
	res := smokeResults(t)
	if res.Binaries != 3*3*4 {
		t.Fatalf("evaluated %d binaries, want 36", res.Binaries)
	}

	// --- Table III shape: FunSeeker dominates. ---
	totals := make(map[Tool]*Metrics)
	for _, cell := range res.TableIII {
		for tool, m := range cell {
			addMetric(totals, tool, *m)
		}
	}
	fs := totals[ToolFunSeeker]
	if fs == nil {
		t.Fatal("no FunSeeker results")
	}
	if fs.Recall() < 99 {
		t.Errorf("FunSeeker recall = %.2f, want > 99", fs.Recall())
	}
	if fs.Precision() < 98 {
		t.Errorf("FunSeeker precision = %.2f, want > 98", fs.Precision())
	}
	ida := totals[ToolIDA]
	if ida.Recall() >= fs.Recall() {
		t.Errorf("IDA recall %.2f should be below FunSeeker %.2f", ida.Recall(), fs.Recall())
	}
	ghid := totals[ToolGhidra]
	if ghid.Recall() >= fs.Recall() {
		t.Errorf("Ghidra recall %.2f should be below FunSeeker %.2f", ghid.Recall(), fs.Recall())
	}
	fetchM := totals[ToolFETCH]
	if fetchM.Recall() >= fs.Recall() {
		t.Errorf("FETCH recall %.2f should be below FunSeeker %.2f", fetchM.Recall(), fs.Recall())
	}

	// FETCH collapses on x86 (Clang side has no FDEs) but not on x86-64.
	fetch32, fetch64 := &Metrics{}, &Metrics{}
	for key, cell := range res.TableIII {
		if m := cell[ToolFETCH]; m != nil {
			if key.Mode == x86.Mode32 {
				fetch32.Add(*m)
			} else {
				fetch64.Add(*m)
			}
		}
	}
	if fetch32.Recall() >= fetch64.Recall() {
		t.Errorf("FETCH x86 recall %.2f should trail x86-64 recall %.2f",
			fetch32.Recall(), fetch64.Recall())
	}
	if fetch64.Recall() < 95 {
		t.Errorf("FETCH x86-64 recall = %.2f, want high (FDE coverage)", fetch64.Recall())
	}

	// --- Table II shape: ② improves precision over ①; ③ collapses it;
	// ④ restores it. ---
	agg := make(map[Tool]*Metrics)
	for _, cell := range res.TableII {
		for tool, m := range cell {
			addMetric(agg, tool, *m)
		}
	}
	p1 := agg[ToolFunSeeker1].Precision()
	p2 := agg[ToolFunSeeker2].Precision()
	p3 := agg[ToolFunSeeker3].Precision()
	p4 := agg[ToolFunSeeker].Precision()
	if p2 <= p1 {
		t.Errorf("config2 precision %.2f should exceed config1 %.2f", p2, p1)
	}
	if p3 >= p2-10 {
		t.Errorf("config3 precision %.2f should collapse well below config2 %.2f", p3, p2)
	}
	if p4 <= p3 {
		t.Errorf("config4 precision %.2f should recover from config3 %.2f", p4, p3)
	}
	r3 := agg[ToolFunSeeker3].Recall()
	r2 := agg[ToolFunSeeker2].Recall()
	if r3 < r2 {
		t.Errorf("config3 recall %.2f should be >= config2 recall %.2f", r3, r2)
	}

	// --- Table I shape: exceptions only in SPEC (the C++ suite). ---
	for key, dist := range res.TableI {
		if key.Suite == corpus.SPEC {
			continue
		}
		if dist.Exception != 0 {
			t.Errorf("%v/%v: C suite has %d exception endbrs", key.Comp, key.Suite, dist.Exception)
		}
	}
	spec := &core.EndbrDistribution{}
	for key, dist := range res.TableI {
		if key.Suite == corpus.SPEC {
			spec.Add(*dist)
		}
	}
	if spec.Total() == 0 {
		t.Fatal("no SPEC endbr data")
	}
	// The paper's band is 20-28%; a 3-program smoke sample is noisy, so
	// accept a wide corridor here (the full-corpus check lives in the
	// benchmark harness).
	excFrac := float64(spec.Exception) / float64(spec.Total())
	if excFrac < 0.05 || excFrac > 0.45 {
		t.Errorf("SPEC exception endbr fraction = %.2f, want 0.05-0.45", excFrac)
	}

	// --- Figure 3 shape. ---
	endbrPct := res.Venn.PctWith(core.PropEndbr)
	if endbrPct < 80 || endbrPct > 97 {
		t.Errorf("EndBrAtHead = %.2f%%, want 80-97%%", endbrPct)
	}

	// --- Failure anatomy: dead functions dominate FNs; part blocks are
	// the FPs. ---
	f := res.FunSeekerFailures
	if f[FPOther] > f[FPPartBlock] {
		t.Errorf("non-part false positives (%d) exceed part-block FPs (%d)", f[FPOther], f[FPPartBlock])
	}

	// Rendering must produce non-empty output for all tables.
	for name, s := range map[string]string{
		"TableI":   res.RenderTableI(),
		"Figure3":  res.RenderFigure3(),
		"TableII":  res.RenderTableII(),
		"TableIII": res.RenderTableIII(),
		"Failures": res.RenderFailures(),
		"All":      res.RenderAll(),
	} {
		if len(s) < 40 {
			t.Errorf("%s render too short: %q", name, s)
		}
	}
}

// TestConfig5Acceptance pins configuration ⑤'s two-sided contract. On
// CET binaries fusing EH metadata may only help: F1 must be at least
// configuration ④'s. On FDE-only (no-CET) binaries — where ①–④
// degrade to direct-call targets and recover only a fraction of the
// functions — the FDE+LSDA evidence alone must carry recall to ≥ 90%.
func TestConfig5Acceptance(t *testing.T) {
	opts := corpus.Options{Scale: 0.25, Seed: 19, Programs: 2}

	score := func(configs []synth.Config) (m4, m5 Metrics) {
		t.Helper()
		var mu sync.Mutex
		cases := Cases(corpus.AllSuites(), configs, opts)
		err := ForEach(cases, 0, func(obs Observation) error {
			e4, err := ToolFunSeeker.RunContext(obs.Ctx)
			if err != nil {
				return err
			}
			e5, err := ToolFunSeeker5.RunContext(obs.Ctx)
			if err != nil {
				return err
			}
			mu.Lock()
			m4.Add(Score(e4, obs.Result.GT))
			m5.Add(Score(e5, obs.Result.GT))
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("ForEach: %v", err)
		}
		return m4, m5
	}

	// CET side: the full smoke matrix.
	m4, m5 := score(smokeConfigs())
	if m5.F1() < m4.F1() {
		t.Errorf("CET: config-5 F1 %.3f below config-4 F1 %.3f", m5.F1(), m4.F1())
	}
	if m5.Recall() < m4.Recall() {
		t.Errorf("CET: config-5 recall %.3f below config-4 recall %.3f", m5.Recall(), m4.Recall())
	}

	// FDE-only side: the same toolchains without -fcf-protection,
	// restricted to full-FDE emitters (GCC both modes, Clang x86-64 —
	// Clang x86 only covers EH functions and is pinned separately in
	// the diffcheck battery).
	nocet := []synth.Config{
		{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2, NoCET: true},
		{Compiler: synth.GCC, Mode: x86.Mode32, Opt: synth.O0, NoCET: true},
		{Compiler: synth.Clang, Mode: x86.Mode64, PIE: true, Opt: synth.O3, NoCET: true},
	}
	n4, n5 := score(nocet)
	if r := n5.Recall(); r < 90 {
		t.Errorf("FDE-only: config-5 recall = %.2f%%, want >= 90%%", r)
	}
	if r4, r5 := n4.Recall(), n5.Recall(); r4 >= r5 {
		t.Errorf("FDE-only: config-4 recall %.2f%% should trail config-5 %.2f%%", r4, r5)
	}
}

func TestToolStrings(t *testing.T) {
	for _, tool := range []Tool{ToolFunSeeker, ToolFunSeeker1, ToolFunSeeker2, ToolFunSeeker3, ToolFunSeeker5, ToolIDA, ToolGhidra, ToolFETCH} {
		if tool.String() == "" {
			t.Errorf("tool %d has empty name", tool)
		}
	}
	if _, err := Tool(99).Run(nil); err == nil {
		t.Error("unknown tool should error")
	}
}

func TestCasesEnumeration(t *testing.T) {
	opts := corpus.Options{Scale: 0.2, Seed: 1, Programs: 2}
	cases := Cases([]corpus.Suite{corpus.Coreutils}, smokeConfigs(), opts)
	if len(cases) != 2*4 {
		t.Fatalf("got %d cases, want 8", len(cases))
	}
}

func TestTimeAgg(t *testing.T) {
	var agg TimeAgg
	if agg.Mean() != 0 {
		t.Error("empty TimeAgg mean should be 0")
	}
	agg.Total = 100
	agg.Runs = 4
	if agg.Mean() != 25 {
		t.Errorf("Mean = %d", agg.Mean())
	}
}

func TestManualEndbrAblation(t *testing.T) {
	opts := corpus.Options{Scale: 0.3, Seed: 13, Programs: 2}
	cases := Cases([]corpus.Suite{corpus.Coreutils}, smokeConfigs(), opts)
	res, err := RunManualEndbrAblation(cases, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Binaries != len(cases) {
		t.Fatalf("evaluated %d pairs, want %d", res.Binaries, len(cases))
	}
	// The default build must not lose recall to the manual one.
	if res.Manual.Recall() > res.Default.Recall() {
		t.Errorf("manual-endbr recall %.2f exceeds default %.2f",
			res.Manual.Recall(), res.Default.Recall())
	}
	// Paper §VI: the impact is marginal — a few percent at most (the
	// endbr-only exported class keeps its tail reachable via calls and
	// jumps; only unreferenced/lone-tail functions disappear).
	if drop := res.RecallDrop(); drop > 60 {
		t.Errorf("recall drop = %.2f points — manual-endbr modeling is too destructive", drop)
	}
	if len(res.Render()) < 40 {
		t.Error("render too short")
	}
}

func TestRunBTI(t *testing.T) {
	opts := corpus.Options{Scale: 0.25, Seed: 4, Programs: 2}
	res, err := RunBTI([]corpus.Suite{corpus.Coreutils}, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2 programs × 7 ARM configurations.
	if res.Binaries != 14 {
		t.Fatalf("evaluated %d binaries, want 14", res.Binaries)
	}
	if res.Total.Recall() < 99 {
		t.Errorf("BTI recall = %.2f", res.Total.Recall())
	}
	if res.Total.Precision() < 99 {
		t.Errorf("BTI precision = %.2f", res.Total.Precision())
	}
	if len(res.Render()) < 60 {
		t.Error("render too short")
	}
}

func TestRunSupersetAblation(t *testing.T) {
	opts := corpus.Options{Scale: 0.3, Seed: 21, Programs: 3, DataInText: 0.25}
	cases := Cases([]corpus.Suite{corpus.Coreutils}, smokeConfigs(), opts)
	res, err := RunSupersetAblation(cases, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Binaries != len(cases) {
		t.Fatalf("evaluated %d, want %d", res.Binaries, len(cases))
	}
	// The superset scan must never lose recall, and on a data-in-text
	// corpus it should recover some.
	if res.Superset.Recall() < res.Plain.Recall() {
		t.Errorf("superset recall %.2f below plain %.2f",
			res.Superset.Recall(), res.Plain.Recall())
	}
	if res.RecallGain() <= 0 {
		t.Errorf("no recall recovered on a data-in-text corpus (plain %.3f, superset %.3f)",
			res.Plain.Recall(), res.Superset.Recall())
	}
	if len(res.Render()) < 60 {
		t.Error("render too short")
	}
}
