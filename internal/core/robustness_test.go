package core

import (
	"cmp"
	"math/rand"
	"slices"
	"strings"
	"testing"
	"testing/quick"

	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// TestDataInTextResync injects raw data bytes into .text (hand-written
// assembly / jump-table-in-text style) and checks identification
// neither crashes nor loses the functions after the junk — the
// linear-sweep resync behaviour of §IV-B.
func TestDataInTextResync(t *testing.T) {
	bin, gt := compileAndLoad(t, studySpec(synth.LangC), defaultCfg())
	// Overwrite the dead function's body with non-code bytes.
	var deadStart, deadSize uint64
	for _, f := range gt.Funcs {
		if f.Name == "dead_static" {
			deadStart, deadSize = f.Addr, f.Size
		}
	}
	if deadSize == 0 {
		t.Fatal("no dead function to corrupt")
	}
	lo := deadStart - bin.TextAddr
	rng := rand.New(rand.NewSource(1))
	for i := uint64(0); i < deadSize; i++ {
		bin.Text[lo+i] = byte(rng.Intn(256))
	}
	report, err := Identify(bin, Config4)
	if err != nil {
		t.Fatalf("Identify on corrupted text: %v", err)
	}
	// Functions after the dead one must still be found.
	found := map[uint64]bool{}
	for _, e := range report.Entries {
		found[e] = true
	}
	for _, f := range gt.Funcs {
		if f.Addr <= deadStart || f.Dead {
			continue
		}
		if !f.HasEndbr && f.Static {
			continue // static functions may legitimately be missed
		}
		if !found[f.Addr] {
			t.Errorf("%s at %#x lost after data-in-text", f.Name, f.Addr)
		}
	}
}

// TestMissingEHSections strips the exception metadata and checks
// graceful degradation: no crash, no landing-pad filtering.
func TestMissingEHSections(t *testing.T) {
	bin, _ := compileAndLoad(t, studySpec(synth.LangCPP), defaultCfg())
	bin.EHFrame = nil
	bin.ExceptTable = nil
	report, err := Identify(bin, Config4)
	if err != nil {
		t.Fatalf("Identify without EH sections: %v", err)
	}
	if report.FilteredLandingPads != 0 {
		t.Error("filtered landing pads without exception metadata")
	}
	if len(report.Entries) == 0 {
		t.Error("no entries found")
	}
	// Absent metadata is not corrupt metadata: no warning is recorded.
	if len(report.Warnings) != 0 {
		t.Errorf("unexpected warnings for stripped EH sections: %q", report.Warnings)
	}
}

// TestCorruptEHFrameFallback corrupts .eh_frame and checks that
// FILTERENDBR falls back to the unfiltered set instead of failing the
// whole identification.
func TestCorruptEHFrameFallback(t *testing.T) {
	bin, gt := compileAndLoad(t, studySpec(synth.LangCPP), defaultCfg())
	for i := range bin.EHFrame {
		bin.EHFrame[i] = 0xA5
	}
	report, err := Identify(bin, Config4)
	if err != nil {
		t.Fatalf("Identify with corrupt eh_frame: %v", err)
	}
	_, _, fn, _, _ := score(report.Entries, gt)
	// Recall must not degrade (only precision can, via unfiltered pads).
	if fn > 3 {
		t.Errorf("recall collapsed with corrupt eh_frame: %d FNs", fn)
	}
	// The fallback must no longer be silent.
	if len(report.Warnings) == 0 {
		t.Fatal("corrupt exception metadata produced no warning")
	}
	if !strings.Contains(report.Warnings[0], "exception metadata unreadable") {
		t.Errorf("warning = %q, want the landing-pad fallback notice", report.Warnings[0])
	}
}

// TestTruncatedText truncates .text mid-instruction.
func TestTruncatedText(t *testing.T) {
	bin, _ := compileAndLoad(t, studySpec(synth.LangC), defaultCfg())
	bin.Text = bin.Text[:len(bin.Text)/2+1]
	if _, err := Identify(bin, Config4); err != nil {
		t.Fatalf("Identify on truncated text: %v", err)
	}
}

// TestEmptyText handles a pathological empty section.
func TestEmptyText(t *testing.T) {
	bin, _ := compileAndLoad(t, studySpec(synth.LangC), defaultCfg())
	bin.Text = nil
	report, err := Identify(bin, Config4)
	if err != nil {
		t.Fatalf("Identify on empty text: %v", err)
	}
	if len(report.Entries) != 0 {
		t.Errorf("found %d entries in empty text", len(report.Entries))
	}
}

// TestLiveFunctionsAlwaysFound is the central correctness property,
// checked over randomized program shapes: every live function that is
// (a) non-static, (b) direct-called, or (c) tail-called from 2+
// functions must be identified by configuration ④.
func TestLiveFunctionsAlwaysFound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nf := 4 + rng.Intn(12)
		spec := &synth.ProgSpec{
			Name: "prop",
			Lang: synth.LangC,
			Seed: seed,
		}
		for i := 0; i < nf; i++ {
			fs := synth.FuncSpec{Name: name(i), BodySize: 2 + rng.Intn(6)}
			switch rng.Intn(4) {
			case 0:
				fs.Static = true
			case 1:
				fs.AddressTakenData = true
			}
			spec.Funcs = append(spec.Funcs, fs)
		}
		// Wire every static function to a caller; every second function
		// also gets a direct call.
		for i := 1; i < nf; i++ {
			if spec.Funcs[i].Static || rng.Intn(2) == 0 {
				caller := rng.Intn(i)
				spec.Funcs[caller].Calls = append(spec.Funcs[caller].Calls, i)
			}
		}
		cfgs := synth.AllConfigs()
		cfg := cfgs[rng.Intn(len(cfgs))]
		res, err := synth.Compile(spec, cfg)
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		bin, err := elfx.Load(res.Stripped)
		if err != nil {
			t.Logf("load: %v", err)
			return false
		}
		report, err := Identify(bin, Config4)
		if err != nil {
			t.Logf("identify: %v", err)
			return false
		}
		found := map[uint64]bool{}
		for _, e := range report.Entries {
			found[e] = true
		}
		calledSet := map[int]bool{}
		for i := range spec.Funcs {
			for _, c := range spec.Funcs[i].Calls {
				calledSet[c] = true
			}
		}
		for i, fn := range res.GT.Funcs {
			mustFind := fn.HasEndbr || calledSet[i-1] // funcs[0] in GT is _start
			if fn.Name == "_start" {
				mustFind = true
			}
			if mustFind && !found[fn.Addr] {
				t.Logf("%s (%s): missed %s at %#x", spec.Name, cfg, fn.Name, fn.Addr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func name(i int) string {
	if i == 0 {
		return "main"
	}
	return "fn_" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

// TestSweepFindsEveryEndbr cross-checks that disassembly recovers
// exactly the ground-truth end-branch set on every configuration.
func TestSweepFindsEveryEndbr(t *testing.T) {
	spec := studySpec(synth.LangCPP)
	for _, cfg := range []synth.Config{
		{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O3},
		{Compiler: synth.Clang, Mode: x86.Mode32, PIE: true, Opt: synth.Ofast},
	} {
		bin, gt := compileAndLoad(t, spec, cfg)
		report, err := Identify(bin, Config1)
		if err != nil {
			t.Fatal(err)
		}
		if len(report.Endbrs) != len(gt.Endbrs) {
			t.Errorf("%s: swept %d endbrs, ground truth has %d",
				cfg, len(report.Endbrs), len(gt.Endbrs))
		}
	}
}

// TestSupersetEndbrScan injects junk that desynchronizes the linear
// sweep right before a function and checks the superset scan (the §VI
// future-work pairing) recovers the entry while plain config ④ may not.
func TestSupersetEndbrScan(t *testing.T) {
	bin, gt := compileAndLoad(t, studySpec(synth.LangC), defaultCfg())
	// Find two adjacent functions and stomp the tail of the first with
	// bytes that decode across the boundary (a long mov immediate whose
	// operand swallows the next function's endbr would be ideal; an
	// 0x48 0xB8 10-byte mov imm64 prefix works: place it 6 bytes before
	// the boundary so the imm64 covers the endbr).
	var funcs []groundtruth.Func
	for _, f := range gt.Funcs {
		funcs = append(funcs, f)
	}
	slices.SortFunc(funcs, func(a, b groundtruth.Func) int { return cmp.Compare(a.Addr, b.Addr) })
	var victim groundtruth.Func
	for i := 0; i+1 < len(funcs); i++ {
		if funcs[i+1].HasEndbr && funcs[i].Size >= 8 {
			victim = funcs[i+1]
			off := victim.Addr - bin.TextAddr - 6
			bin.Text[off] = 0x48
			bin.Text[off+1] = 0xB8 // mov rax, imm64: swallows 8 bytes
			break
		}
	}
	if victim.Addr == 0 {
		t.Skip("no suitable adjacent function pair")
	}
	plain, err := Identify(bin, Config4)
	if err != nil {
		t.Fatal(err)
	}
	super := Config4
	super.SupersetEndbrScan = true
	enhanced, err := Identify(bin, super)
	if err != nil {
		t.Fatal(err)
	}
	foundIn := func(entries []uint64) bool {
		for _, e := range entries {
			if e == victim.Addr {
				return true
			}
		}
		return false
	}
	if !foundIn(enhanced.Entries) {
		t.Errorf("superset scan did not recover %s at %#x", victim.Name, victim.Addr)
	}
	// The superset run must find at least as many endbrs as the plain run.
	if len(enhanced.Endbrs) < len(plain.Endbrs) {
		t.Errorf("superset endbrs %d < plain %d", len(enhanced.Endbrs), len(plain.Endbrs))
	}
}

// TestSupersetNoEffectOnCleanBinaries: on well-formed binaries the
// superset scan changes nothing (the encodings never straddle real
// instructions).
func TestSupersetNoEffectOnCleanBinaries(t *testing.T) {
	bin, _ := compileAndLoad(t, studySpec(synth.LangCPP), defaultCfg())
	plain, err := Identify(bin, Config4)
	if err != nil {
		t.Fatal(err)
	}
	super := Config4
	super.SupersetEndbrScan = true
	enhanced, err := Identify(bin, super)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Entries) != len(enhanced.Entries) {
		t.Fatalf("superset changed clean-binary results: %d vs %d entries",
			len(plain.Entries), len(enhanced.Entries))
	}
	for i := range plain.Entries {
		if plain.Entries[i] != enhanced.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

// TestOptionCombinations pins the less-traveled option interactions.
func TestOptionCombinations(t *testing.T) {
	bin, gt := compileAndLoad(t, studySpec(synth.LangC), defaultCfg())
	// SelectTailCall without UseJumpTargets: jump machinery is off.
	r, err := Identify(bin, Options{FilterEndbr: true, SelectTailCall: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TailCallTargets) != 0 {
		t.Error("tail-call targets selected without UseJumpTargets")
	}
	// TailBoundaryOnly is a superset of the strict rule.
	strict, err := Identify(bin, Config4)
	if err != nil {
		t.Fatal(err)
	}
	loose := Config4
	loose.TailBoundaryOnly = true
	relaxed, err := Identify(bin, loose)
	if err != nil {
		t.Fatal(err)
	}
	if len(relaxed.Entries) < len(strict.Entries) {
		t.Errorf("boundary-only (%d entries) must not be stricter than config4 (%d)",
			len(relaxed.Entries), len(strict.Entries))
	}
	// Boundary-only finds the lone tail target config4 rejects.
	var lone uint64
	for _, f := range gt.Funcs {
		if f.Name == "lone_tail_target" {
			lone = f.Addr
		}
	}
	inSet := func(entries []uint64, a uint64) bool {
		for _, e := range entries {
			if e == a {
				return true
			}
		}
		return false
	}
	if inSet(strict.Entries, lone) {
		t.Error("config4 should reject the lone tail target")
	}
	if !inSet(relaxed.Entries, lone) {
		t.Error("boundary-only should accept the lone tail target")
	}
}
