package core

import (
	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/elfx"
)

// EndbrDistribution counts end-branch instructions per location class,
// reproducing the measurement behind Table I.
type EndbrDistribution struct {
	// FuncEntry counts end branches at function entries (the residual
	// class: neither indirect-return sites nor landing pads).
	FuncEntry int
	// IndirectReturn counts end branches after indirect-return calls.
	IndirectReturn int
	// Exception counts end branches at exception landing pads.
	Exception int
}

// Total is the number of classified end branches.
func (d EndbrDistribution) Total() int {
	return d.FuncEntry + d.IndirectReturn + d.Exception
}

// Add accumulates another distribution.
func (d *EndbrDistribution) Add(o EndbrDistribution) {
	d.FuncEntry += o.FuncEntry
	d.IndirectReturn += o.IndirectReturn
	d.Exception += o.Exception
}

// ClassifyEndbrs classifies every end branch in .text using only the
// binary's own metadata (PLT names and exception tables) — the analysis
// of paper §III-B.
func ClassifyEndbrs(bin *elfx.Binary) (EndbrDistribution, error) {
	return ClassifyEndbrsWithContext(analysis.NewContext(bin))
}

// ClassifyEndbrsWithContext classifies the end branches using the shared
// sweep and landing-pad artifacts memoized in actx.
func ClassifyEndbrsWithContext(actx *analysis.Context) (EndbrDistribution, error) {
	var dist EndbrDistribution
	pads, err := actx.LandingPads()
	if err != nil {
		return dist, err
	}
	sw := actx.Sweep()
	for _, e := range sw.Endbrs {
		switch {
		case sw.AfterIRCall[e]:
			dist.IndirectReturn++
		case pads[e]:
			dist.Exception++
		default:
			dist.FuncEntry++
		}
	}
	return dist, nil
}

// Property bit masks for the Figure 3 Venn analysis.
const (
	// PropEndbr marks EndBrAtHead: the entry starts with an end branch.
	PropEndbr = 1 << iota
	// PropDirCall marks DirCallTarget: some direct call targets the entry.
	PropDirCall
	// PropDirJmp marks DirJmpTarget: some direct unconditional jump
	// targets the entry.
	PropDirJmp
)

// VennCounts is the 8-region partition of functions by the three
// syntactic properties (Figure 3).
type VennCounts struct {
	// Region is indexed by the property bitmask (0..7).
	Region [8]int
	// Total is the number of functions analyzed.
	Total int
}

// Add accumulates another count set.
func (v *VennCounts) Add(o VennCounts) {
	for i := range v.Region {
		v.Region[i] += o.Region[i]
	}
	v.Total += o.Total
}

// Pct returns the percentage of functions in the region selected by mask.
func (v VennCounts) Pct(mask int) float64 {
	if v.Total == 0 {
		return 0
	}
	return 100 * float64(v.Region[mask]) / float64(v.Total)
}

// PctWith returns the percentage of functions having all properties in
// mask (union over regions that include the mask).
func (v VennCounts) PctWith(mask int) float64 {
	if v.Total == 0 {
		return 0
	}
	n := 0
	for region, c := range v.Region {
		if region&mask == mask {
			n += c
		}
	}
	return 100 * float64(n) / float64(v.Total)
}

// AnalyzeProperties computes, for each true function entry, which of the
// three syntactic properties hold, reproducing the study behind Figure 3.
func AnalyzeProperties(bin *elfx.Binary, entries []uint64) VennCounts {
	return AnalyzePropertiesWithContext(analysis.NewContext(bin), entries)
}

// AnalyzePropertiesWithContext runs the property study over the shared
// sweep artifacts memoized in actx.
func AnalyzePropertiesWithContext(actx *analysis.Context, entries []uint64) VennCounts {
	sw := actx.Sweep()
	var v VennCounts
	for _, e := range entries {
		mask := 0
		if sw.EndbrSet[e] {
			mask |= PropEndbr
		}
		if sw.AllCallTargets[e] {
			mask |= PropDirCall
		}
		if sw.UncondJumpTargets[e] {
			mask |= PropDirJmp
		}
		v.Region[mask]++
		v.Total++
	}
	return v
}
