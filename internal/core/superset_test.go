package core

import (
	"slices"
	"testing"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// TestMergeSupersetEndbrsDedup checks that addresses the linear sweep
// already found are not duplicated by the byte-level scan.
func TestMergeSupersetEndbrsDedup(t *testing.T) {
	endbrs := []uint64{0x1000, 0x1020}
	scanned := []uint64{0x1000, 0x1010, 0x1020}
	got := mergeSupersetEndbrs(scanned, endbrs)
	want := []uint64{0x1000, 0x1010, 0x1020}
	if !slices.Equal(got, want) {
		t.Fatalf("merge = %#x, want %#x", got, want)
	}
}

// TestMergeSupersetEndbrsSorted checks the result is ascending even when
// scan-only addresses precede every sweep-found end branch.
func TestMergeSupersetEndbrsSorted(t *testing.T) {
	endbrs := []uint64{0x1100, 0x1200}
	scanned := []uint64{0x1000, 0x1180}
	got := mergeSupersetEndbrs(scanned, endbrs)
	if !slices.IsSorted(got) {
		t.Fatalf("merge not sorted: %#x", got)
	}
	if !slices.Equal(got, []uint64{0x1000, 0x1100, 0x1180, 0x1200}) {
		t.Fatalf("merge = %#x", got)
	}
}

// TestSupersetFindsEndbr32 hides an ENDBR32 (FB final byte) behind inline
// data that desynchronizes the linear sweep and checks the superset scan
// recovers it.
func TestSupersetFindsEndbr32(t *testing.T) {
	text := []byte{
		0xC3,                   // ret
		0x0F,                   // junk byte: desynchronizes the sweep
		0xF3, 0x0F, 0x1E, 0xFB, // endbr32 @ +2
		0xC3, // ret
	}
	bin := &elfx.Binary{Mode: x86.Mode32, Text: text, TextAddr: 0x3000}
	ctx := analysis.NewContext(bin)
	report, err := IdentifyWithContext(ctx, Options{SupersetEndbrScan: true})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(report.Endbrs, 0x3002) {
		t.Fatalf("superset scan missed the ENDBR32 at 0x3002: Endbrs = %#x", report.Endbrs)
	}
}

// TestSupersetStraddlingEncoding places a truncated end-branch encoding
// at the very end of .text; an encoding whose tail would run past the
// section must not match.
func TestSupersetStraddlingEncoding(t *testing.T) {
	text := []byte{
		0xF3, 0x0F, 0x1E, 0xFA, // endbr64 @ 0x4000 (complete)
		0xC3,             // ret
		0xF3, 0x0F, 0x1E, // truncated encoding straddling the end
	}
	bin := &elfx.Binary{Mode: x86.Mode64, Text: text, TextAddr: 0x4000}
	ctx := analysis.NewContext(bin)
	scanned := ctx.SupersetEndbrs()
	if !slices.Equal(scanned, []uint64{0x4000}) {
		t.Fatalf("scan = %#x, want only 0x4000", scanned)
	}
	report, err := IdentifyWithContext(ctx, Options{SupersetEndbrScan: true})
	if err != nil {
		t.Fatal(err)
	}
	if slices.Contains(report.Endbrs, 0x4005) {
		t.Fatal("straddling encoding must not produce an end branch")
	}
	if !slices.IsSorted(report.Endbrs) {
		t.Fatalf("Endbrs not sorted: %#x", report.Endbrs)
	}
}

// TestSupersetDedupAgainstSweep runs the full option path on text where
// the sweep and the byte scan find the same end branch, checking it is
// reported once.
func TestSupersetDedupAgainstSweep(t *testing.T) {
	text := []byte{
		0xF3, 0x0F, 0x1E, 0xFA, // endbr64 @ 0x5000 — found by both passes
		0xC3, // ret
	}
	bin := &elfx.Binary{Mode: x86.Mode64, Text: text, TextAddr: 0x5000}
	report, err := IdentifyWithContext(analysis.NewContext(bin), Options{SupersetEndbrScan: true})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range report.Endbrs {
		if e == 0x5000 {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("end branch at 0x5000 reported %d times, want once", n)
	}
}
