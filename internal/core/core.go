// Package core implements FunSeeker, the CET-aware function-entry
// identification algorithm of Kim et al. (DSN 2022).
//
// The algorithm (paper Algorithm 1) is a single linear-sweep disassembly
// pass followed by two purely syntactic refinements:
//
//	E, C, J  = DISASSEMBLE(text)   // end branches, call targets, jump targets
//	E'       = FILTERENDBR(E)      // drop endbr after indirect-return calls
//	                               // and endbr at exception landing pads
//	J'       = SELECTTAILCALL(J)   // keep only direct jumps that look like
//	                               // tail calls
//	entries  = E' ∪ C ∪ J'
//
// Complexity is linear in the size of the binary; no data-flow analysis,
// CFG recovery, or learned model is involved.
//
// The DISASSEMBLE step and the exception-metadata parse are shared
// artifacts: they come from an analysis.Context, so when several
// configurations (or several tools) analyze the same binary the sweep and
// the .eh_frame parse happen once. Identify constructs a throwaway
// context; batch callers should build one analysis.Context per binary and
// use IdentifyWithContext.
package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"time"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/elfx"
)

// ErrNotCET is returned when Options.RequireCET is set and the sweep
// finds no landmark instruction at all: the binary was not built with
// Intel CET / IBT (or, on AArch64, with BTI), so the marker-based
// algorithm has nothing to work with. Match with
// errors.Is(err, ErrNotCET).
var ErrNotCET = errors.New("core: no end branches found (binary not CET-enabled?)")

// Options selects which refinements run, mirroring the paper's four
// evaluation configurations (Table II).
type Options struct {
	// FilterEndbr enables FILTERENDBR (configurations ②③④).
	FilterEndbr bool
	// UseJumpTargets adds direct jump targets J to the candidate set
	// (configurations ③④).
	UseJumpTargets bool
	// SelectTailCall enables SELECTTAILCALL, replacing J with the
	// tail-call subset J′ (configuration ④).
	SelectTailCall bool
	// TailBoundaryOnly weakens SELECTTAILCALL to the boundary-escape
	// test alone, dropping the multiple-reference requirement. This is
	// an ablation knob (see DESIGN.md §4), not part of the paper's
	// configurations.
	TailBoundaryOnly bool
	// RequireCET makes identification fail with ErrNotCET when the sweep
	// finds no end-branch instruction at all. Corpus services use this to
	// reject non-CET binaries loudly instead of returning the silently
	// degraded E=∅ result.
	RequireCET bool
	// FuseEH fuses exception-handling metadata into the candidate set
	// (configuration ⑤, after Pang et al., arXiv:2104.03168): every
	// .eh_frame FDE pc-begin inside .text that is not an exception
	// landing pad becomes an entry, and — when SelectTailCall is on —
	// SELECTTAILCALL runs a second pass over the enlarged set, keeping
	// only extra tail-call targets that do not land strictly inside an
	// FDE coverage interval. The stage only ever adds candidates, so a
	// FuseEH report's entry set is a superset of the same options
	// without it. On binaries without CET markers the FDE+LSDA evidence
	// alone carries detection (RequireCET must be off for those).
	FuseEH bool
	// SupersetEndbrScan additionally scans for end-branch encodings at
	// every byte offset rather than only at linear-sweep instruction
	// boundaries. This realizes the paper's §VI suggestion of pairing
	// FunSeeker with superset disassembly: when hand-written assembly or
	// inline data desynchronizes the linear sweep, the byte-level scan
	// still recovers the end branches behind the junk. The end-branch
	// encodings are long and never alias compiler-generated code, so the
	// superset adds no false candidates on clean binaries.
	SupersetEndbrScan bool
	// Arch forces a specific analysis backend. The zero value
	// (elfx.ArchAuto) dispatches on the binary's ELF header, which is
	// right for every normal caller; tests and header-distrusting tools
	// can pin a backend instead.
	Arch elfx.Arch
}

// Configuration presets from Table II.
var (
	// Config1 is E ∪ C: raw end branches plus direct call targets.
	Config1 = Options{}
	// Config2 is E′ ∪ C: adds FILTERENDBR.
	Config2 = Options{FilterEndbr: true}
	// Config3 is E′ ∪ C ∪ J: additionally treats every direct jump
	// target as a candidate.
	Config3 = Options{FilterEndbr: true, UseJumpTargets: true}
	// Config4 is E′ ∪ C ∪ J′: the full FunSeeker algorithm.
	Config4 = Options{FilterEndbr: true, UseJumpTargets: true, SelectTailCall: true}
	// Config5 is E′ ∪ C ∪ J′ ∪ F: configuration ④ fused with .eh_frame
	// evidence (FDE starts + coverage intervals + LSDA landing pads).
	// Unlike ①–④ it keeps working on binaries with no CET markers at
	// all — FDE starts alone carry detection there.
	Config5 = Options{FilterEndbr: true, UseJumpTargets: true, SelectTailCall: true, FuseEH: true}
)

// DefaultOptions is the full algorithm (configuration ④).
var DefaultOptions = Config4

// Report is the result of one identification run.
type Report struct {
	// Arch names the backend that produced the report ("x86-64",
	// "aarch64", ...), in the canonical elfx.Arch spelling.
	Arch string

	// Entries is the sorted set of identified function entry addresses.
	Entries []uint64

	// Endbrs is E: every landmark address in .text — end branches on
	// x86, call-accepting BTI/PACIASP pads on AArch64.
	Endbrs []uint64
	// CallTargets is C: every direct-call target inside .text.
	CallTargets []uint64
	// JumpTargets is J: every direct unconditional-jump target inside
	// .text.
	JumpTargets []uint64
	// TailCallTargets is J′ after SELECTTAILCALL (empty unless enabled).
	TailCallTargets []uint64

	// FilteredIndirectReturn counts end branches removed because they
	// follow a call to an indirect-return function.
	FilteredIndirectReturn int
	// FilteredLandingPads counts end branches removed because they sit
	// at an exception landing pad.
	FilteredLandingPads int

	// FusedFDEEntries counts entries the EH-fusion stage added that no
	// other evidence source had found (zero unless Options.FuseEH).
	FusedFDEEntries int

	// Warnings records non-fatal degradations of the run — today, corrupt
	// exception metadata that forced FILTERENDBR to proceed without the
	// landing-pad set. Callers that need to tell filtered-with-EH from
	// fell-back-without-EH inspect this instead of guessing from counts.
	Warnings []string
}

// Identify runs FunSeeker over a loaded binary with a private analysis
// context. Batch callers analyzing one binary several times (or with
// several tools) should build one analysis.Context and use
// IdentifyWithContext so the sweep and exception parse are shared.
func Identify(bin *elfx.Binary, opts Options) (*Report, error) {
	return IdentifyWithContext(analysis.NewContext(bin), opts)
}

// IdentifyWithContext runs FunSeeker using the shared per-binary analysis
// artifacts memoized in actx.
func IdentifyWithContext(actx *analysis.Context, opts Options) (*Report, error) {
	return IdentifyCtx(context.Background(), actx, opts)
}

// IdentifyCtx is the cancellation-aware form of IdentifyWithContext: the
// dominant cost — the linear sweep — checks ctx at parallel-shard and
// stride boundaries, and the refinement stages check it at stage
// boundaries, so a canceled request returns ctx.Err() quickly instead of
// completing the analysis. (By convention throughout this module, ctx is
// a context.Context and actx a *analysis.Context.)
func IdentifyCtx(ctx context.Context, actx *analysis.Context, opts Options) (*Report, error) {
	bin := actx.Binary()
	sw, err := actx.SweepArchCtx(ctx, opts.Arch)
	if err != nil {
		return nil, err
	}
	endbrs := sw.Endbrs
	if opts.RequireCET && len(endbrs) == 0 {
		if bin.Path != "" {
			return nil, fmt.Errorf("%s: %w", bin.Path, ErrNotCET)
		}
		return nil, ErrNotCET
	}
	if opts.SupersetEndbrScan {
		endbrs = mergeSupersetEndbrs(actx.SupersetMarkers(opts.Arch), endbrs)
	}

	report := &Report{
		Arch:        sw.Arch.String(),
		Endbrs:      append([]uint64(nil), endbrs...),
		CallTargets: append([]uint64(nil), sw.CallTargets...),
		JumpTargets: append([]uint64(nil), sw.JumpTargets...),
	}

	// FILTERENDBR.
	filterStart := time.Now()
	candidates := make(map[uint64]bool, len(endbrs)+len(sw.CallTargets))
	landingPads := map[uint64]bool{}
	if opts.FilterEndbr {
		pads, err := actx.LandingPads()
		if err != nil {
			// Corrupt exception metadata must not abort identification;
			// fall back to the unfiltered set for the EH part — and say
			// so, because the caller cannot otherwise distinguish a
			// pad-free binary from an unreadable one.
			report.Warnings = append(report.Warnings,
				"exception metadata unreadable, landing-pad filter disabled: "+err.Error())
		} else {
			landingPads = pads
		}
	}
	for _, e := range endbrs {
		if opts.FilterEndbr {
			if sw.AfterIRCall[e] {
				report.FilteredIndirectReturn++
				continue
			}
			if landingPads[e] {
				report.FilteredLandingPads++
				continue
			}
		}
		candidates[e] = true
	}
	for _, t := range sw.CallTargets {
		candidates[t] = true
	}
	actx.ObserveFilter(time.Since(filterStart))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Jump-target handling.
	tailSet := map[uint64]bool{}
	switch {
	case opts.UseJumpTargets && opts.SelectTailCall:
		tailStart := time.Now()
		tails := selectTailCalls(bin, sw.JumpRefs, candidates, opts.TailBoundaryOnly)
		actx.ObserveTailCall(time.Since(tailStart))
		tailSet = tails
		for t := range tails {
			candidates[t] = true
		}
	case opts.UseJumpTargets:
		for _, t := range sw.JumpTargets {
			candidates[t] = true
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// EH fusion (configuration ⑤). Runs after the marker pipeline is
	// complete and only ever adds candidates, so the result is a
	// superset of the same options without FuseEH by construction.
	if opts.FuseEH {
		fuseEH(actx, bin, sw, opts, report, candidates, tailSet, landingPads)
	}
	if len(tailSet) > 0 {
		report.TailCallTargets = setToSorted(tailSet)
	}

	if opts.FilterEndbr || opts.FuseEH {
		for _, w := range actx.EHWarnings() {
			report.Warnings = append(report.Warnings, "eh_frame: "+w)
		}
	}

	report.Entries = setToSorted(candidates)
	return report, nil
}

// fuseEH is the configuration-⑤ stage: union in-text FDE start addresses
// (minus landing pads) into the candidate set, then — when tail-call
// selection is on — re-run SELECTTAILCALL over the enlarged set and keep
// only the extra tail targets that are not strictly interior to an FDE
// coverage interval (an interior "target" belongs to an already-known
// function) and not landing pads. Both steps are purely additive.
func fuseEH(actx *analysis.Context, bin *elfx.Binary, sw *analysis.Sweep, opts Options,
	report *Report, candidates, tailSet, landingPads map[uint64]bool) {
	ix, err := actx.FDEIndex()
	if err != nil {
		// Same degradation contract as FILTERENDBR: corrupt exception
		// metadata must not abort identification, and the caller must be
		// able to tell fused from fell-back.
		report.Warnings = append(report.Warnings,
			"exception metadata unreadable, EH fusion disabled: "+err.Error())
		return
	}
	if !opts.FilterEndbr {
		// The filter stage did not materialize the landing-pad set; the
		// fusion stage still needs it (an FDE never *starts* at a pad,
		// but guard against hand-built metadata that says otherwise).
		if pads, err := actx.LandingPads(); err == nil {
			landingPads = pads
		}
	}
	// On a CET binary every real entry the fusion could add is a
	// marker-less function nothing references (the dead-static miss
	// class); an FDE start that IS a direct jump target there is a
	// .cold/.part fragment split out of its parent, and fusing it would
	// trade the recall win for a precision loss. On marker-free
	// binaries the distinction is unavailable — tail-called functions
	// are legitimately jump targets — so every FDE start counts.
	cet := len(sw.Endbrs) > 0
	for _, start := range ix.Starts {
		if landingPads[start] || candidates[start] {
			continue
		}
		if cet && sw.JumpTargetSet[start] {
			continue
		}
		candidates[start] = true
		report.FusedFDEEntries++
	}
	if opts.UseJumpTargets && opts.SelectTailCall && report.FusedFDEEntries > 0 {
		tailStart := time.Now()
		tails := selectTailCalls(bin, sw.JumpRefs, candidates, opts.TailBoundaryOnly)
		actx.ObserveTailCall(time.Since(tailStart))
		for t := range tails {
			if candidates[t] || tailSet[t] || landingPads[t] || ix.Interior(t) {
				continue
			}
			tailSet[t] = true
			candidates[t] = true
		}
	}
}

// IdentifyFile loads the ELF at path and runs the full algorithm.
func IdentifyFile(path string, opts Options) (*Report, error) {
	return IdentifyFileCtx(context.Background(), path, opts)
}

// IdentifyFileCtx loads the ELF at path and runs the full algorithm
// under ctx (see IdentifyCtx for the cancellation semantics).
func IdentifyFileCtx(ctx context.Context, path string, opts Options) (*Report, error) {
	bin, err := elfx.Open(path)
	if err != nil {
		return nil, err
	}
	return IdentifyCtx(ctx, analysis.NewContext(bin), opts)
}

// mergeSupersetEndbrs unions the byte-level end-branch scan into the
// sweep-found set E, deduplicating addresses the linear sweep already
// discovered. Both inputs are ascending; the result is ascending.
func mergeSupersetEndbrs(scanned, endbrs []uint64) []uint64 {
	have := make(map[uint64]bool, len(endbrs))
	out := make([]uint64, 0, len(endbrs)+len(scanned))
	for _, e := range endbrs {
		have[e] = true
		out = append(out, e)
	}
	for _, va := range scanned {
		if !have[va] {
			have[va] = true
			out = append(out, va)
		}
	}
	slices.Sort(out)
	return out
}

// setToSorted converts an address set to a sorted slice.
func setToSorted(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}
