// Package core implements FunSeeker, the CET-aware function-entry
// identification algorithm of Kim et al. (DSN 2022).
//
// The algorithm (paper Algorithm 1) is a single linear-sweep disassembly
// pass followed by two purely syntactic refinements:
//
//	E, C, J  = DISASSEMBLE(text)   // end branches, call targets, jump targets
//	E'       = FILTERENDBR(E)      // drop endbr after indirect-return calls
//	                               // and endbr at exception landing pads
//	J'       = SELECTTAILCALL(J)   // keep only direct jumps that look like
//	                               // tail calls
//	entries  = E' ∪ C ∪ J'
//
// Complexity is linear in the size of the binary; no data-flow analysis,
// CFG recovery, or learned model is involved.
package core

import (
	"sort"

	"github.com/funseeker/funseeker/internal/cet"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// Options selects which refinements run, mirroring the paper's four
// evaluation configurations (Table II).
type Options struct {
	// FilterEndbr enables FILTERENDBR (configurations ②③④).
	FilterEndbr bool
	// UseJumpTargets adds direct jump targets J to the candidate set
	// (configurations ③④).
	UseJumpTargets bool
	// SelectTailCall enables SELECTTAILCALL, replacing J with the
	// tail-call subset J′ (configuration ④).
	SelectTailCall bool
	// TailBoundaryOnly weakens SELECTTAILCALL to the boundary-escape
	// test alone, dropping the multiple-reference requirement. This is
	// an ablation knob (see DESIGN.md §4), not part of the paper's
	// configurations.
	TailBoundaryOnly bool
	// SupersetEndbrScan additionally scans for end-branch encodings at
	// every byte offset rather than only at linear-sweep instruction
	// boundaries. This realizes the paper's §VI suggestion of pairing
	// FunSeeker with superset disassembly: when hand-written assembly or
	// inline data desynchronizes the linear sweep, the byte-level scan
	// still recovers the end branches behind the junk. The end-branch
	// encodings are long and never alias compiler-generated code, so the
	// superset adds no false candidates on clean binaries.
	SupersetEndbrScan bool
}

// Configuration presets from Table II.
var (
	// Config1 is E ∪ C: raw end branches plus direct call targets.
	Config1 = Options{}
	// Config2 is E′ ∪ C: adds FILTERENDBR.
	Config2 = Options{FilterEndbr: true}
	// Config3 is E′ ∪ C ∪ J: additionally treats every direct jump
	// target as a candidate.
	Config3 = Options{FilterEndbr: true, UseJumpTargets: true}
	// Config4 is E′ ∪ C ∪ J′: the full FunSeeker algorithm.
	Config4 = Options{FilterEndbr: true, UseJumpTargets: true, SelectTailCall: true}
)

// DefaultOptions is the full algorithm (configuration ④).
var DefaultOptions = Config4

// Report is the result of one identification run.
type Report struct {
	// Entries is the sorted set of identified function entry addresses.
	Entries []uint64

	// Endbrs is E: every end-branch address in .text.
	Endbrs []uint64
	// CallTargets is C: every direct-call target inside .text.
	CallTargets []uint64
	// JumpTargets is J: every direct unconditional-jump target inside
	// .text.
	JumpTargets []uint64
	// TailCallTargets is J′ after SELECTTAILCALL (empty unless enabled).
	TailCallTargets []uint64

	// FilteredIndirectReturn counts end branches removed because they
	// follow a call to an indirect-return function.
	FilteredIndirectReturn int
	// FilteredLandingPads counts end branches removed because they sit
	// at an exception landing pad.
	FilteredLandingPads int
}

// jumpRef records one direct unconditional jump.
type jumpRef struct {
	src    uint64 // address of the jmp instruction
	target uint64
}

// sweepResult carries everything one disassembly pass collects.
type sweepResult struct {
	endbrs      []uint64
	callTargets map[uint64]bool
	jumpRefs    []jumpRef
	// afterIRCall marks end-branch addresses immediately preceded by a
	// call to a PLT entry of an indirect-return function.
	afterIRCall map[uint64]bool
}

// Identify runs FunSeeker over a loaded binary.
func Identify(bin *elfx.Binary, opts Options) (*Report, error) {
	sw := disassemble(bin)
	if opts.SupersetEndbrScan {
		mergeSupersetEndbrs(bin, sw)
	}

	report := &Report{
		Endbrs:      append([]uint64(nil), sw.endbrs...),
		CallTargets: setToSorted(sw.callTargets),
	}
	jumpTargetSet := make(map[uint64]bool, len(sw.jumpRefs))
	for _, j := range sw.jumpRefs {
		if bin.InText(j.target) {
			jumpTargetSet[j.target] = true
		}
	}
	report.JumpTargets = setToSorted(jumpTargetSet)

	// FILTERENDBR.
	candidates := make(map[uint64]bool, len(sw.endbrs)+len(sw.callTargets))
	landingPads := map[uint64]bool{}
	if opts.FilterEndbr {
		var err error
		landingPads, err = landingPadSet(bin)
		if err != nil {
			// Corrupt exception metadata must not abort identification;
			// fall back to the unfiltered set for the EH part.
			landingPads = map[uint64]bool{}
		}
	}
	for _, e := range sw.endbrs {
		if opts.FilterEndbr {
			if sw.afterIRCall[e] {
				report.FilteredIndirectReturn++
				continue
			}
			if landingPads[e] {
				report.FilteredLandingPads++
				continue
			}
		}
		candidates[e] = true
	}
	for t := range sw.callTargets {
		if bin.InText(t) {
			candidates[t] = true
		}
	}

	// Jump-target handling.
	switch {
	case opts.UseJumpTargets && opts.SelectTailCall:
		tails := selectTailCalls(bin, sw.jumpRefs, candidates, opts.TailBoundaryOnly)
		report.TailCallTargets = setToSorted(tails)
		for t := range tails {
			candidates[t] = true
		}
	case opts.UseJumpTargets:
		for t := range jumpTargetSet {
			candidates[t] = true
		}
	}

	report.Entries = setToSorted(candidates)
	return report, nil
}

// IdentifyFile loads the ELF at path and runs the full algorithm.
func IdentifyFile(path string, opts Options) (*Report, error) {
	bin, err := elfx.Open(path)
	if err != nil {
		return nil, err
	}
	return Identify(bin, opts)
}

// disassemble is the paper's DISASSEMBLE step: one linear sweep that
// gathers E, C, and J (with jump sources retained for SELECTTAILCALL) and
// flags end branches that directly follow indirect-return call sites.
func disassemble(bin *elfx.Binary) *sweepResult {
	sw := &sweepResult{
		callTargets: make(map[uint64]bool),
		afterIRCall: make(map[uint64]bool),
	}
	var prev x86.Inst
	havePrev := false
	x86.LinearSweep(bin.Text, bin.TextAddr, bin.Mode, func(inst x86.Inst) bool {
		switch inst.Class {
		case x86.ClassEndbr64, x86.ClassEndbr32:
			sw.endbrs = append(sw.endbrs, inst.Addr)
			if havePrev && prev.Class == x86.ClassCallRel && prev.HasTarget {
				if name, ok := bin.PLTName(prev.Target); ok && cet.IsIndirectReturnFunc(name) {
					sw.afterIRCall[inst.Addr] = true
				}
			}
		case x86.ClassCallRel:
			if inst.HasTarget && bin.InText(inst.Target) {
				sw.callTargets[inst.Target] = true
			}
		case x86.ClassJmpRel, x86.ClassJccRel:
			// J collects every direct jump target, conditional or not —
			// this is what makes configuration ③ so imprecise (interior
			// branch targets flood the candidate set) and what
			// SELECTTAILCALL has to clean up. Conditional targets almost
			// never satisfy the boundary-escape test, so ④ loses nothing.
			if inst.HasTarget {
				sw.jumpRefs = append(sw.jumpRefs, jumpRef{src: inst.Addr, target: inst.Target})
			}
		}
		prev = inst
		havePrev = true
		return true
	})
	return sw
}

// mergeSupersetEndbrs adds end branches found by scanning every byte
// offset for the 4-byte ENDBR encodings (F3 0F 1E FA / FB) that the
// linear sweep may have stepped over after a desynchronization.
func mergeSupersetEndbrs(bin *elfx.Binary, sw *sweepResult) {
	have := make(map[uint64]bool, len(sw.endbrs))
	for _, e := range sw.endbrs {
		have[e] = true
	}
	text := bin.Text
	for off := 0; off+4 <= len(text); off++ {
		if text[off] != 0xF3 || text[off+1] != 0x0F || text[off+2] != 0x1E {
			continue
		}
		if b := text[off+3]; b != 0xFA && b != 0xFB {
			continue
		}
		va := bin.TextAddr + uint64(off)
		if !have[va] {
			have[va] = true
			sw.endbrs = append(sw.endbrs, va)
		}
	}
	sort.Slice(sw.endbrs, func(i, j int) bool { return sw.endbrs[i] < sw.endbrs[j] })
}

// setToSorted converts an address set to a sorted slice.
func setToSorted(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
