package core

import (
	"sort"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/elfx"
)

// selectTailCalls implements SELECTTAILCALL (paper §IV-D): a direct
// unconditional jump target is accepted as a tail-called function entry
// when
//
//  1. the target lies beyond the boundary of the function containing the
//     jump (boundaries approximated by the already-known starts E′ ∪ C,
//     following Qiao et al.), and
//  2. the target is referenced by multiple functions — the jump's own
//     function alone is not evidence (inspired by FETCH).
//
// Both checks are purely syntactic; no stack-height or calling-convention
// analysis is performed, which is what makes FunSeeker fast.
// boundaryOnly drops check (2), the ablation measured in the benchmark
// harness: without the multi-reference requirement every interior jump
// that happens to cross an approximated boundary becomes a function.
func selectTailCalls(bin *elfx.Binary, jumps []analysis.JumpRef, known map[uint64]bool, boundaryOnly bool) map[uint64]bool {
	starts := setToSorted(known)
	// funcOf returns the start of the known function containing addr,
	// or 0 when addr precedes every known start.
	funcOf := func(addr uint64) uint64 {
		i := sort.Search(len(starts), func(i int) bool { return starts[i] > addr })
		if i == 0 {
			return 0
		}
		return starts[i-1]
	}
	// nextStartAfter returns the first known start strictly greater than
	// addr, or the end of .text.
	nextStartAfter := func(addr uint64) uint64 {
		i := sort.Search(len(starts), func(i int) bool { return starts[i] > addr })
		if i == len(starts) {
			return bin.TextEnd()
		}
		return starts[i]
	}

	// Gather, per target, the distinct source functions that jump to it,
	// and whether any jump escapes its containing function's boundary.
	type targetInfo struct {
		srcFuncs map[uint64]bool
		escapes  bool
	}
	infos := make(map[uint64]*targetInfo)
	for _, j := range jumps {
		if !bin.InText(j.Target) {
			continue
		}
		info := infos[j.Target]
		if info == nil {
			info = &targetInfo{srcFuncs: make(map[uint64]bool)}
			infos[j.Target] = info
		}
		src := funcOf(j.Src)
		info.srcFuncs[src] = true
		if j.Target < src || j.Target >= nextStartAfter(j.Src) {
			info.escapes = true
		}
	}

	out := make(map[uint64]bool)
	for target, info := range infos {
		if known[target] {
			continue // already identified via E′ ∪ C
		}
		if !info.escapes {
			continue
		}
		// "Referenced by multiple functions": more than one distinct
		// source function must jump here.
		if !boundaryOnly && len(info.srcFuncs) < 2 {
			continue
		}
		out[target] = true
	}
	return out
}
