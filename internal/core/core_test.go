package core

import (
	"testing"

	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// studySpec mirrors the feature-complete program used by the synth tests.
func studySpec(lang synth.Lang) *synth.ProgSpec {
	spec := &synth.ProgSpec{
		Name: "coretest",
		Lang: lang,
		Seed: 99,
		Funcs: []synth.FuncSpec{
			{Name: "main", Calls: []int{1, 2, 11}, CallsPLT: []string{"printf"}, HasSwitch: true, SwitchCases: 6},
			{Name: "helper_a", Calls: []int{3}},
			{Name: "helper_b", Calls: []int{3}, IndirectReturnCall: "setjmp"},
			{Name: "shared_leaf", Static: true},
			{Name: "callback", AddressTaken: true},
			{Name: "tail_target", Static: true},
			{Name: "tail_caller1", TailCalls: []int{5}},
			{Name: "tail_caller2", TailCalls: []int{5}},
			{Name: "dead_static", Static: true, Dead: true},
			{Name: "cold_owner", ColdPart: true, SharedColdWith: []int{1}},
			{Name: "called_part_owner", ColdPart: true, ColdCalled: true},
			{Name: "lone_tail_target", Static: true},
			{Name: "lone_tail_caller", TailCalls: []int{11}},
		},
	}
	// lone_tail_target is also direct-called by main (index 11 in Calls)
	// so it stays reachable; wait — keep it tail-only: remove from Calls.
	spec.Funcs[0].Calls = []int{1, 2}
	if lang == synth.LangCPP {
		spec.Funcs = append(spec.Funcs, synth.FuncSpec{
			Name: "may_throw", HasEH: true, NumLandingPads: 2,
			CallsPLT: []string{"__cxa_throw"},
		})
		n := len(spec.Funcs) - 1
		spec.Funcs[0].Calls = append(spec.Funcs[0].Calls, n)
	}
	return spec
}

func compileAndLoad(t *testing.T, spec *synth.ProgSpec, cfg synth.Config) (*elfx.Binary, *groundtruth.GT) {
	t.Helper()
	res, err := synth.Compile(spec, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	bin, err := elfx.Load(res.Stripped)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return bin, res.GT
}

// score computes (truePos, falsePos, falseNeg) for found vs gt.
func score(found []uint64, gt *groundtruth.GT) (tp, fp, fn int, fpAddrs, fnAddrs []uint64) {
	truth := gt.Entries()
	fset := make(map[uint64]bool, len(found))
	for _, f := range found {
		fset[f] = true
		if truth[f] {
			tp++
		} else {
			fp++
			fpAddrs = append(fpAddrs, f)
		}
	}
	for addr := range truth {
		if !fset[addr] {
			fn++
			fnAddrs = append(fnAddrs, addr)
		}
	}
	return tp, fp, fn, fpAddrs, fnAddrs
}

func defaultCfg() synth.Config {
	return synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2}
}

func TestIdentifyFullAlgorithm(t *testing.T) {
	for _, cfg := range []synth.Config{
		{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2},
		{Compiler: synth.GCC, Mode: x86.Mode32, Opt: synth.O0},
		{Compiler: synth.Clang, Mode: x86.Mode64, PIE: true, Opt: synth.O3},
		{Compiler: synth.Clang, Mode: x86.Mode32, Opt: synth.Os},
	} {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			bin, gt := compileAndLoad(t, studySpec(synth.LangCPP), cfg)
			report, err := Identify(bin, Config4)
			if err != nil {
				t.Fatal(err)
			}
			_, _, _, fpAddrs, fnAddrs := score(report.Entries, gt)

			// Every live function must be found; only dead static
			// functions and single-reference tail targets may be missed.
			allowedFN := map[uint64]bool{}
			for _, f := range gt.Funcs {
				if f.Dead && f.Static {
					allowedFN[f.Addr] = true
				}
				if f.Name == "lone_tail_target" {
					allowedFN[f.Addr] = true
				}
			}
			for _, addr := range fnAddrs {
				if !allowedFN[addr] {
					f, _ := gt.FuncAt(addr)
					t.Errorf("missed live function %s at %#x", f.Name, addr)
				}
			}
			// All false positives must be .part/.cold blocks.
			parts := map[uint64]bool{}
			for _, p := range gt.PartBlocks {
				parts[p] = true
			}
			for _, addr := range fpAddrs {
				if !parts[addr] {
					t.Errorf("false positive at %#x is not a part block", addr)
				}
			}
		})
	}
}

func TestConfig1VsConfig2OnCPP(t *testing.T) {
	bin, gt := compileAndLoad(t, studySpec(synth.LangCPP), defaultCfg())

	r1, err := Identify(bin, Config1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Identify(bin, Config2)
	if err != nil {
		t.Fatal(err)
	}
	_, fp1, _, _, _ := score(r1.Entries, gt)
	_, fp2, _, _, _ := score(r2.Entries, gt)
	// Config ① counts landing pads and the setjmp return point as
	// entries; config ② must remove them.
	if fp1 <= fp2 {
		t.Fatalf("FILTERENDBR did not reduce false positives: %d -> %d", fp1, fp2)
	}
	if r2.FilteredLandingPads == 0 {
		t.Error("no landing pads filtered in a C++ binary")
	}
	if r2.FilteredIndirectReturn == 0 {
		t.Error("no indirect-return end branches filtered")
	}
	// Recall must not drop: ② only removes non-entries.
	_, _, fn1, _, _ := score(r1.Entries, gt)
	_, _, fn2, _, _ := score(r2.Entries, gt)
	if fn2 > fn1 {
		t.Errorf("FILTERENDBR hurt recall: FN %d -> %d", fn1, fn2)
	}
}

func TestConfig3PrecisionCollapse(t *testing.T) {
	bin, gt := compileAndLoad(t, studySpec(synth.LangCPP), defaultCfg())
	r3, err := Identify(bin, Config3)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Identify(bin, Config4)
	if err != nil {
		t.Fatal(err)
	}
	_, fp3, fn3, _, _ := score(r3.Entries, gt)
	_, fp4, _, _, _ := score(r4.Entries, gt)
	// ③ treats every interior jump target as an entry: many FPs.
	if fp3 <= fp4 {
		t.Fatalf("expected ③ (%d FPs) to have more false positives than ④ (%d)", fp3, fp4)
	}
	// ③ is the most inclusive configuration: essentially no FNs beyond
	// dead functions.
	tp3 := len(gt.Funcs) - fn3
	if tp3 < len(gt.Funcs)-2 {
		t.Errorf("③ missed too many functions: %d of %d", tp3, len(gt.Funcs))
	}
}

func TestTailCallSelection(t *testing.T) {
	bin, gt := compileAndLoad(t, studySpec(synth.LangC), defaultCfg())
	report, err := Identify(bin, Config4)
	if err != nil {
		t.Fatal(err)
	}
	var tailTarget, loneTarget uint64
	for _, f := range gt.Funcs {
		switch f.Name {
		case "tail_target":
			tailTarget = f.Addr
		case "lone_tail_target":
			loneTarget = f.Addr
		}
	}
	found := map[uint64]bool{}
	for _, e := range report.Entries {
		found[e] = true
	}
	if !found[tailTarget] {
		t.Error("tail_target (2 callers) not identified")
	}
	if found[loneTarget] {
		t.Error("lone_tail_target (1 caller) should be rejected by SELECTTAILCALL")
	}
	inTails := false
	for _, a := range report.TailCallTargets {
		if a == tailTarget {
			inTails = true
		}
	}
	if !inTails {
		t.Error("tail_target missing from TailCallTargets")
	}
}

func TestClassifyEndbrs(t *testing.T) {
	bin, gt := compileAndLoad(t, studySpec(synth.LangCPP), defaultCfg())
	dist, err := ClassifyEndbrs(bin)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against ground-truth roles.
	var want EndbrDistribution
	for _, e := range gt.Endbrs {
		switch e.Role {
		case groundtruth.RoleFuncEntry:
			want.FuncEntry++
		case groundtruth.RoleIndirectReturn:
			want.IndirectReturn++
		case groundtruth.RoleException:
			want.Exception++
		}
	}
	if dist != want {
		t.Fatalf("ClassifyEndbrs = %+v, want %+v", dist, want)
	}
	if dist.Exception != 2 {
		t.Errorf("exception endbrs = %d, want 2", dist.Exception)
	}
	if dist.IndirectReturn != 1 {
		t.Errorf("indirect-return endbrs = %d, want 1", dist.IndirectReturn)
	}
}

func TestAnalyzeProperties(t *testing.T) {
	bin, gt := compileAndLoad(t, studySpec(synth.LangC), defaultCfg())
	venn := AnalyzeProperties(bin, gt.SortedEntries())
	if venn.Total != len(gt.Funcs) {
		t.Fatalf("analyzed %d funcs, want %d", venn.Total, len(gt.Funcs))
	}
	// Cross-check per-function expectations.
	for _, f := range gt.Funcs {
		v := AnalyzeProperties(bin, []uint64{f.Addr})
		var mask int
		for m, c := range v.Region {
			if c == 1 {
				mask = m
			}
		}
		if f.HasEndbr != (mask&PropEndbr != 0) {
			t.Errorf("%s: endbr property mismatch (mask %03b, want endbr=%v)", f.Name, mask, f.HasEndbr)
		}
		switch f.Name {
		case "shared_leaf":
			if mask&PropDirCall == 0 {
				t.Errorf("shared_leaf should be a direct call target")
			}
		case "tail_target":
			if mask&PropDirJmp == 0 {
				t.Errorf("tail_target should be a direct jump target")
			}
		case "dead_static":
			if mask != 0 {
				t.Errorf("dead_static should satisfy no property, mask=%03b", mask)
			}
		}
	}
	// Percentage helpers.
	if venn.PctWith(0) != 100 {
		t.Errorf("PctWith(0) = %f, want 100", venn.PctWith(0))
	}
	sum := 0.0
	for m := 0; m < 8; m++ {
		sum += venn.Pct(m)
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("region percentages sum to %f", sum)
	}
}

func TestIdentifyCBinaryNoEH(t *testing.T) {
	// A C binary has no .gcc_except_table; FILTERENDBR must be a no-op
	// for landing pads and identification must still work.
	bin, gt := compileAndLoad(t, studySpec(synth.LangC), defaultCfg())
	if len(bin.ExceptTable) != 0 {
		t.Fatal("C binary unexpectedly has an exception table")
	}
	report, err := Identify(bin, Config4)
	if err != nil {
		t.Fatal(err)
	}
	if report.FilteredLandingPads != 0 {
		t.Error("landing pads filtered in a C binary")
	}
	_, _, fn, _, fnAddrs := score(report.Entries, gt)
	if fn > 2 {
		t.Errorf("too many false negatives in C binary: %d (%#x)", fn, fnAddrs)
	}
}

func TestReportSetsSorted(t *testing.T) {
	bin, _ := compileAndLoad(t, studySpec(synth.LangCPP), defaultCfg())
	report, err := Identify(bin, Config4)
	if err != nil {
		t.Fatal(err)
	}
	assertSorted := func(name string, s []uint64) {
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				t.Fatalf("%s not strictly sorted at %d", name, i)
			}
		}
	}
	assertSorted("Entries", report.Entries)
	assertSorted("CallTargets", report.CallTargets)
	assertSorted("JumpTargets", report.JumpTargets)
	assertSorted("TailCallTargets", report.TailCallTargets)
}
