package core

import (
	"context"
	"errors"
	"testing"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// TestRequireCET checks the ErrNotCET sentinel: a text with no end
// branch fails identification when (and only when) RequireCET is set.
func TestRequireCET(t *testing.T) {
	// mov eax, 1; ret — valid code, zero end branches.
	bin := &elfx.Binary{
		Mode:     x86.Mode64,
		Text:     []byte{0xB8, 0x01, 0x00, 0x00, 0x00, 0xC3},
		TextAddr: 0x401000,
	}

	opts := Config4
	opts.RequireCET = true
	_, err := IdentifyCtx(context.Background(), analysis.NewContext(bin), opts)
	if !errors.Is(err, ErrNotCET) {
		t.Fatalf("err = %v, want ErrNotCET", err)
	}

	// Without the flag the same binary degrades gracefully (E = ∅).
	rep, err := IdentifyCtx(context.Background(), analysis.NewContext(bin), Config4)
	if err != nil {
		t.Fatalf("non-required identify failed: %v", err)
	}
	if len(rep.Endbrs) != 0 {
		t.Fatalf("found %d end branches in endbr-free text", len(rep.Endbrs))
	}

	// A path on the binary must appear in the wrapped message.
	bin.Path = "corpus/some-binary"
	_, err = IdentifyCtx(context.Background(), analysis.NewContext(bin), opts)
	if !errors.Is(err, ErrNotCET) {
		t.Fatalf("err = %v, want ErrNotCET", err)
	}
	if got := err.Error(); got == ErrNotCET.Error() {
		t.Fatalf("error %q does not mention the binary path", got)
	}
}
