package core

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/armsynth"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/synth"
)

// compileBTI builds a small BTI-enabled AArch64 image.
func compileBTI(t *testing.T) *elfx.Binary {
	t.Helper()
	spec := &synth.ProgSpec{
		Name: "arch_probe",
		Lang: synth.LangC,
		Seed: 1,
		Funcs: []synth.FuncSpec{
			{Name: "main", BodySize: 4, Calls: []int{1}},
			{Name: "helper", Static: true, AddressTaken: true, BodySize: 3},
		},
	}
	res, err := armsynth.Compile(spec, armsynth.Config{Opt: synth.O2})
	if err != nil {
		t.Fatalf("armsynth compile: %v", err)
	}
	bin, err := elfx.Load(res.Image)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return bin
}

// TestRequireCETAArch64: RequireCET is the BTI-presence gate on ARM. A
// BTI binary passes; the same binary with every landing pad patched to
// NOP — still valid code, zero landmarks — fails with ErrNotCET.
func TestRequireCETAArch64(t *testing.T) {
	bin := compileBTI(t)
	opts := Config4
	opts.RequireCET = true

	rep, err := IdentifyCtx(context.Background(), analysis.NewContext(bin), opts)
	if err != nil {
		t.Fatalf("BTI binary failed RequireCET: %v", err)
	}
	if rep.Arch != "aarch64" || len(rep.Endbrs) == 0 {
		t.Fatalf("arch %q, %d pads — want aarch64 with pads", rep.Arch, len(rep.Endbrs))
	}

	// Patch every BTI and PACIASP word to NOP.
	const nop = 0xD503201F
	for off := 0; off+4 <= len(bin.Text); off += 4 {
		w := binary.LittleEndian.Uint32(bin.Text[off:])
		if w&0xFFFFFF3F == 0xD503241F || w == 0xD503233F || w == 0xD503237F {
			binary.LittleEndian.PutUint32(bin.Text[off:], nop)
		}
	}
	_, err = IdentifyCtx(context.Background(), analysis.NewContext(bin), opts)
	if !errors.Is(err, ErrNotCET) {
		t.Fatalf("pad-free aarch64 err = %v, want ErrNotCET", err)
	}
	// Without the flag the same text degrades gracefully.
	rep, err = IdentifyCtx(context.Background(), analysis.NewContext(bin), Config4)
	if err != nil {
		t.Fatalf("non-required identify failed: %v", err)
	}
	if len(rep.Endbrs) != 0 {
		t.Fatalf("found %d pads in patched text", len(rep.Endbrs))
	}
}

// TestForcedArchDispatch: Options.Arch overrides the binary's native
// backend, the report names the backend that actually ran, and the
// non-backend Arch values surface as errors (never panics).
func TestForcedArchDispatch(t *testing.T) {
	bin := compileBTI(t)

	rep, err := IdentifyCtx(context.Background(), analysis.NewContext(bin), Config4)
	if err != nil || rep.Arch != "aarch64" {
		t.Fatalf("native dispatch: arch %q err %v", rep.Arch, err)
	}

	// Force the x86 backend over the AArch64 bytes: meaningless output,
	// but well-formed and non-panicking.
	forced := Config4
	forced.Arch = elfx.ArchX86_64
	rep, err = IdentifyCtx(context.Background(), analysis.NewContext(bin), forced)
	if err != nil {
		t.Fatalf("forced x86 over aarch64 bytes: %v", err)
	}
	if rep.Arch != "x86-64" {
		t.Fatalf("forced report arch = %q, want x86-64", rep.Arch)
	}

	bad := Config4
	bad.Arch = elfx.ArchUnknown
	if _, err := IdentifyCtx(context.Background(), analysis.NewContext(bin), bad); err == nil {
		t.Fatal("ArchUnknown dispatch succeeded, want backend error")
	}
}
