package core

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// sortedAddrs turns raw fuzz values into the ascending, deduplicated
// form mergeSupersetEndbrs is specified over.
func sortedAddrs(raw []uint64) []uint64 {
	out := slices.Clone(raw)
	slices.Sort(out)
	return slices.Compact(out)
}

// TestMergeSupersetEndbrsProperties checks the algebra of the E-merge:
// the result is the sorted union — ascending and duplicate-free, a
// superset of both inputs, containing nothing else, and symmetric in its
// arguments.
func TestMergeSupersetEndbrsProperties(t *testing.T) {
	f := func(rawScanned, rawEndbrs []uint64) bool {
		scanned, endbrs := sortedAddrs(rawScanned), sortedAddrs(rawEndbrs)
		got := mergeSupersetEndbrs(scanned, endbrs)

		if !slices.IsSorted(got) {
			t.Logf("not sorted: %v", got)
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Logf("duplicate %#x", got[i])
				return false
			}
		}
		member := func(v uint64) bool {
			_, ok := slices.BinarySearch(got, v)
			return ok
		}
		for _, v := range scanned {
			if !member(v) {
				t.Logf("scanned %#x missing", v)
				return false
			}
		}
		for _, v := range endbrs {
			if !member(v) {
				t.Logf("endbr %#x missing", v)
				return false
			}
		}
		inInputs := func(v uint64) bool {
			_, a := slices.BinarySearch(scanned, v)
			_, b := slices.BinarySearch(endbrs, v)
			return a || b
		}
		for _, v := range got {
			if !inInputs(v) {
				t.Logf("phantom %#x", v)
				return false
			}
		}
		return slices.Equal(got, mergeSupersetEndbrs(endbrs, scanned))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeSupersetEndbrsIdempotent: merging the result with either
// input is a fixpoint.
func TestMergeSupersetEndbrsIdempotent(t *testing.T) {
	f := func(rawScanned, rawEndbrs []uint64) bool {
		scanned, endbrs := sortedAddrs(rawScanned), sortedAddrs(rawEndbrs)
		got := mergeSupersetEndbrs(scanned, endbrs)
		return slices.Equal(got, mergeSupersetEndbrs(scanned, got)) &&
			slices.Equal(got, mergeSupersetEndbrs(got, endbrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// tailCallCase is a randomly drawn SELECTTAILCALL input: a synthetic
// .text extent, a set of known starts inside it, and a jump list.
type tailCallCase struct {
	bin   *elfx.Binary
	known map[uint64]bool
	jumps []analysis.JumpRef
}

func genTailCallCase(rng *rand.Rand) tailCallCase {
	const base = 0x401000
	size := uint64(0x100 + rng.Intn(0x1000))
	bin := &elfx.Binary{Text: make([]byte, size), TextAddr: base, Mode: x86.Mode64}
	known := make(map[uint64]bool)
	for n := rng.Intn(12); n > 0; n-- {
		known[base+uint64(rng.Intn(int(size)))] = true
	}
	var jumps []analysis.JumpRef
	for n := rng.Intn(40); n > 0; n-- {
		j := analysis.JumpRef{
			Src:    base + uint64(rng.Intn(int(size))),
			Target: base + uint64(rng.Intn(int(size))),
			Cond:   rng.Intn(2) == 0,
		}
		if rng.Intn(8) == 0 { // occasionally out of .text
			j.Target = base - 0x100 + uint64(rng.Intn(0x200))*16
		}
		jumps = append(jumps, j)
	}
	return tailCallCase{bin: bin, known: known, jumps: jumps}
}

// TestSelectTailCallsProperties: the selector's output is always a set
// of in-text addresses disjoint from the known starts; results are
// invariant under jump-list permutation; and the ablated boundary-only
// mode is a superset of the full two-condition mode (dropping the
// multi-reference requirement can only admit more targets).
func TestSelectTailCallsProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := genTailCallCase(rng)

		full := selectTailCalls(c.bin, c.jumps, c.known, false)
		boundary := selectTailCalls(c.bin, c.jumps, c.known, true)

		for target := range full {
			if !c.bin.InText(target) {
				t.Logf("seed %d: out-of-text target %#x", seed, target)
				return false
			}
			if c.known[target] {
				t.Logf("seed %d: known start %#x reselected", seed, target)
				return false
			}
			if !boundary[target] {
				t.Logf("seed %d: full-mode target %#x missing from boundary-only mode", seed, target)
				return false
			}
		}
		for target := range boundary {
			if !c.bin.InText(target) || c.known[target] {
				t.Logf("seed %d: invalid boundary-only target %#x", seed, target)
				return false
			}
		}

		// Permutation invariance: the jump list is a set of evidence, so
		// its order must not matter.
		shuffled := slices.Clone(c.jumps)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		again := selectTailCalls(c.bin, shuffled, c.known, false)
		if len(again) != len(full) {
			t.Logf("seed %d: permutation changed result size", seed)
			return false
		}
		for target := range full {
			if !again[target] {
				t.Logf("seed %d: permutation dropped %#x", seed, target)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectTailCallsDuplicateEvidence: duplicating every jump must not
// change the result — the selector counts distinct source functions, not
// raw jump occurrences.
func TestSelectTailCallsDuplicateEvidence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := genTailCallCase(rng)
		full := selectTailCalls(c.bin, c.jumps, c.known, false)
		doubled := append(slices.Clone(c.jumps), c.jumps...)
		again := selectTailCalls(c.bin, doubled, c.known, false)
		if len(again) != len(full) {
			return false
		}
		for target := range full {
			if !again[target] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectTailCallsNoJumpsNoTargets: with no jump evidence the
// selector returns nothing in either mode.
func TestSelectTailCallsNoJumpsNoTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		c := genTailCallCase(rng)
		if got := selectTailCalls(c.bin, nil, c.known, false); len(got) != 0 {
			t.Fatalf("trial %d: %d targets from no evidence", trial, len(got))
		}
		if got := selectTailCalls(c.bin, nil, c.known, true); len(got) != 0 {
			t.Fatalf("trial %d: boundary-only: %d targets from no evidence", trial, len(got))
		}
	}
}
