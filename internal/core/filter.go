package core

import (
	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/elfx"
)

// The exception half of FILTERENDBR joins .eh_frame FDE records (function
// start + LSDA pointer) against the LSDA call-site tables in
// .gcc_except_table: an end branch at a landing pad is a catch-block
// entry, not a function entry. Note that function identification itself
// never consumes the FDE pc-begin values — they are used only to bind
// each LSDA to its landing-pad base, which is how the C++ runtime itself
// interprets the table (LPStart is omitted in practice, defaulting to the
// function start from the FDE). The set is memoized per binary in
// analysis.Context; see Context.LandingPads.

// LandingPads exposes the landing-pad computation for tools and studies.
func LandingPads(bin *elfx.Binary) ([]uint64, error) {
	return LandingPadsWithContext(analysis.NewContext(bin))
}

// LandingPadsWithContext returns the sorted landing-pad addresses from
// the shared analysis context.
func LandingPadsWithContext(actx *analysis.Context) ([]uint64, error) {
	set, err := actx.LandingPads()
	if err != nil {
		return nil, err
	}
	return setToSorted(set), nil
}
