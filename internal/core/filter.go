package core

import (
	"github.com/funseeker/funseeker/internal/ehinfo"
	"github.com/funseeker/funseeker/internal/elfx"
)

// landingPadSet computes the absolute addresses of every exception landing
// pad in the binary by joining .eh_frame FDE records (function start +
// LSDA pointer) against the LSDA call-site tables in .gcc_except_table.
//
// This is the exception half of FILTERENDBR: an end branch at a landing
// pad is a catch-block entry, not a function entry. Note that function
// identification itself never consumes the FDE pc-begin values — they are
// used only to bind each LSDA to its landing-pad base, which is how the
// C++ runtime itself interprets the table (LPStart is omitted in
// practice, defaulting to the function start from the FDE).
func landingPadSet(bin *elfx.Binary) (map[uint64]bool, error) {
	return ehinfo.LandingPadSet(bin)
}

// LandingPads exposes the landing-pad computation for tools and studies.
func LandingPads(bin *elfx.Binary) ([]uint64, error) {
	set, err := landingPadSet(bin)
	if err != nil {
		return nil, err
	}
	return setToSorted(set), nil
}
