package lsda

import "testing"

// buildSeed encodes a small valid LSDA via the package builder so the
// corpus starts on the valid-input region.
func buildSeed() []byte {
	b := NewBuilder()
	b.Add([]CallSite{
		{Start: 0x10, Length: 0x20, LandingPad: 0x80, Action: 1},
		{Start: 0x40, Length: 0x08, LandingPad: 0, Action: 0},
	})
	return b.Bytes()
}

// FuzzParse feeds arbitrary bytes to the LSDA parser: it must return
// ErrMalformed-class errors on garbage, never panic, and any table it
// does return must be internally consistent (RawLen within bounds,
// landing pads derived from the supplied base).
func FuzzParse(f *testing.F) {
	f.Add(buildSeed(), uint64(0x401000))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{0xff}, uint64(0x1000))              // omitted LPStart, bad next byte
	f.Add([]byte{0xff, 0xff, 0x00}, uint64(0))       // omit+omit, empty call-site table
	f.Add([]byte{0x00, 0x80, 0x80, 0x80}, uint64(4)) // truncated uleb
	f.Fuzz(func(t *testing.T, data []byte, funcStart uint64) {
		table, err := Parse(data, funcStart)
		if err != nil {
			return
		}
		if table.RawLen < 0 || table.RawLen > len(data) {
			t.Fatalf("RawLen %d outside [0,%d] (input %x)", table.RawLen, len(data), data)
		}
		// The supplied base applies only to the omitted-LPStart form; an
		// explicit LPStart (first byte != 0xff) overrides it.
		if len(data) > 0 && data[0] == 0xff && table.FuncStart != funcStart {
			t.Fatalf("FuncStart %#x != supplied %#x", table.FuncStart, funcStart)
		}
		for _, pad := range table.LandingPads() {
			if pad == table.FuncStart {
				t.Fatalf("zero-offset landing pad leaked through (input %x)", data)
			}
		}
		// Determinism.
		again, err2 := Parse(data, funcStart)
		if err2 != nil || len(again.CallSites) != len(table.CallSites) || again.RawLen != table.RawLen {
			t.Fatalf("re-parse diverged (input %x)", data)
		}
	})
}

// FuzzBuilderRoundTrip: tables produced by the builder always parse back
// with the same call sites.
func FuzzBuilderRoundTrip(f *testing.F) {
	f.Add(uint64(0x10), uint64(0x20), uint64(0x80), uint64(1))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1<<20), uint64(1<<16), uint64(1<<21), uint64(3))
	f.Fuzz(func(t *testing.T, start, length, pad, action uint64) {
		// Keep offsets in the uleb-friendly range the builder targets.
		const cap = uint64(1) << 30
		cs := CallSite{Start: start % cap, Length: length % cap, LandingPad: pad % cap, Action: action % 8}
		b := NewBuilder()
		b.Add([]CallSite{cs})
		table, err := Parse(b.Bytes(), 0x401000)
		if err != nil {
			t.Fatalf("builder output unparseable: %v (cs %+v)", err, cs)
		}
		if len(table.CallSites) != 1 {
			t.Fatalf("got %d call sites, want 1", len(table.CallSites))
		}
		got := table.CallSites[0]
		if got.Start != cs.Start || got.Length != cs.Length || got.LandingPad != cs.LandingPad || got.Action != cs.Action {
			t.Fatalf("round trip: %+v -> %+v", cs, got)
		}
	})
}
