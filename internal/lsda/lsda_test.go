package lsda

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundtripSimple(t *testing.T) {
	b := NewBuilder()
	sites := []CallSite{
		{Start: 0x10, Length: 0x20, LandingPad: 0x100, Action: 1},
		{Start: 0x40, Length: 0x08, LandingPad: 0, Action: 0},
		{Start: 0x50, Length: 0x30, LandingPad: 0x140, Action: 2},
	}
	off := b.Add(sites)
	if off != 0 {
		t.Fatalf("first LSDA offset = %d, want 0", off)
	}
	table, err := Parse(b.Bytes(), 0x401000)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(table.CallSites, sites) {
		t.Fatalf("call sites = %+v, want %+v", table.CallSites, sites)
	}
	pads := table.LandingPads()
	want := []uint64{0x401100, 0x401140}
	if !reflect.DeepEqual(pads, want) {
		t.Fatalf("landing pads = %#x, want %#x", pads, want)
	}
}

func TestMultipleLSDAsPacked(t *testing.T) {
	b := NewBuilder()
	off1 := b.Add([]CallSite{{Start: 0, Length: 8, LandingPad: 0x40, Action: 1}})
	off2 := b.Add([]CallSite{{Start: 4, Length: 12, LandingPad: 0x80, Action: 1}})
	off3 := b.Add(nil)
	data := b.Bytes()

	t1, err := Parse(data[off1:], 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if pads := t1.LandingPads(); len(pads) != 1 || pads[0] != 0x1040 {
		t.Fatalf("LSDA1 pads = %#x", pads)
	}
	t2, err := Parse(data[off2:], 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if pads := t2.LandingPads(); len(pads) != 1 || pads[0] != 0x2080 {
		t.Fatalf("LSDA2 pads = %#x", pads)
	}
	t3, err := Parse(data[off3:], 0x3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.CallSites) != 0 {
		t.Fatalf("empty LSDA has %d call sites", len(t3.CallSites))
	}
	// RawLen of LSDA1 must not extend into LSDA2.
	if off1+t1.RawLen > off2 {
		t.Fatalf("LSDA1 RawLen %d overlaps LSDA2 at %d", t1.RawLen, off2)
	}
}

func TestAlignment(t *testing.T) {
	b := NewBuilder()
	b.Add([]CallSite{{Start: 0, Length: 1, LandingPad: 2, Action: 0}})
	off2 := b.Add(nil)
	if off2%4 != 0 {
		t.Fatalf("second LSDA at unaligned offset %d", off2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":              {},
		"only-lpstart":       {0xFF},
		"bad-cs-encoding":    {0xFF, 0xFF, 0x0B, 0x00},
		"truncated-cs-table": {0xFF, 0xFF, 0x01, 0x10, 0x01},
		"bad-lpstart-enc":    {0x0B, 0x00},
	}
	for name, data := range cases {
		if _, err := Parse(data, 0); err == nil {
			t.Errorf("%s: want parse error", name)
		}
	}
}

func TestNoLandingPads(t *testing.T) {
	b := NewBuilder()
	b.Add([]CallSite{
		{Start: 0, Length: 0x10, LandingPad: 0, Action: 0},
		{Start: 0x10, Length: 0x10, LandingPad: 0, Action: 0},
	})
	table, err := Parse(b.Bytes(), 0x5000)
	if err != nil {
		t.Fatal(err)
	}
	if pads := table.LandingPads(); len(pads) != 0 {
		t.Fatalf("got %d pads, want 0", len(pads))
	}
}

func TestRoundtripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10)
		sites := make([]CallSite, 0, n)
		off := uint64(0)
		for i := 0; i < n; i++ {
			length := uint64(1 + rng.Intn(200))
			var lp uint64
			if rng.Intn(2) == 0 {
				lp = uint64(0x100 + rng.Intn(1<<16))
			}
			var action uint64
			if lp != 0 {
				action = uint64(rng.Intn(3))
			}
			sites = append(sites, CallSite{Start: off, Length: length, LandingPad: lp, Action: action})
			off += length + uint64(rng.Intn(32))
		}
		b := NewBuilder()
		b.Add(sites)
		table, err := Parse(b.Bytes(), 0x400000)
		if err != nil {
			return false
		}
		if len(table.CallSites) != len(sites) {
			return false
		}
		for i := range sites {
			if table.CallSites[i] != sites[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParseWithExplicitLPStart(t *testing.T) {
	// Hand-encode an LSDA whose LPStart is present (ULEB form): landing
	// pads become relative to that base rather than the function start.
	var data []byte
	data = append(data, 0x01)       // LPStart encoding: uleb128
	data = appendUleb(data, 0x5000) // LPStart value
	data = append(data, 0xFF)       // TType: omit
	data = append(data, 0x01)       // call-site encoding: uleb128
	var cs []byte
	cs = appendUleb(cs, 0)    // start
	cs = appendUleb(cs, 8)    // length
	cs = appendUleb(cs, 0x40) // landing pad
	cs = appendUleb(cs, 0)    // action
	data = appendUleb(data, uint64(len(cs)))
	data = append(data, cs...)

	table, err := Parse(data, 0x1000 /* function start, ignored */)
	if err != nil {
		t.Fatal(err)
	}
	pads := table.LandingPads()
	if len(pads) != 1 || pads[0] != 0x5040 {
		t.Fatalf("pads = %#x, want [0x5040]", pads)
	}
}

func TestParseWithTypeTable(t *testing.T) {
	// TType present: the ULEB after the encoding byte bounds the LSDA.
	var data []byte
	data = append(data, 0xFF) // LPStart: omit
	data = append(data, 0x9B) // TType: pcrel|sdata4|indirect (typical GCC)
	var cs []byte
	cs = appendUleb(cs, 0)
	cs = appendUleb(cs, 4)
	cs = appendUleb(cs, 0x20)
	cs = appendUleb(cs, 1)
	// ttBase counts from after its own ULEB to the end of the type table.
	rest := []byte{0x01} // call-site encoding
	rest = appendUleb(rest, uint64(len(cs)))
	rest = append(rest, cs...)
	rest = append(rest, 0x01, 0x00)             // action table: one record
	rest = append(rest, 0xEE, 0xEE, 0xEE, 0xEE) // one 4-byte type entry
	data = appendUleb(data, uint64(len(rest)))
	data = append(data, rest...)

	table, err := Parse(data, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if table.RawLen != len(data) {
		t.Fatalf("RawLen = %d, want %d", table.RawLen, len(data))
	}
	if pads := table.LandingPads(); len(pads) != 1 || pads[0] != 0x2020 {
		t.Fatalf("pads = %#x", pads)
	}
}

func appendUleb(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			dst = append(dst, b|0x80)
			continue
		}
		return append(dst, b)
	}
}
