// Package lsda encodes and parses Language-Specific Data Area (LSDA)
// records, the per-function exception tables that GCC and Clang pack into
// the .gcc_except_table section.
//
// Each LSDA describes, for one function, the call-site table mapping code
// ranges to landing pads (the entry points of catch/cleanup blocks). In
// CET-enabled binaries every landing pad starts with an end-branch
// instruction, which is exactly why FunSeeker must parse these records:
// an end branch at a landing pad is not a function entry.
package lsda

import (
	"errors"
	"fmt"

	"github.com/funseeker/funseeker/internal/leb128"
)

// Pointer-encoding bytes reused from the DWARF EH conventions.
const (
	encOmit    byte = 0xFF
	encULEB128 byte = 0x01
)

// CallSite is one call-site table record. All offsets are relative to the
// landing-pad base (the function start when LPStart is omitted).
type CallSite struct {
	// Start is the offset of the covered region.
	Start uint64
	// Length is the region length in bytes.
	Length uint64
	// LandingPad is the landing-pad offset; zero means "no landing pad"
	// (the exception propagates).
	LandingPad uint64
	// Action is the 1-based action-table index; zero means cleanup only.
	Action uint64
}

// Table is one decoded LSDA.
type Table struct {
	// FuncStart is the landing-pad base address: the funcStart supplied
	// at parse time, or the LSDA's explicit LPStart when one is encoded
	// (GCC and Clang normally omit it, making the base the function
	// entry).
	FuncStart uint64
	// CallSites are the decoded call-site records.
	CallSites []CallSite
	// RawLen is the total encoded length of the LSDA in bytes, including
	// the action and type tables.
	RawLen int
}

// LandingPads returns the absolute addresses of all non-zero landing pads.
func (t *Table) LandingPads() []uint64 {
	pads := make([]uint64, 0, len(t.CallSites))
	for _, cs := range t.CallSites {
		if cs.LandingPad != 0 {
			pads = append(pads, t.FuncStart+cs.LandingPad)
		}
	}
	return pads
}

// ErrMalformed is returned for undecodable LSDA bytes.
var ErrMalformed = errors.New("lsda: malformed table")

// Parse decodes one LSDA from the front of data. funcStart is the landing
// pad base (the function entry for the usual omitted-LPStart form). It
// returns the decoded table; Table.RawLen reports how many bytes the LSDA
// occupied, allowing densely packed section walks.
func Parse(data []byte, funcStart uint64) (*Table, error) {
	r := leb128.NewReader(data)
	lpStartEnc, err := r.Byte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	lpBase := funcStart
	if lpStartEnc != encOmit {
		// GCC emits uleb128 LPStart when present.
		if lpStartEnc&0x0F != encULEB128 {
			return nil, fmt.Errorf("%w: LPStart encoding %#x", ErrMalformed, lpStartEnc)
		}
		v, err := r.Uleb()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		lpBase = v
	}
	tTypeEnc, err := r.Byte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	// tTypeEnd is the offset (from the current position) of the end of
	// the type table; it bounds the whole LSDA.
	tTypeEnd := -1
	if tTypeEnc != encOmit {
		v, err := r.Uleb()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		tTypeEnd = r.Offset() + int(v)
	}
	csEnc, err := r.Byte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if csEnc&0x0F != encULEB128 {
		return nil, fmt.Errorf("%w: call-site encoding %#x", ErrMalformed, csEnc)
	}
	csLen, err := r.Uleb()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	csEnd := r.Offset() + int(csLen)
	if csEnd > len(data) {
		return nil, fmt.Errorf("%w: call-site table overruns data", ErrMalformed)
	}
	var sites []CallSite
	maxAction := uint64(0)
	for r.Offset() < csEnd {
		var cs CallSite
		if cs.Start, err = r.Uleb(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if cs.Length, err = r.Uleb(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if cs.LandingPad, err = r.Uleb(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if cs.Action, err = r.Uleb(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if cs.Action > maxAction {
			maxAction = cs.Action
		}
		sites = append(sites, cs)
	}
	rawLen := csEnd
	if tTypeEnd >= 0 {
		if tTypeEnd < csEnd || tTypeEnd > len(data) {
			return nil, fmt.Errorf("%w: type table bound %d out of range", ErrMalformed, tTypeEnd)
		}
		rawLen = tTypeEnd
	} else if maxAction > 0 {
		// No type table: skip the action table, two SLEBs per action
		// record, so the walker can find the next LSDA.
		for i := uint64(0); i < maxAction; i++ {
			if _, err := r.Sleb(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
			}
			if _, err := r.Sleb(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
			}
		}
		rawLen = r.Offset()
	}
	return &Table{FuncStart: lpBase, CallSites: sites, RawLen: rawLen}, nil
}

// Builder assembles the .gcc_except_table section from per-function
// LSDAs. Each Add returns the section-relative offset the LSDA was placed
// at, which the .eh_frame FDE references.
type Builder struct {
	buf []byte
}

// NewBuilder returns an empty section builder.
func NewBuilder() *Builder { return &Builder{} }

// Add encodes one LSDA with the standard GCC shape: LPStart omitted
// (landing pads are relative to the function start), type table omitted,
// ULEB128 call sites, and a minimal action table covering the largest
// action index referenced. It returns the offset of the LSDA within the
// section.
func (b *Builder) Add(callSites []CallSite) int {
	// GCC aligns LSDAs to 4 bytes.
	for len(b.buf)%4 != 0 {
		b.buf = append(b.buf, 0)
	}
	off := len(b.buf)
	b.buf = append(b.buf, encOmit)    // LPStart: omit
	b.buf = append(b.buf, encOmit)    // TType: omit
	b.buf = append(b.buf, encULEB128) // call-site encoding

	var cs []byte
	maxAction := uint64(0)
	for _, site := range callSites {
		cs = leb128.AppendUleb(cs, site.Start)
		cs = leb128.AppendUleb(cs, site.Length)
		cs = leb128.AppendUleb(cs, site.LandingPad)
		cs = leb128.AppendUleb(cs, site.Action)
		if site.Action > maxAction {
			maxAction = site.Action
		}
	}
	b.buf = leb128.AppendUleb(b.buf, uint64(len(cs)))
	b.buf = append(b.buf, cs...)
	// Action table: records of (type filter, next offset) SLEB pairs.
	for i := uint64(0); i < maxAction; i++ {
		b.buf = leb128.AppendSleb(b.buf, int64(i+1)) // filter: a catch type
		b.buf = leb128.AppendSleb(b.buf, 0)          // no chained action
	}
	return off
}

// Bytes returns the assembled section contents.
func (b *Builder) Bytes() []byte { return b.buf }

// Size returns the current section size.
func (b *Builder) Size() int { return len(b.buf) }
