// Package ring is a consistent-hash ring: the routing layer that lets
// N funseekerd replicas shard the content-hash key space so each
// binary's result lives (hot in the LRU, warm in the persistent store)
// on one owner replica instead of being recomputed everywhere.
//
// The classic construction: each node is hashed onto the unit circle at
// many virtual points, and a key is owned by the first node point at or
// after the key's own hash. Adding or removing one node therefore
// remaps only the keys in the arcs that node owned — about 1/N of the
// space — which is exactly the property a warm cache tier needs: a
// replica restart or a fleet resize must not shuffle every key onto a
// cold owner. The ±fair-share balance and the minimal-disruption
// invariant are pinned by property tests in ring_test.go.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-node point count when New is given a
// non-positive value. At v points per node the relative standard
// deviation of a node's share is roughly 1/sqrt(v); 512 keeps every
// node within a few percent of fair share even on small fleets.
const DefaultVirtualNodes = 512

// Ring is a consistent-hash ring over named nodes. It is safe for
// concurrent use; lookups take a read lock only.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	nodes  map[string]bool
	points []point // sorted by hash, ascending
}

// point is one virtual node position.
type point struct {
	hash uint64
	node string
}

// New returns an empty ring with the given virtual-node count per node
// (non-positive selects DefaultVirtualNodes).
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// hashKey positions a key on the circle. SHA-256 (truncated to 64
// bits) rather than a fast non-cryptographic hash: placement must be
// uniform — vnode clustering directly becomes load skew — and identical
// across processes, so every router instance agrees on every owner.
// The cost is irrelevant next to the content SHA-256 the engine already
// computes per request.
func hashKey(key []byte) uint64 {
	sum := sha256.Sum256(key)
	return binary.LittleEndian.Uint64(sum[:8])
}

// pointHash positions one virtual node: the node name plus the vnode
// index, hashed together. Deterministic, so the same membership always
// produces the same ring.
func pointHash(node string, i int) uint64 {
	buf := make([]byte, 0, len(node)+5)
	buf = append(buf, node...)
	buf = append(buf, '#')
	buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
	sum := sha256.Sum256(buf)
	return binary.LittleEndian.Uint64(sum[:8])
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a node (idempotent). Only that node's points leave the
// circle, so only its keys remap — the minimal-disruption invariant.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup returns the node that owns key, or false on an empty ring.
func (r *Ring) Lookup(key []byte) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.successor(hashKey(key))].node, true
}

// LookupString is Lookup over a string key.
func (r *Ring) LookupString(key string) (string, bool) {
	return r.Lookup([]byte(key))
}

// LookupN returns up to n distinct nodes in ring order starting at
// key's owner — the owner first, then the natural failover successors.
// Fewer than n nodes are returned when the ring has fewer members.
func (r *Ring) LookupN(key []byte, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.successor(hashKey(key))
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// successor returns the index of the first point at or after h,
// wrapping past the top of the circle. Callers hold at least a read
// lock.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}
