package ring

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// keySet generates deterministic pseudo-random keys shaped like the
// engine's (hash-valued, uniformly distributed).
func keySet(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 34)
		rng.Read(k)
		keys[i] = k
	}
	return keys
}

func nodeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("replica-%d.funseeker.internal:8745", i)
	}
	return names
}

// TestDistributionFairShare is the balance property: for every fleet
// size from 3 to 16 nodes, each node's share of a large key set stays
// within ±15% of fair share.
func TestDistributionFairShare(t *testing.T) {
	const nKeys = 20000
	keys := keySet(nKeys, 7)
	for n := 3; n <= 16; n++ {
		r := New(0)
		for _, name := range nodeNames(n) {
			r.Add(name)
		}
		counts := make(map[string]int)
		for _, k := range keys {
			node, ok := r.Lookup(k)
			if !ok {
				t.Fatalf("n=%d: lookup on a populated ring failed", n)
			}
			counts[node]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d nodes received keys", n, len(counts))
		}
		fair := float64(nKeys) / float64(n)
		for node, c := range counts {
			dev := (float64(c) - fair) / fair
			if dev < -0.15 || dev > 0.15 {
				t.Errorf("n=%d: %s holds %d keys (%.1f%% off a fair share of %.0f)",
					n, node, c, dev*100, fair)
			}
		}
	}
}

// TestMinimalDisruptionOnRemove is the consistent-hashing invariant:
// removing one node remaps exactly the keys it owned (~1/N of the key
// space) and no key owned by a surviving node moves.
func TestMinimalDisruptionOnRemove(t *testing.T) {
	const nKeys = 10000
	keys := keySet(nKeys, 11)
	for _, n := range []int{3, 5, 8, 16} {
		names := nodeNames(n)
		r := New(0)
		for _, name := range names {
			r.Add(name)
		}
		before := make([]string, nKeys)
		for i, k := range keys {
			before[i], _ = r.Lookup(k)
		}

		victim := names[n/2]
		r.Remove(victim)
		moved, ownedByVictim := 0, 0
		for i, k := range keys {
			after, ok := r.Lookup(k)
			if !ok {
				t.Fatal("lookup failed after removal")
			}
			if before[i] == victim {
				ownedByVictim++
				if after == victim {
					t.Fatalf("n=%d: key still maps to the removed node", n)
				}
				continue
			}
			if after != before[i] {
				moved++
			}
		}
		if moved != 0 {
			t.Errorf("n=%d: %d keys owned by survivors remapped on an unrelated removal", n, moved)
		}
		// The victim's share — the only keys that moved — is ~1/N.
		frac := float64(ownedByVictim) / float64(nKeys)
		fair := 1.0 / float64(n)
		if frac < fair*0.85 || frac > fair*1.15 {
			t.Errorf("n=%d: removal remapped %.3f of keys, want ~%.3f (±15%%)", n, frac, fair)
		}

		// Re-adding the node restores the exact original mapping:
		// membership, not history, determines the ring.
		r.Add(victim)
		for i, k := range keys {
			if got, _ := r.Lookup(k); got != before[i] {
				t.Fatalf("n=%d: mapping not restored after re-add (key %d: %s != %s)", n, i, got, before[i])
			}
		}
	}
}

// TestLookupDeterministicQuick: the owner of any key is a pure function
// of membership — two independently built rings with the same nodes
// agree on every key, and LookupN's first entry is Lookup.
func TestLookupDeterministicQuick(t *testing.T) {
	names := nodeNames(5)
	build := func() *Ring {
		r := New(64)
		for _, n := range names {
			r.Add(n)
		}
		return r
	}
	a, b := build(), build()
	prop := func(seed uint64) bool {
		var k [8]byte
		binary.LittleEndian.PutUint64(k[:], seed)
		na, oka := a.Lookup(k[:])
		nb, okb := b.Lookup(k[:])
		if !oka || !okb || na != nb {
			return false
		}
		succ := a.LookupN(k[:], 3)
		return len(succ) == 3 && succ[0] == na && succ[1] != na && succ[2] != succ[1] && succ[2] != na
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndSingleNode(t *testing.T) {
	r := New(8)
	if _, ok := r.Lookup([]byte("k")); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := r.LookupN([]byte("k"), 2); got != nil {
		t.Fatalf("empty ring LookupN = %v", got)
	}
	r.Add("only")
	r.Add("only") // idempotent
	if r.Len() != 1 {
		t.Fatalf("len = %d after duplicate add", r.Len())
	}
	node, ok := r.Lookup([]byte("anything"))
	if !ok || node != "only" {
		t.Fatalf("single-node lookup = %q %v", node, ok)
	}
	if got := r.LookupN([]byte("anything"), 5); len(got) != 1 || got[0] != "only" {
		t.Fatalf("LookupN on one node = %v", got)
	}
	r.Remove("only")
	r.Remove("only") // idempotent
	if _, ok := r.Lookup([]byte("k")); ok {
		t.Fatal("drained ring claimed an owner")
	}
}

// TestConcurrentMembershipChurn exercises the locks under -race:
// lookups race with add/remove churn and must always return a live
// answer or a clean empty-ring miss.
func TestConcurrentMembershipChurn(t *testing.T) {
	r := New(32)
	names := nodeNames(4)
	for _, n := range names {
		r.Add(n)
	}
	keys := keySet(64, 3)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := names[rng.Intn(len(names)-1)+1] // node 0 stays: the ring is never empty
			if rng.Intn(2) == 0 {
				r.Remove(n)
			} else {
				r.Add(n)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if _, ok := r.Lookup(keys[i%len(keys)]); !ok {
					t.Error("lookup failed while node 0 was a member")
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Nodes()
				r.LookupN(keys[i%len(keys)], 3)
			}
		}()
	}
	wg.Wait() // lookups done
	close(stop)
	<-churnDone
}

// TestReplicaSetProperty pins the replica-placement contract the
// router's N=2 replication builds on: for every fleet size from 3 to
// 16 nodes, every key's LookupN(k, 2) set is exactly two distinct
// nodes, led by the owner, deterministic across membership-insertion
// order — and removing the owner promotes exactly the former successor,
// which is the whole warm-failover argument.
func TestReplicaSetProperty(t *testing.T) {
	keys := keySet(500, 42)
	for n := 3; n <= 16; n++ {
		names := nodeNames(n)
		r := New(0)
		for _, name := range names {
			r.Add(name)
		}
		// Same membership added in a different order must agree.
		shuffled := New(0)
		for i := len(names) - 1; i >= 0; i-- {
			shuffled.Add(names[i])
		}
		for i, k := range keys {
			set := r.LookupN(k, 2)
			if len(set) != 2 {
				t.Fatalf("n=%d: LookupN returned %d nodes, want 2", n, len(set))
			}
			if set[0] == set[1] {
				t.Fatalf("n=%d: replica set not distinct: %v", n, set)
			}
			owner, ok := r.Lookup(k)
			if !ok || owner != set[0] {
				t.Fatalf("n=%d: owner %q (ok=%v) != LookupN[0] %q", n, owner, ok, set[0])
			}
			if got := shuffled.LookupN(k, 2); got[0] != set[0] || got[1] != set[1] {
				t.Fatalf("n=%d: replica set depends on insertion order: %v vs %v", n, got, set)
			}
			// Kill the owner: the successor must take over ownership, so
			// a replicated key survives the owner's death warm. Sampled,
			// because each membership change rebuilds the point table.
			if i%25 != 0 {
				continue
			}
			r.Remove(set[0])
			next, ok := r.Lookup(k)
			if !ok || next != set[1] {
				t.Fatalf("n=%d: after removing owner, Lookup = %q (ok=%v), want successor %q", n, next, ok, set[1])
			}
			r.Add(set[0])
		}
	}
}
