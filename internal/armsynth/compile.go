package armsynth

import (
	"debug/elf"
	"fmt"
	"hash/fnv"
	"math/rand"
	"slices"

	"github.com/funseeker/funseeker/internal/elfw"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
)

// Config is the ARM build configuration.
type Config struct {
	// Opt is the modeled optimization level (controls body size and the
	// use of frame-pointer prologues).
	Opt synth.OptLevel
	// PAC additionally emits PACIASP prologues on returning functions
	// (implicit BTI c), as -mbranch-protection=standard does.
	PAC bool
}

// String renders e.g. "arm64-bti-O2" / "arm64-bti+pac-O2".
func (c Config) String() string {
	kind := "bti"
	if c.PAC {
		kind = "bti+pac"
	}
	return fmt.Sprintf("arm64-%s-%s", kind, c.Opt)
}

// Result is one compiled ARM binary with ground truth.
type Result struct {
	// Image is the ELF image (never carries a symbol table; BTI
	// evaluation always runs stripped).
	Image []byte
	// GT is the ground truth.
	GT *groundtruth.GT
	// TextAddr / TextSize locate .text.
	TextAddr uint64
	TextSize int
}

const textBase = 0x400000 + 0x1000

// usesFP reports whether the level keeps an explicit frame pointer move.
func usesFP(o synth.OptLevel) bool { return o == synth.O0 || o == synth.O1 }

// aarch64 GNU property feature bits.
const (
	featureBTI = 0x1
	featurePAC = 0x2
)

// Compile builds a BTI-enabled AArch64 binary from a program spec. The
// x86-specific spec features (PLT calls, indirect-return call sites,
// C++ exception handling, cold splitting) are not modeled on ARM and are
// ignored; everything else — BTI placement policy, direct calls, tail
// calls, switch tables with BTI j labels, dead and data-referenced
// functions — carries over.
func Compile(spec *synth.ProgSpec, cfg Config) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &armGen{spec: spec, cfg: cfg, b: NewBuilder()}
	g.assignHosts()
	g.genAll()
	return g.assemble()
}

type armFn struct {
	spec     *synth.FuncSpec
	start    int
	end      int
	hasBTI   bool
	implicit bool
}

type armGen struct {
	spec *synth.ProgSpec
	cfg  Config
	b    *Builder

	fns      []*armFn
	btiSites []groundtruth.EndbrSite // BTI c/jc pads and their roles
	jSites   []int                   // BTI j offsets (switch labels)
	pool     []poolEntry             // literal pool emitted after code
	hosts    map[int]int             // address-taken func -> host
	labelSeq int
}

// poolEntry is one literal-pool item: a function-pointer literal or a
// jump table.
type poolEntry struct {
	label string   // pool label
	fpOf  string   // function label for pointer literals
	cases []string // case labels for jump tables
}

func (g *armGen) fresh(prefix string) string {
	g.labelSeq++
	return fmt.Sprintf(".L%s%d", prefix, g.labelSeq)
}

func (g *armGen) funcLabel(i int) string { return "f." + g.spec.Funcs[i].Name }

func (g *armGen) rng(i int) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d", g.spec.Name, g.cfg, g.spec.Seed, i)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// assignHosts picks callers for address-taken functions (both kinds are
// materialized with code on ARM: ADR for code refs, a literal table via
// ADR+LDR for data refs).
func (g *armGen) assignHosts() {
	g.hosts = make(map[int]int)
	var pool []int
	for i := range g.spec.Funcs {
		f := &g.spec.Funcs[i]
		if !f.Dead && !f.Intrinsic {
			pool = append(pool, i)
		}
	}
	if len(pool) == 0 {
		return
	}
	n := 0
	for i := range g.spec.Funcs {
		f := &g.spec.Funcs[i]
		if f.AddressTaken || f.AddressTakenData {
			host := pool[n%len(pool)]
			if host == i && len(pool) > 1 {
				n++
				host = pool[n%len(pool)]
			}
			g.hosts[i] = host
			n++
		}
	}
}

func (g *armGen) genAll() {
	g.genStart()
	for i := range g.spec.Funcs {
		g.genFunc(i)
	}
	// Literal pool: jump tables and pointer literals after the code,
	// still inside .text as ARM toolchains commonly place them. Pool
	// words never alias BTI/BL encodings (they hold small offsets and
	// low addresses), so the fixed-width sweep stays clean.
	for _, p := range g.pool {
		g.b.Label(p.label)
		if p.fpOf != "" {
			g.b.WordAddr64(p.fpOf)
			continue
		}
		for _, c := range p.cases {
			g.b.WordDelta(p.label, c)
		}
	}
}

func (g *armGen) entryFuncIdx() int {
	for i := range g.spec.Funcs {
		if g.spec.Funcs[i].Name == "main" {
			return i
		}
	}
	return 0
}

func (g *armGen) genStart() {
	b := g.b
	fi := &armFn{spec: &synth.FuncSpec{Name: "_start"}, implicit: true, hasBTI: true}
	fi.start = b.Offset()
	b.Label("f._start")
	g.btiSites = append(g.btiSites, groundtruth.EndbrSite{
		Addr: textBase + uint64(fi.start), Role: groundtruth.RoleFuncEntry,
	})
	b.BTI(1)
	b.BL(g.funcLabel(g.entryFuncIdx()))
	// Exit loop: the runtime never returns from here.
	stop := g.fresh("stop")
	b.Label(stop)
	b.B(stop)
	fi.end = b.Offset()
	g.fns = append(g.fns, fi)
}

// filler emits n arithmetic instructions.
func (g *armGen) filler(rng *rand.Rand, n int) {
	b := g.b
	regs := []Reg{X0, X1, X2, X9, X10}
	r := func() Reg { return regs[rng.Intn(len(regs))] }
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			b.Movz(r(), uint16(rng.Intn(1<<16)))
		case 1:
			b.AddImm(r(), r(), uint32(rng.Intn(1<<12)))
		case 2:
			b.SubImm(r(), r(), uint32(rng.Intn(1<<12)))
		case 3:
			b.AddReg(r(), r(), r())
		case 4:
			b.Mul(r(), r(), r())
		}
	}
}

func (g *armGen) genFunc(idx int) {
	b := g.b
	spec := &g.spec.Funcs[idx]
	rng := g.rng(idx)
	fi := &armFn{spec: spec}
	fi.start = b.Offset()
	b.Label(g.funcLabel(idx))

	// BTI placement policy: same causal rule as x86 — every function the
	// toolchain cannot prove is never an indirect target gets a pad.
	fi.hasBTI = !spec.Intrinsic &&
		(!spec.Static || spec.AddressTaken || spec.AddressTakenData || idx == g.entryFuncIdx())
	if fi.hasBTI {
		g.btiSites = append(g.btiSites, groundtruth.EndbrSite{
			Addr: textBase + uint64(b.Offset()), Role: groundtruth.RoleFuncEntry,
		})
		if g.cfg.PAC {
			b.Paciasp()
		} else {
			b.BTI(1) // BTI c
		}
	}
	b.StpPre()
	if usesFP(g.cfg.Opt) {
		b.MovSPToFP()
	}

	bodyUnits := spec.BodySize
	if bodyUnits <= 0 {
		bodyUnits = 4 + rng.Intn(8)
	}
	g.filler(rng, bodyUnits)

	for _, callee := range spec.Calls {
		b.Movz(X0, uint16(rng.Intn(1000)))
		b.BL(g.funcLabel(callee))
		g.filler(rng, 1+rng.Intn(3))
	}
	// Address-taken materializations hosted here.
	var hosted []int
	for target, host := range g.hosts {
		if host == idx {
			hosted = append(hosted, target)
		}
	}
	slices.Sort(hosted)
	for _, target := range hosted {
		t := &g.spec.Funcs[target]
		if t.AddressTakenData {
			// Load the pointer from a literal: no instruction references
			// the function, only data does.
			slot := fmt.Sprintf("lit.fp%d", target)
			if !g.poolHas(slot) {
				g.pool = append(g.pool, poolEntry{label: slot, fpOf: g.funcLabel(target)})
			}
			b.Adr(X9, slot)
			b.Ldr(X9, X9, 0)
		} else {
			b.Adr(X9, g.funcLabel(target))
		}
		b.BLR(X9)
		g.filler(rng, 1)
	}
	if spec.HasSwitch {
		g.genSwitch(rng, spec)
	}

	b.LdpPost()
	if len(spec.TailCalls) > 0 {
		for i, target := range spec.TailCalls {
			if i == len(spec.TailCalls)-1 {
				b.B(g.funcLabel(target))
				break
			}
			next := g.fresh("tc")
			b.CmpImm(X0, uint32(i))
			b.BCond(1 /* NE */, next)
			b.B(g.funcLabel(target))
			b.Label(next)
		}
	} else {
		b.Ret()
	}
	fi.end = b.Offset()
	g.fns = append(g.fns, fi)
}

// genSwitch emits a jump-table dispatch: every case label carries BTI j
// because BR is a tracked indirect jump on ARM (there is no NOTRACK).
func (g *armGen) genSwitch(rng *rand.Rand, spec *synth.FuncSpec) {
	b := g.b
	cases := spec.SwitchCases
	if cases < 2 {
		cases = 4
	}
	defL := g.fresh("swdef")
	endL := g.fresh("swend")
	tab := g.fresh("jt")

	b.CmpImm(X0, uint32(cases-1))
	b.BCond(8 /* HI */, defL)
	b.Adr(X9, tab)
	b.LdrswScaled(X10, X9, X0)
	b.AddReg(X10, X9, X10)
	b.BR(X10)

	caseLabels := make([]string, cases)
	for i := range caseLabels {
		caseLabels[i] = g.fresh("case")
	}
	g.pool = append(g.pool, poolEntry{label: tab, cases: caseLabels})
	for _, cl := range caseLabels {
		b.Label(cl)
		g.jSites = append(g.jSites, b.Offset())
		b.BTI(2) // BTI j
		g.filler(rng, 1+rng.Intn(2))
		b.B(endL)
	}
	b.Label(defL)
	g.filler(rng, 1)
	b.Label(endL)
}

// Ldr emits LDR Xd, [Xn, #imm] (imm must be 8-byte aligned).
func (b *Builder) Ldr(rd, rn Reg, imm uint32) {
	b.emit(0xF9400000 | imm/8&0xFFF<<10 | uint32(rn)&31<<5 | uint32(rd)&31)
}

func (g *armGen) poolHas(label string) bool {
	for _, p := range g.pool {
		if p.label == label {
			return true
		}
	}
	return false
}

// assemble packages the code into an AArch64 ELF with the BTI property
// note and builds the ground truth.
func (g *armGen) assemble() (*Result, error) {
	textBytes, err := g.b.Finalize(textBase)
	if err != nil {
		return nil, fmt.Errorf("armsynth: %s: %w", g.spec.Name, err)
	}

	gt := &groundtruth.GT{
		Program: g.spec.Name,
		Config:  g.cfg.String(),
		Lang:    "c",
	}
	for _, fi := range g.fns {
		gt.Funcs = append(gt.Funcs, groundtruth.Func{
			Name:      fi.spec.Name,
			Addr:      textBase + uint64(fi.start),
			Size:      uint64(fi.end - fi.start),
			Static:    fi.spec.Static,
			HasEndbr:  fi.hasBTI,
			Dead:      fi.spec.Dead,
			Intrinsic: fi.spec.Intrinsic,
		})
	}
	gt.Endbrs = append(gt.Endbrs, g.btiSites...)
	for _, off := range g.jSites {
		gt.Endbrs = append(gt.Endbrs, groundtruth.EndbrSite{
			Addr: textBase + uint64(off), Role: groundtruth.RoleJumpTarget,
		})
	}

	features := uint32(featureBTI)
	if g.cfg.PAC {
		features |= featurePAC
	}
	f := elfw.New(elf.ELFCLASS64, elf.ET_EXEC)
	f.Machine = elf.EM_AARCH64
	startVA := textBase
	f.Entry = uint64(startVA)
	f.AddSection(&elfw.Section{Name: ".note.gnu.property", Type: elf.SHT_NOTE,
		Flags: elf.SHF_ALLOC, Addr: 0x400200,
		Data: elfw.GNUPropertyNoteAArch64(elf.ELFCLASS64, features), Addralign: 8})
	f.AddSection(&elfw.Section{Name: ".text", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: textBase,
		Data: textBytes, Addralign: 4})
	image, err := f.Bytes()
	if err != nil {
		return nil, fmt.Errorf("armsynth: %s: emit: %w", g.spec.Name, err)
	}
	return &Result{
		Image:    image,
		GT:       gt,
		TextAddr: textBase,
		TextSize: len(textBytes),
	}, nil
}
