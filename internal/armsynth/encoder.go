// Package armsynth synthesizes BTI-enabled AArch64 ELF binaries with
// known ground truth, the ARM counterpart of internal/synth. It realizes
// the paper's §VI claim that the FunSeeker algorithm extends to ARM
// Branch Target Identification:
//
//   - every indirectly reachable function entry carries `BTI c` (or the
//     PACIASP pointer-authentication prologue, an implicit BTI c);
//   - switch-table case labels carry `BTI j` — the ARM analog of the
//     "end branch at a non-entry location" problem, except the operand
//     self-describes the distinction;
//   - static direct-called functions carry no pad at all;
//   - tail calls are direct `B` instructions.
package armsynth

import "fmt"

// Reg is an AArch64 general-purpose register number (X0..X30).
type Reg uint32

// Registers used by the generator.
const (
	X0  Reg = 0
	X1  Reg = 1
	X2  Reg = 2
	X9  Reg = 9
	X10 Reg = 10
	X16 Reg = 16
	X29 Reg = 29 // frame pointer
	X30 Reg = 30 // link register
	SP  Reg = 31
)

// fixup records a pending label patch.
type fixup struct {
	wordIdx int
	label   string
	base    string // for fixDelta: the word is label - base, in bytes
	kind    fixKind
}

type fixKind int

const (
	fixB26   fixKind = iota // B / BL imm26
	fixB19                  // B.cond / CBZ imm19
	fixAdr                  // ADR imm21
	fixDelta                // 32-bit (label - base) jump-table entry
	fixAbs64                // 64-bit absolute address across two words
)

// Builder emits AArch64 words with label fixups.
type Builder struct {
	words  []uint32
	labels map[string]int
	fixups []fixup
	err    error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Size returns the emitted size in bytes.
func (b *Builder) Size() int { return len(b.words) * 4 }

// Offset returns the current emission offset in bytes.
func (b *Builder) Offset() int { return b.Size() }

// Label defines name at the current offset.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup && b.err == nil {
		b.err = fmt.Errorf("armsynth: duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.words)
}

func (b *Builder) emit(w uint32) { b.words = append(b.words, w) }

// Finalize resolves fixups and returns the little-endian bytes. base is
// the virtual address of the first word.
func (b *Builder) Finalize(base uint64) ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("armsynth: undefined label %q", f.label)
		}
		delta := int64(idx-f.wordIdx) * 4
		switch f.kind {
		case fixB26:
			if delta < -(1<<27) || delta >= 1<<27 {
				return nil, fmt.Errorf("armsynth: b26 overflow to %q", f.label)
			}
			b.words[f.wordIdx] |= uint32(delta/4) & 0x03FFFFFF
		case fixB19:
			if delta < -(1<<20) || delta >= 1<<20 {
				return nil, fmt.Errorf("armsynth: b19 overflow to %q", f.label)
			}
			b.words[f.wordIdx] |= (uint32(delta/4) & 0x7FFFF) << 5
		case fixAdr:
			if delta < -(1<<20) || delta >= 1<<20 {
				return nil, fmt.Errorf("armsynth: adr overflow to %q", f.label)
			}
			d := uint32(delta)
			b.words[f.wordIdx] |= (d & 3 << 29) | (d >> 2 & 0x7FFFF << 5)
		case fixDelta:
			bidx, ok := b.labels[f.base]
			if !ok {
				return nil, fmt.Errorf("armsynth: undefined base label %q", f.base)
			}
			b.words[f.wordIdx] = uint32(int32(idx-bidx) * 4)
		case fixAbs64:
			va := base + uint64(idx)*4
			b.words[f.wordIdx] = uint32(va)
			b.words[f.wordIdx+1] = uint32(va >> 32)
		}
	}
	out := make([]byte, 0, len(b.words)*4)
	for _, w := range b.words {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out, nil
}

// WordDelta emits one 32-bit jump-table entry holding (target - base) in
// bytes, resolved at Finalize.
func (b *Builder) WordDelta(baseLabel, target string) {
	b.fixups = append(b.fixups, fixup{wordIdx: len(b.words), label: target, base: baseLabel, kind: fixDelta})
	b.emit(0)
}

// WordAddr64 emits an 8-byte absolute pointer to target (two words).
func (b *Builder) WordAddr64(target string) {
	b.fixups = append(b.fixups, fixup{wordIdx: len(b.words), label: target, kind: fixAbs64})
	b.emit(0)
	b.emit(0)
}

// LabelOffset returns the byte offset of a defined label.
func (b *Builder) LabelOffset(name string) (int, bool) {
	idx, ok := b.labels[name]
	return idx * 4, ok
}

// --- instruction emitters ----------------------------------------------

// BTI emits a BTI landing pad; kind is 0 (plain), 1 (c), 2 (j), 3 (jc).
func (b *Builder) BTI(kind uint32) { b.emit(0xD503241F | kind&3<<6) }

// Paciasp emits PACIASP (implicit BTI c).
func (b *Builder) Paciasp() { b.emit(0xD503233F) }

// Nop emits NOP.
func (b *Builder) Nop() { b.emit(0xD503201F) }

// BL emits a direct call to label.
func (b *Builder) BL(label string) {
	b.fixups = append(b.fixups, fixup{wordIdx: len(b.words), label: label, kind: fixB26})
	b.emit(0x94000000)
}

// B emits a direct branch to label.
func (b *Builder) B(label string) {
	b.fixups = append(b.fixups, fixup{wordIdx: len(b.words), label: label, kind: fixB26})
	b.emit(0x14000000)
}

// BCond emits B.<cond> to label; cond is the 4-bit condition code.
func (b *Builder) BCond(cond uint32, label string) {
	b.fixups = append(b.fixups, fixup{wordIdx: len(b.words), label: label, kind: fixB19})
	b.emit(0x54000000 | cond&0xF)
}

// Cbz emits CBZ Xn, label.
func (b *Builder) Cbz(rn Reg, label string) {
	b.fixups = append(b.fixups, fixup{wordIdx: len(b.words), label: label, kind: fixB19})
	b.emit(0xB4000000 | uint32(rn)&31)
}

// Ret emits RET (X30).
func (b *Builder) Ret() { b.emit(0xD65F03C0) }

// BR emits an indirect branch through rn.
func (b *Builder) BR(rn Reg) { b.emit(0xD61F0000 | uint32(rn)&31<<5) }

// BLR emits an indirect call through rn.
func (b *Builder) BLR(rn Reg) { b.emit(0xD63F0000 | uint32(rn)&31<<5) }

// Adr emits ADR rd, label (PC-relative address within ±1 MiB).
func (b *Builder) Adr(rd Reg, label string) {
	b.fixups = append(b.fixups, fixup{wordIdx: len(b.words), label: label, kind: fixAdr})
	b.emit(0x10000000 | uint32(rd)&31)
}

// Movz emits MOVZ Xd, #imm16.
func (b *Builder) Movz(rd Reg, imm uint16) {
	b.emit(0xD2800000 | uint32(imm)<<5 | uint32(rd)&31)
}

// AddImm emits ADD Xd, Xn, #imm12.
func (b *Builder) AddImm(rd, rn Reg, imm uint32) {
	b.emit(0x91000000 | imm&0xFFF<<10 | uint32(rn)&31<<5 | uint32(rd)&31)
}

// SubImm emits SUB Xd, Xn, #imm12.
func (b *Builder) SubImm(rd, rn Reg, imm uint32) {
	b.emit(0xD1000000 | imm&0xFFF<<10 | uint32(rn)&31<<5 | uint32(rd)&31)
}

// AddReg emits ADD Xd, Xn, Xm.
func (b *Builder) AddReg(rd, rn, rm Reg) {
	b.emit(0x8B000000 | uint32(rm)&31<<16 | uint32(rn)&31<<5 | uint32(rd)&31)
}

// Mul emits MUL Xd, Xn, Xm.
func (b *Builder) Mul(rd, rn, rm Reg) {
	b.emit(0x9B007C00 | uint32(rm)&31<<16 | uint32(rn)&31<<5 | uint32(rd)&31)
}

// CmpImm emits CMP Xn, #imm12 (SUBS XZR, Xn, #imm).
func (b *Builder) CmpImm(rn Reg, imm uint32) {
	b.emit(0xF100001F | imm&0xFFF<<10 | uint32(rn)&31<<5)
}

// StpPre emits STP X29, X30, [SP, #-16]! — the standard prologue store.
func (b *Builder) StpPre() { b.emit(0xA9BF7BFD) }

// LdpPost emits LDP X29, X30, [SP], #16 — the matching epilogue load.
func (b *Builder) LdpPost() { b.emit(0xA8C17BFD) }

// MovSPToFP emits MOV X29, SP.
func (b *Builder) MovSPToFP() { b.emit(0x910003FD) }

// LdrswScaled emits LDRSW Xd, [Xn, Xm, LSL #2] — jump-table entry load.
func (b *Builder) LdrswScaled(rd, rn, rm Reg) {
	b.emit(0xB8A07800 | uint32(rm)&31<<16 | uint32(rn)&31<<5 | uint32(rd)&31)
}

// Word emits a raw 32-bit literal (jump-table data inside .text is NOT
// used; this is for rodata construction elsewhere).
func (b *Builder) Word(w uint32) { b.emit(w) }
