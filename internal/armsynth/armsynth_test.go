package armsynth

import (
	"bytes"
	"debug/elf"
	"testing"

	"github.com/funseeker/funseeker/internal/arm64"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
)

func demoSpec() *synth.ProgSpec {
	return &synth.ProgSpec{
		Name: "armdemo",
		Lang: synth.LangC,
		Seed: 3,
		Funcs: []synth.FuncSpec{
			{Name: "main", Calls: []int{1}, HasSwitch: true, SwitchCases: 3},
			{Name: "a", Calls: []int{2}},
			{Name: "b", Static: true},
			{Name: "cb", AddressTakenData: true},
			{Name: "ti", Static: true},
			{Name: "t1", TailCalls: []int{4}},
			{Name: "t2", TailCalls: []int{4}},
		},
	}
}

func TestCompileProducesValidELF(t *testing.T) {
	res, err := Compile(demoSpec(), Config{Opt: synth.O2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := elf.NewFile(bytes.NewReader(res.Image))
	if err != nil {
		t.Fatalf("debug/elf rejected the image: %v", err)
	}
	defer f.Close()
	if f.Machine != elf.EM_AARCH64 {
		t.Errorf("machine = %v", f.Machine)
	}
	text := f.Section(".text")
	if text == nil || text.Addr != res.TextAddr {
		t.Fatal("bad .text")
	}
	data, err := text.Data()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != res.TextSize {
		t.Errorf("text size %d != %d", len(data), res.TextSize)
	}
	note := f.Section(".note.gnu.property")
	if note == nil {
		t.Fatal("no property note")
	}
}

func TestBTIPlacementPolicy(t *testing.T) {
	res, err := Compile(demoSpec(), Config{Opt: synth.O2})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := elf.NewFile(bytes.NewReader(res.Image))
	defer f.Close()
	text, _ := f.Section(".text").Data()

	// Cross-check GT endbr flags against the decoded first word of each
	// function.
	for _, fn := range res.GT.Funcs {
		off := fn.Addr - res.TextAddr
		word := uint32(text[off]) | uint32(text[off+1])<<8 |
			uint32(text[off+2])<<16 | uint32(text[off+3])<<24
		inst := arm64.Decode(word, fn.Addr)
		isPad := inst.Class == arm64.ClassBTI && inst.BTI.AcceptsCall() ||
			inst.Class == arm64.ClassPACIASP
		if fn.HasEndbr != isPad {
			t.Errorf("%s: GT endbr=%v but entry decodes as %v", fn.Name, fn.HasEndbr, inst.Class)
		}
	}
}

func TestJumpTableEntriesResolve(t *testing.T) {
	res, err := Compile(demoSpec(), Config{Opt: synth.O2})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := elf.NewFile(bytes.NewReader(res.Image))
	defer f.Close()
	text, _ := f.Section(".text").Data()

	// Every BTI j site recorded in the GT must decode as BTI j.
	jCount := 0
	for _, e := range res.GT.Endbrs {
		if e.Role != groundtruth.RoleJumpTarget {
			continue
		}
		jCount++
		off := e.Addr - res.TextAddr
		word := uint32(text[off]) | uint32(text[off+1])<<8 |
			uint32(text[off+2])<<16 | uint32(text[off+3])<<24
		inst := arm64.Decode(word, e.Addr)
		if inst.Class != arm64.ClassBTI || !inst.BTI.AcceptsJump() {
			t.Errorf("GT j-site %#x decodes as %v", e.Addr, inst.Class)
		}
	}
	if jCount != 3 {
		t.Errorf("expected 3 BTI j sites (switch cases), got %d", jCount)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	b.Label("x")
	if _, err := b.Finalize(0); err == nil {
		t.Error("duplicate label must fail")
	}
	b2 := NewBuilder()
	b2.BL("nowhere")
	if _, err := b2.Finalize(0); err == nil {
		t.Error("undefined label must fail")
	}
}

func TestEncoderWords(t *testing.T) {
	b := NewBuilder()
	b.BTI(1)
	b.Paciasp()
	b.Nop()
	b.StpPre()
	b.MovSPToFP()
	b.LdpPost()
	b.Ret()
	b.BR(X9)
	b.BLR(X16)
	code, err := b.Finalize(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{
		0xD503245F, 0xD503233F, 0xD503201F,
		0xA9BF7BFD, 0x910003FD, 0xA8C17BFD,
		0xD65F03C0, 0xD61F0120, 0xD63F0200,
	}
	for i, w := range want {
		got := uint32(code[i*4]) | uint32(code[i*4+1])<<8 |
			uint32(code[i*4+2])<<16 | uint32(code[i*4+3])<<24
		if got != w {
			t.Errorf("word %d = %#08x, want %#08x", i, got, w)
		}
	}
}

func TestBranchFixupRoundtrip(t *testing.T) {
	b := NewBuilder()
	b.Label("top")
	b.BL("fn")
	b.B("top")
	b.Label("fn")
	b.BTI(1)
	b.Ret()
	code, err := b.Finalize(0x401000)
	if err != nil {
		t.Fatal(err)
	}
	var insts []arm64.Inst
	arm64.LinearSweep(code, 0x401000, func(i arm64.Inst) bool {
		insts = append(insts, i)
		return true
	})
	if insts[0].Class != arm64.ClassBL || insts[0].Target != 0x401008 {
		t.Errorf("bl = %+v", insts[0])
	}
	if insts[1].Class != arm64.ClassB || insts[1].Target != 0x401000 {
		t.Errorf("b = %+v", insts[1])
	}
}

func TestConfigString(t *testing.T) {
	if (Config{Opt: synth.O2}).String() != "arm64-bti-O2" {
		t.Error("config string changed")
	}
	if (Config{Opt: synth.O3, PAC: true}).String() != "arm64-bti+pac-O3" {
		t.Error("PAC config string changed")
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	if _, err := Compile(&synth.ProgSpec{}, Config{Opt: synth.O2}); err == nil {
		t.Error("empty spec must fail")
	}
}
