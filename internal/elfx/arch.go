package elfx

import (
	"bytes"
	"debug/elf"
	"encoding/binary"
)

// Arch identifies the instruction-set architecture of a binary, which
// selects the analysis backend (linear sweep, landmark extraction, index
// construction) everywhere downstream. The zero value means "decide from
// the ELF header" so option structs embedding an Arch default to
// auto-detection.
type Arch uint8

const (
	// ArchAuto means "detect from the ELF header". Load never stores it
	// on a Binary; it appears only in option structs.
	ArchAuto Arch = iota
	// ArchX86 is 32-bit x86 (ELFCLASS32), decoded with x86.Mode32.
	ArchX86
	// ArchX86_64 is 64-bit x86 with the CET/endbr64 landmark model.
	ArchX86_64
	// ArchAArch64 is 64-bit ARM with the BTI landmark model.
	ArchAArch64
	// ArchUnknown marks bytes that do not carry a recognizable ELF
	// header. Analyses dispatched on it fail with a backend error.
	ArchUnknown

	// NArch bounds the Arch value space; per-arch memo arrays use it.
	NArch
)

// String returns the canonical lowercase name, matching the spellings
// ParseArch accepts and the values exported in API responses and metric
// labels.
func (a Arch) String() string {
	switch a {
	case ArchAuto:
		return "auto"
	case ArchX86:
		return "x86"
	case ArchX86_64:
		return "x86-64"
	case ArchAArch64:
		return "aarch64"
	}
	return "unknown"
}

// ParseArch maps a user-supplied architecture name to an Arch. Common
// alternate spellings (x86_64, amd64, arm64) are accepted.
func ParseArch(s string) (Arch, bool) {
	switch s {
	case "", "auto":
		return ArchAuto, true
	case "x86", "i386", "386":
		return ArchX86, true
	case "x86-64", "x86_64", "amd64":
		return ArchX86_64, true
	case "aarch64", "arm64":
		return ArchAArch64, true
	}
	return ArchUnknown, false
}

// archFrom is the single arch-assignment rule shared by Load and
// DetectArch: AArch64 by machine, otherwise by ELF class — which keeps
// every machine value that is not EM_AARCH64 (including the EM_NONE of
// synthetic images) on the historical x86 path.
func archFrom(machine elf.Machine, class elf.Class) Arch {
	if machine == elf.EM_AARCH64 {
		return ArchAArch64
	}
	if class == elf.ELFCLASS32 {
		return ArchX86
	}
	return ArchX86_64
}

// DetectArch peeks at the ELF identification and e_machine fields of an
// in-memory image without parsing section headers. It returns exactly
// the Arch that Load would assign, which is what lets callers key caches
// by architecture before paying for a full parse. Bytes that do not
// start with an ELF header yield ArchUnknown.
func DetectArch(raw []byte) Arch {
	if len(raw) < 0x14 || !bytes.Equal(raw[:4], []byte("\x7fELF")) {
		return ArchUnknown
	}
	class := elf.Class(raw[elf.EI_CLASS])
	if class != elf.ELFCLASS32 && class != elf.ELFCLASS64 {
		return ArchUnknown
	}
	var order binary.ByteOrder
	switch elf.Data(raw[elf.EI_DATA]) {
	case elf.ELFDATA2LSB:
		order = binary.LittleEndian
	case elf.ELFDATA2MSB:
		order = binary.BigEndian
	default:
		return ArchUnknown
	}
	machine := elf.Machine(order.Uint16(raw[0x12:]))
	return archFrom(machine, class)
}
