// Package elfx loads ELF binaries for function-identification analysis.
//
// It layers on debug/elf and extracts exactly what the identification
// tools need: the executable sections with their load addresses, the
// exception-handling metadata (.eh_frame, .gcc_except_table), the PLT
// entry → imported-symbol-name map recovered from the PLT relocations,
// and the CET feature bits from the GNU property note.
package elfx

import (
	"bytes"
	"debug/elf"
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"github.com/funseeker/funseeker/internal/x86"
)

// Binary is a loaded ELF executable ready for analysis.
type Binary struct {
	// Path is the file path the binary was loaded from, empty for
	// in-memory images.
	Path string
	// Arch is the instruction-set architecture from the ELF header; it
	// selects the analysis backend.
	Arch Arch
	// Mode is the x86 decode mode implied by the ELF class (meaningful
	// for the x86 arches only).
	Mode x86.Mode
	// PIE reports whether the file is position independent (ET_DYN).
	PIE bool
	// Entry is the program entry point.
	Entry uint64

	// Text is the contents of .text and TextAddr its load address.
	Text     []byte
	TextAddr uint64

	// EHFrame / EHFrameAddr carry .eh_frame when present.
	EHFrame     []byte
	EHFrameAddr uint64

	// ExceptTable / ExceptTableAddr carry .gcc_except_table when present.
	ExceptTable     []byte
	ExceptTableAddr uint64

	// PLT maps each PLT entry address to the imported symbol name it
	// trampolines to. With the split-PLT layout modern CET toolchains
	// emit (-z ibtplt), the map covers both .plt and .plt.sec entries;
	// calls from program code target the .plt.sec stubs.
	PLT map[uint64]string

	// PLTStart / PLTEnd bound the .plt section (zero when absent).
	PLTStart, PLTEnd uint64
	// PLTSecStart / PLTSecEnd bound .plt.sec when present.
	PLTSecStart, PLTSecEnd uint64

	// FuncSymbols holds STT_FUNC symbols from .symtab when the binary is
	// not stripped; used for ground-truth extraction, never by the
	// identification algorithms.
	FuncSymbols []elf.Symbol

	// CETEnabled reports whether the GNU property note declares IBT
	// support (x86 arches).
	CETEnabled bool
	// BTIEnabled reports whether the GNU property note declares BTI
	// support (AArch64).
	BTIEnabled bool
}

// ErrNoText is returned for binaries without an executable .text section.
var ErrNoText = errors.New("elfx: no .text section")

// ErrNotELF is returned when the input bytes do not parse as an ELF
// image at all. The underlying debug/elf diagnostic is attached as text;
// match with errors.Is(err, ErrNotELF).
var ErrNotELF = errors.New("elfx: not an ELF image")

// Open loads the ELF file at path.
func Open(path string) (*Binary, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("elfx: %w", err)
	}
	b, err := Load(raw)
	if err != nil {
		return nil, fmt.Errorf("elfx: %s: %w", path, err)
	}
	b.Path = path
	return b, nil
}

// Load parses an in-memory ELF image.
func Load(raw []byte) (*Binary, error) {
	f, err := elf.NewFile(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotELF, err)
	}
	defer f.Close()

	mode := x86.Mode64
	if f.Class == elf.ELFCLASS32 {
		mode = x86.Mode32
	}
	bin := &Binary{
		Arch:  archFrom(f.Machine, f.Class),
		Mode:  mode,
		PIE:   f.Type == elf.ET_DYN,
		Entry: f.Entry,
		PLT:   make(map[uint64]string),
	}

	text := f.Section(".text")
	if text == nil {
		return nil, ErrNoText
	}
	if bin.Text, err = text.Data(); err != nil {
		return nil, fmt.Errorf("elfx: read .text: %w", err)
	}
	bin.TextAddr = text.Addr

	if s := f.Section(".eh_frame"); s != nil {
		if bin.EHFrame, err = s.Data(); err != nil {
			return nil, fmt.Errorf("elfx: read .eh_frame: %w", err)
		}
		bin.EHFrameAddr = s.Addr
	}
	if s := f.Section(".gcc_except_table"); s != nil {
		if bin.ExceptTable, err = s.Data(); err != nil {
			return nil, fmt.Errorf("elfx: read .gcc_except_table: %w", err)
		}
		bin.ExceptTableAddr = s.Addr
	}

	if syms, err := f.Symbols(); err == nil {
		for _, s := range syms {
			if elf.ST_TYPE(s.Info) == elf.STT_FUNC {
				bin.FuncSymbols = append(bin.FuncSymbols, s)
			}
		}
	}

	if bin.Arch == ArchAArch64 {
		bin.BTIEnabled = hasPropertyBit(f, prTypeAArch64Features, 0x1)
	} else {
		bin.CETEnabled = hasPropertyBit(f, prTypeX86Features, 0x1)
	}

	if err := bin.buildPLTMap(f); err != nil {
		return nil, err
	}
	return bin, nil
}

// PtrSize returns the pointer width in bytes.
func (b *Binary) PtrSize() int {
	if b.Mode == x86.Mode64 {
		return 8
	}
	return 4
}

// MarkersEnabled reports whether the binary's property note declares the
// landmark feature the identification algorithm keys on: IBT for the x86
// arches, BTI for AArch64.
func (b *Binary) MarkersEnabled() bool { return b.CETEnabled || b.BTIEnabled }

// TextEnd returns the first address past the .text section.
func (b *Binary) TextEnd() uint64 { return b.TextAddr + uint64(len(b.Text)) }

// InText reports whether va falls inside .text.
func (b *Binary) InText(va uint64) bool {
	return va >= b.TextAddr && va < b.TextEnd()
}

// InPLT reports whether va falls inside .plt or .plt.sec.
func (b *Binary) InPLT(va uint64) bool {
	if b.PLTEnd > 0 && va >= b.PLTStart && va < b.PLTEnd {
		return true
	}
	return b.PLTSecEnd > 0 && va >= b.PLTSecStart && va < b.PLTSecEnd
}

// PLTName returns the imported symbol a PLT-entry address trampolines to.
func (b *Binary) PLTName(va uint64) (string, bool) {
	name, ok := b.PLT[va]
	return name, ok
}

// GNU property types carrying the landmark feature words: bit 0 of the
// x86 word is IBT, bit 0 of the AArch64 word is BTI.
const (
	prTypeX86Features     = 0xc0000002 // GNU_PROPERTY_X86_FEATURE_1_AND
	prTypeAArch64Features = 0xc0000000 // GNU_PROPERTY_AARCH64_FEATURE_1_AND
)

// hasPropertyBit scans .note.gnu.property for the property word prType
// and reports whether it carries bit.
func hasPropertyBit(f *elf.File, prType, bit uint32) bool {
	sec := f.Section(".note.gnu.property")
	if sec == nil {
		return false
	}
	data, err := sec.Data()
	if err != nil || len(data) < 16 {
		return false
	}
	le := binary.LittleEndian
	namesz := le.Uint32(data[0:])
	descsz := le.Uint32(data[4:])
	if namesz != 4 || !bytes.Equal(data[12:16], []byte("GNU\x00")) {
		return false
	}
	desc := data[16:]
	if uint32(len(desc)) < descsz {
		return false
	}
	for off := uint32(0); off+8 <= descsz; {
		gotType := le.Uint32(desc[off:])
		prSize := le.Uint32(desc[off+4:])
		if gotType == prType && prSize >= 4 && off+8+4 <= uint32(len(desc)) {
			return le.Uint32(desc[off+8:])&bit != 0
		}
		// Properties are padded to the class alignment.
		align := uint32(8)
		if f.Class == elf.ELFCLASS32 {
			align = 4
		}
		off += 8 + (prSize+align-1)/align*align
	}
	return false
}

// buildPLTMap resolves each PLT entry to the symbol it imports by reading
// the indirect-jump GOT slot out of each stub and joining it against the
// PLT relocation table. Both the classic single .plt layout and the
// split .plt/.plt.sec layout of CET-enabled links are handled: every
// executable stub section is scanned with the same GOT-slot join.
func (b *Binary) buildPLTMap(f *elf.File) error {
	gotToName, err := pltRelocations(f)
	if err != nil {
		return err
	}
	scan := func(sec *elf.Section) error {
		if sec == nil {
			return nil
		}
		data, err := sec.Data()
		if err != nil {
			return fmt.Errorf("elfx: read %s: %w", sec.Name, err)
		}
		switch sec.Name {
		case ".plt":
			b.PLTStart = sec.Addr
			b.PLTEnd = sec.Addr + uint64(len(data))
		case ".plt.sec":
			b.PLTSecStart = sec.Addr
			b.PLTSecEnd = sec.Addr + uint64(len(data))
		}
		if len(gotToName) == 0 || b.Arch == ArchAArch64 {
			// The stub scan below decodes x86; AArch64 PLT stubs would
			// be decoded as garbage, and the map only feeds the x86-only
			// indirect-return endbr filter. Section bounds are still
			// recorded above.
			return nil
		}
		// Walk the stubs: each one contains an indirect jmp through its
		// GOT slot. Attribute the jump to the 16-byte-aligned stub start.
		x86.LinearSweep(data, sec.Addr, b.Mode, func(inst *x86.Inst) bool {
			if inst.Class != x86.ClassJmpInd {
				return true
			}
			var slot uint64
			switch {
			case inst.HasRIPRef:
				slot = inst.RIPRef
			case inst.HasMemDisp:
				slot = inst.MemDisp
			default:
				return true
			}
			name, ok := gotToName[slot]
			if !ok {
				return true
			}
			entry := inst.Addr &^ 0xF // stubs are 16-byte aligned
			if entry < sec.Addr {
				entry = sec.Addr
			}
			b.PLT[entry] = name
			return true
		})
		return nil
	}
	if err := scan(f.Section(".plt")); err != nil {
		return err
	}
	return scan(f.Section(".plt.sec"))
}

// pltRelocations parses .rela.plt / .rel.plt into a GOT-slot → name map.
func pltRelocations(f *elf.File) (map[uint64]string, error) {
	var (
		data []byte
		rela bool
		err  error
	)
	if s := f.Section(".rela.plt"); s != nil {
		if data, err = s.Data(); err != nil {
			return nil, fmt.Errorf("elfx: read .rela.plt: %w", err)
		}
		rela = true
	} else if s := f.Section(".rel.plt"); s != nil {
		if data, err = s.Data(); err != nil {
			return nil, fmt.Errorf("elfx: read .rel.plt: %w", err)
		}
	} else {
		return nil, nil
	}
	dynsyms, err := f.DynamicSymbols()
	if err != nil {
		return nil, nil // no dynamic symbols: nothing to resolve
	}
	nameOf := func(idx uint32) string {
		// DynamicSymbols omits the null symbol: index 1 is element 0.
		if idx == 0 || int(idx) > len(dynsyms) {
			return ""
		}
		return dynsyms[idx-1].Name
	}

	out := make(map[uint64]string)
	le := binary.LittleEndian
	if f.Class == elf.ELFCLASS64 {
		if !rela {
			return nil, errors.New("elfx: ELF64 PLT relocations must be RELA")
		}
		for off := 0; off+24 <= len(data); off += 24 {
			r := elf.Rela64{
				Off:  le.Uint64(data[off:]),
				Info: le.Uint64(data[off+8:]),
			}
			if name := nameOf(elf.R_SYM64(r.Info)); name != "" {
				out[r.Off] = name
			}
		}
		return out, nil
	}
	if rela {
		for off := 0; off+12 <= len(data); off += 12 {
			r := elf.Rela32{
				Off:  le.Uint32(data[off:]),
				Info: le.Uint32(data[off+4:]),
			}
			if name := nameOf(elf.R_SYM32(r.Info)); name != "" {
				out[uint64(r.Off)] = name
			}
		}
		return out, nil
	}
	for off := 0; off+8 <= len(data); off += 8 {
		r := elf.Rel32{
			Off:  le.Uint32(data[off:]),
			Info: le.Uint32(data[off+4:]),
		}
		if name := nameOf(elf.R_SYM32(r.Info)); name != "" {
			out[uint64(r.Off)] = name
		}
	}
	return out, nil
}
