package elfx

import (
	"debug/elf"
	"os"
	"path/filepath"
	"testing"

	"github.com/funseeker/funseeker/internal/elfw"
	"github.com/funseeker/funseeker/internal/x86"
)

// buildTestImage assembles a minimal CET-enabled executable with a PLT
// entry for "setjmp" directly through elfw (no synth dependency, keeping
// this a unit test of the loader).
func buildTestImage(t *testing.T, class elf.Class) []byte {
	t.Helper()
	is64 := class == elf.ELFCLASS64
	var textBase, pltBase, gotBase uint64
	if is64 {
		pltBase, textBase, gotBase = 0x401000, 0x402000, 0x404000
	} else {
		pltBase, textBase, gotBase = 0x8049000, 0x804a000, 0x804c000
	}

	// Dynamic symbols: just setjmp.
	dsb := elfw.NewSymtab(class)
	dsb.Add(elfw.Symbol{Name: "setjmp", Bind: elf.STB_GLOBAL, Type: elf.STT_FUNC})
	dynsym, dynstr, firstGlobal, idx := dsb.Emit()

	ptr := uint64(8)
	if !is64 {
		ptr = 4
	}
	gotSlot := gotBase + 3*ptr

	// PLT: one 16-byte stub with endbr + indirect jmp through the slot.
	plt := make([]byte, 0, 16)
	if is64 {
		plt = append(plt, 0xF3, 0x0F, 0x1E, 0xFA) // endbr64
		rel := int32(int64(gotSlot) - int64(pltBase+10))
		plt = append(plt, 0xFF, 0x25, byte(rel), byte(rel>>8), byte(rel>>16), byte(rel>>24))
	} else {
		plt = append(plt, 0xF3, 0x0F, 0x1E, 0xFB) // endbr32
		plt = append(plt, 0xFF, 0x25, byte(gotSlot), byte(gotSlot>>8), byte(gotSlot>>16), byte(gotSlot>>24))
	}
	for len(plt) < 16 {
		plt = append(plt, 0x90)
	}

	text := []byte{0xF3, 0x0F, 0x1E, 0xFA, 0xC3} // endbr64; ret
	if !is64 {
		text[3] = 0xFB
	}

	relocs := []elfw.Reloc{{Offset: gotSlot, SymIndex: idx["setjmp"], Type: 7}}
	relaName, relaType := ".rela.plt", elf.SHT_RELA
	if !is64 {
		relaName, relaType = ".rel.plt", elf.SHT_REL
	}

	f := elfw.New(class, elf.ET_EXEC)
	f.Entry = textBase
	symEnt := uint64(24)
	if !is64 {
		symEnt = 16
	}
	f.AddSection(&elfw.Section{Name: ".note.gnu.property", Type: elf.SHT_NOTE,
		Flags: elf.SHF_ALLOC, Addr: textBase - 0xE00,
		Data: elfw.GNUPropertyNote(class, elfw.FeatureIBT|elfw.FeatureSHSTK), Addralign: 8})
	f.AddSection(&elfw.Section{Name: ".dynsym", Type: elf.SHT_DYNSYM,
		Flags: elf.SHF_ALLOC, Addr: textBase - 0xD00, Data: dynsym,
		Link: 3, Info: firstGlobal, Addralign: 8, Entsize: symEnt})
	f.AddSection(&elfw.Section{Name: ".dynstr", Type: elf.SHT_STRTAB,
		Flags: elf.SHF_ALLOC, Addr: textBase - 0xC00, Data: dynstr, Addralign: 1})
	f.AddSection(&elfw.Section{Name: relaName, Type: relaType,
		Flags: elf.SHF_ALLOC, Addr: textBase - 0xB00,
		Data: elfw.EmitRelocs(class, relocs), Link: 2, Info: 5, Addralign: 8})
	f.AddSection(&elfw.Section{Name: ".plt", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: pltBase, Data: plt, Addralign: 16})
	f.AddSection(&elfw.Section{Name: ".text", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: textBase, Data: text, Addralign: 16})
	f.AddSection(&elfw.Section{Name: ".got.plt", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_WRITE, Addr: gotBase, Data: make([]byte, (3+1)*int(ptr)), Addralign: ptr})
	raw, err := f.Bytes()
	if err != nil {
		t.Fatalf("elfw.Bytes: %v", err)
	}
	return raw
}

func TestLoad64(t *testing.T) {
	bin, err := Load(buildTestImage(t, elf.ELFCLASS64))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if bin.Mode != x86.Mode64 {
		t.Errorf("Mode = %v", bin.Mode)
	}
	if bin.PIE {
		t.Error("ET_EXEC must not be PIE")
	}
	if bin.TextAddr != 0x402000 || len(bin.Text) != 5 {
		t.Errorf("text = %#x + %d", bin.TextAddr, len(bin.Text))
	}
	if !bin.CETEnabled {
		t.Error("CET property note not detected")
	}
	if bin.PtrSize() != 8 {
		t.Errorf("PtrSize = %d", bin.PtrSize())
	}
	if !bin.InText(0x402000) || bin.InText(0x402005) || bin.InText(0x401FFF) {
		t.Error("InText bounds wrong")
	}
	if bin.TextEnd() != 0x402005 {
		t.Errorf("TextEnd = %#x", bin.TextEnd())
	}
}

func TestPLTMap64(t *testing.T) {
	bin, err := Load(buildTestImage(t, elf.ELFCLASS64))
	if err != nil {
		t.Fatal(err)
	}
	name, ok := bin.PLTName(0x401000)
	if !ok || name != "setjmp" {
		t.Fatalf("PLTName(0x401000) = (%q, %v), want setjmp", name, ok)
	}
	if !bin.InPLT(0x401000) || !bin.InPLT(0x40100F) {
		t.Error("InPLT bounds wrong")
	}
	if bin.InPLT(0x401010) {
		t.Error("InPLT past end")
	}
	if _, ok := bin.PLTName(0x999); ok {
		t.Error("bogus address resolved")
	}
}

func TestPLTMap32Rel(t *testing.T) {
	bin, err := Load(buildTestImage(t, elf.ELFCLASS32))
	if err != nil {
		t.Fatal(err)
	}
	if bin.Mode != x86.Mode32 || bin.PtrSize() != 4 {
		t.Errorf("mode/ptr = %v/%d", bin.Mode, bin.PtrSize())
	}
	name, ok := bin.PLTName(0x8049000)
	if !ok || name != "setjmp" {
		t.Fatalf("PLTName = (%q, %v), want setjmp via REL32 relocs", name, ok)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load([]byte("garbage")); err == nil {
		t.Error("want error for junk input")
	}
	// ELF without .text.
	f := elfw.New(elf.ELFCLASS64, elf.ET_EXEC)
	f.AddSection(&elfw.Section{Name: ".rodata", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC, Addr: 0x400000, Data: []byte{1}, Addralign: 1})
	raw, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(raw); err == nil {
		t.Error("want ErrNoText")
	}
}

func TestOpenFromDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bin")
	if err := os.WriteFile(path, buildTestImage(t, elf.ELFCLASS64), 0o755); err != nil {
		t.Fatal(err)
	}
	bin, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Path != path {
		t.Errorf("Path = %q", bin.Path)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestNoCETNote(t *testing.T) {
	f := elfw.New(elf.ELFCLASS64, elf.ET_DYN)
	f.AddSection(&elfw.Section{Name: ".text", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: 0x1000,
		Data: []byte{0xC3}, Addralign: 16})
	raw, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	if bin.CETEnabled {
		t.Error("CETEnabled without a property note")
	}
	if !bin.PIE {
		t.Error("ET_DYN should be PIE")
	}
	if bin.InPLT(0x1000) {
		t.Error("InPLT without a .plt section")
	}
}

func TestSHSTKOnlyNoteIsNotIBT(t *testing.T) {
	f := elfw.New(elf.ELFCLASS64, elf.ET_EXEC)
	f.AddSection(&elfw.Section{Name: ".note.gnu.property", Type: elf.SHT_NOTE,
		Flags: elf.SHF_ALLOC, Addr: 0x400200,
		Data: elfw.GNUPropertyNote(elf.ELFCLASS64, elfw.FeatureSHSTK), Addralign: 8})
	f.AddSection(&elfw.Section{Name: ".text", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: 0x401000,
		Data: []byte{0xC3}, Addralign: 16})
	raw, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	if bin.CETEnabled {
		t.Error("SHSTK-only note must not report IBT")
	}
}

func TestELF64RequiresRela(t *testing.T) {
	// An ELF64 image whose PLT relocations come as REL must be rejected.
	f := elfw.New(elf.ELFCLASS64, elf.ET_EXEC)
	dsb := elfw.NewSymtab(elf.ELFCLASS64)
	dsb.Add(elfw.Symbol{Name: "x", Bind: elf.STB_GLOBAL, Type: elf.STT_FUNC})
	dynsym, dynstr, fg, _ := dsb.Emit()
	f.AddSection(&elfw.Section{Name: ".dynsym", Type: elf.SHT_DYNSYM,
		Flags: elf.SHF_ALLOC, Addr: 0x400200, Data: dynsym, Link: 2, Info: fg, Addralign: 8, Entsize: 24})
	f.AddSection(&elfw.Section{Name: ".dynstr", Type: elf.SHT_STRTAB,
		Flags: elf.SHF_ALLOC, Addr: 0x400300, Data: dynstr, Addralign: 1})
	f.AddSection(&elfw.Section{Name: ".rel.plt", Type: elf.SHT_REL,
		Flags: elf.SHF_ALLOC, Addr: 0x400400, Data: make([]byte, 16), Link: 1, Addralign: 8})
	f.AddSection(&elfw.Section{Name: ".plt", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: 0x401000,
		Data: []byte{0xF3, 0x0F, 0x1E, 0xFA, 0x90, 0x90}, Addralign: 16})
	f.AddSection(&elfw.Section{Name: ".text", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: 0x402000,
		Data: []byte{0xC3}, Addralign: 16})
	raw, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(raw); err == nil {
		t.Error("ELF64 with .rel.plt must be rejected")
	}
}

func TestPLTWithoutDynsym(t *testing.T) {
	// Relocations without dynamic symbols: the map stays empty but
	// loading succeeds.
	f := elfw.New(elf.ELFCLASS64, elf.ET_EXEC)
	f.AddSection(&elfw.Section{Name: ".rela.plt", Type: elf.SHT_RELA,
		Flags: elf.SHF_ALLOC, Addr: 0x400400, Data: make([]byte, 24), Addralign: 8})
	f.AddSection(&elfw.Section{Name: ".plt", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: 0x401000,
		Data: []byte{0xF3, 0x0F, 0x1E, 0xFA, 0x90, 0x90}, Addralign: 16})
	f.AddSection(&elfw.Section{Name: ".text", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: 0x402000,
		Data: []byte{0xC3}, Addralign: 16})
	raw, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin.PLT) != 0 {
		t.Errorf("PLT map has %d entries without dynsym", len(bin.PLT))
	}
	if !bin.InPLT(0x401000) {
		t.Error(".plt bounds not recorded")
	}
}

func TestFuncSymbolsFromUnstripped(t *testing.T) {
	f := elfw.New(elf.ELFCLASS64, elf.ET_EXEC)
	f.AddSection(&elfw.Section{Name: ".text", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: 0x401000,
		Data: []byte{0xC3}, Addralign: 16})
	sb := elfw.NewSymtab(elf.ELFCLASS64)
	sb.Add(elfw.Symbol{Name: "f", Value: 0x401000, Size: 1, Bind: elf.STB_GLOBAL, Type: elf.STT_FUNC, Shndx: 1})
	sb.Add(elfw.Symbol{Name: "obj", Value: 0x402000, Size: 4, Bind: elf.STB_GLOBAL, Type: elf.STT_OBJECT, Shndx: 1})
	symData, strData, fg, _ := sb.Emit()
	f.AddSection(&elfw.Section{Name: ".symtab", Type: elf.SHT_SYMTAB,
		Data: symData, Link: 3, Info: fg, Addralign: 8, Entsize: 24})
	f.AddSection(&elfw.Section{Name: ".strtab", Type: elf.SHT_STRTAB, Data: strData, Addralign: 1})
	raw, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin.FuncSymbols) != 1 || bin.FuncSymbols[0].Name != "f" {
		t.Errorf("FuncSymbols = %+v, want just the STT_FUNC symbol", bin.FuncSymbols)
	}
}
