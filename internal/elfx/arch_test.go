package elfx

import (
	"debug/elf"
	"testing"

	"github.com/funseeker/funseeker/internal/elfw"
)

// AArch64 instruction words used by the test images.
const (
	btiC = 0xD503245F // bti c
	ret  = 0xD65F03C0 // ret
)

func words(ws ...uint32) []byte {
	out := make([]byte, 0, 4*len(ws))
	for _, w := range ws {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

// buildAArch64Image assembles a minimal AArch64 executable: one bti c;
// ret function, with the GNU property note declaring features (0 omits
// the note entirely).
func buildAArch64Image(t *testing.T, features uint32) []byte {
	t.Helper()
	const textBase = 0x401000
	f := elfw.New(elf.ELFCLASS64, elf.ET_EXEC)
	f.Machine = elf.EM_AARCH64
	f.Entry = textBase
	if features != 0 {
		f.AddSection(&elfw.Section{Name: ".note.gnu.property", Type: elf.SHT_NOTE,
			Flags: elf.SHF_ALLOC, Addr: textBase - 0xE00,
			Data: elfw.GNUPropertyNoteAArch64(elf.ELFCLASS64, features), Addralign: 8})
	}
	f.AddSection(&elfw.Section{Name: ".text", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: textBase,
		Data: words(btiC, ret), Addralign: 4})
	raw, err := f.Bytes()
	if err != nil {
		t.Fatalf("elfw.Bytes: %v", err)
	}
	return raw
}

// TestDetectArchRejectsNonELF: bytes without a well-formed ELF
// identification must yield ArchUnknown, never a backend arch — the
// engine keys caches on this value before any full parse.
func TestDetectArchRejectsNonELF(t *testing.T) {
	valid := buildTestImage(t, elf.ELFCLASS64)
	badClass := append([]byte(nil), valid...)
	badClass[elf.EI_CLASS] = 9
	badData := append([]byte(nil), valid...)
	badData[elf.EI_DATA] = 9
	cases := map[string][]byte{
		"empty":        nil,
		"garbage":      []byte("this is not an elf image at all"),
		"truncated":    valid[:0x10], // magic intact, e_machine missing
		"wrong magic":  append([]byte("\x7fELG"), valid[4:]...),
		"bad EI_CLASS": badClass,
		"bad EI_DATA":  badData,
	}
	for name, raw := range cases {
		if got := DetectArch(raw); got != ArchUnknown {
			t.Errorf("%s: DetectArch = %v, want unknown", name, got)
		}
	}
}

// TestDetectArchMatchesLoad pins the contract DetectArch exists for:
// the cheap header peek returns exactly the Arch a full Load assigns.
func TestDetectArchMatchesLoad(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		want Arch
	}{
		{"x86-64", buildTestImage(t, elf.ELFCLASS64), ArchX86_64},
		{"x86", buildTestImage(t, elf.ELFCLASS32), ArchX86},
		{"aarch64", buildAArch64Image(t, 0x1), ArchAArch64},
	}
	for _, tc := range cases {
		if got := DetectArch(tc.raw); got != tc.want {
			t.Errorf("%s: DetectArch = %v, want %v", tc.name, got, tc.want)
		}
		bin, err := Load(tc.raw)
		if err != nil {
			t.Fatalf("%s: Load: %v", tc.name, err)
		}
		if bin.Arch != tc.want {
			t.Errorf("%s: Load Arch = %v, want %v", tc.name, bin.Arch, tc.want)
		}
	}
}

// TestLoadAArch64Properties: the BTI bit of the AArch64 property note
// maps to BTIEnabled (and only there — never to the x86 CET flag).
func TestLoadAArch64Properties(t *testing.T) {
	bin, err := Load(buildAArch64Image(t, 0x1 /* BTI */))
	if err != nil {
		t.Fatal(err)
	}
	if !bin.BTIEnabled {
		t.Error("BTI note present but BTIEnabled = false")
	}
	if bin.CETEnabled {
		t.Error("CETEnabled = true on an AArch64 binary")
	}
	if !bin.MarkersEnabled() {
		t.Error("MarkersEnabled = false with BTI declared")
	}
	if len(bin.Text) != 8 {
		t.Errorf("text = %d bytes, want 8", len(bin.Text))
	}

	plain, err := Load(buildAArch64Image(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if plain.BTIEnabled || plain.MarkersEnabled() {
		t.Error("note-free AArch64 binary reports landmark support")
	}
	if plain.Arch != ArchAArch64 {
		t.Errorf("Arch = %v, want aarch64", plain.Arch)
	}
}

// TestParseArchSpellings: every accepted spelling maps to its Arch, the
// canonical String round-trips, and junk is rejected.
func TestParseArchSpellings(t *testing.T) {
	cases := map[string]Arch{
		"":       ArchAuto,
		"auto":   ArchAuto,
		"x86":    ArchX86,
		"i386":   ArchX86,
		"386":    ArchX86,
		"x86-64": ArchX86_64,
		"x86_64": ArchX86_64,
		"amd64":  ArchX86_64,
		"aarch64": ArchAArch64,
		"arm64":   ArchAArch64,
	}
	for s, want := range cases {
		got, ok := ParseArch(s)
		if !ok || got != want {
			t.Errorf("ParseArch(%q) = %v, %v; want %v, true", s, got, ok, want)
		}
	}
	for _, a := range []Arch{ArchX86, ArchX86_64, ArchAArch64} {
		got, ok := ParseArch(a.String())
		if !ok || got != a {
			t.Errorf("ParseArch(%q) = %v, %v; want %v (String round trip)", a.String(), got, ok, a)
		}
	}
	for _, s := range []string{"mips", "riscv64", "x86-32", "ARM64"} {
		if got, ok := ParseArch(s); ok {
			t.Errorf("ParseArch(%q) accepted as %v, want rejection", s, got)
		}
	}
}
