package ehinfo

import (
	"testing"

	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

func TestLandingPadSetMatchesGroundTruth(t *testing.T) {
	spec := &synth.ProgSpec{
		Name: "ehtest",
		Lang: synth.LangCPP,
		Seed: 12,
		Funcs: []synth.FuncSpec{
			{Name: "main", Calls: []int{1, 2}},
			{Name: "t1", HasEH: true, NumLandingPads: 2, CallsPLT: []string{"__cxa_throw"}},
			{Name: "t2", HasEH: true, NumLandingPads: 1, CallsPLT: []string{"__cxa_throw"}},
			{Name: "plain"},
		},
	}
	for _, cfg := range []synth.Config{
		{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2},
		{Compiler: synth.Clang, Mode: x86.Mode32, PIE: true, Opt: synth.O1},
	} {
		res, err := synth.Compile(spec, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		bin, err := elfx.Load(res.Stripped)
		if err != nil {
			t.Fatal(err)
		}
		pads, err := LandingPadSet(bin)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		want := map[uint64]bool{}
		for _, e := range res.GT.Endbrs {
			if e.Role == groundtruth.RoleException {
				want[e.Addr] = true
			}
		}
		if len(pads) != len(want) {
			t.Fatalf("%s: %d pads, want %d", cfg, len(pads), len(want))
		}
		for addr := range want {
			if !pads[addr] {
				t.Errorf("%s: pad %#x missing", cfg, addr)
			}
		}
	}
}

func TestNoEHSections(t *testing.T) {
	spec := &synth.ProgSpec{
		Name:  "plainc",
		Lang:  synth.LangC,
		Seed:  1,
		Funcs: []synth.FuncSpec{{Name: "main"}},
	}
	res, err := synth.Compile(spec, synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := elfx.Load(res.Stripped)
	if err != nil {
		t.Fatal(err)
	}
	pads, err := LandingPadSet(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(pads) != 0 {
		t.Fatalf("C binary has %d landing pads", len(pads))
	}
}

func TestCorruptEHFrame(t *testing.T) {
	spec := &synth.ProgSpec{
		Name: "ehcorrupt",
		Lang: synth.LangCPP,
		Seed: 2,
		Funcs: []synth.FuncSpec{
			{Name: "main", Calls: []int{1}},
			{Name: "t", HasEH: true, CallsPLT: []string{"__cxa_throw"}},
		},
	}
	res, err := synth.Compile(spec, synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := elfx.Load(res.Stripped)
	if err != nil {
		t.Fatal(err)
	}
	// Structural corruption of .eh_frame must surface as an error, not
	// a crash.
	bin.EHFrame[0] = 0xFF
	bin.EHFrame[1] = 0xFF
	bin.EHFrame[2] = 0xFF
	bin.EHFrame[3] = 0x7F
	if _, err := LandingPadSet(bin); err == nil {
		t.Error("want error for corrupt .eh_frame")
	}
	// A truncated except table must not panic either: LSDA parse errors
	// are skipped per-record.
	bin2, _ := elfx.Load(res.Stripped)
	bin2.ExceptTable = bin2.ExceptTable[:1]
	if _, err := LandingPadSet(bin2); err != nil {
		t.Errorf("truncated LSDA should be skipped, got %v", err)
	}
}
