// Package ehinfo joins the .eh_frame FDE records with the
// .gcc_except_table LSDAs of a binary to materialize exception-handling
// facts shared by several identifiers: FunSeeker filters landing-pad end
// branches with it, and the IDA model uses it to attribute catch blocks
// to their parent functions instead of promoting them to functions.
package ehinfo

import (
	"fmt"

	"github.com/funseeker/funseeker/internal/ehframe"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/lsda"
)

// LandingPadSet computes the absolute addresses of every exception
// landing pad: for each FDE carrying an LSDA pointer, the LSDA call-site
// table is decoded with the FDE's pc-begin as the landing-pad base
// (LPStart is omitted in compiler-emitted tables). A single undecodable
// LSDA is skipped; a structurally broken .eh_frame is an error.
func LandingPadSet(bin *elfx.Binary) (map[uint64]bool, error) {
	if len(bin.EHFrame) == 0 || len(bin.ExceptTable) == 0 {
		return make(map[uint64]bool), nil
	}
	fdes, err := ehframe.Parse(bin.EHFrame, bin.EHFrameAddr, bin.PtrSize())
	if err != nil {
		return nil, fmt.Errorf("ehinfo: eh_frame: %w", err)
	}
	return LandingPadsFromFDEs(bin, fdes), nil
}

// LandingPadsFromFDEs computes the landing-pad set from already-parsed FDE
// records, letting callers that have the .eh_frame parse memoized (the
// analysis context) skip re-parsing the section.
func LandingPadsFromFDEs(bin *elfx.Binary, fdes []ehframe.FDE) map[uint64]bool {
	pads := make(map[uint64]bool)
	if len(bin.ExceptTable) == 0 {
		return pads
	}
	for _, fde := range fdes {
		if !fde.HasLSDA || fde.LSDA < bin.ExceptTableAddr {
			continue
		}
		off := fde.LSDA - bin.ExceptTableAddr
		if off >= uint64(len(bin.ExceptTable)) {
			continue
		}
		table, err := lsda.Parse(bin.ExceptTable[off:], fde.PCBegin)
		if err != nil {
			continue
		}
		for _, pad := range table.LandingPads() {
			pads[pad] = true
		}
	}
	return pads
}
