// Package leb128 implements the Little-Endian Base 128 variable-length
// integer encoding used throughout the DWARF exception-handling metadata
// (.eh_frame CFI programs and .gcc_except_table LSDA records).
//
// Both the unsigned (ULEB128) and signed (SLEB128) variants are provided,
// together with streaming readers that report how many bytes were consumed
// so callers can walk densely packed tables.
package leb128

import (
	"errors"
	"fmt"
)

// ErrTruncated is returned when the input ends in the middle of a
// LEB128-encoded value.
var ErrTruncated = errors.New("leb128: truncated value")

// ErrOverflow is returned when a decoded value does not fit in 64 bits.
var ErrOverflow = errors.New("leb128: value overflows 64 bits")

// maxLen64 is the maximum number of bytes a 64-bit LEB128 value may occupy.
const maxLen64 = 10

// AppendUleb appends the ULEB128 encoding of v to dst and returns the
// extended slice.
func AppendUleb(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			dst = append(dst, b|0x80)
			continue
		}
		return append(dst, b)
	}
}

// AppendSleb appends the SLEB128 encoding of v to dst and returns the
// extended slice.
func AppendSleb(dst []byte, v int64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7 // arithmetic shift keeps the sign
		signBit := b&0x40 != 0
		if (v == 0 && !signBit) || (v == -1 && signBit) {
			return append(dst, b)
		}
		dst = append(dst, b|0x80)
	}
}

// Uleb decodes a ULEB128 value from the front of buf. It returns the value
// and the number of bytes consumed.
func Uleb(buf []byte) (uint64, int, error) {
	var (
		result uint64
		shift  uint
	)
	for i, b := range buf {
		if i >= maxLen64 {
			return 0, 0, ErrOverflow
		}
		if shift == 63 && b > 1 {
			return 0, 0, ErrOverflow
		}
		result |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return result, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, ErrTruncated
}

// Sleb decodes an SLEB128 value from the front of buf. It returns the value
// and the number of bytes consumed.
func Sleb(buf []byte) (int64, int, error) {
	var (
		result int64
		shift  uint
	)
	for i, b := range buf {
		if i >= maxLen64 {
			return 0, 0, ErrOverflow
		}
		result |= int64(b&0x7f) << shift
		shift += 7
		if b&0x80 == 0 {
			if shift < 64 && b&0x40 != 0 {
				result |= -1 << shift // sign extend
			}
			return result, i + 1, nil
		}
	}
	return 0, 0, ErrTruncated
}

// UlebLen returns the number of bytes the ULEB128 encoding of v occupies.
func UlebLen(v uint64) int {
	n := 1
	for v >>= 7; v != 0; v >>= 7 {
		n++
	}
	return n
}

// SlebLen returns the number of bytes the SLEB128 encoding of v occupies.
func SlebLen(v int64) int {
	n := 0
	for {
		b := byte(v & 0x7f)
		v >>= 7
		n++
		signBit := b&0x40 != 0
		if (v == 0 && !signBit) || (v == -1 && signBit) {
			return n
		}
	}
}

// Reader walks a byte slice decoding consecutive LEB128 values. The zero
// value is not usable; construct with NewReader.
type Reader struct {
	buf []byte
	off int
}

// NewReader returns a Reader decoding from buf starting at offset 0.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Offset reports the current decode position within the underlying buffer.
func (r *Reader) Offset() int { return r.off }

// Remaining reports how many undecoded bytes remain.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Uleb decodes the next ULEB128 value.
func (r *Reader) Uleb() (uint64, error) {
	v, n, err := Uleb(r.buf[r.off:])
	if err != nil {
		return 0, fmt.Errorf("at offset %d: %w", r.off, err)
	}
	r.off += n
	return v, nil
}

// Sleb decodes the next SLEB128 value.
func (r *Reader) Sleb() (int64, error) {
	v, n, err := Sleb(r.buf[r.off:])
	if err != nil {
		return 0, fmt.Errorf("at offset %d: %w", r.off, err)
	}
	r.off += n
	return v, nil
}

// Byte reads one raw byte.
func (r *Reader) Byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("at offset %d: %w", r.off, ErrTruncated)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// Bytes reads n raw bytes.
func (r *Reader) Bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, fmt.Errorf("at offset %d: need %d bytes: %w", r.off, n, ErrTruncated)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

// Skip advances the reader by n bytes.
func (r *Reader) Skip(n int) error {
	if n < 0 || r.off+n > len(r.buf) {
		return fmt.Errorf("at offset %d: skip %d: %w", r.off, n, ErrTruncated)
	}
	r.off += n
	return nil
}
