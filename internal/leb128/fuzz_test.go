package leb128

import (
	"math"
	"testing"
)

// FuzzUlebRoundTrip: encode→decode is the identity, the consumed byte
// count matches both the appended length and UlebLen.
func FuzzUlebRoundTrip(f *testing.F) {
	for _, v := range []uint64{0, 1, 127, 128, 0x3FFF, 0x4000, 1 << 32, math.MaxUint64} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v uint64) {
		buf := AppendUleb(nil, v)
		got, n, err := Uleb(buf)
		if err != nil {
			t.Fatalf("Uleb(AppendUleb(%d)) failed: %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip: %d -> %x -> %d", v, buf, got)
		}
		if n != len(buf) || n != UlebLen(v) {
			t.Fatalf("length mismatch for %d: consumed %d, encoded %d, UlebLen %d", v, n, len(buf), UlebLen(v))
		}
	})
}

// FuzzSlebRoundTrip mirrors FuzzUlebRoundTrip for the signed form.
func FuzzSlebRoundTrip(f *testing.F) {
	for _, v := range []int64{0, 1, -1, 63, 64, -64, -65, math.MaxInt64, math.MinInt64} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v int64) {
		buf := AppendSleb(nil, v)
		got, n, err := Sleb(buf)
		if err != nil {
			t.Fatalf("Sleb(AppendSleb(%d)) failed: %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip: %d -> %x -> %d", v, buf, got)
		}
		if n != len(buf) || n != SlebLen(v) {
			t.Fatalf("length mismatch for %d: consumed %d, encoded %d, SlebLen %d", v, n, len(buf), SlebLen(v))
		}
	})
}

// FuzzDecodeArbitrary feeds raw bytes to both decoders: they must never
// panic, never report consuming more bytes than supplied, and a
// successful decode must be stable when re-run on the consumed prefix.
func FuzzDecodeArbitrary(f *testing.F) {
	f.Add([]byte{0x80})                                                             // truncated continuation
	f.Add([]byte{0xE5, 0x8E, 0x26})                                                 // canonical 624485
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}) // overlong
	f.Add([]byte{0x7f})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if v, n, err := Uleb(data); err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("Uleb consumed %d of %d bytes", n, len(data))
			}
			v2, n2, err2 := Uleb(data[:n])
			if err2 != nil || v2 != v || n2 != n {
				t.Fatalf("Uleb unstable on prefix: (%d,%d,%v) vs (%d,%d)", v2, n2, err2, v, n)
			}
		}
		if v, n, err := Sleb(data); err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("Sleb consumed %d of %d bytes", n, len(data))
			}
			v2, n2, err2 := Sleb(data[:n])
			if err2 != nil || v2 != v || n2 != n {
				t.Fatalf("Sleb unstable on prefix: (%d,%d,%v) vs (%d,%d)", v2, n2, err2, v, n)
			}
		}
	})
}

// FuzzReader walks a Reader over arbitrary bytes mixing all read kinds;
// the reader must never panic and Offset must stay within bounds.
func FuzzReader(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x04})
	f.Add([]byte{0xff, 0xff, 0x7f, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		for i := 0; i < len(data)+4; i++ {
			var err error
			switch i % 4 {
			case 0:
				_, err = r.Uleb()
			case 1:
				_, err = r.Sleb()
			case 2:
				_, err = r.Byte()
			case 3:
				_, err = r.Bytes(2)
			}
			if r.Offset() < 0 || r.Offset() > len(data) {
				t.Fatalf("offset %d out of [0,%d]", r.Offset(), len(data))
			}
			if err != nil {
				return
			}
		}
	})
}
