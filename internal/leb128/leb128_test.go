package leb128

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestUlebKnownValues(t *testing.T) {
	tests := []struct {
		name string
		v    uint64
		enc  []byte
	}{
		{"zero", 0, []byte{0x00}},
		{"one", 1, []byte{0x01}},
		{"boundary127", 127, []byte{0x7f}},
		{"boundary128", 128, []byte{0x80, 0x01}},
		{"dwarf-example-624485", 624485, []byte{0xe5, 0x8e, 0x26}},
		{"max64", math.MaxUint64, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := AppendUleb(nil, tt.v)
			if !bytes.Equal(got, tt.enc) {
				t.Fatalf("AppendUleb(%d) = % x, want % x", tt.v, got, tt.enc)
			}
			dec, n, err := Uleb(got)
			if err != nil {
				t.Fatalf("Uleb: %v", err)
			}
			if dec != tt.v || n != len(tt.enc) {
				t.Fatalf("Uleb = (%d, %d), want (%d, %d)", dec, n, tt.v, len(tt.enc))
			}
			if l := UlebLen(tt.v); l != len(tt.enc) {
				t.Fatalf("UlebLen(%d) = %d, want %d", tt.v, l, len(tt.enc))
			}
		})
	}
}

func TestSlebKnownValues(t *testing.T) {
	tests := []struct {
		name string
		v    int64
		enc  []byte
	}{
		{"zero", 0, []byte{0x00}},
		{"two", 2, []byte{0x02}},
		{"minus-two", -2, []byte{0x7e}},
		{"sixty-three", 63, []byte{0x3f}},
		{"sixty-four", 64, []byte{0xc0, 0x00}},
		{"minus-sixty-four", -64, []byte{0x40}},
		{"minus-sixty-five", -65, []byte{0xbf, 0x7f}},
		{"dwarf-example-minus-123456", -123456, []byte{0xc0, 0xbb, 0x78}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := AppendSleb(nil, tt.v)
			if !bytes.Equal(got, tt.enc) {
				t.Fatalf("AppendSleb(%d) = % x, want % x", tt.v, got, tt.enc)
			}
			dec, n, err := Sleb(got)
			if err != nil {
				t.Fatalf("Sleb: %v", err)
			}
			if dec != tt.v || n != len(tt.enc) {
				t.Fatalf("Sleb = (%d, %d), want (%d, %d)", dec, n, tt.v, len(tt.enc))
			}
			if l := SlebLen(tt.v); l != len(tt.enc) {
				t.Fatalf("SlebLen(%d) = %d, want %d", tt.v, l, len(tt.enc))
			}
		})
	}
}

func TestUlebRoundtripQuick(t *testing.T) {
	f := func(v uint64) bool {
		enc := AppendUleb(nil, v)
		dec, n, err := Uleb(enc)
		return err == nil && dec == v && n == len(enc) && n == UlebLen(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlebRoundtripQuick(t *testing.T) {
	f := func(v int64) bool {
		enc := AppendSleb(nil, v)
		dec, n, err := Sleb(enc)
		return err == nil && dec == v && n == len(enc) && n == SlebLen(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUlebTruncated(t *testing.T) {
	if _, _, err := Uleb([]byte{0x80, 0x80}); err == nil {
		t.Fatal("want error for truncated input")
	}
	if _, _, err := Uleb(nil); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestSlebTruncated(t *testing.T) {
	if _, _, err := Sleb([]byte{0xff}); err == nil {
		t.Fatal("want error for truncated input")
	}
}

func TestUlebOverflow(t *testing.T) {
	in := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	if _, _, err := Uleb(in); err == nil {
		t.Fatal("want overflow error for 11-byte value")
	}
	in = []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f}
	if _, _, err := Uleb(in); err == nil {
		t.Fatal("want overflow error for value exceeding 64 bits")
	}
}

func TestReaderSequence(t *testing.T) {
	var buf []byte
	buf = AppendUleb(buf, 300)
	buf = AppendSleb(buf, -300)
	buf = append(buf, 0xab)
	buf = AppendUleb(buf, 7)

	r := NewReader(buf)
	if v, err := r.Uleb(); err != nil || v != 300 {
		t.Fatalf("Uleb = (%d, %v), want 300", v, err)
	}
	if v, err := r.Sleb(); err != nil || v != -300 {
		t.Fatalf("Sleb = (%d, %v), want -300", v, err)
	}
	if b, err := r.Byte(); err != nil || b != 0xab {
		t.Fatalf("Byte = (%#x, %v), want 0xab", b, err)
	}
	if v, err := r.Uleb(); err != nil || v != 7 {
		t.Fatalf("Uleb = (%d, %v), want 7", v, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
	if _, err := r.Byte(); err == nil {
		t.Fatal("want error reading past end")
	}
}

func TestReaderBytesAndSkip(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4, 5})
	b, err := r.Bytes(2)
	if err != nil || !bytes.Equal(b, []byte{1, 2}) {
		t.Fatalf("Bytes(2) = (% x, %v)", b, err)
	}
	if err := r.Skip(2); err != nil {
		t.Fatalf("Skip(2): %v", err)
	}
	if r.Offset() != 4 {
		t.Fatalf("Offset = %d, want 4", r.Offset())
	}
	if err := r.Skip(2); err == nil {
		t.Fatal("want error skipping past end")
	}
	if _, err := r.Bytes(-1); err == nil {
		t.Fatal("want error for negative length")
	}
}
