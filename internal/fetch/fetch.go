// Package fetch reimplements the FETCH baseline (Pang et al., "Towards
// Optimal Use of Exception Handling Information for Function Detection",
// DSN 2021) at the fidelity needed for comparative evaluation.
//
// FETCH's primary signal is the .eh_frame section: every FDE pc-begin is
// taken as a function entry. On top of that, FETCH hunts for tail-call
// targets: direct jumps that leave their enclosing FDE range are verified
// with a comparatively expensive analysis — per-function stack-height
// tracking and calling-convention (argument-register liveness) checks —
// before their targets are accepted as entries.
//
// Two properties of the real system are reproduced faithfully because the
// paper's evaluation depends on them:
//
//   - FETCH inherits .eh_frame coverage: when a toolchain emits no FDEs
//     (Clang for 32-bit C code) FETCH finds almost nothing;
//   - FDEs exist for .cold/.part fragments, which are not functions, so
//     FETCH reports them (its residual false positives);
//   - the verification pass walks a bounded window of instructions per
//     candidate and models the stack, which costs real time — FunSeeker's
//     speed advantage in the paper comes from skipping exactly this work.
package fetch

import (
	"fmt"
	"sort"

	"github.com/funseeker/funseeker/internal/ehframe"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// Report is the identification result.
type Report struct {
	// Entries is the sorted set of identified function entries.
	Entries []uint64
	// FDEFunctions counts entries that came directly from FDE records.
	FDEFunctions int
	// VerifiedTailCalls counts entries added by tail-call verification.
	VerifiedTailCalls int
	// RejectedCandidates counts tail-call candidates the verifier threw
	// away.
	RejectedCandidates int
	// AnalyzedInsts counts instructions examined by the stack-height /
	// calling-convention analysis (the runtime cost driver).
	AnalyzedInsts int
}

// maxVerifyWindow bounds the per-candidate verification walk.
const maxVerifyWindow = 256

// Identify runs the FETCH algorithm on a loaded binary.
func Identify(bin *elfx.Binary) (*Report, error) {
	report := &Report{}
	fdes, err := ehframe.Parse(bin.EHFrame, bin.EHFrameAddr, bin.PtrSize())
	if err != nil {
		return nil, fmt.Errorf("fetch: eh_frame: %w", err)
	}

	entries := make(map[uint64]bool)
	type frange struct{ begin, end uint64 }
	ranges := make([]frange, 0, len(fdes))
	for _, f := range fdes {
		if !bin.InText(f.PCBegin) {
			continue
		}
		entries[f.PCBegin] = true
		ranges = append(ranges, frange{begin: f.PCBegin, end: f.PCBegin + f.PCRange})
	}
	report.FDEFunctions = len(entries)
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].begin < ranges[j].begin })

	// Profile every FDE-covered function: stack-height consistency and
	// argument-register usage. FETCH uses these profiles both to sanity
	// check its ranges and to verify tail-call candidates; the cost of
	// this full pass is the dominant term in its runtime.
	profiles := make(map[uint64]funcProfile, len(ranges))
	for _, r := range ranges {
		p := profileRange(bin, r.begin, r.end)
		profiles[r.begin] = p
		report.AnalyzedInsts += p.insts
	}

	// Find direct jumps escaping their FDE range.
	candidates := make(map[uint64][]uint64) // target -> jump sources
	for _, r := range ranges {
		lo := r.begin - bin.TextAddr
		hi := r.end - bin.TextAddr
		if hi > uint64(len(bin.Text)) {
			hi = uint64(len(bin.Text))
		}
		if lo >= hi {
			continue
		}
		x86.LinearSweep(bin.Text[lo:hi], r.begin, bin.Mode, func(inst x86.Inst) bool {
			if inst.Class == x86.ClassJmpRel && inst.HasTarget {
				if inst.Target < r.begin || inst.Target >= r.end {
					if bin.InText(inst.Target) && !entries[inst.Target] {
						candidates[inst.Target] = append(candidates[inst.Target], inst.Addr)
					}
				}
			}
			return true
		})
	}

	// Verify each candidate with the expensive analysis.
	targets := make([]uint64, 0, len(candidates))
	for t := range candidates {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, t := range targets {
		prof := profileWindow(bin, t, maxVerifyWindow)
		report.AnalyzedInsts += prof.insts
		if prof.looksLikeFunction() {
			entries[t] = true
			report.VerifiedTailCalls++
		} else {
			report.RejectedCandidates++
		}
	}

	report.Entries = make([]uint64, 0, len(entries))
	for e := range entries {
		report.Entries = append(report.Entries, e)
	}
	sort.Slice(report.Entries, func(i, j int) bool { return report.Entries[i] < report.Entries[j] })
	return report, nil
}
