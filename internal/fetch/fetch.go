// Package fetch reimplements the FETCH baseline (Pang et al., "Towards
// Optimal Use of Exception Handling Information for Function Detection",
// DSN 2021) at the fidelity needed for comparative evaluation.
//
// FETCH's primary signal is the .eh_frame section: every FDE pc-begin is
// taken as a function entry. On top of that, FETCH hunts for tail-call
// targets: direct jumps that leave their enclosing FDE range are verified
// with a comparatively expensive analysis — per-function stack-height
// tracking and calling-convention (argument-register liveness) checks —
// before their targets are accepted as entries.
//
// Two properties of the real system are reproduced faithfully because the
// paper's evaluation depends on them:
//
//   - FETCH inherits .eh_frame coverage: when a toolchain emits no FDEs
//     (Clang for 32-bit C code) FETCH finds almost nothing;
//   - FDEs exist for .cold/.part fragments, which are not functions, so
//     FETCH reports them (its residual false positives);
//   - the verification pass walks a bounded window of instructions per
//     candidate and models the stack, which costs real time — FunSeeker's
//     speed advantage in the paper comes from skipping exactly this work.
//
// The .eh_frame parse, the escaping-jump scan, and the raw instruction
// decode all come from the shared analysis.Context (one parse / one
// sweep per binary); the lift to micro-ops and the stack-height
// dataflow remain FETCH's own per-run work, because their cost is
// exactly what the paper's runtime comparison measures.
package fetch

import (
	"fmt"
	"slices"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// Report is the identification result.
type Report struct {
	// Entries is the sorted set of identified function entries.
	Entries []uint64
	// FDEFunctions counts entries that came directly from FDE records.
	FDEFunctions int
	// VerifiedTailCalls counts entries added by tail-call verification.
	VerifiedTailCalls int
	// RejectedCandidates counts tail-call candidates the verifier threw
	// away.
	RejectedCandidates int
	// AnalyzedInsts counts instructions examined by the stack-height /
	// calling-convention analysis (the runtime cost driver).
	AnalyzedInsts int
}

// maxVerifyWindow bounds the per-candidate verification walk.
const maxVerifyWindow = 256

// Identify runs the FETCH algorithm on a loaded binary with a private
// analysis context.
func Identify(bin *elfx.Binary) (*Report, error) {
	return IdentifyWithContext(analysis.NewContext(bin))
}

// IdentifyWithContext runs FETCH using the shared per-binary artifacts
// memoized in actx.
func IdentifyWithContext(actx *analysis.Context) (*Report, error) {
	bin := actx.Binary()
	report := &Report{}
	fdes, err := actx.FDEs()
	if err != nil {
		return nil, fmt.Errorf("fetch: eh_frame: %w", err)
	}

	entries := make(map[uint64]bool)
	type frange struct{ begin, end uint64 }
	ranges := make([]frange, 0, len(fdes))
	for _, f := range fdes {
		if !bin.InText(f.PCBegin) {
			continue
		}
		entries[f.PCBegin] = true
		ranges = append(ranges, frange{begin: f.PCBegin, end: f.PCBegin + f.PCRange})
	}
	report.FDEFunctions = len(entries)
	slices.SortFunc(ranges, func(a, b frange) int {
		switch {
		case a.begin < b.begin:
			return -1
		case a.begin > b.begin:
			return 1
		default:
			return 0
		}
	})

	// Profile every FDE-covered function: stack-height consistency and
	// argument-register usage. FETCH uses these profiles both to sanity
	// check its ranges and to verify tail-call candidates; the cost of
	// this full pass is the dominant term in its runtime. The raw decode
	// of each range is served from the shared instruction index; the
	// lift and the stack-height dataflow — the paper's cost driver,
	// counted in AnalyzedInsts — run per call.
	idx := actx.Index()
	profiles := make(map[uint64]funcProfile, len(ranges))
	for _, r := range ranges {
		p := profileRange(bin, idx, r.begin, r.end)
		profiles[r.begin] = p
		report.AnalyzedInsts += p.insts
	}

	// Find direct jumps escaping their FDE range, reading the shared
	// instruction index instead of re-sweeping each range.
	candidates := make(map[uint64][]uint64) // target -> jump sources
	for _, r := range ranges {
		for _, inst := range idx.Range(r.begin, r.end) {
			if inst.Class == x86.ClassJmpRel && inst.HasTarget {
				if inst.Target < r.begin || inst.Target >= r.end {
					if bin.InText(inst.Target) && !entries[inst.Target] {
						candidates[inst.Target] = append(candidates[inst.Target], inst.Addr)
					}
				}
			}
		}
	}

	// Verify each candidate with the expensive analysis.
	targets := make([]uint64, 0, len(candidates))
	for t := range candidates {
		targets = append(targets, t)
	}
	slices.Sort(targets)
	for _, t := range targets {
		prof := profileWindow(bin, idx, t, maxVerifyWindow)
		report.AnalyzedInsts += prof.insts
		if prof.looksLikeFunction() {
			entries[t] = true
			report.VerifiedTailCalls++
		} else {
			report.RejectedCandidates++
		}
	}

	report.Entries = make([]uint64, 0, len(entries))
	for e := range entries {
		report.Entries = append(report.Entries, e)
	}
	slices.Sort(report.Entries)
	return report, nil
}
