package fetch

import (
	"slices"

	"github.com/funseeker/funseeker/internal/x86"
)

// FETCH's published pipeline lifts machine code to an intermediate
// representation and runs stack-height and calling-convention analyses
// over each function's control-flow graph. This file reproduces that
// architecture: instructions are decoded once, lifted to micro-ops,
// partitioned into basic blocks, and a worklist dataflow propagates the
// stack height to a fixpoint. The work done here — not the final answer
// quality — is what makes FETCH measurably slower than FunSeeker's
// single syntactic sweep.

// opKind enumerates micro-op kinds in the mini-IR.
type opKind uint8

const (
	opNop opKind = iota
	// opStackAdj adjusts the stack pointer by imm bytes.
	opStackAdj
	// opStackReset models leave/ret epilogue resets.
	opStackReset
	// opRegRead reads a general-purpose register.
	opRegRead
	// opRegWrite writes a general-purpose register.
	opRegWrite
	// opMemRead / opMemWrite model memory accesses at [reg+imm].
	opMemRead
	opMemWrite
	// opCall models a (balanced) call.
	opCall
	// opRet terminates with a return.
	opRet
	// opBranch terminates with a branch.
	opBranch
)

// microOp is one lifted operation.
type microOp struct {
	kind opKind
	reg  int
	imm  int64
}

// lift expands a decoded instruction into micro-ops. The expansion covers
// the instruction classes the length decoder distinguishes plus the
// common integer forms via regEffects.
func lift(inst *x86.Inst, ptr int64, ops []microOp) []microOp {
	switch {
	case inst.OpcodeMap == 1 && inst.Opcode >= 0x50 && inst.Opcode <= 0x57:
		ops = append(ops,
			microOp{kind: opRegRead, reg: int(inst.Opcode - 0x50)},
			microOp{kind: opStackAdj, imm: -ptr},
			microOp{kind: opMemWrite, reg: 4})
	case inst.OpcodeMap == 1 && inst.Opcode >= 0x58 && inst.Opcode <= 0x5F:
		ops = append(ops,
			microOp{kind: opMemRead, reg: 4},
			microOp{kind: opStackAdj, imm: ptr},
			microOp{kind: opRegWrite, reg: int(inst.Opcode - 0x58)})
	case inst.Class == x86.ClassLeave:
		ops = append(ops, microOp{kind: opStackReset}, microOp{kind: opRegWrite, reg: 5})
	case isRspAdjust(inst):
		imm := inst.Imm
		if inst.Reg() == 5 {
			imm = -imm
		}
		ops = append(ops, microOp{kind: opStackAdj, imm: imm})
	case inst.Class == x86.ClassCallRel || inst.Class == x86.ClassCallInd:
		ops = append(ops, microOp{kind: opCall})
	case inst.Class == x86.ClassRet:
		ops = append(ops, microOp{kind: opRet})
	case inst.Class.IsBranch():
		ops = append(ops, microOp{kind: opBranch})
	default:
		reads, writes := regEffects(inst, x86.Mode64)
		for _, r := range reads {
			if r >= 0 {
				ops = append(ops, microOp{kind: opRegRead, reg: r})
			} else {
				ops = append(ops, microOp{kind: opMemRead, reg: 4, imm: inst.Imm})
			}
		}
		for _, w := range writes {
			ops = append(ops, microOp{kind: opRegWrite, reg: w})
		}
		if len(reads) == 0 && len(writes) == 0 {
			ops = append(ops, microOp{kind: opNop})
		}
	}
	return ops
}

// csrc serves decoded instructions for one contiguous code region.
// When the shared linear-sweep index is present, instruction starts it
// already decoded are returned by pointer (no re-decode, no copy);
// anything else — desynchronized regions, or an index instruction that
// would cross the region end — falls back to decoding the region's own
// bytes, which reproduces the truncation behaviour of a plain decode
// loop exactly.
type csrc struct {
	code []byte // the region's bytes
	base uint64 // virtual address of code[0]
	mode x86.Mode
	idx  *x86.Index
}

func (s csrc) end() uint64 { return s.base + uint64(len(s.code)) }

func (s csrc) decode(pc uint64, scratch *x86.Inst) (*x86.Inst, error) {
	if s.idx != nil {
		if p := s.idx.AtPtr(pc); p != nil && pc+uint64(p.Len) <= s.end() {
			return p, nil
		}
	}
	if err := x86.DecodeInto(s.code[pc-s.base:], pc, s.mode, scratch); err != nil {
		return nil, err
	}
	return scratch, nil
}

// liftedInst is one instruction of the lifted stream: its class, its
// direct-branch target, and the range of its micro-ops in the function's
// shared arena. Keeping it small (instead of embedding the 128-byte
// decoded form) is what keeps the block partitioning allocation-light.
type liftedInst struct {
	class    x86.Class
	hasTgt   bool
	target   uint64
	opsStart int32
	opsEnd   int32
}

// basicBlock is one CFG node. insts is a subslice of the function's
// lifted stream (blocks partition it contiguously).
type basicBlock struct {
	insts []liftedInst
	// succs are indices of successor blocks (-1 entries removed).
	succs []int
}

// unknownHeight marks an unvisited or inconsistent block height.
const unknownHeight = int64(-1 << 62)

// buildCFG decodes the source region once and partitions it into basic
// blocks. It returns the blocks and the shared micro-op arena their
// liftedInsts index into.
func buildCFG(src csrc, ptr int64) ([]basicBlock, []microOp, bool) {
	est := len(src.code)/4 + 1
	lifted := make([]liftedInst, 0, est)
	addrs := make([]uint64, 0, est)
	arena := make([]microOp, 0, 2*est)
	var scratch x86.Inst
	pc := src.base
	end := src.end()
	decodeOK := true
	for pc < end {
		inst, err := src.decode(pc, &scratch)
		if err != nil {
			decodeOK = false
			break
		}
		opsStart := int32(len(arena))
		arena = lift(inst, ptr, arena)
		lifted = append(lifted, liftedInst{
			class:    inst.Class,
			hasTgt:   inst.HasTarget,
			target:   inst.Target,
			opsStart: opsStart,
			opsEnd:   int32(len(arena)),
		})
		addrs = append(addrs, pc)
		pc += uint64(inst.Len)
	}
	if len(lifted) == 0 {
		return nil, nil, decodeOK
	}
	// Leaders: the entry, branch targets, and fallthroughs after
	// control-flow instructions. addrs is ascending, so branch targets
	// resolve by binary search instead of a map.
	isLeader := make([]bool, len(lifted))
	isLeader[0] = true
	for i := range lifted {
		li := &lifted[i]
		if (li.class == x86.ClassJccRel || li.class == x86.ClassJmpRel) && li.hasTgt {
			if j, ok := slices.BinarySearch(addrs, li.target); ok {
				isLeader[j] = true
			}
		}
		if li.class.IsBranch() && i+1 < len(lifted) {
			isLeader[i+1] = true
		}
	}
	starts := make([]int, 0, 16)
	blockIdx := make([]int32, len(lifted))
	for i, l := range isLeader {
		if l {
			starts = append(starts, i)
		}
		blockIdx[i] = int32(len(starts) - 1)
	}
	blocks := make([]basicBlock, len(starts))
	for b, st := range starts {
		e := len(lifted)
		if b+1 < len(starts) {
			e = starts[b+1]
		}
		bb := &blocks[b]
		bb.insts = lifted[st:e]
		last := &lifted[e-1]
		blockOf := func(va uint64) (int, bool) {
			j, ok := slices.BinarySearch(addrs, va)
			if !ok {
				return 0, false
			}
			return int(blockIdx[j]), true
		}
		switch last.class {
		case x86.ClassRet, x86.ClassHlt, x86.ClassUD, x86.ClassJmpInd:
			// no successors
		case x86.ClassJmpRel:
			if last.hasTgt {
				if t, ok := blockOf(last.target); ok {
					bb.succs = append(bb.succs, t)
				}
			}
		case x86.ClassJccRel:
			if last.hasTgt {
				if t, ok := blockOf(last.target); ok {
					bb.succs = append(bb.succs, t)
				}
			}
			if e < len(lifted) {
				bb.succs = append(bb.succs, int(blockIdx[e]))
			}
		default:
			if e < len(lifted) {
				bb.succs = append(bb.succs, int(blockIdx[e]))
			}
		}
	}
	return blocks, arena, decodeOK
}

// analyzeCFG runs the stack-height fixpoint and argument-liveness scan
// over the lifted CFG, producing the verifier's profile.
func analyzeCFG(blocks []basicBlock, arena []microOp, decodeOK bool, ptr int64) funcProfile {
	var p funcProfile
	p.decodeError = !decodeOK
	if len(blocks) == 0 {
		return p
	}
	if len(blocks[0].insts) > 0 {
		if cl := blocks[0].insts[0].class; cl == x86.ClassNop || cl == x86.ClassInt3 {
			p.startsWithPadding = true
			return p
		}
	}
	in := make([]int64, len(blocks))
	for i := range in {
		in[i] = unknownHeight
	}
	in[0] = 0
	worklist := []int{0}
	var written [16]bool
	balancedAll := true
	sawRet := false
	entrySeen := false
	for len(worklist) > 0 {
		b := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		h := in[b]
		if h == unknownHeight {
			continue
		}
		for i := range blocks[b].insts {
			li := &blocks[b].insts[i]
			p.insts++
			for _, op := range arena[li.opsStart:li.opsEnd] {
				switch op.kind {
				case opStackAdj:
					h += op.imm
				case opStackReset:
					h = 0 // rsp restored from the frame pointer
				case opRet:
					sawRet = true
					if h != 0 {
						balancedAll = false
					}
				case opRegRead:
					if b == 0 && !entrySeen && !written[op.reg&15] && argRegs64[op.reg] {
						p.argRegRead = true
					}
				case opMemRead:
					if b == 0 && !entrySeen && op.imm > 0 {
						p.argRegRead = true
					}
				case opRegWrite:
					written[op.reg&15] = true
				}
			}
			if h > 0 {
				p.popsBelowEntry = true
			}
		}
		entrySeen = true
		for _, s := range blocks[b].succs {
			if in[s] == unknownHeight {
				in[s] = h
				worklist = append(worklist, s)
			} else if in[s] != h {
				// Conflicting heights: re-propagate the lower bound once
				// (bounded re-iteration keeps the fixpoint cheap yet
				// real).
				if h < in[s] {
					in[s] = h
					worklist = append(worklist, s)
				}
			}
		}
	}
	p.sawRet = sawRet
	p.balanced = sawRet && balancedAll
	return p
}

// cfgProfile is the CFG-based replacement for the linear range profiler.
func cfgProfile(code []byte, begin uint64, mode x86.Mode) funcProfile {
	return cfgProfileSrc(csrc{code: code, base: begin, mode: mode})
}

// cfgProfileSrc is cfgProfile over a decode source (optionally backed by
// the shared linear-sweep index).
func cfgProfileSrc(src csrc) funcProfile {
	ptr := int64(8)
	if src.mode == x86.Mode32 {
		ptr = 4
	}
	blocks, arena, ok := buildCFG(src, ptr)
	return analyzeCFG(blocks, arena, ok, ptr)
}
