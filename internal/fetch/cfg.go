package fetch

import (
	"sort"

	"github.com/funseeker/funseeker/internal/x86"
)

// FETCH's published pipeline lifts machine code to an intermediate
// representation and runs stack-height and calling-convention analyses
// over each function's control-flow graph. This file reproduces that
// architecture: instructions are decoded once, lifted to micro-ops,
// partitioned into basic blocks, and a worklist dataflow propagates the
// stack height to a fixpoint. The work done here — not the final answer
// quality — is what makes FETCH measurably slower than FunSeeker's
// single syntactic sweep.

// opKind enumerates micro-op kinds in the mini-IR.
type opKind uint8

const (
	opNop opKind = iota
	// opStackAdj adjusts the stack pointer by imm bytes.
	opStackAdj
	// opStackReset models leave/ret epilogue resets.
	opStackReset
	// opRegRead reads a general-purpose register.
	opRegRead
	// opRegWrite writes a general-purpose register.
	opRegWrite
	// opMemRead / opMemWrite model memory accesses at [reg+imm].
	opMemRead
	opMemWrite
	// opCall models a (balanced) call.
	opCall
	// opRet terminates with a return.
	opRet
	// opBranch terminates with a branch.
	opBranch
)

// microOp is one lifted operation.
type microOp struct {
	kind opKind
	reg  int
	imm  int64
}

// lift expands a decoded instruction into micro-ops. The expansion covers
// the instruction classes the length decoder distinguishes plus the
// common integer forms via regEffects.
func lift(inst x86.Inst, ptr int64, ops []microOp) []microOp {
	switch {
	case inst.OpcodeMap == 1 && inst.Opcode >= 0x50 && inst.Opcode <= 0x57:
		ops = append(ops,
			microOp{kind: opRegRead, reg: int(inst.Opcode - 0x50)},
			microOp{kind: opStackAdj, imm: -ptr},
			microOp{kind: opMemWrite, reg: 4})
	case inst.OpcodeMap == 1 && inst.Opcode >= 0x58 && inst.Opcode <= 0x5F:
		ops = append(ops,
			microOp{kind: opMemRead, reg: 4},
			microOp{kind: opStackAdj, imm: ptr},
			microOp{kind: opRegWrite, reg: int(inst.Opcode - 0x58)})
	case inst.Class == x86.ClassLeave:
		ops = append(ops, microOp{kind: opStackReset}, microOp{kind: opRegWrite, reg: 5})
	case isRspAdjust(inst):
		imm := inst.Imm
		if inst.Reg() == 5 {
			imm = -imm
		}
		ops = append(ops, microOp{kind: opStackAdj, imm: imm})
	case inst.Class == x86.ClassCallRel || inst.Class == x86.ClassCallInd:
		ops = append(ops, microOp{kind: opCall})
	case inst.Class == x86.ClassRet:
		ops = append(ops, microOp{kind: opRet})
	case inst.Class.IsBranch():
		ops = append(ops, microOp{kind: opBranch})
	default:
		reads, writes := regEffects(inst, x86.Mode64)
		for _, r := range reads {
			if r >= 0 {
				ops = append(ops, microOp{kind: opRegRead, reg: r})
			} else {
				ops = append(ops, microOp{kind: opMemRead, reg: 4, imm: inst.Imm})
			}
		}
		for _, w := range writes {
			ops = append(ops, microOp{kind: opRegWrite, reg: w})
		}
		if len(reads) == 0 && len(writes) == 0 {
			ops = append(ops, microOp{kind: opNop})
		}
	}
	return ops
}

// liftedInst pairs a decoded instruction with its micro-ops.
type liftedInst struct {
	inst x86.Inst
	ops  []microOp
}

// basicBlock is one CFG node.
type basicBlock struct {
	insts []liftedInst
	// succs are indices of successor blocks (-1 entries removed).
	succs []int
}

// unknownHeight marks an unvisited or inconsistent block height.
const unknownHeight = int64(-1 << 62)

// buildCFG decodes [begin, end) once and partitions it into basic blocks.
func buildCFG(code []byte, begin uint64, mode x86.Mode, ptr int64) ([]basicBlock, bool) {
	type decoded struct {
		li   liftedInst
		addr uint64
	}
	var insts []decoded
	addrIndex := make(map[uint64]int)
	off := 0
	decodeOK := true
	for off < len(code) {
		inst, err := x86.Decode(code[off:], begin+uint64(off), mode)
		if err != nil {
			decodeOK = false
			break
		}
		addrIndex[inst.Addr] = len(insts)
		insts = append(insts, decoded{
			li:   liftedInst{inst: inst, ops: lift(inst, ptr, nil)},
			addr: inst.Addr,
		})
		off += inst.Len
	}
	if len(insts) == 0 {
		return nil, decodeOK
	}
	// Leaders: the entry, branch targets, and fallthroughs after
	// control-flow instructions.
	leaders := map[int]bool{0: true}
	for i, d := range insts {
		cl := d.li.inst.Class
		if cl == x86.ClassJccRel || cl == x86.ClassJmpRel {
			if d.li.inst.HasTarget {
				if idx, ok := addrIndex[d.li.inst.Target]; ok {
					leaders[idx] = true
				}
			}
		}
		if cl.IsBranch() && i+1 < len(insts) {
			leaders[i+1] = true
		}
	}
	starts := make([]int, 0, len(leaders))
	for i := range leaders {
		starts = append(starts, i)
	}
	sort.Ints(starts)
	blockOf := make(map[int]int, len(starts))
	for b, s := range starts {
		blockOf[s] = b
	}
	blocks := make([]basicBlock, len(starts))
	for b, s := range starts {
		e := len(insts)
		if b+1 < len(starts) {
			e = starts[b+1]
		}
		bb := &blocks[b]
		for i := s; i < e; i++ {
			bb.insts = append(bb.insts, insts[i].li)
		}
		last := insts[e-1].li.inst
		switch last.Class {
		case x86.ClassRet, x86.ClassHlt, x86.ClassUD, x86.ClassJmpInd:
			// no successors
		case x86.ClassJmpRel:
			if last.HasTarget {
				if idx, ok := addrIndex[last.Target]; ok {
					bb.succs = append(bb.succs, blockOf[idx])
				}
			}
		case x86.ClassJccRel:
			if last.HasTarget {
				if idx, ok := addrIndex[last.Target]; ok {
					bb.succs = append(bb.succs, blockOf[idx])
				}
			}
			if e < len(insts) {
				bb.succs = append(bb.succs, blockOf[e])
			}
		default:
			if e < len(insts) {
				bb.succs = append(bb.succs, blockOf[e])
			}
		}
	}
	return blocks, decodeOK
}

// analyzeCFG runs the stack-height fixpoint and argument-liveness scan
// over the lifted CFG, producing the verifier's profile.
func analyzeCFG(blocks []basicBlock, decodeOK bool, ptr int64) funcProfile {
	var p funcProfile
	p.decodeError = !decodeOK
	if len(blocks) == 0 {
		return p
	}
	if first := firstInst(blocks); first != nil {
		if first.Class == x86.ClassNop || first.Class == x86.ClassInt3 {
			p.startsWithPadding = true
			return p
		}
	}
	in := make([]int64, len(blocks))
	for i := range in {
		in[i] = unknownHeight
	}
	in[0] = 0
	worklist := []int{0}
	var written [16]bool
	balancedAll := true
	sawRet := false
	entrySeen := false
	for len(worklist) > 0 {
		b := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		h := in[b]
		if h == unknownHeight {
			continue
		}
		for _, li := range blocks[b].insts {
			p.insts++
			for _, op := range li.ops {
				switch op.kind {
				case opStackAdj:
					h += op.imm
				case opStackReset:
					h = 0 // rsp restored from the frame pointer
				case opRet:
					sawRet = true
					if h != 0 {
						balancedAll = false
					}
				case opRegRead:
					if b == 0 && !entrySeen && !written[op.reg&15] && argRegs64[op.reg] {
						p.argRegRead = true
					}
				case opMemRead:
					if b == 0 && !entrySeen && op.imm > 0 {
						p.argRegRead = true
					}
				case opRegWrite:
					written[op.reg&15] = true
				}
			}
			if h > 0 {
				p.popsBelowEntry = true
			}
		}
		entrySeen = true
		for _, s := range blocks[b].succs {
			if in[s] == unknownHeight {
				in[s] = h
				worklist = append(worklist, s)
			} else if in[s] != h {
				// Conflicting heights: re-propagate the lower bound once
				// (bounded re-iteration keeps the fixpoint cheap yet
				// real).
				if h < in[s] {
					in[s] = h
					worklist = append(worklist, s)
				}
			}
		}
	}
	p.sawRet = sawRet
	p.balanced = sawRet && balancedAll
	return p
}

func firstInst(blocks []basicBlock) *x86.Inst {
	if len(blocks) == 0 || len(blocks[0].insts) == 0 {
		return nil
	}
	return &blocks[0].insts[0].inst
}

// cfgProfile is the CFG-based replacement for the linear range profiler.
func cfgProfile(code []byte, begin uint64, mode x86.Mode) funcProfile {
	ptr := int64(8)
	if mode == x86.Mode32 {
		ptr = 4
	}
	blocks, ok := buildCFG(code, begin, mode, ptr)
	return analyzeCFG(blocks, ok, ptr)
}
