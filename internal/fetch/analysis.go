package fetch

import (
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// funcProfile summarizes the stack and register behaviour of a code
// region — the information FETCH's verifier consumes.
type funcProfile struct {
	// insts is the number of instructions walked.
	insts int
	// sawRet reports whether the walk reached a return.
	sawRet bool
	// balanced reports whether every return was reached with the stack
	// height restored to the entry height.
	balanced bool
	// popsBelowEntry reports whether the stack rose above the entry
	// height (popping into the caller's frame) at any point.
	popsBelowEntry bool
	// argRegRead reports whether an argument register (or, on x86, an
	// incoming stack slot) was read before being written.
	argRegRead bool
	// decodeError reports whether the walk hit undecodable bytes.
	decodeError bool
	// startsWithPadding reports whether the region begins with padding
	// (NOP or INT3), which disqualifies it as an entry.
	startsWithPadding bool
}

// looksLikeFunction is FETCH's acceptance predicate for tail-call
// candidates: reject only on positive evidence of non-functionhood.
func (p funcProfile) looksLikeFunction() bool {
	if p.decodeError || p.startsWithPadding || p.insts == 0 {
		return false
	}
	if p.popsBelowEntry {
		return false
	}
	if p.sawRet && !p.balanced {
		return false
	}
	return true
}

// profileRange analyzes the instructions of [begin, end) by building the
// function's CFG, lifting to micro-ops, and running the stack-height
// dataflow to a fixpoint — the analysis architecture of the real FETCH.
func profileRange(bin *elfx.Binary, idx *x86.Index, begin, end uint64) funcProfile {
	if begin < bin.TextAddr {
		return funcProfile{decodeError: true}
	}
	lo := begin - bin.TextAddr
	hi := end - bin.TextAddr
	if hi > uint64(len(bin.Text)) {
		hi = uint64(len(bin.Text))
	}
	if lo >= hi {
		return funcProfile{decodeError: true}
	}
	return cfgProfileSrc(csrc{code: bin.Text[lo:hi], base: begin, mode: bin.Mode, idx: idx})
}

// profileWindow analyzes up to maxInsts instructions starting at va.
func profileWindow(bin *elfx.Binary, idx *x86.Index, va uint64, maxInsts int) funcProfile {
	if !bin.InText(va) {
		return funcProfile{decodeError: true}
	}
	lo := va - bin.TextAddr
	return profileSrc(csrc{code: bin.Text[lo:], base: va, mode: bin.Mode, idx: idx}, maxInsts, true)
}

// profile is the core walk: linear disassembly with stack-height and
// argument-liveness modeling. With stopAtFlowEnd set it stops at the
// first return or unconditional control-flow diversion (candidate
// verification); otherwise it walks the whole region, resetting the
// height model at each return (full-function profiling).
func profile(code []byte, base uint64, mode x86.Mode, maxInsts int, stopAtFlowEnd bool) funcProfile {
	return profileSrc(csrc{code: code, base: base, mode: mode}, maxInsts, stopAtFlowEnd)
}

// profileSrc is profile over a decode source (optionally backed by the
// shared linear-sweep index).
func profileSrc(src csrc, maxInsts int, stopAtFlowEnd bool) funcProfile {
	var p funcProfile
	mode := src.mode
	ptr := int64(8)
	if mode == x86.Mode32 {
		ptr = 4
	}
	var (
		height     int64 // current stack height relative to entry (≤ 0)
		written    [16]bool
		checkedArg = false
	)
	var scratch x86.Inst
	pc := src.base
	end := src.end()
	first := true
	for pc < end && p.insts < maxInsts {
		inst, err := src.decode(pc, &scratch)
		if err != nil {
			p.decodeError = true
			return p
		}
		if first {
			if inst.Class == x86.ClassNop || inst.Class == x86.ClassInt3 {
				p.startsWithPadding = true
				return p
			}
			first = false
		}
		p.insts++
		pc += uint64(inst.Len)

		// Stack-height effects.
		switch {
		case inst.OpcodeMap == 1 && inst.Opcode >= 0x50 && inst.Opcode <= 0x57:
			height -= ptr
		case inst.OpcodeMap == 1 && inst.Opcode >= 0x58 && inst.Opcode <= 0x5F:
			height += ptr
		case inst.Class == x86.ClassLeave:
			height = 0 // rsp <- rbp; pop rbp
		case isRspAdjust(inst):
			if inst.Reg() == 5 { // sub
				height -= inst.Imm
			} else { // add
				height += inst.Imm
			}
		case inst.Class == x86.ClassCallRel || inst.Class == x86.ClassCallInd:
			// The callee balances its own frame.
		}
		if height > 0 {
			p.popsBelowEntry = true
		}

		// Argument-register liveness: only meaningful near the entry.
		if !checkedArg && p.insts <= 12 {
			reads, writes := regEffects(inst, mode)
			for _, r := range reads {
				if mode == x86.Mode64 && argRegs64[r] && !written[r] {
					p.argRegRead = true
					checkedArg = true
				}
				// On x86, reading [esp+positive] or [ebp+positive]
				// reaches incoming arguments.
				if mode == x86.Mode32 && r == -1 {
					p.argRegRead = true
					checkedArg = true
				}
			}
			for _, w := range writes {
				if w >= 0 && w < 16 {
					written[w] = true
				}
			}
		}

		// Flow termination.
		switch inst.Class {
		case x86.ClassRet:
			p.sawRet = true
			p.balanced = height == 0
			if stopAtFlowEnd {
				return p
			}
			height = 0
		case x86.ClassJmpRel, x86.ClassJmpInd, x86.ClassHlt, x86.ClassUD:
			if stopAtFlowEnd {
				return p
			}
			height = 0
		}
	}
	return p
}

// argRegs64 is the SysV AMD64 integer argument register set, by encoder
// number: RDI(7), RSI(6), RDX(2), RCX(1), R8(8), R9(9).
var argRegs64 = map[int]bool{7: true, 6: true, 2: true, 1: true, 8: true, 9: true}

// isRspAdjust recognizes add/sub rsp, imm (group-1 83/81 with rm=RSP).
func isRspAdjust(inst *x86.Inst) bool {
	if inst.OpcodeMap != 1 || !inst.HasModRM || !inst.HasImm {
		return false
	}
	if inst.Opcode != 0x83 && inst.Opcode != 0x81 {
		return false
	}
	if inst.Mod() != 3 || inst.RM() != 4 {
		return false
	}
	return inst.Reg() == 0 || inst.Reg() == 5
}

// regEffects extracts a conservative (reads, writes) register summary for
// the common integer instructions. A read code of -1 denotes a read of an
// incoming stack slot ([esp+pos] / [ebp+pos] with mod≠3).
func regEffects(inst *x86.Inst, mode x86.Mode) (reads, writes []int) {
	if inst.OpcodeMap != 1 {
		return nil, nil
	}
	op := inst.Opcode
	reg := inst.Reg()
	rm := inst.RM()
	memRead := func() {
		// Memory operand with positive displacement off the stack:
		// incoming argument access on x86.
		if inst.Mod() != 3 && (rm == 4 || rm == 5) && inst.Imm >= 0 {
			reads = append(reads, -1)
		}
	}
	switch {
	case op < 0x40 && op&7 <= 3: // ALU MR/RM forms
		switch op & 7 {
		case 0, 1: // op r/m, r
			reads = append(reads, reg)
			if inst.Mod() == 3 {
				reads = append(reads, rm)
				if op>>3 != 7 { // cmp writes nothing
					writes = append(writes, rm)
				}
			}
		case 2, 3: // op r, r/m
			if inst.Mod() == 3 {
				reads = append(reads, rm)
			} else {
				memRead()
			}
			reads = append(reads, reg)
			if op>>3 != 7 {
				writes = append(writes, reg)
			}
		}
	case op >= 0x50 && op <= 0x57:
		reads = append(reads, int(op-0x50))
	case op >= 0x58 && op <= 0x5F:
		writes = append(writes, int(op-0x58))
	case op == 0x89: // mov r/m, r
		reads = append(reads, reg)
		if inst.Mod() == 3 {
			writes = append(writes, rm)
		}
	case op == 0x8B: // mov r, r/m
		if inst.Mod() == 3 {
			reads = append(reads, rm)
		} else {
			memRead()
		}
		writes = append(writes, reg)
	case op == 0x8D: // lea r, m
		writes = append(writes, reg)
	case op >= 0xB8 && op <= 0xBF:
		writes = append(writes, int(op-0xB8))
	case op == 0x85 || op == 0x84: // test
		reads = append(reads, reg)
		if inst.Mod() == 3 {
			reads = append(reads, rm)
		}
	case op == 0x81 || op == 0x83: // group 1 imm
		if inst.Mod() == 3 {
			reads = append(reads, rm)
			if reg != 7 {
				writes = append(writes, rm)
			}
		}
	}
	_ = mode
	return reads, writes
}
