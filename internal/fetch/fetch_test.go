package fetch

import (
	"testing"

	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

func build(t *testing.T, spec *synth.ProgSpec, cfg synth.Config) (*elfx.Binary, *groundtruth.GT) {
	t.Helper()
	res, err := synth.Compile(spec, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	bin, err := elfx.Load(res.Stripped)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return bin, res.GT
}

func sampleSpec() *synth.ProgSpec {
	return &synth.ProgSpec{
		Name: "fetchtest",
		Lang: synth.LangC,
		Seed: 21,
		Funcs: []synth.FuncSpec{
			{Name: "main", Calls: []int{1, 2}},
			{Name: "a", Calls: []int{3}},
			{Name: "b", BodySize: 400, TailCalls: []int{3}},
			{Name: "leaf", Static: true},
			{Name: "island"},
		},
	}
}

func TestFDECoverageGCC64(t *testing.T) {
	bin, gt := build(t, sampleSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	rep, err := Identify(bin)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, e := range rep.Entries {
		found[e] = true
	}
	// GCC emits FDEs for every function: all found.
	for _, f := range gt.Funcs {
		if !found[f.Addr] {
			t.Errorf("missed %s at %#x despite full FDE coverage", f.Name, f.Addr)
		}
	}
	if rep.FDEFunctions < len(gt.Funcs) {
		t.Errorf("FDEFunctions = %d < %d", rep.FDEFunctions, len(gt.Funcs))
	}
	if rep.AnalyzedInsts == 0 {
		t.Error("no instructions analyzed — the cost model is not running")
	}
}

func TestClangX86CollapseOnC(t *testing.T) {
	bin, gt := build(t, sampleSpec(), synth.Config{Compiler: synth.Clang, Mode: x86.Mode32, Opt: synth.O2})
	rep, err := Identify(bin)
	if err != nil {
		t.Fatal(err)
	}
	// Clang emits no FDEs for 32-bit C binaries: FETCH finds nothing.
	if rep.FDEFunctions != 0 {
		t.Errorf("FDEFunctions = %d on Clang x86 C binary, want 0", rep.FDEFunctions)
	}
	if len(rep.Entries) != 0 {
		t.Errorf("found %d entries with no FDEs", len(rep.Entries))
	}
	_ = gt
}

func TestPartBlocksAreFalsePositives(t *testing.T) {
	spec := sampleSpec()
	spec.Funcs[0].ColdPart = true
	bin, gt := build(t, spec, synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	rep, err := Identify(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt.PartBlocks) == 0 {
		t.Fatal("no part blocks generated")
	}
	found := map[uint64]bool{}
	for _, e := range rep.Entries {
		found[e] = true
	}
	for _, p := range gt.PartBlocks {
		if !found[p] {
			t.Errorf("part block %#x not reported — FETCH should inherit the FDE false positive", p)
		}
	}
}

func TestProfileStackBalance(t *testing.T) {
	// Balanced function: push rbp; mov rbp,rsp; sub rsp,16; leave; ret.
	code := []byte{
		0x55,
		0x48, 0x89, 0xE5,
		0x48, 0x83, 0xEC, 0x10,
		0xC9,
		0xC3,
	}
	p := profile(code, 0x1000, x86.Mode64, 100, true)
	if !p.sawRet || !p.balanced {
		t.Errorf("balanced function profiled as %+v", p)
	}
	// Unbalanced: push rbp; ret (height -8 at ret).
	p = profile([]byte{0x55, 0xC3}, 0x1000, x86.Mode64, 100, true)
	if !p.sawRet || p.balanced {
		t.Errorf("unbalanced function profiled as %+v", p)
	}
	if p.looksLikeFunction() {
		t.Error("unbalanced profile accepted")
	}
	// Pops below entry: pop rax; ret.
	p = profile([]byte{0x58, 0xC3}, 0x1000, x86.Mode64, 100, true)
	if !p.popsBelowEntry {
		t.Errorf("pop at entry not flagged: %+v", p)
	}
	// Padding start.
	p = profile([]byte{0x90, 0xC3}, 0x1000, x86.Mode64, 100, true)
	if !p.startsWithPadding || p.looksLikeFunction() {
		t.Errorf("padding start not rejected: %+v", p)
	}
	// Decode error.
	p = profile([]byte{0x06}, 0x1000, x86.Mode64, 100, true)
	if !p.decodeError || p.looksLikeFunction() {
		t.Errorf("decode error not rejected: %+v", p)
	}
}

func TestProfileArgRegRead(t *testing.T) {
	// mov rax, rdi reads the first argument register before writing it.
	p := profile([]byte{0x48, 0x89, 0xF8, 0xC3}, 0, x86.Mode64, 100, true)
	if !p.argRegRead {
		t.Errorf("rdi read not detected: %+v", p)
	}
	// mov rdi, rax writes rdi first; xor edi, edi then read would not
	// count either.
	p = profile([]byte{0x48, 0x89, 0xC7, 0x48, 0x89, 0xF8, 0xC3}, 0, x86.Mode64, 100, true)
	if p.argRegRead {
		t.Errorf("write-then-read misdetected: %+v", p)
	}
}

func TestCFGProfileLoops(t *testing.T) {
	// A function with a backward branch must still reach the fixpoint:
	//   xor ecx,ecx; L: add ecx,1; cmp ecx,10; jl L; ret
	code := []byte{
		0x31, 0xC9,
		0x83, 0xC1, 0x01,
		0x83, 0xF9, 0x0A,
		0x0F, 0x8C, 0xF5, 0xFF, 0xFF, 0xFF, // jl -11
		0xC3,
	}
	p := cfgProfile(code, 0x2000, x86.Mode64)
	if !p.sawRet || !p.balanced {
		t.Errorf("loop function profiled as %+v", p)
	}
	if p.insts == 0 {
		t.Error("no instructions counted")
	}
}

func TestVerifiedTailCall(t *testing.T) {
	bin, gt := build(t, sampleSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	rep, err := Identify(bin)
	if err != nil {
		t.Fatal(err)
	}
	// leaf is both called and tail-called; it has an FDE anyway under
	// GCC, so the tail-call machinery just must not crash and must have
	// examined some candidates or none — but on GCC everything has FDEs,
	// so candidates whose targets were already entries are skipped.
	if rep.VerifiedTailCalls+rep.RejectedCandidates < 0 {
		t.Error("negative counters")
	}
	_ = gt
}
