package analysis

import (
	"context"
	"fmt"

	"github.com/funseeker/funseeker/internal/arm64"
	"github.com/funseeker/funseeker/internal/cet"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// Backend is the per-ISA dispatch seam: everything the identification
// pipeline needs from an architecture — the linear sweep with its
// derived reference sets, and the byte-level landmark scan — behind one
// interface. The neutral Sweep vocabulary (landmarks E, call targets C,
// jump references J) is what lets core run the same FILTERENDBR /
// SELECTTAILCALL refinements over any backend; a third ISA plugs in by
// implementing these two methods and claiming an elfx.Arch value in
// BackendFor.
type Backend interface {
	// Arch names the architecture the backend implements.
	Arch() elfx.Arch
	// BuildSweep runs one linear sweep over bin's text and derives the
	// reference sets. On cancellation the partial work is discarded and
	// ctx.Err() returned.
	BuildSweep(ctx context.Context, bin *elfx.Binary) (*Sweep, error)
	// ScanMarkers finds call-accepting landmark encodings at every byte
	// offset of text (not only at sweep instruction boundaries),
	// ascending — the superset-disassembly pairing of the paper's §VI.
	ScanMarkers(text []byte, base uint64) []uint64
}

// BackendFor returns the backend implementing arch. ArchAuto is not a
// backend — resolve it against a Binary first (Context does this).
func BackendFor(arch elfx.Arch) (Backend, error) {
	switch arch {
	case elfx.ArchX86:
		return x86Backend{mode: x86.Mode32}, nil
	case elfx.ArchX86_64:
		return x86Backend{mode: x86.Mode64}, nil
	case elfx.ArchAArch64:
		return arm64Backend{}, nil
	}
	return nil, fmt.Errorf("analysis: no backend for architecture %q", arch)
}

// resolveArch maps the ArchAuto wildcard to bin's own architecture.
// Hand-built Binary values (tests, synthesizers) may carry no Arch at
// all; those fall back to the historical x86 rule via Mode.
func resolveArch(bin *elfx.Binary, arch elfx.Arch) elfx.Arch {
	if arch == elfx.ArchAuto {
		arch = bin.Arch
	}
	if arch == elfx.ArchAuto {
		if bin.Mode == x86.Mode32 {
			return elfx.ArchX86
		}
		return elfx.ArchX86_64
	}
	return arch
}

// x86Backend is the CET/endbr backend, at the decode mode matching its
// Arch. It is the original hard-wired pipeline moved behind the seam;
// the golden and property tests pin its output bit-identical to the
// pre-seam implementation.
type x86Backend struct {
	mode x86.Mode
}

// Arch implements Backend.
func (b x86Backend) Arch() elfx.Arch {
	if b.mode == x86.Mode32 {
		return elfx.ArchX86
	}
	return elfx.ArchX86_64
}

// buildIndex delegates the sweep strategy to the x86 package: workers
// <= 0 lets BuildIndexParallelCtx pick shard and goroutine counts from
// the text size and the cores actually available, falling back to the
// sequential two-pass build below its own minParallelBytes threshold.
// Keeping the auto-selection in one place means the backend cannot
// disagree with the sweep layer about when sharding pays. Both
// strategies produce byte-identical indexes (internal/diffcheck asserts
// it per binary) and honor ctx cancellation at stride boundaries.
func (b x86Backend) buildIndex(ctx context.Context, bin *elfx.Binary) (*x86.Index, error) {
	return x86.BuildIndexParallelCtx(ctx, bin.Text, bin.TextAddr, b.mode, 0)
}

// BuildSweep implements Backend: one x86 linear sweep, with endbr
// landmarks, direct call/jump targets, and the indirect-return-call
// annotations FILTERENDBR consumes.
func (b x86Backend) BuildSweep(ctx context.Context, bin *elfx.Binary) (*Sweep, error) {
	idx, err := b.buildIndex(ctx, bin)
	if err != nil {
		return nil, err
	}
	sw := &Sweep{
		Arch:              b.Arch(),
		Index:             idx,
		Shards:            idx.Shards,
		StitchRetries:     idx.StitchRetries,
		AfterIRCall:       make(map[uint64]bool),
		AllCallTargets:    make(map[uint64]bool),
		JumpTargetSet:     make(map[uint64]bool),
		UncondJumpTargets: make(map[uint64]bool),
	}
	havePrev := false
	var prev *x86.Inst
	insts := sw.Index.Insts
	for i := range insts {
		inst := &insts[i]
		switch inst.Class {
		case x86.ClassEndbr64, x86.ClassEndbr32:
			sw.Endbrs = append(sw.Endbrs, inst.Addr)
			if havePrev && prev.Class == x86.ClassCallRel && prev.HasTarget {
				if name, ok := bin.PLTName(prev.Target); ok && cet.IsIndirectReturnFunc(name) {
					sw.AfterIRCall[inst.Addr] = true
				}
			}
		case x86.ClassCallRel:
			if inst.HasTarget {
				sw.AllCallTargets[inst.Target] = true
			}
		case x86.ClassJmpRel, x86.ClassJccRel:
			if inst.HasTarget {
				cond := inst.Class == x86.ClassJccRel
				sw.JumpRefs = append(sw.JumpRefs, JumpRef{Src: inst.Addr, Target: inst.Target, Cond: cond})
				if bin.InText(inst.Target) {
					sw.JumpTargetSet[inst.Target] = true
				}
				if !cond {
					sw.UncondJumpTargets[inst.Target] = true
				}
			}
		}
		prev = inst
		havePrev = true
	}
	sw.finishSets(bin)
	return sw, nil
}

// ScanMarkers implements Backend: the 4-byte ENDBR encodings (F3 0F 1E
// FA/FB) at every byte offset of text. Encodings whose tail would
// straddle the end of the section are not matches.
func (x86Backend) ScanMarkers(text []byte, base uint64) []uint64 {
	var out []uint64
	for off := 0; off+4 <= len(text); off++ {
		if text[off] != 0xF3 || text[off+1] != 0x0F || text[off+2] != 0x1E {
			continue
		}
		if b := text[off+3]; b != 0xFA && b != 0xFB {
			continue
		}
		out = append(out, base+uint64(off))
	}
	return out
}

// arm64Backend is the BTI backend. The landmark mapping follows the
// paper's §VI sketch (and internal/bticore, whose output the diffcheck
// oracle pins this backend against): call-accepting pads (BTI c / jc,
// PACIASP) play the role of ENDBR in E, BL of direct calls in C, and
// unconditional B of the direct jumps SELECTTAILCALL refines. BTI j pads
// — indirect-jump-only switch labels — are what FILTERENDBR removes by
// analysis on x86; here the ISA names them, so they are excluded from E
// at sweep time and reported separately in JumpPads.
type arm64Backend struct{}

// Arch implements Backend.
func (arm64Backend) Arch() elfx.Arch { return elfx.ArchAArch64 }

// BuildSweep implements Backend: one fixed-width AArch64 sweep. The
// sweep is never sharded — with 4-byte instructions every decode start
// is already synchronized, so parallel speculation has nothing to buy.
func (arm64Backend) BuildSweep(ctx context.Context, bin *elfx.Binary) (*Sweep, error) {
	ix, err := arm64.BuildIndexCtx(ctx, bin.Text, bin.TextAddr)
	if err != nil {
		return nil, err
	}
	sw := &Sweep{
		Arch:              elfx.ArchAArch64,
		ARM64:             ix,
		Shards:            1,
		AfterIRCall:       make(map[uint64]bool),
		AllCallTargets:    make(map[uint64]bool),
		JumpTargetSet:     make(map[uint64]bool),
		UncondJumpTargets: make(map[uint64]bool),
	}
	for i := range ix.Insts {
		inst := &ix.Insts[i]
		switch inst.Class {
		case arm64.ClassBTI:
			if inst.BTI.AcceptsCall() {
				sw.Endbrs = append(sw.Endbrs, inst.Addr)
			} else if inst.BTI.AcceptsJump() {
				sw.JumpPads = append(sw.JumpPads, inst.Addr)
			}
		case arm64.ClassPACIASP:
			sw.Endbrs = append(sw.Endbrs, inst.Addr)
		case arm64.ClassBL:
			if inst.HasTarget {
				sw.AllCallTargets[inst.Target] = true
			}
		case arm64.ClassB:
			if inst.HasTarget {
				sw.JumpRefs = append(sw.JumpRefs, JumpRef{Src: inst.Addr, Target: inst.Target})
				if bin.InText(inst.Target) {
					sw.JumpTargetSet[inst.Target] = true
				}
				sw.UncondJumpTargets[inst.Target] = true
			}
		}
	}
	sw.finishSets(bin)
	return sw, nil
}

// ScanMarkers implements Backend via the word-aligned call-pad scan.
func (arm64Backend) ScanMarkers(text []byte, base uint64) []uint64 {
	return arm64.ScanCallPads(text, base)
}

// finishSets derives the membership sets and sorted slices every backend
// shares: EndbrSet from the (already ascending) landmark stream, and the
// in-text call/jump target slices from their sets.
func (sw *Sweep) finishSets(bin *elfx.Binary) {
	sw.EndbrSet = make(map[uint64]bool, len(sw.Endbrs))
	for _, e := range sw.Endbrs {
		sw.EndbrSet[e] = true
	}
	sw.CallTargetSet = make(map[uint64]bool, len(sw.AllCallTargets))
	for t := range sw.AllCallTargets {
		if bin.InText(t) {
			sw.CallTargetSet[t] = true
		}
	}
	sw.CallTargets = sortedKeys(sw.CallTargetSet)
	sw.JumpTargets = sortedKeys(sw.JumpTargetSet)
}
