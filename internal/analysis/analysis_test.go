package analysis

import (
	"sync"
	"testing"

	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// testBinary hand-assembles a tiny x86-64 text section:
//
//	0x1000: endbr64            ; function entry
//	0x1004: call 0x100C        ; direct call
//	0x1009: ret
//	0x100A: jmp 0x1000         ; direct unconditional jump
//	0x100C: endbr64            ; call target
//	0x1010: ret
func testBinary() *elfx.Binary {
	text := []byte{
		0xF3, 0x0F, 0x1E, 0xFA, // endbr64
		0xE8, 0x03, 0x00, 0x00, 0x00, // call +3
		0xC3,       // ret
		0xEB, 0xF4, // jmp -12
		0xF3, 0x0F, 0x1E, 0xFA, // endbr64
		0xC3, // ret
	}
	return &elfx.Binary{Mode: x86.Mode64, Text: text, TextAddr: 0x1000}
}

func TestSweepArtifacts(t *testing.T) {
	ctx := NewContext(testBinary())
	sw := ctx.Sweep()

	wantEndbrs := []uint64{0x1000, 0x100C}
	if len(sw.Endbrs) != 2 || sw.Endbrs[0] != wantEndbrs[0] || sw.Endbrs[1] != wantEndbrs[1] {
		t.Fatalf("Endbrs = %#x, want %#x", sw.Endbrs, wantEndbrs)
	}
	if !sw.EndbrSet[0x1000] || !sw.EndbrSet[0x100C] {
		t.Error("EndbrSet missing entries")
	}
	if len(sw.CallTargets) != 1 || sw.CallTargets[0] != 0x100C {
		t.Fatalf("CallTargets = %#x, want [0x100c]", sw.CallTargets)
	}
	if len(sw.JumpRefs) != 1 || sw.JumpRefs[0].Src != 0x100A || sw.JumpRefs[0].Target != 0x1000 || sw.JumpRefs[0].Cond {
		t.Fatalf("JumpRefs = %+v", sw.JumpRefs)
	}
	if !sw.JumpTargetSet[0x1000] || !sw.UncondJumpTargets[0x1000] {
		t.Error("jump target sets missing 0x1000")
	}
	if got := len(sw.Index.Insts); got != 6 {
		t.Errorf("index has %d instructions, want 6", got)
	}
}

func TestMemoizationCounts(t *testing.T) {
	ctx := NewContext(testBinary())
	const calls = 5
	for i := 0; i < calls; i++ {
		ctx.Sweep()
		ctx.SupersetEndbrs()
		if _, err := ctx.LandingPads(); err != nil {
			t.Fatalf("LandingPads: %v", err)
		}
	}
	st := ctx.Stats()
	if st.Sweep.Computes != 1 || st.Sweep.Hits != calls-1 {
		t.Errorf("sweep computes/hits = %d/%d, want 1/%d", st.Sweep.Computes, st.Sweep.Hits, calls-1)
	}
	if st.Superset.Computes != 1 || st.Superset.Hits != calls-1 {
		t.Errorf("superset computes/hits = %d/%d", st.Superset.Computes, st.Superset.Hits)
	}
	if st.LandingPad.Computes != 1 || st.LandingPad.Hits != calls-1 {
		t.Errorf("landing-pad computes/hits = %d/%d", st.LandingPad.Computes, st.LandingPad.Hits)
	}
	// The test binary has no .eh_frame: no parse should ever run.
	if st.EHParse.Computes != 0 {
		t.Errorf("eh-parse computes = %d, want 0 without .eh_frame", st.EHParse.Computes)
	}
}

// TestConcurrentReaders hammers every memoized artifact from many
// goroutines; with -race this exercises the concurrency contract, and the
// counters must still show exactly one compute per stage.
func TestConcurrentReaders(t *testing.T) {
	ctx := NewContext(testBinary())
	const readers = 16
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sw := ctx.Sweep()
				_ = sw.Endbrs[0]
				_ = ctx.SupersetEndbrs()
				if _, err := ctx.LandingPads(); err != nil {
					t.Error(err)
					return
				}
				_ = ctx.Index().Range(0x1000, 0x1010)
			}
		}()
	}
	wg.Wait()
	st := ctx.Stats()
	for name, stage := range map[string]StageStat{
		"sweep": st.Sweep, "superset": st.Superset, "landing-pad": st.LandingPad,
	} {
		if stage.Computes != 1 {
			t.Errorf("%s computed %d times under concurrency, want 1", name, stage.Computes)
		}
	}
}

func TestStatsAddAndRender(t *testing.T) {
	ctx := NewContext(testBinary())
	ctx.Sweep()
	var agg Stats
	agg.Add(ctx.Stats())
	agg.Add(ctx.Stats())
	if agg.Sweep.Computes != 2 {
		t.Errorf("aggregated sweep computes = %d, want 2", agg.Sweep.Computes)
	}
	if out := agg.Render(); out == "" {
		t.Error("Render produced nothing")
	}
}

func TestScanEndbrEncodings(t *testing.T) {
	// endbr64 at 0, endbr32 at a non-boundary offset, truncated encoding
	// straddling the end.
	text := []byte{
		0xF3, 0x0F, 0x1E, 0xFA, // endbr64 @ 0x2000
		0x90,                   // nop
		0xF3, 0x0F, 0x1E, 0xFB, // endbr32 @ 0x2005
		0xF3, 0x0F, 0x1E, // truncated endbr @ 0x2009 — must not match
	}
	bin := &elfx.Binary{Mode: x86.Mode64, Text: text, TextAddr: 0x2000}
	got := NewContext(bin).SupersetEndbrs()
	want := []uint64{0x2000, 0x2005}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("SupersetEndbrs = %#x, want %#x", got, want)
	}
}
