package analysis

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// bigBinary fabricates a binary with a megabyte-scale .text — large
// enough that the context auto-selects the parallel sweep and crosses
// many cancellation strides. The text is generated once and shared
// read-only; each call still gets a fresh Binary (and so a fresh memo).
var bigTextOnce = sync.OnceValue(func() []byte {
	rng := rand.New(rand.NewSource(8136))
	return x86.GenText(1<<20, x86.Mode64, rng, 0)
})

func bigBinary(tb testing.TB) *elfx.Binary {
	tb.Helper()
	return &elfx.Binary{
		Mode:     x86.Mode64,
		Text:     bigTextOnce(),
		TextAddr: 0x401000,
	}
}

func TestSweepCtxCanceledNotMemoized(t *testing.T) {
	c := NewContext(bigBinary(t))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SweepCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("SweepCtx(canceled) = %v, want context.Canceled", err)
	}
	if st := c.Stats(); st.Sweep.Computes != 0 {
		t.Fatalf("canceled sweep was memoized: %d computes", st.Sweep.Computes)
	}

	// A fresh context must recover: the failed attempt left no poison.
	sw, err := c.SweepCtx(context.Background())
	if err != nil {
		t.Fatalf("SweepCtx after cancellation: %v", err)
	}
	if len(sw.Index.Insts) == 0 {
		t.Fatal("recovered sweep is empty")
	}
	if st := c.Stats(); st.Sweep.Computes != 1 {
		t.Fatalf("recovered sweep computes = %d, want 1", st.Sweep.Computes)
	}
}

// TestSweepCtxStopsEarly bounds the CPU a canceled sweep may burn: a
// context canceled up front must return far faster than the full sweep.
// The margin is deliberately huge (10×) to stay robust on loaded CI
// machines.
func TestSweepCtxStopsEarly(t *testing.T) {
	bin := bigBinary(t)

	full := NewContext(bin)
	start := time.Now()
	if _, err := full.SweepCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	fullTime := time.Since(start)

	canceled := NewContext(bin)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start = time.Now()
	if _, err := canceled.SweepCtx(ctx); err == nil {
		t.Fatal("canceled sweep succeeded")
	}
	earlyTime := time.Since(start)

	if earlyTime > fullTime/10+5*time.Millisecond {
		t.Fatalf("canceled sweep took %v, full sweep %v — cancellation did not stop it early", earlyTime, fullTime)
	}
}

// TestSweepCtxWaiterCancellation checks a goroutine waiting behind an
// in-flight sweep can abandon the wait when its own context dies, and
// that the computing goroutine's result is shared once memoized.
func TestSweepCtxWaiterCancellation(t *testing.T) {
	c := NewContext(bigBinary(t))

	const readers = 8
	var wg sync.WaitGroup
	results := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%2 == 1 {
				// Odd readers carry a context that dies almost at once.
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
				defer cancel()
			}
			_, results[i] = c.SweepCtx(ctx)
		}(i)
	}
	wg.Wait()

	for i, err := range results {
		if i%2 == 0 && err != nil {
			t.Errorf("background reader %d failed: %v", i, err)
		}
		if i%2 == 1 && err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("deadline reader %d returned %v", i, err)
		}
	}

	// Whatever the interleaving, the context must end in a usable state.
	sw, err := c.SweepCtx(context.Background())
	if err != nil || len(sw.Index.Insts) == 0 {
		t.Fatalf("post-hammer sweep: %v (insts=%d)", err, len(sw.Index.Insts))
	}
	if st := c.Stats(); st.Sweep.Computes != 1 {
		t.Fatalf("sweep computed %d times, want exactly 1 memoized compute", st.Sweep.Computes)
	}
}
