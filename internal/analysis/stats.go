package analysis

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// StageStat is the cost accounting of one analysis stage.
type StageStat struct {
	// Computes counts cold executions (cache misses for memoized stages,
	// plain executions for per-run stages).
	Computes uint64
	// Hits counts memoized lookups served from cache.
	Hits uint64
	// Time is the total wall-clock time spent computing.
	Time time.Duration
}

// Add accumulates another stage's numbers.
func (s *StageStat) Add(o StageStat) {
	s.Computes += o.Computes
	s.Hits += o.Hits
	s.Time += o.Time
}

// Mean is the average time per compute.
func (s StageStat) Mean() time.Duration {
	if s.Computes == 0 {
		return 0
	}
	return s.Time / time.Duration(s.Computes)
}

// Stats is a point-in-time snapshot of a Context's per-stage accounting —
// or, via Add, the aggregate over many contexts (one evaluation run).
// The memoized stages (Sweep, EHParse, LandingPad, Superset) count cache
// hits and misses; the per-run refinement stages (Filter, TailCall) count
// executions only.
type Stats struct {
	// Sweep is the linear-sweep disassembly (index + reference sets).
	Sweep StageStat
	// EHParse is the .eh_frame FDE parse.
	EHParse StageStat
	// LandingPad is the FDE×LSDA landing-pad join.
	LandingPad StageStat
	// FDEIndex is the FDE start-set + coverage-interval index build.
	FDEIndex StageStat
	// Superset is the byte-level end-branch scan.
	Superset StageStat
	// Filter is the FILTERENDBR refinement (per identification run).
	Filter StageStat
	// TailCall is the SELECTTAILCALL refinement (per identification run).
	TailCall StageStat

	// SweepShards is the total shard count across sweeps (1 per
	// sequentially-swept binary, the worker count per parallel sweep).
	SweepShards uint64
	// StitchRetries is the total number of seam instructions the
	// parallel sweeps had to re-decode before shard streams
	// re-synchronized.
	StitchRetries uint64
}

// Add accumulates another snapshot.
func (s *Stats) Add(o Stats) {
	s.Sweep.Add(o.Sweep)
	s.EHParse.Add(o.EHParse)
	s.LandingPad.Add(o.LandingPad)
	s.FDEIndex.Add(o.FDEIndex)
	s.Superset.Add(o.Superset)
	s.Filter.Add(o.Filter)
	s.TailCall.Add(o.TailCall)
	s.SweepShards += o.SweepShards
	s.StitchRetries += o.StitchRetries
}

// EachStage calls f once per pipeline stage, in canonical order, with
// the stage's stable name. It is the single enumeration point shared by
// the Render table, the engine's per-stage latency histograms, and the
// CLI summary — adding a stage here adds it everywhere.
func (s Stats) EachStage(f func(name string, st StageStat)) {
	f("sweep", s.Sweep)
	f("eh-parse", s.EHParse)
	f("landing-pad", s.LandingPad)
	f("fde-index", s.FDEIndex)
	f("superset", s.Superset)
	f("filter", s.Filter)
	f("tail-call", s.TailCall)
}

// Render formats the per-stage cost table (the Table-V-style runtime
// breakdown).
func (s Stats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-stage analysis cost (shared-context accounting)\n")
	fmt.Fprintf(&b, "  %-12s %9s %9s %12s %12s\n", "stage", "computes", "hits", "total", "mean")
	s.EachStage(func(name string, st StageStat) {
		if st.Computes == 0 && st.Hits == 0 {
			return
		}
		fmt.Fprintf(&b, "  %-12s %9d %9d %12s %12s\n", name, st.Computes, st.Hits, st.Time, st.Mean())
	})
	if s.SweepShards > s.Sweep.Computes {
		fmt.Fprintf(&b, "  %-12s %9d shards, %d stitch retries\n",
			"par-sweep", s.SweepShards, s.StitchRetries)
	}
	return b.String()
}

// statCounters is the live, atomically-updated form of Stats inside a
// Context.
type statCounters struct {
	sweep      stageCounter
	ehParse    stageCounter
	landingPad stageCounter
	fdeIndex   stageCounter
	superset   stageCounter
	filter     stageCounter
	tailCall   stageCounter

	sweepShards   atomic.Uint64
	stitchRetries atomic.Uint64
}

// stageCounter accumulates one stage concurrently.
type stageCounter struct {
	computes atomic.Uint64
	hits     atomic.Uint64
	nanos    atomic.Int64
}

// observe records one cold execution of duration d.
func (c *stageCounter) observe(d time.Duration) {
	c.computes.Add(1)
	c.nanos.Add(int64(d))
}

// snapshot reads the counter.
func (c *stageCounter) snapshot() StageStat {
	return StageStat{
		Computes: c.computes.Load(),
		Hits:     c.hits.Load(),
		Time:     time.Duration(c.nanos.Load()),
	}
}

// Stats returns a consistent-enough snapshot of the context's counters.
func (c *Context) Stats() Stats {
	return Stats{
		Sweep:         c.stats.sweep.snapshot(),
		EHParse:       c.stats.ehParse.snapshot(),
		LandingPad:    c.stats.landingPad.snapshot(),
		FDEIndex:      c.stats.fdeIndex.snapshot(),
		Superset:      c.stats.superset.snapshot(),
		Filter:        c.stats.filter.snapshot(),
		TailCall:      c.stats.tailCall.snapshot(),
		SweepShards:   c.stats.sweepShards.Load(),
		StitchRetries: c.stats.stitchRetries.Load(),
	}
}

// onceStage is sync.Once plus hit/miss/time accounting: the first do
// executes fn and charges its duration as a compute; later calls count as
// cache hits.
type onceStage struct {
	once sync.Once
}

func (o *onceStage) do(c *stageCounter, fn func()) {
	ran := false
	o.once.Do(func() {
		start := time.Now()
		fn()
		c.observe(time.Since(start))
		ran = true
	})
	if !ran {
		c.hits.Add(1)
	}
}

// sortedKeys flattens an address set into an ascending slice.
func sortedKeys(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}
