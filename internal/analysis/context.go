// Package analysis provides the shared per-binary analysis context.
//
// Every identifier in this module — the four FunSeeker configurations and
// the IDA, Ghidra, and FETCH baseline models — starts from the same
// expensive artifacts: one linear-sweep disassembly of .text, the
// end-branch set E with its indirect-return annotations, the direct
// call/jump reference sets C and J, the parsed .eh_frame FDE records, and
// the exception landing-pad set. Before this package existed each tool
// recomputed them independently, so one evaluation cell did ~7× redundant
// work per binary.
//
// Context memoizes each artifact under sync.Once: it is computed exactly
// once per binary, on first demand, and every later consumer — including
// consumers on other goroutines — gets the cached value. All artifacts
// are immutable after construction, so a single Context is safe to share
// across the evaluation runner's worker pool. Per-stage wall-clock costs
// and hit/miss counts are recorded in Stats (see stats.go) so the runtime
// tables can report where time actually goes.
package analysis

import (
	"context"
	"sync"
	"time"

	"github.com/funseeker/funseeker/internal/cet"
	"github.com/funseeker/funseeker/internal/ehframe"
	"github.com/funseeker/funseeker/internal/ehinfo"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// JumpRef records one direct jump instruction and its target.
type JumpRef struct {
	// Src is the address of the jump instruction.
	Src uint64
	// Target is the absolute destination.
	Target uint64
	// Cond reports whether the jump is conditional (Jcc).
	Cond bool
}

// Sweep carries everything one linear-sweep disassembly pass collects:
// the materialized instruction index plus the derived reference sets the
// identification algorithms consume. All fields are populated once and
// must be treated as read-only.
type Sweep struct {
	// Index is the materialized linear-sweep disassembly of .text.
	Index *x86.Index

	// Endbrs is E: every end-branch address in .text, ascending.
	Endbrs []uint64
	// EndbrSet is Endbrs as a membership set.
	EndbrSet map[uint64]bool
	// AfterIRCall marks end-branch addresses immediately preceded by a
	// call to a PLT entry of an indirect-return (setjmp-family) function.
	AfterIRCall map[uint64]bool

	// CallTargets is C: every direct-call target inside .text, ascending.
	CallTargets []uint64
	// CallTargetSet is CallTargets as a membership set.
	CallTargetSet map[uint64]bool
	// AllCallTargets additionally includes direct-call targets outside
	// .text (PLT stubs and the like).
	AllCallTargets map[uint64]bool

	// JumpRefs is every direct jump (conditional and unconditional) with
	// its source retained for SELECTTAILCALL.
	JumpRefs []JumpRef
	// JumpTargets is J restricted to .text, ascending, deduplicated
	// (conditional and unconditional targets alike, matching the paper's
	// configuration ③ candidate set).
	JumpTargets []uint64
	// JumpTargetSet is JumpTargets as a membership set.
	JumpTargetSet map[uint64]bool
	// UncondJumpTargets is the unconditional-only target set (any
	// address), the DirJmpTarget property of the Figure 3 study.
	UncondJumpTargets map[uint64]bool
}

// Context is the shared per-binary analysis state. Create one per binary
// with NewContext, hand it to every analyzer interested in that binary,
// and each shared artifact is computed exactly once no matter how many
// tools, configurations, or goroutines consume it.
type Context struct {
	bin *elfx.Binary

	// The sweep memo is not a sync.Once: a canceled computation must
	// leave the cache empty so the next caller recomputes under its own
	// context, and a caller waiting behind an in-flight computation must
	// still be able to honor its own cancellation. sweepMu guards both
	// fields; sweepInflight is non-nil (and closed on completion) while
	// some goroutine is computing.
	sweepMu       sync.Mutex
	sweepInflight chan struct{}
	sweep         *Sweep

	ehOnce onceStage
	fdes   []ehframe.FDE
	ehErr  error

	padsOnce onceStage
	pads     map[uint64]bool
	padsErr  error

	supersetOnce onceStage
	superset     []uint64

	stats statCounters
}

// NewContext wraps a loaded binary in a fresh analysis context. Nothing
// is computed until first demand.
func NewContext(bin *elfx.Binary) *Context {
	return &Context{bin: bin}
}

// Binary returns the underlying loaded binary.
func (c *Context) Binary() *elfx.Binary { return c.bin }

// Sweep returns the memoized linear-sweep artifacts, computing them on
// first call.
func (c *Context) Sweep() *Sweep {
	sw, _ := c.SweepCtx(context.Background()) // background never cancels
	return sw
}

// SweepCtx returns the memoized linear-sweep artifacts, computing them
// under ctx on first call. Cancellation is cooperative: the sweep checks
// ctx at parallel-shard and stride boundaries, so an aborted request
// stops burning CPU within tens of microseconds. A canceled computation
// is not memoized — the next caller recomputes under its own context —
// and a caller waiting behind another goroutine's in-flight computation
// returns ctx.Err() as soon as its own context is done.
func (c *Context) SweepCtx(ctx context.Context) (*Sweep, error) {
	for {
		c.sweepMu.Lock()
		if c.sweep != nil {
			c.sweepMu.Unlock()
			c.stats.sweep.hits.Add(1)
			return c.sweep, nil
		}
		if c.sweepInflight == nil {
			// We are the computing goroutine.
			wait := make(chan struct{})
			c.sweepInflight = wait
			c.sweepMu.Unlock()

			start := time.Now()
			sw, err := buildSweep(ctx, c.bin)

			c.sweepMu.Lock()
			c.sweepInflight = nil
			if err == nil {
				c.sweep = sw
				c.stats.sweep.observe(time.Since(start))
				c.stats.sweepShards.Add(uint64(sw.Index.Shards))
				c.stats.stitchRetries.Add(uint64(sw.Index.StitchRetries))
			}
			close(wait)
			c.sweepMu.Unlock()
			if err != nil {
				return nil, err
			}
			return sw, nil
		}
		wait := c.sweepInflight
		c.sweepMu.Unlock()
		select {
		case <-wait:
			// Loop: either the sweep is memoized now, or the computing
			// goroutine was canceled and we take over with our own ctx.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Index returns the memoized instruction index (one linear sweep).
func (c *Context) Index() *x86.Index { return c.Sweep().Index }

// IndexCtx returns the memoized instruction index, computing the sweep
// under ctx on first call (see SweepCtx for cancellation semantics).
func (c *Context) IndexCtx(ctx context.Context) (*x86.Index, error) {
	sw, err := c.SweepCtx(ctx)
	if err != nil {
		return nil, err
	}
	return sw.Index, nil
}

// FDEs returns the memoized .eh_frame FDE records. Binaries without an
// .eh_frame section yield an empty slice without a parse.
func (c *Context) FDEs() ([]ehframe.FDE, error) {
	if len(c.bin.EHFrame) == 0 {
		return nil, nil
	}
	c.ehOnce.do(&c.stats.ehParse, func() {
		c.fdes, c.ehErr = ehframe.Parse(c.bin.EHFrame, c.bin.EHFrameAddr, c.bin.PtrSize())
	})
	return c.fdes, c.ehErr
}

// LandingPads returns the memoized exception landing-pad set, derived
// from the memoized FDE records (so the whole context performs at most
// one .eh_frame parse). The returned map is read-only.
func (c *Context) LandingPads() (map[uint64]bool, error) {
	c.padsOnce.do(&c.stats.landingPad, func() {
		fdes, err := c.FDEs()
		if err != nil {
			c.pads, c.padsErr = nil, err
			return
		}
		c.pads = ehinfo.LandingPadsFromFDEs(c.bin, fdes)
	})
	return c.pads, c.padsErr
}

// SupersetEndbrs returns the memoized byte-level end-branch scan: every
// address at which an ENDBR32/ENDBR64 encoding occurs, at any byte offset
// of .text, ascending. This is the superset-disassembly pairing the
// paper's §VI proposes; it is kept separate from Sweep because only the
// SupersetEndbrScan option consumes it.
func (c *Context) SupersetEndbrs() []uint64 {
	c.supersetOnce.do(&c.stats.superset, func() {
		c.superset = scanEndbrEncodings(c.bin.Text, c.bin.TextAddr)
	})
	return c.superset
}

// ObserveFilter records one FILTERENDBR stage execution of duration d.
func (c *Context) ObserveFilter(d time.Duration) { c.stats.filter.observe(d) }

// ObserveTailCall records one SELECTTAILCALL stage execution of
// duration d.
func (c *Context) ObserveTailCall(d time.Duration) { c.stats.tailCall.observe(d) }

// parallelSweepThreshold is the .text size above which the context
// shards the sweep across cores. Below it the sequential build wins:
// the goroutine fan-out plus the seam stitching cost more than the
// decode of a small section.
const parallelSweepThreshold = 256 << 10

// buildIndex picks the sweep strategy by text size: the sharded parallel
// build for large sections, the sequential build otherwise. Both produce
// byte-identical indexes (internal/diffcheck asserts it per binary), and
// both honor ctx cancellation at stride boundaries.
func buildIndex(ctx context.Context, bin *elfx.Binary) (*x86.Index, error) {
	if len(bin.Text) >= parallelSweepThreshold {
		return x86.BuildIndexParallelCtx(ctx, bin.Text, bin.TextAddr, bin.Mode, 0)
	}
	return x86.BuildIndexCtx(ctx, bin.Text, bin.TextAddr, bin.Mode)
}

// buildSweep runs the single linear sweep and derives every reference
// set from the materialized index. On cancellation the partial work is
// discarded and ctx.Err() returned.
func buildSweep(ctx context.Context, bin *elfx.Binary) (*Sweep, error) {
	idx, err := buildIndex(ctx, bin)
	if err != nil {
		return nil, err
	}
	sw := &Sweep{
		Index:             idx,
		AfterIRCall:       make(map[uint64]bool),
		AllCallTargets:    make(map[uint64]bool),
		JumpTargetSet:     make(map[uint64]bool),
		UncondJumpTargets: make(map[uint64]bool),
	}
	havePrev := false
	var prev *x86.Inst
	insts := sw.Index.Insts
	for i := range insts {
		inst := &insts[i]
		switch inst.Class {
		case x86.ClassEndbr64, x86.ClassEndbr32:
			sw.Endbrs = append(sw.Endbrs, inst.Addr)
			if havePrev && prev.Class == x86.ClassCallRel && prev.HasTarget {
				if name, ok := bin.PLTName(prev.Target); ok && cet.IsIndirectReturnFunc(name) {
					sw.AfterIRCall[inst.Addr] = true
				}
			}
		case x86.ClassCallRel:
			if inst.HasTarget {
				sw.AllCallTargets[inst.Target] = true
			}
		case x86.ClassJmpRel, x86.ClassJccRel:
			if inst.HasTarget {
				cond := inst.Class == x86.ClassJccRel
				sw.JumpRefs = append(sw.JumpRefs, JumpRef{Src: inst.Addr, Target: inst.Target, Cond: cond})
				if bin.InText(inst.Target) {
					sw.JumpTargetSet[inst.Target] = true
				}
				if !cond {
					sw.UncondJumpTargets[inst.Target] = true
				}
			}
		}
		prev = inst
		havePrev = true
	}

	sw.EndbrSet = make(map[uint64]bool, len(sw.Endbrs))
	for _, e := range sw.Endbrs {
		sw.EndbrSet[e] = true
	}
	sw.CallTargetSet = make(map[uint64]bool, len(sw.AllCallTargets))
	for t := range sw.AllCallTargets {
		if bin.InText(t) {
			sw.CallTargetSet[t] = true
		}
	}
	sw.CallTargets = sortedKeys(sw.CallTargetSet)
	sw.JumpTargets = sortedKeys(sw.JumpTargetSet)
	return sw, nil
}

// scanEndbrEncodings finds the 4-byte ENDBR encodings (F3 0F 1E FA/FB)
// at every byte offset of text. Encodings whose tail would straddle the
// end of the section are not matches.
func scanEndbrEncodings(text []byte, base uint64) []uint64 {
	var out []uint64
	for off := 0; off+4 <= len(text); off++ {
		if text[off] != 0xF3 || text[off+1] != 0x0F || text[off+2] != 0x1E {
			continue
		}
		if b := text[off+3]; b != 0xFA && b != 0xFB {
			continue
		}
		out = append(out, base+uint64(off))
	}
	return out
}
