// Package analysis provides the shared per-binary analysis context.
//
// Every identifier in this module — the four FunSeeker configurations and
// the IDA, Ghidra, and FETCH baseline models — starts from the same
// expensive artifacts: one linear-sweep disassembly of .text, the
// end-branch set E with its indirect-return annotations, the direct
// call/jump reference sets C and J, the parsed .eh_frame FDE records, and
// the exception landing-pad set. Before this package existed each tool
// recomputed them independently, so one evaluation cell did ~7× redundant
// work per binary.
//
// Context memoizes each artifact under sync.Once: it is computed exactly
// once per binary, on first demand, and every later consumer — including
// consumers on other goroutines — gets the cached value. All artifacts
// are immutable after construction, so a single Context is safe to share
// across the evaluation runner's worker pool. Per-stage wall-clock costs
// and hit/miss counts are recorded in Stats (see stats.go) so the runtime
// tables can report where time actually goes.
//
// The sweep itself is produced by an architecture Backend (see
// backend.go): x86/CET and AArch64/BTI today, dispatched from the ELF
// header. The memo is per-arch — forcing a foreign backend onto a binary
// (a test, or a caller second-guessing a corrupt header) computes and
// caches its own sweep without disturbing the native one.
package analysis

import (
	"context"
	"slices"
	"sort"
	"sync"
	"time"

	"github.com/funseeker/funseeker/internal/arm64"
	"github.com/funseeker/funseeker/internal/ehframe"
	"github.com/funseeker/funseeker/internal/ehinfo"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// JumpRef records one direct jump instruction and its target.
type JumpRef struct {
	// Src is the address of the jump instruction.
	Src uint64
	// Target is the absolute destination.
	Target uint64
	// Cond reports whether the jump is conditional (Jcc). The AArch64
	// backend records unconditional jumps only, so it is always false
	// there.
	Cond bool
}

// Sweep carries everything one linear-sweep disassembly pass collects:
// the materialized instruction index plus the derived reference sets the
// identification algorithms consume. The reference-set vocabulary is
// backend-neutral — "end branch" means whatever landmark the ISA places
// at indirect-call targets (ENDBR on x86, call-accepting BTI/PACIASP
// pads on AArch64). All fields are populated once and must be treated as
// read-only.
type Sweep struct {
	// Arch is the backend that produced the sweep.
	Arch elfx.Arch

	// Index is the materialized x86 linear-sweep disassembly, nil when
	// another backend produced the sweep.
	Index *x86.Index
	// ARM64 is the materialized AArch64 sweep, nil for x86 backends.
	ARM64 *arm64.Index
	// Shards / StitchRetries are the backend-neutral parallel-decode
	// accounting (1 / 0 for a sequential sweep).
	Shards        int
	StitchRetries int

	// Endbrs is E: every landmark address in .text, ascending.
	Endbrs []uint64
	// EndbrSet is Endbrs as a membership set.
	EndbrSet map[uint64]bool
	// AfterIRCall marks end-branch addresses immediately preceded by a
	// call to a PLT entry of an indirect-return (setjmp-family) function.
	// Always empty on AArch64, where no analog is needed (see JumpPads).
	AfterIRCall map[uint64]bool
	// JumpPads is the indirect-jump-only landmark set (BTI j switch
	// labels), excluded from E by the ISA itself. Empty on x86, where the
	// single ENDBR encoding accepts calls and jumps alike.
	JumpPads []uint64

	// CallTargets is C: every direct-call target inside .text, ascending.
	CallTargets []uint64
	// CallTargetSet is CallTargets as a membership set.
	CallTargetSet map[uint64]bool
	// AllCallTargets additionally includes direct-call targets outside
	// .text (PLT stubs and the like).
	AllCallTargets map[uint64]bool

	// JumpRefs is every direct jump with its source retained for
	// SELECTTAILCALL: conditional and unconditional on x86, unconditional
	// only on AArch64 (matching the BTI algorithm's J).
	JumpRefs []JumpRef
	// JumpTargets is J restricted to .text, ascending, deduplicated.
	JumpTargets []uint64
	// JumpTargetSet is JumpTargets as a membership set.
	JumpTargetSet map[uint64]bool
	// UncondJumpTargets is the unconditional-only target set (any
	// address), the DirJmpTarget property of the Figure 3 study.
	UncondJumpTargets map[uint64]bool
}

// sweepMemo is one architecture's slot of the per-arch sweep cache.
//
// It is not a sync.Once: a canceled computation must leave the cache
// empty so the next caller recomputes under its own context, and a
// caller waiting behind an in-flight computation must still be able to
// honor its own cancellation. mu guards both fields; inflight is
// non-nil (and closed on completion) while some goroutine is computing.
type sweepMemo struct {
	mu       sync.Mutex
	inflight chan struct{}
	sweep    *Sweep
}

// supersetMemo is one architecture's slot of the byte-level marker-scan
// cache.
type supersetMemo struct {
	once onceStage
	vas  []uint64
}

// Context is the shared per-binary analysis state. Create one per binary
// with NewContext, hand it to every analyzer interested in that binary,
// and each shared artifact is computed exactly once no matter how many
// tools, configurations, or goroutines consume it.
type Context struct {
	bin *elfx.Binary

	// sweeps and supersets are indexed by elfx.Arch: one memo slot per
	// backend, so sweeps of different architectures over the same bytes
	// never collide. In the overwhelmingly common case only the binary's
	// native slot is ever touched.
	sweeps    [elfx.NArch]sweepMemo
	supersets [elfx.NArch]supersetMemo

	ehOnce  onceStage
	fdes    []ehframe.FDE
	ehWarns []string
	ehErr   error

	padsOnce onceStage
	pads     map[uint64]bool
	padsErr  error

	fdeIxOnce onceStage
	fdeIx     *FDEIndex
	fdeIxErr  error

	stats statCounters
}

// NewContext wraps a loaded binary in a fresh analysis context. Nothing
// is computed until first demand.
func NewContext(bin *elfx.Binary) *Context {
	return &Context{bin: bin}
}

// Binary returns the underlying loaded binary.
func (c *Context) Binary() *elfx.Binary { return c.bin }

// Sweep returns the memoized linear-sweep artifacts of the binary's
// native architecture, computing them on first call.
func (c *Context) Sweep() *Sweep {
	sw, _ := c.SweepCtx(context.Background()) // background never cancels
	return sw
}

// SweepCtx returns the memoized linear-sweep artifacts of the binary's
// native architecture, computing them under ctx on first call.
func (c *Context) SweepCtx(ctx context.Context) (*Sweep, error) {
	return c.SweepArchCtx(ctx, elfx.ArchAuto)
}

// SweepArchCtx returns the memoized linear-sweep artifacts for arch
// (ArchAuto selects the binary's native architecture), computing them
// under ctx on first call. Cancellation is cooperative: the sweep checks
// ctx at parallel-shard and stride boundaries, so an aborted request
// stops burning CPU within tens of microseconds. A canceled computation
// is not memoized — the next caller recomputes under its own context —
// and a caller waiting behind another goroutine's in-flight computation
// returns ctx.Err() as soon as its own context is done.
func (c *Context) SweepArchCtx(ctx context.Context, arch elfx.Arch) (*Sweep, error) {
	be, err := BackendFor(resolveArch(c.bin, arch))
	if err != nil {
		return nil, err
	}
	m := &c.sweeps[be.Arch()]
	for {
		m.mu.Lock()
		if m.sweep != nil {
			m.mu.Unlock()
			c.stats.sweep.hits.Add(1)
			return m.sweep, nil
		}
		if m.inflight == nil {
			// We are the computing goroutine.
			wait := make(chan struct{})
			m.inflight = wait
			m.mu.Unlock()

			start := time.Now()
			sw, err := be.BuildSweep(ctx, c.bin)

			m.mu.Lock()
			m.inflight = nil
			if err == nil {
				m.sweep = sw
				c.stats.sweep.observe(time.Since(start))
				c.stats.sweepShards.Add(uint64(sw.Shards))
				c.stats.stitchRetries.Add(uint64(sw.StitchRetries))
			}
			close(wait)
			m.mu.Unlock()
			if err != nil {
				return nil, err
			}
			return sw, nil
		}
		wait := m.inflight
		m.mu.Unlock()
		select {
		case <-wait:
			// Loop: either the sweep is memoized now, or the computing
			// goroutine was canceled and we take over with our own ctx.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Index returns the memoized x86 instruction index (one linear sweep).
// It is nil for binaries whose native backend is not x86; the x86-only
// baseline models are the only consumers.
func (c *Context) Index() *x86.Index { return c.Sweep().Index }

// IndexCtx returns the memoized x86 instruction index, computing the
// sweep under ctx on first call (see SweepCtx for cancellation
// semantics).
func (c *Context) IndexCtx(ctx context.Context) (*x86.Index, error) {
	sw, err := c.SweepCtx(ctx)
	if err != nil {
		return nil, err
	}
	return sw.Index, nil
}

// FDEs returns the memoized .eh_frame FDE records. Binaries without an
// .eh_frame section yield an empty slice without a parse.
func (c *Context) FDEs() ([]ehframe.FDE, error) {
	if len(c.bin.EHFrame) == 0 {
		return nil, nil
	}
	c.ehOnce.do(&c.stats.ehParse, func() {
		c.fdes, c.ehWarns, c.ehErr = ehframe.ParseWithWarnings(c.bin.EHFrame, c.bin.EHFrameAddr, c.bin.PtrSize())
	})
	return c.fdes, c.ehErr
}

// EHWarnings returns the non-fatal degradations the .eh_frame parse
// applied (unknown CIE augmentations, skipped FDEs). It shares the
// memoized parse with FDEs; a well-formed section yields none.
func (c *Context) EHWarnings() []string {
	_, _ = c.FDEs()
	return c.ehWarns
}

// FDEIndex is the interval view of a binary's FDE records: the set of
// pc-begin addresses (candidate function entries under EH-fused
// detection, per Pang et al., arXiv:2104.03168) plus a merged coverage
// map answering "does some FDE cover this address?". All fields are
// read-only after construction.
type FDEIndex struct {
	// Starts is every FDE pc-begin that lies inside .text, ascending,
	// deduplicated.
	Starts []uint64
	// StartSet is Starts as a membership set.
	StartSet map[uint64]bool

	// begins/ends are the merged coverage intervals, sorted by begin.
	begins []uint64
	ends   []uint64
}

// Covers reports whether addr falls inside some FDE coverage interval
// [pc-begin, pc-begin+pc-range).
func (ix *FDEIndex) Covers(addr uint64) bool {
	i := sort.Search(len(ix.begins), func(i int) bool { return ix.begins[i] > addr })
	return i > 0 && addr < ix.ends[i-1]
}

// Interior reports whether addr is strictly inside an FDE coverage
// interval — covered, but not a pc-begin. An FDE-covered tail-call
// "target" that is Interior is part of an already-known function, not a
// new entry.
func (ix *FDEIndex) Interior(addr uint64) bool {
	return ix.Covers(addr) && !ix.StartSet[addr]
}

// FDEIndex returns the memoized interval index over the binary's FDE
// records, derived from the memoized parse (so the whole context still
// performs at most one .eh_frame parse). Binaries without .eh_frame
// yield an empty index.
func (c *Context) FDEIndex() (*FDEIndex, error) {
	c.fdeIxOnce.do(&c.stats.fdeIndex, func() {
		fdes, err := c.FDEs()
		if err != nil {
			c.fdeIxErr = err
			return
		}
		c.fdeIx = buildFDEIndex(c.bin, fdes)
	})
	return c.fdeIx, c.fdeIxErr
}

// buildFDEIndex materializes the start set and merged coverage intervals
// for the FDEs that land in .text.
func buildFDEIndex(bin *elfx.Binary, fdes []ehframe.FDE) *FDEIndex {
	textEnd := bin.TextAddr + uint64(len(bin.Text))
	ix := &FDEIndex{StartSet: make(map[uint64]bool)}
	type iv struct{ begin, end uint64 }
	ivs := make([]iv, 0, len(fdes))
	for _, fde := range fdes {
		if fde.PCBegin < bin.TextAddr || fde.PCBegin >= textEnd {
			continue
		}
		if !ix.StartSet[fde.PCBegin] {
			ix.StartSet[fde.PCBegin] = true
			ix.Starts = append(ix.Starts, fde.PCBegin)
		}
		end := fde.PCBegin + fde.PCRange
		if end > textEnd {
			end = textEnd
		}
		if end > fde.PCBegin {
			ivs = append(ivs, iv{fde.PCBegin, end})
		}
	}
	slices.Sort(ix.Starts)
	slices.SortFunc(ivs, func(a, b iv) int {
		switch {
		case a.begin < b.begin:
			return -1
		case a.begin > b.begin:
			return 1
		}
		return 0
	})
	for _, v := range ivs {
		n := len(ix.begins)
		if n > 0 && v.begin <= ix.ends[n-1] {
			if v.end > ix.ends[n-1] {
				ix.ends[n-1] = v.end
			}
			continue
		}
		ix.begins = append(ix.begins, v.begin)
		ix.ends = append(ix.ends, v.end)
	}
	return ix
}

// LandingPads returns the memoized exception landing-pad set, derived
// from the memoized FDE records (so the whole context performs at most
// one .eh_frame parse). The returned map is read-only.
func (c *Context) LandingPads() (map[uint64]bool, error) {
	c.padsOnce.do(&c.stats.landingPad, func() {
		fdes, err := c.FDEs()
		if err != nil {
			c.pads, c.padsErr = nil, err
			return
		}
		c.pads = ehinfo.LandingPadsFromFDEs(c.bin, fdes)
	})
	return c.pads, c.padsErr
}

// SupersetEndbrs returns the memoized byte-level landmark scan of the
// binary's native architecture (see SupersetMarkers).
func (c *Context) SupersetEndbrs() []uint64 {
	return c.SupersetMarkers(elfx.ArchAuto)
}

// SupersetMarkers returns the memoized byte-level landmark scan for arch
// (ArchAuto selects the binary's native architecture): every address at
// which a call-accepting landmark encoding occurs, at any byte offset of
// .text, ascending. This is the superset-disassembly pairing the paper's
// §VI proposes; it is kept separate from Sweep because only the
// SupersetEndbrScan option consumes it. Architectures without a backend
// yield nil.
func (c *Context) SupersetMarkers(arch elfx.Arch) []uint64 {
	be, err := BackendFor(resolveArch(c.bin, arch))
	if err != nil {
		return nil
	}
	m := &c.supersets[be.Arch()]
	m.once.do(&c.stats.superset, func() {
		m.vas = be.ScanMarkers(c.bin.Text, c.bin.TextAddr)
	})
	return m.vas
}

// ObserveFilter records one FILTERENDBR stage execution of duration d.
func (c *Context) ObserveFilter(d time.Duration) { c.stats.filter.observe(d) }

// ObserveTailCall records one SELECTTAILCALL stage execution of
// duration d.
func (c *Context) ObserveTailCall(d time.Duration) { c.stats.tailCall.observe(d) }
