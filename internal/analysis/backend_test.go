package analysis

import (
	"context"
	"testing"

	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// arm64TestBinary hand-assembles a tiny AArch64 text:
//
//	0x1000: bti c              ; function entry pad
//	0x1004: bl 0x1010          ; direct call
//	0x1008: ret
//	0x100C: b 0x1000           ; unconditional direct jump
//	0x1010: paciasp            ; PAC-protected entry (also in E)
//	0x1014: ret
//	0x1018: bti j              ; jump-only pad (excluded from E)
//	0x101C: ret
func arm64TestBinary() *elfx.Binary {
	words := []uint32{
		0xD503245F, // bti c
		0x94000003, // bl +12
		0xD65F03C0, // ret
		0x17FFFFFD, // b -12
		0xD503233F, // paciasp
		0xD65F03C0, // ret
		0xD503249F, // bti j
		0xD65F03C0, // ret
	}
	text := make([]byte, 0, 4*len(words))
	for _, w := range words {
		text = append(text, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return &elfx.Binary{Arch: elfx.ArchAArch64, Text: text, TextAddr: 0x1000}
}

// TestBackendForUnknownArch: the non-backend Arch values must fail with
// an error, not fall through to a default backend.
func TestBackendForUnknownArch(t *testing.T) {
	for _, arch := range []elfx.Arch{elfx.ArchAuto, elfx.ArchUnknown, elfx.NArch} {
		if be, err := BackendFor(arch); err == nil {
			t.Errorf("BackendFor(%v) = %v, want error", arch, be.Arch())
		}
	}
}

// TestArm64SweepArtifacts: the BTI backend's landmark mapping — call
// pads and PACIASP in E, BTI j pads in JumpPads, BL targets in C,
// unconditional B references in J.
func TestArm64SweepArtifacts(t *testing.T) {
	ctx := NewContext(arm64TestBinary())
	sw := ctx.Sweep()
	if sw.Arch != elfx.ArchAArch64 {
		t.Fatalf("sweep arch = %v, want aarch64", sw.Arch)
	}
	if len(sw.Endbrs) != 2 || sw.Endbrs[0] != 0x1000 || sw.Endbrs[1] != 0x1010 {
		t.Fatalf("Endbrs = %#x, want [0x1000 0x1010]", sw.Endbrs)
	}
	if len(sw.JumpPads) != 1 || sw.JumpPads[0] != 0x1018 {
		t.Fatalf("JumpPads = %#x, want [0x1018]", sw.JumpPads)
	}
	if len(sw.CallTargets) != 1 || sw.CallTargets[0] != 0x1010 {
		t.Fatalf("CallTargets = %#x, want [0x1010]", sw.CallTargets)
	}
	if len(sw.JumpRefs) != 1 || sw.JumpRefs[0].Src != 0x100C || sw.JumpRefs[0].Target != 0x1000 || sw.JumpRefs[0].Cond {
		t.Fatalf("JumpRefs = %+v", sw.JumpRefs)
	}
	if !sw.UncondJumpTargets[0x1000] {
		t.Error("UncondJumpTargets missing 0x1000")
	}
	if sw.Index != nil {
		t.Error("x86 index populated on an arm64 sweep")
	}
	if sw.ARM64 == nil || len(sw.ARM64.Insts) != 8 {
		t.Fatalf("arm64 index missing or wrong size: %+v", sw.ARM64)
	}
}

// TestPerArchMemoization: sweeps are memoized per architecture — forcing
// a second backend over the same binary computes once more, and neither
// arch ever recomputes.
func TestPerArchMemoization(t *testing.T) {
	c := NewContext(testBinary())
	bg := context.Background()

	native := c.Sweep()
	forced, err := c.SweepArchCtx(bg, elfx.ArchAArch64)
	if err != nil {
		t.Fatalf("forced arm64 sweep: %v", err)
	}
	if native.Arch != elfx.ArchX86_64 || forced.Arch != elfx.ArchAArch64 {
		t.Fatalf("arches = %v / %v", native.Arch, forced.Arch)
	}
	if again, _ := c.SweepArchCtx(bg, elfx.ArchAArch64); again != forced {
		t.Error("forced-arch sweep not memoized")
	}
	if c.Sweep() != native {
		t.Error("native sweep evicted by forced-arch sweep")
	}
	st := c.Stats()
	if st.Sweep.Computes != 2 {
		t.Errorf("sweep computes = %d, want 2 (one per arch)", st.Sweep.Computes)
	}
}

// TestWrongArchBytesNoPanic: feeding either backend the other ISA's
// bytes must degrade to a meaningless-but-well-formed sweep, never
// panic — the server runs arch-forced requests on untrusted uploads.
func TestWrongArchBytesNoPanic(t *testing.T) {
	bg := context.Background()

	// x86 code through the arm64 backend (length not a multiple of 4).
	if sw, err := NewContext(testBinary()).SweepArchCtx(bg, elfx.ArchAArch64); err != nil || sw.Arch != elfx.ArchAArch64 {
		t.Fatalf("arm64 over x86 bytes: sweep %v err %v", sw, err)
	}
	// arm64 code through both x86 backends.
	for _, arch := range []elfx.Arch{elfx.ArchX86, elfx.ArchX86_64} {
		if sw, err := NewContext(arm64TestBinary()).SweepArchCtx(bg, arch); err != nil || sw.Arch != arch {
			t.Fatalf("%v over arm64 bytes: sweep %v err %v", arch, sw, err)
		}
	}
}

// TestResolveArchFallback: hand-built binaries without an Arch resolve
// through the historical x86 mode rule, so pre-seam callers (tests,
// synth pipelines) keep working unchanged.
func TestResolveArchFallback(t *testing.T) {
	cases := []struct {
		bin  *elfx.Binary
		arch elfx.Arch
		want elfx.Arch
	}{
		{&elfx.Binary{Mode: x86.Mode32}, elfx.ArchAuto, elfx.ArchX86},
		{&elfx.Binary{Mode: x86.Mode64}, elfx.ArchAuto, elfx.ArchX86_64},
		{&elfx.Binary{Arch: elfx.ArchAArch64}, elfx.ArchAuto, elfx.ArchAArch64},
		{&elfx.Binary{Arch: elfx.ArchAArch64}, elfx.ArchX86_64, elfx.ArchX86_64},
	}
	for i, tc := range cases {
		if got := resolveArch(tc.bin, tc.arch); got != tc.want {
			t.Errorf("case %d: resolveArch = %v, want %v", i, got, tc.want)
		}
	}
}
