// Package cet holds Intel CET domain knowledge shared by the synthesizer
// and the identification tools: the list of indirect-return functions for
// which compilers insert an end-branch instruction after the call site.
package cet

// IndirectReturnFuncs is the predefined list of functions that return via
// an indirect jump, as hard-coded in GCC (gcc/calls.c, special_function_p).
// A call to any of them is followed by an ENDBR instruction so the
// indirect return edge passes the IBT check.
var IndirectReturnFuncs = []string{
	"setjmp", "_setjmp", "sigsetjmp", "__sigsetjmp", "vfork",
}

// IsIndirectReturnFunc reports whether name is in the predefined
// indirect-return list.
func IsIndirectReturnFunc(name string) bool {
	for _, f := range IndirectReturnFuncs {
		if f == name {
			return true
		}
	}
	return false
}
