package cet

import "testing"

func TestIndirectReturnFuncs(t *testing.T) {
	// The exact five functions GCC's special_function_p flags.
	want := []string{"setjmp", "_setjmp", "sigsetjmp", "__sigsetjmp", "vfork"}
	if len(IndirectReturnFuncs) != len(want) {
		t.Fatalf("list has %d entries, want %d", len(IndirectReturnFuncs), len(want))
	}
	for _, name := range want {
		if !IsIndirectReturnFunc(name) {
			t.Errorf("IsIndirectReturnFunc(%q) = false", name)
		}
	}
	for _, name := range []string{"longjmp", "fork", "", "setjmp2", "Setjmp"} {
		if IsIndirectReturnFunc(name) {
			t.Errorf("IsIndirectReturnFunc(%q) = true", name)
		}
	}
}
