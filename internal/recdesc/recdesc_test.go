package recdesc

import (
	"testing"

	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// build compiles a small program and loads its stripped image.
func build(t *testing.T, spec *synth.ProgSpec, cfg synth.Config) (*elfx.Binary, *groundtruth.GT) {
	t.Helper()
	res, err := synth.Compile(spec, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	bin, err := elfx.Load(res.Stripped)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return bin, res.GT
}

func chainSpec() *synth.ProgSpec {
	return &synth.ProgSpec{
		Name: "chain",
		Lang: synth.LangC,
		Seed: 5,
		Funcs: []synth.FuncSpec{
			{Name: "main", Calls: []int{1}},
			{Name: "a", Calls: []int{2}},
			{Name: "b", Calls: []int{3}},
			{Name: "c", Static: true},
			{Name: "island"}, // unreferenced: traversal must not find it
		},
	}
}

func TestTraverseFollowsCallChain(t *testing.T) {
	bin, gt := build(t, chainSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	// _start passes main by lea rather than calling it, so seed the
	// traversal with both (real tools locate main the same way, via the
	// __libc_start_main argument).
	res := Traverse(bin, []uint64{bin.Entry, addrOf(t, gt, "main")})
	found := map[uint64]bool{}
	for e := range res.Functions {
		found[e] = true
	}
	for _, f := range gt.Funcs {
		wantFound := f.Name != "island"
		if found[f.Addr] != wantFound {
			t.Errorf("%s: found=%v, want %v", f.Name, found[f.Addr], wantFound)
		}
	}
	// Coverage must include main's body but not the island's.
	island, _ := gt.FuncAt(addrOf(t, gt, "island"))
	off := island.Addr - bin.TextAddr
	if res.Covered[off] {
		t.Error("island body covered by traversal")
	}
}

func addrOf(t *testing.T, gt *groundtruth.GT, name string) uint64 {
	t.Helper()
	for _, f := range gt.Funcs {
		if f.Name == name {
			return f.Addr
		}
	}
	t.Fatalf("no function %s", name)
	return 0
}

func TestTraverseSeedsOutsideText(t *testing.T) {
	bin, _ := build(t, chainSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	res := Traverse(bin, []uint64{0xdeadbeef, bin.Entry})
	if _, ok := res.Functions[0xdeadbeef]; ok {
		t.Error("out-of-text seed became a function")
	}
	if len(res.Entries()) == 0 {
		t.Error("no functions discovered")
	}
	// Entries are sorted.
	es := res.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1] >= es[i] {
			t.Fatal("Entries not sorted")
		}
	}
}

func TestEscapingJumps(t *testing.T) {
	// Two functions tail-jump to a third that is already a known
	// function (direct-called elsewhere): the jumps must be recorded as
	// escaping rather than absorbed.
	spec := &synth.ProgSpec{
		Name: "tails",
		Lang: synth.LangC,
		Seed: 6,
		Funcs: []synth.FuncSpec{
			{Name: "main", Calls: []int{1, 2, 3}},
			{Name: "w1", TailCalls: []int{3}},
			// A large function separates the tail jumps from their
			// target so they land beyond the intra-function span.
			{Name: "w2", TailCalls: []int{3}, BodySize: 600},
			{Name: "impl"},
		},
	}
	bin, gt := build(t, spec, synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	res := Traverse(bin, []uint64{bin.Entry, addrOf(t, gt, "main")})
	impl := addrOf(t, gt, "impl")
	escapes := 0
	for _, fn := range res.Functions {
		for _, tgt := range fn.EscapingJumps {
			if tgt == impl {
				escapes++
			}
		}
	}
	if escapes < 1 {
		t.Errorf("no escaping jumps to impl recorded")
	}
}

func TestGapsSkipPadding(t *testing.T) {
	bin, _ := build(t, chainSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	res := Traverse(bin, []uint64{bin.Entry})
	gaps := Gaps(bin, res.Covered)
	if len(gaps) == 0 {
		t.Fatal("island must create a gap")
	}
	for _, g := range gaps {
		inst, err := x86.Decode(bin.Text[g.Addr-bin.TextAddr:], g.Addr, bin.Mode)
		if err != nil {
			t.Fatalf("gap starts at undecodable bytes: %v", err)
		}
		if inst.Class == x86.ClassNop || inst.Class == x86.ClassInt3 {
			t.Errorf("gap at %#x starts with padding", g.Addr)
		}
	}
}

func TestClassifyPrologue(t *testing.T) {
	// O0 functions use the classic frame-pointer prologue after endbr.
	bin, gt := build(t, chainSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O0})
	for _, f := range gt.Funcs {
		if f.Name == "_start" {
			continue
		}
		got := ClassifyPrologue(bin, f.Addr)
		if got != PrologueFramePointer {
			t.Errorf("%s at O0: prologue = %v, want frame pointer", f.Name, got)
		}
	}
	// O2 drops the frame pointer: endbr-carrying entries classify as
	// endbr-only.
	bin2, gt2 := build(t, chainSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	f := mustFunc(t, gt2, "island")
	if got := ClassifyPrologue(bin2, f.Addr); got != PrologueEndbrOnly {
		t.Errorf("island at O2: prologue = %v, want endbr-only", got)
	}
	st := mustFunc(t, gt2, "c")
	if got := ClassifyPrologue(bin2, st.Addr); got != PrologueNone {
		t.Errorf("static c at O2: prologue = %v, want none", got)
	}
	if got := ClassifyPrologue(bin2, 0xdeadbeef); got != PrologueNone {
		t.Errorf("out of text: %v", got)
	}
}

func mustFunc(t *testing.T, gt *groundtruth.GT, name string) groundtruth.Func {
	t.Helper()
	f, ok := gt.FuncAt(addrOf(t, gt, name))
	if !ok {
		t.Fatalf("no %s", name)
	}
	return f
}

func TestContainsEarlyCall(t *testing.T) {
	bin, gt := build(t, chainSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	main := addrOf(t, gt, "main")
	// main calls a — somewhere; a generous window must see it.
	if !ContainsEarlyCall(bin, main, 64) {
		t.Error("main: no call found in a generous window")
	}
	if ContainsEarlyCall(bin, 0xdeadbeef, 8) {
		t.Error("out-of-text address reported a call")
	}
}

func TestWalkGapsVisitsAllIslands(t *testing.T) {
	// Several unreferenced functions back to back at O1 (no alignment
	// padding between them) must each be visited.
	spec := &synth.ProgSpec{
		Name: "islands",
		Lang: synth.LangC,
		Seed: 8,
		Funcs: []synth.FuncSpec{
			{Name: "main"},
			{Name: "i1"},
			{Name: "i2"},
			{Name: "i3"},
		},
	}
	bin, gt := build(t, spec, synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O1})
	res := Traverse(bin, []uint64{bin.Entry})
	visited := map[uint64]bool{}
	WalkGaps(bin, res.Covered, func(va uint64, chunkStart bool) bool {
		if ClassifyPrologue(bin, va) == PrologueFramePointer {
			visited[va] = true
			sub := Traverse(bin, []uint64{va})
			for i, v := range sub.Covered {
				if v {
					res.Covered[i] = true
				}
			}
			return true
		}
		return false
	})
	for _, name := range []string{"main", "i1", "i2", "i3"} {
		if !visited[addrOf(t, gt, name)] {
			t.Errorf("%s not visited by WalkGaps", name)
		}
	}
}
