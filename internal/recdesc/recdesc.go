// Package recdesc implements the recursive-descent code discovery shared
// by the IDA- and Ghidra-style baseline identifiers: starting from seed
// entry points, functions are explored block by block, direct call
// targets become new functions, and jumps that escape their function's
// explored extent are reported as tail-call candidates.
package recdesc

import (
	"sort"

	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// Func is one discovered function.
type Func struct {
	// Entry is the function entry address.
	Entry uint64
	// End is one past the highest explored address.
	End uint64
	// EscapingJumps lists direct unconditional jump targets that left
	// the function's explored extent (tail-call candidates).
	EscapingJumps []uint64
}

// Result is the outcome of a traversal.
type Result struct {
	// Functions maps entry address to discovery data.
	Functions map[uint64]*Func
	// Covered marks every byte of .text reached by the traversal
	// (offset-indexed).
	Covered []bool
}

// Entries returns the sorted function entry addresses.
func (r *Result) Entries() []uint64 {
	out := make([]uint64, 0, len(r.Functions))
	for e := range r.Functions {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Traverse explores the binary from the seed entries.
func Traverse(bin *elfx.Binary, seeds []uint64) *Result {
	res := &Result{
		Functions: make(map[uint64]*Func),
		Covered:   make([]bool, len(bin.Text)),
	}
	queue := append([]uint64(nil), seeds...)
	for len(queue) > 0 {
		entry := queue[0]
		queue = queue[1:]
		if !bin.InText(entry) {
			continue
		}
		if _, done := res.Functions[entry]; done {
			continue
		}
		fn := &Func{Entry: entry}
		res.Functions[entry] = fn
		newCalls := exploreFunction(bin, fn, res)
		queue = append(queue, newCalls...)
	}
	return res
}

// exploreFunction walks one function's control flow. It returns newly
// discovered call targets.
func exploreFunction(bin *elfx.Binary, fn *Func, res *Result) []uint64 {
	var calls []uint64
	visited := make(map[uint64]bool)
	blocks := []uint64{fn.Entry}
	maxEnd := fn.Entry

	for len(blocks) > 0 {
		pc := blocks[len(blocks)-1]
		blocks = blocks[:len(blocks)-1]
		if visited[pc] || !bin.InText(pc) {
			continue
		}
	blockLoop:
		for bin.InText(pc) && !visited[pc] {
			visited[pc] = true
			off := pc - bin.TextAddr
			inst, err := x86.Decode(bin.Text[off:], pc, bin.Mode)
			if err != nil {
				break
			}
			for i := uint64(0); i < uint64(inst.Len) && off+i < uint64(len(res.Covered)); i++ {
				res.Covered[off+i] = true
			}
			if next := inst.Next(); next > maxEnd {
				maxEnd = next
			}
			switch inst.Class {
			case x86.ClassRet, x86.ClassHlt, x86.ClassUD, x86.ClassJmpInd:
				break blockLoop
			case x86.ClassCallRel:
				if inst.HasTarget && bin.InText(inst.Target) {
					calls = append(calls, inst.Target)
				}
			case x86.ClassJccRel:
				if inst.HasTarget && inTraversalExtent(fn.Entry, inst.Target, maxEnd) {
					blocks = append(blocks, inst.Target)
				}
			case x86.ClassJmpRel:
				if !inst.HasTarget {
					break blockLoop
				}
				_, isKnownFunc := res.Functions[inst.Target]
				if !isKnownFunc && inTraversalExtent(fn.Entry, inst.Target, maxEnd) {
					blocks = append(blocks, inst.Target)
				} else if bin.InText(inst.Target) && inst.Target != fn.Entry {
					fn.EscapingJumps = append(fn.EscapingJumps, inst.Target)
				}
				break blockLoop
			}
			pc = inst.Next()
		}
	}
	fn.End = maxEnd
	return calls
}

// intraFunctionSpan bounds how far forward a jump may land and still be
// considered part of the same function during discovery. Compiler-split
// cold fragments live far past this span, which is how they surface as
// escaping jumps.
const intraFunctionSpan = 0x800

// inTraversalExtent decides whether a branch target belongs to the
// function being explored.
func inTraversalExtent(entry, target, maxEnd uint64) bool {
	if target < entry {
		return false
	}
	return target < maxEnd+intraFunctionSpan
}

// GapChunk is a maximal uncovered region of .text after padding removal.
type GapChunk struct {
	// Addr is the first non-padding address of the chunk.
	Addr uint64
	// Size is the chunk length in bytes.
	Size uint64
}

// Gaps returns the uncovered, non-padding chunks of .text in address
// order. Padding (NOP forms and INT3) at the start of each gap is
// skipped; a gap consisting only of padding is dropped.
func Gaps(bin *elfx.Binary, covered []bool) []GapChunk {
	var gaps []GapChunk
	n := len(bin.Text)
	for off := 0; off < n; {
		if covered[off] {
			off++
			continue
		}
		start := off
		for off < n && !covered[off] {
			off++
		}
		// Skip leading padding instructions.
		cur := start
		for cur < off {
			inst, err := x86.Decode(bin.Text[cur:], bin.TextAddr+uint64(cur), bin.Mode)
			if err != nil || (inst.Class != x86.ClassNop && inst.Class != x86.ClassInt3) {
				break
			}
			cur += inst.Len
		}
		if cur < off {
			gaps = append(gaps, GapChunk{
				Addr: bin.TextAddr + uint64(cur),
				Size: uint64(off - cur),
			})
		}
	}
	return gaps
}

// WalkGaps scans the uncovered portions of .text, invoking visit at each
// candidate start after skipping padding instructions. chunkStart is true
// when the candidate begins a fresh uncovered chunk (it follows covered
// code, padding, a control-flow break, or the section start) — the
// positions where disassemblers apply their more speculative heuristics.
// When visit returns true the caller is expected to have extended covered
// (typically by traversing a newly accepted function); scanning then
// resumes at the next uncovered byte. When visit returns false, the
// instruction at the candidate is marked covered and skipped. This
// per-instruction walk is what lets signature scans find back-to-back
// functions in one large gap (unaligned -O0/-O1 layouts).
func WalkGaps(bin *elfx.Binary, covered []bool, visit func(va uint64, chunkStart bool) bool) {
	n := len(bin.Text)
	chunkStart := true
	for off := 0; off < n; {
		if covered[off] {
			off++
			chunkStart = true
			continue
		}
		inst, err := x86.Decode(bin.Text[off:], bin.TextAddr+uint64(off), bin.Mode)
		if err != nil {
			covered[off] = true
			off++
			chunkStart = true
			continue
		}
		if inst.Class == x86.ClassNop || inst.Class == x86.ClassInt3 {
			markRange(covered, off, inst.Len)
			off += inst.Len
			chunkStart = true
			continue
		}
		if visit(bin.TextAddr+uint64(off), chunkStart) {
			if !covered[off] {
				// The visitor accepted but did not cover the entry;
				// avoid livelock.
				covered[off] = true
			}
			chunkStart = true
			continue
		}
		markRange(covered, off, inst.Len)
		off += inst.Len
		// After a control-flow break the following instruction begins a
		// new orphan chunk.
		chunkStart = inst.Class.IsBranch() && inst.Class != x86.ClassCallRel &&
			inst.Class != x86.ClassCallInd && inst.Class != x86.ClassJccRel ||
			inst.Class == x86.ClassHlt || inst.Class == x86.ClassUD
	}
}

func markRange(covered []bool, off, n int) {
	for i := 0; i < n && off+i < len(covered); i++ {
		covered[off+i] = true
	}
}

// PrologueKind classifies what a gap chunk starts with.
type PrologueKind int

// Prologue classifications.
const (
	// PrologueNone: no recognized pattern.
	PrologueNone PrologueKind = iota
	// PrologueFramePointer: [endbr] push rbp; mov rbp, rsp.
	PrologueFramePointer
	// PrologueEndbrOnly: an end-branch marker with no classic prologue.
	PrologueEndbrOnly
)

// ClassifyPrologue inspects the first instructions at va.
func ClassifyPrologue(bin *elfx.Binary, va uint64) PrologueKind {
	insts := decodeWindow(bin, va, 3)
	if len(insts) == 0 {
		return PrologueNone
	}
	i := 0
	sawEndbr := false
	if insts[i].IsEndbr() {
		sawEndbr = true
		i++
	}
	if i+1 < len(insts) && isPushRBP(insts[i]) && isMovRBPRSP(insts[i+1]) {
		return PrologueFramePointer
	}
	if sawEndbr {
		return PrologueEndbrOnly
	}
	return PrologueNone
}

// ContainsEarlyCall reports whether a direct call appears within the
// first n instructions at va (the "orphan code rescue" heuristic).
func ContainsEarlyCall(bin *elfx.Binary, va uint64, n int) bool {
	for _, inst := range decodeWindow(bin, va, n) {
		if inst.Class == x86.ClassCallRel || inst.Class == x86.ClassCallInd {
			return true
		}
	}
	return false
}

func decodeWindow(bin *elfx.Binary, va uint64, n int) []x86.Inst {
	if !bin.InText(va) {
		return nil
	}
	out := make([]x86.Inst, 0, n)
	off := va - bin.TextAddr
	for len(out) < n && off < uint64(len(bin.Text)) {
		inst, err := x86.Decode(bin.Text[off:], bin.TextAddr+off, bin.Mode)
		if err != nil {
			break
		}
		out = append(out, inst)
		off += uint64(inst.Len)
	}
	return out
}

func isPushRBP(inst x86.Inst) bool {
	return inst.OpcodeMap == 1 && inst.Opcode == 0x55
}

func isMovRBPRSP(inst x86.Inst) bool {
	// 48 89 E5 (x86-64) or 89 E5 (x86): mov rbp/ebp, rsp/esp.
	return inst.OpcodeMap == 1 && inst.Opcode == 0x89 &&
		inst.HasModRM && inst.ModRM == 0xE5
}
