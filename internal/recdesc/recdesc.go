// Package recdesc implements the recursive-descent code discovery shared
// by the IDA- and Ghidra-style baseline identifiers: starting from seed
// entry points, functions are explored block by block, direct call
// targets become new functions, and jumps that escape their function's
// explored extent are reported as tail-call candidates.
package recdesc

import (
	"slices"

	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/x86"
)

// Func is one discovered function.
type Func struct {
	// Entry is the function entry address.
	Entry uint64
	// End is one past the highest explored address.
	End uint64
	// EscapingJumps lists direct unconditional jump targets that left
	// the function's explored extent (tail-call candidates).
	EscapingJumps []uint64
}

// Result is the outcome of a traversal.
type Result struct {
	// Functions maps entry address to discovery data.
	Functions map[uint64]*Func
	// Covered marks every byte of .text reached by the traversal
	// (offset-indexed).
	Covered []bool
}

// Entries returns the sorted function entry addresses.
func (r *Result) Entries() []uint64 {
	out := make([]uint64, 0, len(r.Functions))
	for e := range r.Functions {
		out = append(out, e)
	}
	slices.Sort(out)
	return out
}

// source bundles a binary with an optional memoized linear-sweep index.
// When the index is present, instruction starts it already decoded are
// served from it instead of re-running the decoder; addresses the global
// sweep never reached (desynchronized regions) fall back to a fresh
// decode, so results are byte-identical either way — decoding the same
// bytes at the same address is deterministic.
type source struct {
	bin *elfx.Binary
	idx *x86.Index
}

// decode returns the instruction at va: a pointer into the shared index
// on a hit (must not be modified), or scratch filled by a fresh decode.
func (s source) decode(va uint64, scratch *x86.Inst) (*x86.Inst, error) {
	if s.idx != nil {
		if p := s.idx.AtPtr(va); p != nil {
			return p, nil
		}
	}
	if err := x86.DecodeInto(s.bin.Text[va-s.bin.TextAddr:], va, s.bin.Mode, scratch); err != nil {
		return nil, err
	}
	return scratch, nil
}

// Walker carries the reusable state for repeated traversals over one
// binary: the optional decode index and an epoch-numbered visited set,
// so per-function exploration allocates neither a map nor a fresh array.
type Walker struct {
	src     source
	visited []uint32
	gen     uint32
}

// NewWalker prepares traversal state for bin. idx may be nil; when
// present it is the binary's memoized linear-sweep index and spares
// re-decoding instructions the sweep already produced.
func NewWalker(bin *elfx.Binary, idx *x86.Index) *Walker {
	return &Walker{
		src:     source{bin: bin, idx: idx},
		visited: make([]uint32, len(bin.Text)),
	}
}

// Traverse explores the binary from the seed entries into a fresh
// coverage array.
func (w *Walker) Traverse(seeds []uint64) *Result {
	return w.TraverseInto(seeds, make([]bool, len(w.src.bin.Text)))
}

// TraverseInto explores the binary from the seed entries, marking
// coverage directly into covered (length len(.text)), which the returned
// Result shares. Bytes already marked stay marked — merge semantics
// without the extra array and copy.
func (w *Walker) TraverseInto(seeds []uint64, covered []bool) *Result {
	bin := w.src.bin
	res := &Result{
		Functions: make(map[uint64]*Func),
		Covered:   covered,
	}
	queue := append([]uint64(nil), seeds...)
	for len(queue) > 0 {
		entry := queue[0]
		queue = queue[1:]
		if !bin.InText(entry) {
			continue
		}
		if _, done := res.Functions[entry]; done {
			continue
		}
		fn := &Func{Entry: entry}
		res.Functions[entry] = fn
		queue = append(queue, w.exploreFunction(fn, res)...)
	}
	return res
}

// Traverse explores the binary from the seed entries.
func Traverse(bin *elfx.Binary, seeds []uint64) *Result {
	return NewWalker(bin, nil).Traverse(seeds)
}

// TraverseIndexed is Traverse backed by a memoized linear-sweep index
// (may be nil). Callers doing repeated traversals over one binary should
// hold a Walker instead.
func TraverseIndexed(bin *elfx.Binary, idx *x86.Index, seeds []uint64) *Result {
	return NewWalker(bin, idx).Traverse(seeds)
}

// exploreFunction walks one function's control flow. It returns newly
// discovered call targets.
func (w *Walker) exploreFunction(fn *Func, res *Result) []uint64 {
	bin := w.src.bin
	w.gen++
	gen := w.gen
	var calls []uint64
	var scratch x86.Inst
	blocks := []uint64{fn.Entry}
	maxEnd := fn.Entry

	for len(blocks) > 0 {
		pc := blocks[len(blocks)-1]
		blocks = blocks[:len(blocks)-1]
		if !bin.InText(pc) || w.visited[pc-bin.TextAddr] == gen {
			continue
		}
	blockLoop:
		for bin.InText(pc) && w.visited[pc-bin.TextAddr] != gen {
			off := pc - bin.TextAddr
			w.visited[off] = gen
			inst, err := w.src.decode(pc, &scratch)
			if err != nil {
				break
			}
			for i := uint64(0); i < uint64(inst.Len) && off+i < uint64(len(res.Covered)); i++ {
				res.Covered[off+i] = true
			}
			next := pc + uint64(inst.Len)
			if next > maxEnd {
				maxEnd = next
			}
			switch inst.Class {
			case x86.ClassRet, x86.ClassHlt, x86.ClassUD, x86.ClassJmpInd:
				break blockLoop
			case x86.ClassCallRel:
				if inst.HasTarget && bin.InText(inst.Target) {
					calls = append(calls, inst.Target)
				}
			case x86.ClassJccRel:
				if inst.HasTarget && inTraversalExtent(fn.Entry, inst.Target, maxEnd) {
					blocks = append(blocks, inst.Target)
				}
			case x86.ClassJmpRel:
				if !inst.HasTarget {
					break blockLoop
				}
				_, isKnownFunc := res.Functions[inst.Target]
				if !isKnownFunc && inTraversalExtent(fn.Entry, inst.Target, maxEnd) {
					blocks = append(blocks, inst.Target)
				} else if bin.InText(inst.Target) && inst.Target != fn.Entry {
					fn.EscapingJumps = append(fn.EscapingJumps, inst.Target)
				}
				break blockLoop
			}
			pc = next
		}
	}
	fn.End = maxEnd
	return calls
}

// intraFunctionSpan bounds how far forward a jump may land and still be
// considered part of the same function during discovery. Compiler-split
// cold fragments live far past this span, which is how they surface as
// escaping jumps.
const intraFunctionSpan = 0x800

// inTraversalExtent decides whether a branch target belongs to the
// function being explored.
func inTraversalExtent(entry, target, maxEnd uint64) bool {
	if target < entry {
		return false
	}
	return target < maxEnd+intraFunctionSpan
}

// GapChunk is a maximal uncovered region of .text after padding removal.
type GapChunk struct {
	// Addr is the first non-padding address of the chunk.
	Addr uint64
	// Size is the chunk length in bytes.
	Size uint64
}

// Gaps returns the uncovered, non-padding chunks of .text in address
// order. Padding (NOP forms and INT3) at the start of each gap is
// skipped; a gap consisting only of padding is dropped.
func Gaps(bin *elfx.Binary, covered []bool) []GapChunk {
	var gaps []GapChunk
	n := len(bin.Text)
	for off := 0; off < n; {
		if covered[off] {
			off++
			continue
		}
		start := off
		for off < n && !covered[off] {
			off++
		}
		// Skip leading padding instructions.
		cur := start
		for cur < off {
			inst, err := x86.Decode(bin.Text[cur:], bin.TextAddr+uint64(cur), bin.Mode)
			if err != nil || (inst.Class != x86.ClassNop && inst.Class != x86.ClassInt3) {
				break
			}
			cur += inst.Len
		}
		if cur < off {
			gaps = append(gaps, GapChunk{
				Addr: bin.TextAddr + uint64(cur),
				Size: uint64(off - cur),
			})
		}
	}
	return gaps
}

// WalkGaps scans the uncovered portions of .text, invoking visit at each
// candidate start after skipping padding instructions. chunkStart is true
// when the candidate begins a fresh uncovered chunk (it follows covered
// code, padding, a control-flow break, or the section start) — the
// positions where disassemblers apply their more speculative heuristics.
// When visit returns true the caller is expected to have extended covered
// (typically by traversing a newly accepted function); scanning then
// resumes at the next uncovered byte. When visit returns false, the
// instruction at the candidate is marked covered and skipped. This
// per-instruction walk is what lets signature scans find back-to-back
// functions in one large gap (unaligned -O0/-O1 layouts).
func WalkGaps(bin *elfx.Binary, covered []bool, visit func(va uint64, chunkStart bool) bool) {
	WalkGapsIndexed(bin, nil, covered, visit)
}

// WalkGapsIndexed is WalkGaps backed by a memoized linear-sweep index
// (may be nil).
func WalkGapsIndexed(bin *elfx.Binary, idx *x86.Index, covered []bool, visit func(va uint64, chunkStart bool) bool) {
	src := source{bin: bin, idx: idx}
	var scratch x86.Inst
	n := len(bin.Text)
	chunkStart := true
	for off := 0; off < n; {
		if covered[off] {
			off++
			chunkStart = true
			continue
		}
		inst, err := src.decode(bin.TextAddr+uint64(off), &scratch)
		if err != nil {
			covered[off] = true
			off++
			chunkStart = true
			continue
		}
		if inst.Class == x86.ClassNop || inst.Class == x86.ClassInt3 {
			markRange(covered, off, inst.Len)
			off += inst.Len
			chunkStart = true
			continue
		}
		if visit(bin.TextAddr+uint64(off), chunkStart) {
			if !covered[off] {
				// The visitor accepted but did not cover the entry;
				// avoid livelock.
				covered[off] = true
			}
			chunkStart = true
			continue
		}
		markRange(covered, off, inst.Len)
		off += inst.Len
		// After a control-flow break the following instruction begins a
		// new orphan chunk.
		chunkStart = inst.Class.IsBranch() && inst.Class != x86.ClassCallRel &&
			inst.Class != x86.ClassCallInd && inst.Class != x86.ClassJccRel ||
			inst.Class == x86.ClassHlt || inst.Class == x86.ClassUD
	}
}

func markRange(covered []bool, off, n int) {
	for i := 0; i < n && off+i < len(covered); i++ {
		covered[off+i] = true
	}
}

// PrologueKind classifies what a gap chunk starts with.
type PrologueKind int

// Prologue classifications.
const (
	// PrologueNone: no recognized pattern.
	PrologueNone PrologueKind = iota
	// PrologueFramePointer: [endbr] push rbp; mov rbp, rsp.
	PrologueFramePointer
	// PrologueEndbrOnly: an end-branch marker with no classic prologue.
	PrologueEndbrOnly
)

// ClassifyPrologue inspects the first instructions at va.
func ClassifyPrologue(bin *elfx.Binary, va uint64) PrologueKind {
	return ClassifyPrologueIndexed(bin, nil, va)
}

// ClassifyPrologueIndexed is ClassifyPrologue backed by a memoized
// linear-sweep index (may be nil).
func ClassifyPrologueIndexed(bin *elfx.Binary, idx *x86.Index, va uint64) PrologueKind {
	var buf [3]x86.Inst
	insts := decodeWindow(source{bin: bin, idx: idx}, va, buf[:0])
	if len(insts) == 0 {
		return PrologueNone
	}
	i := 0
	sawEndbr := false
	if insts[i].IsEndbr() {
		sawEndbr = true
		i++
	}
	if i+1 < len(insts) && isPushRBP(insts[i]) && isMovRBPRSP(insts[i+1]) {
		return PrologueFramePointer
	}
	if sawEndbr {
		return PrologueEndbrOnly
	}
	return PrologueNone
}

// ContainsEarlyCall reports whether a direct call appears within the
// first n instructions at va (the "orphan code rescue" heuristic).
func ContainsEarlyCall(bin *elfx.Binary, va uint64, n int) bool {
	return ContainsEarlyCallIndexed(bin, nil, va, n)
}

// ContainsEarlyCallIndexed is ContainsEarlyCall backed by a memoized
// linear-sweep index (may be nil).
func ContainsEarlyCallIndexed(bin *elfx.Binary, idx *x86.Index, va uint64, n int) bool {
	buf := make([]x86.Inst, 0, n)
	for _, inst := range decodeWindow(source{bin: bin, idx: idx}, va, buf) {
		if inst.Class == x86.ClassCallRel || inst.Class == x86.ClassCallInd {
			return true
		}
	}
	return false
}

// decodeWindow fills out (an empty slice whose capacity bounds the
// window) with successive instructions starting at va.
func decodeWindow(src source, va uint64, out []x86.Inst) []x86.Inst {
	bin := src.bin
	if !bin.InText(va) {
		return nil
	}
	var scratch x86.Inst
	off := va - bin.TextAddr
	for len(out) < cap(out) && off < uint64(len(bin.Text)) {
		inst, err := src.decode(bin.TextAddr+off, &scratch)
		if err != nil {
			break
		}
		out = append(out, *inst)
		off += uint64(inst.Len)
	}
	return out
}

func isPushRBP(inst x86.Inst) bool {
	return inst.OpcodeMap == 1 && inst.Opcode == 0x55
}

func isMovRBPRSP(inst x86.Inst) bool {
	// 48 89 E5 (x86-64) or 89 E5 (x86): mov rbp/ebp, rsp/esp.
	return inst.OpcodeMap == 1 && inst.Opcode == 0x89 &&
		inst.HasModRM && inst.ModRM == 0xE5
}
