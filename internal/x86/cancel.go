package x86

import "context"

// cancelStride is the number of code bytes a cancellation-aware sweep
// decodes between context checks. The stride keeps the check off the
// per-instruction hot path (one ctx.Err() per 64 KiB of text costs
// nothing measurable) while still bounding how much work a canceled
// request can keep doing: a few tens of microseconds of decode.
const cancelStride = 64 << 10

// LinearSweepCtx is LinearSweep with cooperative cancellation: the sweep
// checks ctx every cancelStride bytes of input (including before the
// first instruction) and returns ctx.Err() if the context is done. A
// context that can never be canceled dispatches to the allocation-free
// LinearSweep unchanged.
//
// On cancellation the instructions already delivered to fn remain
// delivered; callers must treat the whole result as abandoned.
func LinearSweepCtx(ctx context.Context, code []byte, base uint64, mode Mode, fn func(*Inst) bool) (skipped int, err error) {
	if ctx.Done() == nil {
		return LinearSweep(code, base, mode, fn), nil
	}
	var inst Inst
	off, next := 0, 0
	for off < len(code) {
		if off >= next {
			if err := ctx.Err(); err != nil {
				return skipped, err
			}
			next = off + cancelStride
		}
		if err := DecodeInto(code[off:], base+uint64(off), mode, &inst); err != nil {
			off++
			skipped++
			continue
		}
		if !fn(&inst) {
			return skipped, nil
		}
		off += inst.Len
	}
	return skipped, nil
}

// BuildIndexCtx is BuildIndex with cooperative cancellation (see
// LinearSweepCtx). On cancellation it returns (nil, ctx.Err()) and the
// partial decode is discarded. It shares the two-pass exact-size build
// with BuildIndex.
func BuildIndexCtx(ctx context.Context, code []byte, base uint64, mode Mode) (*Index, error) {
	return buildIndexSeq(ctx, code, base, mode)
}

// BuildIndexParallelCtx is BuildIndexParallel with cooperative
// cancellation: every shard checks ctx at cancelStride boundaries of its
// chunk, and the seam stitcher does the same, so an aborted request
// stops burning all cores within a stride. On cancellation it returns
// (nil, ctx.Err()).
func BuildIndexParallelCtx(ctx context.Context, code []byte, base uint64, mode Mode, workers int) (*Index, error) {
	return buildIndexParallel(ctx, code, base, mode, workers)
}
