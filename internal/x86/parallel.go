package x86

import (
	"context"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// minParallelBytes is the smallest text BuildIndexParallel will shard
// when asked to pick a worker count itself: below this the goroutine
// fan-out and seam stitching cost more than the decode. This is the
// single auto-selection threshold — internal/analysis delegates to it by
// always requesting workers <= 0.
const minParallelBytes = 256 << 10

// minShardBytes is the smallest chunk the auto worker-count picker will
// hand a shard. Explicit worker counts bypass it (tests deliberately
// shard tiny texts to force odd seam placements).
const minShardBytes = 64 << 10

// maxShardBytes caps how much text one shard covers. Shard count is
// decoupled from worker count: workers bounds *concurrency* while the
// atomic work-stealing counter in runShards hands out shards, so
// splitting a large text into more, smaller shards costs nothing and
// wins twice — per-shard working set (code + length memo) stays
// cache-sized, and stragglers shrink because a slow core holds at most
// one small shard, not 1/workers of the text. Low explicit worker
// counts on big texts otherwise run measurably *slower* than
// sequential (the workers=2 row on the 1 MiB bench corpus).
const maxShardBytes = 128 << 10

// shardScratch is one worker's reusable decode buffers: the per-chunk
// instruction-length memo, the skip offsets, and the shard-local
// boundary bitmap. Instances are pooled — a corpus run builds thousands
// of indexes and the buffers are pure scratch, so recycling them removes
// the dominant per-build allocations.
//
// lens is the length memo at the heart of the speculative build: one
// byte per chunk byte, 0 = never visited, 0xFF = visited but
// undecodable (skip), otherwise the encoded instruction length (1..15).
// It makes the seam resolver's "has this shard's stream visited offset
// X?" test O(1) instead of a binary search, and it is what lets phase 0
// avoid materializing instructions at all: a chunk's speculative decode
// is fully described by ~1.2 bytes/byte of scratch instead of the ~35
// bytes/byte the old Inst stream cost (112-byte Inst per ~3-byte
// encoding). That footprint was the workers=8 collapse: eight full-size
// speculative Inst buffers live at once put the build allocation-bound
// (174-208 MB/op) instead of decode-bound.
type shardScratch struct {
	lens  []uint8
	skips []int32
	bits  []uint64
}

var scratchPool = sync.Pool{New: func() any { return new(shardScratch) }}

// shard is one worker's speculative decode of a chunk of the text.
//
// A linear sweep carries no state between instructions beyond the cursor
// offset — decoding is a pure function of the start offset. That is what
// makes speculative sharding sound: a shard decoded from its chunk start
// may begin misaligned with the true (sequential) instruction stream,
// but x86's self-synchronization property means the two streams merge
// after a handful of instructions, and from the first shared cursor
// offset onward they are identical by determinism.
//
// Chunk starts are 64-byte aligned so each shard-local boundary bitmap
// word maps one-to-one onto a word of the final index bitmap and can be
// stitched by whole-word OR instead of re-walking the instructions.
type shard struct {
	start int // chunk start offset (relative to code[0]), 64-byte aligned
	end   int // chunk end offset; the stream may overrun it
	final int // cursor offset after the last decode step (>= end)
	sc    *shardScratch

	// Seam resolution (phase A) results: the instructions re-decoded at
	// the seam before the speculative stream agreed, and the shape of the
	// authoritative suffix of the speculative stream.
	seam      []Inst
	seamSkips int
	authStart int  // splice offset; suffix [authStart, final) is authoritative
	authInsts int  // instructions in the authoritative suffix
	authSkips int  // skips in the authoritative suffix
	spliced   bool // false when the seam walk consumed the whole chunk
	outPos    int  // index in the final Insts where this shard's output begins
}

// BuildIndexParallel builds the same index as BuildIndex by decoding
// workers chunks of code concurrently and stitching them at the first
// agreeing instruction boundary past each chunk seam. workers <= 0
// selects a count from GOMAXPROCS and the text size and falls back to
// the sequential build for small texts; an explicit workers >= 2 shards
// whenever every worker can get at least one aligned 64-byte chunk
// (tests force odd seam placements this way), though the number of
// shards decoding concurrently is always capped at GOMAXPROCS and the
// physical core count — shard count sets seam geometry, not goroutine
// oversubscription. The result
// is byte-identical to BuildIndex — internal/diffcheck asserts this
// invariant on every generated binary.
func BuildIndexParallel(code []byte, base uint64, mode Mode, workers int) *Index {
	idx, _ := buildIndexParallel(context.Background(), code, base, mode, workers)
	return idx
}

// buildIndexParallel is the shared implementation behind
// BuildIndexParallel (context.Background, never cancels) and
// BuildIndexParallelCtx. Cancellation is checked at cancelStride
// boundaries inside every shard pass and inside the seam resolver; a
// background context short-circuits all checks via the Done() == nil
// fast path.
//
// The build runs in four phases. Phase 0 decodes the chunks
// speculatively in parallel, each shard recording lengths into its memo
// and boundary bits into a chunk-local bitmap — no instructions are
// materialized. Phase A walks the seams sequentially, re-decoding only
// until each speculative stream agrees with the authoritative cursor
// (an O(1) length-memo hit per probe); after it the exact instruction
// and skip totals are known, so the final index is allocated at exact
// size. Phase B re-decodes each shard's authoritative range in parallel
// directly into its disjoint window of the final Insts slice —
// determinism makes this a pure materialization of what phase 0 already
// measured, replacing the old sequential bulk copy that dominated
// assembly (112 bytes of memmove per ~3-byte encoding). The last phase
// stitches the boundary bitmap by whole-word OR and builds the rank
// directory.
func buildIndexParallel(ctx context.Context, code []byte, base uint64, mode Mode, workers int) (*Index, error) {
	auto := workers <= 0
	if auto {
		workers = runtime.GOMAXPROCS(0)
		if mx := len(code) / minShardBytes; workers > mx {
			workers = mx
		}
	}
	if workers < 2 || (auto && len(code) < minParallelBytes) {
		return buildIndexSeq(ctx, code, base, mode)
	}
	// Chunks are rounded down to 64-byte multiples so shard-local bitmap
	// words coincide with final bitmap words. A zero chunk means the
	// text is too small to give every worker an aligned chunk; decoding
	// it sequentially is both correct and faster.
	chunk := (len(code) / workers) &^ 63
	if chunk == 0 {
		return buildIndexSeq(ctx, code, base, mode)
	}
	nShards := workers
	if chunk > maxShardBytes {
		chunk = maxShardBytes
		nShards = (len(code) + chunk - 1) / chunk
		// A tail chunk below one bitmap word merges into its
		// predecessor, mirroring the i == last handling below.
		if nShards > 1 && len(code)-(nShards-1)*chunk < 64 {
			nShards--
		}
	}

	shards := make([]shard, nShards)
	for i := range shards {
		s, e := i*chunk, (i+1)*chunk
		if i == nShards-1 {
			e = len(code)
		}
		shards[i] = shard{start: s, end: e, sc: scratchPool.Get().(*shardScratch)}
	}
	recycle := func() {
		for i := range shards {
			scratchPool.Put(shards[i].sc)
			shards[i].sc = nil
		}
	}
	// Concurrency is capped at both GOMAXPROCS and the physical core
	// count: goroutines beyond either cannot add decode throughput, they
	// only add scheduler churn and keep more scratch live at once (the
	// old one-goroutine-per-shard design is what made high worker counts
	// collapse on small machines, and a GOMAXPROCS pinned above NumCPU —
	// the bench's gomaxprocs=N series on a small host — reproduces the
	// same collapse without the cores cap).
	conc := workers
	if p := runtime.GOMAXPROCS(0); conc > p {
		conc = p
	}
	if p := runtime.NumCPU(); conc > p {
		conc = p
	}
	runShards(shards, conc, func(sh *shard) { sh.decode(ctx, code, base, mode) })
	if err := ctx.Err(); err != nil {
		recycle()
		return nil, err
	}
	if err := resolveSeams(ctx, shards, code, base, mode); err != nil {
		recycle()
		return nil, err
	}

	// Exact sizing from the seam resolution.
	total, skipped, retries := 0, 0, 0
	for i := range shards {
		sh := &shards[i]
		sh.outPos = total
		total += len(sh.seam)
		skipped += sh.seamSkips
		retries += len(sh.seam) + sh.seamSkips
		if sh.spliced {
			total += sh.authInsts
			skipped += sh.authSkips
		}
	}
	words := (len(code) + 63) / 64
	idx := &Index{
		Insts:         make([]Inst, total),
		Base:          base,
		Skipped:       skipped,
		Shards:        len(shards),
		StitchRetries: retries,
		bits:          make([]uint64, words),
		ranks:         make([]int32, words),
		n:             len(code),
	}
	// Phase B: materialize every shard's output into its disjoint window.
	runShards(shards, conc, func(sh *shard) { sh.materialize(ctx, code, base, mode, idx.Insts) })
	if err := ctx.Err(); err != nil {
		recycle()
		return nil, err
	}
	stitchBits(idx, shards)
	recycle()
	return idx, nil
}

// runShards applies fn to every shard with at most conc goroutines. A
// conc of 1 runs inline — the sharded geometry is preserved (seam
// placement, Shards count) without spawning anything.
func runShards(shards []shard, conc int, fn func(*shard)) {
	if conc <= 1 || len(shards) == 1 {
		for i := range shards {
			fn(&shards[i])
		}
		return
	}
	if conc > len(shards) {
		conc = len(shards)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				fn(&shards[i])
			}
		}()
	}
	wg.Wait()
}

// decode runs the speculative sweep of one chunk: from start until the
// cursor reaches the chunk end (the final instruction may overrun it),
// recording each decode step in the length memo and the chunk-local
// boundary bitmap. A canceled ctx stops the shard at the next
// cancelStride boundary; the caller discards every shard after noticing
// the cancellation.
func (sh *shard) decode(ctx context.Context, code []byte, base uint64, mode Mode) {
	sc := sh.sc
	n := sh.end - sh.start
	lens := sc.lens
	if cap(lens) < n {
		lens = make([]uint8, n)
	} else {
		lens = lens[:n]
		clear(lens)
	}
	skips := sc.skips[:0]
	words := (n + 63) / 64
	bm := sc.bits
	if cap(bm) < words {
		bm = make([]uint64, words)
	} else {
		bm = bm[:words]
		clear(bm)
	}
	defer func() { sc.lens, sc.skips, sc.bits = lens, skips, bm }()

	done := ctx.Done()
	var inst Inst
	off, next := sh.start, sh.start
	for off < sh.end {
		if done != nil && off >= next {
			if ctx.Err() != nil {
				return
			}
			next = off + cancelStride
		}
		rel := off - sh.start
		if err := DecodeInto(code[off:], base+uint64(off), mode, &inst); err != nil {
			lens[rel] = 0xFF
			skips = append(skips, int32(off))
			off++
			continue
		}
		lens[rel] = uint8(inst.Len)
		bm[rel>>6] |= 1 << (rel & 63)
		off += inst.Len
	}
	sh.final = off
}

// popcountFrom counts the set bits of bm at positions >= rel.
func popcountFrom(bm []uint64, rel int) int {
	w := rel >> 6
	if w >= len(bm) {
		return 0
	}
	c := bits.OnesCount64(bm[w] &^ (1<<(rel&63) - 1))
	for _, word := range bm[w+1:] {
		c += bits.OnesCount64(word)
	}
	return c
}

// resolveSeams walks the shards in cursor order. At each seam the cursor
// either lands on an offset the next shard visited — an O(1) length-memo
// probe, in which case the shard's remaining stream is authoritative and
// its splice point plus suffix totals are recorded — or instructions are
// re-decoded one at a time into the shard's seam buffer until the
// streams re-synchronize.
func resolveSeams(ctx context.Context, shards []shard, code []byte, base uint64, mode Mode) error {
	done := ctx.Done()
	cur, next := 0, 0
	var inst Inst
	for i := range shards {
		sh := &shards[i]
		for cur < sh.end {
			if done != nil && cur >= next {
				if err := ctx.Err(); err != nil {
					return err
				}
				next = cur + cancelStride
			}
			if rel := cur - sh.start; rel >= 0 && sh.sc.lens[rel] != 0 {
				// The speculative stream visited this offset (instruction
				// or skip): everything from here on is authoritative.
				sh.spliced = true
				sh.authStart = cur
				sh.authInsts = popcountFrom(sh.sc.bits, rel)
				sk := sh.sc.skips
				sh.authSkips = len(sk) - sort.Search(len(sk), func(j int) bool { return sk[j] >= int32(cur) })
				cur = sh.final
				break
			}
			// The seam split an instruction: decode from the true
			// boundary until the speculative stream agrees.
			if err := DecodeInto(code[cur:], base+uint64(cur), mode, &inst); err != nil {
				sh.seamSkips++
				cur++
				continue
			}
			sh.seam = append(sh.seam, inst)
			cur += inst.Len
		}
	}
	// The last shard decodes to len(code) and chunks are wider than any
	// instruction, so the stream is complete once it is spliced or its
	// seam walk reaches the end; nothing is left to decode here.
	return nil
}

// materialize writes one shard's output — its seam instructions followed
// by the authoritative suffix of its speculative stream — into the
// shard's disjoint window of the final Insts slice. The suffix is
// re-decoded boundary-by-boundary from the shard bitmap straight into
// the final slots: phase 0 proved each decode succeeds, so this is a
// pure materialization pass with no growth, no copies, and no error
// handling beyond cancellation.
func (sh *shard) materialize(ctx context.Context, code []byte, base uint64, mode Mode, out []Inst) {
	i := sh.outPos
	i += copy(out[i:], sh.seam)
	if !sh.spliced || sh.authInsts == 0 {
		return
	}
	done := ctx.Done()
	bm := sh.sc.bits
	rel := sh.authStart - sh.start
	w := rel >> 6
	// Mask off the speculative prefix below the splice point.
	word := bm[w] &^ (1<<(rel&63) - 1)
	next := sh.authStart
	for {
		for word == 0 {
			w++
			if w >= len(bm) {
				return
			}
			word = bm[w]
		}
		off := sh.start + w<<6 + bits.TrailingZeros64(word)
		word &= word - 1
		if done != nil && off >= next {
			if ctx.Err() != nil {
				return
			}
			next = off + cancelStride
		}
		_ = DecodeInto(code[off:], base+uint64(off), mode, &out[i])
		i++
	}
}

// stitchBits assembles the final boundary bitmap and rank directory:
// seam instructions bit-by-bit, spliced shard suffixes by whole-word OR
// from the chunk-local bitmaps (the first word masked below the splice
// point), then one running-popcount pass for the ranks.
func stitchBits(idx *Index, shards []shard) {
	for i := range shards {
		sh := &shards[i]
		for _, inst := range sh.seam {
			off := inst.Addr - idx.Base
			idx.bits[off>>6] |= 1 << (off & 63)
		}
		if !sh.spliced {
			continue
		}
		localFrom := sh.authStart - sh.start
		gw, wf := sh.start>>6, localFrom>>6
		bm := sh.sc.bits
		if wf < len(bm) {
			idx.bits[gw+wf] |= bm[wf] &^ (1<<(localFrom&63) - 1)
			for w := wf + 1; w < len(bm); w++ {
				idx.bits[gw+w] |= bm[w]
			}
		}
	}
	var c int32
	for w, word := range idx.bits {
		idx.ranks[w] = c
		c += int32(bits.OnesCount64(word))
	}
}
