package x86

import (
	"context"
	"math/bits"
	"runtime"
	"sort"
	"sync"
)

// minParallelBytes is the smallest text BuildIndexParallel will shard
// when asked to pick a worker count itself: below this the goroutine
// fan-out costs more than the decode.
const minParallelBytes = 64 << 10

// shardScratch is one worker's reusable decode buffers: the speculative
// instruction stream, the skip offsets, and the shard-local boundary
// bitmap. Instances are pooled — a corpus run builds thousands of
// indexes, and the speculative buffers are pure scratch whose contents
// are copied into the final index during assembly, so recycling them
// removes the dominant per-build allocations. Inst is pointer-free,
// which is what makes holding stale ones in the pool harmless.
type shardScratch struct {
	insts []Inst
	skips []int32
	bits  []uint64
}

var scratchPool = sync.Pool{New: func() any { return new(shardScratch) }}

// shard is one worker's speculative decode of a chunk of the text.
//
// A linear sweep carries no state between instructions beyond the cursor
// offset — decoding is a pure function of the start offset. That is what
// makes speculative sharding sound: a shard decoded from its chunk start
// may begin misaligned with the true (sequential) instruction stream,
// but x86's self-synchronization property means the two streams merge
// after a handful of instructions, and from the first shared cursor
// offset onward they are identical by determinism.
//
// Chunk starts are 64-byte aligned so each shard-local boundary bitmap
// word maps one-to-one onto a word of the final index bitmap and can be
// stitched by copy instead of re-walking the instructions.
type shard struct {
	start int // chunk start offset (relative to code[0]), 64-byte aligned
	end   int // chunk end offset; the stream may overrun it
	final int // cursor offset after the last decode step (>= end)
	sc    *shardScratch

	// Seam resolution (stitching phase A) results: the instructions
	// re-decoded at the seam before the speculative stream agreed, and
	// the authoritative suffix of the speculative stream.
	seam      []Inst
	seamSkips int
	instIdx   int  // first authoritative instruction in sc.insts
	skipTail  int  // skips at offsets >= the splice point
	spliced   bool // false when the seam walk consumed the whole chunk
}

// BuildIndexParallel builds the same index as BuildIndex by decoding
// workers chunks of code concurrently and stitching them at the first
// agreeing instruction boundary past each chunk seam. workers <= 0
// selects GOMAXPROCS and falls back to the sequential build for small
// texts; an explicit workers >= 2 shards whenever every worker can get
// at least one aligned 64-byte chunk (tests force odd seam placements
// this way). The result is byte-identical to BuildIndex —
// internal/diffcheck asserts this invariant on every generated binary.
func BuildIndexParallel(code []byte, base uint64, mode Mode, workers int) *Index {
	idx, _ := buildIndexParallel(context.Background(), code, base, mode, workers)
	return idx
}

// buildIndexParallel is the shared implementation behind
// BuildIndexParallel (context.Background, never cancels) and
// BuildIndexParallelCtx. Cancellation is checked at cancelStride
// boundaries inside every shard and inside the seam resolver; a
// background context short-circuits all checks via the Done() == nil
// fast path.
//
// The build runs in three phases. Phase 0 decodes the chunks
// speculatively in parallel, each shard recording its boundary bits in
// a chunk-local bitmap as it goes. Phase A walks the seams
// sequentially, re-decoding only until each speculative stream agrees
// with the authoritative cursor — after it, the exact instruction and
// skip totals are known. Phase B allocates the final index at exact
// size and assembles it: seam instructions individually, shard suffixes
// by bulk copy, and the boundary bitmap by whole-word OR from the
// shard-local bitmaps (the first word masked below the splice point).
func buildIndexParallel(ctx context.Context, code []byte, base uint64, mode Mode, workers int) (*Index, error) {
	auto := workers <= 0
	if auto {
		workers = runtime.GOMAXPROCS(0)
	}
	// Chunks are rounded down to 64-byte multiples so shard-local bitmap
	// words coincide with final bitmap words. A zero chunk means the
	// text is too small to give every worker an aligned chunk; decoding
	// it sequentially is both correct and faster.
	chunk := (len(code) / workers) &^ 63
	if workers < 2 || chunk == 0 || (auto && len(code) < minParallelBytes) {
		return BuildIndexCtx(ctx, code, base, mode)
	}

	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for i := range shards {
		s, e := i*chunk, (i+1)*chunk
		if i == workers-1 {
			e = len(code)
		}
		shards[i] = shard{start: s, end: e, sc: scratchPool.Get().(*shardScratch)}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.decode(ctx, code, base, mode)
		}(&shards[i])
	}
	wg.Wait()
	recycle := func() {
		for i := range shards {
			scratchPool.Put(shards[i].sc)
			shards[i].sc = nil
		}
	}
	if err := ctx.Err(); err != nil {
		recycle()
		return nil, err
	}
	if err := resolveSeams(ctx, shards, code, base, mode); err != nil {
		recycle()
		return nil, err
	}
	idx := assemble(shards, code, base)
	recycle()
	return idx, nil
}

// decode runs the speculative sweep of one chunk: from start until the
// cursor reaches the chunk end (the final instruction may overrun it),
// setting the chunk-local boundary bit of every decoded instruction.
// A canceled ctx stops the shard at the next cancelStride boundary; the
// caller discards every shard after noticing the cancellation.
func (sh *shard) decode(ctx context.Context, code []byte, base uint64, mode Mode) {
	sc := sh.sc
	insts := sc.insts[:0]
	skips := sc.skips[:0]
	words := (sh.end - sh.start + 63) / 64
	bm := sc.bits
	if cap(bm) < words {
		bm = make([]uint64, words)
	} else {
		bm = bm[:words]
		clear(bm)
	}
	defer func() { sc.insts, sc.skips, sc.bits = insts, skips, bm }()

	done := ctx.Done()
	var inst Inst
	off, next := sh.start, sh.start
	for off < sh.end {
		if done != nil && off >= next {
			if ctx.Err() != nil {
				return
			}
			next = off + cancelStride
		}
		if err := DecodeInto(code[off:], base+uint64(off), mode, &inst); err != nil {
			skips = append(skips, int32(off))
			off++
			continue
		}
		rel := off - sh.start
		bm[rel>>6] |= 1 << (rel & 63)
		insts = append(insts, inst)
		off += inst.Len
	}
	sh.final = off
}

// visitedFrom locates the authoritative cursor offset cur in the shard's
// visited-offset set (instruction starts ∪ skip positions). When found,
// the shard's remaining stream from cur onward is exactly what a
// sequential decode would produce, so the caller can splice it verbatim:
// instIdx is the first instruction with offset >= cur and skipTail the
// number of skips at offsets >= cur.
func (sh *shard) visitedFrom(cur int, base uint64) (instIdx, skipTail int, found bool) {
	insts, skips := sh.sc.insts, sh.sc.skips
	va := base + uint64(cur)
	instIdx = sort.Search(len(insts), func(i int) bool { return insts[i].Addr >= va })
	skipIdx := sort.Search(len(skips), func(i int) bool { return skips[i] >= int32(cur) })
	skipTail = len(skips) - skipIdx
	if instIdx < len(insts) && insts[instIdx].Addr == va {
		return instIdx, skipTail, true
	}
	if skipIdx < len(skips) && skips[skipIdx] == int32(cur) {
		return instIdx, skipTail, true
	}
	return 0, 0, false
}

// resolveSeams walks the shards in cursor order. At each seam the
// cursor either lands on an offset the next shard visited — in which
// case the shard's remaining stream is authoritative and its splice
// point is recorded — or instructions are re-decoded one at a time into
// the shard's seam buffer until the streams re-synchronize.
func resolveSeams(ctx context.Context, shards []shard, code []byte, base uint64, mode Mode) error {
	done := ctx.Done()
	cur, next := 0, 0
	var inst Inst
	for i := range shards {
		sh := &shards[i]
		for cur < sh.end {
			if done != nil && cur >= next {
				if err := ctx.Err(); err != nil {
					return err
				}
				next = cur + cancelStride
			}
			if instIdx, skipTail, ok := sh.visitedFrom(cur, base); ok {
				sh.instIdx, sh.skipTail, sh.spliced = instIdx, skipTail, true
				cur = sh.final
				break
			}
			// The seam split an instruction: decode from the true
			// boundary until the speculative stream agrees.
			if err := DecodeInto(code[cur:], base+uint64(cur), mode, &inst); err != nil {
				sh.seamSkips++
				cur++
				continue
			}
			sh.seam = append(sh.seam, inst)
			cur += inst.Len
		}
	}
	// The last shard decodes to len(code) and chunks are wider than any
	// instruction, so the stream is complete once it is spliced or its
	// seam walk reaches the end; nothing is left to decode here.
	return nil
}

// assemble builds the final index from the resolved shards at exact
// size: one allocation per slice, no growth, no per-instruction bitmap
// pass for the spliced bulk.
func assemble(shards []shard, code []byte, base uint64) *Index {
	total, skipped, retries := 0, 0, 0
	for i := range shards {
		sh := &shards[i]
		total += len(sh.seam)
		skipped += sh.seamSkips
		retries += len(sh.seam) + sh.seamSkips
		if sh.spliced {
			total += len(sh.sc.insts) - sh.instIdx
			skipped += sh.skipTail
		}
	}
	words := (len(code) + 63) / 64
	idx := &Index{
		Insts:         make([]Inst, 0, total),
		Base:          base,
		Skipped:       skipped,
		Shards:        len(shards),
		StitchRetries: retries,
		bits:          make([]uint64, words),
		ranks:         make([]int32, words),
		n:             len(code),
	}
	for i := range shards {
		sh := &shards[i]
		for _, inst := range sh.seam {
			off := inst.Addr - base
			idx.bits[off>>6] |= 1 << (off & 63)
		}
		idx.Insts = append(idx.Insts, sh.seam...)
		if !sh.spliced {
			continue
		}
		tail := sh.sc.insts[sh.instIdx:]
		idx.Insts = append(idx.Insts, tail...)
		if len(tail) == 0 {
			continue
		}
		// Stitch the shard's boundary bitmap by word copy. start is
		// 64-byte aligned, so local word w is final word start/64 + w;
		// the first word is masked below the splice point to drop the
		// shard's speculative prefix, and words are OR-ed because seam
		// instructions may share the splice-point word.
		localFrom := int(tail[0].Addr-base) - sh.start
		gw, wf := sh.start>>6, localFrom>>6
		bm := sh.sc.bits
		idx.bits[gw+wf] |= bm[wf] &^ (1<<(localFrom&63) - 1)
		for w := wf + 1; w < len(bm); w++ {
			idx.bits[gw+w] |= bm[w]
		}
	}
	var c int32
	for w, word := range idx.bits {
		idx.ranks[w] = c
		c += int32(bits.OnesCount64(word))
	}
	return idx
}
