package x86

import (
	"context"
	"runtime"
	"sort"
	"sync"
)

// minParallelBytes is the smallest text BuildIndexParallel will shard
// when asked to pick a worker count itself: below this the goroutine
// fan-out costs more than the decode.
const minParallelBytes = 64 << 10

// shard is one worker's speculative decode of a chunk of the text.
//
// A linear sweep carries no state between instructions beyond the cursor
// offset — decoding is a pure function of the start offset. That is what
// makes speculative sharding sound: a shard decoded from its chunk start
// may begin misaligned with the true (sequential) instruction stream,
// but x86's self-synchronization property means the two streams merge
// after a handful of instructions, and from the first shared cursor
// offset onward they are identical by determinism.
type shard struct {
	start int     // chunk start offset (relative to code[0])
	end   int     // chunk end offset; the stream may overrun it
	insts []Inst  // decoded instructions, absolute addresses
	skips []int32 // offsets where decode failed and the cursor skipped a byte
	final int     // cursor offset after the last decode step (>= end)
}

// BuildIndexParallel builds the same index as BuildIndex by decoding
// workers chunks of code concurrently and stitching them at the first
// agreeing instruction boundary past each chunk seam. workers <= 0
// selects GOMAXPROCS and falls back to the sequential build for small
// texts; an explicit workers >= 2 always shards (tests force odd seam
// placements this way). The result is byte-identical to BuildIndex —
// internal/diffcheck asserts this invariant on every generated binary.
func BuildIndexParallel(code []byte, base uint64, mode Mode, workers int) *Index {
	idx, _ := buildIndexParallel(context.Background(), code, base, mode, workers)
	return idx
}

// buildIndexParallel is the shared implementation behind
// BuildIndexParallel (context.Background, never cancels) and
// BuildIndexParallelCtx. Cancellation is checked at cancelStride
// boundaries inside every shard and inside the stitcher; a background
// context short-circuits all checks via the Done() == nil fast path.
func buildIndexParallel(ctx context.Context, code []byte, base uint64, mode Mode, workers int) (*Index, error) {
	auto := workers <= 0
	if auto {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(code)/maxInstLen {
		workers = len(code) / maxInstLen // every shard needs room to decode
	}
	if workers < 2 || (auto && len(code) < minParallelBytes) {
		return BuildIndexCtx(ctx, code, base, mode)
	}

	shards := make([]shard, workers)
	chunk := len(code) / workers
	var wg sync.WaitGroup
	for i := range shards {
		s, e := i*chunk, (i+1)*chunk
		if i == workers-1 {
			e = len(code)
		}
		shards[i] = shard{start: s, end: e}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.decode(ctx, code, base, mode)
		}(&shards[i])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	idx := &Index{
		Insts:  make([]Inst, 0, len(code)/4+1),
		Base:   base,
		Shards: workers,
	}
	if err := stitch(ctx, idx, shards, code, base, mode); err != nil {
		return nil, err
	}
	idx.finishPositions(len(code))
	return idx, nil
}

// decode runs the speculative sweep of one chunk: from start until the
// cursor reaches the chunk end (the final instruction may overrun it).
// A canceled ctx stops the shard at the next cancelStride boundary; the
// caller discards every shard after noticing the cancellation.
func (sh *shard) decode(ctx context.Context, code []byte, base uint64, mode Mode) {
	sh.insts = make([]Inst, 0, (sh.end-sh.start)/4+1)
	done := ctx.Done()
	var inst Inst
	off, next := sh.start, sh.start
	for off < sh.end {
		if done != nil && off >= next {
			if ctx.Err() != nil {
				return
			}
			next = off + cancelStride
		}
		if err := DecodeInto(code[off:], base+uint64(off), mode, &inst); err != nil {
			sh.skips = append(sh.skips, int32(off))
			off++
			continue
		}
		sh.insts = append(sh.insts, inst)
		off += inst.Len
	}
	sh.final = off
}

// visitedFrom locates the authoritative cursor offset cur in the shard's
// visited-offset set (instruction starts ∪ skip positions). When found,
// the shard's remaining stream from cur onward is exactly what a
// sequential decode would produce, so the caller can splice it verbatim:
// instIdx is the first instruction with offset >= cur and skipTail the
// number of skips at offsets >= cur.
func (sh *shard) visitedFrom(cur int, base uint64) (instIdx, skipTail int, found bool) {
	va := base + uint64(cur)
	instIdx = sort.Search(len(sh.insts), func(i int) bool { return sh.insts[i].Addr >= va })
	skipIdx := sort.Search(len(sh.skips), func(i int) bool { return sh.skips[i] >= int32(cur) })
	skipTail = len(sh.skips) - skipIdx
	if instIdx < len(sh.insts) && sh.insts[instIdx].Addr == va {
		return instIdx, skipTail, true
	}
	if skipIdx < len(sh.skips) && sh.skips[skipIdx] == int32(cur) {
		return instIdx, skipTail, true
	}
	return 0, 0, false
}

// stitch merges the speculative shard streams into the authoritative
// sequential stream. The cursor walks the shards in order; at each seam
// it either lands on an offset the next shard visited — in which case
// the shard's stream is spliced wholesale — or instructions are
// re-decoded one at a time (counted in StitchRetries) until the streams
// re-synchronize.
func stitch(ctx context.Context, idx *Index, shards []shard, code []byte, base uint64, mode Mode) error {
	done := ctx.Done()
	cur, next := 0, 0
	var inst Inst
	for i := range shards {
		sh := &shards[i]
		for cur < sh.end {
			if done != nil && cur >= next {
				if err := ctx.Err(); err != nil {
					return err
				}
				next = cur + cancelStride
			}
			if instIdx, skipTail, ok := sh.visitedFrom(cur, base); ok {
				idx.Insts = append(idx.Insts, sh.insts[instIdx:]...)
				idx.Skipped += skipTail
				cur = sh.final
				break
			}
			// The seam split an instruction: decode from the true
			// boundary until the speculative stream agrees.
			idx.StitchRetries++
			if err := DecodeInto(code[cur:], base+uint64(cur), mode, &inst); err != nil {
				idx.Skipped++
				cur++
				continue
			}
			idx.Insts = append(idx.Insts, inst)
			cur += inst.Len
		}
	}
	// The last shard decodes to len(code), so once it is spliced (or
	// overrun by a straddling instruction) the stream is complete.
	for cur < len(code) {
		if err := DecodeInto(code[cur:], base+uint64(cur), mode, &inst); err != nil {
			idx.Skipped++
			cur++
			continue
		}
		idx.Insts = append(idx.Insts, inst)
		cur += inst.Len
	}
	return nil
}
