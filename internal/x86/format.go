package x86

import (
	"fmt"
	"strings"
)

// Register name tables, indexed by register number.
var (
	regNames64 = [16]string{
		"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
		"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
	}
	regNames32 = [16]string{
		"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
		"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
	}
	regNames16 = [16]string{
		"ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
		"r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w",
	}
	regNames8 = [16]string{
		"al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
		"r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
	}
)

var ccNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// Format decodes and renders the instruction at the front of code in an
// Intel-flavoured syntax. It returns the text and the instruction length.
// The rendering covers the instruction subset emitted by compilers for
// integer code; unrecognized instructions render as ".byte"-style output
// with a generic mnemonic.
func Format(code []byte, addr uint64, mode Mode) (string, int, error) {
	d := decodeState{code: code, addr: addr, mode: mode}
	if err := d.run(); err != nil {
		return "", 0, err
	}
	inst := d.finish()
	return d.render(inst), inst.Len, nil
}

// regName renders a register of the given width, honouring REX.B-style
// extension bit ext.
func regName(width, num int, ext bool) string {
	if ext {
		num += 8
	}
	switch width {
	case 8:
		return regNames64[num&15]
	case 2:
		return regNames16[num&15]
	case 1:
		return regNames8[num&15]
	default:
		return regNames32[num&15]
	}
}

// opWidth returns the operand width in bytes implied by the decode state
// for a full-size operand.
func (d *decodeState) opWidth() int {
	if d.mode == Mode64 {
		if d.hasRex && d.rex&0x08 != 0 {
			return 8
		}
		if d.opSize {
			return 2
		}
		return 4
	}
	if d.opSize {
		return 2
	}
	return 4
}

// ptrWidth is the natural pointer width for the mode.
func (d *decodeState) ptrWidth() int {
	if d.mode == Mode64 {
		return 8
	}
	return 4
}

// rmString renders the r/m operand of a ModRM instruction of the given
// operand width.
func (d *decodeState) rmString(width int) string {
	mod := int(d.modRM>>6) & 3
	rm := int(d.modRM) & 7
	rexB := d.hasRex && d.rex&1 != 0
	rexX := d.hasRex && d.rex&2 != 0
	if mod == 3 {
		return regName(width, rm, rexB)
	}
	if d.ripRel {
		return fmt.Sprintf("[rip%+#x]", d.disp)
	}
	addrW := d.ptrWidth()
	var base, index string
	scale := 1
	if rm == 4 {
		sib := d.sib
		scale = 1 << (sib >> 6)
		idx := int(sib>>3) & 7
		bs := int(sib) & 7
		if !(idx == 4 && !rexX) {
			index = regName(addrW, idx, rexX)
		}
		if !(bs == 5 && mod == 0) {
			base = regName(addrW, bs, rexB)
		}
	} else if !(mod == 0 && rm == 5) {
		base = regName(addrW, rm, rexB)
	}
	var sb strings.Builder
	sb.WriteByte('[')
	parts := make([]string, 0, 3)
	if base != "" {
		parts = append(parts, base)
	}
	if index != "" {
		if scale > 1 {
			parts = append(parts, fmt.Sprintf("%s*%d", index, scale))
		} else {
			parts = append(parts, index)
		}
	}
	sb.WriteString(strings.Join(parts, "+"))
	if d.hasDisp && (d.disp != 0 || len(parts) == 0) {
		if len(parts) == 0 {
			fmt.Fprintf(&sb, "%#x", uint64(uint32(d.disp)))
		} else {
			fmt.Fprintf(&sb, "%+#x", d.disp)
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// regOperand renders the ModRM.reg register operand.
func (d *decodeState) regOperand(width int) string {
	rexR := d.hasRex && d.rex&4 != 0
	return regName(width, int(d.modRM>>3)&7, rexR)
}

// render produces the instruction text.
func (d *decodeState) render(inst Inst) string {
	switch inst.Class {
	case ClassEndbr64:
		return "endbr64"
	case ClassEndbr32:
		return "endbr32"
	case ClassCallRel:
		return fmt.Sprintf("call %#x", inst.Target)
	case ClassJmpRel:
		return fmt.Sprintf("jmp %#x", inst.Target)
	case ClassJccRel:
		return fmt.Sprintf("j%s %#x", d.ccName(), inst.Target)
	case ClassRet:
		if inst.HasImm {
			return fmt.Sprintf("ret %#x", uint16(inst.Imm))
		}
		return "ret"
	case ClassInt3:
		return "int3"
	case ClassNop:
		return "nop"
	case ClassHlt:
		return "hlt"
	case ClassUD:
		return "ud2"
	case ClassLeave:
		return "leave"
	case ClassCallInd, ClassJmpInd:
		mn := "call"
		if inst.Class == ClassJmpInd {
			mn = "jmp"
		}
		if inst.Notrack {
			mn = "notrack " + mn
		}
		return fmt.Sprintf("%s %s", mn, d.rmString(d.ptrWidth()))
	}
	return d.renderGeneric(inst)
}

func (d *decodeState) ccName() string {
	if d.opcodeMap == 2 {
		return ccNames[d.opcode&0x0F]
	}
	switch d.opcode {
	case 0xE0:
		return "loopne" // rendered with a j prefix; close enough for a debug aid
	case 0xE1:
		return "loope"
	case 0xE2:
		return "loop"
	case 0xE3:
		return "cxz"
	}
	return ccNames[d.opcode&0x0F]
}

// arithByOpcode names the classic ALU group selected by bits 5:3 of the
// one-byte opcode.
var arithNames = [8]string{"add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"}

// group1 is the 80/81/83 immediate group.
var group1 = arithNames

// renderGeneric covers the common non-branch instructions.
func (d *decodeState) renderGeneric(inst Inst) string {
	if d.opcodeMap == 1 {
		if s := d.renderOneByte(inst); s != "" {
			return s
		}
	}
	if d.opcodeMap == 2 {
		if s := d.renderTwoByte(inst); s != "" {
			return s
		}
	}
	return fmt.Sprintf("op%d_%02x", d.opcodeMap, d.opcode)
}

func (d *decodeState) renderOneByte(inst Inst) string {
	op := d.opcode
	w := d.opWidth()
	rexB := d.hasRex && d.rex&1 != 0
	switch {
	case op < 0x40 && op&7 < 6: // classic ALU block
		name := arithNames[op>>3]
		byteOp := op&1 == 0
		if byteOp {
			w = 1
		}
		switch op & 7 {
		case 0, 1:
			return fmt.Sprintf("%s %s, %s", name, d.rmString(w), d.regOperand(w))
		case 2, 3:
			return fmt.Sprintf("%s %s, %s", name, d.regOperand(w), d.rmString(w))
		case 4:
			return fmt.Sprintf("%s al, %#x", name, uint8(d.imm))
		case 5:
			return fmt.Sprintf("%s %s, %#x", name, regName(w, 0, false), uint64(d.imm))
		}
	case op >= 0x50 && op <= 0x57:
		return "push " + regName(d.ptrWidth(), int(op-0x50), rexB)
	case op >= 0x58 && op <= 0x5F:
		return "pop " + regName(d.ptrWidth(), int(op-0x58), rexB)
	case op == 0x68:
		return fmt.Sprintf("push %#x", uint64(d.imm))
	case op == 0x6A:
		return fmt.Sprintf("push %#x", uint64(uint8(d.imm)))
	case op == 0x63 && d.mode == Mode64:
		return fmt.Sprintf("movsxd %s, %s", d.regOperand(8), d.rmString(4))
	case op >= 0x80 && op <= 0x83:
		w := d.opWidth()
		if op == 0x80 {
			w = 1
		}
		return fmt.Sprintf("%s %s, %#x", group1[inst.Reg()], d.rmString(w), uint64(d.imm))
	case op == 0x84 || op == 0x85:
		if op == 0x84 {
			w = 1
		}
		return fmt.Sprintf("test %s, %s", d.rmString(w), d.regOperand(w))
	case op == 0x88 || op == 0x89:
		if op == 0x88 {
			w = 1
		}
		return fmt.Sprintf("mov %s, %s", d.rmString(w), d.regOperand(w))
	case op == 0x8A || op == 0x8B:
		if op == 0x8A {
			w = 1
		}
		return fmt.Sprintf("mov %s, %s", d.regOperand(w), d.rmString(w))
	case op == 0x8D:
		return fmt.Sprintf("lea %s, %s", d.regOperand(w), d.rmString(w))
	case op >= 0xB8 && op <= 0xBF:
		return fmt.Sprintf("mov %s, %#x", regName(w, int(op-0xB8), rexB), uint64(d.imm))
	case op >= 0xB0 && op <= 0xB7:
		return fmt.Sprintf("mov %s, %#x", regName(1, int(op-0xB0), rexB), uint8(d.imm))
	case op == 0xC6 || op == 0xC7:
		if op == 0xC6 {
			w = 1
		}
		return fmt.Sprintf("mov %s, %#x", d.rmString(w), uint64(d.imm))
	case op == 0xC0 || op == 0xC1 || op == 0xD0 || op == 0xD1 || op == 0xD2 || op == 0xD3:
		names := [8]string{"rol", "ror", "rcl", "rcr", "shl", "shr", "sal", "sar"}
		if op == 0xC0 || op == 0xC1 {
			return fmt.Sprintf("%s %s, %#x", names[inst.Reg()], d.rmString(w), uint8(d.imm))
		}
		return fmt.Sprintf("%s %s", names[inst.Reg()], d.rmString(w))
	case op == 0xF6 || op == 0xF7:
		names := [8]string{"test", "test", "not", "neg", "mul", "imul", "div", "idiv"}
		if op == 0xF6 {
			w = 1
		}
		if inst.Reg() <= 1 {
			return fmt.Sprintf("test %s, %#x", d.rmString(w), uint64(d.imm))
		}
		return fmt.Sprintf("%s %s", names[inst.Reg()], d.rmString(w))
	case op == 0xFE || op == 0xFF:
		names := [8]string{"inc", "dec", "call", "callf", "jmp", "jmpf", "push", "(bad)"}
		if op == 0xFE {
			w = 1
		}
		return fmt.Sprintf("%s %s", names[inst.Reg()], d.rmString(w))
	case op == 0x98:
		return "cdqe"
	case op == 0x99:
		return "cdq"
	}
	return ""
}

func (d *decodeState) renderTwoByte(inst Inst) string {
	op := d.opcode
	w := d.opWidth()
	switch {
	case op >= 0x40 && op <= 0x4F:
		return fmt.Sprintf("cmov%s %s, %s", ccNames[op&0x0F], d.regOperand(w), d.rmString(w))
	case op >= 0x90 && op <= 0x9F:
		return fmt.Sprintf("set%s %s", ccNames[op&0x0F], d.rmString(1))
	case op == 0xAF:
		return fmt.Sprintf("imul %s, %s", d.regOperand(w), d.rmString(w))
	case op == 0xB6 || op == 0xB7:
		sw := 1
		if op == 0xB7 {
			sw = 2
		}
		return fmt.Sprintf("movzx %s, %s", d.regOperand(w), d.rmString(sw))
	case op == 0xBE || op == 0xBF:
		sw := 1
		if op == 0xBF {
			sw = 2
		}
		return fmt.Sprintf("movsx %s, %s", d.regOperand(w), d.rmString(sw))
	case op == 0x05:
		return "syscall"
	case op == 0xA2:
		return "cpuid"
	case op == 0x31:
		return "rdtsc"
	}
	return ""
}
