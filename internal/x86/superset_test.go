package x86

import (
	"math/rand"
	"testing"
)

// TestSupersetMatchesDecode pins the memo contract: every offset's
// length and class must equal a fresh DecodeInto at that offset, on both
// clean generated text and random soup, in both modes.
func TestSupersetMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, mode := range []Mode{Mode64, Mode32} {
		clean := GenText(16<<10, mode, rng, 0)
		soup := make([]byte, 16<<10)
		rng.Read(soup)
		for name, code := range map[string][]byte{"gentext": clean, "soup": soup} {
			s := BuildSuperset(code, 0x401000, mode)
			if s.Len() != len(code) {
				t.Fatalf("%s/%v: Len = %d, want %d", name, mode, s.Len(), len(code))
			}
			var inst Inst
			for off := 0; off < len(code); off++ {
				err := DecodeInto(code[off:], 0x401000+uint64(off), mode, &inst)
				if err != nil {
					if s.Lens[off] != 0 {
						t.Fatalf("%s/%v off %#x: memo len %d, decode error %v", name, mode, off, s.Lens[off], err)
					}
					continue
				}
				if int(s.Lens[off]) != inst.Len || Class(s.Classes[off]) != inst.Class {
					t.Fatalf("%s/%v off %#x: memo (len %d, class %v), decode (len %d, class %v)",
						name, mode, off, s.Lens[off], Class(s.Classes[off]), inst.Len, inst.Class)
				}
			}
		}
	}
}

// TestSupersetViabilityFixpoint checks the DP invariant directly:
// viable(off) iff off decodes and its fallthrough successor is the text
// end or viable itself.
func TestSupersetViabilityFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	code := GenText(8<<10, Mode64, rng, 0.2)
	s := BuildSuperset(code, 0x1000, Mode64)
	n := len(code)
	for off := 0; off < n; off++ {
		l := int(s.Lens[off])
		want := l > 0 && (off+l == n || s.Viable(off+l))
		if got := s.Viable(off); got != want {
			t.Fatalf("off %#x: Viable = %v, want %v (len %d)", off, got, want, l)
		}
	}
	if s.ViableCount() == 0 {
		t.Fatal("no viable offsets in generated text")
	}
	// Out-of-range queries are false/zero, never a panic.
	if s.Viable(-1) || s.Viable(n) || s.LenAt(-1) != 0 || s.LenAt(n) != 0 {
		t.Fatal("out-of-range query leaked state")
	}
}

// TestSupersetChainMatchesSweep: walking the chain from offset 0 of
// clean text via the memo must visit exactly the linear sweep's
// instruction stream, with identical lengths — the "re-decode becomes a
// table hit" guarantee.
func TestSupersetChainMatchesSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	code := GenText(32<<10, Mode64, rng, 0)
	s := BuildSuperset(code, 0x401000, Mode64)

	type step struct {
		off, len int
		class    Class
	}
	var want []step
	off := 0
	LinearSweep(code, 0x401000, Mode64, func(inst *Inst) bool {
		want = append(want, step{off, inst.Len, inst.Class})
		off += inst.Len
		return true
	})
	// Replicate the sweep's skip-on-error resynchronization with memo
	// lookups only: chain until it stops, then advance one byte — the
	// same recovery LinearSweep performs with a fresh decode.
	var got []step
	cur := 0
	for cur < len(code) {
		end := s.Chain(cur, func(off, length int, class Class) bool {
			got = append(got, step{off, length, class})
			return true
		})
		if end >= len(code) {
			break
		}
		if s.LenAt(end) != 0 {
			t.Fatalf("chain stopped at decodable offset %#x", end)
		}
		cur = end + 1
	}
	if len(got) != len(want) {
		t.Fatalf("chain visited %d instructions, sweep %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("step %d: chain %+v, sweep %+v", i, got[i], want[i])
		}
	}
}

// TestSupersetMarkers: the class-memo marker scan must agree with a
// direct decode scan for endbr instructions.
func TestSupersetMarkers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	code := GenText(32<<10, Mode64, rng, 0)
	const base = 0x401000
	s := BuildSuperset(code, base, Mode64)

	var want []uint64
	var inst Inst
	for off := 0; off < len(code); off++ {
		if DecodeInto(code[off:], base+uint64(off), Mode64, &inst) == nil && inst.IsEndbr() {
			want = append(want, base+uint64(off))
		}
	}
	got := s.Markers()
	if len(got) != len(want) {
		t.Fatalf("Markers: %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("marker %d: %#x, want %#x", i, got[i], want[i])
		}
	}
	if len(got) == 0 {
		t.Fatal("generated text contains no endbr markers")
	}
}
