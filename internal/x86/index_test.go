package x86

import "testing"

func TestBuildIndexMatchesSweepAll(t *testing.T) {
	code := []byte{
		0xF3, 0x0F, 0x1E, 0xFA, // endbr64
		0x55,             // push rbp
		0x48, 0x89, 0xE5, // mov rbp, rsp
		0xE8, 0x00, 0x00, 0x00, 0x00, // call +0
		0xC9, // leave
		0xC3, // ret
	}
	idx := BuildIndex(code, 0x4000, Mode64)
	flat := SweepAll(code, 0x4000, Mode64)
	if len(idx.Insts) != len(flat) {
		t.Fatalf("index has %d instructions, SweepAll %d", len(idx.Insts), len(flat))
	}
	for i := range flat {
		if idx.Insts[i].Addr != flat[i].Addr || idx.Insts[i].Len != flat[i].Len {
			t.Fatalf("inst %d: index %+v vs sweep %+v", i, idx.Insts[i], flat[i])
		}
	}
	if idx.Skipped != 0 {
		t.Errorf("Skipped = %d on well-formed code", idx.Skipped)
	}
}

func TestIndexAt(t *testing.T) {
	code := []byte{0x90, 0x90, 0xC3} // nop; nop; ret
	idx := BuildIndex(code, 0x100, Mode64)
	if inst, ok := idx.At(0x101); !ok || inst.Class != ClassNop {
		t.Errorf("At(0x101) = %+v, %v", inst, ok)
	}
	if _, ok := idx.At(0x103); ok {
		t.Error("At past the end must miss")
	}
	if _, ok := idx.At(0x0FF); ok {
		t.Error("At before the base must miss")
	}
}

func TestIndexRange(t *testing.T) {
	code := []byte{0x90, 0x90, 0x90, 0x90, 0xC3}
	idx := BuildIndex(code, 0x100, Mode64)
	if got := idx.Range(0x101, 0x104); len(got) != 3 {
		t.Errorf("Range(0x101,0x104) returned %d instructions, want 3", len(got))
	}
	if got := idx.Range(0x104, 0x104); got != nil {
		t.Errorf("empty range returned %d instructions", len(got))
	}
	if got := idx.Range(0x0, 0x1000); len(got) != 5 {
		t.Errorf("covering range returned %d instructions, want 5", len(got))
	}
}
