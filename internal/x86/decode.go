package x86

import "fmt"

// maxInstLen is the architectural limit on instruction length.
const maxInstLen = 15

// legacy prefix bytes.
const (
	prefixES      = 0x26
	prefixCS      = 0x2E
	prefixSS      = 0x36
	prefixDS      = 0x3E // doubles as the CET NOTRACK prefix
	prefixFS      = 0x64
	prefixGS      = 0x65
	prefixOpSize  = 0x66
	prefixAdSize  = 0x67
	prefixLock    = 0xF0
	prefixRepne   = 0xF2
	prefixRep     = 0xF3
	prefixNotrack = prefixDS
)

// decodeState carries the mutable state of one Decode call.
type decodeState struct {
	code []byte
	addr uint64
	mode Mode

	pos      int
	prefixes [4]byte // first legacy prefixes, in order
	nprefix  int     // total legacy prefix count (may exceed len(prefixes))
	rex      byte
	hasRex   bool
	opSize   bool // 0x66 seen
	adSize   bool // 0x67 seen
	rep      bool // 0xF3 seen
	repne    bool // 0xF2 seen
	notrack  bool // 0x3E seen
	vex      bool // VEX or EVEX encoded
	vexW     bool // VEX.W / EVEX.W
	vexPP    byte // implied SIMD prefix from VEX/EVEX

	opcodeMap int
	opcode    byte

	hasModRM bool
	modRM    byte
	sib      byte

	disp     int64
	hasDisp  bool
	ripRel   bool
	absDisp  bool
	imm      int64
	hasImm   bool
	immBytes int
}

func (d *decodeState) peek() (byte, error) {
	if d.pos >= len(d.code) {
		return 0, ErrTruncated
	}
	if d.pos >= maxInstLen {
		return 0, ErrTooLong
	}
	return d.code[d.pos], nil
}

func (d *decodeState) next() (byte, error) {
	b, err := d.peek()
	if err != nil {
		return 0, err
	}
	d.pos++
	return b, nil
}

func (d *decodeState) take(n int) ([]byte, error) {
	if d.pos+n > len(d.code) {
		return nil, ErrTruncated
	}
	if d.pos+n > maxInstLen {
		return nil, ErrTooLong
	}
	b := d.code[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// Decode decodes a single instruction from the front of code, assuming it
// is located at virtual address addr and executes in the given mode. At
// most the leading 15 bytes of code are examined.
func Decode(code []byte, addr uint64, mode Mode) (Inst, error) {
	var inst Inst
	if err := DecodeInto(code, addr, mode, &inst); err != nil {
		return Inst{}, err
	}
	return inst, nil
}

// DecodeInto decodes a single instruction from the front of code into
// *inst, overwriting it completely. It is the allocation-free form of
// Decode: hot loops reuse one Inst across calls instead of copying a
// fresh ~80-byte value per instruction. On error *inst is zeroed.
//
// Common compiler-emitted encodings — the single-byte families
// (push/pop, mov/lea, ret, nop, direct call/jmp/jcc, the ALU register
// forms) and the two-byte 0F families (Jcc rel32, setcc, cmovcc,
// movzx/movsx, multi-byte NOP, the endbr row), see fastpath.go — take a
// table-driven fast path that skips the full decodeState machinery; all
// remaining encodings fall back to the complete Intel-SDM walk. The two
// paths produce bit-identical Inst values (asserted by
// TestFastPathMatchesFullDecode and FuzzDecode).
func DecodeInto(code []byte, addr uint64, mode Mode, inst *Inst) error {
	if mode != Mode32 && mode != Mode64 {
		*inst = Inst{}
		return fmt.Errorf("x86: unsupported mode %d", int(mode))
	}
	if decodeFast(code, addr, mode, inst) {
		return nil
	}
	return decodeSlow(code, addr, mode, inst)
}

// decodeSlow is the full decode walk, used for every encoding the fast
// path declines.
func decodeSlow(code []byte, addr uint64, mode Mode, inst *Inst) error {
	d := decodeState{code: code, addr: addr, mode: mode}
	if err := d.run(); err != nil {
		*inst = Inst{}
		return err
	}
	d.finishInto(inst)
	return nil
}

func (d *decodeState) run() error {
	if err := d.parsePrefixes(); err != nil {
		return err
	}
	info, err := d.parseOpcode()
	if err != nil {
		return err
	}
	if info.has(fUndef) {
		return ErrInvalid
	}
	if d.mode == Mode64 && info.has(fInval64) {
		return ErrInvalid
	}
	if d.mode == Mode32 && info.has(fInval32) {
		return ErrInvalid
	}
	if info.has(fModRM) {
		if err := d.parseModRM(); err != nil {
			return err
		}
	}
	return d.parseImmediate(info)
}

// parsePrefixes consumes the legacy prefix run and, in 64-bit mode, a REX
// prefix. Hardware only honours a REX that immediately precedes the opcode,
// so a legacy prefix appearing after REX voids it.
func (d *decodeState) parsePrefixes() error {
	for {
		b, err := d.peek()
		if err != nil {
			return err
		}
		switch b {
		case prefixOpSize:
			d.opSize = true
		case prefixAdSize:
			d.adSize = true
		case prefixRep:
			d.rep = true
		case prefixRepne:
			d.repne = true
		case prefixDS:
			d.notrack = true
		case prefixES, prefixCS, prefixSS, prefixFS, prefixGS, prefixLock:
			// Segment overrides and LOCK do not alter instruction length.
		default:
			if d.mode == Mode64 && b >= 0x40 && b <= 0x4F {
				d.rex = b
				d.hasRex = true
				d.pos++
				// REX must be the final prefix byte.
				nb, err := d.peek()
				if err != nil {
					return err
				}
				if isLegacyPrefix(nb) || (nb >= 0x40 && nb <= 0x4F) {
					// Another prefix follows: this REX is dead.
					d.hasRex = false
					d.rex = 0
					continue
				}
				return nil
			}
			return nil
		}
		if d.nprefix < len(d.prefixes) {
			d.prefixes[d.nprefix] = b
		}
		d.nprefix++
		d.hasRex = false
		d.rex = 0
		d.pos++
	}
}

func isLegacyPrefix(b byte) bool {
	switch b {
	case prefixES, prefixCS, prefixSS, prefixDS, prefixFS, prefixGS,
		prefixOpSize, prefixAdSize, prefixLock, prefixRep, prefixRepne:
		return true
	default:
		return false
	}
}

// parseOpcode consumes the opcode byte(s), including VEX/EVEX introducers
// and the 0F / 0F 38 / 0F 3A escapes, and returns the attribute entry.
func (d *decodeState) parseOpcode() (opinfo, error) {
	b, err := d.next()
	if err != nil {
		return opinfo{}, err
	}

	// VEX / EVEX introducers. In 32-bit mode the bytes C4/C5/62 are only a
	// VEX/EVEX prefix when the following byte's top two bits are 11
	// (otherwise they decode as LES/LDS/BOUND with a memory ModRM).
	switch b {
	case 0xC5:
		if d.vexAmbiguityIsVex() {
			return d.parseVex2()
		}
	case 0xC4:
		if d.vexAmbiguityIsVex() {
			return d.parseVex3()
		}
	case 0x62:
		if d.vexAmbiguityIsVex() {
			return d.parseEvex()
		}
	}

	if b != 0x0F {
		d.opcodeMap = 1
		d.opcode = b
		return oneByte[b], nil
	}

	b2, err := d.next()
	if err != nil {
		return opinfo{}, err
	}
	switch b2 {
	case 0x38:
		b3, err := d.next()
		if err != nil {
			return opinfo{}, err
		}
		d.opcodeMap = 3
		d.opcode = b3
		return threeByte38, nil
	case 0x3A:
		b3, err := d.next()
		if err != nil {
			return opinfo{}, err
		}
		d.opcodeMap = 4
		d.opcode = b3
		return threeByte3A, nil
	default:
		d.opcodeMap = 2
		d.opcode = b2
		return twoByte[b2], nil
	}
}

// vexAmbiguityIsVex reports whether a C4/C5/62 byte at the current position
// introduces a VEX/EVEX prefix rather than LES/LDS/BOUND.
func (d *decodeState) vexAmbiguityIsVex() bool {
	if d.mode == Mode64 {
		return true
	}
	if d.pos >= len(d.code) {
		return false
	}
	return d.code[d.pos] >= 0xC0
}

func (d *decodeState) parseVex2() (opinfo, error) {
	p, err := d.next()
	if err != nil {
		return opinfo{}, err
	}
	d.vex = true
	d.vexPP = p & 3
	op, err := d.next()
	if err != nil {
		return opinfo{}, err
	}
	d.opcodeMap = 2
	d.opcode = op
	return twoByte[op], nil
}

func (d *decodeState) parseVex3() (opinfo, error) {
	p1, err := d.next()
	if err != nil {
		return opinfo{}, err
	}
	p2, err := d.next()
	if err != nil {
		return opinfo{}, err
	}
	d.vex = true
	d.vexW = p2&0x80 != 0
	d.vexPP = p2 & 3
	op, err := d.next()
	if err != nil {
		return opinfo{}, err
	}
	switch p1 & 0x1F {
	case 1:
		d.opcodeMap = 2
		d.opcode = op
		return twoByte[op], nil
	case 2:
		d.opcodeMap = 3
		d.opcode = op
		return threeByte38, nil
	case 3:
		d.opcodeMap = 4
		d.opcode = op
		return threeByte3A, nil
	default:
		return opinfo{}, ErrInvalid
	}
}

func (d *decodeState) parseEvex() (opinfo, error) {
	p, err := d.take(3)
	if err != nil {
		return opinfo{}, err
	}
	d.vex = true
	d.vexW = p[1]&0x80 != 0
	d.vexPP = p[1] & 3
	op, err := d.next()
	if err != nil {
		return opinfo{}, err
	}
	switch p[0] & 0x07 {
	case 1:
		d.opcodeMap = 2
		d.opcode = op
		return twoByte[op], nil
	case 2:
		d.opcodeMap = 3
		d.opcode = op
		return threeByte38, nil
	case 3:
		d.opcodeMap = 4
		d.opcode = op
		return threeByte3A, nil
	default:
		return opinfo{}, ErrInvalid
	}
}

// addr16 reports whether the effective address size is 16 bits.
func (d *decodeState) addr16() bool {
	return d.mode == Mode32 && d.adSize
}

func (d *decodeState) parseModRM() error {
	m, err := d.next()
	if err != nil {
		return err
	}
	d.hasModRM = true
	d.modRM = m
	mod := int(m>>6) & 3
	rm := int(m) & 7
	if mod == 3 {
		return nil
	}
	if d.addr16() {
		// 16-bit addressing form: no SIB, disp16 instead of disp32.
		switch {
		case mod == 0 && rm == 6:
			return d.readDisp(2, true)
		case mod == 1:
			return d.readDisp(1, false)
		case mod == 2:
			return d.readDisp(2, false)
		}
		return nil
	}
	// 32/64-bit addressing form.
	hasSIB := rm == 4
	sibBase := -1
	if hasSIB {
		sib, err := d.next()
		if err != nil {
			return err
		}
		d.sib = sib
		sibBase = int(sib) & 7
	}
	switch mod {
	case 0:
		if !hasSIB && rm == 5 {
			// disp32: RIP-relative in 64-bit mode, absolute in 32-bit.
			if err := d.readDisp(4, d.mode == Mode32); err != nil {
				return err
			}
			if d.mode == Mode64 {
				d.ripRel = true
			}
			return nil
		}
		if hasSIB && sibBase == 5 {
			return d.readDisp(4, true)
		}
		return nil
	case 1:
		return d.readDisp(1, false)
	case 2:
		return d.readDisp(4, false)
	}
	return nil
}

// readDisp consumes an n-byte little-endian displacement. abs marks
// displacements that form an absolute address (no base register).
func (d *decodeState) readDisp(n int, abs bool) error {
	b, err := d.take(n)
	if err != nil {
		return err
	}
	d.disp = signExtendLE(b)
	d.hasDisp = true
	d.absDisp = abs
	return nil
}

// effOpSize returns the effective operand size in bytes (2, 4, or 8) for
// immediate sizing.
func (d *decodeState) effOpSize(info opinfo) int {
	if d.mode == Mode64 {
		if d.hasRex && d.rex&0x08 != 0 || d.vexW {
			return 8
		}
		if d.opSize {
			return 2
		}
		return 4
	}
	if d.opSize {
		return 2
	}
	return 4
}

func (d *decodeState) parseImmediate(info opinfo) error {
	kind := info.imm
	if info.has(fGroup3) && d.hasModRM {
		// F6/F7: the immediate exists only for the TEST forms (/0, /1).
		if reg := int(d.modRM>>3) & 7; reg != 0 && reg != 1 {
			return nil
		}
	}
	switch kind {
	case immNone:
		return nil
	case imm8:
		return d.readImm(1)
	case imm16:
		return d.readImm(2)
	case imm16x8:
		if err := d.readImm(2); err != nil {
			return err
		}
		_, err := d.next() // the nesting-level byte of ENTER
		return err
	case immZ:
		n := d.effOpSize(info)
		if n == 8 {
			n = 4 // iz immediates never exceed 32 bits
		}
		return d.readImm(n)
	case immV:
		return d.readImm(d.effOpSize(info))
	case immAddr:
		n := 4
		if d.mode == Mode64 {
			n = 8
			if d.adSize {
				n = 4
			}
		} else if d.adSize {
			n = 2
		}
		return d.readImm(n)
	case rel8:
		return d.readImm(1)
	case relZ:
		// Near-branch displacements are always 32 bits in 64-bit mode
		// (operand size defaults to 64 and 66 is ignored by shipping
		// CPUs); in 32-bit mode a 66 prefix selects rel16.
		n := 4
		if d.mode == Mode32 && d.opSize {
			n = 2
		}
		return d.readImm(n)
	case farPtr:
		n := 6
		if d.opSize {
			n = 4
		}
		_, err := d.take(n)
		return err
	default:
		return fmt.Errorf("x86: unknown immediate kind %d", kind)
	}
}

func (d *decodeState) readImm(n int) error {
	b, err := d.take(n)
	if err != nil {
		return err
	}
	d.imm = signExtendLE(b)
	d.hasImm = true
	d.immBytes = n
	return nil
}

func signExtendLE(b []byte) int64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	shift := uint(64 - 8*len(b))
	return int64(v<<shift) >> shift
}

// finish assembles the Inst from the decode state, classifying the
// instruction and materializing branch targets.
func (d *decodeState) finish() Inst {
	var inst Inst
	d.finishInto(&inst)
	return inst
}

// finishInto assembles the decode state into *inst, overwriting it.
func (d *decodeState) finishInto(inst *Inst) {
	*inst = Inst{
		Addr:      d.addr,
		Len:       d.pos,
		Class:     ClassOther,
		Opcode:    d.opcode,
		OpcodeMap: d.opcodeMap,
		ModRM:     d.modRM,
		HasModRM:  d.hasModRM,
		Imm:       d.imm,
		HasImm:    d.hasImm,
		Prefix:    d.prefixes,
		NPrefix:   uint8(min(d.nprefix, 255)),
	}
	d.classify(inst)
	if d.hasDisp {
		if d.ripRel {
			inst.RIPRef = d.truncate(d.addr + uint64(d.pos) + uint64(d.disp))
			inst.HasRIPRef = true
		} else if d.absDisp && !d.addr16() {
			inst.MemDisp = uint64(uint32(d.disp))
			inst.HasMemDisp = true
		}
	}
}

// truncate wraps an address to the mode's pointer width.
func (d *decodeState) truncate(v uint64) uint64 {
	if d.mode == Mode32 {
		return uint64(uint32(v))
	}
	return v
}

func (d *decodeState) classify(inst *Inst) {
	setTarget := func() {
		inst.Target = d.truncate(d.addr + uint64(d.pos) + uint64(d.imm))
		inst.HasTarget = true
	}
	if d.vex {
		return // no VEX instruction is branch-relevant
	}
	switch d.opcodeMap {
	case 1:
		switch op := d.opcode; {
		case op == 0xE8:
			inst.Class = ClassCallRel
			setTarget()
		case op == 0xE9 || op == 0xEB:
			inst.Class = ClassJmpRel
			setTarget()
		case op >= 0x70 && op <= 0x7F, op >= 0xE0 && op <= 0xE3:
			inst.Class = ClassJccRel
			setTarget()
		case op == 0xC3 || op == 0xC2 || op == 0xCB || op == 0xCA:
			inst.Class = ClassRet
		case op == 0xCC:
			inst.Class = ClassInt3
		case op == 0xF4:
			inst.Class = ClassHlt
		case op == 0xC9:
			inst.Class = ClassLeave
		case op == 0x90:
			// Plain NOP and the 66-prefixed two-byte NOP. F3 90 is
			// PAUSE; REX.B 90 is XCHG R8.
			if !d.rep && !d.repne && (!d.hasRex || d.rex&1 == 0) {
				inst.Class = ClassNop
			}
		case op == 0xFF:
			switch inst.Reg() {
			case 2:
				inst.Class = ClassCallInd
				inst.Notrack = d.notrack
			case 4:
				inst.Class = ClassJmpInd
				inst.Notrack = d.notrack
			}
		}
	case 2:
		switch op := d.opcode; {
		case op >= 0x80 && op <= 0x8F:
			inst.Class = ClassJccRel
			setTarget()
		case op == 0x1E:
			// F3 0F 1E FA = ENDBR64, F3 0F 1E FB = ENDBR32. Any other
			// ModRM value is a reserved hint NOP.
			if d.rep && d.hasModRM {
				switch d.modRM {
				case 0xFA:
					inst.Class = ClassEndbr64
				case 0xFB:
					inst.Class = ClassEndbr32
				}
			}
		case op == 0x1F:
			inst.Class = ClassNop
		case op == 0x0B || op == 0xB9:
			inst.Class = ClassUD
		}
	}
}

// DecodeLen returns only the length of the instruction at the front of
// code. It is equivalent to Decode(...).Len but avoids building the Inst.
func DecodeLen(code []byte, mode Mode) (int, error) {
	inst, err := Decode(code, 0, mode)
	if err != nil {
		return 0, err
	}
	return inst.Len, nil
}
