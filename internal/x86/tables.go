package x86

// Opcode attribute tables. Each opcode maps to an opinfo describing whether
// a ModRM byte follows and what immediate-operand shape the instruction
// carries. The tables mirror the opcode maps in the Intel SDM Volume 2
// appendix A ("Opcode Map").

// immKind enumerates immediate-operand shapes.
type immKind uint8

const (
	immNone immKind = iota
	// imm8 is a 1-byte immediate (ib).
	imm8
	// imm16 is a 2-byte immediate (iw).
	imm16
	// imm16x8 is ENTER's iw+ib pair.
	imm16x8
	// immZ is a 16- or 32-bit immediate selected by operand size (iz).
	immZ
	// immV is a full operand-sized immediate: 16, 32, or (with REX.W on
	// B8-BF) 64 bits (iv).
	immV
	// immAddr is a moffs absolute address sized by the address size (A0-A3).
	immAddr
	// rel8 is a 1-byte relative branch displacement.
	rel8
	// relZ is a 16- or 32-bit relative branch displacement by operand size.
	relZ
	// farPtr is a ptr16:16 / ptr16:32 far-pointer immediate by operand size.
	farPtr
)

// opflag is a bit set of opcode properties.
type opflag uint16

const (
	// fModRM marks opcodes followed by a ModRM byte.
	fModRM opflag = 1 << iota
	// fInval64 marks opcodes that do not decode in 64-bit mode.
	fInval64
	// fInval32 marks opcodes that do not decode in 32-bit mode.
	fInval32
	// fPrefix marks legacy prefix bytes.
	fPrefix
	// fGroup3 marks F6/F7: the immediate is present only for /0 and /1.
	fGroup3
	// fUndef marks permanently undefined opcodes (decode error).
	fUndef
	// fDefault64 marks opcodes whose operand size defaults to 64 bits in
	// long mode (near branches, push/pop); a 66 prefix is ignored for
	// their relative displacement size by all shipping implementations.
	fDefault64
)

// opinfo is a single opcode-map entry.
type opinfo struct {
	flags opflag
	imm   immKind
}

func (o opinfo) has(f opflag) bool { return o.flags&f != 0 }

// modrm is shorthand for a plain ModRM-carrying entry.
var modrm = opinfo{flags: fModRM}

// none is shorthand for a bare one-byte instruction.
var none = opinfo{}

// oneByte is the primary (one-byte) opcode map. Escape bytes (0F), prefix
// bytes, and VEX/EVEX introducers are marked and handled by the decoder
// before this table is consulted for attributes.
var oneByte = [256]opinfo{
	// 0x00-0x07: ADD, PUSH ES, POP ES
	0x00: modrm, 0x01: modrm, 0x02: modrm, 0x03: modrm,
	0x04: {imm: imm8}, 0x05: {imm: immZ},
	0x06: {flags: fInval64}, 0x07: {flags: fInval64},
	// 0x08-0x0F: OR, PUSH CS, 0F escape
	0x08: modrm, 0x09: modrm, 0x0A: modrm, 0x0B: modrm,
	0x0C: {imm: imm8}, 0x0D: {imm: immZ},
	0x0E: {flags: fInval64},
	0x0F: none, // two-byte escape, handled in the decoder
	// 0x10-0x17: ADC, PUSH/POP SS
	0x10: modrm, 0x11: modrm, 0x12: modrm, 0x13: modrm,
	0x14: {imm: imm8}, 0x15: {imm: immZ},
	0x16: {flags: fInval64}, 0x17: {flags: fInval64},
	// 0x18-0x1F: SBB, PUSH/POP DS
	0x18: modrm, 0x19: modrm, 0x1A: modrm, 0x1B: modrm,
	0x1C: {imm: imm8}, 0x1D: {imm: immZ},
	0x1E: {flags: fInval64}, 0x1F: {flags: fInval64},
	// 0x20-0x27: AND, ES prefix, DAA
	0x20: modrm, 0x21: modrm, 0x22: modrm, 0x23: modrm,
	0x24: {imm: imm8}, 0x25: {imm: immZ},
	0x26: {flags: fPrefix}, 0x27: {flags: fInval64},
	// 0x28-0x2F: SUB, CS prefix, DAS
	0x28: modrm, 0x29: modrm, 0x2A: modrm, 0x2B: modrm,
	0x2C: {imm: imm8}, 0x2D: {imm: immZ},
	0x2E: {flags: fPrefix}, 0x2F: {flags: fInval64},
	// 0x30-0x37: XOR, SS prefix, AAA
	0x30: modrm, 0x31: modrm, 0x32: modrm, 0x33: modrm,
	0x34: {imm: imm8}, 0x35: {imm: immZ},
	0x36: {flags: fPrefix}, 0x37: {flags: fInval64},
	// 0x38-0x3F: CMP, DS prefix (doubles as NOTRACK), AAS
	0x38: modrm, 0x39: modrm, 0x3A: modrm, 0x3B: modrm,
	0x3C: {imm: imm8}, 0x3D: {imm: immZ},
	0x3E: {flags: fPrefix}, 0x3F: {flags: fInval64},
	// 0x40-0x4F: INC/DEC r32 (32-bit) — REX prefixes in 64-bit mode,
	// handled by the decoder before table lookup.
	0x40: none, 0x41: none, 0x42: none, 0x43: none,
	0x44: none, 0x45: none, 0x46: none, 0x47: none,
	0x48: none, 0x49: none, 0x4A: none, 0x4B: none,
	0x4C: none, 0x4D: none, 0x4E: none, 0x4F: none,
	// 0x50-0x5F: PUSH/POP reg
	0x50: {flags: fDefault64}, 0x51: {flags: fDefault64},
	0x52: {flags: fDefault64}, 0x53: {flags: fDefault64},
	0x54: {flags: fDefault64}, 0x55: {flags: fDefault64},
	0x56: {flags: fDefault64}, 0x57: {flags: fDefault64},
	0x58: {flags: fDefault64}, 0x59: {flags: fDefault64},
	0x5A: {flags: fDefault64}, 0x5B: {flags: fDefault64},
	0x5C: {flags: fDefault64}, 0x5D: {flags: fDefault64},
	0x5E: {flags: fDefault64}, 0x5F: {flags: fDefault64},
	// 0x60-0x67: PUSHA/POPA, BOUND, ARPL/MOVSXD, seg + size prefixes
	0x60: {flags: fInval64}, 0x61: {flags: fInval64},
	0x62: {flags: fModRM | fInval64}, // BOUND (32-bit); EVEX handled by decoder
	0x63: modrm,                      // ARPL (32) / MOVSXD (64)
	0x64: {flags: fPrefix}, 0x65: {flags: fPrefix},
	0x66: {flags: fPrefix}, 0x67: {flags: fPrefix},
	// 0x68-0x6F: PUSH iz, IMUL, PUSH ib, INS/OUTS
	0x68: {flags: fDefault64, imm: immZ},
	0x69: {flags: fModRM, imm: immZ},
	0x6A: {flags: fDefault64, imm: imm8},
	0x6B: {flags: fModRM, imm: imm8},
	0x6C: none, 0x6D: none, 0x6E: none, 0x6F: none,
	// 0x70-0x7F: Jcc rel8
	0x70: {flags: fDefault64, imm: rel8}, 0x71: {flags: fDefault64, imm: rel8},
	0x72: {flags: fDefault64, imm: rel8}, 0x73: {flags: fDefault64, imm: rel8},
	0x74: {flags: fDefault64, imm: rel8}, 0x75: {flags: fDefault64, imm: rel8},
	0x76: {flags: fDefault64, imm: rel8}, 0x77: {flags: fDefault64, imm: rel8},
	0x78: {flags: fDefault64, imm: rel8}, 0x79: {flags: fDefault64, imm: rel8},
	0x7A: {flags: fDefault64, imm: rel8}, 0x7B: {flags: fDefault64, imm: rel8},
	0x7C: {flags: fDefault64, imm: rel8}, 0x7D: {flags: fDefault64, imm: rel8},
	0x7E: {flags: fDefault64, imm: rel8}, 0x7F: {flags: fDefault64, imm: rel8},
	// 0x80-0x8F: immediate group 1, TEST/XCHG/MOV/LEA, POP r/m
	0x80: {flags: fModRM, imm: imm8},
	0x81: {flags: fModRM, imm: immZ},
	0x82: {flags: fModRM | fInval64, imm: imm8}, // alias of 0x80
	0x83: {flags: fModRM, imm: imm8},
	0x84: modrm, 0x85: modrm, 0x86: modrm, 0x87: modrm,
	0x88: modrm, 0x89: modrm, 0x8A: modrm, 0x8B: modrm,
	0x8C: modrm, 0x8D: modrm, 0x8E: modrm,
	0x8F: {flags: fModRM | fDefault64}, // POP r/m (group 1A)
	// 0x90-0x9F: XCHG/NOP, CBW/CWD, CALLF, WAIT, PUSHF/POPF, SAHF/LAHF
	0x90: none, 0x91: none, 0x92: none, 0x93: none,
	0x94: none, 0x95: none, 0x96: none, 0x97: none,
	0x98: none, 0x99: none,
	0x9A: {flags: fInval64, imm: farPtr},
	0x9B: none,
	0x9C: {flags: fDefault64}, 0x9D: {flags: fDefault64},
	0x9E: none, 0x9F: none,
	// 0xA0-0xAF: MOV moffs, MOVS/CMPS, TEST, STOS/LODS/SCAS
	0xA0: {imm: immAddr}, 0xA1: {imm: immAddr},
	0xA2: {imm: immAddr}, 0xA3: {imm: immAddr},
	0xA4: none, 0xA5: none, 0xA6: none, 0xA7: none,
	0xA8: {imm: imm8}, 0xA9: {imm: immZ},
	0xAA: none, 0xAB: none, 0xAC: none, 0xAD: none,
	0xAE: none, 0xAF: none,
	// 0xB0-0xBF: MOV reg, imm
	0xB0: {imm: imm8}, 0xB1: {imm: imm8}, 0xB2: {imm: imm8}, 0xB3: {imm: imm8},
	0xB4: {imm: imm8}, 0xB5: {imm: imm8}, 0xB6: {imm: imm8}, 0xB7: {imm: imm8},
	0xB8: {imm: immV}, 0xB9: {imm: immV}, 0xBA: {imm: immV}, 0xBB: {imm: immV},
	0xBC: {imm: immV}, 0xBD: {imm: immV}, 0xBE: {imm: immV}, 0xBF: {imm: immV},
	// 0xC0-0xCF: shift groups, RET, LES/LDS (VEX), MOV imm, ENTER/LEAVE, INT
	0xC0: {flags: fModRM, imm: imm8},
	0xC1: {flags: fModRM, imm: imm8},
	0xC2: {flags: fDefault64, imm: imm16},
	0xC3: {flags: fDefault64},
	0xC4: {flags: fModRM | fInval64}, // LES (32-bit); VEX handled by decoder
	0xC5: {flags: fModRM | fInval64}, // LDS (32-bit); VEX handled by decoder
	0xC6: {flags: fModRM, imm: imm8},
	0xC7: {flags: fModRM, imm: immZ},
	0xC8: {imm: imm16x8},
	0xC9: {flags: fDefault64},
	0xCA: {imm: imm16}, 0xCB: none,
	0xCC: none,
	0xCD: {imm: imm8},
	0xCE: {flags: fInval64},
	0xCF: none,
	// 0xD0-0xDF: shift groups, AAM/AAD, XLAT, x87 escapes
	0xD0: modrm, 0xD1: modrm, 0xD2: modrm, 0xD3: modrm,
	0xD4: {flags: fInval64, imm: imm8},
	0xD5: {flags: fInval64, imm: imm8},
	0xD6: {flags: fInval64}, // SALC
	0xD7: none,
	0xD8: modrm, 0xD9: modrm, 0xDA: modrm, 0xDB: modrm,
	0xDC: modrm, 0xDD: modrm, 0xDE: modrm, 0xDF: modrm,
	// 0xE0-0xEF: LOOP/JCXZ, IN/OUT, CALL/JMP
	0xE0: {flags: fDefault64, imm: rel8}, 0xE1: {flags: fDefault64, imm: rel8},
	0xE2: {flags: fDefault64, imm: rel8}, 0xE3: {flags: fDefault64, imm: rel8},
	0xE4: {imm: imm8}, 0xE5: {imm: imm8},
	0xE6: {imm: imm8}, 0xE7: {imm: imm8},
	0xE8: {flags: fDefault64, imm: relZ},
	0xE9: {flags: fDefault64, imm: relZ},
	0xEA: {flags: fInval64, imm: farPtr},
	0xEB: {flags: fDefault64, imm: rel8},
	0xEC: none, 0xED: none, 0xEE: none, 0xEF: none,
	// 0xF0-0xFF: LOCK/REP prefixes, HLT, group 3, CLC..STD, groups 4/5
	0xF0: {flags: fPrefix},
	0xF1: none, // INT1/ICEBP
	0xF2: {flags: fPrefix}, 0xF3: {flags: fPrefix},
	0xF4: none, 0xF5: none,
	0xF6: {flags: fModRM | fGroup3, imm: imm8},
	0xF7: {flags: fModRM | fGroup3, imm: immZ},
	0xF8: none, 0xF9: none, 0xFA: none, 0xFB: none,
	0xFC: none, 0xFD: none,
	0xFE: modrm,
	0xFF: {flags: fModRM | fDefault64},
}

// twoByte is the 0F-escaped opcode map.
var twoByte = buildTwoByte()

func buildTwoByte() [256]opinfo {
	var t [256]opinfo
	// Default: the overwhelming majority of 0F opcodes carry a ModRM byte
	// (SSE/MMX register-register and register-memory forms).
	for i := range t {
		t[i] = modrm
	}
	noModRM := []int{
		0x05, // SYSCALL
		0x06, // CLTS
		0x07, // SYSRET
		0x08, // INVD
		0x09, // WBINVD
		0x0B, // UD2
		0x0E, // FEMMS (3DNow!)
		0x30, // WRMSR
		0x31, // RDTSC
		0x32, // RDMSR
		0x33, // RDPMC
		0x34, // SYSENTER
		0x35, // SYSEXIT
		0x37, // GETSEC
		0x77, // EMMS
		0xA0, // PUSH FS
		0xA1, // POP FS
		0xA2, // CPUID
		0xA8, // PUSH GS
		0xA9, // POP GS
		0xAA, // RSM
	}
	for _, op := range noModRM {
		t[op] = none
	}
	// PUSH/POP FS/GS default to 64-bit operands in long mode.
	t[0xA0].flags |= fDefault64
	t[0xA1].flags |= fDefault64
	t[0xA8].flags |= fDefault64
	t[0xA9].flags |= fDefault64
	// BSWAP reg
	for op := 0xC8; op <= 0xCF; op++ {
		t[op] = none
	}
	// Jcc relZ
	for op := 0x80; op <= 0x8F; op++ {
		t[op] = opinfo{flags: fDefault64, imm: relZ}
	}
	// ModRM + imm8 forms.
	withImm8 := []int{
		0x0F, // 3DNow! suffix byte (decoded as imm8)
		0x70, // PSHUFW/PSHUFD family
		0x71, // group 12
		0x72, // group 13
		0x73, // group 14
		0xA4, // SHLD imm8
		0xAC, // SHRD imm8
		0xBA, // group 8 (BT/BTS/BTR/BTC imm8)
		0xC2, // CMPPS/CMPSS imm8
		0xC4, // PINSRW imm8
		0xC5, // PEXTRW imm8
		0xC6, // SHUFPS imm8
	}
	for _, op := range withImm8 {
		t[op] = opinfo{flags: fModRM, imm: imm8}
	}
	// Undefined / reserved rows that must fail decoding.
	undef := []int{0x04, 0x0A, 0x0C, 0x24, 0x25, 0x26, 0x27, 0x36, 0x39, 0x3B, 0x3C, 0x3D, 0x3E, 0x3F, 0x7A, 0x7B, 0xA6, 0xA7}
	for _, op := range undef {
		t[op] = opinfo{flags: fUndef}
	}
	// 0x38 / 0x3A escape to the three-byte maps; the decoder intercepts
	// them before consulting attributes.
	t[0x38] = none
	t[0x3A] = none
	return t
}

// threeByte38 attributes: every 0F 38 instruction carries ModRM and no
// immediate.
var threeByte38 = opinfo{flags: fModRM}

// threeByte3A attributes: every 0F 3A instruction carries ModRM plus an
// imm8 selector.
var threeByte3A = opinfo{flags: fModRM, imm: imm8}
