// Package x86 implements an x86 / x86-64 instruction decoder tailored to
// linear-sweep disassembly of compiler-generated code.
//
// The decoder recovers the exact length of every instruction (legacy
// prefixes, REX, VEX, EVEX, ModRM/SIB, displacement, immediate) and
// classifies the instructions binary-analysis tools care about: CET
// end-branch markers, direct and indirect branches, calls, returns, and
// padding. Direct branch targets and RIP-relative memory references are
// materialized as absolute virtual addresses.
//
// The design follows the decode model of the Intel SDM Volume 2: a legacy
// prefix run, an optional REX/VEX/EVEX prefix, a one-, two-, or three-byte
// opcode selecting an attribute entry (ModRM present? immediate kind?), and
// the addressing-form bytes dictated by ModRM/SIB and the effective address
// size.
package x86

import (
	"errors"
	"fmt"
)

// Mode selects the CPU operating mode the bytes are decoded under.
type Mode int

// Supported decode modes.
const (
	// Mode32 decodes as 32-bit protected mode code (compat / IA-32).
	Mode32 Mode = 32
	// Mode64 decodes as 64-bit long mode code.
	Mode64 Mode = 64
)

// String returns "x86" or "x86-64".
func (m Mode) String() string {
	switch m {
	case Mode32:
		return "x86"
	case Mode64:
		return "x86-64"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Class is a coarse classification of a decoded instruction. Only the
// categories relevant to function identification are distinguished; all
// remaining instructions decode as ClassOther.
type Class int

// Instruction classes.
const (
	// ClassOther is any instruction without a dedicated class below.
	ClassOther Class = iota
	// ClassEndbr64 is the 64-bit CET end-branch marker (F3 0F 1E FA).
	ClassEndbr64
	// ClassEndbr32 is the 32-bit CET end-branch marker (F3 0F 1E FB).
	ClassEndbr32
	// ClassCallRel is a direct near call with a relative displacement (E8).
	ClassCallRel
	// ClassJmpRel is a direct unconditional near jump (E9 / EB).
	ClassJmpRel
	// ClassJccRel is a conditional near jump (70-7F, 0F 80-8F, E0-E3).
	ClassJccRel
	// ClassCallInd is an indirect near call (FF /2).
	ClassCallInd
	// ClassJmpInd is an indirect near jump (FF /4).
	ClassJmpInd
	// ClassRet is a near or far return (C3, C2, CB, CA).
	ClassRet
	// ClassInt3 is the software-breakpoint padding byte (CC).
	ClassInt3
	// ClassNop is a canonical no-op: 90, 66 90, or the 0F 1F multi-byte
	// NOP family used by compilers for alignment padding.
	ClassNop
	// ClassHlt is HLT (F4).
	ClassHlt
	// ClassUD is an intentional undefined instruction (0F 0B UD2, 0F B9 UD1).
	ClassUD
	// ClassLeave is LEAVE (C9).
	ClassLeave
)

var classNames = map[Class]string{
	ClassOther:   "other",
	ClassEndbr64: "endbr64",
	ClassEndbr32: "endbr32",
	ClassCallRel: "call-rel",
	ClassJmpRel:  "jmp-rel",
	ClassJccRel:  "jcc-rel",
	ClassCallInd: "call-ind",
	ClassJmpInd:  "jmp-ind",
	ClassRet:     "ret",
	ClassInt3:    "int3",
	ClassNop:     "nop",
	ClassHlt:     "hlt",
	ClassUD:      "ud",
	ClassLeave:   "leave",
}

// String returns a short lowercase name for the class.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// IsBranch reports whether the class transfers control.
func (c Class) IsBranch() bool {
	switch c {
	case ClassCallRel, ClassJmpRel, ClassJccRel, ClassCallInd, ClassJmpInd, ClassRet:
		return true
	default:
		return false
	}
}

// Inst is one decoded instruction.
type Inst struct {
	// Addr is the virtual address the instruction was decoded at.
	Addr uint64
	// Len is the total encoded length in bytes (1..15).
	Len int
	// Class is the coarse classification.
	Class Class

	// Target is the absolute destination of a direct branch
	// (ClassCallRel / ClassJmpRel / ClassJccRel). Valid when HasTarget.
	Target uint64
	// HasTarget reports whether Target is meaningful.
	HasTarget bool

	// RIPRef is the absolute address referenced by a RIP-relative memory
	// operand (64-bit mode only). Valid when HasRIPRef. This is how
	// x86-64 code addresses PLT-adjacent thunks and globals.
	RIPRef uint64
	// HasRIPRef reports whether RIPRef is meaningful.
	HasRIPRef bool

	// MemDisp is the raw (sign-extended) memory displacement when the
	// instruction has a memory operand with an absolute displacement and
	// no base register (mod=00, rm=101 in 32-bit mode, or a SIB with no
	// base). Used to resolve 32-bit non-PIC indirect targets. Valid when
	// HasMemDisp.
	MemDisp uint64
	// HasMemDisp reports whether MemDisp is meaningful.
	HasMemDisp bool

	// Notrack reports whether the CET NOTRACK (3E) prefix applies to an
	// indirect branch.
	Notrack bool

	// Opcode is the primary opcode byte (after escapes the last opcode
	// byte, e.g. 0x1E for F3 0F 1E FA).
	Opcode byte
	// OpcodeMap identifies the opcode map: 1 = one-byte, 2 = 0F,
	// 3 = 0F 38, 4 = 0F 3A.
	OpcodeMap int
	// ModRM is the ModRM byte. Valid when HasModRM.
	ModRM byte
	// HasModRM reports whether the instruction carried a ModRM byte.
	HasModRM bool
	// Imm is the sign-extended immediate operand, when one exists.
	Imm int64
	// HasImm reports whether Imm is meaningful.
	HasImm bool

	// Prefix records the first legacy prefixes seen, in order. Real
	// compiler output never exceeds the four architectural prefix groups;
	// the fixed array keeps Inst free of heap pointers so decoding is
	// allocation-free and Inst values are comparable with ==.
	Prefix [4]byte
	// NPrefix counts every legacy prefix seen. Degenerate hand-written
	// encodings may carry more than len(Prefix) prefixes; the overflow is
	// counted here but not recorded byte-for-byte.
	NPrefix uint8
}

// Prefixes returns the recorded legacy prefixes, in order. At most the
// first len(Prefix) prefixes of a degenerate over-prefixed encoding are
// available; NPrefix holds the true count.
func (i *Inst) Prefixes() []byte {
	n := int(i.NPrefix)
	if n > len(i.Prefix) {
		n = len(i.Prefix)
	}
	return i.Prefix[:n]
}

// Reg returns the ModRM.reg field (the /digit selecting a group member).
func (i Inst) Reg() int { return int(i.ModRM>>3) & 7 }

// Mod returns the ModRM.mod field.
func (i Inst) Mod() int { return int(i.ModRM>>6) & 3 }

// RM returns the ModRM.rm field.
func (i Inst) RM() int { return int(i.ModRM) & 7 }

// Next returns the address of the following instruction.
func (i Inst) Next() uint64 { return i.Addr + uint64(i.Len) }

// IsEndbr reports whether the instruction is an end-branch marker of
// either width.
func (i Inst) IsEndbr() bool {
	return i.Class == ClassEndbr64 || i.Class == ClassEndbr32
}

// Decoding errors.
var (
	// ErrTruncated is returned when the byte stream ends mid-instruction.
	ErrTruncated = errors.New("x86: truncated instruction")
	// ErrInvalid is returned for byte sequences that do not decode to a
	// valid instruction in the selected mode.
	ErrInvalid = errors.New("x86: invalid instruction")
	// ErrTooLong is returned when the encoding exceeds the architectural
	// 15-byte limit.
	ErrTooLong = errors.New("x86: instruction exceeds 15 bytes")
)
