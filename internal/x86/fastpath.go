package x86

// Table-driven fast path for the opcode families that dominate
// compiler-generated text: push/pop, mov/lea, the ALU register forms,
// test/cmp, shifts, direct call/jmp/jcc, ret, nop, int3, and the FF
// indirect-branch group. Profiling the linear sweep shows >90% of decoded
// instructions start with one of these first bytes (optionally behind a
// single REX prefix), so skipping the general decodeState walk for them
// roughly halves the per-instruction cost.
//
// The contract is strict: for every byte sequence the fast path accepts,
// it must produce an Inst bit-identical to the full decoder's. Anything
// ambiguous — legacy prefixes, escapes, VEX/EVEX, mode-dependent
// validity, truncated buffers — is declined (return false) and falls
// back to decodeSlow. TestFastPathMatchesFullDecode and FuzzDecode
// enforce the equivalence.

// fastKind describes how a fast-path opcode's operands are shaped.
type fastKind uint8

const (
	// fkNone marks bytes the fast path declines (prefixes, escapes,
	// mode-dependent validity, immediates sized by prefix state).
	fkNone fastKind = iota
	// fkLen1 is a bare one-byte instruction.
	fkLen1
	// fkImm8 / fkImm16 / fkImmZ are opcode + fixed-size immediate. With
	// no legacy prefixes in play, iz immediates are always 4 bytes.
	fkImm8
	fkImm16
	fkImmZ
	// fkImmV is MOV r, iv: 4 bytes, or 8 under REX.W.
	fkImmV
	// fkRel8 / fkRel32 are direct branches with a relative displacement.
	fkRel8
	fkRel32
	// fkModRM is opcode + ModRM addressing form, no immediate.
	fkModRM
	// fkModRMImm8 / fkModRMImmZ add a trailing immediate.
	fkModRMImm8
	fkModRMImmZ
	// fkModRMGroup5 is FF: ModRM with the class selected by /reg
	// (2 = indirect call, 4 = indirect jump).
	fkModRMGroup5
)

// fastOp is one fast-path opcode-table entry.
type fastOp struct {
	kind  fastKind
	class Class
}

// fastOps maps a first opcode byte (after an optional REX in 64-bit
// mode) to its fast-path handling. Entries are valid in both modes: any
// byte whose length or validity differs between Mode32 and Mode64 —
// other than 40-4F, which the caller intercepts as REX before the
// lookup — stays fkNone.
var fastOps = buildFastOps()

func buildFastOps() [256]fastOp {
	var t [256]fastOp
	set := func(class Class, kind fastKind, ops ...int) {
		for _, op := range ops {
			t[op] = fastOp{kind: kind, class: class}
		}
	}
	// ALU r/m forms: ADD/OR/ADC/SBB/AND/SUB/XOR/CMP.
	for _, base := range []int{0x00, 0x08, 0x10, 0x18, 0x20, 0x28, 0x30, 0x38} {
		set(ClassOther, fkModRM, base, base+1, base+2, base+3)
		set(ClassOther, fkImm8, base+4)
		set(ClassOther, fkImmZ, base+5)
	}
	// INC/DEC r32 (Mode32 only — Mode64 consumes 40-4F as REX first).
	for op := 0x40; op <= 0x4F; op++ {
		set(ClassOther, fkLen1, op)
	}
	// PUSH/POP reg.
	for op := 0x50; op <= 0x5F; op++ {
		set(ClassOther, fkLen1, op)
	}
	set(ClassOther, fkModRM, 0x63) // ARPL (32) / MOVSXD (64): ModRM in both
	set(ClassOther, fkImmZ, 0x68)  // PUSH iz
	set(ClassOther, fkModRMImmZ, 0x69)
	set(ClassOther, fkImm8, 0x6A) // PUSH ib
	set(ClassOther, fkModRMImm8, 0x6B)
	set(ClassOther, fkLen1, 0x6C, 0x6D, 0x6E, 0x6F) // INS/OUTS
	// Jcc rel8.
	for op := 0x70; op <= 0x7F; op++ {
		set(ClassJccRel, fkRel8, op)
	}
	// Immediate group 1 (0x82 is the 32-bit-only alias: declined).
	set(ClassOther, fkModRMImm8, 0x80)
	set(ClassOther, fkModRMImmZ, 0x81)
	set(ClassOther, fkModRMImm8, 0x83)
	// TEST/XCHG/MOV/LEA/MOV-seg/POP r/m.
	set(ClassOther, fkModRM, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8A, 0x8B, 0x8C, 0x8D, 0x8E, 0x8F)
	set(ClassNop, fkLen1, 0x90) // caller demotes REX.B 90 (XCHG R8) to Other
	set(ClassOther, fkLen1, 0x91, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97)
	set(ClassOther, fkLen1, 0x98, 0x99, 0x9B, 0x9C, 0x9D, 0x9E, 0x9F)
	set(ClassOther, fkImm8, 0xA8) // TEST AL, ib
	set(ClassOther, fkImmZ, 0xA9) // TEST eAX, iz
	set(ClassOther, fkLen1, 0xA4, 0xA5, 0xA6, 0xA7, 0xAA, 0xAB, 0xAC, 0xAD, 0xAE, 0xAF)
	// MOV reg, imm.
	for op := 0xB0; op <= 0xB7; op++ {
		set(ClassOther, fkImm8, op)
	}
	for op := 0xB8; op <= 0xBF; op++ {
		set(ClassOther, fkImmV, op)
	}
	// Shift groups, RET, MOV r/m imm, LEAVE, INT3/INT, IRET.
	set(ClassOther, fkModRMImm8, 0xC0, 0xC1)
	set(ClassRet, fkImm16, 0xC2)
	set(ClassRet, fkLen1, 0xC3)
	set(ClassOther, fkModRMImm8, 0xC6)
	set(ClassOther, fkModRMImmZ, 0xC7)
	set(ClassLeave, fkLen1, 0xC9)
	set(ClassRet, fkImm16, 0xCA)
	set(ClassRet, fkLen1, 0xCB)
	set(ClassInt3, fkLen1, 0xCC)
	set(ClassOther, fkImm8, 0xCD)
	set(ClassOther, fkLen1, 0xCF)
	set(ClassOther, fkModRM, 0xD0, 0xD1, 0xD2, 0xD3) // shift by 1 / CL
	set(ClassOther, fkLen1, 0xD7)
	set(ClassOther, fkModRM, 0xD8, 0xD9, 0xDA, 0xDB, 0xDC, 0xDD, 0xDE, 0xDF) // x87
	// LOOP/JCXZ, IN/OUT, CALL/JMP.
	set(ClassJccRel, fkRel8, 0xE0, 0xE1, 0xE2, 0xE3)
	set(ClassOther, fkImm8, 0xE4, 0xE5, 0xE6, 0xE7)
	set(ClassCallRel, fkRel32, 0xE8)
	set(ClassJmpRel, fkRel32, 0xE9)
	set(ClassJmpRel, fkRel8, 0xEB)
	set(ClassOther, fkLen1, 0xEC, 0xED, 0xEE, 0xEF)
	set(ClassOther, fkLen1, 0xF1, 0xF5)
	set(ClassHlt, fkLen1, 0xF4)
	set(ClassOther, fkLen1, 0xF8, 0xF9, 0xFA, 0xFB, 0xFC, 0xFD)
	set(ClassOther, fkModRM, 0xFE) // INC/DEC r/m8
	set(ClassOther, fkModRMGroup5, 0xFF)
	return t
}

// decodeFast attempts the fast path. It reports false — leaving *inst in
// an unspecified state — when the encoding needs the full decoder.
func decodeFast(code []byte, addr uint64, mode Mode, inst *Inst) bool {
	if len(code) == 0 {
		return false
	}
	pos := 0
	b := code[0]
	var rex byte
	if mode == Mode64 && b >= 0x40 && b <= 0x4F {
		if len(code) < 2 {
			return false
		}
		nb := code[1]
		if isLegacyPrefix(nb) || (nb >= 0x40 && nb <= 0x4F) {
			return false // dead REX: leave prefix bookkeeping to the slow path
		}
		rex = b
		pos = 1
		b = nb
	}
	op := fastOps[b]
	if op.kind == fkNone {
		return false
	}
	pos++
	*inst = Inst{Addr: addr, Class: op.class, Opcode: b, OpcodeMap: 1}

	var disp int64
	var ripRel, absDisp bool
	switch op.kind {
	case fkLen1:
		if b == 0x90 && rex&1 != 0 {
			inst.Class = ClassOther // REX.B 90 is XCHG R8, not NOP
		}
	case fkImm8:
		if !fastImm(code, &pos, 1, inst) {
			return false
		}
	case fkImm16:
		if !fastImm(code, &pos, 2, inst) {
			return false
		}
	case fkImmZ:
		if !fastImm(code, &pos, 4, inst) {
			return false
		}
	case fkImmV:
		n := 4
		if rex&0x08 != 0 {
			n = 8
		}
		if !fastImm(code, &pos, n, inst) {
			return false
		}
	case fkRel8:
		if !fastImm(code, &pos, 1, inst) {
			return false
		}
		inst.Target = truncAddr(mode, addr+uint64(pos)+uint64(inst.Imm))
		inst.HasTarget = true
	case fkRel32:
		if !fastImm(code, &pos, 4, inst) {
			return false
		}
		inst.Target = truncAddr(mode, addr+uint64(pos)+uint64(inst.Imm))
		inst.HasTarget = true
	case fkModRM, fkModRMImm8, fkModRMImmZ, fkModRMGroup5:
		var ok bool
		disp, ripRel, absDisp, ok = fastModRM(code, &pos, mode, inst)
		if !ok {
			return false
		}
		switch op.kind {
		case fkModRMImm8:
			if !fastImm(code, &pos, 1, inst) {
				return false
			}
		case fkModRMImmZ:
			if !fastImm(code, &pos, 4, inst) {
				return false
			}
		case fkModRMGroup5:
			switch inst.Reg() {
			case 2:
				inst.Class = ClassCallInd
			case 4:
				inst.Class = ClassJmpInd
			}
		}
	}
	inst.Len = pos
	// Materialize the displacement-derived references now that the full
	// length is known (RIP-relative addressing is next-instruction
	// relative).
	if ripRel {
		inst.RIPRef = truncAddr(mode, addr+uint64(pos)+uint64(disp))
		inst.HasRIPRef = true
	} else if absDisp {
		inst.MemDisp = uint64(uint32(disp))
		inst.HasMemDisp = true
	}
	return true
}

// fastImm consumes an n-byte sign-extended immediate.
func fastImm(code []byte, pos *int, n int, inst *Inst) bool {
	p := *pos
	if p+n > len(code) {
		return false
	}
	inst.Imm = signExtendLE(code[p : p+n])
	inst.HasImm = true
	*pos = p + n
	return true
}

// fastModRM consumes the ModRM byte and its addressing-form bytes (SIB,
// displacement) in the 32/64-bit form — the fast path never runs under a
// 67 prefix, so the 16-bit form cannot occur. It reports the raw
// displacement and whether it is RIP-relative or an absolute address.
func fastModRM(code []byte, pos *int, mode Mode, inst *Inst) (disp int64, ripRel, absDisp, ok bool) {
	p := *pos
	if p >= len(code) {
		return 0, false, false, false
	}
	m := code[p]
	p++
	inst.ModRM = m
	inst.HasModRM = true
	mod := m >> 6
	rm := m & 7
	if mod == 3 {
		*pos = p
		return 0, false, false, true
	}
	hasSIB := rm == 4
	sibBase := byte(0xFF)
	if hasSIB {
		if p >= len(code) {
			return 0, false, false, false
		}
		sibBase = code[p] & 7
		p++
	}
	dispN := 0
	switch mod {
	case 0:
		switch {
		case !hasSIB && rm == 5:
			dispN = 4
			ripRel = mode == Mode64
			absDisp = mode == Mode32
		case hasSIB && sibBase == 5:
			dispN = 4
			absDisp = true
		}
	case 1:
		dispN = 1
	case 2:
		dispN = 4
	}
	if dispN > 0 {
		if p+dispN > len(code) {
			return 0, false, false, false
		}
		disp = signExtendLE(code[p : p+dispN])
		p += dispN
	}
	*pos = p
	return disp, ripRel, absDisp, true
}

// truncAddr wraps an address to the mode's pointer width.
func truncAddr(mode Mode, v uint64) uint64 {
	if mode == Mode32 {
		return uint64(uint32(v))
	}
	return v
}
