package x86

// Table-driven fast path for the opcode families that dominate
// compiler-generated text: push/pop, mov/lea, the ALU register forms,
// test/cmp, shifts, direct call/jmp/jcc, ret, nop, int3, the FF
// indirect-branch group, and — via a second 256-entry table dispatched
// after the 0F escape — the two-byte families (Jcc rel32, setcc, cmovcc,
// movzx/movsx, imul, the 0F 1E/0F 1F hint-NOP rows). A single leading
// 66/F3/F2 prefix ahead of a 0F opcode is also handled, which covers
// endbr64/endbr32 and the scalar SSE mov forms. Profiling the linear
// sweep shows >95% of decoded instructions take one of these shapes
// (optionally behind a single REX prefix), so skipping the general
// decodeState walk for them roughly halves the per-instruction cost.
//
// The contract is strict: for every byte sequence the fast path accepts,
// it must produce an Inst bit-identical to the full decoder's. Anything
// ambiguous — legacy prefixes, escapes, VEX/EVEX, mode-dependent
// validity, truncated buffers — is declined (return false) and falls
// back to decodeSlow. TestFastPathMatchesFullDecode and FuzzDecode
// enforce the equivalence.

// fastKind describes how a fast-path opcode's operands are shaped.
type fastKind uint8

const (
	// fkNone marks bytes the fast path declines (prefixes, escapes,
	// mode-dependent validity, immediates sized by prefix state).
	fkNone fastKind = iota
	// fkLen1 is a bare one-byte instruction.
	fkLen1
	// fkImm8 / fkImm16 / fkImmZ are opcode + fixed-size immediate. With
	// no legacy prefixes in play, iz immediates are always 4 bytes.
	fkImm8
	fkImm16
	fkImmZ
	// fkImmV is MOV r, iv: 4 bytes, or 8 under REX.W.
	fkImmV
	// fkRel8 / fkRel32 are direct branches with a relative displacement.
	fkRel8
	fkRel32
	// fkModRM is opcode + ModRM addressing form, no immediate.
	fkModRM
	// fkModRMImm8 / fkModRMImmZ add a trailing immediate.
	fkModRMImm8
	fkModRMImmZ
	// fkModRMGroup5 is FF: ModRM with the class selected by /reg
	// (2 = indirect call, 4 = indirect jump).
	fkModRMGroup5
)

// fastOp is one fast-path opcode-table entry.
type fastOp struct {
	kind  fastKind
	class Class
}

// fastOps maps a first opcode byte (after an optional REX in 64-bit
// mode) to its fast-path handling. Entries are valid in both modes: any
// byte whose length or validity differs between Mode32 and Mode64 —
// other than 40-4F, which the caller intercepts as REX before the
// lookup — stays fkNone.
var fastOps = buildFastOps()

func buildFastOps() [256]fastOp {
	var t [256]fastOp
	set := func(class Class, kind fastKind, ops ...int) {
		for _, op := range ops {
			t[op] = fastOp{kind: kind, class: class}
		}
	}
	// ALU r/m forms: ADD/OR/ADC/SBB/AND/SUB/XOR/CMP.
	for _, base := range []int{0x00, 0x08, 0x10, 0x18, 0x20, 0x28, 0x30, 0x38} {
		set(ClassOther, fkModRM, base, base+1, base+2, base+3)
		set(ClassOther, fkImm8, base+4)
		set(ClassOther, fkImmZ, base+5)
	}
	// INC/DEC r32 (Mode32 only — Mode64 consumes 40-4F as REX first).
	for op := 0x40; op <= 0x4F; op++ {
		set(ClassOther, fkLen1, op)
	}
	// PUSH/POP reg.
	for op := 0x50; op <= 0x5F; op++ {
		set(ClassOther, fkLen1, op)
	}
	set(ClassOther, fkModRM, 0x63) // ARPL (32) / MOVSXD (64): ModRM in both
	set(ClassOther, fkImmZ, 0x68)  // PUSH iz
	set(ClassOther, fkModRMImmZ, 0x69)
	set(ClassOther, fkImm8, 0x6A) // PUSH ib
	set(ClassOther, fkModRMImm8, 0x6B)
	set(ClassOther, fkLen1, 0x6C, 0x6D, 0x6E, 0x6F) // INS/OUTS
	// Jcc rel8.
	for op := 0x70; op <= 0x7F; op++ {
		set(ClassJccRel, fkRel8, op)
	}
	// Immediate group 1 (0x82 is the 32-bit-only alias: declined).
	set(ClassOther, fkModRMImm8, 0x80)
	set(ClassOther, fkModRMImmZ, 0x81)
	set(ClassOther, fkModRMImm8, 0x83)
	// TEST/XCHG/MOV/LEA/MOV-seg/POP r/m.
	set(ClassOther, fkModRM, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8A, 0x8B, 0x8C, 0x8D, 0x8E, 0x8F)
	set(ClassNop, fkLen1, 0x90) // caller demotes REX.B 90 (XCHG R8) to Other
	set(ClassOther, fkLen1, 0x91, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97)
	set(ClassOther, fkLen1, 0x98, 0x99, 0x9B, 0x9C, 0x9D, 0x9E, 0x9F)
	set(ClassOther, fkImm8, 0xA8) // TEST AL, ib
	set(ClassOther, fkImmZ, 0xA9) // TEST eAX, iz
	set(ClassOther, fkLen1, 0xA4, 0xA5, 0xA6, 0xA7, 0xAA, 0xAB, 0xAC, 0xAD, 0xAE, 0xAF)
	// MOV reg, imm.
	for op := 0xB0; op <= 0xB7; op++ {
		set(ClassOther, fkImm8, op)
	}
	for op := 0xB8; op <= 0xBF; op++ {
		set(ClassOther, fkImmV, op)
	}
	// Shift groups, RET, MOV r/m imm, LEAVE, INT3/INT, IRET.
	set(ClassOther, fkModRMImm8, 0xC0, 0xC1)
	set(ClassRet, fkImm16, 0xC2)
	set(ClassRet, fkLen1, 0xC3)
	set(ClassOther, fkModRMImm8, 0xC6)
	set(ClassOther, fkModRMImmZ, 0xC7)
	set(ClassLeave, fkLen1, 0xC9)
	set(ClassRet, fkImm16, 0xCA)
	set(ClassRet, fkLen1, 0xCB)
	set(ClassInt3, fkLen1, 0xCC)
	set(ClassOther, fkImm8, 0xCD)
	set(ClassOther, fkLen1, 0xCF)
	set(ClassOther, fkModRM, 0xD0, 0xD1, 0xD2, 0xD3) // shift by 1 / CL
	set(ClassOther, fkLen1, 0xD7)
	set(ClassOther, fkModRM, 0xD8, 0xD9, 0xDA, 0xDB, 0xDC, 0xDD, 0xDE, 0xDF) // x87
	// LOOP/JCXZ, IN/OUT, CALL/JMP.
	set(ClassJccRel, fkRel8, 0xE0, 0xE1, 0xE2, 0xE3)
	set(ClassOther, fkImm8, 0xE4, 0xE5, 0xE6, 0xE7)
	set(ClassCallRel, fkRel32, 0xE8)
	set(ClassJmpRel, fkRel32, 0xE9)
	set(ClassJmpRel, fkRel8, 0xEB)
	set(ClassOther, fkLen1, 0xEC, 0xED, 0xEE, 0xEF)
	set(ClassOther, fkLen1, 0xF1, 0xF5)
	set(ClassHlt, fkLen1, 0xF4)
	set(ClassOther, fkLen1, 0xF8, 0xF9, 0xFA, 0xFB, 0xFC, 0xFD)
	set(ClassOther, fkModRM, 0xFE) // INC/DEC r/m8
	set(ClassOther, fkModRMGroup5, 0xFF)
	return t
}

// fastOps2 maps the second opcode byte of a 0F-escaped instruction to its
// fast-path handling. It is derived mechanically from the twoByte
// attribute table so the two stay consistent by construction: every map-2
// opcode is ModRM-driven, bare, ModRM+imm8, or Jcc relZ — none of the
// prefix-sized immediate kinds (iz/iv) exist in map 2, which is what
// makes the whole map fast-path eligible. The exceptions decline
// (fkNone): the 0F 38 / 0F 3A three-byte escapes (VEX/EVEX-adjacent
// territory) and the fUndef rows, which must keep erroring through the
// slow path.
var fastOps2 = buildFastOps2()

func buildFastOps2() [256]fastOp {
	var t [256]fastOp
	for b := 0; b < 256; b++ {
		info := twoByte[b]
		if b == 0x38 || b == 0x3A || info.has(fUndef) {
			continue // escapes + undefined rows: decline to decodeSlow
		}
		var kind fastKind
		switch {
		case info.has(fModRM) && info.imm == imm8:
			kind = fkModRMImm8
		case info.has(fModRM) && info.imm == immNone:
			kind = fkModRM
		case info.imm == relZ:
			kind = fkRel32 // Jcc 0F 80-8F; 16-bit form declined by the caller
		case info.imm == immNone:
			kind = fkLen1
		default:
			continue
		}
		class := ClassOther
		switch {
		case b >= 0x80 && b <= 0x8F:
			class = ClassJccRel
		case b == 0x1F:
			class = ClassNop // 0F 1F /0 long NOP; 0F 1E stays ClassOther unless F3-prefixed
		case b == 0x0B || b == 0xB9:
			class = ClassUD
		}
		t[b] = fastOp{kind: kind, class: class}
	}
	return t
}

// decodeFast attempts the fast path. It reports false — leaving *inst in
// an unspecified state — when the encoding needs the full decoder.
func decodeFast(code []byte, addr uint64, mode Mode, inst *Inst) bool {
	if len(code) == 0 {
		return false
	}
	pos := 0
	b := code[0]
	var rex, pfx byte
	switch {
	case mode == Mode64 && b&0xF0 == 0x40:
		if len(code) < 2 {
			return false
		}
		nb := code[1]
		if legacyPrefixTab[nb] || nb&0xF0 == 0x40 {
			return false // dead REX: leave prefix bookkeeping to the slow path
		}
		rex = b
		pos = 1
		b = nb
	case b == 0x66 || b == 0xF3 || b == 0xF2:
		// Single legacy prefix forms. 66 90 is the two-byte NOP; a single
		// 66/F3/F2 ahead of a 0F escape covers endbr64/endbr32 and the
		// scalar/packed SSE families, whose map-2 lengths are independent
		// of the SIMD prefix. Anything else (prefix runs, prefix+REX,
		// prefixed one-byte opcodes) declines to the slow path.
		if len(code) < 2 {
			return false
		}
		if b == 0x66 && code[1] == 0x90 {
			*inst = Inst{Addr: addr, Len: 2, Class: ClassNop, Opcode: 0x90,
				OpcodeMap: 1, Prefix: [4]byte{0x66}, NPrefix: 1}
			return true
		}
		if code[1] != 0x0F {
			return false
		}
		pfx = b
		pos, b = 1, 0x0F
	}
	opcodeMap := 1
	var op fastOp
	if b == 0x0F {
		// Two-byte map: dispatch the byte after the escape through
		// fastOps2. REX ahead of 0F is fine (it has no length effect in
		// map 2 — no iv immediates there); the 16-bit Jcc displacement
		// form (66 + 0F 8x in 32-bit mode) is the one prefix-dependent
		// length in the map and declines below.
		if pos+1 >= len(code) {
			return false
		}
		pos++
		b = code[pos]
		op = fastOps2[b]
		opcodeMap = 2
		if op.kind == fkRel32 && pfx == 0x66 && mode == Mode32 {
			return false // rel16 under the operand-size prefix
		}
	} else {
		op = fastOps[b]
	}
	if op.kind == fkNone {
		return false
	}
	pos++
	*inst = Inst{Addr: addr, Class: op.class, Opcode: b, OpcodeMap: opcodeMap}
	if pfx != 0 {
		inst.Prefix[0] = pfx
		inst.NPrefix = 1
	}

	// The two dominant kinds in compiler output (bare one-byte opcodes
	// and plain ModRM forms — together ~2/3 of decoded instructions) are
	// peeled off ahead of the general kind switch so they ride two
	// well-predicted branches instead of an indirect jump.
	if op.kind == fkLen1 {
		if opcodeMap == 1 && b == 0x90 && rex&1 != 0 {
			inst.Class = ClassOther // REX.B 90 is XCHG R8, not NOP
		}
		inst.Len = pos
		return true
	}
	if op.kind == fkModRM && pos < len(code) {
		if m := code[pos]; m >= 0xC0 || (m&7 != 4 && (m >= 0x40 || m&7 != 5)) {
			n := 1
			switch m >> 6 {
			case 1:
				n = 2 // ModRM + disp8
			case 2:
				n = 5 // ModRM + disp32
			}
			if pos+n > len(code) {
				return false
			}
			inst.ModRM = m
			inst.HasModRM = true
			pos += n
			if opcodeMap == 2 && b == 0x1E && pfx == 0xF3 {
				switch m {
				case 0xFA:
					inst.Class = ClassEndbr64
				case 0xFB:
					inst.Class = ClassEndbr32
				}
			}
			inst.Len = pos
			return true
		}
	}

	var disp int64
	var ripRel, absDisp bool
	switch op.kind {
	case fkLen1:
		// Unreachable (peeled above); kept for the switch's exhaustiveness.
	case fkImm8:
		if pos >= len(code) {
			return false
		}
		inst.Imm = int64(int8(code[pos]))
		inst.HasImm = true
		pos++
	case fkImm16:
		if pos+2 > len(code) {
			return false
		}
		inst.Imm = int64(int16(uint16(code[pos]) | uint16(code[pos+1])<<8))
		inst.HasImm = true
		pos += 2
	case fkImmZ:
		if pos+4 > len(code) {
			return false
		}
		inst.Imm = int64(int32(le32(code[pos:])))
		inst.HasImm = true
		pos += 4
	case fkImmV:
		if rex&0x08 != 0 {
			if pos+8 > len(code) {
				return false
			}
			inst.Imm = int64(uint64(le32(code[pos:])) | uint64(le32(code[pos+4:]))<<32)
			pos += 8
		} else {
			if pos+4 > len(code) {
				return false
			}
			inst.Imm = int64(int32(le32(code[pos:])))
			pos += 4
		}
		inst.HasImm = true
	case fkRel8:
		if pos >= len(code) {
			return false
		}
		inst.Imm = int64(int8(code[pos]))
		inst.HasImm = true
		pos++
		inst.Target = truncAddr(mode, addr+uint64(pos)+uint64(inst.Imm))
		inst.HasTarget = true
	case fkRel32:
		if pos+4 > len(code) {
			return false
		}
		inst.Imm = int64(int32(le32(code[pos:])))
		inst.HasImm = true
		pos += 4
		inst.Target = truncAddr(mode, addr+uint64(pos)+uint64(inst.Imm))
		inst.HasTarget = true
	case fkModRM, fkModRMImm8, fkModRMImmZ, fkModRMGroup5:
		// Peel the addressing forms that dominate compiler output before
		// the general walk, keeping them branch-light and call-free:
		// register-register (mod 3), bare [reg], and [reg+disp8/disp32].
		// Only the SIB forms and mod-0 rm-5 (RIP-relative / absolute)
		// fall through to fastModRM. The peeled displacement forms never
		// materialize a reference, so their disp bytes are skipped, not
		// read — bounds checks are all that remains of them.
		if pos >= len(code) {
			return false
		}
		if m := code[pos]; m >= 0xC0 {
			inst.ModRM = m
			inst.HasModRM = true
			pos++
		} else if rm := m & 7; rm != 4 && (m >= 0x40 || rm != 5) {
			n := 1
			switch m >> 6 {
			case 1:
				n = 2 // ModRM + disp8
			case 2:
				n = 5 // ModRM + disp32
			}
			if pos+n > len(code) {
				return false
			}
			inst.ModRM = m
			inst.HasModRM = true
			pos += n
		} else {
			var ok bool
			disp, ripRel, absDisp, ok = fastModRM(code, &pos, mode, inst)
			if !ok {
				return false
			}
		}
		if opcodeMap == 2 && b == 0x1E && pfx == 0xF3 {
			// F3 0F 1E FA/FB are the CET end-branch markers; any other
			// ModRM value stays a reserved hint NOP (ClassOther).
			switch inst.ModRM {
			case 0xFA:
				inst.Class = ClassEndbr64
			case 0xFB:
				inst.Class = ClassEndbr32
			}
		}
		switch op.kind {
		case fkModRMImm8:
			if pos >= len(code) {
				return false
			}
			inst.Imm = int64(int8(code[pos]))
			inst.HasImm = true
			pos++
		case fkModRMImmZ:
			if pos+4 > len(code) {
				return false
			}
			inst.Imm = int64(int32(le32(code[pos:])))
			inst.HasImm = true
			pos += 4
		case fkModRMGroup5:
			switch inst.Reg() {
			case 2:
				inst.Class = ClassCallInd
			case 4:
				inst.Class = ClassJmpInd
			}
		}
	}
	inst.Len = pos
	// Materialize the displacement-derived references now that the full
	// length is known (RIP-relative addressing is next-instruction
	// relative).
	if ripRel {
		inst.RIPRef = truncAddr(mode, addr+uint64(pos)+uint64(disp))
		inst.HasRIPRef = true
	} else if absDisp {
		inst.MemDisp = uint64(uint32(disp))
		inst.HasMemDisp = true
	}
	return true
}

// le32 is an inlinable little-endian 32-bit load (a single MOV on
// amd64); the generic signExtendLE byte loop shows up in sweep profiles
// for the 4-byte immediates and displacements that dominate branches.
func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// fastModRM consumes the ModRM byte and its addressing-form bytes (SIB,
// displacement) in the 32/64-bit form — the fast path never runs under a
// 67 prefix, so the 16-bit form cannot occur. It reports the raw
// displacement and whether it is RIP-relative or an absolute address.
func fastModRM(code []byte, pos *int, mode Mode, inst *Inst) (disp int64, ripRel, absDisp, ok bool) {
	p := *pos
	if p >= len(code) {
		return 0, false, false, false
	}
	m := code[p]
	p++
	inst.ModRM = m
	inst.HasModRM = true
	mod := m >> 6
	rm := m & 7
	if mod == 3 {
		*pos = p
		return 0, false, false, true
	}
	hasSIB := rm == 4
	sibBase := byte(0xFF)
	if hasSIB {
		if p >= len(code) {
			return 0, false, false, false
		}
		sibBase = code[p] & 7
		p++
	}
	dispN := 0
	switch mod {
	case 0:
		switch {
		case !hasSIB && rm == 5:
			dispN = 4
			ripRel = mode == Mode64
			absDisp = mode == Mode32
		case hasSIB && sibBase == 5:
			dispN = 4
			absDisp = true
		}
	case 1:
		dispN = 1
	case 2:
		dispN = 4
	}
	switch dispN {
	case 1:
		if p >= len(code) {
			return 0, false, false, false
		}
		disp = int64(int8(code[p]))
		p++
	case 4:
		if p+4 > len(code) {
			return 0, false, false, false
		}
		disp = int64(int32(le32(code[p:])))
		p += 4
	}
	*pos = p
	return disp, ripRel, absDisp, true
}

// legacyPrefixTab is isLegacyPrefix as a direct-indexed table: the fast
// path consults it once per REX-prefixed instruction, where the 11-way
// switch shows up in sweep profiles.
var legacyPrefixTab = buildLegacyPrefixTab()

func buildLegacyPrefixTab() [256]bool {
	var t [256]bool
	for b := 0; b < 256; b++ {
		t[b] = isLegacyPrefix(byte(b))
	}
	return t
}

// truncAddr wraps an address to the mode's pointer width.
func truncAddr(mode Mode, v uint64) uint64 {
	if mode == Mode32 {
		return uint64(uint32(v))
	}
	return v
}
