package x86

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// cancelTestText returns a deterministic multi-megabyte code buffer —
// large enough that every cancellation path crosses many cancelStride
// boundaries. Generated once and shared read-only across the tests.
var cancelTestTextOnce = sync.OnceValue(func() []byte {
	rng := rand.New(rand.NewSource(20260806))
	return GenText(2<<20, Mode64, rng, 0)
})

func cancelTestText(tb testing.TB) []byte {
	tb.Helper()
	return cancelTestTextOnce()
}

func TestLinearSweepCtxBackgroundMatchesPlain(t *testing.T) {
	text := cancelTestText(t)
	var plain, viaCtx int
	wantSkipped := LinearSweep(text, 0x401000, Mode64, func(*Inst) bool { plain++; return true })
	skipped, err := LinearSweepCtx(context.Background(), text, 0x401000, Mode64, func(*Inst) bool { viaCtx++; return true })
	if err != nil {
		t.Fatalf("LinearSweepCtx: %v", err)
	}
	if viaCtx != plain || skipped != wantSkipped {
		t.Fatalf("ctx sweep diverged: %d insts / %d skips, want %d / %d", viaCtx, skipped, plain, wantSkipped)
	}
}

func TestLinearSweepCtxPreCanceled(t *testing.T) {
	text := cancelTestText(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	_, err := LinearSweepCtx(ctx, text, 0x401000, Mode64, func(*Inst) bool { n++; return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Fatalf("pre-canceled sweep still decoded %d instructions", n)
	}
}

// TestLinearSweepCtxMidSweep cancels from inside the callback and checks
// the sweep stops within one cancellation stride: determinism without
// wall-clock assertions.
func TestLinearSweepCtxMidSweep(t *testing.T) {
	text := cancelTestText(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAt = 1000
	n := 0
	var lastAddr uint64
	_, err := LinearSweepCtx(ctx, text, 0, Mode64, func(inst *Inst) bool {
		n++
		lastAddr = inst.Addr
		if n == stopAt {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// After the cancel the sweep may finish the current stride but no
	// more: the last decoded address stays within one stride of the
	// cancellation point.
	if lastAddr > uint64(stopAt*maxInstLen+cancelStride) {
		t.Fatalf("sweep ran %#x bytes past cancellation (stride %#x)", lastAddr, cancelStride)
	}
	if n >= len(text)/2 {
		t.Fatalf("sweep decoded %d instructions after mid-sweep cancel", n)
	}
}

func TestBuildIndexCtxMatchesSequential(t *testing.T) {
	text := cancelTestText(t)
	want := BuildIndex(text, 0x401000, Mode64)
	got, err := BuildIndexCtx(context.Background(), text, 0x401000, Mode64)
	if err != nil {
		t.Fatalf("BuildIndexCtx: %v", err)
	}
	// Background context must take the exact BuildIndex path.
	if len(got.Insts) != len(want.Insts) || got.Skipped != want.Skipped {
		t.Fatalf("BuildIndexCtx diverged: %d insts / %d skips, want %d / %d",
			len(got.Insts), got.Skipped, len(want.Insts), want.Skipped)
	}
}

func TestBuildIndexParallelCtx(t *testing.T) {
	text := cancelTestText(t)

	t.Run("background matches sequential", func(t *testing.T) {
		want := BuildIndex(text, 0x401000, Mode64)
		got, err := BuildIndexParallelCtx(context.Background(), text, 0x401000, Mode64, 4)
		if err != nil {
			t.Fatalf("BuildIndexParallelCtx: %v", err)
		}
		if len(got.Insts) != len(want.Insts) {
			t.Fatalf("parallel ctx build diverged: %d insts, want %d", len(got.Insts), len(want.Insts))
		}
		for i := range got.Insts {
			if got.Insts[i] != want.Insts[i] {
				t.Fatalf("inst %d diverged: %+v vs %+v", i, got.Insts[i], want.Insts[i])
			}
		}
	})

	t.Run("pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		idx, err := BuildIndexParallelCtx(ctx, text, 0x401000, Mode64, 4)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if idx != nil {
			t.Fatal("canceled build returned a non-nil index")
		}
	})

	t.Run("deadline", func(t *testing.T) {
		// A deadline already in the past: the build must observe it at
		// its first stride check.
		ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
		defer cancel()
		if _, err := BuildIndexParallelCtx(ctx, text, 0x401000, Mode64, 4); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	})
}
