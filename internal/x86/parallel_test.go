package x86

import (
	"math/rand"
	"sync"
	"testing"
)

// indexesEqual fails the test unless par is byte-identical to seq:
// identical instruction streams (every Inst field), identical
// skipped-byte accounting, and identical At/AtPtr behaviour at every
// byte offset.
func indexesEqual(t *testing.T, label string, seq, par *Index, n int) {
	t.Helper()
	if len(par.Insts) != len(seq.Insts) {
		t.Fatalf("%s: %d instructions, sequential has %d", label, len(par.Insts), len(seq.Insts))
	}
	for i := range seq.Insts {
		if par.Insts[i] != seq.Insts[i] {
			t.Fatalf("%s: inst %d differs:\nparallel   %+v\nsequential %+v",
				label, i, par.Insts[i], seq.Insts[i])
		}
	}
	if par.Skipped != seq.Skipped {
		t.Fatalf("%s: skipped %d bytes, sequential skipped %d", label, par.Skipped, seq.Skipped)
	}
	for off := 0; off < n; off++ {
		va := seq.Base + uint64(off)
		si, sok := seq.At(va)
		pi, pok := par.At(va)
		if sok != pok || si != pi {
			t.Fatalf("%s: At(%#x) = (%+v, %v) parallel vs (%+v, %v) sequential",
				label, va, pi, pok, si, sok)
		}
	}
}

// TestBuildIndexParallelMatchesSequential is the stitching soundness
// property: across random compiler-shaped corpora — with and without
// data-in-text — both modes, and worker counts chosen to land seams at
// unaligned offsets, the parallel index is byte-identical to the
// sequential one.
func TestBuildIndexParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		n := 2048 + rng.Intn(8192)
		dataRatio := 0.0
		if trial%3 == 1 {
			dataRatio = 0.15 // data-in-text: seams can land mid-garbage
		}
		if trial%3 == 2 {
			dataRatio = 0.5 // pathological: half the bytes are data
		}
		for _, mode := range []Mode{Mode32, Mode64} {
			code := GenText(n, mode, rng, dataRatio)
			base := uint64(0x400000 + rng.Intn(1<<20))
			seq := BuildIndex(code, base, mode)
			for _, workers := range []int{0, 2, 3, 5, 8, 13} {
				par := BuildIndexParallel(code, base, mode, workers)
				label := mode.String()
				indexesEqual(t, label, seq, par, len(code))
				if workers >= 2 && par.Shards != workers {
					t.Fatalf("%s workers=%d: index reports %d shards", label, workers, par.Shards)
				}
			}
		}
	}
}

// TestBuildIndexParallelPureGarbage: every byte random, maximal skip
// churn — the stitcher's skip accounting must still agree exactly.
func TestBuildIndexParallelPureGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		code := make([]byte, 1024+rng.Intn(4096))
		rng.Read(code)
		for _, mode := range []Mode{Mode32, Mode64} {
			seq := BuildIndex(code, 0x1000, mode)
			for _, workers := range []int{2, 3, 7} {
				par := BuildIndexParallel(code, 0x1000, mode, workers)
				indexesEqual(t, mode.String(), seq, par, len(code))
			}
		}
	}
}

// TestBuildIndexParallelSmallInputs: degenerate sizes must not panic or
// diverge — empty text, a single byte, fewer bytes than workers×15.
func TestBuildIndexParallelSmallInputs(t *testing.T) {
	for _, n := range []int{0, 1, 2, 14, 15, 16, 29, 64} {
		code := make([]byte, n)
		for i := range code {
			code[i] = 0x90
		}
		for _, workers := range []int{0, 2, 8} {
			seq := BuildIndex(code, 0, Mode64)
			par := BuildIndexParallel(code, 0, Mode64, workers)
			indexesEqual(t, "small", seq, par, n)
		}
	}
}

// TestIndexConcurrentReaders hammers one index from many goroutines
// (run with -race in CI): an Index is immutable after construction and
// must serve At/AtPtr/Range concurrently without synchronization.
func TestIndexConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	code := GenText(1<<16, Mode64, rng, 0.05)
	idx := BuildIndexParallel(code, 0x401000, Mode64, 4)
	want := BuildIndex(code, 0x401000, Mode64)
	indexesEqual(t, "pre-hammer", want, idx, len(code))

	const readers = 8
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20000; i++ {
				va := idx.Base + uint64(rng.Intn(len(code)))
				inst, ok := idx.At(va)
				p := idx.AtPtr(va)
				if ok != (p != nil) {
					t.Errorf("At(%#x) ok=%v but AtPtr=%v", va, ok, p)
					return
				}
				if ok && (*p != inst || inst.Addr != va) {
					t.Errorf("At(%#x) inconsistent with AtPtr", va)
					return
				}
				if i%64 == 0 {
					lo := idx.Base + uint64(rng.Intn(len(code)))
					sub := idx.Range(lo, lo+256)
					for j := 1; j < len(sub); j++ {
						if sub[j].Addr <= sub[j-1].Addr {
							t.Errorf("Range not ascending at %#x", sub[j].Addr)
							return
						}
					}
				}
			}
		}(int64(r))
	}
	wg.Wait()
}
