package x86

import "math/rand"

// GenText synthesizes n bytes of compiler-shaped text for sweep tests and
// benchmarks: function bodies built from the encodings GCC/Clang actually
// emit (endbr, prologue, ALU/mov/lea traffic, calls, conditional jumps,
// epilogue, int3 padding), optionally interleaved with random data blocks
// to model data-in-text (jump tables, literal pools). The byte mix is
// deliberately a blend of fast-path and slow-path encodings.
func GenText(n int, mode Mode, rng *rand.Rand, dataRatio float64) []byte {
	imm8 := func() byte { return byte(rng.Intn(256)) }
	imm32 := func() []byte {
		return []byte{imm8(), imm8(), imm8(), imm8()}
	}
	cat := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	var body [][]byte
	if mode == Mode64 {
		body = [][]byte{
			{0x48, 0x83, 0xEC, 0x10},                       // sub rsp, 16
			cat([]byte{0xB8}, imm32()),                     // mov eax, imm32
			{0x48, 0x8B, 0x45, 0xF8},                       // mov rax, [rbp-8]
			{0x48, 0x89, 0x45, 0xF0},                       // mov [rbp-16], rax
			cat([]byte{0x48, 0x8D, 0x05}, imm32()),         // lea rax, [rip+disp32]
			{0x85, 0xC0},                                   // test eax, eax
			{0x48, 0x01, 0xD8},                             // add rax, rbx
			{0x48, 0x39, 0xC3},                             // cmp rbx, rax
			{0x31, 0xC0},                                   // xor eax, eax
			cat([]byte{0xE8}, imm32()),                     // call rel32
			{0x75, imm8()},                                 // jnz rel8
			{0x0F, 0x84, imm8(), imm8(), 0x00, 0x00},       // jz rel32 (slow path)
			{0x90},                                         // nop
			{0x66, 0x90},                                   // 66 nop (slow path)
			{0x0F, 0x1F, 0x40, 0x00},                       // 4-byte nop (slow path)
			{0x41, 0x54},                                   // push r12
			{0x44, 0x8B, 0x25, imm8(), imm8(), 0x00, 0x00}, // mov r12d,[rip+d]
			{0xF3, 0x0F, 0x10, 0x45, 0xF8},                 // movss (slow path)
			{0x50},                                         // push rax
			{0x58},                                         // pop rax
		}
	} else {
		body = [][]byte{
			{0x83, 0xEC, 0x10},               // sub esp, 16
			cat([]byte{0xB8}, imm32()),       // mov eax, imm32
			{0x8B, 0x45, 0xF8},               // mov eax, [ebp-8]
			{0x89, 0x45, 0xF0},               // mov [ebp-16], eax
			cat([]byte{0x8D, 0x83}, imm32()), // lea eax, [ebx+disp32]
			{0x85, 0xC0},                     // test eax, eax
			{0x01, 0xD8},                     // add eax, ebx
			{0x39, 0xC3},                     // cmp ebx, eax
			{0x31, 0xC0},                     // xor eax, eax
			cat([]byte{0xE8}, imm32()),       // call rel32
			{0x75, imm8()},                   // jnz rel8
			{0x90},                           // nop
			{0x66, 0x90},                     // 66 nop (slow path)
			{0x50},                           // push eax
			{0x58},                           // pop eax
		}
	}
	endbr := []byte{0xF3, 0x0F, 0x1E, 0xFA}
	prologue := [][]byte{{0x55}, {0x48, 0x89, 0xE5}} // push rbp; mov rbp,rsp
	if mode == Mode32 {
		endbr = []byte{0xF3, 0x0F, 0x1E, 0xFB}
		prologue = [][]byte{{0x55}, {0x89, 0xE5}}
	}

	out := make([]byte, 0, n+32)
	for len(out) < n {
		if dataRatio > 0 && rng.Float64() < dataRatio {
			// A data-in-text block of raw bytes.
			blob := make([]byte, 4+rng.Intn(48))
			rng.Read(blob)
			out = append(out, blob...)
			continue
		}
		out = append(out, endbr...)
		for _, p := range prologue {
			out = append(out, p...)
		}
		for i, m := 0, 3+rng.Intn(24); i < m; i++ {
			out = append(out, body[rng.Intn(len(body))]...)
		}
		out = append(out, 0xC9, 0xC3) // leave; ret
		for i, m := 0, rng.Intn(4); i < m; i++ {
			out = append(out, 0xCC) // int3 padding
		}
	}
	return out[:n]
}
