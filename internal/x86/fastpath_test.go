package x86

import (
	"math/rand"
	"testing"
)

// TestFastPathMatchesFullDecode is the fast path's defining invariant:
// every byte sequence the fast path accepts must decode to an Inst
// bit-identical to the full decoder's. Driven over random byte soup and
// compiler-shaped text, in both modes, at every offset.
func TestFastPathMatchesFullDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	buffers := make([][]byte, 0, 64)
	for i := 0; i < 24; i++ {
		buf := make([]byte, 64+rng.Intn(512))
		rng.Read(buf)
		buffers = append(buffers, buf)
	}
	for _, mode := range []Mode{Mode32, Mode64} {
		buffers = append(buffers,
			GenText(4096, mode, rng, 0),
			GenText(4096, mode, rng, 0.2))
	}
	const addr = 0x401000
	checked := 0
	for _, mode := range []Mode{Mode32, Mode64} {
		for _, buf := range buffers {
			for off := 0; off < len(buf); off++ {
				var fast, slow Inst
				if !decodeFast(buf[off:], addr+uint64(off), mode, &fast) {
					continue
				}
				if err := decodeSlow(buf[off:], addr+uint64(off), mode, &slow); err != nil {
					t.Fatalf("mode %v bytes % x: fast path accepted what the full decoder rejects: %v",
						mode, buf[off:off+min(len(buf)-off, 16)], err)
				}
				if fast != slow {
					t.Fatalf("mode %v bytes % x:\nfast %+v\nslow %+v",
						mode, buf[off:off+min(len(buf)-off, 16)], fast, slow)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("fast path never engaged")
	}
}

// TestFastPathTruncation: the fast path must decline truncated buffers
// rather than mis-size an instruction; Decode then reports ErrTruncated
// through the slow path.
func TestFastPathTruncation(t *testing.T) {
	cases := []struct {
		code  []byte
		modes []Mode
	}{
		{[]byte{0xE8, 0x00, 0x00}, []Mode{Mode32, Mode64}},     // call rel32 cut short
		{[]byte{0x48, 0x8B, 0x45}, []Mode{Mode64}},             // mov rax,[rbp-8] missing disp (0x48 is DEC EAX in 32-bit)
		{[]byte{0x81}, []Mode{Mode32, Mode64}},                 // group-1 immZ missing everything
		{[]byte{0xB8, 0x01}, []Mode{Mode32, Mode64}},           // mov eax, imm32 cut short
		{[]byte{0x48, 0xB8, 0, 0, 0, 0, 0, 0}, []Mode{Mode64}}, // REX.W mov imm64 cut short
		{[]byte{0xFF}, []Mode{Mode32, Mode64}},                 // group 5 without ModRM
		{[]byte{0x48}, []Mode{Mode64}},                         // lone REX
	}
	for _, tc := range cases {
		code := tc.code
		for _, mode := range tc.modes {
			var inst Inst
			full := append(code, make([]byte, 16)...)
			if _, fullErr := Decode(full, 0, mode); fullErr != nil {
				continue // not decodable even complete in this mode
			}
			if err := DecodeInto(code, 0, mode, &inst); err != ErrTruncated {
				t.Errorf("mode %v % x: err = %v, want ErrTruncated", mode, code, err)
			}
		}
	}
}

// TestDecodeIntoReuse: DecodeInto must fully overwrite a dirty Inst so a
// reused scratch value never leaks fields between instructions.
func TestDecodeIntoReuse(t *testing.T) {
	var inst Inst
	if err := DecodeInto([]byte{0xE8, 1, 0, 0, 0}, 0x1000, Mode64, &inst); err != nil {
		t.Fatal(err)
	}
	if !inst.HasTarget || inst.Class != ClassCallRel {
		t.Fatalf("call decoded as %+v", inst)
	}
	if err := DecodeInto([]byte{0x90}, 0x2000, Mode64, &inst); err != nil {
		t.Fatal(err)
	}
	want := Inst{Addr: 0x2000, Len: 1, Class: ClassNop, Opcode: 0x90, OpcodeMap: 1}
	if inst != want {
		t.Fatalf("stale fields leaked into reused Inst:\ngot  %+v\nwant %+v", inst, want)
	}
}
