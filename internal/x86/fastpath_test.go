package x86

import (
	"math/rand"
	"testing"
)

// TestFastPathMatchesFullDecode is the fast path's defining invariant:
// every byte sequence the fast path accepts must decode to an Inst
// bit-identical to the full decoder's. Driven over random byte soup and
// compiler-shaped text, in both modes, at every offset.
func TestFastPathMatchesFullDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	buffers := make([][]byte, 0, 64)
	for i := 0; i < 24; i++ {
		buf := make([]byte, 64+rng.Intn(512))
		rng.Read(buf)
		buffers = append(buffers, buf)
	}
	for _, mode := range []Mode{Mode32, Mode64} {
		buffers = append(buffers,
			GenText(4096, mode, rng, 0),
			GenText(4096, mode, rng, 0.2))
	}
	const addr = 0x401000
	checked := 0
	for _, mode := range []Mode{Mode32, Mode64} {
		for _, buf := range buffers {
			for off := 0; off < len(buf); off++ {
				var fast, slow Inst
				if !decodeFast(buf[off:], addr+uint64(off), mode, &fast) {
					continue
				}
				if err := decodeSlow(buf[off:], addr+uint64(off), mode, &slow); err != nil {
					t.Fatalf("mode %v bytes % x: fast path accepted what the full decoder rejects: %v",
						mode, buf[off:off+min(len(buf)-off, 16)], err)
				}
				if fast != slow {
					t.Fatalf("mode %v bytes % x:\nfast %+v\nslow %+v",
						mode, buf[off:off+min(len(buf)-off, 16)], fast, slow)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("fast path never engaged")
	}
}

// TestFastPathDeclineSet pins the decline behavior of the two-byte
// table: the escape bytes into maps 3A/38, the undefined map-2 rows, and
// every VEX/EVEX-adjacent first byte must make decodeFast return false —
// the slow path is the only decoder allowed to judge them. The test then
// confirms the slow path really does own each declined sequence (decode
// or reject, its call — the fast path just must not have an opinion).
func TestFastPathDeclineSet(t *testing.T) {
	const addr = 0x401000
	tail := []byte{0xC0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}

	// Map-2 escapes and undefined rows, with and without an operand-size
	// prefix: three-byte-map instructions share the 0F prefix with the
	// families the fast path accepts, so a table bug here would mis-size
	// every SSE4/SHA instruction in real text.
	declined := [][]byte{
		append([]byte{0x0F, 0x38}, tail...),       // three-byte map 38
		append([]byte{0x0F, 0x3A}, tail...),       // three-byte map 3A (imm8)
		append([]byte{0x66, 0x0F, 0x38}, tail...), // 66-prefixed map 38
		append([]byte{0x0F, 0x04}, tail...),       // undefined map-2 row
		append([]byte{0x0F, 0x0A}, tail...),       // undefined map-2 row
		append([]byte{0x0F, 0xA6}, tail...),       // undefined map-2 row
	}
	// VEX/EVEX-adjacent first bytes: C4/C5/62 open multi-byte prefix
	// forms in some mode/ModRM combinations; the fast path declines them
	// all rather than re-implementing the mode-dependent disambiguation.
	for _, b := range []byte{0xC4, 0xC5, 0x62} {
		declined = append(declined, append([]byte{b}, tail...))
	}
	for _, mode := range []Mode{Mode32, Mode64} {
		for _, code := range declined {
			var inst Inst
			if decodeFast(code, addr, mode, &inst) {
				t.Errorf("mode %v % x: fast path accepted a decline-set sequence (inst %+v)", mode, code, inst)
				continue
			}
			// The slow path must own the sequence: whatever it says is the
			// DecodeInto result, bit-identical.
			var slow, full Inst
			slowErr := decodeSlow(code, addr, mode, &slow)
			fullErr := DecodeInto(code, addr, mode, &full)
			if (slowErr == nil) != (fullErr == nil) || (slowErr == nil && slow != full) {
				t.Errorf("mode %v % x: DecodeInto diverged from decodeSlow on a declined sequence", mode, code)
			}
		}
	}

	// Mode32 + operand-size Jcc flips relZ to rel16: the one map-2 row
	// whose length is prefix-dependent, and exactly why the fast path
	// declines it in Mode32 while accepting it in Mode64.
	jcc := []byte{0x66, 0x0F, 0x84, 0x10, 0x20, 0x30, 0x40}
	var inst Inst
	if decodeFast(jcc, addr, Mode32, &inst) {
		t.Errorf("mode32 % x: fast path accepted 66-prefixed Jcc (rel16 form)", jcc)
	}
	if err := decodeSlow(jcc, addr, Mode32, &inst); err != nil || inst.Len != 5 {
		t.Errorf("mode32 % x: slow path len = %d err = %v, want rel16 len 5", jcc, inst.Len, err)
	}
	if !decodeFast(jcc, addr, Mode64, &inst) || inst.Len != 7 {
		t.Errorf("mode64 % x: fast path len = %d accepted = %v, want rel32 len 7", jcc, inst.Len, inst.Len == 7)
	}
}

// TestFastPathTruncation: the fast path must decline truncated buffers
// rather than mis-size an instruction; Decode then reports ErrTruncated
// through the slow path.
func TestFastPathTruncation(t *testing.T) {
	cases := []struct {
		code  []byte
		modes []Mode
	}{
		{[]byte{0xE8, 0x00, 0x00}, []Mode{Mode32, Mode64}},     // call rel32 cut short
		{[]byte{0x48, 0x8B, 0x45}, []Mode{Mode64}},             // mov rax,[rbp-8] missing disp (0x48 is DEC EAX in 32-bit)
		{[]byte{0x81}, []Mode{Mode32, Mode64}},                 // group-1 immZ missing everything
		{[]byte{0xB8, 0x01}, []Mode{Mode32, Mode64}},           // mov eax, imm32 cut short
		{[]byte{0x48, 0xB8, 0, 0, 0, 0, 0, 0}, []Mode{Mode64}}, // REX.W mov imm64 cut short
		{[]byte{0xFF}, []Mode{Mode32, Mode64}},                 // group 5 without ModRM
		{[]byte{0x48}, []Mode{Mode64}},                         // lone REX
	}
	for _, tc := range cases {
		code := tc.code
		for _, mode := range tc.modes {
			var inst Inst
			full := append(code, make([]byte, 16)...)
			if _, fullErr := Decode(full, 0, mode); fullErr != nil {
				continue // not decodable even complete in this mode
			}
			if err := DecodeInto(code, 0, mode, &inst); err != ErrTruncated {
				t.Errorf("mode %v % x: err = %v, want ErrTruncated", mode, code, err)
			}
		}
	}
}

// TestDecodeIntoReuse: DecodeInto must fully overwrite a dirty Inst so a
// reused scratch value never leaks fields between instructions.
func TestDecodeIntoReuse(t *testing.T) {
	var inst Inst
	if err := DecodeInto([]byte{0xE8, 1, 0, 0, 0}, 0x1000, Mode64, &inst); err != nil {
		t.Fatal(err)
	}
	if !inst.HasTarget || inst.Class != ClassCallRel {
		t.Fatalf("call decoded as %+v", inst)
	}
	if err := DecodeInto([]byte{0x90}, 0x2000, Mode64, &inst); err != nil {
		t.Fatal(err)
	}
	want := Inst{Addr: 0x2000, Len: 1, Class: ClassNop, Opcode: 0x90, OpcodeMap: 1}
	if inst != want {
		t.Fatalf("stale fields leaked into reused Inst:\ngot  %+v\nwant %+v", inst, want)
	}
}
