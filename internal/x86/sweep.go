package x86

// LinearSweep disassembles code linearly from base, invoking fn for every
// decoded instruction. On a decode error the sweep re-synchronizes by
// advancing one byte, mirroring the recovery strategy used by FunSeeker
// (Kim et al., DSN 2022, §IV-B). fn may return false to stop the sweep.
//
// The returned count is the number of bytes that had to be skipped due to
// decode errors, which is zero for well-formed compiler-generated text.
func LinearSweep(code []byte, base uint64, mode Mode, fn func(Inst) bool) (skipped int) {
	off := 0
	for off < len(code) {
		inst, err := Decode(code[off:], base+uint64(off), mode)
		if err != nil {
			off++
			skipped++
			continue
		}
		if !fn(inst) {
			return skipped
		}
		off += inst.Len
	}
	return skipped
}

// SweepAll disassembles code linearly and returns every instruction. It is
// a convenience wrapper over LinearSweep for tests and tools.
func SweepAll(code []byte, base uint64, mode Mode) []Inst {
	// Typical compiler-generated x86 averages close to 4 bytes per
	// instruction; reserve accordingly.
	insts := make([]Inst, 0, len(code)/4+1)
	LinearSweep(code, base, mode, func(inst Inst) bool {
		insts = append(insts, inst)
		return true
	})
	return insts
}

// Index is the materialized form of one linear sweep: every decoded
// instruction in address order plus enough bookkeeping to answer
// address-range queries without re-decoding. Building the index costs one
// sweep; afterwards any number of passes (entry identification, end-branch
// classification, property studies, code-reference scans) can share it,
// which is what makes the per-binary analysis context cheap. An Index is
// immutable after construction and safe for concurrent readers.
type Index struct {
	// Insts holds every decoded instruction in ascending address order.
	Insts []Inst
	// Base is the virtual address decoding started at.
	Base uint64
	// Skipped is the number of bytes the sweep had to skip to
	// re-synchronize after decode errors (zero for well-formed
	// compiler-generated text).
	Skipped int
	// pos maps a byte offset from Base to the position in Insts of the
	// instruction starting there, or -1 where no instruction boundary
	// falls. It makes At an O(1) lookup, which matters because the
	// recursive-descent consumers issue one lookup per walked
	// instruction.
	pos []int32
}

// BuildIndex runs one linear sweep over code and materializes it.
func BuildIndex(code []byte, base uint64, mode Mode) *Index {
	idx := &Index{
		Insts: make([]Inst, 0, len(code)/4+1),
		Base:  base,
	}
	idx.pos = make([]int32, len(code))
	for i := range idx.pos {
		idx.pos[i] = -1
	}
	idx.Skipped = LinearSweep(code, base, mode, func(inst Inst) bool {
		idx.pos[inst.Addr-base] = int32(len(idx.Insts))
		idx.Insts = append(idx.Insts, inst)
		return true
	})
	return idx
}

// At returns the instruction decoded at exactly va, if the sweep placed an
// instruction boundary there.
func (ix *Index) At(va uint64) (Inst, bool) {
	off := va - ix.Base
	if off >= uint64(len(ix.pos)) || ix.pos[off] < 0 {
		return Inst{}, false
	}
	return ix.Insts[ix.pos[off]], true
}

// AtPtr returns a pointer into the index for the instruction decoded at
// exactly va, or nil if no instruction boundary falls there. The pointee
// is shared with every other reader and must not be modified; the
// pointer form exists because Inst is large enough that copying it
// dominates hot per-instruction loops.
func (ix *Index) AtPtr(va uint64) *Inst {
	off := va - ix.Base
	if off >= uint64(len(ix.pos)) || ix.pos[off] < 0 {
		return nil
	}
	return &ix.Insts[ix.pos[off]]
}

// Range returns the instructions whose addresses fall in [lo, hi), as a
// subslice of the index (callers must not mutate it).
func (ix *Index) Range(lo, hi uint64) []Inst {
	if hi <= lo {
		return nil
	}
	return ix.Insts[ix.searchAddr(lo):ix.searchAddr(hi)]
}

// searchAddr returns the position of the first instruction with
// Addr >= va.
func (ix *Index) searchAddr(va uint64) int {
	lo, hi := 0, len(ix.Insts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.Insts[mid].Addr < va {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
