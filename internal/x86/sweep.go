package x86

import (
	"context"
	"math/bits"
)

// noCancel is the context used by the non-Ctx entry points: Done() is
// nil, so every cooperative-cancellation check compiles down to one
// predictable branch.
var noCancel = context.Background()

// LinearSweep disassembles code linearly from base, invoking fn for every
// decoded instruction. On a decode error the sweep re-synchronizes by
// advancing one byte, mirroring the recovery strategy used by FunSeeker
// (Kim et al., DSN 2022, §IV-B). fn may return false to stop the sweep.
//
// The *Inst passed to fn points at a single buffer reused across the
// whole sweep — this is what makes the sweep allocation-free. Callbacks
// that need the instruction beyond the callback's return must copy the
// pointee, never retain the pointer.
//
// The returned count is the number of bytes that had to be skipped due to
// decode errors, which is zero for well-formed compiler-generated text.
func LinearSweep(code []byte, base uint64, mode Mode, fn func(*Inst) bool) (skipped int) {
	if mode != Mode32 && mode != Mode64 {
		// DecodeInto fails on every byte of an unsupported mode; short-
		// circuit the same observable result (nothing decoded, every byte
		// skipped) without paying the per-byte error path.
		return len(code)
	}
	var inst Inst
	off := 0
	for off < len(code) {
		// Dispatch fast/slow directly: the mode check above hoists the
		// only work DecodeInto would add per instruction.
		if !decodeFast(code[off:], base+uint64(off), mode, &inst) {
			if err := decodeSlow(code[off:], base+uint64(off), mode, &inst); err != nil {
				off++
				skipped++
				continue
			}
		}
		if !fn(&inst) {
			return skipped
		}
		off += inst.Len
	}
	return skipped
}

// SweepAll disassembles code linearly and returns every instruction. It is
// a convenience wrapper over LinearSweep for tests and tools.
func SweepAll(code []byte, base uint64, mode Mode) []Inst {
	// Typical compiler-generated x86 averages close to 4 bytes per
	// instruction; reserve accordingly.
	insts := make([]Inst, 0, len(code)/4+1)
	LinearSweep(code, base, mode, func(inst *Inst) bool {
		insts = append(insts, *inst)
		return true
	})
	return insts
}

// Index is the materialized form of one linear sweep: every decoded
// instruction in address order plus enough bookkeeping to answer
// address-range queries without re-decoding. Building the index costs one
// sweep; afterwards any number of passes (entry identification, end-branch
// classification, property studies, code-reference scans) can share it,
// which is what makes the per-binary analysis context cheap. An Index is
// immutable after construction and safe for concurrent readers.
type Index struct {
	// Insts holds every decoded instruction in ascending address order.
	Insts []Inst
	// Base is the virtual address decoding started at.
	Base uint64
	// Skipped is the number of bytes the sweep had to skip to
	// re-synchronize after decode errors (zero for well-formed
	// compiler-generated text).
	Skipped int
	// Shards is the number of shards the index was decoded with
	// (1 for a sequential BuildIndex).
	Shards int
	// StitchRetries counts the instructions BuildIndexParallel had to
	// re-decode sequentially at shard seams before the speculative shard
	// streams re-synchronized (0 for a sequential build).
	StitchRetries int

	// Instruction boundaries are stored as a rank/select bitmap: one bit
	// per code byte (set = an instruction starts there) plus a per-word
	// running popcount so At/AtPtr resolve in O(1). Compared to the
	// earlier []int32 offset→position table this is 4 bytes/byte → 0.625
	// bytes/byte (boundary word + int32 rank per 64 bytes of text) and
	// skips the O(n) "-1" fill that dominated BuildIndex setup for large
	// texts; benchmarks showed the single extra popcount per lookup is
	// free next to the cache-miss the old 4×-larger table took.
	bits  []uint64
	ranks []int32
	n     int // len(code) the index was built over
}

// BuildIndex runs one sequential linear sweep over code and materializes
// it. For large texts BuildIndexParallel produces an identical index
// faster.
//
// The build is two-pass: a counting sweep that records only the boundary
// bitmap (one reused cache-resident Inst, no stores into a growing
// slice), then an exact-size materialization pass that decodes straight
// into the final Insts slots. Profiles showed the old single-pass
// append build spending over 70% of its time in growth memmoves and
// per-instruction struct copies — Inst is ~112 bytes against a ~3-byte
// average encoding, so the copy traffic dwarfs the decode itself. A
// second decode pass is cheaper than one round of copying, and it
// leaves the index allocating only its three final arrays.
func BuildIndex(code []byte, base uint64, mode Mode) *Index {
	idx, _ := buildIndexSeq(noCancel, code, base, mode)
	return idx
}

// buildIndexSeq is the shared sequential build behind BuildIndex and
// BuildIndexCtx. A context that can never cancel (noCancel /
// context.Background) skips every per-stride check.
func buildIndexSeq(ctx context.Context, code []byte, base uint64, mode Mode) (*Index, error) {
	words := (len(code) + 63) / 64
	idx := &Index{
		Base:   base,
		Shards: 1,
		bits:   make([]uint64, words),
		ranks:  make([]int32, words),
		n:      len(code),
	}
	done := ctx.Done()
	// Pass 1: count instructions and set boundary bits.
	var inst Inst
	total := 0
	off, next := 0, 0
	for off < len(code) {
		if done != nil && off >= next {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			next = off + cancelStride
		}
		if err := DecodeInto(code[off:], base+uint64(off), mode, &inst); err != nil {
			off++
			idx.Skipped++
			continue
		}
		idx.bits[off>>6] |= 1 << (off & 63)
		total++
		off += inst.Len
	}
	var c int32
	for w, word := range idx.bits {
		idx.ranks[w] = c
		c += int32(bits.OnesCount64(word))
	}
	// Pass 2: decode each boundary directly into its final slot. Walking
	// the bitmap instead of re-sweeping means skipped (undecodable) bytes
	// are never touched again, and decode determinism guarantees every
	// decode here succeeds with the same length as pass 1.
	idx.Insts = make([]Inst, total)
	i := 0
	next = 0
	for w, word := range idx.bits {
		if done != nil && w<<6 >= next {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			next = w<<6 + cancelStride
		}
		for word != 0 {
			off := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			_ = DecodeInto(code[off:], base+uint64(off), mode, &idx.Insts[i])
			i++
		}
	}
	return idx, nil
}

// lookup returns the position in Insts of the instruction starting at
// byte offset off, or -1 if no boundary falls there.
func (ix *Index) lookup(off uint64) int {
	if off >= uint64(ix.n) {
		return -1
	}
	w, b := off>>6, off&63
	word := ix.bits[w]
	if word>>b&1 == 0 {
		return -1
	}
	return int(ix.ranks[w]) + bits.OnesCount64(word&(1<<b-1))
}

// At returns the instruction decoded at exactly va, if the sweep placed an
// instruction boundary there.
func (ix *Index) At(va uint64) (Inst, bool) {
	p := ix.lookup(va - ix.Base)
	if p < 0 {
		return Inst{}, false
	}
	return ix.Insts[p], true
}

// AtPtr returns a pointer into the index for the instruction decoded at
// exactly va, or nil if no instruction boundary falls there. The pointee
// is shared with every other reader and must not be modified; the
// pointer form exists because Inst is large enough that copying it
// dominates hot per-instruction loops.
func (ix *Index) AtPtr(va uint64) *Inst {
	p := ix.lookup(va - ix.Base)
	if p < 0 {
		return nil
	}
	return &ix.Insts[p]
}

// Range returns the instructions whose addresses fall in [lo, hi), as a
// subslice of the index (callers must not mutate it).
func (ix *Index) Range(lo, hi uint64) []Inst {
	if hi <= lo {
		return nil
	}
	return ix.Insts[ix.searchAddr(lo):ix.searchAddr(hi)]
}

// searchAddr returns the position of the first instruction with
// Addr >= va.
func (ix *Index) searchAddr(va uint64) int {
	lo, hi := 0, len(ix.Insts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.Insts[mid].Addr < va {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
