package x86

// LinearSweep disassembles code linearly from base, invoking fn for every
// decoded instruction. On a decode error the sweep re-synchronizes by
// advancing one byte, mirroring the recovery strategy used by FunSeeker
// (Kim et al., DSN 2022, §IV-B). fn may return false to stop the sweep.
//
// The returned count is the number of bytes that had to be skipped due to
// decode errors, which is zero for well-formed compiler-generated text.
func LinearSweep(code []byte, base uint64, mode Mode, fn func(Inst) bool) (skipped int) {
	off := 0
	for off < len(code) {
		inst, err := Decode(code[off:], base+uint64(off), mode)
		if err != nil {
			off++
			skipped++
			continue
		}
		if !fn(inst) {
			return skipped
		}
		off += inst.Len
	}
	return skipped
}

// SweepAll disassembles code linearly and returns every instruction. It is
// a convenience wrapper over LinearSweep for tests and tools.
func SweepAll(code []byte, base uint64, mode Mode) []Inst {
	// Typical compiler-generated x86 averages close to 4 bytes per
	// instruction; reserve accordingly.
	insts := make([]Inst, 0, len(code)/4+1)
	LinearSweep(code, base, mode, func(inst Inst) bool {
		insts = append(insts, inst)
		return true
	})
	return insts
}
