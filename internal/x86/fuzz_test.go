package x86

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanicsOnRandomBytes is the decoder's core robustness
// property: arbitrary byte soup either decodes to an instruction of
// architectural length (1..15 bytes) or returns an error — never panics,
// never claims zero or oversized length.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, 32)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		for _, mode := range []Mode{Mode32, Mode64} {
			inst, err := Decode(buf, 0x1000, mode)
			if err != nil {
				continue
			}
			if inst.Len < 1 || inst.Len > 15 {
				t.Logf("mode %v bytes % x: len %d", mode, buf[:16], inst.Len)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestSweepTerminatesOnRandomBytes: a linear sweep over garbage always
// terminates and accounts for every byte.
func TestSweepTerminatesOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		buf := make([]byte, 256+rng.Intn(1024))
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		for _, mode := range []Mode{Mode32, Mode64} {
			consumed := 0
			skipped := LinearSweep(buf, 0, mode, func(inst *Inst) bool {
				consumed += inst.Len
				return true
			})
			if consumed+skipped != len(buf) {
				t.Fatalf("trial %d mode %v: %d consumed + %d skipped != %d",
					trial, mode, consumed, skipped, len(buf))
			}
		}
	}
}

// TestOneByteOpcodeTableSanity drives every primary opcode with generous
// operand bytes and checks decode outcomes are stable and bounded.
func TestOneByteOpcodeTableSanity(t *testing.T) {
	// A tail long enough to satisfy any operand form.
	tail := []byte{
		0x84, 0x24, 0x11, 0x22, 0x33, 0x44,
		0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC,
	}
	for op := 0; op < 256; op++ {
		buf := append([]byte{byte(op)}, tail...)
		for _, mode := range []Mode{Mode32, Mode64} {
			inst, err := Decode(buf, 0, mode)
			if err != nil {
				continue // invalid in this mode: acceptable
			}
			if inst.Len < 1 || inst.Len > 15 {
				t.Errorf("opcode %#02x mode %v: len %d", op, mode, inst.Len)
			}
			// Determinism: decoding the same bytes twice agrees.
			inst2, err2 := Decode(buf, 0, mode)
			if err2 != nil || inst2.Len != inst.Len || inst2.Class != inst.Class {
				t.Errorf("opcode %#02x mode %v: nondeterministic decode", op, mode)
			}
		}
	}
}

// TestTwoByteOpcodeTableSanity does the same for the 0F map.
func TestTwoByteOpcodeTableSanity(t *testing.T) {
	tail := []byte{
		0x84, 0x24, 0x11, 0x22, 0x33, 0x44,
		0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC,
	}
	for op := 0; op < 256; op++ {
		buf := append([]byte{0x0F, byte(op)}, tail...)
		for _, mode := range []Mode{Mode32, Mode64} {
			inst, err := Decode(buf, 0, mode)
			if err != nil {
				continue
			}
			if inst.Len < 2 || inst.Len > 15 {
				t.Errorf("0F %#02x mode %v: len %d", op, mode, inst.Len)
			}
		}
	}
}

// TestDecodePrefixSoup layers legitimate prefixes and checks the 15-byte
// guard engages rather than looping.
func TestDecodePrefixSoup(t *testing.T) {
	prefixes := []byte{0x66, 0x67, 0xF2, 0xF3, 0x2E, 0x3E, 0x26, 0x36, 0x64, 0x65, 0xF0}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		buf := make([]byte, 0, n+4)
		for i := 0; i < n; i++ {
			buf = append(buf, prefixes[rng.Intn(len(prefixes))])
		}
		buf = append(buf, 0x90)
		inst, err := Decode(buf, 0, Mode64)
		if err == nil && inst.Len > 15 {
			t.Fatalf("prefix soup length %d", inst.Len)
		}
	}
}
