package x86

import (
	"testing"
)

// decodeCase is one known encoding with its expected length and class.
type decodeCase struct {
	name   string
	code   []byte
	mode   Mode
	length int
	class  Class
	target uint64 // checked when nonzero or wantTgt set
	addr   uint64
}

func runDecodeCases(t *testing.T, cases []decodeCase) {
	t.Helper()
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			inst, err := Decode(tt.code, tt.addr, tt.mode)
			if err != nil {
				t.Fatalf("Decode(% x): %v", tt.code, err)
			}
			if inst.Len != tt.length {
				t.Errorf("Len = %d, want %d", inst.Len, tt.length)
			}
			if inst.Class != tt.class {
				t.Errorf("Class = %v, want %v", inst.Class, tt.class)
			}
			if tt.target != 0 {
				if !inst.HasTarget {
					t.Fatalf("HasTarget = false, want target %#x", tt.target)
				}
				if inst.Target != tt.target {
					t.Errorf("Target = %#x, want %#x", inst.Target, tt.target)
				}
			}
		})
	}
}

func TestDecodeCET(t *testing.T) {
	runDecodeCases(t, []decodeCase{
		{name: "endbr64", code: []byte{0xF3, 0x0F, 0x1E, 0xFA}, mode: Mode64, length: 4, class: ClassEndbr64},
		{name: "endbr32", code: []byte{0xF3, 0x0F, 0x1E, 0xFB}, mode: Mode32, length: 4, class: ClassEndbr32},
		{name: "endbr64-in-32bit-mode", code: []byte{0xF3, 0x0F, 0x1E, 0xFA}, mode: Mode32, length: 4, class: ClassEndbr64},
		// 0F 1E with a different ModRM is a hint NOP, not an end branch.
		{name: "hint-nop-not-endbr", code: []byte{0xF3, 0x0F, 0x1E, 0xC0}, mode: Mode64, length: 4, class: ClassOther},
		// Without the F3 prefix, 0F 1E is a plain reserved NOP form.
		{name: "no-f3-not-endbr", code: []byte{0x0F, 0x1E, 0xFA}, mode: Mode64, length: 3, class: ClassOther},
	})
}

func TestDecodeBranches(t *testing.T) {
	runDecodeCases(t, []decodeCase{
		{name: "call-rel32", code: []byte{0xE8, 0x10, 0x00, 0x00, 0x00}, mode: Mode64, length: 5, class: ClassCallRel, addr: 0x1000, target: 0x1015},
		{name: "call-rel32-negative", code: []byte{0xE8, 0xFB, 0xFF, 0xFF, 0xFF}, mode: Mode64, length: 5, class: ClassCallRel, addr: 0x1000, target: 0x1000},
		{name: "jmp-rel32", code: []byte{0xE9, 0x00, 0x01, 0x00, 0x00}, mode: Mode64, length: 5, class: ClassJmpRel, addr: 0x2000, target: 0x2105},
		{name: "jmp-rel8", code: []byte{0xEB, 0x05}, mode: Mode64, length: 2, class: ClassJmpRel, addr: 0x2000, target: 0x2007},
		{name: "jmp-rel8-backward", code: []byte{0xEB, 0xFE}, mode: Mode64, length: 2, class: ClassJmpRel, addr: 0x2000, target: 0x2000},
		{name: "je-rel8", code: []byte{0x74, 0x08}, mode: Mode64, length: 2, class: ClassJccRel, addr: 0x100, target: 0x10A},
		{name: "jne-rel32", code: []byte{0x0F, 0x85, 0x00, 0x02, 0x00, 0x00}, mode: Mode64, length: 6, class: ClassJccRel, addr: 0x100, target: 0x306},
		{name: "call-rel32-x86", code: []byte{0xE8, 0x10, 0x00, 0x00, 0x00}, mode: Mode32, length: 5, class: ClassCallRel, addr: 0x1000, target: 0x1015},
		{name: "call-rel-wraps-in-32bit", code: []byte{0xE8, 0xF0, 0xFF, 0xFF, 0xFF}, mode: Mode32, length: 5, class: ClassCallRel, addr: 0x2, target: 0xFFFFFFF7},
		{name: "loop", code: []byte{0xE2, 0xFC}, mode: Mode64, length: 2, class: ClassJccRel, addr: 0x10, target: 0xE},
		{name: "ret", code: []byte{0xC3}, mode: Mode64, length: 1, class: ClassRet},
		{name: "ret-imm16", code: []byte{0xC2, 0x08, 0x00}, mode: Mode64, length: 3, class: ClassRet},
		{name: "retf", code: []byte{0xCB}, mode: Mode64, length: 1, class: ClassRet},
	})
}

func TestDecodeIndirectBranches(t *testing.T) {
	runDecodeCases(t, []decodeCase{
		{name: "call-rax", code: []byte{0xFF, 0xD0}, mode: Mode64, length: 2, class: ClassCallInd},
		{name: "jmp-rdx", code: []byte{0xFF, 0xE2}, mode: Mode64, length: 2, class: ClassJmpInd},
		{name: "jmp-mem-rip", code: []byte{0xFF, 0x25, 0x10, 0x00, 0x00, 0x00}, mode: Mode64, length: 6, class: ClassJmpInd},
		{name: "call-mem-rip", code: []byte{0xFF, 0x15, 0x10, 0x00, 0x00, 0x00}, mode: Mode64, length: 6, class: ClassCallInd},
		{name: "push-rm-not-branch", code: []byte{0xFF, 0xF0}, mode: Mode64, length: 2, class: ClassOther},
		{name: "inc-rm-not-branch", code: []byte{0xFF, 0xC0}, mode: Mode64, length: 2, class: ClassOther},
		{name: "jmp-mem-abs-x86", code: []byte{0xFF, 0x24, 0x85, 0x00, 0x10, 0x40, 0x00}, mode: Mode32, length: 7, class: ClassJmpInd},
	})
}

func TestDecodeNotrack(t *testing.T) {
	inst, err := Decode([]byte{0x3E, 0xFF, 0xE2}, 0, Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Class != ClassJmpInd || !inst.Notrack {
		t.Fatalf("got class %v notrack %v, want jmp-ind with notrack", inst.Class, inst.Notrack)
	}
	if inst.Len != 3 {
		t.Fatalf("Len = %d, want 3", inst.Len)
	}
	// A 3E prefix on a non-branch is just a segment override.
	inst, err = Decode([]byte{0x3E, 0x89, 0x03}, 0, Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Notrack {
		t.Fatal("mov should not be marked notrack")
	}
}

func TestDecodeRIPRelative(t *testing.T) {
	// lea rax, [rip+0x20] at 0x1000: next = 0x1007, ref = 0x1027.
	inst, err := Decode([]byte{0x48, 0x8D, 0x05, 0x20, 0x00, 0x00, 0x00}, 0x1000, Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len != 7 {
		t.Fatalf("Len = %d, want 7", inst.Len)
	}
	if !inst.HasRIPRef || inst.RIPRef != 0x1027 {
		t.Fatalf("RIPRef = (%v, %#x), want 0x1027", inst.HasRIPRef, inst.RIPRef)
	}
	// Negative displacement.
	inst, err = Decode([]byte{0x48, 0x8B, 0x0D, 0xF9, 0xFF, 0xFF, 0xFF}, 0x1000, Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.HasRIPRef || inst.RIPRef != 0x1000 {
		t.Fatalf("RIPRef = (%v, %#x), want 0x1000", inst.HasRIPRef, inst.RIPRef)
	}
	// In 32-bit mode, mod=00 rm=101 is an absolute disp32, not RIP-relative.
	inst, err = Decode([]byte{0x8B, 0x0D, 0x00, 0x10, 0x40, 0x00}, 0x1000, Mode32)
	if err != nil {
		t.Fatal(err)
	}
	if inst.HasRIPRef {
		t.Fatal("32-bit mode must not produce a RIP reference")
	}
	if !inst.HasMemDisp || inst.MemDisp != 0x401000 {
		t.Fatalf("MemDisp = (%v, %#x), want 0x401000", inst.HasMemDisp, inst.MemDisp)
	}
}

func TestDecodeLengthsCommon(t *testing.T) {
	runDecodeCases(t, []decodeCase{
		{name: "push-rbp", code: []byte{0x55}, mode: Mode64, length: 1, class: ClassOther},
		{name: "mov-rbp-rsp", code: []byte{0x48, 0x89, 0xE5}, mode: Mode64, length: 3, class: ClassOther},
		{name: "sub-rsp-imm8", code: []byte{0x48, 0x83, 0xEC, 0x10}, mode: Mode64, length: 4, class: ClassOther},
		{name: "sub-rsp-imm32", code: []byte{0x48, 0x81, 0xEC, 0x00, 0x01, 0x00, 0x00}, mode: Mode64, length: 7, class: ClassOther},
		{name: "mov-eax-imm32", code: []byte{0xB8, 0x01, 0x00, 0x00, 0x00}, mode: Mode64, length: 5, class: ClassOther},
		{name: "mov-rax-imm64", code: []byte{0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8}, mode: Mode64, length: 10, class: ClassOther},
		{name: "mov-ax-imm16", code: []byte{0x66, 0xB8, 0x01, 0x00}, mode: Mode64, length: 4, class: ClassOther},
		{name: "nop", code: []byte{0x90}, mode: Mode64, length: 1, class: ClassNop},
		{name: "nop-66", code: []byte{0x66, 0x90}, mode: Mode64, length: 2, class: ClassNop},
		{name: "pause-not-nop", code: []byte{0xF3, 0x90}, mode: Mode64, length: 2, class: ClassOther},
		{name: "xchg-r8-not-nop", code: []byte{0x41, 0x90}, mode: Mode64, length: 2, class: ClassOther},
		{name: "nop-multi-4", code: []byte{0x0F, 0x1F, 0x40, 0x00}, mode: Mode64, length: 4, class: ClassNop},
		{name: "nop-multi-8", code: []byte{0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00}, mode: Mode64, length: 8, class: ClassNop},
		{name: "nop-word-9", code: []byte{0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00}, mode: Mode64, length: 9, class: ClassNop},
		{name: "int3", code: []byte{0xCC}, mode: Mode64, length: 1, class: ClassInt3},
		{name: "leave", code: []byte{0xC9}, mode: Mode64, length: 1, class: ClassLeave},
		{name: "hlt", code: []byte{0xF4}, mode: Mode64, length: 1, class: ClassHlt},
		{name: "ud2", code: []byte{0x0F, 0x0B}, mode: Mode64, length: 2, class: ClassUD},
		{name: "test-eax-eax", code: []byte{0x85, 0xC0}, mode: Mode64, length: 2, class: ClassOther},
		{name: "test-rm-imm", code: []byte{0xF7, 0xC0, 0x01, 0x00, 0x00, 0x00}, mode: Mode64, length: 6, class: ClassOther},
		{name: "not-rm-no-imm", code: []byte{0xF7, 0xD0}, mode: Mode64, length: 2, class: ClassOther},
		{name: "neg-mem-no-imm", code: []byte{0xF7, 0x5D, 0xFC}, mode: Mode64, length: 3, class: ClassOther},
		{name: "lea-sib-disp32", code: []byte{0x8D, 0x84, 0x88, 0x00, 0x01, 0x00, 0x00}, mode: Mode64, length: 7, class: ClassOther},
		{name: "mov-moffs-64", code: []byte{0xA1, 1, 2, 3, 4, 5, 6, 7, 8}, mode: Mode64, length: 9, class: ClassOther},
		{name: "mov-moffs-32", code: []byte{0xA1, 1, 2, 3, 4}, mode: Mode32, length: 5, class: ClassOther},
		{name: "enter", code: []byte{0xC8, 0x10, 0x00, 0x00}, mode: Mode64, length: 4, class: ClassOther},
		{name: "syscall", code: []byte{0x0F, 0x05}, mode: Mode64, length: 2, class: ClassOther},
		{name: "cpuid", code: []byte{0x0F, 0xA2}, mode: Mode64, length: 2, class: ClassOther},
		{name: "movzx", code: []byte{0x0F, 0xB6, 0xC0}, mode: Mode64, length: 3, class: ClassOther},
		{name: "imul-3op-imm8", code: []byte{0x6B, 0xC0, 0x08}, mode: Mode64, length: 3, class: ClassOther},
		{name: "imul-3op-imm32", code: []byte{0x69, 0xC0, 0x00, 0x01, 0x00, 0x00}, mode: Mode64, length: 6, class: ClassOther},
		{name: "shld-imm8", code: []byte{0x0F, 0xA4, 0xC2, 0x04}, mode: Mode64, length: 4, class: ClassOther},
		{name: "bt-imm8", code: []byte{0x0F, 0xBA, 0xE0, 0x07}, mode: Mode64, length: 4, class: ClassOther},
		{name: "bswap", code: []byte{0x0F, 0xC8}, mode: Mode64, length: 2, class: ClassOther},
		{name: "x87-fadd", code: []byte{0xD8, 0x03}, mode: Mode64, length: 2, class: ClassOther},
		{name: "x87-fld-mem", code: []byte{0xDD, 0x45, 0xF8}, mode: Mode64, length: 3, class: ClassOther},
		{name: "push-imm32", code: []byte{0x68, 0x10, 0x20, 0x30, 0x40}, mode: Mode64, length: 5, class: ClassOther},
		{name: "push-imm8", code: []byte{0x6A, 0x01}, mode: Mode64, length: 2, class: ClassOther},
		{name: "push-imm16-66", code: []byte{0x66, 0x68, 0x10, 0x20}, mode: Mode32, length: 4, class: ClassOther},
		{name: "movsxd", code: []byte{0x48, 0x63, 0xC7}, mode: Mode64, length: 3, class: ClassOther},
		{name: "cmp-al-imm8", code: []byte{0x3C, 0x41}, mode: Mode64, length: 2, class: ClassOther},
		{name: "cmp-eax-imm32", code: []byte{0x3D, 0x00, 0x01, 0x00, 0x00}, mode: Mode64, length: 5, class: ClassOther},
	})
}

func TestDecode32BitSpecific(t *testing.T) {
	runDecodeCases(t, []decodeCase{
		{name: "inc-eax", code: []byte{0x40}, mode: Mode32, length: 1, class: ClassOther},
		{name: "dec-edi", code: []byte{0x4F}, mode: Mode32, length: 1, class: ClassOther},
		{name: "pusha", code: []byte{0x60}, mode: Mode32, length: 1, class: ClassOther},
		{name: "les", code: []byte{0xC4, 0x00}, mode: Mode32, length: 2, class: ClassOther},
		{name: "lds", code: []byte{0xC5, 0x03}, mode: Mode32, length: 2, class: ClassOther},
		{name: "bound", code: []byte{0x62, 0x02}, mode: Mode32, length: 2, class: ClassOther},
		{name: "arpl", code: []byte{0x63, 0xC8}, mode: Mode32, length: 2, class: ClassOther},
		{name: "callf-ptr32", code: []byte{0x9A, 1, 2, 3, 4, 5, 6}, mode: Mode32, length: 7, class: ClassOther},
		{name: "jmp-rel16-with-66", code: []byte{0x66, 0xE9, 0x10, 0x00}, mode: Mode32, length: 4, class: ClassJmpRel},
		{name: "aam", code: []byte{0xD4, 0x0A}, mode: Mode32, length: 2, class: ClassOther},
		{name: "addr16-mov", code: []byte{0x67, 0x8B, 0x46, 0x04}, mode: Mode32, length: 4, class: ClassOther},
		{name: "addr16-disp16", code: []byte{0x67, 0x8B, 0x06, 0x34, 0x12}, mode: Mode32, length: 5, class: ClassOther},
		{name: "get-pc-thunk-body", code: []byte{0x8B, 0x0C, 0x24}, mode: Mode32, length: 3, class: ClassOther},
	})
}

func TestDecodeInvalidIn64(t *testing.T) {
	invalid := [][]byte{
		{0x06},                   // push es
		{0x27},                   // daa
		{0x60},                   // pusha
		{0x9A, 1, 2, 3, 4, 5, 6}, // callf
		{0xCE},                   // into
		{0xD4, 0x0A},             // aam
		{0x0F, 0x24, 0xC0},       // mov tr
	}
	for _, code := range invalid {
		if _, err := Decode(code, 0, Mode64); err == nil {
			t.Errorf("Decode(% x) in 64-bit mode succeeded, want error", code)
		}
	}
}

func TestDecodeVEX(t *testing.T) {
	runDecodeCases(t, []decodeCase{
		// vzeroupper: C5 F8 77
		{name: "vzeroupper", code: []byte{0xC5, 0xF8, 0x77}, mode: Mode64, length: 3, class: ClassOther},
		// vmovaps xmm0, xmm1: C5 F8 28 C1
		{name: "vmovaps", code: []byte{0xC5, 0xF8, 0x28, 0xC1}, mode: Mode64, length: 4, class: ClassOther},
		// vpaddd ymm0,ymm1,ymm2 (VEX3, map 0F): C4 E1 75 FE C2
		{name: "vpaddd-vex3", code: []byte{0xC4, 0xE1, 0x75, 0xFE, 0xC2}, mode: Mode64, length: 5, class: ClassOther},
		// vpshufb (map 0F38): C4 E2 71 00 C2
		{name: "vpshufb", code: []byte{0xC4, 0xE2, 0x71, 0x00, 0xC2}, mode: Mode64, length: 5, class: ClassOther},
		// vpalignr (map 0F3A, imm8): C4 E3 71 0F C2 04
		{name: "vpalignr", code: []byte{0xC4, 0xE3, 0x71, 0x0F, 0xC2, 0x04}, mode: Mode64, length: 6, class: ClassOther},
		// VEX in 32-bit mode requires modrm-like byte >= 0xC0.
		{name: "vex2-in-32bit", code: []byte{0xC5, 0xF8, 0x77}, mode: Mode32, length: 3, class: ClassOther},
		// EVEX: 62 F1 7C 48 28 C1 (vmovaps zmm0, zmm1)
		{name: "evex-vmovaps", code: []byte{0x62, 0xF1, 0x7C, 0x48, 0x28, 0xC1}, mode: Mode64, length: 6, class: ClassOther},
		// EVEX with disp8: 62 F1 7C 48 28 40 01
		{name: "evex-disp8", code: []byte{0x62, 0xF1, 0x7C, 0x48, 0x28, 0x40, 0x01}, mode: Mode64, length: 7, class: ClassOther},
	})
}

func TestDecodeTruncated(t *testing.T) {
	truncated := [][]byte{
		{},
		{0xE8},
		{0xE8, 0x00, 0x00},
		{0x48},
		{0x0F},
		{0xF3, 0x0F, 0x1E},
		{0xFF},
		{0x8B, 0x84},
		{0x8B, 0x84, 0x88, 0x00, 0x01},
		{0xC4, 0xE2},
		{0x62, 0xF1, 0x7C},
	}
	for _, code := range truncated {
		if _, err := Decode(code, 0, Mode64); err == nil {
			t.Errorf("Decode(% x) succeeded, want truncation error", code)
		}
	}
}

func TestDecodeTooLong(t *testing.T) {
	// 14 operand-size prefixes followed by a two-byte instruction exceeds
	// the 15-byte limit.
	code := make([]byte, 0, 17)
	for i := 0; i < 14; i++ {
		code = append(code, 0x66)
	}
	code = append(code, 0x89, 0xC8)
	if _, err := Decode(code, 0, Mode64); err == nil {
		t.Fatal("want error for >15 byte instruction")
	}
}

func TestDecodeRexHandling(t *testing.T) {
	// REX followed by a legacy prefix is dead; the 66 still applies.
	inst, err := Decode([]byte{0x48, 0x66, 0xB8, 0x01, 0x00}, 0, Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len != 5 {
		t.Fatalf("Len = %d, want 5 (dead REX, imm16)", inst.Len)
	}
	// Two REX prefixes: only the last one counts.
	inst, err = Decode([]byte{0x40, 0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8}, 0, Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len != 11 {
		t.Fatalf("Len = %d, want 11 (REX.W imm64)", inst.Len)
	}
}

func TestLinearSweepResync(t *testing.T) {
	// A valid mov, one junk byte invalid in 64-bit mode (0x06 = push es),
	// then a ret. The sweep must skip exactly the junk byte and
	// resynchronize on the ret.
	code := []byte{
		0xB8, 0x01, 0x00, 0x00, 0x00, // mov eax, 1
		0x06, // invalid in 64-bit mode
		0xC3, // ret
	}
	var classes []Class
	skipped := LinearSweep(code, 0x1000, Mode64, func(inst *Inst) bool {
		classes = append(classes, inst.Class)
		return true
	})
	if skipped == 0 {
		t.Fatal("expected skipped bytes for undefined opcode")
	}
	if len(classes) == 0 || classes[len(classes)-1] != ClassRet {
		t.Fatalf("sweep did not recover to the trailing ret: %v", classes)
	}
}

func TestLinearSweepStop(t *testing.T) {
	code := []byte{0x90, 0x90, 0x90}
	n := 0
	LinearSweep(code, 0, Mode64, func(*Inst) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("sweep visited %d instructions, want 2 (early stop)", n)
	}
}

func TestSweepAllContiguous(t *testing.T) {
	code := []byte{
		0xF3, 0x0F, 0x1E, 0xFA, // endbr64
		0x55,             // push rbp
		0x48, 0x89, 0xE5, // mov rbp, rsp
		0xE8, 0x00, 0x00, 0x00, 0x00, // call
		0xC9, // leave
		0xC3, // ret
	}
	insts := SweepAll(code, 0x400000, Mode64)
	if len(insts) != 6 {
		t.Fatalf("got %d instructions, want 6", len(insts))
	}
	// Verify contiguity.
	next := uint64(0x400000)
	for _, inst := range insts {
		if inst.Addr != next {
			t.Fatalf("gap: inst at %#x, expected %#x", inst.Addr, next)
		}
		next = inst.Next()
	}
	if insts[0].Class != ClassEndbr64 {
		t.Errorf("first inst class = %v, want endbr64", insts[0].Class)
	}
	if insts[3].Class != ClassCallRel || insts[3].Target != insts[4].Addr {
		t.Errorf("call target = %#x, want %#x", insts[3].Target, insts[4].Addr)
	}
}

func TestModeString(t *testing.T) {
	if Mode32.String() != "x86" || Mode64.String() != "x86-64" {
		t.Fatal("unexpected mode names")
	}
	if Mode(0).String() == "" {
		t.Fatal("unknown mode must still render")
	}
}

func TestDecodeRejectsBadMode(t *testing.T) {
	if _, err := Decode([]byte{0x90}, 0, Mode(16)); err == nil {
		t.Fatal("want error for unsupported mode")
	}
}

func TestInstAccessors(t *testing.T) {
	inst, err := Decode([]byte{0xFF, 0xE2}, 0x10, Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Mod() != 3 || inst.Reg() != 4 || inst.RM() != 2 {
		t.Fatalf("modrm fields = %d/%d/%d, want 3/4/2", inst.Mod(), inst.Reg(), inst.RM())
	}
	if inst.Next() != 0x12 {
		t.Fatalf("Next = %#x, want 0x12", inst.Next())
	}
	if !inst.Class.IsBranch() {
		t.Fatal("jmp-ind must be a branch class")
	}
	if ClassNop.IsBranch() {
		t.Fatal("nop must not be a branch class")
	}
	endbr, err := Decode([]byte{0xF3, 0x0F, 0x1E, 0xFA}, 0, Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if !endbr.IsEndbr() {
		t.Fatal("endbr64 must report IsEndbr")
	}
}
