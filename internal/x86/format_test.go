package x86

import (
	"strings"
	"testing"
)

func TestFormatKnown(t *testing.T) {
	tests := []struct {
		name string
		code []byte
		mode Mode
		addr uint64
		want string
	}{
		{"endbr64", []byte{0xF3, 0x0F, 0x1E, 0xFA}, Mode64, 0, "endbr64"},
		{"endbr32", []byte{0xF3, 0x0F, 0x1E, 0xFB}, Mode32, 0, "endbr32"},
		{"push-rbp", []byte{0x55}, Mode64, 0, "push rbp"},
		{"push-ebp-32", []byte{0x55}, Mode32, 0, "push ebp"},
		{"pop-r12", []byte{0x41, 0x5C}, Mode64, 0, "pop r12"},
		{"mov-rbp-rsp", []byte{0x48, 0x89, 0xE5}, Mode64, 0, "mov rbp, rsp"},
		{"mov-ebp-esp", []byte{0x89, 0xE5}, Mode32, 0, "mov ebp, esp"},
		{"ret", []byte{0xC3}, Mode64, 0, "ret"},
		{"ret-imm", []byte{0xC2, 0x08, 0x00}, Mode64, 0, "ret 0x8"},
		{"leave", []byte{0xC9}, Mode64, 0, "leave"},
		{"nop", []byte{0x90}, Mode64, 0, "nop"},
		{"int3", []byte{0xCC}, Mode64, 0, "int3"},
		{"hlt", []byte{0xF4}, Mode64, 0, "hlt"},
		{"ud2", []byte{0x0F, 0x0B}, Mode64, 0, "ud2"},
		{"call", []byte{0xE8, 0x0B, 0x00, 0x00, 0x00}, Mode64, 0x1000, "call 0x1010"},
		{"jmp", []byte{0xEB, 0x05}, Mode64, 0x2000, "jmp 0x2007"},
		{"je", []byte{0x74, 0x02}, Mode64, 0x10, "je 0x14"},
		{"jne-near", []byte{0x0F, 0x85, 0x00, 0x01, 0x00, 0x00}, Mode64, 0, "jne 0x106"},
		{"sub-rsp", []byte{0x48, 0x83, 0xEC, 0x10}, Mode64, 0, "sub rsp, 0x10"},
		{"xor", []byte{0x48, 0x31, 0xC0}, Mode64, 0, "xor rax, rax"},
		{"mov-imm", []byte{0xB8, 0x2A, 0x00, 0x00, 0x00}, Mode64, 0, "mov eax, 0x2a"},
		{"mov-mem", []byte{0x48, 0x89, 0x45, 0xF8}, Mode64, 0, "mov [rbp-0x8], rax"},
		{"mov-load-rsp", []byte{0x48, 0x8B, 0x44, 0x24, 0x08}, Mode64, 0, "mov rax, [rsp+0x8]"},
		{"lea-rip", []byte{0x48, 0x8D, 0x05, 0x10, 0x00, 0x00, 0x00}, Mode64, 0, "lea rax, [rip+0x10]"},
		{"call-ind-mem", []byte{0xFF, 0x55, 0xF0}, Mode64, 0, "call [rbp-0x10]"},
		{"notrack-jmp", []byte{0x3E, 0xFF, 0xE2}, Mode64, 0, "notrack jmp rdx"},
		{"jmp-reg", []byte{0xFF, 0xE0}, Mode64, 0, "jmp rax"},
		{"push-imm", []byte{0x68, 0x00, 0x10, 0x40, 0x00}, Mode32, 0, "push 0x401000"},
		{"movsxd", []byte{0x48, 0x63, 0xC8}, Mode64, 0, "movsxd rcx, eax"},
		{"test", []byte{0x48, 0x85, 0xC0}, Mode64, 0, "test rax, rax"},
		{"imul", []byte{0x48, 0x0F, 0xAF, 0xC1}, Mode64, 0, "imul rax, rcx"},
		{"movzx", []byte{0x0F, 0xB6, 0xC1}, Mode64, 0, "movzx eax, cl"},
		{"cmova", []byte{0x48, 0x0F, 0x47, 0xC1}, Mode64, 0, "cmova rax, rcx"},
		{"sete", []byte{0x0F, 0x94, 0xC0}, Mode64, 0, "sete al"},
		{"shl", []byte{0x48, 0xC1, 0xE0, 0x04}, Mode64, 0, "shl rax, 0x4"},
		{"syscall", []byte{0x0F, 0x05}, Mode64, 0, "syscall"},
		{"lea-sib", []byte{0x48, 0x8D, 0x04, 0x88}, Mode64, 0, "lea rax, [rax+rcx*4]"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, n, err := Format(tt.code, tt.addr, tt.mode)
			if err != nil {
				t.Fatalf("Format: %v", err)
			}
			if n != len(tt.code) {
				t.Errorf("consumed %d bytes, want %d", n, len(tt.code))
			}
			if got != tt.want {
				t.Errorf("Format = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestFormatFallback(t *testing.T) {
	// An SSE instruction without a dedicated renderer falls back to a
	// generic opcode spelling rather than failing.
	got, n, err := Format([]byte{0x0F, 0x10, 0xC1}, 0, Mode64) // movups xmm0, xmm1
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	if n != 3 {
		t.Errorf("n = %d", n)
	}
	if !strings.HasPrefix(got, "op") {
		t.Errorf("fallback = %q, want generic opcode form", got)
	}
}

func TestFormatError(t *testing.T) {
	if _, _, err := Format([]byte{0x06}, 0, Mode64); err == nil {
		t.Error("want error for invalid instruction")
	}
	if _, _, err := Format(nil, 0, Mode64); err == nil {
		t.Error("want error for empty input")
	}
}
