package x86

import "math/bits"

// Superset is a superset disassembly of a text: one decode at every byte
// offset, memoized. Where the linear sweep commits to a single
// instruction stream, the superset keeps every candidate stream alive —
// the representation the sound-disassembly and FDE-fusion directions
// build on, and the one reverse-engineering tooling needs to reason
// about overlapping instruction sequences.
//
// The whole point of the structure is the length memo: naive superset
// disassembly re-decodes each fallthrough chain from scratch at every
// offset it visits (the average chain touches an offset ~L times for an
// average instruction length L), while Superset decodes each offset
// exactly once and answers every subsequent chain step with a table
// lookup. Lens and Classes are one byte per text byte, so the memo costs
// ~2 bytes/byte — 50× smaller than materializing an Inst per offset.
type Superset struct {
	// Base is the virtual address of offset 0.
	Base uint64
	// Mode is the decode mode the superset was built under.
	Mode Mode
	// Lens[i] is the encoded length of the instruction decoding at
	// offset i, or 0 if no instruction decodes there.
	Lens []uint8
	// Classes[i] is the Class of the instruction at offset i,
	// meaningful only where Lens[i] > 0.
	Classes []uint8

	// viable is a bitmap over offsets: bit i is set when the fallthrough
	// chain starting at i reaches exactly the end of the text without
	// ever hitting an undecodable offset. Endbr-anchored chains that are
	// viable in this sense are the seed of the soundness argument in
	// Zhao et al. (arXiv:2506.09426).
	viable []uint64
}

// BuildSuperset decodes code at every byte offset and returns the memo.
// It costs one decode per offset — roughly 3× a linear sweep for
// compiler-generated text — after which chain walks, viability queries,
// and marker scans are pure table work.
func BuildSuperset(code []byte, base uint64, mode Mode) *Superset {
	n := len(code)
	s := &Superset{
		Base:    base,
		Mode:    mode,
		Lens:    make([]uint8, n),
		Classes: make([]uint8, n),
		viable:  make([]uint64, (n+63)/64),
	}
	var inst Inst
	for off := 0; off < n; off++ {
		if err := DecodeInto(code[off:], base+uint64(off), mode, &inst); err != nil {
			continue
		}
		s.Lens[off] = uint8(inst.Len)
		s.Classes[off] = uint8(inst.Class)
	}
	// Viability is a pure function of the length memo: off is viable iff
	// it decodes and its successor is the text end or itself viable.
	// Successors are strictly ahead (Len >= 1), so one back-to-front
	// pass reaches the fixpoint — this is where the memo pays: the naive
	// formulation re-decodes the whole chain from every offset.
	for off := n - 1; off >= 0; off-- {
		l := int(s.Lens[off])
		if l == 0 {
			continue
		}
		nxt := off + l
		if nxt == n || s.viable[nxt>>6]>>(uint(nxt)&63)&1 == 1 {
			s.viable[off>>6] |= 1 << (uint(off) & 63)
		}
	}
	return s
}

// Len returns the number of byte offsets covered.
func (s *Superset) Len() int { return len(s.Lens) }

// LenAt returns the instruction length at offset off, or 0 if nothing
// decodes there (or off is out of range).
func (s *Superset) LenAt(off int) int {
	if off < 0 || off >= len(s.Lens) {
		return 0
	}
	return int(s.Lens[off])
}

// ClassAt returns the class of the instruction at offset off;
// ClassOther when nothing decodes there.
func (s *Superset) ClassAt(off int) Class {
	if off < 0 || off >= len(s.Lens) || s.Lens[off] == 0 {
		return ClassOther
	}
	return Class(s.Classes[off])
}

// Viable reports whether the fallthrough chain from off reaches exactly
// the end of the text without hitting an undecodable offset.
func (s *Superset) Viable(off int) bool {
	if off < 0 || off >= len(s.Lens) {
		return false
	}
	return s.viable[off>>6]>>(uint(off)&63)&1 == 1
}

// Chain walks the fallthrough chain from off using only the memo — no
// re-decoding — invoking fn with each offset, length, and class until
// the chain leaves the text, hits an undecodable offset, or fn returns
// false. It returns the offset the walk stopped at (the first offset
// not delivered to fn).
func (s *Superset) Chain(off int, fn func(off, length int, class Class) bool) int {
	for off >= 0 && off < len(s.Lens) {
		l := int(s.Lens[off])
		if l == 0 {
			return off
		}
		if !fn(off, l, Class(s.Classes[off])) {
			return off
		}
		off += l
	}
	return off
}

// Markers returns the virtual addresses of every end-branch marker in
// the superset, in ascending order — a pure scan of the class memo. On
// CET-enabled text this agrees with the raw byte-pattern marker scan;
// the superset additionally knows each marker's decode viability.
func (s *Superset) Markers() []uint64 {
	var out []uint64
	for off, c := range s.Classes {
		if s.Lens[off] == 0 {
			continue
		}
		if cl := Class(c); cl == ClassEndbr64 || cl == ClassEndbr32 {
			out = append(out, s.Base+uint64(off))
		}
	}
	return out
}

// ViableCount returns the number of viable offsets.
func (s *Superset) ViableCount() int {
	n := 0
	for _, w := range s.viable {
		n += bits.OnesCount64(w)
	}
	return n
}
