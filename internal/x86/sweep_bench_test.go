package x86

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

// The sweep microbenchmark corpus: 4 MiB of compiler-shaped text per
// mode, built once. Large enough that the parallel build's fan-out is
// amortized and MB/s figures are stable.
var (
	benchTextOnce sync.Once
	benchText64   []byte
	benchText32   []byte
)

func sweepBenchText(mode Mode) []byte {
	benchTextOnce.Do(func() {
		rng := rand.New(rand.NewSource(424242))
		benchText64 = GenText(4<<20, Mode64, rng, 0)
		benchText32 = GenText(4<<20, Mode32, rng, 0)
	})
	if mode == Mode32 {
		return benchText32
	}
	return benchText64
}

// BenchmarkDecode measures single-instruction decode over the mixed
// instruction stream (fast path + slow path in realistic proportion).
func BenchmarkDecode(b *testing.B) {
	code := sweepBenchText(Mode64)
	b.SetBytes(int64(len(code)))
	b.ReportAllocs()
	var inst Inst
	for i := 0; i < b.N; i++ {
		off := 0
		for off < len(code) {
			if err := DecodeInto(code[off:], uint64(off), Mode64, &inst); err != nil {
				off++
				continue
			}
			off += inst.Len
		}
	}
}

// BenchmarkSweep measures the raw LinearSweep callback loop.
func BenchmarkSweep(b *testing.B) {
	for _, mode := range []Mode{Mode64, Mode32} {
		b.Run(mode.String(), func(b *testing.B) {
			code := sweepBenchText(mode)
			b.SetBytes(int64(len(code)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				LinearSweep(code, 0x401000, mode, func(inst *Inst) bool {
					n++
					return true
				})
				if n == 0 {
					b.Fatal("empty sweep")
				}
			}
		})
	}
}

// BenchmarkBuildIndex measures the sequential index build — the paper's
// Table III linear-sweep cost, in MB/s.
func BenchmarkBuildIndex(b *testing.B) {
	code := sweepBenchText(Mode64)
	b.SetBytes(int64(len(code)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx := BuildIndex(code, 0x401000, Mode64)
		if len(idx.Insts) == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkBuildIndexParallel measures the sharded build at several
// worker counts against the same corpus as BenchmarkBuildIndex.
func BenchmarkBuildIndexParallel(b *testing.B) {
	code := sweepBenchText(Mode64)
	for _, workers := range []int{2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			b.SetBytes(int64(len(code)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				idx := BuildIndexParallel(code, 0x401000, Mode64, workers)
				if len(idx.Insts) == 0 {
					b.Fatal("empty index")
				}
			}
		})
	}
}

// BenchmarkIndexAt measures the rank/select boundary lookup.
func BenchmarkIndexAt(b *testing.B) {
	code := sweepBenchText(Mode64)
	idx := BuildIndex(code, 0x401000, Mode64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := idx.Base + uint64(i%len(code))
		idx.AtPtr(va)
	}
}
