package x86

import (
	"bytes"
	"testing"
)

// instEqual compares two instructions field-for-field. Inst holds no
// pointers (the prefix record is a fixed array), so this is plain ==.
func instEqual(a, b Inst) bool {
	return a == b
}

// FuzzDecode drives the decoder with arbitrary byte streams in both
// operating modes. Invariants: the decoder never panics; a successful
// decode consumes 1..15 bytes, no more than were supplied; decoding the
// exact consumed prefix again reproduces the identical instruction
// (determinism + no reliance on bytes past Len); and DecodeLen agrees
// with Decode.
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		{0xf3, 0x0f, 0x1e, 0xfa},                   // endbr64
		{0xf3, 0x0f, 0x1e, 0xfb},                   // endbr32
		{0xe8, 0x00, 0x00, 0x00, 0x00},             // call rel32
		{0xe9, 0xfb, 0xff, 0xff, 0xff},             // jmp rel32
		{0xff, 0x25, 0x00, 0x10, 0x00, 0x00},       // jmp indirect
		{0x0f, 0x84, 0x10, 0x00, 0x00, 0x00},       // jz rel32
		{0x48, 0x8b, 0x04, 0xc5, 0, 0, 0, 0},       // mov rax,[rax*8+disp32]
		{0x66, 0x0f, 0x38, 0x00, 0xc0},             // three-byte opcode map
		{0xc4, 0xe2, 0x79, 0x00, 0xc0},             // vex3
		{0xc5, 0xf8, 0x77},                         // vex2 vzeroupper
		{0x62, 0xf1, 0x7c, 0x48, 0x28, 0xc0},       // evex
		{0xf0, 0x48, 0x0f, 0xb1, 0x0d, 0, 0, 0, 0}, // lock cmpxchg
		{0x66, 0x66, 0x66, 0x90},                   // redundant prefixes
		{0xc3},                                     // ret
		{0xcc},                                     // int3
		{0x00},
		{},
	}
	for _, s := range seeds {
		f.Add(s, true)
		f.Add(s, false)
	}
	f.Fuzz(func(t *testing.T, data []byte, mode64 bool) {
		mode := Mode32
		if mode64 {
			mode = Mode64
		}
		const addr = 0x401000
		inst, err := Decode(data, addr, mode)
		if err != nil {
			return
		}
		if inst.Len <= 0 || inst.Len > 15 {
			t.Fatalf("Len = %d, want 1..15 (input %x)", inst.Len, data)
		}
		if inst.Len > len(data) {
			t.Fatalf("Len = %d > len(data) = %d (input %x)", inst.Len, len(data), data)
		}
		// Decoding only the consumed bytes must reproduce the instruction
		// exactly: anything else means the decoder peeked past Len.
		again, err := Decode(data[:inst.Len], addr, mode)
		if err != nil {
			t.Fatalf("re-decode of consumed prefix failed: %v (input %x)", err, data[:inst.Len])
		}
		if !instEqual(again, inst) {
			t.Fatalf("re-decode mismatch:\n first %+v\nsecond %+v\ninput %x", inst, again, data[:inst.Len])
		}
		n, err := DecodeLen(data, mode)
		if err != nil || n != inst.Len {
			t.Fatalf("DecodeLen = (%d, %v), Decode.Len = %d (input %x)", n, err, inst.Len, data)
		}
	})
}

// FuzzDecodeSuffixStability: an instruction that decodes from a buffer
// must decode identically when trailing bytes are appended — the decoder
// must not let content past Len influence the result.
func FuzzDecodeSuffixStability(f *testing.F) {
	f.Add([]byte{0xe8, 0x00, 0x00, 0x00, 0x00, 0x90, 0x90}, true)
	f.Add([]byte{0xf3, 0x0f, 0x1e, 0xfa, 0xc3}, false)
	f.Add([]byte{0x66, 0x90}, true)
	f.Fuzz(func(t *testing.T, data []byte, mode64 bool) {
		mode := Mode32
		if mode64 {
			mode = Mode64
		}
		inst, err := Decode(data, 0, mode)
		if err != nil {
			return
		}
		padded := append(bytes.Clone(data), 0xcc, 0xcc)
		again, err := Decode(padded, 0, mode)
		if err != nil || !instEqual(again, inst) {
			t.Fatalf("padding changed decode: (%+v, %v) vs %+v (input %x)", again, err, inst, data)
		}
	})
}
