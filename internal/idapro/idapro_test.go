package idapro

import (
	"testing"

	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

func build(t *testing.T, spec *synth.ProgSpec, cfg synth.Config) (*elfx.Binary, *groundtruth.GT) {
	t.Helper()
	res, err := synth.Compile(spec, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	bin, err := elfx.Load(res.Stripped)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return bin, res.GT
}

func addrOf(t *testing.T, gt *groundtruth.GT, name string) uint64 {
	t.Helper()
	for _, f := range gt.Funcs {
		if f.Name == name {
			return f.Addr
		}
	}
	t.Fatalf("no function %s", name)
	return 0
}

func mixSpec() *synth.ProgSpec {
	return &synth.ProgSpec{
		Name: "idatest",
		Lang: synth.LangC,
		Seed: 31,
		Funcs: []synth.FuncSpec{
			{Name: "main", Calls: []int{1, 2}},
			{Name: "called", Calls: nil},
			{Name: "chained", Calls: []int{3}},
			{Name: "leaf", Static: true},
			{Name: "exported_leafy"},             // unreferenced, leaf body
			{Name: "codecb", AddressTaken: true}, // lea-referenced
			{Name: "datacb", AddressTakenData: true},
		},
	}
}

func TestFindsCallGraph(t *testing.T) {
	bin, gt := build(t, mixSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	rep, err := Identify(bin)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, e := range rep.Entries {
		found[e] = true
	}
	for _, name := range []string{"main", "called", "chained", "leaf"} {
		if !found[addrOf(t, gt, name)] {
			t.Errorf("call-graph function %s not found", name)
		}
	}
	// Code-referenced (lea) function is found via reference analysis.
	if !found[addrOf(t, gt, "codecb")] {
		t.Error("lea-referenced callback missed")
	}
	// Data-table-referenced function: IDA's blind spot at O2.
	if found[addrOf(t, gt, "datacb")] {
		t.Error("data-table callback found — the model should miss indirect-only targets at O2")
	}
	// Exported unreferenced leaf at O2: no prologue, no call in body.
	if found[addrOf(t, gt, "exported_leafy")] {
		t.Error("unreferenced leaf found at O2 — nothing references it and it has no FP prologue")
	}
}

func TestPrologueScanAtO0(t *testing.T) {
	bin, gt := build(t, mixSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O0})
	rep, err := Identify(bin)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, e := range rep.Entries {
		found[e] = true
	}
	// At O0 every function carries the classic frame-pointer prologue,
	// so even unreferenced and data-referenced functions surface.
	for _, f := range gt.Funcs {
		if f.Name == "_start" {
			continue
		}
		if !found[f.Addr] {
			t.Errorf("%s missed at O0 despite push-rbp prologue", f.Name)
		}
	}
	if rep.FromPrologue == 0 {
		t.Error("prologue scan contributed nothing at O0")
	}
}

func Test32BitImmediateRefs(t *testing.T) {
	bin, gt := build(t, mixSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode32, Opt: synth.O2})
	rep, err := Identify(bin)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, e := range rep.Entries {
		found[e] = true
	}
	// On x86 the address-taken callback is materialized with
	// mov reg, imm32 — the immediate scan must catch it.
	if !found[addrOf(t, gt, "codecb")] {
		t.Error("mov-imm referenced callback missed on x86")
	}
}

func TestReportCounters(t *testing.T) {
	bin, _ := build(t, mixSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O0})
	rep, err := Identify(bin)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromTraversal == 0 {
		t.Error("no traversal-found functions")
	}
	if len(rep.Entries) == 0 {
		t.Error("empty entry set")
	}
	for i := 1; i < len(rep.Entries); i++ {
		if rep.Entries[i-1] >= rep.Entries[i] {
			t.Fatal("entries not sorted")
		}
	}
}
