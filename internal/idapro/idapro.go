// Package idapro models the function identification behaviour of a
// classic interactive disassembler (IDA Pro 7.6 in the paper's
// evaluation): recursive descent from the program entry point, direct
// call-target expansion, frame-pointer prologue signatures over the
// unexplored gaps, code-reference analysis for address-taken functions,
// unverified tail-call splitting, and an orphan-code rescue pass.
//
// Deliberately absent — matching the paper's observation — is any use of
// CET end-branch instructions or exception-handling metadata. The model
// therefore reproduces IDA's characteristic failure mode: functions
// reachable only through indirect branches (data-table function pointers,
// exported-but-unreferenced entries in optimized builds) are missed,
// which the paper measures as 96% of IDA's false negatives.
package idapro

import (
	"slices"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/recdesc"
	"github.com/funseeker/funseeker/internal/x86"
)

// Report is the identification result.
type Report struct {
	// Entries is the sorted set of identified function entries.
	Entries []uint64
	// FromTraversal counts entries found by recursive descent.
	FromTraversal int
	// FromPrologue counts entries found by prologue signatures.
	FromPrologue int
	// FromCodeRef counts entries found via code references (lea /
	// mov-immediate of a .text address).
	FromCodeRef int
	// FromOrphanRescue counts entries created from orphan code chunks.
	FromOrphanRescue int
}

// Identify runs the IDA-style algorithm with a private analysis context.
func Identify(bin *elfx.Binary) (*Report, error) {
	return IdentifyWithContext(analysis.NewContext(bin))
}

// IdentifyWithContext runs the IDA-style algorithm using the shared
// per-binary artifacts memoized in actx.
func IdentifyWithContext(actx *analysis.Context) (*Report, error) {
	bin := actx.Binary()
	report := &Report{}
	found := make(map[uint64]bool)

	// IDA parses the ELF exception metadata and attributes landing pads
	// to their parent functions, so catch blocks are not promoted to
	// functions by the orphan rescue. (It still does not use end-branch
	// instructions or FDE starts for identification.)
	pads, err := actx.LandingPads()
	if err != nil {
		pads = map[uint64]bool{}
	}

	// Seed: the program entry point plus code-referenced addresses
	// (IDA's immediate/offset analysis finds lea rdi, [rip+func] and
	// push $func references).
	seeds := []uint64{bin.Entry}
	codeRefs := collectCodeRefs(actx)
	seeds = append(seeds, codeRefs...)

	idx := actx.Index()
	walker := recdesc.NewWalker(bin, idx)
	res := walker.Traverse(seeds)
	for e := range res.Functions {
		found[e] = true
	}
	report.FromTraversal = len(res.Functions)
	crSet := make(map[uint64]bool, len(codeRefs))
	for _, r := range codeRefs {
		crSet[r] = true
		if found[r] {
			report.FromCodeRef++
		}
	}

	// Unverified tail-call splitting: every escaping jump target becomes
	// a function (IDA splits on far jumps without FETCH-style checks).
	escapes := map[uint64]bool{}
	for _, fn := range res.Functions {
		for _, t := range fn.EscapingJumps {
			escapes[t] = true
		}
	}
	for t := range escapes {
		if !found[t] {
			found[t] = true
		}
	}
	// Explore the newly split functions so their bodies count as covered
	// (marked in place on the shared coverage array).
	walker.TraverseInto(setToSlice(escapes), res.Covered)

	// Gap analysis: prologue signatures and orphan-code rescue, walking
	// each gap instruction by instruction so back-to-back unaligned
	// functions are all examined.
	recdesc.WalkGapsIndexed(bin, idx, res.Covered, func(va uint64, chunkStart bool) bool {
		accepted := false
		switch recdesc.ClassifyPrologueIndexed(bin, idx, va) {
		case recdesc.PrologueFramePointer:
			accepted = true
			report.FromPrologue++
		default:
			// Orphan rescue: an unreached chunk that performs a call is
			// promoted to a function (how IDA materializes orphan code).
			// Applied only at chunk starts and only to substantial
			// chunks — small orphan stubs (e.g. most exception landing
			// pads) are left as loose code, though large pads still slip
			// through as spurious functions.
			if chunkStart && !pads[va] && chunkLen(bin, res.Covered, va) >= minRescueChunk &&
				recdesc.ContainsEarlyCallIndexed(bin, idx, va, 8) {
				accepted = true
				report.FromOrphanRescue++
			}
		}
		if !accepted {
			return false
		}
		found[va] = true
		sub := walker.TraverseInto([]uint64{va}, res.Covered)
		for e := range sub.Functions {
			if !found[e] {
				found[e] = true
				report.FromTraversal++
			}
		}
		return true
	})

	report.Entries = setToSlice(found)
	slices.Sort(report.Entries)
	return report, nil
}

// collectCodeRefs finds .text addresses materialized by code: RIP-relative
// lea and mov-immediate forms, read off the shared instruction index.
// Data-section function-pointer tables are invisible to this analysis —
// exactly IDA's blind spot.
func collectCodeRefs(actx *analysis.Context) []uint64 {
	bin := actx.Binary()
	var refs []uint64
	insts := actx.Index().Insts
	for i := range insts {
		inst := &insts[i]
		// lea reg, [rip+disp] referencing .text.
		if inst.OpcodeMap == 1 && inst.Opcode == 0x8D && inst.HasRIPRef && bin.InText(inst.RIPRef) {
			refs = append(refs, inst.RIPRef)
		}
		// mov reg, imm32 whose immediate lands in .text (32-bit idiom).
		if bin.Mode == x86.Mode32 && inst.OpcodeMap == 1 &&
			inst.Opcode >= 0xB8 && inst.Opcode <= 0xBF && inst.HasImm {
			if va := uint64(uint32(inst.Imm)); bin.InText(va) {
				refs = append(refs, va)
			}
		}
	}
	return refs
}

func setToSlice(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	return out
}

// minRescueChunk is the smallest orphan chunk worth promoting to a
// function.
const minRescueChunk = 80

// chunkLen measures the uncovered run starting at va.
func chunkLen(bin *elfx.Binary, covered []bool, va uint64) int {
	off := int(va - bin.TextAddr)
	n := 0
	for off+n < len(covered) && !covered[off+n] {
		n++
	}
	return n
}
