package bticore

import (
	"testing"

	"github.com/funseeker/funseeker/internal/armsynth"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
)

func btiSpec() *synth.ProgSpec {
	return &synth.ProgSpec{
		Name: "btitest",
		Lang: synth.LangC,
		Seed: 77,
		Funcs: []synth.FuncSpec{
			{Name: "main", Calls: []int{1, 2}, HasSwitch: true, SwitchCases: 5},
			{Name: "helper", Calls: []int{3}},
			{Name: "worker", BodySize: 200},
			{Name: "leaf", Static: true},
			{Name: "exported_idle"},
			{Name: "datacb", AddressTakenData: true},
			{Name: "tail_impl", Static: true},
			{Name: "tail_a", TailCalls: []int{6}},
			{Name: "tail_b", TailCalls: []int{6}},
			{Name: "dead_one", Static: true, Dead: true},
		},
	}
}

func compileBTI(t *testing.T, cfg armsynth.Config) (*armsynth.Result, *Report) {
	t.Helper()
	res, err := armsynth.Compile(btiSpec(), cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	report, err := IdentifyBytes(res.Image)
	if err != nil {
		t.Fatalf("IdentifyBytes: %v", err)
	}
	return res, report
}

func scoreBTI(report *Report, gt *groundtruth.GT) (fp, fn int, fnNames []string) {
	truth := gt.Entries()
	found := map[uint64]bool{}
	for _, e := range report.Entries {
		found[e] = true
		if !truth[e] {
			fp++
		}
	}
	for _, f := range gt.Funcs {
		if !found[f.Addr] {
			fn++
			fnNames = append(fnNames, f.Name)
		}
	}
	return fp, fn, fnNames
}

func TestBTIIdentify(t *testing.T) {
	for _, cfg := range []armsynth.Config{
		{Opt: synth.O2},
		{Opt: synth.O0},
		{Opt: synth.O2, PAC: true},
	} {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			res, report := compileBTI(t, cfg)
			fp, _, fnNames := scoreBTI(report, res.GT)
			if fp != 0 {
				t.Errorf("%d false positives", fp)
			}
			// The only acceptable miss is the dead static function.
			for _, name := range fnNames {
				if name != "dead_one" {
					t.Errorf("missed live function %s", name)
				}
			}
			// Switch case labels (BTI j) must not be entries.
			if report.JumpPads == 0 {
				t.Error("no BTI j pads seen despite the switch")
			}
			if report.CallPads == 0 {
				t.Error("no call pads seen")
			}
		})
	}
}

func TestBTIJumpPadsExcluded(t *testing.T) {
	res, report := compileBTI(t, armsynth.Config{Opt: synth.O2})
	jPads := map[uint64]bool{}
	for _, e := range res.GT.Endbrs {
		if e.Role == groundtruth.RoleJumpTarget {
			jPads[e.Addr] = true
		}
	}
	if len(jPads) == 0 {
		t.Fatal("ground truth has no BTI j sites")
	}
	if report.JumpPads != len(jPads) {
		t.Errorf("JumpPads = %d, ground truth has %d", report.JumpPads, len(jPads))
	}
	for _, e := range report.Entries {
		if jPads[e] {
			t.Errorf("BTI j pad %#x identified as a function entry", e)
		}
	}
}

func TestBTITailCallSelection(t *testing.T) {
	res, report := compileBTI(t, armsynth.Config{Opt: synth.O2})
	var tailImpl uint64
	for _, f := range res.GT.Funcs {
		if f.Name == "tail_impl" {
			tailImpl = f.Addr
		}
	}
	foundTail := false
	for _, a := range report.TailCallTargets {
		if a == tailImpl {
			foundTail = true
		}
	}
	if !foundTail {
		t.Error("tail_impl (2 tail callers) not selected as a tail-call target")
	}
}

func TestBTIPACEntries(t *testing.T) {
	// Under PAC, entries start with PACIASP instead of BTI c; both are
	// valid call pads.
	res, report := compileBTI(t, armsynth.Config{Opt: synth.O2, PAC: true})
	truth := res.GT.Entries()
	hits := 0
	for _, e := range report.Entries {
		if truth[e] {
			hits++
		}
	}
	if hits < len(res.GT.Funcs)-1 {
		t.Errorf("PAC build: %d of %d entries found", hits, len(res.GT.Funcs))
	}
}

func TestIdentifyBytesErrors(t *testing.T) {
	if _, err := IdentifyBytes([]byte("junk")); err == nil {
		t.Error("want error for junk input")
	}
}

func TestDeterministicARMBuild(t *testing.T) {
	a, err := armsynth.Compile(btiSpec(), armsynth.Config{Opt: synth.O3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := armsynth.Compile(btiSpec(), armsynth.Config{Opt: synth.O3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Image) != len(b.Image) {
		t.Fatal("nondeterministic image size")
	}
	for i := range a.Image {
		if a.Image[i] != b.Image[i] {
			t.Fatalf("images differ at byte %d", i)
		}
	}
}
