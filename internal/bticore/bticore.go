// Package bticore ports the FunSeeker algorithm to ARMv8.5 BTI-enabled
// AArch64 binaries, realizing the extension the paper's §VI sketches:
//
//	E  = BTI pads that accept indirect calls (BTI c / BTI jc / PACIASP)
//	C  = direct BL targets
//	J  = direct B targets, refined by the same SELECTTAILCALL rules
//
// The FILTERENDBR analog is built into the ISA: `BTI j` pads mark
// indirect-jump-only targets (switch-table case labels) and are excluded
// from E by their own operand — no PLT-name or LSDA analysis is needed.
package bticore

import (
	"bytes"
	"debug/elf"
	"errors"
	"fmt"
	"slices"
	"sort"

	"github.com/funseeker/funseeker/internal/arm64"
)

// Report is the identification result.
type Report struct {
	// Entries is the sorted set of identified function entries.
	Entries []uint64
	// CallPads counts BTI c / jc / PACIASP pads (E).
	CallPads int
	// JumpPads counts BTI j pads excluded from E.
	JumpPads int
	// CallTargets is C, sorted.
	CallTargets []uint64
	// JumpTargets is J, sorted.
	JumpTargets []uint64
	// TailCallTargets is J′, sorted.
	TailCallTargets []uint64
}

// ErrNoText is returned for images without an executable .text section.
var ErrNoText = errors.New("bticore: no .text section")

// IdentifyBytes parses an AArch64 ELF image and identifies function
// entries.
func IdentifyBytes(raw []byte) (*Report, error) {
	f, err := elf.NewFile(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("bticore: %w", err)
	}
	defer f.Close()
	if f.Machine != elf.EM_AARCH64 {
		return nil, fmt.Errorf("bticore: not an AArch64 binary (machine %v)", f.Machine)
	}
	sec := f.Section(".text")
	if sec == nil {
		return nil, ErrNoText
	}
	text, err := sec.Data()
	if err != nil {
		return nil, fmt.Errorf("bticore: read .text: %w", err)
	}
	return Identify(text, sec.Addr), nil
}

// jumpRef is one direct unconditional branch.
type jumpRef struct {
	src, target uint64
}

// Identify runs the BTI algorithm over raw text.
func Identify(text []byte, textAddr uint64) *Report {
	report := &Report{}
	textEnd := textAddr + uint64(len(text))
	inText := func(va uint64) bool { return va >= textAddr && va < textEnd }

	candidates := make(map[uint64]bool)
	callTargets := make(map[uint64]bool)
	var jumps []jumpRef

	arm64.LinearSweep(text, textAddr, func(inst arm64.Inst) bool {
		switch inst.Class {
		case arm64.ClassBTI:
			if inst.BTI.AcceptsCall() {
				report.CallPads++
				candidates[inst.Addr] = true
			} else if inst.BTI.AcceptsJump() {
				report.JumpPads++
			}
		case arm64.ClassPACIASP:
			report.CallPads++
			candidates[inst.Addr] = true
		case arm64.ClassBL:
			if inst.HasTarget && inText(inst.Target) {
				callTargets[inst.Target] = true
			}
		case arm64.ClassB:
			if inst.HasTarget && inText(inst.Target) {
				jumps = append(jumps, jumpRef{src: inst.Addr, target: inst.Target})
			}
		}
		return true
	})
	for t := range callTargets {
		candidates[t] = true
		report.CallTargets = append(report.CallTargets, t)
	}
	slices.Sort(report.CallTargets)

	jumpSet := make(map[uint64]bool, len(jumps))
	for _, j := range jumps {
		jumpSet[j.target] = true
	}
	report.JumpTargets = sortedKeys(jumpSet)

	// SELECTTAILCALL: identical rules to the x86 algorithm — the target
	// must escape the jump's (approximated) function and be referenced
	// from more than one function.
	starts := sortedKeys(candidates)
	funcOf := func(addr uint64) uint64 {
		i := sort.Search(len(starts), func(i int) bool { return starts[i] > addr })
		if i == 0 {
			return 0
		}
		return starts[i-1]
	}
	nextStart := func(addr uint64) uint64 {
		i := sort.Search(len(starts), func(i int) bool { return starts[i] > addr })
		if i == len(starts) {
			return textEnd
		}
		return starts[i]
	}
	type tinfo struct {
		srcs    map[uint64]bool
		escapes bool
	}
	infos := make(map[uint64]*tinfo)
	for _, j := range jumps {
		info := infos[j.target]
		if info == nil {
			info = &tinfo{srcs: make(map[uint64]bool)}
			infos[j.target] = info
		}
		src := funcOf(j.src)
		info.srcs[src] = true
		if j.target < src || j.target >= nextStart(j.src) {
			info.escapes = true
		}
	}
	for target, info := range infos {
		if candidates[target] || !info.escapes || len(info.srcs) < 2 {
			continue
		}
		candidates[target] = true
		report.TailCallTargets = append(report.TailCallTargets, target)
	}
	slices.Sort(report.TailCallTargets)

	report.Entries = sortedKeys(candidates)
	return report
}

func sortedKeys(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}
