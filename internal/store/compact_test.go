package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// buildGarbage fills a store with several generations of the same key
// set so most on-disk bytes are superseded, then closes it. Returns
// the expected newest-per-key map.
func buildGarbage(t *testing.T, dir string, keys, generations int) map[string]string {
	t.Helper()
	st, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := make(map[string]string)
	for gen := 0; gen < generations; gen++ {
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("key-%03d", i)
			v := fmt.Sprintf("gen-%d-value-%03d-%s", gen, i, string(bytes.Repeat([]byte{'x'}, 20+7*i%50)))
			if err := st.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("Put: %v", err)
			}
			want[k] = v
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return want
}

// snapshotDir reads every file in dir into memory.
func snapshotDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	files := make(map[string][]byte)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		files[e.Name()] = b
	}
	return files
}

// writeDir materializes a file snapshot into a fresh directory.
func writeDir(t *testing.T, files map[string][]byte) string {
	t.Helper()
	dir := t.TempDir()
	for name, b := range files {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	return dir
}

// verifyStore opens dir and checks that exactly the expected
// newest-per-key records are live, that no .tmp files survive, and
// that the store still accepts writes.
func verifyStore(t *testing.T, dir string, want map[string]string, label string) {
	t.Helper()
	st, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("%s: Open: %v", label, err)
	}
	defer st.Close()
	got := make(map[string]string)
	if err := st.ReadAll(func(k, v []byte) error {
		got[string(k)] = string(v)
		return nil
	}); err != nil {
		t.Fatalf("%s: ReadAll: %v", label, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d live records, want %d", label, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: key %q = %q, want %q", label, k, got[k], v)
		}
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("%s: leftover tmp files after Open: %v", label, tmps)
	}
	if err := st.Put([]byte("post-crash"), []byte("ok")); err != nil {
		t.Fatalf("%s: Put after recovery: %v", label, err)
	}
	if v, ok, err := st.Get([]byte("post-crash")); err != nil || !ok || string(v) != "ok" {
		t.Fatalf("%s: Get after recovery = %q %v %v", label, v, ok, err)
	}
}

func TestCompactReclaimsGarbage(t *testing.T) {
	dir := t.TempDir()
	want := buildGarbage(t, dir, 12, 4)

	st, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	before := st.Stats()
	if before.Compaction.GarbageBytes <= 0 {
		t.Fatalf("expected garbage before compaction, stats %+v", before.Compaction)
	}

	res, err := st.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if res.ReclaimedBytes <= 0 {
		t.Fatalf("ReclaimedBytes = %d, want > 0 (%+v)", res.ReclaimedBytes, res)
	}
	if res.RecordsKept != len(want) {
		t.Fatalf("RecordsKept = %d, want %d", res.RecordsKept, len(want))
	}
	after := st.Stats()
	if after.Compaction.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", after.Compaction.Compactions)
	}
	if after.Compaction.ReclaimedBytes != res.ReclaimedBytes {
		t.Fatalf("stats reclaimed %d != result %d", after.Compaction.ReclaimedBytes, res.ReclaimedBytes)
	}
	if after.SegmentBytes >= before.SegmentBytes {
		t.Fatalf("SegmentBytes %d not reduced from %d", after.SegmentBytes, before.SegmentBytes)
	}
	// The cold tier is now garbage-free: remaining garbage can only be
	// in the (empty) active segment.
	if after.Compaction.GarbageBytes != 0 {
		t.Fatalf("GarbageBytes = %d after full compaction, want 0", after.Compaction.GarbageBytes)
	}
	for k, v := range want {
		got, ok, err := st.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q %v %v, want %q", k, got, ok, err, v)
		}
	}
	// And the store survives a reopen with the same contents.
	st.Close()
	verifyStore(t, dir, want, "post-compaction reopen")
}

func TestCompactEmptyAndIdempotent(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	if res, err := st.Compact(); err != nil || res.SegmentsCompacted != 0 {
		t.Fatalf("empty Compact = %+v, %v", res, err)
	}
	if err := st.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := st.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Second compaction over an already-clean store keeps everything.
	res, err := st.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if res.ReclaimedBytes != 0 || res.RecordsKept != 1 {
		t.Fatalf("idempotent Compact = %+v", res)
	}
	if v, ok, _ := st.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("Get = %q %v", v, ok)
	}
}

// TestCompactCrashBattery simulates a crash at every byte of the
// compaction swap sequence: every truncation of the tmp file before
// the rename, the post-rename state, and every prefix of the old
// segment deletions. Reopening at each point must recover the exact
// newest-per-key record set.
func TestCompactCrashBattery(t *testing.T) {
	seedDir := t.TempDir()
	want := buildGarbage(t, seedDir, 12, 3)
	origFiles := snapshotDir(t, seedDir)

	// Run a real compaction on a copy to learn the compacted segment's
	// exact bytes and name.
	workDir := writeDir(t, origFiles)
	st, err := Open(workDir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := st.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st.Close()
	afterFiles := snapshotDir(t, workDir)

	maxID := 0
	for name := range origFiles {
		var id int
		if _, err := fmt.Sscanf(name, "seg-%d.log", &id); err == nil && id > maxID {
			maxID = id
		}
	}
	compactedName := segmentName(maxID)
	compactedBytes, ok := afterFiles[compactedName]
	if !ok {
		t.Fatalf("compacted segment %s missing from %v", compactedName, afterFiles)
	}
	if len(compactedBytes) >= len(origFiles[compactedName])+512 {
		// Sanity: compaction should not grow the data dramatically; the
		// real check is the reclaim test above.
		t.Logf("warning: compacted segment unexpectedly large")
	}

	// Stage 1: crash while writing the tmp, at every byte.
	for cut := 0; cut <= len(compactedBytes); cut++ {
		files := make(map[string][]byte, len(origFiles)+1)
		for name, b := range origFiles {
			files[name] = b
		}
		files[compactedName+".tmp"] = compactedBytes[:cut]
		dir := writeDir(t, files)
		verifyStore(t, dir, want, fmt.Sprintf("tmp cut %d/%d", cut, len(compactedBytes)))
	}

	// Stage 2: crash after the rename, before deleting each of the old
	// segments — every prefix of the delete sequence.
	var deletable []string
	for name := range origFiles {
		if name != compactedName {
			deletable = append(deletable, name)
		}
	}
	for n := 0; n <= len(deletable); n++ {
		files := make(map[string][]byte)
		for name, b := range afterFiles {
			files[name] = b // compacted segment + post-rotation active
		}
		for _, name := range deletable[n:] {
			files[name] = origFiles[name] // not yet deleted
		}
		dir := writeDir(t, files)
		verifyStore(t, dir, want, fmt.Sprintf("deleted %d/%d old segments", n, len(deletable)))
	}
}

// TestCompactConcurrent hammers Put/Get while compactions run, then
// checks every newest value both live and after a reopen. Exercises
// the Get retry on the closed-handle race under -race.
func TestCompactConcurrent(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	const writers = 4
	const rounds = 200
	var wg sync.WaitGroup
	errc := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", w, i%17))
				v := []byte(fmt.Sprintf("w%d-v%d-%d", w, i%17, i))
				if err := st.Put(k, v); err != nil {
					errc <- err
					return
				}
				if _, _, err := st.Get(k); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := st.Compact(); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent error: %v", err)
	}

	want := make(map[string]string)
	for w := 0; w < writers; w++ {
		for i := rounds - 17; i < rounds; i++ {
			k := fmt.Sprintf("w%d-k%d", w, i%17)
			want[k] = fmt.Sprintf("w%d-v%d-%d", w, i%17, i)
		}
	}
	for k, v := range want {
		got, ok, err := st.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q %v %v, want %q", k, got, ok, err, v)
		}
	}
	st.Close()
	verifyStore(t, dir, want, "reopen after concurrent compactions")
}

// TestBackgroundCompactor checks that the goroutine started by
// CompactEvery fires on its own once the garbage ratio passes the
// threshold, and that Close tears it down cleanly.
func TestBackgroundCompactor(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{
		SegmentBytes:        512,
		CompactEvery:        5 * time.Millisecond,
		CompactGarbageRatio: 0.3,
		CompactMinBytes:     1,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()

	want := make(map[string]string)
	for gen := 0; gen < 5; gen++ {
		for i := 0; i < 8; i++ {
			k := fmt.Sprintf("key-%d", i)
			v := fmt.Sprintf("gen-%d-%d-%s", gen, i, string(bytes.Repeat([]byte{'y'}, 40)))
			if err := st.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("Put: %v", err)
			}
			want[k] = v
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		stats := st.Stats()
		if stats.Compaction.Compactions >= 1 && stats.Compaction.ReclaimedBytes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compactor never fired: %+v", stats.Compaction)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for k, v := range want {
		got, ok, err := st.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q %v %v, want %q", k, got, ok, err, v)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Close(); err != nil { // double Close stays safe
		t.Fatalf("second Close: %v", err)
	}
}

// TestKeysSnapshot pins the Keys contract the replication repair path
// relies on: every live key, no duplicates, safe copies.
func TestKeysSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	want := map[string]bool{}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("key-%d", i)
		if err := st.Put([]byte(k), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		want[k] = true
	}
	st.Put([]byte("key-3"), []byte("v2")) // overwrite must not duplicate
	keys := st.Keys()
	if len(keys) != len(want) {
		t.Fatalf("Keys() returned %d keys, want %d", len(keys), len(want))
	}
	for _, k := range keys {
		if !want[string(k)] {
			t.Fatalf("unexpected key %q", k)
		}
	}
}
