package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// CompactResult summarizes one completed compaction.
type CompactResult struct {
	// SegmentsCompacted is how many cold segments were merged.
	SegmentsCompacted int `json:"segments_compacted"`
	// RecordsKept is the number of live records copied into the
	// compacted segment.
	RecordsKept int `json:"records_kept"`
	// BytesBefore / BytesAfter are the cold segments' on-disk size
	// before and after the rewrite.
	BytesBefore int64 `json:"bytes_before"`
	BytesAfter  int64 `json:"bytes_after"`
	// ReclaimedBytes is BytesBefore - BytesAfter.
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
}

// Compact rewrites every cold (non-active) segment into a single new
// segment holding only the newest record per key, then deletes the
// originals. The active segment is rotated first so all data is cold
// and the append path never contends with the rewrite.
//
// Crash safety is by ordering, not by locking — the same argument the
// torn-tail recovery battery pins:
//
//  1. Live records are copied into seg-<K>.log.tmp, where K is the
//     highest cold segment id. A crash here leaves the originals
//     untouched; Open ignores and removes *.tmp.
//  2. The tmp is fsynced, then atomically renamed over seg-<K>.log,
//     and the directory is fsynced. A crash after the rename replays
//     the surviving older segments first and the compacted segment
//     last (higher id), so every stale duplicate is superseded by the
//     compacted newest-per-key copy — replay order is the correctness
//     argument, and it needs K to be the *maximum* cold id.
//  3. Older cold segment files are deleted. Each delete only removes
//     records already superseded by the compacted segment, so any
//     crash mid-delete leaves a replayable store.
//
// Concurrent Puts land in the rotated active segment (a strictly
// higher id) and are never touched; a Put that supersedes a key mid
// compaction simply leaves that key's compacted copy as garbage for
// the next cycle. Concurrent Gets that raced the in-memory swap retry
// on the closed old handle (see Get).
func (s *Store) Compact() (CompactResult, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	// Phase 1 (write lock): rotate the active segment if it holds data,
	// then snapshot the cold segments and the live records inside them.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return CompactResult{}, errors.New("store: closed")
	}
	active := s.segs[len(s.segs)-1]
	if active.size > 0 {
		next, err := s.createSegment(active.id + 1)
		if err != nil {
			s.mu.Unlock()
			return CompactResult{}, err
		}
		s.segs = append(s.segs, next)
	}
	cold := make([]*segment, len(s.segs)-1)
	copy(cold, s.segs[:len(s.segs)-1])
	if len(cold) == 0 {
		s.mu.Unlock()
		return CompactResult{}, nil
	}
	coldSet := make(map[*segment]bool, len(cold))
	var bytesBefore int64
	for _, seg := range cold {
		coldSet[seg] = true
		bytesBefore += seg.size
	}
	type liveEntry struct {
		key string
		loc location
	}
	live := make([]liveEntry, 0, len(s.index))
	for k, loc := range s.index {
		if coldSet[loc.seg] {
			live = append(live, liveEntry{key: k, loc: loc})
		}
	}
	newID := cold[len(cold)-1].id
	s.mu.Unlock()

	// Sequential read order: segment by segment, ascending offset.
	sort.Slice(live, func(i, j int) bool {
		if live[i].loc.seg.id != live[j].loc.seg.id {
			return live[i].loc.seg.id < live[j].loc.seg.id
		}
		return live[i].loc.valOff < live[j].loc.valOff
	})

	// Phase 2 (no lock): copy each live record into the tmp file. The
	// cold segments' handles stay open — nothing closes them while
	// compactMu is held except Close, which turns the reads below into
	// errors and aborts the compaction before any visible change.
	finalPath := filepath.Join(s.dir, segmentName(newID))
	tmpPath := finalPath + ".tmp"
	os.Remove(tmpPath) // a dead compaction's leftover
	f, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return CompactResult{}, err
	}
	cleanup := func() {
		f.Close()
		os.Remove(tmpPath)
	}
	newLocs := make([]int64, len(live)) // value offset of live[i] in the new segment
	var newSize int64
	for i, ent := range live {
		val := make([]byte, ent.loc.valLen)
		if _, err := ent.loc.seg.f.ReadAt(val, ent.loc.valOff); err != nil {
			cleanup()
			return CompactResult{}, fmt.Errorf("store: compact read %s@%d: %w", ent.loc.seg.path, ent.loc.valOff, err)
		}
		rec, err := encodeRecord([]byte(ent.key), val)
		if err != nil {
			cleanup()
			return CompactResult{}, err
		}
		if _, err := f.WriteAt(rec, newSize); err != nil {
			cleanup()
			return CompactResult{}, err
		}
		newLocs[i] = newSize + headerSize + int64(len(ent.key))
		newSize += int64(len(rec))
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return CompactResult{}, err
	}

	// Phase 3: atomic rename, then swap the in-memory view. The old
	// handle of seg-<K>.log keeps reading the old inode after the
	// rename (POSIX), so readers holding pre-swap locations are safe
	// until the handles are closed below — and Get retries that race.
	if err := os.Rename(tmpPath, finalPath); err != nil {
		cleanup()
		return CompactResult{}, err
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	newSeg := &segment{id: newID, path: finalPath, f: f, size: newSize}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		f.Close()
		return CompactResult{}, errors.New("store: closed")
	}
	for i, ent := range live {
		// Repoint only entries still exactly where the snapshot saw
		// them; a key superseded mid-compaction keeps its newer
		// location and its compacted copy becomes garbage.
		if cur, ok := s.index[ent.key]; ok && cur == ent.loc {
			s.index[ent.key] = location{seg: newSeg, valOff: newLocs[i], valLen: ent.loc.valLen}
		}
	}
	kept := s.segs[len(cold):]
	s.segs = append([]*segment{newSeg}, kept...)
	s.compactions++
	s.reclaimedBytes += bytesBefore - newSize
	s.mu.Unlock()

	// Delete the superseded files. The compacted segment reused
	// cold[last]'s path via the rename, so only its stale handle is
	// closed; every older segment loses both handle and file.
	for i, seg := range cold {
		seg.f.Close()
		if i < len(cold)-1 {
			os.Remove(seg.path)
		}
	}

	return CompactResult{
		SegmentsCompacted: len(cold),
		RecordsKept:       len(live),
		BytesBefore:       bytesBefore,
		BytesAfter:        newSize,
		ReclaimedBytes:    bytesBefore - newSize,
	}, nil
}

// maybeCompact runs one background-compactor check: compact when the
// store is big enough and garbage-heavy enough.
func (s *Store) maybeCompact() {
	st := s.Stats()
	if st.SegmentBytes < s.opts.CompactMinBytes {
		return
	}
	if st.Compaction.GarbageRatio < s.opts.CompactGarbageRatio {
		return
	}
	s.Compact() // errors (e.g. racing Close) are dropped; next tick retries
}

// compactLoop is the background compactor goroutine started by Open
// when Options.CompactEvery > 0. The stop channel is passed in because
// Close nils the struct field to make double-Close safe.
func (s *Store) compactLoop(stop <-chan struct{}) {
	defer close(s.compactorDone)
	t := time.NewTicker(s.opts.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.maybeCompact()
		case <-stop:
			return
		}
	}
}
