// Package store is a dependency-free persistent content-addressed
// result store: the durability tier under the engine's in-memory LRU,
// so a warm corpus survives a process restart and a replica can be
// killed mid-corpus without losing any previously computed result.
//
// The design is a minimal append-only log, chosen over a B-tree for
// crash-safety by construction:
//
//   - Writes only ever append to the active segment file, so a crash
//     (SIGKILL, power cut mid-write) can corrupt at most the final,
//     torn record — never an earlier one.
//   - Every record carries a CRC-32 over its key and value; startup
//     recovery scans each segment forward, stops at the first record
//     that fails to frame or checksum, and truncates the file there.
//     Everything before the torn tail is intact by the append-only
//     argument.
//   - The key → offset index is rebuilt from the segments on Open, with
//     later records superseding earlier ones for the same key, so a
//     re-put (a re-analysis after an options change upstream would use
//     a different key; same-key re-puts are idempotent overwrites) is
//     just another append.
//
// Compaction: superseded records are dead weight; Compact rewrites the
// cold (non-active) segments keeping only the newest record per key,
// with the same crash-safety contract as the log itself (write a new
// segment, fsync, atomically rename, then delete the old files — see
// compact.go for the replay-order argument). A background compactor
// goroutine (Options.CompactEvery) triggers it automatically once the
// garbage ratio passes Options.CompactGarbageRatio.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	// recordMagic starts every record; a scan landing on anything else
	// is in a torn tail.
	recordMagic = 0x46535231 // "FSR1"
	// headerSize is the fixed record preamble: magic, CRC-32(key‖val),
	// key length, value length.
	headerSize = 4 + 4 + 2 + 4

	// MaxKeyLen and MaxValueLen bound a single record. The engine's
	// keys are 34 bytes (SHA-256 + option bits + arch); values are
	// encoded reports, well under a megabyte. The value bound mostly
	// guards recovery: a corrupt length field cannot make the scanner
	// attempt a multi-gigabyte read.
	MaxKeyLen   = 256
	MaxValueLen = 1 << 28

	// DefaultSegmentBytes is the active-segment rotation threshold when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 64 << 20

	// DefaultCompactGarbageRatio is the store-wide garbage fraction
	// (superseded bytes / on-disk bytes) past which the background
	// compactor rewrites cold segments, when Options.CompactGarbageRatio
	// is zero.
	DefaultCompactGarbageRatio = 0.5

	// DefaultCompactMinBytes is the on-disk floor below which the
	// background compactor never runs (rewriting a few kilobytes is not
	// worth the churn), when Options.CompactMinBytes is zero.
	DefaultCompactMinBytes = 1 << 20
)

// ErrTooLarge reports a key or value beyond the record bounds.
var ErrTooLarge = errors.New("store: key or value exceeds record bounds")

// Options tunes a Store.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size. Zero selects DefaultSegmentBytes.
	SegmentBytes int64
	// Sync fsyncs after every Put. Off by default: the store's job is
	// surviving process death (kill -9, crash), which buffered writes to
	// the OS already guarantee; full power-loss durability costs an
	// fsync per record and is opt-in.
	Sync bool

	// CompactEvery runs a background compactor goroutine that checks the
	// garbage ratio at this interval and rewrites cold segments when it
	// passes CompactGarbageRatio. Zero disables background compaction
	// (explicit Compact calls always work).
	CompactEvery time.Duration
	// CompactGarbageRatio is the garbage fraction (superseded bytes over
	// total on-disk bytes) that triggers a background compaction. Zero
	// selects DefaultCompactGarbageRatio; must be within (0, 1].
	CompactGarbageRatio float64
	// CompactMinBytes is the minimum on-disk size before the background
	// compactor considers running. Zero selects DefaultCompactMinBytes.
	CompactMinBytes int64
}

// Store is an append-only key-value store over segment files in one
// directory. It is safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu     sync.RWMutex
	segs   []*segment          // ascending ID; the last one is active
	index  map[string]location // key → newest record location
	closed bool

	liveBytes    int64 // value bytes reachable through the index
	liveRecBytes int64 // full record bytes (header+key+value) reachable through the index
	replaced     uint64
	puts         uint64

	// Compaction state. compactMu serializes compactions (background and
	// explicit) so at most one rewrite is in flight; the counters are
	// cumulative over the store's open lifetime.
	compactMu      sync.Mutex
	compactions    uint64
	reclaimedBytes int64
	stopCompactor  chan struct{}
	compactorDone  chan struct{}

	// Recovery facts from Open, for observability.
	recoveredRecords  int
	truncatedSegments int
	truncatedBytes    int64
}

// location addresses one live value inside a segment.
type location struct {
	seg    *segment
	valOff int64
	valLen uint32
}

// segment is one log file: an open handle plus its current size.
type segment struct {
	id   int
	path string
	f    *os.File
	size int64
}

func segmentName(id int) string { return fmt.Sprintf("seg-%06d.log", id) }

// Open opens (or creates) the store rooted at dir, replaying every
// segment to rebuild the index and truncating any torn tail left by a
// crash.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.CompactGarbageRatio <= 0 || opts.CompactGarbageRatio > 1 {
		opts.CompactGarbageRatio = DefaultCompactGarbageRatio
	}
	if opts.CompactMinBytes <= 0 {
		opts.CompactMinBytes = DefaultCompactMinBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A leftover .tmp is a compaction that died before its atomic
	// rename; the original segments are still intact, so the tmp is
	// garbage by construction and must not survive (a later compaction
	// would otherwise O_EXCL-collide or rename stale data into place).
	if tmps, err := filepath.Glob(filepath.Join(dir, "seg-*.log.tmp")); err == nil {
		for _, tmp := range tmps {
			os.Remove(tmp)
		}
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)

	s := &Store{dir: dir, opts: opts, index: make(map[string]location)}
	for _, name := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.log", &id); err != nil {
			continue // foreign file; leave it alone
		}
		seg, err := s.openSegment(name, id)
		if err != nil {
			s.closeLocked()
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	if len(s.segs) == 0 {
		seg, err := s.createSegment(1)
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	if opts.CompactEvery > 0 {
		s.stopCompactor = make(chan struct{})
		s.compactorDone = make(chan struct{})
		go s.compactLoop(s.stopCompactor)
	}
	return s, nil
}

// createSegment makes a fresh, empty active segment.
func (s *Store) createSegment(id int) (*segment, error) {
	path := filepath.Join(s.dir, segmentName(id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return &segment{id: id, path: path, f: f, size: 0}, nil
}

// openSegment opens an existing segment, replays its records into the
// index, and truncates the file at the first torn or corrupt record.
func (s *Store) openSegment(path string, id int) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	seg := &segment{id: id, path: path, f: f}

	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fileSize := info.Size()

	var off int64
	var hdr [headerSize]byte
	for off < fileSize {
		if fileSize-off < headerSize {
			break // torn header
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			break
		}
		magic := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		keyLen := int64(binary.LittleEndian.Uint16(hdr[8:10]))
		valLen := int64(binary.LittleEndian.Uint32(hdr[10:14]))
		if magic != recordMagic || keyLen == 0 || keyLen > MaxKeyLen || valLen > MaxValueLen {
			break // torn or corrupt framing
		}
		if fileSize-off-headerSize < keyLen+valLen {
			break // torn body
		}
		body := make([]byte, keyLen+valLen)
		if _, err := f.ReadAt(body, off+headerSize); err != nil {
			break
		}
		if crc32.ChecksumIEEE(body) != sum {
			break // corrupt body
		}
		key := string(body[:keyLen])
		loc := location{seg: seg, valOff: off + headerSize + keyLen, valLen: uint32(valLen)}
		if old, ok := s.index[key]; ok {
			s.liveBytes -= int64(old.valLen)
			s.liveRecBytes -= headerSize + keyLen + int64(old.valLen)
			s.replaced++
		}
		s.index[key] = loc
		s.liveBytes += valLen
		s.liveRecBytes += headerSize + keyLen + valLen
		s.recoveredRecords++
		off += headerSize + keyLen + valLen
	}
	if off < fileSize {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
		s.truncatedSegments++
		s.truncatedBytes += fileSize - off
	}
	seg.size = off
	return seg, nil
}

// encodeRecord frames one key/value pair in the on-disk record format.
func encodeRecord(key, val []byte) ([]byte, error) {
	if len(key) == 0 || len(key) > MaxKeyLen || len(val) > MaxValueLen {
		return nil, ErrTooLarge
	}
	buf := make([]byte, headerSize+len(key)+len(val))
	body := buf[headerSize:]
	copy(body, key)
	copy(body[len(key):], val)
	binary.LittleEndian.PutUint32(buf[0:4], recordMagic)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint16(buf[8:10], uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[10:14], uint32(len(val)))
	return buf, nil
}

// errBadRecord is parseRecord's rejection; recovery treats it (and a
// short buffer) as the torn tail.
var errBadRecord = errors.New("store: bad record")

// parseRecord decodes one record from the front of b, returning the
// key, value, and total record length. It is the exact inverse of
// encodeRecord and the unit the recovery scan trusts.
func parseRecord(b []byte) (key, val []byte, n int, err error) {
	if len(b) < headerSize {
		return nil, nil, 0, errBadRecord
	}
	if binary.LittleEndian.Uint32(b[0:4]) != recordMagic {
		return nil, nil, 0, errBadRecord
	}
	sum := binary.LittleEndian.Uint32(b[4:8])
	keyLen := int(binary.LittleEndian.Uint16(b[8:10]))
	valLen := int(binary.LittleEndian.Uint32(b[10:14]))
	if keyLen == 0 || keyLen > MaxKeyLen || valLen > MaxValueLen {
		return nil, nil, 0, errBadRecord
	}
	n = headerSize + keyLen + valLen
	if len(b) < n {
		return nil, nil, 0, errBadRecord
	}
	body := b[headerSize:n]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, nil, 0, errBadRecord
	}
	return body[:keyLen], body[keyLen:], n, nil
}

// Put appends one record and points the index at it. The write is a
// single Write syscall, so a concurrent reader never observes a half
// record through the index (the index is updated only after the append
// succeeds).
func (s *Store) Put(key, val []byte) error {
	rec, err := encodeRecord(key, val)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	active := s.segs[len(s.segs)-1]
	if active.size > 0 && active.size+int64(len(rec)) > s.opts.SegmentBytes {
		next, err := s.createSegment(active.id + 1)
		if err != nil {
			return err
		}
		s.segs = append(s.segs, next)
		active = next
	}
	if _, err := active.f.WriteAt(rec, active.size); err != nil {
		return err
	}
	if s.opts.Sync {
		if err := active.f.Sync(); err != nil {
			return err
		}
	}
	loc := location{seg: active, valOff: active.size + headerSize + int64(len(key)), valLen: uint32(len(val))}
	active.size += int64(len(rec))
	if old, ok := s.index[string(key)]; ok {
		s.liveBytes -= int64(old.valLen)
		s.liveRecBytes -= int64(headerSize + len(key)) + int64(old.valLen)
		s.replaced++
	}
	s.index[string(key)] = loc
	s.liveBytes += int64(len(val))
	s.liveRecBytes += int64(len(rec))
	s.puts++
	return nil
}

// Get returns the newest value stored under key. The read happens via
// ReadAt outside the index lock, so concurrent Gets never serialize on
// each other's disk reads. A reader that snapshots a location just
// before a compaction swaps the index can find its segment handle
// closed by the time it reads; the index already points at the live
// copy, so that exact race is retried rather than surfaced.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	for attempt := 0; ; attempt++ {
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			return nil, false, errors.New("store: closed")
		}
		loc, ok := s.index[string(key)]
		s.mu.RUnlock()
		if !ok {
			return nil, false, nil
		}
		val := make([]byte, loc.valLen)
		if _, err := loc.seg.f.ReadAt(val, loc.valOff); err != nil {
			if errors.Is(err, os.ErrClosed) && attempt < 8 {
				continue
			}
			return nil, false, fmt.Errorf("store: reading %s@%d: %w", loc.seg.path, loc.valOff, err)
		}
		return val, true, nil
	}
}

// Keys returns a snapshot of every live key, in unspecified order. The
// router's re-replication path diffs these sets across replicas.
func (s *Store) Keys() [][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([][]byte, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, []byte(k))
	}
	return keys
}

// Has reports whether key is present without reading its value.
func (s *Store) Has(key []byte) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[string(key)]
	return ok
}

// Len returns the number of live (newest-per-key) records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	// Dir is the store root.
	Dir string `json:"dir"`
	// Records is the live (newest-per-key) record count.
	Records int `json:"records"`
	// Segments is the number of segment files.
	Segments int `json:"segments"`
	// LiveBytes is the total size of live values.
	LiveBytes int64 `json:"live_bytes"`
	// SegmentBytes is the on-disk size of all segments, including
	// superseded records.
	SegmentBytes int64 `json:"segment_bytes"`
	// Puts counts appends since Open.
	Puts uint64 `json:"puts"`
	// Replaced counts records superseded by a newer same-key record
	// (over the store's whole life, including replays seen at Open).
	Replaced uint64 `json:"replaced"`
	// RecoveredRecords / TruncatedSegments / TruncatedBytes describe
	// the last Open: how many records replayed cleanly, and how much
	// torn tail was dropped.
	RecoveredRecords  int   `json:"recovered_records"`
	TruncatedSegments int   `json:"truncated_segments"`
	TruncatedBytes    int64 `json:"truncated_bytes"`

	// Compaction describes the garbage state and the compactor's work
	// so far.
	Compaction CompactionStats `json:"compaction"`
}

// CompactionStats is the compaction block of Stats.
type CompactionStats struct {
	// Compactions counts completed compactions since Open.
	Compactions uint64 `json:"compactions"`
	// ReclaimedBytes is the cumulative on-disk size freed by
	// compactions since Open.
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
	// LiveRecordBytes is the full on-disk size (header + key + value)
	// of the newest-per-key records.
	LiveRecordBytes int64 `json:"live_record_bytes"`
	// GarbageBytes is the on-disk size occupied by superseded records:
	// total segment bytes minus live record bytes.
	GarbageBytes int64 `json:"garbage_bytes"`
	// GarbageRatio is GarbageBytes over total segment bytes (0 when the
	// store is empty). The background compactor fires when this passes
	// Options.CompactGarbageRatio.
	GarbageRatio float64 `json:"garbage_ratio"`
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Dir:               s.dir,
		Records:           len(s.index),
		Segments:          len(s.segs),
		LiveBytes:         s.liveBytes,
		Puts:              s.puts,
		Replaced:          s.replaced,
		RecoveredRecords:  s.recoveredRecords,
		TruncatedSegments: s.truncatedSegments,
		TruncatedBytes:    s.truncatedBytes,
	}
	for _, seg := range s.segs {
		st.SegmentBytes += seg.size
	}
	st.Compaction = CompactionStats{
		Compactions:     s.compactions,
		ReclaimedBytes:  s.reclaimedBytes,
		LiveRecordBytes: s.liveRecBytes,
		GarbageBytes:    st.SegmentBytes - s.liveRecBytes,
	}
	if st.SegmentBytes > 0 {
		st.Compaction.GarbageRatio = float64(st.Compaction.GarbageBytes) / float64(st.SegmentBytes)
	}
	return st
}

// Close stops the background compactor and releases the segment
// handles. The store is unusable afterwards.
func (s *Store) Close() error {
	if s.stopCompactor != nil {
		s.mu.Lock()
		stop := s.stopCompactor
		s.stopCompactor = nil
		s.mu.Unlock()
		if stop != nil {
			close(stop)
			<-s.compactorDone
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked()
}

func (s *Store) closeLocked() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.segs[len(s.segs)-1].f.Sync()
}

// ReadAll streams every live record to fn in unspecified order; fn
// returning an error stops the walk. Offline compaction is built on
// this: open, ReadAll into a fresh store, swap directories.
func (s *Store) ReadAll(fn func(key, val []byte) error) error {
	s.mu.RLock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	for _, k := range keys {
		val, ok, err := s.Get([]byte(k))
		if err != nil {
			return err
		}
		if !ok {
			continue // superseded between snapshot and read; impossible today (no deletes) but harmless
		}
		if err := fn([]byte(k), val); err != nil {
			return err
		}
	}
	return nil
}
