package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

// fill writes n deterministic records and returns their keys/values.
func fill(t *testing.T, s *Store, n int) (keys, vals [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		val := make([]byte, 16+rng.Intn(200))
		rng.Read(val)
		if err := s.Put(key, val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		keys, vals = append(keys, key), append(vals, val)
	}
	return keys, vals
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := fill(t, s, 20)

	for i := range keys {
		got, ok, err := s.Get(keys[i])
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(got, vals[i]) {
			t.Fatalf("get %d: value mismatch", i)
		}
	}
	if _, ok, _ := s.Get([]byte("absent")); ok {
		t.Fatal("absent key found")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything survives, recovery reports a clean replay.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := range keys {
		got, ok, err := s2.Get(keys[i])
		if err != nil || !ok || !bytes.Equal(got, vals[i]) {
			t.Fatalf("reopened get %d: ok=%v err=%v", i, ok, err)
		}
	}
	st := s2.Stats()
	if st.Records != 20 || st.RecoveredRecords != 20 || st.TruncatedBytes != 0 {
		t.Fatalf("stats after clean reopen = %+v", st)
	}
}

func TestPutReplacesAndAccounts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := []byte("k")
	if err := s.Put(key, bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, bytes.Repeat([]byte{2}, 10)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || len(got) != 10 || got[0] != 2 {
		t.Fatalf("get after replace: %v %v %v", got, ok, err)
	}
	st := s.Stats()
	if st.Records != 1 || st.Replaced != 1 || st.LiveBytes != 10 {
		t.Fatalf("stats = %+v, want 1 record / 1 replaced / 10 live bytes", st)
	}
	if st.SegmentBytes <= st.LiveBytes {
		t.Fatalf("segment bytes %d should include the superseded record", st.SegmentBytes)
	}
}

// TestCrashRecoveryTruncateEveryByte is the torn-tail battery: write N
// records, then simulate a crash by truncating the segment at every
// byte offset inside the final record. Whatever the cut point, reopen
// must (a) keep every prior record intact, (b) drop the torn tail, and
// (c) leave the store appendable.
func TestCrashRecoveryTruncateEveryByte(t *testing.T) {
	const n = 5
	master := t.TempDir()
	s, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := fill(t, s, n-1)
	segPath := filepath.Join(master, segmentName(1))
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	cleanSize := info.Size() // offset where the final record begins
	lastKey, lastVal := []byte("key-last"), bytes.Repeat([]byte{0xAB}, 64)
	if err := s.Put(lastKey, lastVal); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) <= cleanSize {
		t.Fatalf("final record added no bytes: %d <= %d", len(full), cleanSize)
	}

	for cut := cleanSize; cut < int64(len(full)); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segmentName(1)), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			rs, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer rs.Close()

			for i := range keys {
				got, ok, err := rs.Get(keys[i])
				if err != nil || !ok {
					t.Fatalf("record %d lost at cut %d: ok=%v err=%v", i, cut, ok, err)
				}
				if !bytes.Equal(got, vals[i]) {
					t.Fatalf("record %d corrupted at cut %d", i, cut)
				}
			}
			if _, ok, _ := rs.Get(lastKey); ok {
				t.Fatalf("torn final record survived a cut at %d", cut)
			}
			st := rs.Stats()
			if st.RecoveredRecords != n-1 {
				t.Fatalf("recovered %d records, want %d", st.RecoveredRecords, n-1)
			}
			if cut > cleanSize && (st.TruncatedSegments != 1 || st.TruncatedBytes != cut-cleanSize) {
				t.Fatalf("truncation stats = %d segs / %d bytes, want 1 / %d",
					st.TruncatedSegments, st.TruncatedBytes, cut-cleanSize)
			}

			// The recovered store accepts new writes and a re-put of the
			// torn key, and a second reopen replays them.
			if err := rs.Put(lastKey, lastVal); err != nil {
				t.Fatalf("re-put after recovery: %v", err)
			}
			got, ok, err := rs.Get(lastKey)
			if err != nil || !ok || !bytes.Equal(got, lastVal) {
				t.Fatalf("re-put read-back failed: ok=%v err=%v", ok, err)
			}
		})
	}
}

// TestCrashRecoveryCorruptByte flips each byte of the final record in
// place (same length, bad content): the CRC must catch it and recovery
// must truncate exactly the corrupt tail.
func TestCrashRecoveryCorruptByte(t *testing.T) {
	master := t.TempDir()
	s, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := fill(t, s, 3)
	segPath := filepath.Join(master, segmentName(1))
	info, _ := os.Stat(segPath)
	cleanSize := info.Size()
	if err := s.Put([]byte("victim"), bytes.Repeat([]byte{0xCD}, 32)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	// A handful of offsets across header and body, not all (cheap test).
	for _, delta := range []int64{0, 3, 4, 9, 13, 14, 20, int64(len(full)) - cleanSize - 1} {
		off := cleanSize + delta
		t.Run(fmt.Sprintf("flip=%d", delta), func(t *testing.T) {
			dir := t.TempDir()
			mut := append([]byte(nil), full...)
			mut[off] ^= 0xFF
			if err := os.WriteFile(filepath.Join(dir, segmentName(1)), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			rs, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer rs.Close()
			for i := range keys {
				got, ok, err := rs.Get(keys[i])
				if err != nil || !ok || !bytes.Equal(got, vals[i]) {
					t.Fatalf("record %d lost after flip at +%d", i, delta)
				}
			}
			if _, ok, _ := rs.Get([]byte("victim")); ok {
				t.Fatalf("corrupt record served after flip at +%d", delta)
			}
			if st := rs.Stats(); st.TruncatedBytes == 0 {
				t.Fatal("no truncation reported for a corrupt tail")
			}
		})
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record larger than ~100B rotates.
	s, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := fill(t, s, 12)
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("segments = %d, want rotation under a 256-byte cap", st.Segments)
	}
	s.Close()

	s2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := range keys {
		got, ok, err := s2.Get(keys[i])
		if err != nil || !ok || !bytes.Equal(got, vals[i]) {
			t.Fatalf("multi-segment reopen lost record %d", i)
		}
	}
	// A same-key put in a later segment supersedes the earlier one
	// across a reopen.
	if err := s2.Put(keys[0], []byte("newest")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	got, ok, err := s3.Get(keys[0])
	if err != nil || !ok || string(got) != "newest" {
		t.Fatalf("newest record did not win across reopen: %q %v %v", got, ok, err)
	}
	if s3.Stats().Replaced == 0 {
		t.Fatal("replay did not count the superseded record")
	}
}

func TestPutBounds(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(nil, []byte("v")); err != ErrTooLarge {
		t.Fatalf("empty key err = %v, want ErrTooLarge", err)
	}
	if err := s.Put(bytes.Repeat([]byte{1}, MaxKeyLen+1), []byte("v")); err != ErrTooLarge {
		t.Fatalf("oversized key err = %v, want ErrTooLarge", err)
	}
}

// TestRecordCodecQuick is the testing/quick round-trip property for the
// record codec: encode→parse is the identity for any in-bounds
// key/value, and parse rejects every strict prefix of an encoding.
func TestRecordCodecQuick(t *testing.T) {
	roundTrip := func(key []byte, val []byte) bool {
		if len(key) == 0 {
			key = []byte{0}
		}
		if len(key) > MaxKeyLen {
			key = key[:MaxKeyLen]
		}
		rec, err := encodeRecord(key, val)
		if err != nil {
			return false
		}
		// Parse accepts the exact encoding (with arbitrary trailing
		// bytes, as in a segment) and returns the same pair.
		gotKey, gotVal, n, err := parseRecord(append(rec, 0xEE, 0xFF))
		if err != nil || n != len(rec) {
			return false
		}
		if !bytes.Equal(gotKey, key) || !bytes.Equal(gotVal, val) {
			return false
		}
		// Every strict prefix is rejected as torn.
		for _, cut := range []int{0, 1, headerSize - 1, headerSize, len(rec) - 1} {
			if cut >= len(rec) {
				continue
			}
			if _, _, _, err := parseRecord(rec[:cut]); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPutGet exercises the locks under -race: writers and
// readers over an overlapping key space, with rotation happening
// underneath.
func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir(), Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers, readers, iters = 4, 4, 200
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				key := []byte(fmt.Sprintf("k-%d", rng.Intn(32)))
				val := make([]byte, 64)
				rng.Read(val)
				if err := s.Put(key, val); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < iters; i++ {
				key := []byte(fmt.Sprintf("k-%d", rng.Intn(32)))
				if _, _, err := s.Get(key); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Len() == 0 {
		t.Fatal("no records after the hammer")
	}
}
