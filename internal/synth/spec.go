package synth

import (
	"fmt"

	"github.com/funseeker/funseeker/internal/cet"
)

// Lang is the source language of a program.
type Lang int

// Source languages.
const (
	// LangC marks a C program (no exception handling).
	LangC Lang = iota + 1
	// LangCPP marks a C++ program (functions may carry landing pads).
	LangCPP
)

// String returns "c" or "c++".
func (l Lang) String() string {
	switch l {
	case LangC:
		return "c"
	case LangCPP:
		return "c++"
	default:
		return fmt.Sprintf("Lang(%d)", int(l))
	}
}

// FuncSpec describes one source-level function to synthesize.
type FuncSpec struct {
	// Name is the function's symbol name.
	Name string
	// Static marks internal linkage: no end branch unless AddressTaken.
	Static bool
	// AddressTaken marks functions referenced through a function
	// pointer; such functions always get an end branch and an indirect
	// call site is materialized somewhere in the program.
	AddressTaken bool
	// AddressTakenData marks functions whose address is stored in a
	// read-only function-pointer table (vtable / callback-table style)
	// and called through a memory-indirect call. These are the indirect
	// branch targets classic tools fail to discover: no code instruction
	// references the entry, only data does.
	AddressTakenData bool
	// Intrinsic marks compiler-helper functions that are non-static yet
	// carry no end branch (the paper's 0.15% residue, e.g.
	// __x86.get_pc_thunk); they are only ever reached by direct calls.
	Intrinsic bool
	// Dead marks functions that no instruction references.
	Dead bool

	// HasEH gives the function C++ landing pads (LangCPP programs only).
	HasEH bool
	// NumLandingPads is the number of catch/cleanup pads; 0 with HasEH
	// set defaults to 1.
	NumLandingPads int

	// IndirectReturnCall names an indirect-return function (setjmp
	// family) this function calls, empty for none. An end branch is
	// placed after the call site.
	IndirectReturnCall string

	// HasSwitch adds a bounds-checked jump-table dispatch (NOTRACK
	// indirect jump).
	HasSwitch bool
	// SwitchCases is the number of jump-table cases (≥2 when HasSwitch).
	SwitchCases int

	// Calls lists indices of functions this function direct-calls.
	Calls []int
	// TailCalls lists indices of functions this function tail-jumps to
	// (the function ends with jmp instead of ret).
	TailCalls []int
	// CallsPLT lists external functions called through the PLT.
	CallsPLT []string

	// ColdPart splits an unlikely fragment into the .text.unlikely
	// region (GCC .part/.cold behaviour). ColdCalled additionally makes
	// the parent reach the fragment with a call instead of a jump.
	ColdPart   bool
	ColdCalled bool
	// SharedColdWith holds indices of other functions that also jump to
	// this function's cold fragment (modeling merged error paths, the
	// source of FunSeeker's tail-call false positives on .part blocks).
	SharedColdWith []int

	// BodySize is the approximate number of filler instructions.
	BodySize int

	// TrailingData emits this many bytes of raw (non-code) data directly
	// after the function, inside .text — modeling hand-written assembly
	// with inline tables, the case the paper's §VI names as the limit of
	// linear-sweep disassembly. The data can desynchronize the sweep
	// across the following function's entry.
	TrailingData int
}

// ProgSpec is one program (one output binary per build configuration).
type ProgSpec struct {
	// Name is the program name, e.g. "ls".
	Name string
	// Lang is the source language.
	Lang Lang
	// Seed drives all synthesized filler code deterministically.
	Seed int64
	// Funcs is the function list; index positions are referenced by
	// Calls/TailCalls edges.
	Funcs []FuncSpec
}

// Validate checks cross-references in the spec.
func (p *ProgSpec) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("synth: program has no name")
	}
	if len(p.Funcs) == 0 {
		return fmt.Errorf("synth: program %s has no functions", p.Name)
	}
	seen := make(map[string]bool, len(p.Funcs))
	for i, f := range p.Funcs {
		if f.Name == "" {
			return fmt.Errorf("synth: %s: function %d has no name", p.Name, i)
		}
		if seen[f.Name] {
			return fmt.Errorf("synth: %s: duplicate function name %q", p.Name, f.Name)
		}
		seen[f.Name] = true
		for _, c := range f.Calls {
			if c < 0 || c >= len(p.Funcs) {
				return fmt.Errorf("synth: %s: %s calls out-of-range index %d", p.Name, f.Name, c)
			}
			if c == i {
				continue // direct recursion is fine
			}
		}
		for _, c := range f.TailCalls {
			if c < 0 || c >= len(p.Funcs) || c == i {
				return fmt.Errorf("synth: %s: %s tail-calls bad index %d", p.Name, f.Name, c)
			}
		}
		for _, c := range f.SharedColdWith {
			if c < 0 || c >= len(p.Funcs) || c == i {
				return fmt.Errorf("synth: %s: %s shares cold with bad index %d", p.Name, f.Name, c)
			}
			if !f.ColdPart {
				return fmt.Errorf("synth: %s: %s has SharedColdWith without ColdPart", p.Name, f.Name)
			}
		}
		if f.HasEH && p.Lang != LangCPP {
			return fmt.Errorf("synth: %s: %s has EH in a C program", p.Name, f.Name)
		}
		if f.IndirectReturnCall != "" && !IsIndirectReturnFunc(f.IndirectReturnCall) {
			return fmt.Errorf("synth: %s: %s calls unknown indirect-return func %q",
				p.Name, f.Name, f.IndirectReturnCall)
		}
	}
	return nil
}

// IndirectReturnFuncs re-exports the GCC-defined indirect-return list for
// spec construction convenience.
var IndirectReturnFuncs = cet.IndirectReturnFuncs

// IsIndirectReturnFunc reports whether name is in the predefined
// indirect-return list.
func IsIndirectReturnFunc(name string) bool {
	return cet.IsIndirectReturnFunc(name)
}

// hasEndbr decides whether a function entry gets an end-branch marker:
// every non-static, non-intrinsic function (the linker cannot prove it is
// never address-taken), plus static functions whose address is taken.
func (f *FuncSpec) hasEndbr() bool {
	if f.Intrinsic {
		return false
	}
	if !f.Static {
		return true
	}
	return f.AddressTaken || f.AddressTakenData
}
