package synth

import (
	"debug/elf"
	"fmt"

	"github.com/funseeker/funseeker/internal/asmx"
	"github.com/funseeker/funseeker/internal/ehframe"
	"github.com/funseeker/funseeker/internal/elfw"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/lsda"
	"github.com/funseeker/funseeker/internal/x86"
)

// Result is one compiled binary with its ground truth.
type Result struct {
	// Image is the full (unstripped) ELF image.
	Image []byte
	// Stripped is the same binary without .symtab/.strtab — what the
	// identification tools are evaluated on.
	Stripped []byte
	// GT is the ground truth.
	GT *groundtruth.GT
	// Config echoes the build configuration.
	Config Config
}

// jumpSlotRelocType is R_X86_64_JUMP_SLOT / R_386_JMP_SLOT (both 7).
const jumpSlotRelocType = 7

const pageSize = 0x1000

// bases returns the virtual-address plan for the configuration.
func (c Config) bases() (noteVA, pltBase uint64) {
	switch {
	case c.Mode == x86.Mode64 && !c.PIE:
		return 0x400200, 0x401000
	case c.Mode == x86.Mode64 && c.PIE:
		return 0x1200, 0x2000
	case c.Mode == x86.Mode32 && !c.PIE:
		return 0x8048200, 0x8049000
	default: // 32-bit PIE
		return 0x1200, 0x2000
	}
}

// Compile turns a program specification into a CET-enabled ELF binary
// under the given build configuration.
func Compile(spec *ProgSpec, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &gen{
		spec:      spec,
		cfg:       cfg,
		tb:        asmx.New(cfg.Mode),
		lsdab:     lsda.NewBuilder(),
		importIdx: make(map[string]bool),
	}
	g.collectImports()
	g.assignAddressTakenHosts()
	g.genText() // may register late imports (e.g. abort)
	g.pb = asmx.New(cfg.Mode)
	g.psb = asmx.New(cfg.Mode)
	g.genPLT()
	if err := g.tb.Err(); err != nil {
		return nil, fmt.Errorf("synth: %s: text: %w", spec.Name, err)
	}
	if err := g.pb.Err(); err != nil {
		return nil, fmt.Errorf("synth: %s: plt: %w", spec.Name, err)
	}
	if err := g.psb.Err(); err != nil {
		return nil, fmt.Errorf("synth: %s: plt.sec: %w", spec.Name, err)
	}
	return g.assemble()
}

// assemble lays out the sections, resolves cross-references, and emits the
// ELF images plus ground truth.
func (g *gen) assemble() (*Result, error) {
	cfg := g.cfg
	ptr := uint64(cfg.PtrSize())
	class := elf.ELFCLASS64
	if cfg.Mode == x86.Mode32 {
		class = elf.ELFCLASS32
	}

	// Dynamic symbol table: the imports, all undefined.
	dsb := elfw.NewSymtab(class)
	for _, name := range g.imports {
		dsb.Add(elfw.Symbol{
			Name: name, Bind: elf.STB_GLOBAL, Type: elf.STT_FUNC, Shndx: 0,
		})
	}
	dynsymData, dynstrData, dynFirstGlobal, dynIndexOf := dsb.Emit()
	relaSize := len(g.imports) * 24
	if class == elf.ELFCLASS32 {
		relaSize = len(g.imports) * 8
	}

	// Virtual address layout.
	noteVA, pltVA := cfg.bases()
	noteFeatures := uint32(elfw.FeatureIBT | elfw.FeatureSHSTK)
	if cfg.NoCET {
		noteFeatures = uint32(elfw.FeatureSHSTK)
	}
	noteData := elfw.GNUPropertyNote(class, noteFeatures)
	dynsymVA := alignVA(noteVA+uint64(len(noteData)), 8)
	dynstrVA := dynsymVA + uint64(len(dynsymData))
	relaVA := alignVA(dynstrVA+uint64(len(dynstrData)), 8)
	if relaVA+uint64(relaSize) > pltVA {
		return nil, fmt.Errorf("synth: %s: dynamic tables overflow into .plt", g.spec.Name)
	}
	pltSecVA := alignVA(pltVA+uint64(g.pb.Size()), 16)
	textVA := alignVA(pltSecVA+uint64(g.psb.Size()), pageSize)
	rodataVA := alignVA(textVA+uint64(g.tb.Size()), pageSize)
	exceptVA := alignVA(rodataVA+uint64(g.rodataLen), 16)
	ehVA := alignVA(exceptVA+uint64(g.lsdab.Size()), 8)

	// .eh_frame: FDEs for functions (per toolchain policy) and for cold
	// fragments (GCC emits FDEs for .part/.cold symbols too).
	ehb := ehframe.NewBuilder(ehVA, int(ptr))
	for _, fi := range g.fns {
		if fi.hasFDE {
			hasLSDA := fi.lsdaOff >= 0
			var lsdaVA uint64
			if hasLSDA {
				lsdaVA = exceptVA + uint64(fi.lsdaOff)
			}
			ehb.AddFDE(textVA+uint64(fi.start), uint64(fi.end-fi.start), hasLSDA, lsdaVA)
		}
		for _, p := range fi.parts {
			if cfg.Compiler == GCC {
				ehb.AddFDE(textVA+uint64(p.start), uint64(p.end-p.start), false, 0)
			}
		}
	}
	ehData := ehb.Bytes()

	gotVA := alignVA(ehVA+uint64(len(ehData)), pageSize)
	gotSlots := 3 + len(g.imports)
	gotSize := uint64(gotSlots) * ptr
	dataVA := alignVA(gotVA+gotSize, 16)

	// Resolve cross-section references and finalize the builders.
	for i, name := range g.imports {
		slotVA := gotVA + uint64(3+i)*ptr
		g.psb.SetExtern("got."+name, slotVA)
	}
	pltBytes, err := g.pb.Finalize(pltVA)
	if err != nil {
		return nil, fmt.Errorf("synth: %s: plt finalize: %w", g.spec.Name, err)
	}
	pltSecBytes, err := g.psb.Finalize(pltSecVA)
	if err != nil {
		return nil, fmt.Errorf("synth: %s: plt.sec finalize: %w", g.spec.Name, err)
	}
	// Program code calls the .plt.sec stubs.
	for _, name := range g.imports {
		off, ok := g.psb.LabelOffset("plt." + name)
		if !ok {
			return nil, fmt.Errorf("synth: %s: missing plt.sec stub for %s", g.spec.Name, name)
		}
		g.tb.SetExtern("plt."+name, pltSecVA+uint64(off))
	}
	for i, jt := range g.jumpTabs {
		g.tb.SetExtern(fmt.Sprintf("ro.jt%d", i), rodataVA+uint64(jt.roOff))
	}
	for _, fp := range g.fpSlots {
		g.tb.SetExtern(fpSlotLabel(fp.funcIdx), rodataVA+uint64(fp.roOff))
	}
	textBytes, err := g.tb.Finalize(textVA)
	if err != nil {
		return nil, fmt.Errorf("synth: %s: text finalize: %w", g.spec.Name, err)
	}

	// Fill jump tables: absolute 4-byte entries on x86, table-relative
	// 4-byte offsets on x86-64.
	rodata := make([]byte, g.rodataLen)
	for _, jt := range g.jumpTabs {
		tabVA := rodataVA + uint64(jt.roOff)
		for i, label := range jt.labels {
			caseVA, err := g.tb.Addr(label)
			if err != nil {
				return nil, fmt.Errorf("synth: %s: jump table: %w", g.spec.Name, err)
			}
			var entry uint32
			if cfg.Mode == x86.Mode64 {
				entry = uint32(int32(int64(caseVA) - int64(tabVA)))
			} else {
				entry = uint32(caseVA)
			}
			off := jt.roOff + 4*i
			rodata[off] = byte(entry)
			rodata[off+1] = byte(entry >> 8)
			rodata[off+2] = byte(entry >> 16)
			rodata[off+3] = byte(entry >> 24)
		}
	}

	// Function-pointer table entries: absolute addresses, pointer-sized.
	for _, fp := range g.fpSlots {
		funcVA, err := g.tb.Addr(g.funcLabel(fp.funcIdx))
		if err != nil {
			return nil, fmt.Errorf("synth: %s: fp table: %w", g.spec.Name, err)
		}
		for b := 0; b < int(ptr); b++ {
			rodata[fp.roOff+b] = byte(funcVA >> (8 * b))
		}
	}

	// GOT contents: lazy-binding slots initially point back at the PLT.
	got := make([]byte, gotSize)
	for i := range g.imports {
		slotOff := (3 + i) * int(ptr)
		val := pltVA // PLT0
		for b := 0; b < int(ptr); b++ {
			got[slotOff+b] = byte(val >> (8 * b))
		}
	}

	// PLT relocations.
	relocs := make([]elfw.Reloc, 0, len(g.imports))
	for i, name := range g.imports {
		relocs = append(relocs, elfw.Reloc{
			Offset:   gotVA + uint64(3+i)*ptr,
			SymIndex: dynIndexOf[name],
			Type:     jumpSlotRelocType,
		})
	}
	relaData := elfw.EmitRelocs(class, relocs)
	if len(relaData) != relaSize {
		return nil, fmt.Errorf("synth: %s: reloc size drift", g.spec.Name)
	}

	// Ground truth and static symbol table.
	gt, ssb := g.buildGroundTruth(textVA, class)
	symtabData, strtabData, firstGlobal, _ := ssb.Emit()

	// Assemble the file. Section order fixes the header indices used in
	// the Link fields below.
	typ := elf.ET_EXEC
	if cfg.PIE {
		typ = elf.ET_DYN
	}
	f := elfw.New(class, typ)
	startVA, err := g.tb.Addr("f._start")
	if err != nil {
		return nil, fmt.Errorf("synth: %s: no _start: %w", g.spec.Name, err)
	}
	f.Entry = startVA

	symEntsize := uint64(24)
	if class == elf.ELFCLASS32 {
		symEntsize = 16
	}
	relaName, relaEntsize := ".rela.plt", uint64(24)
	if class == elf.ELFCLASS32 {
		relaName, relaEntsize = ".rel.plt", 8
	}
	// Section indices (post-null): 1 note, 2 dynsym, 3 dynstr, 4 rela,
	// 5 plt, 6 plt.sec, 7 text, then rodata/except (conditional),
	// eh_frame, got, data, symtab, strtab.
	f.AddSection(&elfw.Section{Name: ".note.gnu.property", Type: elf.SHT_NOTE,
		Flags: elf.SHF_ALLOC, Addr: noteVA, Data: noteData, Addralign: 8})
	f.AddSection(&elfw.Section{Name: ".dynsym", Type: elf.SHT_DYNSYM,
		Flags: elf.SHF_ALLOC, Addr: dynsymVA, Data: dynsymData,
		Link: 3, Info: dynFirstGlobal, Addralign: 8, Entsize: symEntsize})
	f.AddSection(&elfw.Section{Name: ".dynstr", Type: elf.SHT_STRTAB,
		Flags: elf.SHF_ALLOC, Addr: dynstrVA, Data: dynstrData, Addralign: 1})
	f.AddSection(&elfw.Section{Name: relaName, Type: relaSectionType(class),
		Flags: elf.SHF_ALLOC, Addr: relaVA, Data: relaData,
		Link: 2, Info: 5, Addralign: 8, Entsize: relaEntsize})
	f.AddSection(&elfw.Section{Name: ".plt", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: pltVA, Data: pltBytes,
		Addralign: 16})
	f.AddSection(&elfw.Section{Name: ".plt.sec", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: pltSecVA, Data: pltSecBytes,
		Addralign: 16})
	f.AddSection(&elfw.Section{Name: ".text", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_EXECINSTR, Addr: textVA, Data: textBytes,
		Addralign: 16})
	if len(rodata) > 0 {
		f.AddSection(&elfw.Section{Name: ".rodata", Type: elf.SHT_PROGBITS,
			Flags: elf.SHF_ALLOC, Addr: rodataVA, Data: rodata, Addralign: 8})
	}
	if g.lsdab.Size() > 0 {
		f.AddSection(&elfw.Section{Name: ".gcc_except_table", Type: elf.SHT_PROGBITS,
			Flags: elf.SHF_ALLOC, Addr: exceptVA, Data: g.lsdab.Bytes(), Addralign: 4})
	}
	f.AddSection(&elfw.Section{Name: ".eh_frame", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC, Addr: ehVA, Data: ehData, Addralign: 8})
	f.AddSection(&elfw.Section{Name: ".got.plt", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_WRITE, Addr: gotVA, Data: got, Addralign: ptr})
	f.AddSection(&elfw.Section{Name: ".data", Type: elf.SHT_PROGBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_WRITE, Addr: dataVA,
		Data: []byte{0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0}, Addralign: 8})

	// The rodata/except sections are conditional, which would shift the
	// rela Info/dynsym Link indices; keep them unconditional instead.
	// (Handled above by always adding .eh_frame and using fixed indices
	// for sections 1-5 only, which are unconditional.)

	symtabLink := uint32(len(sectionNames(f)) + 2) // index of .strtab (next section after .symtab)
	f.AddSection(&elfw.Section{Name: ".symtab", Type: elf.SHT_SYMTAB,
		Data: symtabData, Link: symtabLink, Info: firstGlobal,
		Addralign: 8, Entsize: symEntsize})
	f.AddSection(&elfw.Section{Name: ".strtab", Type: elf.SHT_STRTAB,
		Data: strtabData, Addralign: 1})

	image, err := f.Bytes()
	if err != nil {
		return nil, fmt.Errorf("synth: %s: emit: %w", g.spec.Name, err)
	}
	f.RemoveSection(".symtab")
	f.RemoveSection(".strtab")
	stripped, err := f.Bytes()
	if err != nil {
		return nil, fmt.Errorf("synth: %s: emit stripped: %w", g.spec.Name, err)
	}
	return &Result{Image: image, Stripped: stripped, GT: gt, Config: g.cfg}, nil
}

// sectionNames lists the sections currently added (helper to compute the
// strtab link index without hand-counting).
func sectionNames(f *elfw.File) []string {
	// The writer has no exported iterator; rely on lookup of the names we
	// know are present. Order matters only for the count.
	names := []string{
		".note.gnu.property", ".dynsym", ".dynstr", ".rela.plt", ".rel.plt",
		".plt", ".plt.sec", ".text", ".rodata", ".gcc_except_table", ".eh_frame",
		".got.plt", ".data",
	}
	var present []string
	for _, n := range names {
		if f.Section(n) != nil {
			present = append(present, n)
		}
	}
	return present
}

func relaSectionType(class elf.Class) elf.SectionType {
	if class == elf.ELFCLASS64 {
		return elf.SHT_RELA
	}
	return elf.SHT_REL
}

func alignVA(v, align uint64) uint64 {
	return (v + align - 1) / align * align
}

// buildGroundTruth converts codegen records into the GT sidecar plus the
// static symbol table for the unstripped image.
func (g *gen) buildGroundTruth(textVA uint64, class elf.Class) (*groundtruth.GT, *elfw.SymtabBuilder) {
	gt := &groundtruth.GT{
		Program: g.spec.Name,
		Config:  g.cfg.String(),
		Lang:    g.spec.Lang.String(),
	}
	if g.spec.Lang == 0 {
		gt.Lang = LangC.String()
	}
	ssb := elfw.NewSymtab(class)
	const textShndx = 7 // .text section index (see assemble)
	for _, fi := range g.fns {
		addr := textVA + uint64(fi.start)
		size := uint64(fi.end - fi.start)
		bind := elf.STB_GLOBAL
		if fi.spec.Static {
			bind = elf.STB_LOCAL
		}
		hasEndbr := fi.hasEndbr
		if fi.implicit && fi.spec.Name == "_start" && !g.cfg.NoCET {
			hasEndbr = true
		}
		if fi.spec.Intrinsic {
			hasEndbr = false
		}
		gt.Funcs = append(gt.Funcs, groundtruth.Func{
			Name:      fi.spec.Name,
			Addr:      addr,
			Size:      size,
			Static:    fi.spec.Static,
			HasEndbr:  hasEndbr,
			Dead:      fi.spec.Dead,
			Intrinsic: fi.spec.Intrinsic,
		})
		// The paper notes compilers sometimes omit the symbol for
		// get_pc_thunk; we keep the symbol out of .symtab for the
		// intrinsic thunk but keep it in the ground truth.
		if !(fi.implicit && fi.spec.Intrinsic) {
			ssb.Add(elfw.Symbol{
				Name: fi.spec.Name, Value: addr, Size: size,
				Bind: bind, Type: elf.STT_FUNC, Shndx: textShndx,
			})
		}
		for _, p := range fi.parts {
			partVA := textVA + uint64(p.start)
			gt.PartBlocks = append(gt.PartBlocks, partVA)
			suffix := ".cold"
			if fi.spec.ColdCalled {
				suffix = ".part.0"
			}
			ssb.Add(elfw.Symbol{
				Name: fi.spec.Name + suffix, Value: partVA,
				Size: uint64(p.end - p.start),
				Bind: elf.STB_LOCAL, Type: elf.STT_FUNC, Shndx: textShndx,
			})
		}
	}
	for _, e := range g.endbrs {
		gt.Endbrs = append(gt.Endbrs, groundtruth.EndbrSite{
			Addr: textVA + uint64(e.off),
			Role: e.role,
		})
	}
	return gt, ssb
}
