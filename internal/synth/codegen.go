package synth

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"slices"
	"sort"

	"github.com/funseeker/funseeker/internal/asmx"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/lsda"
	"github.com/funseeker/funseeker/internal/x86"
)

// endbrRec tracks an emitted end branch and its role, as a text offset.
type endbrRec struct {
	off  int
	role groundtruth.EndbrRole
}

// partInfo is one emitted .cold/.part fragment.
type partInfo struct {
	name       string
	start, end int
}

// fnInfo carries per-function codegen results.
type fnInfo struct {
	spec     *FuncSpec
	idx      int
	start    int // text offset of the entry
	end      int // text offset one past the last byte owned
	lsdaOff  int // offset in .gcc_except_table, -1 when none
	hasFDE   bool
	hasEndbr bool
	parts    []partInfo
	implicit bool // _start / thunks: synthesized, still ground truth
}

// gen is the state of one compilation.
type gen struct {
	spec *ProgSpec
	cfg  Config

	tb    *asmx.Builder // .text
	pb    *asmx.Builder // .plt (PLT0 + lazy stubs)
	psb   *asmx.Builder // .plt.sec (the stubs code calls)
	lsdab *lsda.Builder

	imports   []string
	importIdx map[string]bool

	fns       []*fnInfo
	endbrs    []endbrRec
	rodataLen int
	jumpTabs  []jumpTab
	fpSlots   []fpSlot

	// atHosts maps an address-taken function index to the host function
	// that materializes its address. dataHosts does the same for
	// data-table-referenced functions.
	atHosts   map[int]int
	dataHosts map[int]int

	labelSeq int
}

// jumpTab is one reserved jump table in .rodata.
type jumpTab struct {
	roOff  int      // offset within .rodata
	labels []string // case labels, resolved after text finalize
}

// fpSlot is one reserved function-pointer entry in .rodata.
type fpSlot struct {
	roOff   int // offset within .rodata
	funcIdx int // target function
}

// funcLabel is the text label of function i.
func (g *gen) funcLabel(i int) string { return "f." + g.spec.Funcs[i].Name }

// fresh returns a unique local label.
func (g *gen) fresh(prefix string) string {
	g.labelSeq++
	return fmt.Sprintf(".L%s%d", prefix, g.labelSeq)
}

// addImport registers a PLT import on first use.
func (g *gen) addImport(name string) {
	if g.importIdx[name] {
		return
	}
	g.importIdx[name] = true
	g.imports = append(g.imports, name)
}

// rng builds the deterministic per-function random stream.
func (g *gen) rng(fnIdx int) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d", g.spec.Name, g.cfg, g.spec.Seed, fnIdx)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// collectImports walks the spec and registers every external reference in
// a deterministic order.
func (g *gen) collectImports() {
	g.addImport("__libc_start_main")
	for i := range g.spec.Funcs {
		f := &g.spec.Funcs[i]
		if f.IndirectReturnCall != "" {
			g.addImport(f.IndirectReturnCall)
		}
		for _, p := range f.CallsPLT {
			g.addImport(p)
		}
		if f.HasEH {
			g.addImport("__cxa_begin_catch")
			g.addImport("__cxa_end_catch")
		}
	}
}

// assignAddressTakenHosts picks, for every address-taken function, a live
// function that will materialize its address and perform an indirect call.
func (g *gen) assignAddressTakenHosts() {
	g.atHosts = make(map[int]int)
	g.dataHosts = make(map[int]int)
	var hosts []int
	for i := range g.spec.Funcs {
		f := &g.spec.Funcs[i]
		if !f.Dead && !f.Intrinsic {
			hosts = append(hosts, i)
		}
	}
	if len(hosts) == 0 {
		return
	}
	h := 0
	pick := func(i int) int {
		host := hosts[h%len(hosts)]
		if host == i && len(hosts) > 1 {
			h++
			host = hosts[h%len(hosts)]
		}
		h++
		return host
	}
	for i := range g.spec.Funcs {
		if g.spec.Funcs[i].AddressTaken {
			g.atHosts[i] = pick(i)
		}
		if g.spec.Funcs[i].AddressTakenData {
			g.dataHosts[i] = pick(i)
			// Reserve the pointer slot in .rodata.
			ptr := g.cfg.PtrSize()
			for g.rodataLen%ptr != 0 {
				g.rodataLen++
			}
			g.fpSlots = append(g.fpSlots, fpSlot{roOff: g.rodataLen, funcIdx: i})
			g.rodataLen += ptr
		}
	}
}

// fpSlotLabel names the rodata pointer slot for function target.
func fpSlotLabel(target int) string { return fmt.Sprintf("ro.fp%d", target) }

// --- PLT generation ---------------------------------------------------

const pltEntrySize = 16

// genPLT builds the split PLT layout CET-enabled links use (-z ibtplt):
//
//   - .plt holds PLT0 plus one lazy-binding stub per import
//     (endbr; push reloc-index; jmp plt0);
//   - .plt.sec holds the stubs program code actually calls
//     (endbr; jmp [GOT slot]).
//
// Text references resolve to the .plt.sec entries, matching real
// binaries where FunSeeker's FILTERENDBR must name .plt.sec call targets.
func (g *gen) genPLT() {
	b := g.pb
	s := g.psb
	b.Label("plt0")
	if g.cfg.NoCET {
		b.Nop(pltEntrySize)
	} else {
		b.Endbr()
		b.Nop(pltEntrySize - 4)
	}
	for i, name := range g.imports {
		b.Align(pltEntrySize)
		b.Label("pltlazy." + name)
		if !g.cfg.NoCET {
			b.Endbr()
		}
		b.PushImm32(uint32(i))
		b.Jmp("plt0")
		b.Align(pltEntrySize)

		s.Align(pltEntrySize)
		s.Label("plt." + name)
		if g.cfg.NoCET {
			s.PltJmp("got." + name)
			s.Nop(pltEntrySize - 6)
		} else {
			s.Endbr()
			s.PltJmp("got." + name)
			s.Nop(pltEntrySize - 4 - 6)
		}
	}
}

// --- text generation ---------------------------------------------------

// genText emits _start, the PIC thunk where applicable, every function,
// and finally the cold region.
func (g *gen) genText() {
	g.genStart()
	if g.needsThunk() {
		g.genThunk()
	}
	for i := range g.spec.Funcs {
		g.genFunc(i)
	}
	g.genColdRegion()
}

// needsThunk reports whether the build uses the __x86.get_pc_thunk
// intrinsic (32-bit position-independent code).
func (g *gen) needsThunk() bool {
	return g.cfg.Mode == x86.Mode32 && g.cfg.PIE
}

// entryFuncIdx is the function _start hands to __libc_start_main.
func (g *gen) entryFuncIdx() int {
	for i := range g.spec.Funcs {
		if g.spec.Funcs[i].Name == "main" {
			return i
		}
	}
	return 0
}

// genStart synthesizes the _start runtime stub.
func (g *gen) genStart() {
	b := g.tb
	fi := &fnInfo{spec: &FuncSpec{Name: "_start"}, idx: -1, implicit: true, lsdaOff: -1}
	fi.start = b.Offset()
	b.Label("f._start")
	if !g.cfg.NoCET {
		b.Endbr()
		g.recordEndbr(fi.start, groundtruth.RoleFuncEntry)
	}
	b.XorRegReg(asmx.RBP, asmx.RBP)
	if g.needsThunk() {
		b.Call("f.__x86.get_pc_thunk.bx")
		b.AddImm(asmx.RBX, 0x2f00) // GOT displacement flavour
	}
	main := g.funcLabel(g.entryFuncIdx())
	if g.cfg.Mode == x86.Mode64 {
		b.LeaRIPLabel(asmx.RDI, main)
	} else {
		b.MovRegImmLabel(asmx.RAX, main)
		b.Push(asmx.RAX)
	}
	b.Call("plt.__libc_start_main")
	b.Hlt()
	fi.end = b.Offset()
	fi.hasFDE = g.cfg.emitsFDEFor(false)
	g.fns = append(g.fns, fi)
}

// genThunk synthesizes __x86.get_pc_thunk.bx: the canonical 32-bit PIC
// helper. It is a true function without an end branch, reached only by
// direct calls (the paper manually includes it in the ground truth).
func (g *gen) genThunk() {
	b := g.tb
	fi := &fnInfo{
		spec:     &FuncSpec{Name: "__x86.get_pc_thunk.bx", Intrinsic: true},
		idx:      -1,
		implicit: true,
		lsdaOff:  -1,
	}
	fi.start = b.Offset()
	b.Label("f.__x86.get_pc_thunk.bx")
	b.MovRegMem(asmx.RBX, asmx.RSP, 0) // mov ebx, [esp]
	b.Ret()
	fi.end = b.Offset()
	fi.hasFDE = g.cfg.emitsFDEFor(false)
	g.fns = append(g.fns, fi)
}

// callerSaved are the scratch registers filler code cycles through.
var callerSaved = []asmx.Reg{asmx.RAX, asmx.RCX, asmx.RDX, asmx.RSI, asmx.RDI}

// recordEndbr notes an end branch for Table I accounting.
func (g *gen) recordEndbr(off int, role groundtruth.EndbrRole) {
	g.endbrs = append(g.endbrs, endbrRec{off: off, role: role})
}

// filler emits n pseudo-random ALU/memory instructions.
func (g *gen) filler(rng *rand.Rand, n int, useFP bool) {
	b := g.tb
	base := asmx.RSP
	if useFP {
		base = asmx.RBP
	}
	reg := func() asmx.Reg { return callerSaved[rng.Intn(len(callerSaved))] }
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			b.MovRegImm32(reg(), rng.Uint32()>>uint(rng.Intn(24)))
		case 1:
			b.AddRegReg(reg(), reg())
		case 2:
			b.SubImm(reg(), int32(rng.Intn(256)))
		case 3:
			b.XorRegReg(reg(), reg())
		case 4:
			if useFP {
				b.MovRegMem(reg(), base, -int32(8*(1+rng.Intn(8))))
			} else {
				b.MovRegMem(reg(), base, int32(8*rng.Intn(8)))
			}
		case 5:
			if useFP {
				b.MovMemReg(base, -int32(8*(1+rng.Intn(8))), reg())
			} else {
				b.MovMemReg(base, int32(8*rng.Intn(8)), reg())
			}
		case 6:
			b.ImulRegReg(reg(), reg())
		case 7:
			b.LeaMem(reg(), base, int32(rng.Intn(64)))
		case 8:
			b.AndImm(reg(), int32(rng.Intn(0xffff)))
		case 9:
			b.ShlImm(reg(), byte(1+rng.Intn(5)))
		}
	}
}

// diamond emits an if/else join whose merge point is an unconditional
// direct-jump target (interior jump targets are what ruins precision in
// FunSeeker's configuration ③).
func (g *gen) diamond(rng *rand.Rand, useFP bool) {
	b := g.tb
	elseL := g.fresh("else")
	endL := g.fresh("end")
	b.TestRegReg(asmx.RAX, asmx.RAX)
	b.Jcc(asmx.CondE, elseL)
	g.filler(rng, 1+rng.Intn(3), useFP)
	b.Jmp(endL)
	b.Label(elseL)
	g.filler(rng, 1+rng.Intn(3), useFP)
	b.Label(endL)
}

// loop emits a counted loop (backward conditional jump).
func (g *gen) loop(rng *rand.Rand, useFP bool) {
	b := g.tb
	top := g.fresh("loop")
	b.MovRegImm32(asmx.RCX, uint32(1+rng.Intn(100)))
	b.Label(top)
	g.filler(rng, 1+rng.Intn(3), useFP)
	b.SubImm(asmx.RCX, 1)
	b.Jcc(asmx.CondNE, top)
}

// genSwitch emits a bounds-checked jump-table dispatch with a NOTRACK
// indirect jump, plus the case blocks.
func (g *gen) genSwitch(rng *rand.Rand, fi *fnInfo, useFP bool) {
	b := g.tb
	cases := fi.spec.SwitchCases
	if cases < 2 {
		cases = 4
	}
	tabLabel := fmt.Sprintf("ro.jt%d", len(g.jumpTabs))
	endL := g.fresh("swend")
	defL := g.fresh("swdef")

	caseLabels := make([]string, cases)
	for i := range caseLabels {
		caseLabels[i] = g.fresh("case")
	}
	// Reserve the table: 4-byte entries in both modes (absolute addresses
	// on x86, table-relative offsets on x86-64).
	for g.rodataLen%4 != 0 {
		g.rodataLen++
	}
	g.jumpTabs = append(g.jumpTabs, jumpTab{roOff: g.rodataLen, labels: caseLabels})
	g.rodataLen += 4 * cases

	b.CmpImm(asmx.RAX, int32(cases-1))
	b.Jcc(asmx.CondA, defL)
	if g.cfg.Mode == x86.Mode64 {
		b.LeaRIPLabel(asmx.RDX, tabLabel)
		b.MovsxdRegMemSIB(asmx.RCX, asmx.RDX, asmx.RAX)
		b.AddRegReg(asmx.RCX, asmx.RDX)
		b.JmpIndReg(asmx.RCX, true)
	} else {
		b.JmpIndMemScaled(asmx.RAX, tabLabel, true)
	}
	for _, cl := range caseLabels {
		b.Label(cl)
		g.filler(rng, 1+rng.Intn(2), useFP)
		b.Jmp(endL)
	}
	b.Label(defL)
	g.filler(rng, 1, useFP)
	b.Label(endL)
}

// genFunc compiles one specified function.
func (g *gen) genFunc(idx int) {
	b := g.tb
	spec := &g.spec.Funcs[idx]
	rng := g.rng(idx)
	if g.cfg.Opt.alignsFunctions() {
		b.Align(16)
	}
	fi := &fnInfo{spec: spec, idx: idx, lsdaOff: -1}
	fi.start = b.Offset()
	b.Label(g.funcLabel(idx))

	// The entry function's address is always taken by _start (it is
	// passed to __libc_start_main), so it gets an end branch even when
	// declared static. Under -mmanual-endbr only genuinely address-taken
	// functions keep the marker — the program would trap at indirect
	// calls otherwise.
	if g.cfg.NoCET {
		fi.hasEndbr = false
	} else if g.cfg.ManualEndbr {
		fi.hasEndbr = spec.AddressTaken || spec.AddressTakenData || idx == g.entryFuncIdx()
	} else {
		fi.hasEndbr = spec.hasEndbr() || idx == g.entryFuncIdx()
	}
	if fi.hasEndbr {
		g.recordEndbr(b.Offset(), groundtruth.RoleFuncEntry)
		b.Endbr()
	}
	useFP := g.cfg.Opt.usesFramePointer()
	frame := int32(16 * (1 + rng.Intn(6)))
	if useFP {
		b.Push(asmx.RBP)
		b.MovRegReg(asmx.RBP, asmx.RSP)
	}
	b.SubImm(asmx.RSP, frame)

	bodyUnits := spec.BodySize
	if bodyUnits <= 0 {
		bodyUnits = 4 + rng.Intn(8)
	}
	bodyUnits *= g.cfg.Opt.bodyScale()

	// Interleave structure: spread calls and constructs across the body.
	type emitStep func()
	var steps []emitStep
	var ehCallSites []lsda.CallSite // filled as throwing calls are placed

	for _, callee := range spec.Calls {
		callee := callee
		steps = append(steps, func() {
			b.MovRegImm32(asmx.RDI, uint32(rng.Intn(1000)))
			b.Call(g.funcLabel(callee))
		})
	}
	for _, ext := range spec.CallsPLT {
		ext := ext
		steps = append(steps, func() {
			callOff := b.Offset()
			b.Call("plt." + ext)
			if spec.HasEH {
				ehCallSites = append(ehCallSites, lsda.CallSite{
					Start:  uint64(callOff - fi.start),
					Length: uint64(b.Offset() - callOff),
				})
			}
		})
	}
	if spec.IndirectReturnCall != "" {
		irc := spec.IndirectReturnCall
		steps = append(steps, func() {
			if g.cfg.Mode == x86.Mode64 {
				b.LeaMem(asmx.RDI, asmx.RSP, 0)
			} else {
				b.LeaMem(asmx.RAX, asmx.RSP, 0)
				b.Push(asmx.RAX)
			}
			b.Call("plt." + irc)
			if !g.cfg.NoCET {
				g.recordEndbr(b.Offset(), groundtruth.RoleIndirectReturn)
				b.Endbr()
			}
			b.TestRegReg(asmx.RAX, asmx.RAX)
			skip := g.fresh("sj")
			b.Jcc(asmx.CondNE, skip)
			g.filler(rng, 2, useFP)
			b.Label(skip)
		})
	}
	// Address-taken materializations hosted here (sorted for
	// deterministic output; map iteration order would vary).
	var hostedTargets []int
	for target, host := range g.atHosts {
		if host == idx {
			hostedTargets = append(hostedTargets, target)
		}
	}
	slices.Sort(hostedTargets)
	for _, target := range hostedTargets {
		target := target
		steps = append(steps, func() {
			if g.cfg.Mode == x86.Mode64 {
				b.LeaRIPLabel(asmx.RAX, g.funcLabel(target))
				if useFP {
					b.MovMemReg(asmx.RBP, -16, asmx.RAX)
					b.CallIndMem(asmx.RBP, -16)
				} else {
					b.CallIndReg(asmx.RAX)
				}
			} else {
				b.MovRegImmLabel(asmx.RAX, g.funcLabel(target))
				b.CallIndReg(asmx.RAX)
			}
		})
	}
	// Data-table indirect calls: the callee's address is loaded from a
	// read-only pointer table, so no instruction references the entry.
	var dataTargets []int
	for target, host := range g.dataHosts {
		if host == idx {
			dataTargets = append(dataTargets, target)
		}
	}
	slices.Sort(dataTargets)
	for _, target := range dataTargets {
		target := target
		steps = append(steps, func() {
			if g.cfg.Mode == x86.Mode64 {
				b.MovRegMemRIPLabel(asmx.RAX, fpSlotLabel(target))
			} else {
				b.MovRegMemAbsLabel(asmx.RAX, fpSlotLabel(target))
			}
			b.CallIndReg(asmx.RAX)
		})
	}
	if spec.HasSwitch {
		steps = append(steps, func() { g.genSwitch(rng, fi, useFP) })
	}
	if spec.ColdPart && g.cfg.splitsColdParts() {
		steps = append(steps, func() { g.emitColdRef(idx, rng) })
	}
	// Shared cold references to other functions' fragments.
	for fIdx := range g.spec.Funcs {
		if !g.cfg.splitsColdParts() {
			break
		}
		for _, sharer := range g.spec.Funcs[fIdx].SharedColdWith {
			if sharer != idx {
				continue
			}
			fIdx := fIdx
			steps = append(steps, func() {
				skip := g.fresh("nocold")
				b.TestRegReg(asmx.RDX, asmx.RDX)
				b.Jcc(asmx.CondE, skip)
				b.Jmp(partLabel(g.spec.Funcs[fIdx].Name, 0))
				b.Label(skip)
			})
		}
	}

	// Emit the body: filler interleaved with the structured steps.
	perStep := bodyUnits / (len(steps) + 1)
	if perStep < 1 {
		perStep = 1
	}
	emitFill := func() {
		g.filler(rng, perStep, useFP)
		switch rng.Intn(4) {
		case 0:
			g.diamond(rng, useFP)
		case 1:
			g.loop(rng, useFP)
		}
	}
	emitFill()
	for _, step := range steps {
		step()
		emitFill()
	}

	// Epilogue.
	b.MovRegImm32(asmx.RAX, uint32(rng.Intn(2)))
	b.AddImm(asmx.RSP, frame)
	if useFP {
		b.Pop(asmx.RBP)
	}
	if len(spec.TailCalls) > 0 {
		// A chain of conditional dispatches ending in direct tail jumps.
		for i, target := range spec.TailCalls {
			if i == len(spec.TailCalls)-1 {
				b.Jmp(g.funcLabel(target))
				break
			}
			next := g.fresh("tc")
			b.CmpImm(asmx.RAX, int32(i))
			b.Jcc(asmx.CondNE, next)
			b.Jmp(g.funcLabel(target))
			b.Label(next)
		}
	} else {
		b.Ret()
	}

	// Landing pads: inside the function's FDE range, after the normal
	// return path, each starting with an end branch.
	if spec.HasEH && g.spec.Lang == LangCPP {
		pads := spec.NumLandingPads
		if pads <= 0 {
			pads = 1
		}
		// Every landing pad must be referenced from the call-site table;
		// synthesize additional covered regions if the body had fewer
		// throwing calls than pads.
		for p := len(ehCallSites); p < pads; p++ {
			ehCallSites = append(ehCallSites, lsda.CallSite{
				Start:  uint64(4 + 2*p),
				Length: 2,
			})
		}
		sort.Slice(ehCallSites, func(i, j int) bool {
			return ehCallSites[i].Start < ehCallSites[j].Start
		})
		padOffsets := make([]uint64, 0, pads)
		for p := 0; p < pads; p++ {
			padOff := uint64(b.Offset() - fi.start)
			if !g.cfg.NoCET {
				g.recordEndbr(b.Offset(), groundtruth.RoleException)
				b.Endbr()
			}
			b.MovRegReg(asmx.RDI, asmx.RAX)
			b.Call("plt.__cxa_begin_catch")
			g.filler(rng, 1+rng.Intn(3), false)
			b.Call("plt.__cxa_end_catch")
			b.MovRegImm32(asmx.RAX, 0)
			b.Ret()
			padOffsets = append(padOffsets, padOff)
		}
		for i := range ehCallSites {
			ehCallSites[i].LandingPad = padOffsets[i%len(padOffsets)]
			ehCallSites[i].Action = 1
		}
		fi.lsdaOff = g.lsdab.Add(ehCallSites)
	}

	fi.end = b.Offset()
	fi.hasFDE = g.cfg.emitsFDEFor(spec.HasEH)
	g.fns = append(g.fns, fi)

	// Inline data after the function (hand-written-assembly modeling):
	// raw bytes that are not instructions and may desynchronize a linear
	// sweep into the next function.
	if spec.TrailingData > 0 {
		blob := make([]byte, spec.TrailingData)
		for i := range blob {
			blob[i] = byte(rng.Intn(256))
		}
		b.Raw(blob...)
	}
}

// partLabel names function name's cold fragment n.
func partLabel(name string, n int) string {
	return fmt.Sprintf("f.%s.part.%d", name, n)
}

// emitColdRef emits the parent-side reference to its cold fragment: a
// direct call for ColdCalled fragments, otherwise a conditional skip
// around an unconditional jump into the cold region.
func (g *gen) emitColdRef(idx int, rng *rand.Rand) {
	b := g.tb
	spec := &g.spec.Funcs[idx]
	if spec.ColdCalled {
		b.TestRegReg(asmx.RSI, asmx.RSI)
		skip := g.fresh("nocall")
		b.Jcc(asmx.CondE, skip)
		b.Call(partLabel(spec.Name, 0))
		b.Label(skip)
		return
	}
	skip := g.fresh("hot")
	b.TestRegReg(asmx.RSI, asmx.RSI)
	b.Jcc(asmx.CondE, skip)
	b.Jmp(partLabel(spec.Name, 0))
	b.Label(skip)
	_ = rng
}

// genColdRegion emits every .part/.cold fragment at the end of .text,
// modeling the .text.unlikely placement GCC uses.
func (g *gen) genColdRegion() {
	if !g.cfg.splitsColdParts() {
		return
	}
	b := g.tb
	for _, fi := range g.fns {
		if fi.idx < 0 || !fi.spec.ColdPart {
			continue
		}
		rng := g.rng(fi.idx + 1_000_000)
		if g.cfg.Opt.alignsFunctions() {
			b.Align(16)
		}
		p := partInfo{name: partLabel(fi.spec.Name, 0), start: b.Offset()}
		b.Label(p.name)
		// Cold code: an error path. Called fragments return; jumped-to
		// fragments end by calling a noreturn helper.
		g.filler(rng, 3+rng.Intn(5), false)
		if fi.spec.ColdCalled {
			b.Ret()
		} else {
			g.addImportLate("abort")
			b.Call("plt.abort")
			b.Ud2()
		}
		p.end = b.Offset()
		fi.parts = append(fi.parts, p)
	}
}

// addImportLate registers an import discovered during text generation.
// The PLT is generated after the text builder completes, so late imports
// are safe as long as they happen before genPLT.
func (g *gen) addImportLate(name string) { g.addImport(name) }
