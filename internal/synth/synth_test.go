package synth

import (
	"bytes"
	"debug/elf"
	"testing"

	"github.com/funseeker/funseeker/internal/ehframe"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/x86"
)

// testSpec builds a program exercising every synthesized feature.
func testSpec(lang Lang) *ProgSpec {
	spec := &ProgSpec{
		Name: "testprog",
		Lang: lang,
		Seed: 7,
		Funcs: []FuncSpec{
			{Name: "main", Calls: []int{1, 2}, CallsPLT: []string{"printf"}, HasSwitch: true, SwitchCases: 5},
			{Name: "helper_a", Calls: []int{3}},
			{Name: "helper_b", Calls: []int{3}, IndirectReturnCall: "setjmp"},
			{Name: "shared_leaf", Static: true},
			{Name: "callback", AddressTaken: true},
			{Name: "tail_target", TailCalls: nil},
			{Name: "tail_caller1", TailCalls: []int{5}},
			{Name: "tail_caller2", TailCalls: []int{5}},
			{Name: "dead_static", Static: true, Dead: true},
			{Name: "cold_owner", ColdPart: true, SharedColdWith: []int{1}},
			{Name: "called_part_owner", ColdPart: true, ColdCalled: true},
			{Name: "intrinsic_helper", Intrinsic: true, Calls: nil},
		},
	}
	// Make the intrinsic actually called (intrinsics are reached by
	// direct calls only).
	spec.Funcs[0].Calls = append(spec.Funcs[0].Calls, 11)
	if lang == LangCPP {
		spec.Funcs = append(spec.Funcs, FuncSpec{
			Name: "may_throw", HasEH: true, NumLandingPads: 2,
			CallsPLT: []string{"__cxa_throw"},
		})
		spec.Funcs[0].Calls = append(spec.Funcs[0].Calls, 12)
	}
	return spec
}

func compileOrDie(t *testing.T, spec *ProgSpec, cfg Config) *Result {
	t.Helper()
	res, err := Compile(spec, cfg)
	if err != nil {
		t.Fatalf("Compile(%s): %v", cfg, err)
	}
	return res
}

func TestCompileAllConfigs(t *testing.T) {
	for _, lang := range []Lang{LangC, LangCPP} {
		spec := testSpec(lang)
		for _, cfg := range AllConfigs() {
			cfg := cfg
			t.Run(lang.String()+"/"+cfg.String(), func(t *testing.T) {
				res := compileOrDie(t, spec, cfg)
				bin, err := elfx.Load(res.Stripped)
				if err != nil {
					t.Fatalf("elfx.Load: %v", err)
				}
				if bin.Mode != cfg.Mode {
					t.Errorf("mode = %v, want %v", bin.Mode, cfg.Mode)
				}
				if bin.PIE != cfg.PIE {
					t.Errorf("PIE = %v, want %v", bin.PIE, cfg.PIE)
				}
				if !bin.CETEnabled {
					t.Error("binary not marked CET-enabled")
				}

				// The entire .text must decode with zero resync skips.
				skipped := x86.LinearSweep(bin.Text, bin.TextAddr, bin.Mode, func(*x86.Inst) bool { return true })
				if skipped != 0 {
					t.Errorf("linear sweep skipped %d bytes", skipped)
				}

				verifyEndbrs(t, res, bin)
				verifyPLT(t, res, bin)
				verifyEHFrame(t, res, bin, cfg, spec)
			})
		}
	}
}

// verifyEndbrs checks that ground-truth endbr flags match the bytes and
// that the recorded endbr sites are exactly the end branches in .text.
func verifyEndbrs(t *testing.T, res *Result, bin *elfx.Binary) {
	t.Helper()
	found := make(map[uint64]bool)
	x86.LinearSweep(bin.Text, bin.TextAddr, bin.Mode, func(inst *x86.Inst) bool {
		if inst.IsEndbr() {
			found[inst.Addr] = true
		}
		return true
	})
	recorded := make(map[uint64]groundtruth.EndbrRole)
	for _, e := range res.GT.Endbrs {
		recorded[e.Addr] = e.Role
	}
	if len(found) != len(recorded) {
		t.Errorf("swept %d endbrs, ground truth records %d", len(found), len(recorded))
	}
	for addr := range found {
		if _, ok := recorded[addr]; !ok {
			t.Errorf("endbr at %#x not in ground truth", addr)
		}
	}
	for _, f := range res.GT.Funcs {
		if f.HasEndbr {
			if !found[f.Addr] {
				t.Errorf("func %s at %#x should start with endbr", f.Name, f.Addr)
			}
			if recorded[f.Addr] != groundtruth.RoleFuncEntry {
				t.Errorf("func %s endbr role = %v", f.Name, recorded[f.Addr])
			}
		} else if found[f.Addr] {
			t.Errorf("func %s at %#x should not start with endbr", f.Name, f.Addr)
		}
	}
}

// verifyPLT checks the PLT map resolves the imports used by the program.
func verifyPLT(t *testing.T, res *Result, bin *elfx.Binary) {
	t.Helper()
	names := make(map[string]bool)
	for _, n := range bin.PLT {
		names[n] = true
	}
	for _, want := range []string{"__libc_start_main", "printf", "setjmp"} {
		if !names[want] {
			t.Errorf("PLT map missing %s (have %v)", want, names)
		}
	}
	for va := range bin.PLT {
		if !bin.InPLT(va) {
			t.Errorf("PLT entry %#x outside .plt bounds", va)
		}
	}
}

// verifyEHFrame checks FDE emission policy and LSDA wiring.
func verifyEHFrame(t *testing.T, res *Result, bin *elfx.Binary, cfg Config, spec *ProgSpec) {
	t.Helper()
	fdes, err := ehframe.Parse(bin.EHFrame, bin.EHFrameAddr, bin.PtrSize())
	if err != nil {
		t.Fatalf("eh_frame parse: %v", err)
	}
	entries := res.GT.Entries()
	starts := make(map[uint64]bool)
	lsdaCount := 0
	for _, f := range fdes {
		starts[f.PCBegin] = true
		if f.HasLSDA {
			lsdaCount++
		}
	}
	switch {
	case cfg.Compiler == GCC || cfg.Mode == x86.Mode64:
		// Every function (and every part block) has an FDE.
		for _, f := range res.GT.Funcs {
			if !starts[f.Addr] {
				t.Errorf("%s: no FDE for %s at %#x", cfg, f.Name, f.Addr)
			}
		}
	default:
		// Clang x86: only EH functions have FDEs.
		for _, f := range fdes {
			if !entries[f.PCBegin] {
				t.Errorf("%s: unexpected FDE at %#x", cfg, f.PCBegin)
			}
			if !f.HasLSDA {
				t.Errorf("%s: Clang x86 FDE without LSDA at %#x", cfg, f.PCBegin)
			}
		}
	}
	if spec.Lang == LangCPP && lsdaCount == 0 {
		t.Errorf("%s: C++ program produced no LSDA-carrying FDEs", cfg)
	}
	if spec.Lang == LangC && lsdaCount != 0 {
		t.Errorf("%s: C program produced %d LSDA FDEs", cfg, lsdaCount)
	}
	// Landing pads recorded in GT must lie inside their function's FDE.
	if spec.Lang == LangCPP {
		for _, e := range res.GT.Endbrs {
			if e.Role != groundtruth.RoleException {
				continue
			}
			covered := false
			for _, f := range fdes {
				if f.HasLSDA && e.Addr >= f.PCBegin && e.Addr < f.PCBegin+f.PCRange {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("%s: landing pad %#x not covered by any LSDA FDE", cfg, e.Addr)
			}
		}
	}
}

func TestStrippedHasNoSymtab(t *testing.T) {
	res := compileOrDie(t, testSpec(LangC), Config{Compiler: GCC, Mode: x86.Mode64, Opt: O2})
	ef, err := elf.NewFile(bytes.NewReader(res.Stripped))
	if err != nil {
		t.Fatal(err)
	}
	if ef.Section(".symtab") != nil {
		t.Fatal("stripped binary still has .symtab")
	}
	if ef.Section(".gcc_except_table") != nil && res.GT.Lang == "c" {
		// C programs produce no except table at all.
		t.Fatal("C binary has .gcc_except_table")
	}
	// The unstripped variant must expose the function symbols.
	ef2, err := elf.NewFile(bytes.NewReader(res.Image))
	if err != nil {
		t.Fatal(err)
	}
	syms, err := ef2.Symbols()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]elf.Symbol{}
	for _, s := range syms {
		byName[s.Name] = s
	}
	if _, ok := byName["main"]; !ok {
		t.Fatal("main symbol missing in unstripped image")
	}
	if _, ok := byName["cold_owner.cold"]; !ok {
		t.Fatal("cold fragment symbol missing")
	}
	if _, ok := byName["called_part_owner.part.0"]; !ok {
		t.Fatal("part fragment symbol missing")
	}
}

func TestGroundTruthShape(t *testing.T) {
	spec := testSpec(LangCPP)
	res := compileOrDie(t, spec, Config{Compiler: GCC, Mode: x86.Mode64, Opt: O2})
	gt := res.GT

	// _start and the regular functions are all present.
	wantFuncs := len(spec.Funcs) + 1 // + _start
	if len(gt.Funcs) != wantFuncs {
		t.Fatalf("GT has %d funcs, want %d", len(gt.Funcs), wantFuncs)
	}
	if len(gt.PartBlocks) != 2 {
		t.Fatalf("GT has %d part blocks, want 2", len(gt.PartBlocks))
	}
	entries := gt.Entries()
	for _, p := range gt.PartBlocks {
		if entries[p] {
			t.Errorf("part block %#x is also a GT entry", p)
		}
	}
	// Dead static functions are flagged.
	f, ok := gt.FuncAt(mustFind(t, gt, "dead_static"))
	if !ok || !f.Dead || !f.Static || f.HasEndbr {
		t.Fatalf("dead_static GT record wrong: %+v", f)
	}
	// The intrinsic has no endbr.
	f, _ = gt.FuncAt(mustFind(t, gt, "intrinsic_helper"))
	if f.HasEndbr || f.Static {
		t.Fatalf("intrinsic GT record wrong: %+v", f)
	}
	// Roles present: entry, indirect-return, exception.
	roles := map[groundtruth.EndbrRole]int{}
	for _, e := range gt.Endbrs {
		roles[e.Role]++
	}
	if roles[groundtruth.RoleFuncEntry] == 0 || roles[groundtruth.RoleIndirectReturn] == 0 || roles[groundtruth.RoleException] == 0 {
		t.Fatalf("missing endbr roles: %v", roles)
	}
	if roles[groundtruth.RoleException] != 2 {
		t.Fatalf("exception endbrs = %d, want 2", roles[groundtruth.RoleException])
	}
}

func mustFind(t *testing.T, gt *groundtruth.GT, name string) uint64 {
	t.Helper()
	for _, f := range gt.Funcs {
		if f.Name == name {
			return f.Addr
		}
	}
	t.Fatalf("function %s not in ground truth", name)
	return 0
}

func TestDeterministicOutput(t *testing.T) {
	spec := testSpec(LangC)
	cfg := Config{Compiler: Clang, Mode: x86.Mode32, PIE: true, Opt: O3}
	a := compileOrDie(t, spec, cfg)
	b := compileOrDie(t, spec, cfg)
	if !bytes.Equal(a.Image, b.Image) {
		t.Fatal("same spec+config produced different images")
	}
}

func TestConfigString(t *testing.T) {
	cfg := Config{Compiler: GCC, Mode: x86.Mode64, PIE: true, Opt: Ofast}
	if got := cfg.String(); got != "gcc-x86-64-pie-Ofast" {
		t.Fatalf("Config.String() = %q", got)
	}
	// 24 configurations per compiler (2 arch × 2 PIE × 6 opt), so 48 in
	// total across GCC and Clang — matching the paper's 8,136 ≈ 170×48
	// binaries.
	if len(AllConfigs()) != 48 {
		t.Fatalf("AllConfigs() returned %d configs, want 48", len(AllConfigs()))
	}
}

func TestSpecValidation(t *testing.T) {
	cases := map[string]*ProgSpec{
		"empty":        {Name: "x"},
		"noname":       {Name: "x", Funcs: []FuncSpec{{}}},
		"dup":          {Name: "x", Funcs: []FuncSpec{{Name: "a"}, {Name: "a"}}},
		"bad-call":     {Name: "x", Funcs: []FuncSpec{{Name: "a", Calls: []int{9}}}},
		"bad-tail":     {Name: "x", Funcs: []FuncSpec{{Name: "a", TailCalls: []int{0}}}},
		"eh-in-c":      {Name: "x", Lang: LangC, Funcs: []FuncSpec{{Name: "a", HasEH: true}}},
		"bad-ir":       {Name: "x", Funcs: []FuncSpec{{Name: "a", IndirectReturnCall: "nope"}}},
		"cold-sharing": {Name: "x", Funcs: []FuncSpec{{Name: "a"}, {Name: "b", SharedColdWith: []int{0}}}},
	}
	for name, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: want validation error", name)
		}
	}
	if _, err := Compile(&ProgSpec{}, Config{Compiler: GCC, Mode: x86.Mode64, Opt: O0}); err == nil {
		t.Error("Compile of invalid spec should fail")
	}
}

func TestCompileRejectsBadConfig(t *testing.T) {
	spec := testSpec(LangC)
	if _, err := Compile(spec, Config{}); err == nil {
		t.Fatal("want error for zero config")
	}
	if _, err := Compile(spec, Config{Compiler: GCC, Mode: x86.Mode64, Opt: OptLevel(99)}); err == nil {
		t.Fatal("want error for bad opt level")
	}
}

func TestIndirectReturnList(t *testing.T) {
	for _, n := range []string{"setjmp", "_setjmp", "sigsetjmp", "__sigsetjmp", "vfork"} {
		if !IsIndirectReturnFunc(n) {
			t.Errorf("%s should be indirect-return", n)
		}
	}
	if IsIndirectReturnFunc("longjmp") {
		t.Error("longjmp is not an indirect-return function")
	}
	if len(IndirectReturnFuncs) != 5 {
		t.Errorf("paper defines 5 indirect-return functions, list has %d", len(IndirectReturnFuncs))
	}
}

func TestSplitPLTLayout(t *testing.T) {
	res := compileOrDie(t, testSpec(LangC), Config{Compiler: GCC, Mode: x86.Mode64, Opt: O2})
	ef, err := elf.NewFile(bytes.NewReader(res.Stripped))
	if err != nil {
		t.Fatal(err)
	}
	plt := ef.Section(".plt")
	pltSec := ef.Section(".plt.sec")
	if plt == nil || pltSec == nil {
		t.Fatal("split PLT sections missing")
	}
	if pltSec.Addr <= plt.Addr {
		t.Errorf(".plt.sec at %#x should follow .plt at %#x", pltSec.Addr, plt.Addr)
	}
	// The loader must resolve .plt.sec entries to import names, and all
	// text call sites into the PLT must target .plt.sec.
	bin, err := elfx.Load(res.Stripped)
	if err != nil {
		t.Fatal(err)
	}
	if bin.PLTSecEnd == 0 {
		t.Fatal("loader did not record .plt.sec bounds")
	}
	foundSec := false
	for va, name := range bin.PLT {
		if va >= bin.PLTSecStart && va < bin.PLTSecEnd && name == "printf" {
			foundSec = true
		}
	}
	if !foundSec {
		t.Error("printf not resolved to a .plt.sec entry")
	}
	callsIntoSec := 0
	x86.LinearSweep(bin.Text, bin.TextAddr, bin.Mode, func(inst *x86.Inst) bool {
		if inst.Class == x86.ClassCallRel && inst.HasTarget && bin.InPLT(inst.Target) {
			if inst.Target < bin.PLTSecStart || inst.Target >= bin.PLTSecEnd {
				t.Errorf("call at %#x targets lazy .plt stub %#x instead of .plt.sec", inst.Addr, inst.Target)
			}
			callsIntoSec++
		}
		return true
	})
	if callsIntoSec == 0 {
		t.Error("no PLT calls found in text")
	}
}
