// Package synth is a synthetic CET-aware compiler back-end: it turns
// abstract program specifications into complete CET-enabled ELF binaries
// with precisely known ground truth.
//
// The generator models the code-shape behaviours of GCC 10 and Clang 13
// that the FunSeeker paper (Kim et al., DSN 2022) builds on:
//
//   - an end-branch instruction at every non-static (or address-taken)
//     function entry;
//   - an end-branch after each call to an indirect-return function
//     (setjmp family);
//   - an end-branch at every C++ exception landing pad, described by an
//     LSDA in .gcc_except_table referenced from a .eh_frame FDE;
//   - NOTRACK-prefixed indirect jumps for bounds-checked switch tables;
//   - .cold / .part fragments split out of their parent function;
//   - FDE emission differences: GCC covers every function, Clang omits
//     FDEs for non-EH functions in 32-bit binaries;
//   - frame-pointer usage and function alignment varying by optimization
//     level.
//
// A binary is produced for a Config — the cross product the paper uses:
// {GCC, Clang} × {x86, x86-64} × {PIE, no-PIE} × {O0..Ofast}.
package synth

import (
	"fmt"

	"github.com/funseeker/funseeker/internal/x86"
)

// Compiler identifies the modeled toolchain.
type Compiler int

// Modeled compilers.
const (
	// GCC models GCC 10 code generation.
	GCC Compiler = iota + 1
	// Clang models Clang 13 code generation.
	Clang
)

// String returns "gcc" or "clang".
func (c Compiler) String() string {
	switch c {
	case GCC:
		return "gcc"
	case Clang:
		return "clang"
	default:
		return fmt.Sprintf("Compiler(%d)", int(c))
	}
}

// OptLevel is the modeled optimization level.
type OptLevel int

// Optimization levels, matching the paper's six configurations.
const (
	O0 OptLevel = iota + 1
	O1
	O2
	O3
	Os
	Ofast
)

var optNames = map[OptLevel]string{
	O0: "O0", O1: "O1", O2: "O2", O3: "O3", Os: "Os", Ofast: "Ofast",
}

// String returns the conventional flag spelling, e.g. "O2".
func (o OptLevel) String() string {
	if s, ok := optNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OptLevel(%d)", int(o))
}

// AllOptLevels lists every modeled level in the paper's order.
func AllOptLevels() []OptLevel {
	return []OptLevel{O0, O1, O2, O3, Os, Ofast}
}

// usesFramePointer reports whether the level keeps a frame pointer.
func (o OptLevel) usesFramePointer() bool { return o == O0 || o == O1 }

// alignsFunctions reports whether functions are aligned to 16 bytes.
func (o OptLevel) alignsFunctions() bool {
	return o == O2 || o == O3 || o == Ofast
}

// bodyScale scales filler-code size: unoptimized code is bulkier.
func (o OptLevel) bodyScale() int {
	switch o {
	case O0:
		return 3
	case O1:
		return 2
	case Os:
		return 1
	default:
		return 2
	}
}

// Config is one build configuration.
type Config struct {
	// Compiler selects the modeled toolchain.
	Compiler Compiler
	// Mode selects x86 (Mode32) or x86-64 (Mode64).
	Mode x86.Mode
	// PIE selects a position-independent executable.
	PIE bool
	// Opt is the optimization level.
	Opt OptLevel
	// ManualEndbr models the -mmanual-endbr compiler option (paper §VI):
	// automatic end-branch insertion is disabled and only functions whose
	// address is actually taken (the targets an IBT-enforced program
	// cannot run without) keep their marker. Not part of AllConfigs; used
	// by the dedicated ablation experiment.
	ManualEndbr bool
	// NoCET models a toolchain run without -fcf-protection: no end-branch
	// instructions anywhere (function entries, PLT stubs, landing pads,
	// after indirect-return calls) and no IBT feature bit in the GNU
	// property note. Exception metadata (.eh_frame/.gcc_except_table) is
	// still emitted per the toolchain's normal FDE policy, which is what
	// makes these binaries the FDE-only workload of configuration ⑤. Not
	// part of AllConfigs; used by the EH-fusion experiments and the
	// diffcheck generator.
	NoCET bool
}

// String renders e.g. "gcc-x86-64-pie-O2".
func (c Config) String() string {
	pie := "nopie"
	if c.PIE {
		pie = "pie"
	}
	s := fmt.Sprintf("%s-%s-%s-%s", c.Compiler, c.Mode, pie, c.Opt)
	if c.ManualEndbr {
		s += "-manual-endbr"
	}
	if c.NoCET {
		s += "-nocet"
	}
	return s
}

// PtrSize returns the pointer size in bytes.
func (c Config) PtrSize() int {
	if c.Mode == x86.Mode64 {
		return 8
	}
	return 4
}

// Validate checks the configuration fields.
func (c Config) Validate() error {
	if c.Compiler != GCC && c.Compiler != Clang {
		return fmt.Errorf("synth: bad compiler %d", int(c.Compiler))
	}
	if c.Mode != x86.Mode32 && c.Mode != x86.Mode64 {
		return fmt.Errorf("synth: bad mode %d", int(c.Mode))
	}
	if _, ok := optNames[c.Opt]; !ok {
		return fmt.Errorf("synth: bad optimization level %d", int(c.Opt))
	}
	return nil
}

// AllConfigs enumerates every build configuration: 2 compilers × 2
// architectures × {PIE, no-PIE} × 6 optimization levels = 48 (the paper
// counts 24 per compiler).
func AllConfigs() []Config {
	configs := make([]Config, 0, 48)
	for _, comp := range []Compiler{GCC, Clang} {
		for _, mode := range []x86.Mode{x86.Mode32, x86.Mode64} {
			for _, pie := range []bool{false, true} {
				for _, opt := range AllOptLevels() {
					configs = append(configs, Config{
						Compiler: comp, Mode: mode, PIE: pie, Opt: opt,
					})
				}
			}
		}
	}
	return configs
}

// emitsFDEFor reports whether this toolchain emits a .eh_frame FDE for a
// function. GCC covers every function on both architectures. Clang does
// the same on x86-64 but, for 32-bit targets, emits FDEs only for
// functions that actually need exception handling — the behaviour
// responsible for FETCH's and Ghidra's recall collapse on x86 Clang
// binaries (paper §V-C).
func (c Config) emitsFDEFor(hasEH bool) bool {
	if c.Compiler == GCC {
		return true
	}
	if c.Mode == x86.Mode64 {
		return true
	}
	return hasEH
}

// splitsColdParts reports whether the toolchain splits .cold/.part
// fragments at this level (GCC behaviour at -O2 and above).
func (c Config) splitsColdParts() bool {
	return c.Compiler == GCC && (c.Opt == O2 || c.Opt == O3 || c.Opt == Ofast || c.Opt == Os)
}
