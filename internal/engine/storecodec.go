package engine

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/elfx"
)

// storeKey flattens a cacheKey into the byte key the persistent store
// is addressed by: 32 hash bytes, one option byte, one arch byte. The
// layout is part of the on-disk format — changing it orphans (but does
// not corrupt) existing stores.
func storeKey(k cacheKey) []byte {
	key := make([]byte, 0, len(k.sum)+2)
	key = append(key, k.sum[:]...)
	key = append(key, k.opts, byte(k.arch))
	return key
}

// storeKeyLen is the exact encoded length of a store key.
const storeKeyLen = sha256.Size + 2

// parseStoreKey is storeKey's inverse; the replication path uses it to
// recover the cache identity of a result arriving from another replica.
func parseStoreKey(b []byte) (cacheKey, error) {
	if len(b) != storeKeyLen {
		return cacheKey{}, fmt.Errorf("store key is %d bytes, want %d", len(b), storeKeyLen)
	}
	var k cacheKey
	copy(k.sum[:], b[:sha256.Size])
	k.opts = b[sha256.Size]
	k.arch = elfx.Arch(b[sha256.Size+1])
	return k, nil
}

// storedResultVersion gates the value codec; bump it when storedResult
// changes incompatibly, and old records decode as misses instead of as
// garbage.
const storedResultVersion = 1

// storedResult is the persistent form of one analysis result: the full
// Report plus the service metadata worth keeping across restarts. JSON
// keeps it dependency-free, debuggable with jq against a segment file,
// and tolerant of field additions.
type storedResult struct {
	Version int    `json:"v"`
	Arch    string `json:"arch"`

	Entries         []uint64 `json:"entries"`
	Endbrs          []uint64 `json:"endbrs,omitempty"`
	CallTargets     []uint64 `json:"call_targets,omitempty"`
	JumpTargets     []uint64 `json:"jump_targets,omitempty"`
	TailCallTargets []uint64 `json:"tail_call_targets,omitempty"`

	FilteredIndirectReturn int      `json:"filtered_indirect_return,omitempty"`
	FilteredLandingPads    int      `json:"filtered_landing_pads,omitempty"`
	FusedFDEEntries        int      `json:"fused_fde_entries,omitempty"`
	Warnings               []string `json:"warnings,omitempty"`

	SHA256      string `json:"sha256"`
	BinaryBytes int    `json:"binary_bytes"`
}

// encodeStoredResult serializes a completed result for the store.
func encodeStoredResult(res *Result) ([]byte, error) {
	r := res.Report
	return json.Marshal(storedResult{
		Version:                storedResultVersion,
		Arch:                   r.Arch,
		Entries:                r.Entries,
		Endbrs:                 r.Endbrs,
		CallTargets:            r.CallTargets,
		JumpTargets:            r.JumpTargets,
		TailCallTargets:        r.TailCallTargets,
		FilteredIndirectReturn: r.FilteredIndirectReturn,
		FilteredLandingPads:    r.FilteredLandingPads,
		FusedFDEEntries:        r.FusedFDEEntries,
		Warnings:               r.Warnings,
		SHA256:                 res.SHA256,
		BinaryBytes:            res.BinaryBytes,
	})
}

// decodeStoredResult parses a stored value back into a Result. The
// returned Result carries no cache/source metadata — the caller stamps
// Cached/CacheSource/Elapsed for its own request.
func decodeStoredResult(val []byte) (*Result, error) {
	var sr storedResult
	if err := json.Unmarshal(val, &sr); err != nil {
		return nil, err
	}
	if sr.Version != storedResultVersion {
		return nil, fmt.Errorf("stored result version %d, want %d", sr.Version, storedResultVersion)
	}
	if len(sr.SHA256) != 64 {
		return nil, fmt.Errorf("stored result with malformed sha256 %q", sr.SHA256)
	}
	return &Result{
		Report: &core.Report{
			Arch:                   sr.Arch,
			Entries:                sr.Entries,
			Endbrs:                 sr.Endbrs,
			CallTargets:            sr.CallTargets,
			JumpTargets:            sr.JumpTargets,
			TailCallTargets:        sr.TailCallTargets,
			FilteredIndirectReturn: sr.FilteredIndirectReturn,
			FilteredLandingPads:    sr.FilteredLandingPads,
			FusedFDEEntries:        sr.FusedFDEEntries,
			Warnings:               sr.Warnings,
		},
		SHA256:      sr.SHA256,
		BinaryBytes: sr.BinaryBytes,
	}, nil
}
