package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// testBinaries compiles n small distinct CET binaries once per process.
var testBinariesMu sync.Mutex
var testBinariesCache = map[int][][]byte{}

func testBinaries(tb testing.TB, n int) [][]byte {
	tb.Helper()
	testBinariesMu.Lock()
	defer testBinariesMu.Unlock()
	if got, ok := testBinariesCache[n]; ok {
		return got
	}
	specs := corpus.Generate(corpus.Coreutils, corpus.Options{Scale: 0.1, Seed: 77, Programs: n})
	if len(specs) < n {
		tb.Fatalf("corpus generated %d specs, want %d", len(specs), n)
	}
	cfg := synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2}
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		res, err := synth.Compile(specs[i], cfg)
		if err != nil {
			tb.Fatalf("compile: %v", err)
		}
		out[i] = res.Stripped
	}
	testBinariesCache[n] = out
	return out
}

func TestAnalyzeCacheHit(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	e := New(Config{Jobs: 2})

	first, err := e.Analyze(context.Background(), raw, core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first analysis claims to be cached")
	}
	if len(first.Report.Entries) == 0 {
		t.Fatal("no entries identified")
	}

	second, err := e.Analyze(context.Background(), raw, core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical bytes were re-analyzed instead of served from cache")
	}
	if second.Report != first.Report {
		t.Fatal("cache returned a different report value")
	}
	if second.SHA256 != first.SHA256 || len(second.SHA256) != 64 {
		t.Fatalf("hash mismatch: %q vs %q", second.SHA256, first.SHA256)
	}

	st := e.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 1 || st.Analyzed != 1 {
		t.Fatalf("stats = misses %d hits %d analyzed %d, want 1/1/1", st.CacheMisses, st.CacheHits, st.Analyzed)
	}
	if st.Analysis.Sweep.Computes != 1 {
		t.Fatalf("aggregate sweep computes = %d, want 1", st.Analysis.Sweep.Computes)
	}
}

func TestAnalyzeOptionsKeyedSeparately(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	e := New(Config{Jobs: 2})
	ctx := context.Background()

	if _, err := e.Analyze(ctx, raw, core.Config1); err != nil {
		t.Fatal(err)
	}
	r4, err := e.Analyze(ctx, raw, core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Cached {
		t.Fatal("different options must not share a cache entry")
	}
	if st := e.Stats(); st.CacheMisses != 2 {
		t.Fatalf("misses = %d, want 2", st.CacheMisses)
	}
}

func TestAnalyzeNotELF(t *testing.T) {
	e := New(Config{})
	_, err := e.Analyze(context.Background(), []byte("definitely not an ELF image"), core.Config4)
	if !errors.Is(err, elfx.ErrNotELF) {
		t.Fatalf("err = %v, want ErrNotELF", err)
	}
	if st := e.Stats(); st.Failures != 1 {
		t.Fatalf("failures = %d, want 1", st.Failures)
	}
}

func TestAnalyzePreCanceled(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	e := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Analyze(ctx, raw, core.Config4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := e.Stats()
	if st.Canceled == 0 {
		t.Fatal("canceled counter not incremented")
	}
	if st.Analyzed != 0 {
		t.Fatalf("canceled request still analyzed %d binaries", st.Analyzed)
	}
}

// TestConcurrentCacheHammer drives the LRU from many goroutines with a
// budget small enough to force evictions; run with -race this exercises
// every lock in the engine.
func TestConcurrentCacheHammer(t *testing.T) {
	bins := testBinaries(t, 4)

	// Budget for roughly two of the four reports: constant churn.
	probe := New(Config{Jobs: 2})
	r, err := probe.Analyze(context.Background(), bins[0], core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Jobs: 4, CacheBytes: 2 * entrySize(r.Report)})

	const goroutines = 16
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				raw := bins[rng.Intn(len(bins))]
				res, err := e.Analyze(context.Background(), raw, core.Config4)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %w", g, i, err)
					return
				}
				if len(res.Report.Entries) == 0 {
					errs <- fmt.Errorf("goroutine %d iter %d: empty report", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := e.Stats()
	total := st.CacheHits + st.CacheMisses + st.Coalesced
	if total != goroutines*iters {
		t.Fatalf("hits %d + misses %d + coalesced %d = %d, want %d",
			st.CacheHits, st.CacheMisses, st.Coalesced, total, goroutines*iters)
	}
	if st.CacheMisses < 4 {
		t.Fatalf("misses = %d, want at least one per distinct binary", st.CacheMisses)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite an undersized budget")
	}
	if st.CacheBytes > st.CacheCapacity {
		t.Fatalf("cache size %d exceeds capacity %d", st.CacheBytes, st.CacheCapacity)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after quiesce", st.InFlight)
	}
}

func TestFilesBatch(t *testing.T) {
	bins := testBinaries(t, 3)
	dir := t.TempDir()

	// A nested corpus layout with non-ELF clutter that the walk must skip.
	sub := filepath.Join(dir, "corpus", "gcc-O2")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i, raw := range bins[:2] {
		p := filepath.Join(sub, fmt.Sprintf("prog%d", i))
		if err := os.WriteFile(p, raw, 0o755); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := os.WriteFile(filepath.Join(sub, "prog0.gt.json"), []byte(`{"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// One explicitly-named file outside the directory.
	solo := filepath.Join(dir, "solo")
	if err := os.WriteFile(solo, bins[2], 0o755); err != nil {
		t.Fatal(err)
	}

	paths, err := Expand([]string{filepath.Join(dir, "corpus"), solo})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("Expand found %d files (%v), want 3", len(paths), paths)
	}

	e := New(Config{Jobs: 4})
	var got []string
	err = e.Files(context.Background(), paths, core.Config4, func(fr FileResult) error {
		if fr.Err != nil {
			return fr.Err
		}
		if len(fr.Result.Report.Entries) == 0 {
			return fmt.Errorf("%s: empty report", fr.Path)
		}
		got = append(got, fr.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(paths) {
		t.Fatalf("delivered %d results, want %d", len(got), len(paths))
	}
	for i := range got {
		if got[i] != paths[i] {
			t.Fatalf("out-of-order delivery: got[%d] = %s, want %s", i, got[i], paths[i])
		}
	}
}

func TestFilesPerFileErrorDoesNotAbort(t *testing.T) {
	bins := testBinaries(t, 1)
	dir := t.TempDir()
	good := filepath.Join(dir, "good")
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(good, bins[0], 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	e := New(Config{Jobs: 2})
	var oks, fails int
	err := e.Files(context.Background(), []string{bad, good}, core.Config4, func(fr FileResult) error {
		if fr.Err != nil {
			fails++
		} else {
			oks++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if oks != 1 || fails != 1 {
		t.Fatalf("oks %d fails %d, want 1/1", oks, fails)
	}
}

func TestFilesCallbackStopsBatch(t *testing.T) {
	bins := testBinaries(t, 3)
	dir := t.TempDir()
	var paths []string
	for i, raw := range bins {
		p := filepath.Join(dir, fmt.Sprintf("p%d", i))
		if err := os.WriteFile(p, raw, 0o755); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	e := New(Config{Jobs: 1})
	stop := errors.New("stop after first")
	calls := 0
	err := e.Files(context.Background(), paths, core.Config4, func(fr FileResult) error {
		calls++
		return stop
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after requesting a stop", calls)
	}
}
