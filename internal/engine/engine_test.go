package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/obs"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// testBinaries compiles n small distinct CET binaries once per process.
var testBinariesMu sync.Mutex
var testBinariesCache = map[int][][]byte{}

func testBinaries(tb testing.TB, n int) [][]byte {
	tb.Helper()
	testBinariesMu.Lock()
	defer testBinariesMu.Unlock()
	if got, ok := testBinariesCache[n]; ok {
		return got
	}
	specs := corpus.Generate(corpus.Coreutils, corpus.Options{Scale: 0.1, Seed: 77, Programs: n})
	if len(specs) < n {
		tb.Fatalf("corpus generated %d specs, want %d", len(specs), n)
	}
	cfg := synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2}
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		res, err := synth.Compile(specs[i], cfg)
		if err != nil {
			tb.Fatalf("compile: %v", err)
		}
		out[i] = res.Stripped
	}
	testBinariesCache[n] = out
	return out
}

func TestAnalyzeCacheHit(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	e := newTestEngine(t, Config{Jobs: 2})

	first, err := e.Analyze(context.Background(), raw, core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first analysis claims to be cached")
	}
	if len(first.Report.Entries) == 0 {
		t.Fatal("no entries identified")
	}

	second, err := e.Analyze(context.Background(), raw, core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical bytes were re-analyzed instead of served from cache")
	}
	if second.Report != first.Report {
		t.Fatal("cache returned a different report value")
	}
	if second.SHA256 != first.SHA256 || len(second.SHA256) != 64 {
		t.Fatalf("hash mismatch: %q vs %q", second.SHA256, first.SHA256)
	}

	st := e.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 1 || st.Analyzed != 1 {
		t.Fatalf("stats = misses %d hits %d analyzed %d, want 1/1/1", st.CacheMisses, st.CacheHits, st.Analyzed)
	}
	if st.Analysis.Sweep.Computes != 1 {
		t.Fatalf("aggregate sweep computes = %d, want 1", st.Analysis.Sweep.Computes)
	}
}

func TestAnalyzeOptionsKeyedSeparately(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	e := newTestEngine(t, Config{Jobs: 2})
	ctx := context.Background()

	if _, err := e.Analyze(ctx, raw, core.Config1); err != nil {
		t.Fatal(err)
	}
	r4, err := e.Analyze(ctx, raw, core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Cached {
		t.Fatal("different options must not share a cache entry")
	}
	if st := e.Stats(); st.CacheMisses != 2 {
		t.Fatalf("misses = %d, want 2", st.CacheMisses)
	}
}

func TestAnalyzeNotELF(t *testing.T) {
	e := newTestEngine(t, Config{})
	_, err := e.Analyze(context.Background(), []byte("definitely not an ELF image"), core.Config4)
	if !errors.Is(err, elfx.ErrNotELF) {
		t.Fatalf("err = %v, want ErrNotELF", err)
	}
	if st := e.Stats(); st.Failures != 1 {
		t.Fatalf("failures = %d, want 1", st.Failures)
	}
}

func TestAnalyzePreCanceled(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	e := newTestEngine(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Analyze(ctx, raw, core.Config4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := e.Stats()
	if st.Canceled == 0 {
		t.Fatal("canceled counter not incremented")
	}
	if st.Analyzed != 0 {
		t.Fatalf("canceled request still analyzed %d binaries", st.Analyzed)
	}
}

// TestConcurrentCacheHammer drives the LRU from many goroutines with a
// budget small enough to force evictions; run with -race this exercises
// every lock in the engine.
func TestConcurrentCacheHammer(t *testing.T) {
	bins := testBinaries(t, 4)

	// Budget for roughly two of the four reports: constant churn.
	probe := newTestEngine(t, Config{Jobs: 2})
	r, err := probe.Analyze(context.Background(), bins[0], core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, Config{Jobs: 4, CacheBytes: 2 * entrySize(r.Report)})

	const goroutines = 16
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				raw := bins[rng.Intn(len(bins))]
				res, err := e.Analyze(context.Background(), raw, core.Config4)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %w", g, i, err)
					return
				}
				if len(res.Report.Entries) == 0 {
					errs <- fmt.Errorf("goroutine %d iter %d: empty report", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := e.Stats()
	total := st.CacheHits + st.CacheMisses + st.Coalesced
	if total != goroutines*iters {
		t.Fatalf("hits %d + misses %d + coalesced %d = %d, want %d",
			st.CacheHits, st.CacheMisses, st.Coalesced, total, goroutines*iters)
	}
	if st.CacheMisses < 4 {
		t.Fatalf("misses = %d, want at least one per distinct binary", st.CacheMisses)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite an undersized budget")
	}
	if st.CacheBytes > st.CacheCapacity {
		t.Fatalf("cache size %d exceeds capacity %d", st.CacheBytes, st.CacheCapacity)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after quiesce", st.InFlight)
	}
}

func TestFilesBatch(t *testing.T) {
	bins := testBinaries(t, 3)
	dir := t.TempDir()

	// A nested corpus layout with non-ELF clutter that the walk must skip.
	sub := filepath.Join(dir, "corpus", "gcc-O2")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i, raw := range bins[:2] {
		p := filepath.Join(sub, fmt.Sprintf("prog%d", i))
		if err := os.WriteFile(p, raw, 0o755); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := os.WriteFile(filepath.Join(sub, "prog0.gt.json"), []byte(`{"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// One explicitly-named file outside the directory.
	solo := filepath.Join(dir, "solo")
	if err := os.WriteFile(solo, bins[2], 0o755); err != nil {
		t.Fatal(err)
	}

	paths, err := Expand([]string{filepath.Join(dir, "corpus"), solo})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("Expand found %d files (%v), want 3", len(paths), paths)
	}

	e := newTestEngine(t, Config{Jobs: 4})
	var got []string
	err = e.Files(context.Background(), paths, core.Config4, func(fr FileResult) error {
		if fr.Err != nil {
			return fr.Err
		}
		if len(fr.Result.Report.Entries) == 0 {
			return fmt.Errorf("%s: empty report", fr.Path)
		}
		got = append(got, fr.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(paths) {
		t.Fatalf("delivered %d results, want %d", len(got), len(paths))
	}
	for i := range got {
		if got[i] != paths[i] {
			t.Fatalf("out-of-order delivery: got[%d] = %s, want %s", i, got[i], paths[i])
		}
	}
}

func TestFilesPerFileErrorDoesNotAbort(t *testing.T) {
	bins := testBinaries(t, 1)
	dir := t.TempDir()
	good := filepath.Join(dir, "good")
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(good, bins[0], 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	e := newTestEngine(t, Config{Jobs: 2})
	var oks, fails int
	err := e.Files(context.Background(), []string{bad, good}, core.Config4, func(fr FileResult) error {
		if fr.Err != nil {
			fails++
		} else {
			oks++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if oks != 1 || fails != 1 {
		t.Fatalf("oks %d fails %d, want 1/1", oks, fails)
	}
}

func TestFilesCallbackStopsBatch(t *testing.T) {
	bins := testBinaries(t, 3)
	dir := t.TempDir()
	var paths []string
	for i, raw := range bins {
		p := filepath.Join(dir, fmt.Sprintf("p%d", i))
		if err := os.WriteFile(p, raw, 0o755); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	e := newTestEngine(t, Config{Jobs: 1})
	stop := errors.New("stop after first")
	calls := 0
	err := e.Files(context.Background(), paths, core.Config4, func(fr FileResult) error {
		calls++
		return stop
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after requesting a stop", calls)
	}
}

// TestAnalyzePanicUnblocksWaiters is the regression test for the
// flight-map cleanup: a panic inside the cold analysis must (1) surface
// as an error on the panicking request, not crash the process, (2)
// unblock every coalesced waiter with that error, and (3) leave the key
// reusable so the next request runs a fresh analysis.
func TestAnalyzePanicUnblocksWaiters(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	e := newTestEngine(t, Config{Jobs: 2})

	entered := make(chan struct{})
	release := make(chan struct{})
	var fired atomic.Bool
	e.testHookCold = func([]byte) {
		if fired.CompareAndSwap(false, true) {
			close(entered)
			<-release
			panic("injected analysis panic")
		}
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.Analyze(context.Background(), raw, core.Config4)
		leaderErr <- err
	}()
	<-entered // the leader holds the flight-map key and is mid-"analysis"

	const waiters = 3
	waiterErrs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := e.Analyze(context.Background(), raw, core.Config4)
			waiterErrs <- err
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the waiters coalesce onto the flight entry
	close(release)                    // boom

	deadline := time.After(5 * time.Second)
	collect := func(ch chan error, who string) error {
		select {
		case err := <-ch:
			return err
		case <-deadline:
			t.Fatalf("%s still blocked after the panic — flight map not cleaned up", who)
			return nil
		}
	}
	if err := collect(leaderErr, "panicking request"); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("leader err = %v, want a recovered panic error", err)
	}
	for i := 0; i < waiters; i++ {
		if err := collect(waiterErrs, fmt.Sprintf("waiter %d", i)); err == nil {
			t.Fatalf("waiter %d got a nil error from a panicked analysis", i)
		}
	}

	e.flightMu.Lock()
	stranded := len(e.flight)
	e.flightMu.Unlock()
	if stranded != 0 {
		t.Fatalf("%d flight entries stranded after the panic", stranded)
	}

	// The key is reusable: the hook only fires once, so this runs clean.
	res, err := e.Analyze(context.Background(), raw, core.Config4)
	if err != nil {
		t.Fatalf("re-analysis after panic: %v", err)
	}
	if res.Cached || len(res.Report.Entries) == 0 {
		t.Fatalf("re-analysis res = cached %v, %d entries; want a fresh full report", res.Cached, len(res.Report.Entries))
	}

	st := e.Stats()
	if st.Failures != 1+waiters {
		t.Fatalf("failures = %d, want %d (panicking request + every waiter)", st.Failures, 1+waiters)
	}
	if st.Analyzed != 1 || st.CacheMisses != 1 {
		t.Fatalf("analyzed/misses = %d/%d, want 1/1", st.Analyzed, st.CacheMisses)
	}
	if sum := st.CacheHits + st.StoreHits + st.CacheMisses + st.Coalesced + st.Canceled + st.Failures; sum != st.Requests {
		t.Fatalf("counter sum %d != requests %d", sum, st.Requests)
	}
}

// TestCoalescedAndHitElapsed pins the Elapsed/CacheSource contract: a
// coalesced waiter reports the wall clock it actually blocked for (not
// zero), and an LRU hit reports the (small, nonzero) lookup cost.
func TestCoalescedAndHitElapsed(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	e := newTestEngine(t, Config{Jobs: 2})

	entered := make(chan struct{})
	release := make(chan struct{})
	var fired atomic.Bool
	e.testHookCold = func([]byte) {
		if fired.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := e.Analyze(context.Background(), raw, core.Config4)
		leaderDone <- err
	}()
	<-entered

	type out struct {
		res *Result
		err error
	}
	waiterDone := make(chan out, 1)
	go func() {
		res, err := e.Analyze(context.Background(), raw, core.Config4)
		waiterDone <- out{res, err}
	}()
	const hold = 50 * time.Millisecond
	time.Sleep(hold)
	close(release)

	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	w := <-waiterDone
	if w.err != nil {
		t.Fatal(w.err)
	}
	if !w.res.Cached {
		t.Fatal("second identical request was not served from cache/coalescing")
	}
	if w.res.CacheSource != "coalesced" && w.res.CacheSource != "lru" {
		t.Fatalf("CacheSource = %q", w.res.CacheSource)
	}
	if w.res.Elapsed <= 0 {
		t.Fatalf("waiter Elapsed = %v, want the real blocking wait", w.res.Elapsed)
	}
	// The common case — the waiter coalesced — blocked for most of the
	// hold window.
	if w.res.CacheSource == "coalesced" && w.res.Elapsed < hold/5 {
		t.Fatalf("coalesced Elapsed = %v, want roughly the %v analysis hold", w.res.Elapsed, hold)
	}

	hit, err := e.Analyze(context.Background(), raw, core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	if hit.CacheSource != "lru" || !hit.Cached {
		t.Fatalf("cache hit source = %q cached %v, want lru/true", hit.CacheSource, hit.Cached)
	}
	if hit.Elapsed <= 0 {
		t.Fatalf("cache-hit Elapsed = %v, want the (nonzero) lookup cost", hit.Elapsed)
	}
}

// TestCounterConsistency is the property-style invariant check over a
// randomized concurrent workload mixing successes, cache hits,
// coalesced duplicates, malformed inputs, and canceled contexts:
//
//	analyzed == cache_misses
//	hits + misses + coalesced + canceled + failures == requests
//
// A double count anywhere in the retry/coalesce loop breaks one of the
// sums.
func TestCounterConsistency(t *testing.T) {
	bins := testBinaries(t, 3)
	junk := [][]byte{
		[]byte("not an elf at all"),
		{},
		[]byte("\x7fELF but truncated"),
	}
	e := newTestEngine(t, Config{Jobs: 3})

	const goroutines = 12
	const iters = 40
	var issued atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				var raw []byte
				switch rng.Intn(10) {
				case 0, 1: // malformed input -> failure
					raw = junk[rng.Intn(len(junk))]
				case 2: // pre-canceled context -> canceled
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					cancel()
					raw = bins[rng.Intn(len(bins))]
				case 3: // already-expired deadline -> canceled
					var cancel context.CancelFunc
					ctx, cancel = context.WithDeadline(ctx, time.Now().Add(-time.Second))
					defer cancel()
					raw = bins[rng.Intn(len(bins))]
				default: // good binary -> hit, miss, or coalesced
					raw = bins[rng.Intn(len(bins))]
				}
				issued.Add(1)
				_, _ = e.Analyze(ctx, raw, core.Config4)
			}
		}(g)
	}
	wg.Wait()

	st := e.Stats()
	if st.Requests != issued.Load() {
		t.Fatalf("requests = %d, issued %d", st.Requests, issued.Load())
	}
	if st.Analyzed != st.CacheMisses {
		t.Fatalf("analyzed %d != cache_misses %d", st.Analyzed, st.CacheMisses)
	}
	sum := st.CacheHits + st.StoreHits + st.CacheMisses + st.Coalesced + st.Canceled + st.Failures
	if sum != st.Requests {
		t.Fatalf("hits %d + store %d + misses %d + coalesced %d + canceled %d + failures %d = %d, want requests %d",
			st.CacheHits, st.StoreHits, st.CacheMisses, st.Coalesced, st.Canceled, st.Failures, sum, st.Requests)
	}
	// The workload genuinely exercised each class.
	if st.CacheMisses == 0 || st.CacheHits == 0 || st.Canceled == 0 || st.Failures == 0 {
		t.Fatalf("degenerate workload: misses %d hits %d canceled %d failures %d",
			st.CacheMisses, st.CacheHits, st.Canceled, st.Failures)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after quiesce", st.InFlight)
	}
}

// TestStageLatencyHistograms checks the engine feeds its per-stage
// histograms: after one cold analysis the sweep stage has a sample and
// the rendered table mentions it.
func TestStageLatencyHistograms(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	reg := obs.NewRegistry()
	e := newTestEngine(t, Config{Jobs: 1, Registry: reg})
	if _, err := e.Analyze(context.Background(), raw, core.Config4); err != nil {
		t.Fatal(err)
	}

	snaps := e.StageLatencies()
	if snaps["sweep"].Count != 1 {
		t.Fatalf("sweep histogram count = %d, want 1", snaps["sweep"].Count)
	}
	if snaps["analyze"].Count != 1 || snaps["queue-wait"].Count != 1 {
		t.Fatalf("analyze/queue counts = %d/%d, want 1/1", snaps["analyze"].Count, snaps["queue-wait"].Count)
	}

	table := e.StageLatencyTable()
	for _, want := range []string{"sweep", "analyze", "p50", "p99"} {
		if !strings.Contains(table, want) {
			t.Fatalf("latency table missing %q:\n%s", want, table)
		}
	}

	var b bytes.Buffer
	reg.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`funseeker_engine_stage_seconds_bucket{stage="sweep"`,
		"funseeker_engine_analyze_seconds_bucket",
		"funseeker_engine_requests_total 1",
		"funseeker_engine_cache_misses_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("registry exposition missing %q:\n%s", want, out)
		}
	}
}

// newTestEngine is the test-side New wrapper: valid configs only, so a
// construction error is a test bug.
func newTestEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}
