package engine

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"

	"github.com/funseeker/funseeker/internal/armsynth"
	"github.com/funseeker/funseeker/internal/bticore"
	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/synth"
)

// testBTIBinary compiles one small BTI-enabled AArch64 image once per
// process.
var testBTIBinaryOnce = sync.OnceValues(func() ([]byte, error) {
	spec := &synth.ProgSpec{
		Name: "engine_arm",
		Lang: synth.LangC,
		Seed: 3,
		Funcs: []synth.FuncSpec{
			{Name: "main", BodySize: 4, Calls: []int{1, 2}},
			{Name: "worker", Static: true, AddressTaken: true, BodySize: 5, HasSwitch: true, SwitchCases: 3},
			{Name: "leaf", BodySize: 2},
		},
	}
	res, err := armsynth.Compile(spec, armsynth.Config{Opt: synth.O2})
	if err != nil {
		return nil, err
	}
	return res.Image, nil
})

func testBTIBinary(tb testing.TB) []byte {
	tb.Helper()
	raw, err := testBTIBinaryOnce()
	if err != nil {
		tb.Fatalf("building BTI test binary: %v", err)
	}
	return raw
}

// TestAnalyzeAArch64RoundTrip: an AArch64/BTI image goes through the
// full engine path — load, arm64 sweep, Config4 refinements, cache —
// and the entry set matches the reference bticore implementation.
func TestAnalyzeAArch64RoundTrip(t *testing.T) {
	raw := testBTIBinary(t)
	e := newTestEngine(t, Config{Jobs: 2})

	res, err := e.Analyze(context.Background(), raw, core.Config4)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if res.Report.Arch != "aarch64" {
		t.Fatalf("report arch = %q, want aarch64", res.Report.Arch)
	}
	ref, err := bticore.IdentifyBytes(raw)
	if err != nil {
		t.Fatalf("bticore: %v", err)
	}
	if !slices.Equal(res.Report.Entries, ref.Entries) {
		t.Fatalf("engine entries %#x != bticore entries %#x", res.Report.Entries, ref.Entries)
	}
	if len(res.Report.Entries) == 0 {
		t.Fatal("empty entry set from a multi-function binary")
	}

	warm, err := e.Analyze(context.Background(), raw, core.Config4)
	if err != nil {
		t.Fatalf("warm analyze: %v", err)
	}
	if !warm.Cached || warm.CacheSource != "lru" {
		t.Fatalf("second analyze not an LRU hit: %+v", warm)
	}
}

// TestCacheKeyArchSeparation: byte-identical input analyzed under two
// forced backends must occupy two cache slots — two misses, then one
// hit per arch — so an option-forced backend can never serve the other
// backend's result.
func TestCacheKeyArchSeparation(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	e := newTestEngine(t, Config{Jobs: 2})

	optsX86 := core.Config4
	optsX86.Arch = elfx.ArchX86_64
	optsARM := core.Config4
	optsARM.Arch = elfx.ArchAArch64

	rx, err := e.Analyze(context.Background(), raw, optsX86)
	if err != nil {
		t.Fatalf("x86 analyze: %v", err)
	}
	ra, err := e.Analyze(context.Background(), raw, optsARM)
	if err != nil {
		t.Fatalf("forced-arm analyze: %v", err)
	}
	if ra.Cached {
		t.Fatal("forced-arm analysis served from the x86 cache entry")
	}
	if rx.Report.Arch != "x86-64" || ra.Report.Arch != "aarch64" {
		t.Fatalf("report arches = %q / %q", rx.Report.Arch, ra.Report.Arch)
	}
	if s := e.Stats(); s.CacheMisses != 2 || s.CacheHits != 0 {
		t.Fatalf("misses/hits = %d/%d, want 2/0", s.CacheMisses, s.CacheHits)
	}
	for _, opts := range []core.Options{optsX86, optsARM} {
		res, err := e.Analyze(context.Background(), raw, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatalf("arch %v warm request missed", opts.Arch)
		}
	}
	if s := e.Stats(); s.CacheHits != 2 {
		t.Fatalf("hits = %d, want 2", s.CacheHits)
	}
}

// TestFilesMixedArchCorpus: one directory holding x86-64 and AArch64
// binaries side by side; the batch path dispatches each file to its own
// backend with no per-file configuration.
func TestFilesMixedArchCorpus(t *testing.T) {
	x86s := testBinaries(t, 2)
	bti := testBTIBinary(t)
	dir := t.TempDir()
	for i, raw := range [][]byte{x86s[0], bti, x86s[1]} {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("prog%d", i)), raw, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := Expand([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("Expand found %d files, want 3", len(paths))
	}

	e := newTestEngine(t, Config{Jobs: 4})
	got := map[string]string{}
	err = e.Files(context.Background(), paths, core.Config4, func(fr FileResult) error {
		if fr.Err != nil {
			return fr.Err
		}
		got[filepath.Base(fr.Path)] = fr.Result.Report.Arch
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"prog0": "x86-64", "prog1": "aarch64", "prog2": "x86-64"}
	for name, arch := range want {
		if got[name] != arch {
			t.Errorf("%s analyzed as %q, want %q", name, got[name], arch)
		}
	}
}
