package engine

import (
	"container/list"
	"sync"

	"github.com/funseeker/funseeker/internal/core"
)

// lru is the byte-accounted result cache. Capacity is a budget over the
// *estimated retained size* of each cached report (address slices plus a
// fixed per-entry overhead), not an entry count, so a corpus of huge
// binaries and a corpus of tiny ones both stay inside the same memory
// envelope.
type lru struct {
	mu        sync.Mutex
	capacity  int64
	size      int64
	ll        *list.List // front = most recently used
	items     map[cacheKey]*list.Element
	evictions uint64
}

// lruEntry is one cached result with its accounted size.
type lruEntry struct {
	key  cacheKey
	res  *Result
	size int64
}

func newLRU(capacity int64) *lru {
	return &lru{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

// get returns the cached result for k, refreshing its recency.
func (c *lru) get(k cacheKey) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// add inserts (or refreshes) a result and evicts from the cold end until
// the byte budget holds. An entry larger than the whole budget is not
// cached at all rather than evicting everything for a single tenant.
func (c *lru) add(k cacheKey, res *Result) {
	sz := entrySize(res.Report)
	if sz > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		ent := el.Value.(*lruEntry)
		c.size += sz - ent.size
		ent.res, ent.size = res, sz
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&lruEntry{key: k, res: res, size: sz})
		c.size += sz
	}
	for c.size > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*lruEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.size -= ent.size
		c.evictions++
	}
}

// stats returns (entries, bytes, capacity, evictions).
func (c *lru) stats() (int, int64, int64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.size, c.capacity, c.evictions
}

// entryOverhead approximates the fixed cost of one cache entry: the
// Report struct, the Result, the map and list bookkeeping.
const entryOverhead = 512

// entrySize estimates the retained bytes of one cached report.
func entrySize(r *core.Report) int64 {
	n := int64(len(r.Entries)+len(r.Endbrs)+len(r.CallTargets)+
		len(r.JumpTargets)+len(r.TailCallTargets)) * 8
	for _, w := range r.Warnings {
		n += int64(len(w)) + 16
	}
	return n + entryOverhead
}
