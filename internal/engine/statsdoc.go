package engine

import (
	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/store"
)

// StatsDoc is the versioned stats envelope ("v": 2) that /v1/stats
// serves and funseeker-lb relays per node under /lb/nodes. One struct,
// serialized everywhere — the ad-hoc flat merging of v1 is gone, and a
// consumer can dispatch on the version field when v3 eventually
// changes shape. The engine fills the engine/cache/store blocks; the
// serving layer attaches its own shed and server blocks.
type StatsDoc struct {
	V      int              `json:"v"`
	Engine EngineStatsBlock `json:"engine"`
	Cache  CacheStatsBlock  `json:"cache"`
	// Store is nil when no persistent store is configured.
	Store *StoreStatsBlock `json:"store,omitempty"`
	// Shed is attached by funseekerd (the admission control lives
	// there); nil from bare engines.
	Shed *ShedStatsBlock `json:"shed,omitempty"`
	// Server is attached by funseekerd; nil from bare engines.
	Server *ServerStatsBlock `json:"server,omitempty"`
}

// EngineStatsBlock is the worker-pool and request-outcome block.
type EngineStatsBlock struct {
	Jobs          int            `json:"jobs"`
	InFlight      int64          `json:"in_flight"`
	Requests      uint64         `json:"requests"`
	Analyzed      uint64         `json:"analyzed"`
	Coalesced     uint64         `json:"coalesced"`
	Canceled      uint64         `json:"canceled"`
	Failures      uint64         `json:"failures"`
	BytesAnalyzed uint64         `json:"bytes_analyzed"`
	Analysis      analysis.Stats `json:"analysis"`
}

// CacheStatsBlock is the in-memory LRU tier block.
type CacheStatsBlock struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Capacity  int64  `json:"capacity"`
	Evictions uint64 `json:"evictions"`
}

// StoreStatsBlock is the persistent tier block: the engine-side
// counters plus the store's own snapshot (records, segments, bytes,
// recovery facts, compaction) inlined.
type StoreStatsBlock struct {
	Hits     uint64 `json:"hits"`
	Puts     uint64 `json:"puts_through"`
	Injected uint64 `json:"injected"`
	Errors   uint64 `json:"errors"`
	store.Stats
}

// ShedStatsBlock is the load-shedding block funseekerd attaches.
type ShedStatsBlock struct {
	Enabled    bool    `json:"enabled"`
	BoundMS    float64 `json:"bound_ms"`
	WindowMS   float64 `json:"window_ms"`
	QueueP99MS float64 `json:"queue_p99_ms"`
	ShedTotal  uint64  `json:"shed_total"`
}

// ServerStatsBlock is the process-level block funseekerd attaches.
type ServerStatsBlock struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
}

// StatsDoc builds the v2 stats document from the engine's counters.
func (e *Engine) StatsDoc() StatsDoc {
	s := e.Stats()
	doc := StatsDoc{
		V: 2,
		Engine: EngineStatsBlock{
			Jobs:          s.Jobs,
			InFlight:      s.InFlight,
			Requests:      s.Requests,
			Analyzed:      s.Analyzed,
			Coalesced:     s.Coalesced,
			Canceled:      s.Canceled,
			Failures:      s.Failures,
			BytesAnalyzed: s.BytesAnalyzed,
			Analysis:      s.Analysis,
		},
		Cache: CacheStatsBlock{
			Hits:      s.CacheHits,
			Misses:    s.CacheMisses,
			Entries:   s.CacheEntries,
			Bytes:     s.CacheBytes,
			Capacity:  s.CacheCapacity,
			Evictions: s.Evictions,
		},
	}
	if s.Store != nil {
		doc.Store = &StoreStatsBlock{
			Hits:     s.StoreHits,
			Puts:     s.StorePuts,
			Injected: s.StoreInjected,
			Errors:   s.StoreErrors,
			Stats:    *s.Store,
		}
	}
	return doc
}
