package engine

import (
	"bytes"
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"github.com/funseeker/funseeker/internal/core"
)

// elfMagic is the 4-byte ELF identification prefix used to filter
// directory walks.
var elfMagic = []byte{0x7f, 'E', 'L', 'F'}

// Expand resolves a mixed list of files and directories into the flat,
// deterministic (lexically ordered within each directory) list of
// candidate ELF files. Explicitly named files are always kept — the
// caller asked for them, so they deserve a real error if unreadable —
// while directory walks keep only regular files whose first bytes are
// the ELF magic, skipping ground-truth sidecars and other corpus
// clutter.
func Expand(paths []string) ([]string, error) {
	var out []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.Type().IsRegular() {
				return nil
			}
			ok, err := hasELFMagic(path)
			if err != nil {
				return err
			}
			if ok {
				out = append(out, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// hasELFMagic reports whether the file starts with \x7fELF.
func hasELFMagic(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var head [4]byte
	n, _ := f.Read(head[:])
	return n == len(head) && bytes.Equal(head[:], elfMagic), nil
}

// FileResult is the outcome of analyzing one file of a batch.
type FileResult struct {
	// Path is the input file.
	Path string
	// Result is the analysis result, nil when Err is set.
	Result *Result
	// Err is the per-file failure (unreadable, not ELF, canceled, ...).
	Err error
}

// Files analyzes every path on the engine's worker pool and delivers one
// FileResult per input, in input order, to fn on the calling goroutine.
// Per-file failures are reported through FileResult.Err and do not stop
// the batch; fn returning a non-nil error cancels the remaining work and
// becomes Files' return value. Cancellation of ctx surfaces as ctx.Err()
// on every unfinished file and as the return value.
func (e *Engine) Files(ctx context.Context, paths []string, opts core.Options, fn func(FileResult) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(paths)
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	results := make([]*FileResult, n)

	workers := e.jobs
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fr := FileResult{Path: paths[i]}
				raw, err := os.ReadFile(paths[i])
				if err != nil {
					fr.Err = err
				} else {
					fr.Result, fr.Err = e.Analyze(ctx, raw, opts)
				}
				mu.Lock()
				results[i] = &fr
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}

	// Feeder: hand out indexes until done or canceled; on cancellation,
	// pre-fill every undispatched slot so the emitter drains immediately.
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-ctx.Done():
				mu.Lock()
				for j := i; j < n; j++ {
					if results[j] == nil {
						results[j] = &FileResult{Path: paths[j], Err: ctx.Err()}
					}
				}
				cond.Broadcast()
				mu.Unlock()
				return
			}
		}
	}()

	var fnErr error
	for i := 0; i < n && fnErr == nil; i++ {
		mu.Lock()
		for results[i] == nil {
			cond.Wait()
		}
		fr := *results[i]
		mu.Unlock()
		if err := fn(fr); err != nil {
			fnErr = err
			cancel()
		}
	}
	wg.Wait()
	if fnErr != nil {
		return fnErr
	}
	return context.Cause(ctx)
}
