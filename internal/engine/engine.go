// Package engine is the corpus-scale analysis engine: it wraps the
// per-binary analysis.Context behind a bounded worker pool, a
// content-addressed result cache, and full context.Context cancellation,
// turning the one-binary-at-a-time core into a service substrate.
//
// The design follows the paper's workload shape — FunSeeker's headline
// result is analyzing 8,136 binaries orders of magnitude faster than
// IDA/Ghidra/FETCH (Table VIII), i.e. function identification is a
// *batch* problem — and the repo's north star of serving heavy traffic:
//
//   - Concurrency is bounded by a semaphore of Config.Jobs slots
//     (default GOMAXPROCS). Each analysis already parallelizes its own
//     sweep for large texts, so admitting more analyses than cores only
//     adds memory pressure.
//   - Results are cached in an LRU keyed by (SHA-256 of the ELF image,
//     option bits) with byte-size accounting, so re-analyzing an
//     identical binary — the common case for corpus dedup and repeated
//     service traffic — is a map lookup.
//   - Identical in-flight requests coalesce: N concurrent uploads of the
//     same bytes run one analysis, and the other N-1 wait on it (each
//     still honoring its own context).
//   - Cancellation reaches the linear sweep via core.IdentifyCtx, so an
//     aborted request stops burning CPU at the next shard/stride
//     boundary instead of completing a dead analysis.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/obs"
	"github.com/funseeker/funseeker/internal/store"
)

// DefaultCacheBytes is the result-cache budget when Config.CacheBytes is
// zero.
const DefaultCacheBytes = 256 << 20

// DefaultStoreCompactEvery is the background-compactor check interval
// for engine-owned stores when Config.StoreCompactEvery is zero.
const DefaultStoreCompactEvery = time.Minute

// DefaultShedWindow is the load-shedding observation window when
// Config.ShedWindow is zero.
const DefaultShedWindow = 10 * time.Second

// Config tunes an Engine. Zero values select defaults everywhere — call
// Normalize (New does it for you) to materialize them; Normalize is
// the single place defaults and validation live, so servers and tests
// never duplicate them next to their flag definitions.
type Config struct {
	// Jobs bounds the number of concurrently running analyses. Zero or
	// negative selects runtime.GOMAXPROCS(0).
	Jobs int
	// CacheBytes is the LRU result-cache budget in bytes. Zero selects
	// DefaultCacheBytes; negative disables caching entirely.
	CacheBytes int64
	// RequireCET makes every analysis fail with core.ErrNotCET when the
	// binary carries no end-branch instruction, regardless of the
	// per-request options.
	RequireCET bool
	// Store is a caller-owned persistent result tier layered *under*
	// the LRU: an LRU miss consults it before paying for a cold
	// analysis, and every completed cold analysis is written through to
	// it, so a warm corpus survives a process restart. The engine does
	// not open or close a caller-provided store. Mutually exclusive
	// with StoreDir.
	Store *store.Store
	// StoreDir, when non-empty, makes the engine open (and own) a
	// persistent store rooted there: New opens it with the Store*
	// knobs below and Close closes it. Mutually exclusive with Store.
	StoreDir string
	// StoreSegmentBytes rotates the store's active segment past this
	// size. Zero selects store.DefaultSegmentBytes. Only used with
	// StoreDir.
	StoreSegmentBytes int64
	// StoreCompactEvery is the background compaction check interval for
	// an engine-owned store. Zero selects DefaultStoreCompactEvery;
	// negative disables background compaction (explicit CompactStore
	// calls still work). Only used with StoreDir.
	StoreCompactEvery time.Duration
	// StoreCompactGarbageRatio is the garbage fraction that triggers a
	// background compaction. Zero selects
	// store.DefaultCompactGarbageRatio. Only used with StoreDir.
	StoreCompactGarbageRatio float64
	// StoreCompactMinBytes is the on-disk floor below which background
	// compaction never runs. Zero selects store.DefaultCompactMinBytes.
	// Only used with StoreDir.
	StoreCompactMinBytes int64
	// ShedQueueP99 is the queue-wait p99 past which the serving layer
	// should refuse new work (429). Zero disables shedding. The engine
	// only carries the knob — the admission check lives in the server —
	// so every deployment surface reads the same normalized value.
	ShedQueueP99 time.Duration
	// ShedWindow is the observation window for the shedding signal.
	// Zero selects DefaultShedWindow; negative means cumulative (no
	// windowing — tests use it for determinism).
	ShedWindow time.Duration
	// Registry receives the engine's metrics (latency histograms,
	// cache/coalescing counters, worker-pool gauges). Nil selects a
	// private registry: the histograms still accumulate — so
	// StageLatencyTable works for the CLI — they are just not exported
	// anywhere. At most one engine may register on a given registry.
	Registry *obs.Registry
}

// Normalize fills every defaulted field in place and validates the
// rest. It is idempotent; New calls it, and callers that want to
// inspect or log the effective configuration can call it themselves.
func (c *Config) Normalize() error {
	if c.Jobs <= 0 {
		c.Jobs = runtime.GOMAXPROCS(0)
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.Store != nil && c.StoreDir != "" {
		return errors.New("engine: Config.Store and Config.StoreDir are mutually exclusive")
	}
	if c.StoreSegmentBytes < 0 {
		return fmt.Errorf("engine: negative StoreSegmentBytes %d", c.StoreSegmentBytes)
	}
	if c.StoreSegmentBytes == 0 {
		c.StoreSegmentBytes = store.DefaultSegmentBytes
	}
	if c.StoreCompactEvery == 0 {
		c.StoreCompactEvery = DefaultStoreCompactEvery
	}
	if c.StoreCompactGarbageRatio < 0 || c.StoreCompactGarbageRatio > 1 {
		return fmt.Errorf("engine: StoreCompactGarbageRatio %v outside [0, 1]", c.StoreCompactGarbageRatio)
	}
	if c.StoreCompactGarbageRatio == 0 {
		c.StoreCompactGarbageRatio = store.DefaultCompactGarbageRatio
	}
	if c.StoreCompactMinBytes < 0 {
		return fmt.Errorf("engine: negative StoreCompactMinBytes %d", c.StoreCompactMinBytes)
	}
	if c.StoreCompactMinBytes == 0 {
		c.StoreCompactMinBytes = store.DefaultCompactMinBytes
	}
	if c.ShedQueueP99 < 0 {
		return fmt.Errorf("engine: negative ShedQueueP99 %v", c.ShedQueueP99)
	}
	if c.ShedWindow == 0 {
		c.ShedWindow = DefaultShedWindow
	}
	return nil
}

// Engine runs identification requests over a bounded worker pool with a
// content-hash result cache. It is safe for concurrent use; create one
// per process and share it.
type Engine struct {
	jobs       int
	sem        chan struct{}
	requireCET bool
	cache      *lru
	store      *store.Store
	ownsStore  bool
	shedBound  time.Duration
	shedWindow time.Duration

	flightMu sync.Mutex
	flight   map[cacheKey]*call

	inFlight      atomic.Int64
	requests      atomic.Uint64
	analyzed      atomic.Uint64
	hits          atomic.Uint64
	storeHits     atomic.Uint64
	storePuts     atomic.Uint64
	storeErrors   atomic.Uint64
	storeInjected atomic.Uint64
	misses        atomic.Uint64
	coalesced     atomic.Uint64
	canceled      atomic.Uint64
	failures      atomic.Uint64
	bytesIn       atomic.Uint64

	met *engineMetrics

	aggMu sync.Mutex
	agg   analysis.Stats

	// testHookCold, when non-nil, runs at the top of every cold analysis
	// (inside the worker slot). Tests use it to inject panics and to
	// hold an analysis open while coalesced waiters pile up.
	testHookCold func(raw []byte)
}

// call is one in-flight analysis other requests for the same key can
// wait on. done is closed when the computation finishes; err carries a
// non-cancellation failure that waiters share (cancellation errors are
// private to the canceled caller — a waiter retries under its own ctx).
type call struct {
	done chan struct{}
	res  *Result
	err  error
}

// cacheKey is the identity of one analysis: content hash × option bits ×
// backend architecture. The arch component means byte-identical images
// analyzed under different backends (an option-forced backend, or two
// files whose headers differ only in e_machine — impossible for one hash,
// but the forced case is real) can never serve each other's results.
type cacheKey struct {
	sum  [sha256.Size]byte
	opts uint8
	arch elfx.Arch
}

// optsBits packs the boolean option set into the cache key.
func optsBits(o core.Options) uint8 {
	var b uint8
	if o.FilterEndbr {
		b |= 1 << 0
	}
	if o.UseJumpTargets {
		b |= 1 << 1
	}
	if o.SelectTailCall {
		b |= 1 << 2
	}
	if o.TailBoundaryOnly {
		b |= 1 << 3
	}
	if o.SupersetEndbrScan {
		b |= 1 << 4
	}
	if o.RequireCET {
		b |= 1 << 5
	}
	if o.FuseEH {
		b |= 1 << 6
	}
	return b
}

// Result is one completed identification with its service metadata.
type Result struct {
	// Report is the identification result. Cached results share one
	// Report value across callers; treat it as read-only.
	Report *core.Report
	// SHA256 is the lowercase hex content hash of the analyzed image.
	SHA256 string
	// StoreKey is the lowercase hex persistent-store key of this result
	// (content hash + option bits + arch). It identifies the result
	// across replicas: the router's replication path copies stored
	// results between funseekerd instances by this key.
	StoreKey string
	// Cached reports whether the result came from the LRU (or from
	// coalescing onto another request's in-flight analysis) rather than
	// a fresh analysis.
	Cached bool
	// CacheSource names the fast path that served a cached result:
	// "lru" for an LRU hit, "coalesced" for a wait on an identical
	// in-flight analysis, "store" for a persistent-store hit after an
	// LRU miss, "" for a fresh analysis.
	CacheSource string
	// Elapsed is this caller's wall-clock wait for the result: the
	// analysis time on the cold path, the lookup time on an LRU hit,
	// and the full blocking wait for a coalesced request (which can be
	// as long as the underlying analysis).
	Elapsed time.Duration
	// BinaryBytes is the size of the analyzed ELF image.
	BinaryBytes int
}

// New builds an engine from cfg, normalizing it first. When
// cfg.StoreDir is set the engine opens — and owns, see Close — the
// persistent store there, with background compaction wired from the
// StoreCompact* knobs.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	st := cfg.Store
	ownsStore := false
	if st == nil && cfg.StoreDir != "" {
		every := cfg.StoreCompactEvery
		if every < 0 {
			every = 0 // background compaction disabled
		}
		var err error
		st, err = store.Open(cfg.StoreDir, store.Options{
			SegmentBytes:        cfg.StoreSegmentBytes,
			CompactEvery:        every,
			CompactGarbageRatio: cfg.StoreCompactGarbageRatio,
			CompactMinBytes:     cfg.StoreCompactMinBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("engine: opening store %s: %w", cfg.StoreDir, err)
		}
		ownsStore = true
	}
	var cache *lru
	if cfg.CacheBytes > 0 {
		cache = newLRU(cfg.CacheBytes)
	}
	e := &Engine{
		jobs:       cfg.Jobs,
		sem:        make(chan struct{}, cfg.Jobs),
		requireCET: cfg.RequireCET,
		cache:      cache,
		store:      st,
		ownsStore:  ownsStore,
		shedBound:  cfg.ShedQueueP99,
		shedWindow: cfg.ShedWindow,
		flight:     make(map[cacheKey]*call),
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e.met = registerEngineMetrics(reg, e)
	return e, nil
}

// Jobs returns the configured worker-pool width.
func (e *Engine) Jobs() int { return e.jobs }

// ShedConfig returns the normalized load-shedding knobs (bound zero
// means shedding is disabled). The admission check itself lives in the
// serving layer; carrying the knobs here keeps their defaults in
// Config.Normalize with everything else.
func (e *Engine) ShedConfig() (bound, window time.Duration) {
	return e.shedBound, e.shedWindow
}

// HasStore reports whether a persistent store tier is configured.
func (e *Engine) HasStore() bool { return e.store != nil }

// Close releases resources the engine owns: the store opened via
// Config.StoreDir (and its background compactor). A caller-provided
// Config.Store is left open — its owner closes it.
func (e *Engine) Close() error {
	if e.ownsStore && e.store != nil {
		return e.store.Close()
	}
	return nil
}

// Analyze identifies function entries in the ELF image raw under ctx.
// The fast path — a byte-identical image analyzed before with the same
// options — is a cache lookup; the slow path waits for a worker slot
// (respecting ctx) and runs the cancellation-aware analysis.
//
// Counter contract (the invariant engine tests assert): every Analyze
// call increments requests exactly once, and exactly one of hits,
// storeHits, misses, coalesced, canceled, or failures — including
// waiters that share an in-flight failure, and callers whose analysis
// panicked.
func (e *Engine) Analyze(ctx context.Context, raw []byte, opts core.Options) (*Result, error) {
	if e.requireCET {
		opts.RequireCET = true
	}
	e.requests.Add(1)
	start := time.Now()
	defer func() { e.met.analyze.ObserveDuration(time.Since(start)) }()
	// The key must be known before the (cached-away) ELF parse, so the
	// arch comes from the cheap header peek; DetectArch returns exactly
	// what elfx.Load would assign.
	arch := opts.Arch
	if arch == elfx.ArchAuto {
		arch = elfx.DetectArch(raw)
	}
	k := cacheKey{sum: sha256.Sum256(raw), opts: optsBits(opts), arch: arch}
	keyHex := hex.EncodeToString(storeKey(k))

	for {
		if err := ctx.Err(); err != nil {
			e.canceled.Add(1)
			return nil, err
		}
		if e.cache != nil {
			if res, ok := e.cache.get(k); ok {
				e.hits.Add(1)
				return &Result{
					Report: res.Report, SHA256: res.SHA256, StoreKey: keyHex, BinaryBytes: res.BinaryBytes,
					Cached: true, CacheSource: "lru", Elapsed: time.Since(start),
				}, nil
			}
		}

		e.flightMu.Lock()
		if c, ok := e.flight[k]; ok {
			e.flightMu.Unlock()
			select {
			case <-c.done:
				if c.err == nil {
					e.coalesced.Add(1)
					// Elapsed is this caller's real wait, which spans the
					// underlying analysis — not the ~zero of a map lookup.
					return &Result{
						Report: c.res.Report, SHA256: c.res.SHA256, StoreKey: keyHex, BinaryBytes: c.res.BinaryBytes,
						Cached: true, CacheSource: "coalesced", Elapsed: time.Since(start),
					}, nil
				}
				if isContextErr(c.err) {
					continue // the computing request died; retry under our ctx
				}
				// This request failed too (with the shared error), so it
				// counts toward failures like any other failed request.
				e.failures.Add(1)
				return nil, c.err
			case <-ctx.Done():
				e.canceled.Add(1)
				return nil, ctx.Err()
			}
		}
		c := &call{done: make(chan struct{})}
		e.flight[k] = c
		e.flightMu.Unlock()

		// The flight-map cleanup is deferred so a panicking analysis (a
		// malformed ELF tripping a slice bound, say) cannot strand the
		// key: waiters unblock, and the next request for the same bytes
		// starts a fresh analysis instead of hanging forever.
		func() {
			defer func() {
				e.flightMu.Lock()
				delete(e.flight, k)
				e.flightMu.Unlock()
				close(c.done)
			}()
			c.res, c.err = e.analyzeCold(ctx, raw, opts, k)
		}()
		return c.res, c.err
	}
}

// analyzeCold runs one uncached analysis: consult the persistent
// store, then acquire a worker slot, load, identify, account, cache. A
// panic anywhere inside — worker-slot code, ELF loading, the sweep —
// is recovered into an error and counted under failures, so one
// malformed input cannot take the process down.
func (e *Engine) analyzeCold(ctx context.Context, raw []byte, opts core.Options, k cacheKey) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.failures.Add(1)
			res, err = nil, fmt.Errorf("analysis panicked: %v", r)
		}
	}()
	start := time.Now()

	// The persistent tier sits under the LRU: an LRU miss is first
	// checked against the store before paying for a sweep. The read
	// happens inside the flight entry, so concurrent identical requests
	// coalesce onto one store read exactly as they coalesce onto one
	// analysis. Store errors (I/O, a foreign-version record) degrade to
	// a cold analysis — persistence must never turn a computable
	// request into a failure.
	if e.store != nil {
		if val, ok, serr := e.store.Get(storeKey(k)); serr != nil {
			e.storeErrors.Add(1)
		} else if ok {
			if stored, derr := decodeStoredResult(val); derr != nil {
				e.storeErrors.Add(1)
			} else {
				e.storeHits.Add(1)
				if e.cache != nil {
					e.cache.add(k, stored)
				}
				return &Result{
					Report: stored.Report, SHA256: stored.SHA256, StoreKey: hex.EncodeToString(storeKey(k)), BinaryBytes: stored.BinaryBytes,
					Cached: true, CacheSource: "store", Elapsed: time.Since(start),
				}, nil
			}
		}
	}

	queueStart := time.Now()
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.canceled.Add(1)
		return nil, ctx.Err()
	}
	e.met.queue.ObserveDuration(time.Since(queueStart))
	defer func() { <-e.sem }()

	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	start = time.Now() // Elapsed excludes the queue wait

	if e.testHookCold != nil {
		e.testHookCold(raw)
	}

	bin, err := elfx.Load(raw)
	if err != nil {
		e.failures.Add(1)
		return nil, err
	}
	actx := analysis.NewContext(bin)
	report, err := core.IdentifyCtx(ctx, actx, opts)

	st := actx.Stats()
	e.met.observeStages(st)
	e.aggMu.Lock()
	e.agg.Add(st)
	e.aggMu.Unlock()

	if err != nil {
		if isContextErr(err) {
			e.canceled.Add(1)
		} else {
			e.failures.Add(1)
		}
		return nil, err
	}

	res = &Result{
		Report:      report,
		SHA256:      hex.EncodeToString(k.sum[:]),
		StoreKey:    hex.EncodeToString(storeKey(k)),
		Elapsed:     time.Since(start),
		BinaryBytes: len(raw),
	}
	e.misses.Add(1)
	e.analyzed.Add(1)
	e.bytesIn.Add(uint64(len(raw)))
	if e.cache != nil {
		e.cache.add(k, res)
	}
	// Write-through to the persistent tier. Synchronous on purpose: the
	// encode+append is microseconds next to the analysis that just ran,
	// and a replica killed right after responding must find the result
	// on restart. Failures are counted and swallowed — the result is
	// already computed and the caller deserves it.
	if e.store != nil {
		if val, serr := encodeStoredResult(res); serr != nil {
			e.storeErrors.Add(1)
		} else if serr := e.store.Put(storeKey(k), val); serr != nil {
			e.storeErrors.Add(1)
		} else {
			e.storePuts.Add(1)
		}
	}
	return res, nil
}

// isContextErr reports whether err is a cancellation or deadline error —
// the class of failures that is private to one request and must not be
// shared with coalesced waiters or cached.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Stats is a point-in-time snapshot of the engine's service counters.
type Stats struct {
	// Jobs is the worker-pool width.
	Jobs int `json:"jobs"`
	// InFlight is the number of analyses running right now.
	InFlight int64 `json:"in_flight"`
	// Requests counts every Analyze call. Each request lands in exactly
	// one of CacheHits, StoreHits, CacheMisses, Coalesced, Canceled, or
	// Failures, so those six always sum to Requests.
	Requests uint64 `json:"requests"`
	// Analyzed counts completed cold analyses (always equal to
	// CacheMisses).
	Analyzed uint64 `json:"analyzed"`
	// CacheHits counts requests served from the in-memory LRU.
	CacheHits uint64 `json:"cache_hits"`
	// StoreHits counts requests that missed the LRU but were served
	// from the persistent store. Accounted separately from CacheHits —
	// a store hit skipped the sweep but still paid a disk read — and
	// always zero when no store is configured.
	StoreHits uint64 `json:"store_hits"`
	// CacheMisses counts requests that ran a fresh analysis.
	CacheMisses uint64 `json:"cache_misses"`
	// Coalesced counts requests served by waiting on an identical
	// in-flight analysis.
	Coalesced uint64 `json:"coalesced"`
	// Canceled counts requests abandoned through their context.
	Canceled uint64 `json:"canceled"`
	// Failures counts requests that failed for non-context reasons (not
	// ELF, no .text, CET required but absent, a recovered analysis
	// panic, ...). A failure shared by coalesced waiters counts once per
	// affected request.
	Failures uint64 `json:"failures"`
	// BytesAnalyzed is the total size of all cold-analyzed images.
	BytesAnalyzed uint64 `json:"bytes_analyzed"`
	// CacheEntries / CacheBytes / CacheCapacity / Evictions describe the
	// result cache (all zero when caching is disabled).
	CacheEntries  int    `json:"cache_entries"`
	CacheBytes    int64  `json:"cache_bytes"`
	CacheCapacity int64  `json:"cache_capacity"`
	Evictions     uint64 `json:"evictions"`
	// StorePuts counts results written through to the persistent store;
	// StoreErrors counts store reads/writes/decodes that failed (each
	// degraded to a cold analysis or a lost write-through, never a
	// request failure); StoreInjected counts results installed by
	// InjectResult (the replication path) rather than computed here.
	// Store carries the store's own snapshot; nil when no store is
	// configured.
	StorePuts     uint64       `json:"store_puts"`
	StoreErrors   uint64       `json:"store_errors"`
	StoreInjected uint64       `json:"store_injected"`
	Store         *store.Stats `json:"store,omitempty"`
	// Analysis aggregates the per-stage analysis costs (sweep, eh-parse,
	// landing-pad join, filter, tail-call) over every cold analysis.
	Analysis analysis.Stats `json:"analysis"`
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Jobs:          e.jobs,
		InFlight:      e.inFlight.Load(),
		Requests:      e.requests.Load(),
		Analyzed:      e.analyzed.Load(),
		CacheHits:     e.hits.Load(),
		StoreHits:     e.storeHits.Load(),
		CacheMisses:   e.misses.Load(),
		Coalesced:     e.coalesced.Load(),
		Canceled:      e.canceled.Load(),
		Failures:      e.failures.Load(),
		BytesAnalyzed: e.bytesIn.Load(),
		StorePuts:     e.storePuts.Load(),
		StoreErrors:   e.storeErrors.Load(),
		StoreInjected: e.storeInjected.Load(),
	}
	if e.cache != nil {
		s.CacheEntries, s.CacheBytes, s.CacheCapacity, s.Evictions = e.cache.stats()
	}
	if e.store != nil {
		st := e.store.Stats()
		s.Store = &st
	}
	e.aggMu.Lock()
	s.Analysis = e.agg
	e.aggMu.Unlock()
	return s
}
