// Package engine is the corpus-scale analysis engine: it wraps the
// per-binary analysis.Context behind a bounded worker pool, a
// content-addressed result cache, and full context.Context cancellation,
// turning the one-binary-at-a-time core into a service substrate.
//
// The design follows the paper's workload shape — FunSeeker's headline
// result is analyzing 8,136 binaries orders of magnitude faster than
// IDA/Ghidra/FETCH (Table VIII), i.e. function identification is a
// *batch* problem — and the repo's north star of serving heavy traffic:
//
//   - Concurrency is bounded by a semaphore of Config.Jobs slots
//     (default GOMAXPROCS). Each analysis already parallelizes its own
//     sweep for large texts, so admitting more analyses than cores only
//     adds memory pressure.
//   - Results are cached in an LRU keyed by (SHA-256 of the ELF image,
//     option bits) with byte-size accounting, so re-analyzing an
//     identical binary — the common case for corpus dedup and repeated
//     service traffic — is a map lookup.
//   - Identical in-flight requests coalesce: N concurrent uploads of the
//     same bytes run one analysis, and the other N-1 wait on it (each
//     still honoring its own context).
//   - Cancellation reaches the linear sweep via core.IdentifyCtx, so an
//     aborted request stops burning CPU at the next shard/stride
//     boundary instead of completing a dead analysis.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/elfx"
)

// DefaultCacheBytes is the result-cache budget when Config.CacheBytes is
// zero.
const DefaultCacheBytes = 256 << 20

// Config tunes an Engine.
type Config struct {
	// Jobs bounds the number of concurrently running analyses. Zero or
	// negative selects runtime.GOMAXPROCS(0).
	Jobs int
	// CacheBytes is the LRU result-cache budget in bytes. Zero selects
	// DefaultCacheBytes; negative disables caching entirely.
	CacheBytes int64
	// RequireCET makes every analysis fail with core.ErrNotCET when the
	// binary carries no end-branch instruction, regardless of the
	// per-request options.
	RequireCET bool
}

// Engine runs identification requests over a bounded worker pool with a
// content-hash result cache. It is safe for concurrent use; create one
// per process and share it.
type Engine struct {
	jobs       int
	sem        chan struct{}
	requireCET bool
	cache      *lru

	flightMu sync.Mutex
	flight   map[cacheKey]*call

	inFlight  atomic.Int64
	analyzed  atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	canceled  atomic.Uint64
	failures  atomic.Uint64
	bytesIn   atomic.Uint64

	aggMu sync.Mutex
	agg   analysis.Stats
}

// call is one in-flight analysis other requests for the same key can
// wait on. done is closed when the computation finishes; err carries a
// non-cancellation failure that waiters share (cancellation errors are
// private to the canceled caller — a waiter retries under its own ctx).
type call struct {
	done chan struct{}
	res  *Result
	err  error
}

// cacheKey is the identity of one analysis: content hash × option bits.
type cacheKey struct {
	sum  [sha256.Size]byte
	opts uint8
}

// optsBits packs the boolean option set into the cache key.
func optsBits(o core.Options) uint8 {
	var b uint8
	if o.FilterEndbr {
		b |= 1 << 0
	}
	if o.UseJumpTargets {
		b |= 1 << 1
	}
	if o.SelectTailCall {
		b |= 1 << 2
	}
	if o.TailBoundaryOnly {
		b |= 1 << 3
	}
	if o.SupersetEndbrScan {
		b |= 1 << 4
	}
	if o.RequireCET {
		b |= 1 << 5
	}
	return b
}

// Result is one completed identification with its service metadata.
type Result struct {
	// Report is the identification result. Cached results share one
	// Report value across callers; treat it as read-only.
	Report *core.Report
	// SHA256 is the lowercase hex content hash of the analyzed image.
	SHA256 string
	// Cached reports whether the result came from the LRU (or from
	// coalescing onto another request's in-flight analysis) rather than
	// a fresh analysis.
	Cached bool
	// Elapsed is the wall-clock cost of producing this result for this
	// caller: ~zero for cache hits, the analysis time otherwise.
	Elapsed time.Duration
	// BinaryBytes is the size of the analyzed ELF image.
	BinaryBytes int
}

// New builds an engine from cfg.
func New(cfg Config) *Engine {
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = DefaultCacheBytes
	}
	var cache *lru
	if cacheBytes > 0 {
		cache = newLRU(cacheBytes)
	}
	return &Engine{
		jobs:       jobs,
		sem:        make(chan struct{}, jobs),
		requireCET: cfg.RequireCET,
		cache:      cache,
		flight:     make(map[cacheKey]*call),
	}
}

// Jobs returns the configured worker-pool width.
func (e *Engine) Jobs() int { return e.jobs }

// Analyze identifies function entries in the ELF image raw under ctx.
// The fast path — a byte-identical image analyzed before with the same
// options — is a cache lookup; the slow path waits for a worker slot
// (respecting ctx) and runs the cancellation-aware analysis.
func (e *Engine) Analyze(ctx context.Context, raw []byte, opts core.Options) (*Result, error) {
	if e.requireCET {
		opts.RequireCET = true
	}
	k := cacheKey{sum: sha256.Sum256(raw), opts: optsBits(opts)}

	for {
		if err := ctx.Err(); err != nil {
			e.canceled.Add(1)
			return nil, err
		}
		if e.cache != nil {
			if res, ok := e.cache.get(k); ok {
				e.hits.Add(1)
				return &Result{Report: res.Report, SHA256: res.SHA256, Cached: true, BinaryBytes: res.BinaryBytes}, nil
			}
		}

		e.flightMu.Lock()
		if c, ok := e.flight[k]; ok {
			e.flightMu.Unlock()
			select {
			case <-c.done:
				if c.err == nil {
					e.coalesced.Add(1)
					return &Result{Report: c.res.Report, SHA256: c.res.SHA256, Cached: true, BinaryBytes: c.res.BinaryBytes}, nil
				}
				if isContextErr(c.err) {
					continue // the computing request died; retry under our ctx
				}
				return nil, c.err
			case <-ctx.Done():
				e.canceled.Add(1)
				return nil, ctx.Err()
			}
		}
		c := &call{done: make(chan struct{})}
		e.flight[k] = c
		e.flightMu.Unlock()

		c.res, c.err = e.analyzeCold(ctx, raw, opts, k)
		e.flightMu.Lock()
		delete(e.flight, k)
		e.flightMu.Unlock()
		close(c.done)
		return c.res, c.err
	}
}

// analyzeCold runs one uncached analysis: acquire a worker slot, load,
// identify, account, cache.
func (e *Engine) analyzeCold(ctx context.Context, raw []byte, opts core.Options, k cacheKey) (*Result, error) {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.canceled.Add(1)
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()

	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	start := time.Now()

	bin, err := elfx.Load(raw)
	if err != nil {
		e.failures.Add(1)
		return nil, err
	}
	actx := analysis.NewContext(bin)
	report, err := core.IdentifyCtx(ctx, actx, opts)

	e.aggMu.Lock()
	e.agg.Add(actx.Stats())
	e.aggMu.Unlock()

	if err != nil {
		if isContextErr(err) {
			e.canceled.Add(1)
		} else {
			e.failures.Add(1)
		}
		return nil, err
	}

	res := &Result{
		Report:      report,
		SHA256:      hex.EncodeToString(k.sum[:]),
		Elapsed:     time.Since(start),
		BinaryBytes: len(raw),
	}
	e.misses.Add(1)
	e.analyzed.Add(1)
	e.bytesIn.Add(uint64(len(raw)))
	if e.cache != nil {
		e.cache.add(k, res)
	}
	return res, nil
}

// isContextErr reports whether err is a cancellation or deadline error —
// the class of failures that is private to one request and must not be
// shared with coalesced waiters or cached.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Stats is a point-in-time snapshot of the engine's service counters.
type Stats struct {
	// Jobs is the worker-pool width.
	Jobs int `json:"jobs"`
	// InFlight is the number of analyses running right now.
	InFlight int64 `json:"in_flight"`
	// Analyzed counts completed cold analyses.
	Analyzed uint64 `json:"analyzed"`
	// CacheHits counts requests served from the LRU.
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts requests that ran a fresh analysis.
	CacheMisses uint64 `json:"cache_misses"`
	// Coalesced counts requests served by waiting on an identical
	// in-flight analysis.
	Coalesced uint64 `json:"coalesced"`
	// Canceled counts requests abandoned through their context.
	Canceled uint64 `json:"canceled"`
	// Failures counts analyses that failed for non-context reasons
	// (not ELF, no .text, CET required but absent, ...).
	Failures uint64 `json:"failures"`
	// BytesAnalyzed is the total size of all cold-analyzed images.
	BytesAnalyzed uint64 `json:"bytes_analyzed"`
	// CacheEntries / CacheBytes / CacheCapacity / Evictions describe the
	// result cache (all zero when caching is disabled).
	CacheEntries  int    `json:"cache_entries"`
	CacheBytes    int64  `json:"cache_bytes"`
	CacheCapacity int64  `json:"cache_capacity"`
	Evictions     uint64 `json:"evictions"`
	// Analysis aggregates the per-stage analysis costs (sweep, eh-parse,
	// landing-pad join, filter, tail-call) over every cold analysis.
	Analysis analysis.Stats `json:"analysis"`
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Jobs:          e.jobs,
		InFlight:      e.inFlight.Load(),
		Analyzed:      e.analyzed.Load(),
		CacheHits:     e.hits.Load(),
		CacheMisses:   e.misses.Load(),
		Coalesced:     e.coalesced.Load(),
		Canceled:      e.canceled.Load(),
		Failures:      e.failures.Load(),
		BytesAnalyzed: e.bytesIn.Load(),
	}
	if e.cache != nil {
		s.CacheEntries, s.CacheBytes, s.CacheCapacity, s.Evictions = e.cache.stats()
	}
	e.aggMu.Lock()
	s.Analysis = e.agg
	e.aggMu.Unlock()
	return s
}
