package engine

import (
	"context"
	"crypto/sha256"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/store"
)

func newTestStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestStoreTierWarmRestart is the restart story: a second engine (cold
// LRU, same store directory) serves everything the first one computed
// from the persistent tier, without re-analyzing a single byte.
func TestStoreTierWarmRestart(t *testing.T) {
	bins := testBinaries(t, 3)
	st := newTestStore(t)

	e1 := newTestEngine(t, Config{Jobs: 2, Store: st})
	var want []*Result
	for _, raw := range bins {
		res, err := e1.Analyze(context.Background(), raw, core.Config4)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	if s := e1.Stats(); s.StorePuts != 3 || s.StoreHits != 0 {
		t.Fatalf("first engine store puts/hits = %d/%d, want 3/0", s.StorePuts, s.StoreHits)
	}

	// "Restart": fresh engine, fresh LRU, same store.
	e2 := newTestEngine(t, Config{Jobs: 2, Store: st})
	for i, raw := range bins {
		res, err := e2.Analyze(context.Background(), raw, core.Config4)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached || res.CacheSource != "store" {
			t.Fatalf("bin %d: cached=%v source=%q, want a store hit", i, res.Cached, res.CacheSource)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("bin %d: store-hit Elapsed = %v, want the (nonzero) lookup cost", i, res.Elapsed)
		}
		if res.SHA256 != want[i].SHA256 || res.BinaryBytes != want[i].BinaryBytes {
			t.Fatalf("bin %d: identity mismatch across the store", i)
		}
		if !reflect.DeepEqual(res.Report.Entries, want[i].Report.Entries) ||
			res.Report.Arch != want[i].Report.Arch {
			t.Fatalf("bin %d: report round-tripped wrong through the store", i)
		}
	}
	s := e2.Stats()
	if s.StoreHits != 3 || s.Analyzed != 0 || s.CacheMisses != 0 {
		t.Fatalf("restarted engine = %d store hits / %d analyzed / %d misses, want 3/0/0", s.StoreHits, s.Analyzed, s.CacheMisses)
	}
	if s.Store == nil || s.Store.Records != 3 {
		t.Fatalf("store snapshot = %+v, want 3 records", s.Store)
	}

	// A store hit populates the LRU: the next identical request is an
	// LRU hit, not a second disk read.
	res, err := e2.Analyze(context.Background(), bins[0], core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheSource != "lru" {
		t.Fatalf("post-store-hit source = %q, want lru", res.CacheSource)
	}
}

// TestStoreTierKeysRespectOptionsAndArch: different option bits must
// not serve each other's stored results.
func TestStoreTierKeysRespectOptionsAndArch(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	st := newTestStore(t)
	e1 := newTestEngine(t, Config{Jobs: 1, Store: st})
	if _, err := e1.Analyze(context.Background(), raw, core.Config4); err != nil {
		t.Fatal(err)
	}
	e2 := newTestEngine(t, Config{Jobs: 1, Store: st})
	res, err := e2.Analyze(context.Background(), raw, core.Config1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatalf("Config1 request served from Config4's stored result (source %q)", res.CacheSource)
	}
	if s := e2.Stats(); s.StoreHits != 0 || s.CacheMisses != 1 {
		t.Fatalf("stats = %d store hits / %d misses, want 0/1", s.StoreHits, s.CacheMisses)
	}
}

// TestStoreTierWithoutLRU: caching disabled entirely still leaves the
// persistent tier working — every repeat is a store hit.
func TestStoreTierWithoutLRU(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	st := newTestStore(t)
	e := newTestEngine(t, Config{Jobs: 1, CacheBytes: -1, Store: st})
	if _, err := e.Analyze(context.Background(), raw, core.Config4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := e.Analyze(context.Background(), raw, core.Config4)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheSource != "store" {
			t.Fatalf("repeat %d source = %q, want store (LRU disabled)", i, res.CacheSource)
		}
	}
	if s := e.Stats(); s.StoreHits != 3 || s.CacheHits != 0 || s.Analyzed != 1 {
		t.Fatalf("stats = %d store hits / %d lru hits / %d analyzed, want 3/0/1", s.StoreHits, s.CacheHits, s.Analyzed)
	}
}

// TestStoreDecodeErrorDegradesToCold: a corrupt (foreign-version)
// stored value must degrade to a fresh analysis, counted under
// store_errors — never a request failure.
func TestStoreDecodeErrorDegradesToCold(t *testing.T) {
	raw := testBinaries(t, 1)[0]
	st := newTestStore(t)

	// Poison the exact key the engine will look up.
	k := cacheKey{sum: sha256.Sum256(raw), opts: optsBits(core.Config4), arch: elfx.DetectArch(raw)}
	if err := st.Put(storeKey(k), []byte(`{"v":999}`)); err != nil {
		t.Fatal(err)
	}

	e := newTestEngine(t, Config{Jobs: 1, Store: st})
	res, err := e.Analyze(context.Background(), raw, core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || len(res.Report.Entries) == 0 {
		t.Fatalf("poisoned store served cached=%v, want a fresh full analysis", res.Cached)
	}
	s := e.Stats()
	if s.StoreErrors == 0 {
		t.Fatal("decode failure not counted under store_errors")
	}
	if s.Failures != 0 || s.CacheMisses != 1 {
		t.Fatalf("failures/misses = %d/%d, want 0/1", s.Failures, s.CacheMisses)
	}
	// The fresh result overwrote the poison: a new engine now store-hits.
	e2 := newTestEngine(t, Config{Jobs: 1, Store: st})
	res2, err := e2.Analyze(context.Background(), raw, core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheSource != "store" {
		t.Fatalf("after overwrite, source = %q, want store", res2.CacheSource)
	}
}

// TestStoredResultCodecQuick: the value codec round-trips arbitrary
// report shapes bit-exactly.
func TestStoredResultCodecQuick(t *testing.T) {
	prop := func(entries, endbrs []uint64, fir, flp int, warnings []string, nbytes uint16) bool {
		res := &Result{
			Report: &core.Report{
				Arch:                   "x86-64",
				Entries:                entries,
				Endbrs:                 endbrs,
				FilteredIndirectReturn: fir,
				FilteredLandingPads:    flp,
				Warnings:               warnings,
			},
			SHA256:      "8d14a573cdbdb212e38b8d83e20b0cd0bbbabd872f1a4445b0f2d72e2a307d12",
			BinaryBytes: int(nbytes),
		}
		val, err := encodeStoredResult(res)
		if err != nil {
			return false
		}
		got, err := decodeStoredResult(val)
		if err != nil {
			return false
		}
		return got.SHA256 == res.SHA256 &&
			got.BinaryBytes == res.BinaryBytes &&
			got.Report.Arch == res.Report.Arch &&
			len(got.Report.Entries) == len(res.Report.Entries) &&
			reflect.DeepEqual(nonNil(got.Report.Entries), nonNil(res.Report.Entries)) &&
			reflect.DeepEqual(nonNil(got.Report.Endbrs), nonNil(res.Report.Endbrs)) &&
			got.Report.FilteredIndirectReturn == res.Report.FilteredIndirectReturn &&
			got.Report.FilteredLandingPads == res.Report.FilteredLandingPads
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}

	// Version and shape guards reject foreign records.
	for _, bad := range []string{`{"v":0}`, `{"v":2,"sha256":""}`, `not json`, ``} {
		if _, err := decodeStoredResult([]byte(bad)); err == nil {
			t.Fatalf("decode accepted %q", bad)
		}
	}
}

func nonNil(s []uint64) []uint64 {
	if s == nil {
		return []uint64{}
	}
	return s
}

// TestCounterConsistencyWithStore extends the PR-5 pinning property to
// the persistent tier: under a randomized concurrent workload with an
// LRU small enough to evict constantly and a store underneath,
//
//	requests == lru_hits + store_hits + misses + coalesced + canceled + failures
//	analyzed == misses
//
// and the store tier genuinely absorbs LRU evictions (store_hits > 0),
// so a store hit misclassified as a cold miss (the skew this test
// exists to catch) breaks the sums.
func TestCounterConsistencyWithStore(t *testing.T) {
	bins := testBinaries(t, 4)
	st := newTestStore(t)

	// Budget for roughly one report: every distinct binary evicts the
	// previous one, so repeats miss the LRU and fall to the store.
	probe := newTestEngine(t, Config{Jobs: 2})
	r, err := probe.Analyze(context.Background(), bins[0], core.Config4)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, Config{Jobs: 3, CacheBytes: entrySize(r.Report) + entrySize(r.Report)/2, Store: st})

	junk := [][]byte{[]byte("not an elf"), {}, []byte("\x7fELF torn")}
	const goroutines = 10
	const iters = 40
	var issued atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(9000 + g)))
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				var raw []byte
				switch rng.Intn(12) {
				case 0: // malformed -> failure
					raw = junk[rng.Intn(len(junk))]
				case 1: // pre-canceled -> canceled
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					cancel()
					raw = bins[rng.Intn(len(bins))]
				default: // good -> lru hit, store hit, miss, or coalesced
					raw = bins[rng.Intn(len(bins))]
				}
				issued.Add(1)
				_, _ = e.Analyze(ctx, raw, core.Config4)
			}
		}(g)
	}
	wg.Wait()

	s := e.Stats()
	if s.Requests != issued.Load() {
		t.Fatalf("requests = %d, issued %d", s.Requests, issued.Load())
	}
	if s.Analyzed != s.CacheMisses {
		t.Fatalf("analyzed %d != cache_misses %d", s.Analyzed, s.CacheMisses)
	}
	sum := s.CacheHits + s.StoreHits + s.CacheMisses + s.Coalesced + s.Canceled + s.Failures
	if sum != s.Requests {
		t.Fatalf("lru %d + store %d + misses %d + coalesced %d + canceled %d + failures %d = %d, want requests %d",
			s.CacheHits, s.StoreHits, s.CacheMisses, s.Coalesced, s.Canceled, s.Failures, sum, s.Requests)
	}
	// The workload exercised the new tier for real.
	if s.StoreHits == 0 {
		t.Fatal("degenerate workload: no store hits despite constant LRU eviction")
	}
	if s.Evictions == 0 || s.CacheMisses == 0 || s.Canceled == 0 || s.Failures == 0 {
		t.Fatalf("degenerate workload: evictions %d misses %d canceled %d failures %d",
			s.Evictions, s.CacheMisses, s.Canceled, s.Failures)
	}
	// Every distinct (binary, options) pair was analyzed cold at most
	// once per store generation: misses never exceed puts + errors.
	if s.StorePuts < 4 {
		t.Fatalf("store puts = %d, want one per distinct binary at minimum", s.StorePuts)
	}
	if s.InFlight != 0 {
		t.Fatalf("in-flight = %d after quiesce", s.InFlight)
	}

	// And the durability story holds end to end: a fresh engine over
	// the same store serves all four binaries without re-analyzing.
	e2 := newTestEngine(t, Config{Jobs: 2, Store: st})
	for i, raw := range bins {
		res, err := e2.Analyze(context.Background(), raw, core.Config4)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheSource != "store" {
			t.Fatalf("bin %d after restart: source %q, want store", i, res.CacheSource)
		}
	}
	if s2 := e2.Stats(); s2.Analyzed != 0 {
		t.Fatalf("restarted engine re-analyzed %d binaries", s2.Analyzed)
	}
}
