package engine

import (
	"fmt"
	"strings"
	"time"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/obs"
	"github.com/funseeker/funseeker/internal/store"
)

// engineMetrics is the engine's observability surface: latency
// histograms the engine must feed itself, plus sampled counters/gauges
// that read the existing atomic service stats at scrape time so the same
// number is never maintained twice.
//
// One engine registers one family set; sharing a registry between two
// engines panics on the duplicate names, which is deliberate — create
// one engine per process (see Engine's doc comment).
type engineMetrics struct {
	// analyze is the end-to-end Analyze latency, observed for every
	// request whatever its outcome (hit, coalesced, cold, failed,
	// canceled): the number a service SLO is written against.
	analyze *obs.Histogram
	// queue is the time a cold analysis waited for a worker slot —
	// saturation of the bounded pool shows up here first.
	queue *obs.Histogram
	// stages is the per-binary cost of each analysis stage, labeled
	// stage="sweep" | "eh-parse" | "landing-pad" | "superset" |
	// "filter" | "tail-call" (the analysis.Stats canonical names).
	stages *obs.HistogramVec
}

// registerEngineMetrics wires e's counters into reg and returns the
// histogram set the hot path feeds.
func registerEngineMetrics(reg *obs.Registry, e *Engine) *engineMetrics {
	m := &engineMetrics{
		analyze: reg.NewHistogram("funseeker_engine_analyze_seconds",
			"End-to-end Analyze latency per request, all outcomes.", nil),
		queue: reg.NewHistogram("funseeker_engine_queue_wait_seconds",
			"Time a cold analysis waited for a worker-pool slot.", nil),
		stages: reg.NewHistogramVec("funseeker_engine_stage_seconds",
			"Per-binary analysis stage cost.", "stage", nil),
	}
	reg.NewCounterFunc("funseeker_engine_requests_total",
		"Analyze requests accepted.", e.requests.Load)
	reg.NewCounterFunc("funseeker_engine_analyzed_total",
		"Completed cold analyses.", e.analyzed.Load)
	reg.NewCounterFunc("funseeker_engine_cache_hits_total",
		"Requests served from the in-memory LRU result cache.", e.hits.Load)
	reg.NewCounterFunc("funseeker_engine_store_hits_total",
		"Requests that missed the LRU but were served from the persistent result store.", e.storeHits.Load)
	reg.NewCounterFunc("funseeker_engine_store_puts_total",
		"Cold results written through to the persistent result store.", e.storePuts.Load)
	reg.NewCounterFunc("funseeker_engine_store_errors_total",
		"Persistent-store reads, writes, or decodes that failed (degraded, not fatal).", e.storeErrors.Load)
	reg.NewCounterFunc("funseeker_engine_cache_misses_total",
		"Requests that ran a fresh analysis.", e.misses.Load)
	reg.NewCounterFunc("funseeker_engine_coalesced_total",
		"Requests served by waiting on an identical in-flight analysis.", e.coalesced.Load)
	reg.NewCounterFunc("funseeker_engine_canceled_total",
		"Requests abandoned through their context.", e.canceled.Load)
	reg.NewCounterFunc("funseeker_engine_failures_total",
		"Requests that failed for non-context reasons.", e.failures.Load)
	reg.NewCounterFunc("funseeker_engine_bytes_analyzed_total",
		"Total size of all cold-analyzed ELF images.", e.bytesIn.Load)
	reg.NewGaugeFunc("funseeker_engine_in_flight",
		"Analyses running right now.", func() float64 { return float64(e.inFlight.Load()) })
	reg.NewGaugeFunc("funseeker_engine_jobs",
		"Worker-pool width.", func() float64 { return float64(e.jobs) })
	reg.NewGaugeFunc("funseeker_engine_cache_entries",
		"Result-cache entry count.", func() float64 { n, _, _, _ := e.cacheStats(); return float64(n) })
	reg.NewGaugeFunc("funseeker_engine_cache_bytes",
		"Result-cache retained bytes.", func() float64 { _, b, _, _ := e.cacheStats(); return float64(b) })
	reg.NewCounterFunc("funseeker_engine_cache_evictions_total",
		"Result-cache evictions.", func() uint64 { _, _, _, ev := e.cacheStats(); return ev })
	reg.NewGaugeFunc("funseeker_engine_store_records",
		"Live records in the persistent result store.",
		func() float64 { return float64(e.storeStats().Records) })
	reg.NewGaugeFunc("funseeker_engine_store_bytes",
		"On-disk segment bytes of the persistent result store.",
		func() float64 { return float64(e.storeStats().SegmentBytes) })
	reg.NewCounterFunc("funseeker_engine_store_injected_total",
		"Results installed by replication (InjectResult) rather than computed here.",
		e.storeInjected.Load)
	reg.NewCounterFunc("funseeker_store_compactions_total",
		"Completed store compactions (background and explicit).",
		func() uint64 { return e.storeStats().Compaction.Compactions })
	reg.NewCounterFunc("funseeker_store_reclaimed_bytes_total",
		"On-disk bytes freed by store compactions.",
		func() uint64 { return uint64(max64(e.storeStats().Compaction.ReclaimedBytes, 0)) })
	reg.NewGaugeFunc("funseeker_store_live_record_bytes",
		"On-disk bytes of newest-per-key store records.",
		func() float64 { return float64(e.storeStats().Compaction.LiveRecordBytes) })
	reg.NewGaugeFunc("funseeker_store_garbage_bytes",
		"On-disk bytes occupied by superseded store records.",
		func() float64 { return float64(e.storeStats().Compaction.GarbageBytes) })
	reg.NewGaugeFunc("funseeker_store_garbage_ratio",
		"Fraction of store bytes that are superseded records.",
		func() float64 { return e.storeStats().Compaction.GarbageRatio })
	return m
}

// max64 exists because the metrics funcs want a non-negative counter
// view of a signed accounting value.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// storeStats is the nil-safe store snapshot behind the sampled metrics.
func (e *Engine) storeStats() store.Stats {
	if e.store == nil {
		return store.Stats{}
	}
	return e.store.Stats()
}

// cacheStats is the nil-safe cache snapshot behind the sampled metrics.
func (e *Engine) cacheStats() (int, int64, int64, uint64) {
	if e.cache == nil {
		return 0, 0, 0, 0
	}
	return e.cache.stats()
}

// observeStages feeds one cold analysis' per-stage wall-clock costs into
// the stage histograms. Stages the binary never exercised (no .eh_frame,
// superset scan off, ...) record nothing rather than a flood of zeros.
func (m *engineMetrics) observeStages(st analysis.Stats) {
	st.EachStage(func(name string, s analysis.StageStat) {
		if s.Computes == 0 {
			return
		}
		m.stages.With(name).ObserveDuration(s.Time)
	})
}

// QueueWaitSnapshot returns the worker-slot queue-wait distribution —
// the saturation signal the server's load shedder watches. Cheap
// enough to call per request (a bounded atomic scan).
func (e *Engine) QueueWaitSnapshot() obs.HistSnapshot {
	return e.met.queue.Snapshot()
}

// StageLatencies returns the engine's latency distributions by name:
// the analysis stages (per cold analysis), "queue-wait" (worker-slot
// wait), and "analyze" (end-to-end request latency, all outcomes).
func (e *Engine) StageLatencies() map[string]obs.HistSnapshot {
	out := map[string]obs.HistSnapshot{
		"queue-wait": e.met.queue.Snapshot(),
		"analyze":    e.met.analyze.Snapshot(),
	}
	analysis.Stats{}.EachStage(func(name string, _ analysis.StageStat) {
		out[name] = e.met.stages.With(name).Snapshot()
	})
	return out
}

// stageTableOrder fixes the row order of StageLatencyTable: pipeline
// position first, service-level rows last.
var stageTableOrder = []string{
	"queue-wait", "sweep", "eh-parse", "landing-pad", "superset",
	"filter", "tail-call", "analyze",
}

// StageLatencyTable renders the per-stage latency distribution summary
// (count, p50/p90/p99, total) the corpus CLI prints at exit. Stages
// with no samples are omitted.
func (e *Engine) StageLatencyTable() string {
	snaps := e.StageLatencies()
	var b strings.Builder
	fmt.Fprintf(&b, "Per-stage latency distribution (cold analyses)\n")
	fmt.Fprintf(&b, "  %-12s %9s %12s %12s %12s %12s\n", "stage", "count", "p50", "p90", "p99", "total")
	for _, name := range stageTableOrder {
		s, ok := snaps[name]
		if !ok || s.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-12s %9d %12s %12s %12s %12s\n", name, s.Count,
			secsDur(s.Quantile(0.50)), secsDur(s.Quantile(0.90)),
			secsDur(s.Quantile(0.99)), secsDur(s.Sum))
	}
	return b.String()
}

// secsDur renders a seconds float as a rounded time.Duration.
func secsDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond)
}
