package engine

import (
	"encoding/hex"
	"errors"
	"fmt"

	"github.com/funseeker/funseeker/internal/store"
)

// This file is the engine's replica-transfer surface: the primitives
// funseekerd exposes as GET/PUT /v1/result and GET /v1/keys so the
// router can copy *stored results* between replicas instead of
// recomputing them — the difference between warm and cold failover.

// ErrNoStore reports an operation that needs the persistent store on
// an engine configured without one.
var ErrNoStore = errors.New("engine: no persistent store configured")

// StoredValue returns the raw stored-result value for a hex store key,
// exactly as the store holds it (the versioned JSON the storecodec
// writes). ok is false when the key is absent.
func (e *Engine) StoredValue(keyHex string) (val []byte, ok bool, err error) {
	if e.store == nil {
		return nil, false, ErrNoStore
	}
	key, err := hex.DecodeString(keyHex)
	if err != nil || len(key) != storeKeyLen {
		return nil, false, fmt.Errorf("engine: malformed store key %q", keyHex)
	}
	return e.store.Get(key)
}

// InjectResult installs a stored-result value computed elsewhere under
// the given hex store key: it validates the codec (version, shape) and
// that the value's content hash matches the key — a replica must never
// be able to poison another's cache with a mislabeled result — then
// writes it through the store and warms the LRU. Re-injecting an
// existing key is an idempotent overwrite, like any same-key Put.
func (e *Engine) InjectResult(keyHex string, val []byte) error {
	if e.store == nil {
		return ErrNoStore
	}
	key, err := hex.DecodeString(keyHex)
	if err != nil {
		return fmt.Errorf("engine: malformed store key %q", keyHex)
	}
	k, err := parseStoreKey(key)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	res, err := decodeStoredResult(val)
	if err != nil {
		return fmt.Errorf("engine: rejecting injected result: %w", err)
	}
	if res.SHA256 != hex.EncodeToString(k.sum[:]) {
		return fmt.Errorf("engine: injected result sha256 %s does not match key", res.SHA256)
	}
	if err := e.store.Put(key, val); err != nil {
		e.storeErrors.Add(1)
		return err
	}
	if e.cache != nil {
		e.cache.add(k, res)
	}
	e.storeInjected.Add(1)
	return nil
}

// StoreKeys returns the hex store keys of every persisted result. The
// router's re-replication path diffs these sets across replicas to
// find what a rejoining node is missing.
func (e *Engine) StoreKeys() ([]string, error) {
	if e.store == nil {
		return nil, ErrNoStore
	}
	raw := e.store.Keys()
	keys := make([]string, 0, len(raw))
	for _, k := range raw {
		keys = append(keys, hex.EncodeToString(k))
	}
	return keys, nil
}

// CompactStore runs one explicit store compaction (the admin/CLI/test
// entry point; the background compactor runs the same rewrite on its
// own schedule for engine-owned stores).
func (e *Engine) CompactStore() (store.CompactResult, error) {
	if e.store == nil {
		return store.CompactResult{}, ErrNoStore
	}
	return e.store.Compact()
}
