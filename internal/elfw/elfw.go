// Package elfw writes ELF32 / ELF64 executable images from scratch.
//
// It is the final stage of the synthetic CET-enabled toolchain: the code
// and metadata produced by internal/asmx, internal/ehframe, and
// internal/lsda are packaged into an ELF file that standard tooling
// (including Go's debug/elf) parses cleanly. The writer supports
// program headers, static and dynamic symbol tables, PLT relocation
// sections, and the GNU property note that marks a binary as CET-enabled.
package elfw

import (
	"bytes"
	"debug/elf"
	"encoding/binary"
	"fmt"
	"sort"
)

// Section is one section to be emitted.
type Section struct {
	// Name is the section name, e.g. ".text".
	Name string
	// Type is the section type (elf.SHT_*).
	Type elf.SectionType
	// Flags is the section flag set (elf.SHF_*).
	Flags elf.SectionFlag
	// Addr is the virtual address of the section, zero for unallocated
	// sections.
	Addr uint64
	// Data is the raw contents. Ignored for SHT_NOBITS.
	Data []byte
	// Size overrides len(Data) for SHT_NOBITS sections.
	Size uint64
	// Link and Info carry the type-specific sh_link / sh_info values.
	Link uint32
	Info uint32
	// Addralign is the required alignment; 1 when zero.
	Addralign uint64
	// Entsize is the per-entry size for table sections.
	Entsize uint64
}

// File models an ELF executable under construction.
type File struct {
	// Class selects ELF32 or ELF64.
	Class elf.Class
	// Type is the object type, typically ET_EXEC or ET_DYN.
	Type elf.Type
	// Machine is the architecture (EM_386 or EM_X86_64).
	Machine elf.Machine
	// Entry is the program entry point.
	Entry uint64

	sections []*Section
}

// New returns an empty File of the given class. The machine is implied by
// the class: EM_386 for ELF32, EM_X86_64 for ELF64.
func New(class elf.Class, typ elf.Type) *File {
	machine := elf.EM_X86_64
	if class == elf.ELFCLASS32 {
		machine = elf.EM_386
	}
	return &File{Class: class, Type: typ, Machine: machine}
}

// AddSection appends a section. Sections are emitted in insertion order.
func (f *File) AddSection(s *Section) {
	f.sections = append(f.sections, s)
}

// Section returns the named section, or nil.
func (f *File) Section(name string) *Section {
	for _, s := range f.sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// RemoveSection deletes the named section; it reports whether the section
// existed. Used to produce stripped binaries.
func (f *File) RemoveSection(name string) bool {
	for i, s := range f.sections {
		if s.Name == name {
			f.sections = append(f.sections[:i], f.sections[i+1:]...)
			return true
		}
	}
	return false
}

func (f *File) is64() bool { return f.Class == elf.ELFCLASS64 }

// header geometry per class.
func (f *File) ehsize() int {
	if f.is64() {
		return 64
	}
	return 52
}

func (f *File) phentsize() int {
	if f.is64() {
		return 56
	}
	return 32
}

func (f *File) shentsize() int {
	if f.is64() {
		return 64
	}
	return 40
}

// segment is an internal PT_LOAD descriptor derived from the sections.
type segment struct {
	flags  elf.ProgFlag
	vaddr  uint64
	offset uint64
	filesz uint64
	memsz  uint64
}

// Bytes lays out and serializes the file.
func (f *File) Bytes() ([]byte, error) {
	if f.Class != elf.ELFCLASS32 && f.Class != elf.ELFCLASS64 {
		return nil, fmt.Errorf("elfw: unsupported class %v", f.Class)
	}
	// Build .shstrtab last so it covers every section name.
	shstr := newStrtab()
	for _, s := range f.sections {
		shstr.add(s.Name)
	}
	shstr.add(".shstrtab")
	shstrData := shstr.bytes()

	// Loadable sections must appear in the file at offsets congruent to
	// their virtual addresses modulo the page size; we keep a simple
	// monotone layout and align each section to max(align, required).
	const pageSize = 0x1000
	placedSecs := make([]placed, 0, len(f.sections)+1)

	// Reserve room for the ELF header and program header table at the
	// front of the file.
	phnum := f.countSegments()
	off := uint64(f.ehsize() + phnum*f.phentsize())

	for _, s := range f.sections {
		align := s.Addralign
		if align == 0 {
			align = 1
		}
		size := uint64(len(s.Data))
		if s.Type == elf.SHT_NOBITS {
			size = s.Size
			placedSecs = append(placedSecs, placed{sec: s, offset: off, size: size})
			continue
		}
		if s.Addr != 0 {
			// Keep offset ≡ vaddr (mod page) for loadability.
			delta := (s.Addr - off) % pageSize
			off += delta
		} else {
			off = alignUp(off, align)
		}
		placedSecs = append(placedSecs, placed{sec: s, offset: off, size: size})
		off += size
	}
	// .shstrtab
	off = alignUp(off, 1)
	shstrOff := off
	off += uint64(len(shstrData))
	// Section header table, aligned to the natural word size.
	off = alignUp(off, 8)
	shoff := off

	// Build program headers from the placed, allocated sections.
	segs := f.buildSegments(placedSecs)

	var buf bytes.Buffer
	f.writeEhdr(&buf, shoff, phnum, len(placedSecs)+2 /* null + shstrtab */, len(placedSecs)+1)
	f.writePhdrs(&buf, segs)

	// Section contents.
	for _, p := range placedSecs {
		if p.sec.Type == elf.SHT_NOBITS {
			continue
		}
		pad(&buf, p.offset)
		buf.Write(p.sec.Data)
	}
	pad(&buf, shstrOff)
	buf.Write(shstrData)
	pad(&buf, shoff)

	// Section header table: NULL, user sections, .shstrtab.
	nameIndex := make(map[string]uint32, len(f.sections)+1)
	for _, s := range f.sections {
		nameIndex[s.Name] = shstr.index(s.Name)
	}
	f.writeShdr(&buf, shdrValues{}) // SHT_NULL
	for _, p := range placedSecs {
		s := p.sec
		f.writeShdr(&buf, shdrValues{
			name:      nameIndex[s.Name],
			typ:       uint32(s.Type),
			flags:     uint64(s.Flags),
			addr:      s.Addr,
			offset:    p.offset,
			size:      p.size,
			link:      s.Link,
			info:      s.Info,
			addralign: s.Addralign,
			entsize:   s.Entsize,
		})
	}
	f.writeShdr(&buf, shdrValues{
		name:      shstr.index(".shstrtab"),
		typ:       uint32(elf.SHT_STRTAB),
		offset:    shstrOff,
		size:      uint64(len(shstrData)),
		addralign: 1,
	})
	return buf.Bytes(), nil
}

// countSegments counts PT_LOAD groups plus the PT_NOTE segment when a
// note section is present.
func (f *File) countSegments() int {
	n := 0
	seen := map[elf.ProgFlag]bool{}
	hasNote := false
	for _, s := range f.sections {
		if s.Flags&elf.SHF_ALLOC == 0 || s.Addr == 0 {
			continue
		}
		fl := progFlags(s.Flags)
		if !seen[fl] {
			seen[fl] = true
			n++
		}
		if s.Type == elf.SHT_NOTE {
			hasNote = true
		}
	}
	if hasNote {
		n++
	}
	return n
}

// placed pairs a section with its assigned file offset.
type placed struct {
	sec    *Section
	offset uint64
	size   uint64
}

// buildSegments groups allocated sections into PT_LOAD segments by their
// access flags, plus a PT_NOTE for note sections.
func (f *File) buildSegments(placedSecs []placed) []segWithType {
	groups := map[elf.ProgFlag]*segment{}
	var order []elf.ProgFlag
	var note *segment
	for _, p := range placedSecs {
		s := p.sec
		if s.Flags&elf.SHF_ALLOC == 0 || s.Addr == 0 {
			continue
		}
		fl := progFlags(s.Flags)
		g, ok := groups[fl]
		if !ok {
			g = &segment{flags: fl, vaddr: s.Addr, offset: p.offset}
			groups[fl] = g
			order = append(order, fl)
		}
		endV := s.Addr + p.size
		endF := p.offset + p.size
		if s.Addr < g.vaddr {
			g.vaddr = s.Addr
			g.offset = p.offset
		}
		if endV > g.vaddr+g.memsz {
			g.memsz = endV - g.vaddr
		}
		if s.Type != elf.SHT_NOBITS && endF > g.offset+g.filesz {
			g.filesz = endF - g.offset
		}
		if s.Type == elf.SHT_NOTE {
			note = &segment{flags: elf.PF_R, vaddr: s.Addr, offset: p.offset, filesz: p.size, memsz: p.size}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return groups[order[i]].vaddr < groups[order[j]].vaddr
	})
	out := make([]segWithType, 0, len(order)+1)
	for _, fl := range order {
		out = append(out, segWithType{typ: elf.PT_LOAD, seg: *groups[fl]})
	}
	if note != nil {
		out = append(out, segWithType{typ: elf.PT_NOTE, seg: *note})
	}
	return out
}

type segWithType struct {
	typ elf.ProgType
	seg segment
}

func progFlags(sf elf.SectionFlag) elf.ProgFlag {
	fl := elf.PF_R
	if sf&elf.SHF_WRITE != 0 {
		fl |= elf.PF_W
	}
	if sf&elf.SHF_EXECINSTR != 0 {
		fl |= elf.PF_X
	}
	return fl
}

func alignUp(v, align uint64) uint64 {
	if align <= 1 {
		return v
	}
	return (v + align - 1) / align * align
}

func pad(buf *bytes.Buffer, to uint64) {
	for uint64(buf.Len()) < to {
		buf.WriteByte(0)
	}
}

func (f *File) writeEhdr(buf *bytes.Buffer, shoff uint64, phnum, shnum, shstrndx int) {
	ident := [16]byte{0x7f, 'E', 'L', 'F'}
	ident[4] = byte(f.Class)
	ident[5] = byte(elf.ELFDATA2LSB)
	ident[6] = byte(elf.EV_CURRENT)
	ident[7] = byte(elf.ELFOSABI_NONE)
	buf.Write(ident[:])
	le := binary.LittleEndian
	w16 := func(v uint16) { var b [2]byte; le.PutUint16(b[:], v); buf.Write(b[:]) }
	w32 := func(v uint32) { var b [4]byte; le.PutUint32(b[:], v); buf.Write(b[:]) }
	w64 := func(v uint64) { var b [8]byte; le.PutUint64(b[:], v); buf.Write(b[:]) }
	w16(uint16(f.Type))
	w16(uint16(f.Machine))
	w32(uint32(elf.EV_CURRENT))
	phoff := uint64(f.ehsize())
	if phnum == 0 {
		phoff = 0
	}
	if f.is64() {
		w64(f.Entry)
		w64(phoff)
		w64(shoff)
		w32(0) // flags
		w16(uint16(f.ehsize()))
		w16(uint16(f.phentsize()))
		w16(uint16(phnum))
		w16(uint16(f.shentsize()))
		w16(uint16(shnum))
		w16(uint16(shstrndx))
	} else {
		w32(uint32(f.Entry))
		w32(uint32(phoff))
		w32(uint32(shoff))
		w32(0)
		w16(uint16(f.ehsize()))
		w16(uint16(f.phentsize()))
		w16(uint16(phnum))
		w16(uint16(f.shentsize()))
		w16(uint16(shnum))
		w16(uint16(shstrndx))
	}
}

func (f *File) writePhdrs(buf *bytes.Buffer, segs []segWithType) {
	le := binary.LittleEndian
	w32 := func(v uint32) { var b [4]byte; le.PutUint32(b[:], v); buf.Write(b[:]) }
	w64 := func(v uint64) { var b [8]byte; le.PutUint64(b[:], v); buf.Write(b[:]) }
	for _, st := range segs {
		s := st.seg
		if f.is64() {
			w32(uint32(st.typ))
			w32(uint32(s.flags))
			w64(s.offset)
			w64(s.vaddr)
			w64(s.vaddr) // paddr
			w64(s.filesz)
			w64(s.memsz)
			w64(0x1000)
		} else {
			w32(uint32(st.typ))
			w32(uint32(s.offset))
			w32(uint32(s.vaddr))
			w32(uint32(s.vaddr))
			w32(uint32(s.filesz))
			w32(uint32(s.memsz))
			w32(uint32(s.flags))
			w32(0x1000)
		}
	}
}

type shdrValues struct {
	name      uint32
	typ       uint32
	flags     uint64
	addr      uint64
	offset    uint64
	size      uint64
	link      uint32
	info      uint32
	addralign uint64
	entsize   uint64
}

func (f *File) writeShdr(buf *bytes.Buffer, v shdrValues) {
	le := binary.LittleEndian
	w32 := func(x uint32) { var b [4]byte; le.PutUint32(b[:], x); buf.Write(b[:]) }
	w64 := func(x uint64) { var b [8]byte; le.PutUint64(b[:], x); buf.Write(b[:]) }
	if f.is64() {
		w32(v.name)
		w32(v.typ)
		w64(v.flags)
		w64(v.addr)
		w64(v.offset)
		w64(v.size)
		w32(v.link)
		w32(v.info)
		w64(v.addralign)
		w64(v.entsize)
	} else {
		w32(v.name)
		w32(v.typ)
		w32(uint32(v.flags))
		w32(uint32(v.addr))
		w32(uint32(v.offset))
		w32(uint32(v.size))
		w32(v.link)
		w32(v.info)
		w32(uint32(v.addralign))
		w32(uint32(v.entsize))
	}
}

// strtab builds a classic NUL-separated string table.
type strtab struct {
	buf     []byte
	offsets map[string]uint32
}

func newStrtab() *strtab {
	return &strtab{buf: []byte{0}, offsets: map[string]uint32{"": 0}}
}

func (st *strtab) add(s string) uint32 {
	if off, ok := st.offsets[s]; ok {
		return off
	}
	off := uint32(len(st.buf))
	st.buf = append(st.buf, s...)
	st.buf = append(st.buf, 0)
	st.offsets[s] = off
	return off
}

func (st *strtab) index(s string) uint32 {
	off, ok := st.offsets[s]
	if !ok {
		return 0
	}
	return off
}

func (st *strtab) bytes() []byte { return st.buf }
