package elfw

import (
	"bytes"
	"debug/elf"
	"os"
	"path/filepath"
	"testing"
)

// readBack parses the serialized image with the standard library reader.
func readBack(t *testing.T, f *File) *elf.File {
	t.Helper()
	raw, err := f.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	ef, err := elf.NewFile(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("debug/elf rejected the image: %v", err)
	}
	return ef
}

// minimalFile builds a small two-section executable.
func minimalFile(class elf.Class) *File {
	f := New(class, elf.ET_EXEC)
	textBase := uint64(0x401000)
	if class == elf.ELFCLASS32 {
		textBase = 0x8049000
	}
	f.Entry = textBase
	f.AddSection(&Section{
		Name:      ".text",
		Type:      elf.SHT_PROGBITS,
		Flags:     elf.SHF_ALLOC | elf.SHF_EXECINSTR,
		Addr:      textBase,
		Data:      []byte{0xF3, 0x0F, 0x1E, 0xFA, 0xC3},
		Addralign: 16,
	})
	f.AddSection(&Section{
		Name:      ".rodata",
		Type:      elf.SHT_PROGBITS,
		Flags:     elf.SHF_ALLOC,
		Addr:      textBase + 0x1000,
		Data:      []byte("hello\x00"),
		Addralign: 8,
	})
	return f
}

func TestRoundtrip64(t *testing.T) {
	f := minimalFile(elf.ELFCLASS64)
	ef := readBack(t, f)
	if ef.Class != elf.ELFCLASS64 || ef.Machine != elf.EM_X86_64 || ef.Type != elf.ET_EXEC {
		t.Fatalf("header mismatch: %v %v %v", ef.Class, ef.Machine, ef.Type)
	}
	if ef.Entry != 0x401000 {
		t.Fatalf("entry = %#x", ef.Entry)
	}
	text := ef.Section(".text")
	if text == nil {
		t.Fatal("no .text section")
	}
	data, err := text.Data()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{0xF3, 0x0F, 0x1E, 0xFA, 0xC3}) {
		t.Fatalf(".text = % x", data)
	}
	if text.Addr != 0x401000 {
		t.Fatalf(".text addr = %#x", text.Addr)
	}
	ro := ef.Section(".rodata")
	if ro == nil || ro.Addr != 0x402000 {
		t.Fatal("bad .rodata")
	}
}

func TestRoundtrip32(t *testing.T) {
	f := minimalFile(elf.ELFCLASS32)
	ef := readBack(t, f)
	if ef.Class != elf.ELFCLASS32 || ef.Machine != elf.EM_386 {
		t.Fatalf("header mismatch: %v %v", ef.Class, ef.Machine)
	}
	text := ef.Section(".text")
	if text == nil || text.Addr != 0x8049000 {
		t.Fatal("bad .text")
	}
}

func TestProgramHeaders(t *testing.T) {
	f := minimalFile(elf.ELFCLASS64)
	f.AddSection(&Section{
		Name:      ".data",
		Type:      elf.SHT_PROGBITS,
		Flags:     elf.SHF_ALLOC | elf.SHF_WRITE,
		Addr:      0x404000,
		Data:      make([]byte, 32),
		Addralign: 8,
	})
	ef := readBack(t, f)
	var loads []elf.ProgFlag
	for _, p := range ef.Progs {
		if p.Type == elf.PT_LOAD {
			loads = append(loads, p.Flags)
			if p.Vaddr%0x1000 != p.Off%0x1000 {
				t.Errorf("segment misaligned: vaddr %#x off %#x", p.Vaddr, p.Off)
			}
		}
	}
	// Expect R+X (text), R (rodata), R+W (data).
	if len(loads) != 3 {
		t.Fatalf("got %d PT_LOAD segments, want 3", len(loads))
	}
}

func TestNoteSegment(t *testing.T) {
	f := minimalFile(elf.ELFCLASS64)
	note := GNUPropertyNote(elf.ELFCLASS64, FeatureIBT|FeatureSHSTK)
	f.AddSection(&Section{
		Name:      ".note.gnu.property",
		Type:      elf.SHT_NOTE,
		Flags:     elf.SHF_ALLOC,
		Addr:      0x400300,
		Data:      note,
		Addralign: 8,
	})
	ef := readBack(t, f)
	var foundNote bool
	for _, p := range ef.Progs {
		if p.Type == elf.PT_NOTE {
			foundNote = true
		}
	}
	if !foundNote {
		t.Fatal("no PT_NOTE program header")
	}
	sec := ef.Section(".note.gnu.property")
	if sec == nil {
		t.Fatal("no .note.gnu.property section")
	}
	data, err := sec.Data()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[12:16], []byte("GNU\x00")) {
		t.Fatalf("note name = % x", data[12:16])
	}
}

func TestSymtabRoundtrip(t *testing.T) {
	for _, class := range []elf.Class{elf.ELFCLASS32, elf.ELFCLASS64} {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			f := minimalFile(class)
			sb := NewSymtab(class)
			sb.Add(Symbol{Name: "local_helper", Value: 0x401000, Size: 5, Bind: elf.STB_LOCAL, Type: elf.STT_FUNC, Shndx: 1})
			sb.Add(Symbol{Name: "main", Value: 0x401010, Size: 20, Bind: elf.STB_GLOBAL, Type: elf.STT_FUNC, Shndx: 1})
			sb.Add(Symbol{Name: "g_data", Value: 0x402000, Size: 6, Bind: elf.STB_GLOBAL, Type: elf.STT_OBJECT, Shndx: 2})
			symData, strData, firstGlobal, _ := sb.Emit()
			// .symtab links to .strtab, which will be the section after it.
			f.AddSection(&Section{
				Name: ".symtab", Type: elf.SHT_SYMTAB,
				Data: symData, Link: 4, Info: firstGlobal,
				Addralign: 8, Entsize: uint64(sb.entsize()),
			})
			f.AddSection(&Section{Name: ".strtab", Type: elf.SHT_STRTAB, Data: strData, Addralign: 1})
			ef := readBack(t, f)
			syms, err := ef.Symbols()
			if err != nil {
				t.Fatalf("Symbols: %v", err)
			}
			byName := map[string]elf.Symbol{}
			for _, s := range syms {
				byName[s.Name] = s
			}
			m, ok := byName["main"]
			if !ok {
				t.Fatal("main symbol missing")
			}
			if m.Value != 0x401010 || m.Size != 20 {
				t.Fatalf("main = %+v", m)
			}
			if elf.ST_TYPE(m.Info) != elf.STT_FUNC || elf.ST_BIND(m.Info) != elf.STB_GLOBAL {
				t.Fatalf("main info = %#x", m.Info)
			}
			l, ok := byName["local_helper"]
			if !ok || elf.ST_BIND(l.Info) != elf.STB_LOCAL {
				t.Fatal("local_helper missing or not local")
			}
		})
	}
}

func TestRelocEmission(t *testing.T) {
	relocs := []Reloc{
		{Offset: 0x404018, SymIndex: 1, Type: 7 /* R_X86_64_JUMP_SLOT */},
		{Offset: 0x404020, SymIndex: 2, Type: 7},
	}
	data64 := EmitRelocs(elf.ELFCLASS64, relocs)
	if len(data64) != 48 {
		t.Fatalf("RELA64 size = %d, want 48", len(data64))
	}
	data32 := EmitRelocs(elf.ELFCLASS32, relocs)
	if len(data32) != 16 {
		t.Fatalf("REL32 size = %d, want 16", len(data32))
	}
}

func TestRemoveSection(t *testing.T) {
	f := minimalFile(elf.ELFCLASS64)
	if !f.RemoveSection(".rodata") {
		t.Fatal("RemoveSection returned false")
	}
	if f.RemoveSection(".rodata") {
		t.Fatal("double remove returned true")
	}
	ef := readBack(t, f)
	if ef.Section(".rodata") != nil {
		t.Fatal(".rodata still present")
	}
}

func TestSectionLookup(t *testing.T) {
	f := minimalFile(elf.ELFCLASS64)
	if f.Section(".text") == nil {
		t.Fatal("Section(.text) = nil")
	}
	if f.Section(".nope") != nil {
		t.Fatal("Section(.nope) != nil")
	}
}

func TestWriteToDiskAndOpen(t *testing.T) {
	f := minimalFile(elf.ELFCLASS64)
	raw, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "a.out")
	if err := os.WriteFile(path, raw, 0o755); err != nil {
		t.Fatal(err)
	}
	ef, err := elf.Open(path)
	if err != nil {
		t.Fatalf("elf.Open: %v", err)
	}
	defer ef.Close()
	if ef.Section(".text") == nil {
		t.Fatal("no .text after disk roundtrip")
	}
}

func TestNobitsSection(t *testing.T) {
	f := minimalFile(elf.ELFCLASS64)
	f.AddSection(&Section{
		Name: ".bss", Type: elf.SHT_NOBITS,
		Flags: elf.SHF_ALLOC | elf.SHF_WRITE,
		Addr:  0x405000, Size: 0x100, Addralign: 32,
	})
	ef := readBack(t, f)
	bss := ef.Section(".bss")
	if bss == nil || bss.Size != 0x100 {
		t.Fatal("bad .bss")
	}
}

func TestUnsupportedClass(t *testing.T) {
	f := &File{Class: elf.ELFCLASSNONE}
	if _, err := f.Bytes(); err == nil {
		t.Fatal("want error for bad class")
	}
}
