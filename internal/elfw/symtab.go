package elfw

import (
	"debug/elf"
	"encoding/binary"
)

// Symbol is one symbol-table entry under construction.
type Symbol struct {
	// Name is the symbol name; empty names are allowed.
	Name string
	// Value is the symbol address.
	Value uint64
	// Size is the symbol size in bytes.
	Size uint64
	// Bind is the symbol binding (STB_LOCAL, STB_GLOBAL, ...).
	Bind elf.SymBind
	// Type is the symbol type (STT_FUNC, STT_OBJECT, ...).
	Type elf.SymType
	// Shndx is the index of the section the symbol is defined in.
	Shndx uint16
}

// SymtabBuilder accumulates symbols and serializes a symbol table plus its
// string table. Local symbols are emitted before globals, as the ELF
// specification requires.
type SymtabBuilder struct {
	class elf.Class
	syms  []Symbol
}

// NewSymtab returns a builder for the given ELF class.
func NewSymtab(class elf.Class) *SymtabBuilder {
	return &SymtabBuilder{class: class}
}

// Add appends a symbol.
func (sb *SymtabBuilder) Add(sym Symbol) {
	sb.syms = append(sb.syms, sym)
}

// Len returns the number of symbols added (excluding the mandatory null
// symbol).
func (sb *SymtabBuilder) Len() int { return len(sb.syms) }

// entsize is the per-symbol record size.
func (sb *SymtabBuilder) entsize() int {
	if sb.class == elf.ELFCLASS64 {
		return 24
	}
	return 16
}

// Emit serializes the table. It returns the symtab bytes, the string table
// bytes, the sh_info value (index of the first non-local symbol), and the
// index each added symbol ended up at, keyed by name (last one wins for
// duplicate names).
func (sb *SymtabBuilder) Emit() (symtab, strtabBytes []byte, firstGlobal uint32, indexOf map[string]uint32) {
	st := newStrtab()
	// Stable partition: locals first.
	ordered := make([]Symbol, 0, len(sb.syms))
	for _, s := range sb.syms {
		if s.Bind == elf.STB_LOCAL {
			ordered = append(ordered, s)
		}
	}
	firstGlobal = uint32(len(ordered)) + 1 // +1 for the null symbol
	for _, s := range sb.syms {
		if s.Bind != elf.STB_LOCAL {
			ordered = append(ordered, s)
		}
	}

	le := binary.LittleEndian
	out := make([]byte, 0, (len(ordered)+1)*sb.entsize())
	out = append(out, make([]byte, sb.entsize())...) // null symbol

	indexOf = make(map[string]uint32, len(ordered))
	for i, s := range ordered {
		nameOff := st.add(s.Name)
		info := byte(s.Bind)<<4 | byte(s.Type)&0xf
		var rec []byte
		if sb.class == elf.ELFCLASS64 {
			rec = make([]byte, 24)
			le.PutUint32(rec[0:], nameOff)
			rec[4] = info
			rec[5] = 0
			le.PutUint16(rec[6:], s.Shndx)
			le.PutUint64(rec[8:], s.Value)
			le.PutUint64(rec[16:], s.Size)
		} else {
			rec = make([]byte, 16)
			le.PutUint32(rec[0:], nameOff)
			le.PutUint32(rec[4:], uint32(s.Value))
			le.PutUint32(rec[8:], uint32(s.Size))
			rec[12] = info
			rec[13] = 0
			le.PutUint16(rec[14:], s.Shndx)
		}
		out = append(out, rec...)
		if s.Name != "" {
			indexOf[s.Name] = uint32(i + 1)
		}
	}
	return out, st.bytes(), firstGlobal, indexOf
}

// Reloc is a single relocation entry.
type Reloc struct {
	// Offset is the location to be relocated (for JUMP_SLOT, the GOT
	// entry address).
	Offset uint64
	// SymIndex is the index into the associated symbol table.
	SymIndex uint32
	// Type is the relocation type (e.g. R_X86_64_JUMP_SLOT).
	Type uint32
	// Addend is the RELA addend (64-bit only).
	Addend int64
}

// EmitRelocs serializes relocations: RELA records for ELF64, REL records
// for ELF32, matching what linkers emit for each architecture.
func EmitRelocs(class elf.Class, relocs []Reloc) []byte {
	le := binary.LittleEndian
	if class == elf.ELFCLASS64 {
		out := make([]byte, 0, len(relocs)*24)
		for _, r := range relocs {
			rec := make([]byte, 24)
			le.PutUint64(rec[0:], r.Offset)
			le.PutUint64(rec[8:], uint64(r.SymIndex)<<32|uint64(r.Type))
			le.PutUint64(rec[16:], uint64(r.Addend))
			out = append(out, rec...)
		}
		return out
	}
	out := make([]byte, 0, len(relocs)*8)
	for _, r := range relocs {
		rec := make([]byte, 8)
		le.PutUint32(rec[0:], uint32(r.Offset))
		le.PutUint32(rec[4:], r.SymIndex<<8|r.Type&0xff)
		out = append(out, rec...)
	}
	return out
}

// GNU property note constants for CET marking.
const (
	// noteTypeGNUProperty is NT_GNU_PROPERTY_TYPE_0.
	noteTypeGNUProperty = 5
	// propX86Feature1 is GNU_PROPERTY_X86_FEATURE_1_AND.
	propX86Feature1 = 0xc0000002
	// FeatureIBT marks Indirect Branch Tracking support.
	FeatureIBT = 0x1
	// FeatureSHSTK marks Shadow Stack support.
	FeatureSHSTK = 0x2
)

// propAArch64Feature1 is GNU_PROPERTY_AARCH64_FEATURE_1_AND, the ARM
// analog of the X86 feature word (bit 0 = BTI, bit 1 = PAC).
const propAArch64Feature1 = 0xc0000000

// GNUPropertyNote builds a .note.gnu.property section body declaring the
// given X86 feature bits (FeatureIBT | FeatureSHSTK for a fully
// CET-enabled binary).
func GNUPropertyNote(class elf.Class, features uint32) []byte {
	return gnuPropertyNote(class, propX86Feature1, features)
}

// GNUPropertyNoteAArch64 builds the ARM variant declaring BTI/PAC bits.
func GNUPropertyNoteAArch64(class elf.Class, features uint32) []byte {
	return gnuPropertyNote(class, propAArch64Feature1, features)
}

func gnuPropertyNote(class elf.Class, prType, features uint32) []byte {
	le := binary.LittleEndian
	align := 4
	if class == elf.ELFCLASS64 {
		align = 8
	}
	// Property: pr_type, pr_datasz, data, pad to alignment.
	prop := make([]byte, 8, 8+align)
	le.PutUint32(prop[0:], prType)
	le.PutUint32(prop[4:], 4)
	var data [4]byte
	le.PutUint32(data[:], features)
	prop = append(prop, data[:]...)
	for len(prop)%align != 0 {
		prop = append(prop, 0)
	}
	// Note header: namesz, descsz, type, name "GNU\0".
	out := make([]byte, 12, 16+len(prop))
	le.PutUint32(out[0:], 4)
	le.PutUint32(out[4:], uint32(len(prop)))
	le.PutUint32(out[8:], noteTypeGNUProperty)
	out = append(out, 'G', 'N', 'U', 0)
	out = append(out, prop...)
	return out
}
