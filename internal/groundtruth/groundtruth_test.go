package groundtruth

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleGT() *GT {
	return &GT{
		Program: "prog",
		Config:  "gcc-x86-64-nopie-O2",
		Lang:    "c++",
		Funcs: []Func{
			{Name: "main", Addr: 0x2000, Size: 0x80, HasEndbr: true},
			{Name: "helper", Addr: 0x1000, Size: 0x40, Static: true},
			{Name: "dead", Addr: 0x3000, Size: 0x10, Static: true, Dead: true},
		},
		PartBlocks: []uint64{0x4000},
		Endbrs: []EndbrSite{
			{Addr: 0x2000, Role: RoleFuncEntry},
			{Addr: 0x2040, Role: RoleIndirectReturn},
			{Addr: 0x2060, Role: RoleException},
		},
	}
}

func TestEntriesAndSorted(t *testing.T) {
	gt := sampleGT()
	e := gt.Entries()
	if len(e) != 3 || !e[0x1000] || !e[0x2000] || !e[0x3000] {
		t.Fatalf("Entries = %v", e)
	}
	sorted := gt.SortedEntries()
	want := []uint64{0x1000, 0x2000, 0x3000}
	if !reflect.DeepEqual(sorted, want) {
		t.Fatalf("SortedEntries = %#x", sorted)
	}
}

func TestFuncAt(t *testing.T) {
	gt := sampleGT()
	f, ok := gt.FuncAt(0x2000)
	if !ok || f.Name != "main" {
		t.Fatalf("FuncAt(0x2000) = (%+v, %v)", f, ok)
	}
	if _, ok := gt.FuncAt(0x9999); ok {
		t.Fatal("FuncAt on unknown address succeeded")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	gt := sampleGT()
	path := filepath.Join(t.TempDir(), "x.gt.json")
	if err := gt.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, gt) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, gt)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("want error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("want error for malformed JSON")
	}
}

func TestRoleStrings(t *testing.T) {
	for role, want := range map[EndbrRole]string{
		RoleFuncEntry:      "func-entry",
		RoleIndirectReturn: "indirect-ret",
		RoleException:      "exception",
	} {
		if role.String() != want {
			t.Errorf("%d.String() = %q, want %q", role, role.String(), want)
		}
	}
	if EndbrRole(99).String() == "" {
		t.Error("unknown role must render")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
