// Package groundtruth models the function-entry ground truth for a
// synthesized binary, mirroring the rules the FunSeeker paper uses when
// extracting ground truth from DWARF symbols (§V-A1):
//
//   - compiler-generated .cold / .part fragments carry a symbol but are
//     NOT functions and are excluded;
//   - the __x86.get_pc_thunk intrinsic sometimes lacks a symbol but IS a
//     function and is included.
//
// The synthesizer emits this structure as a sidecar next to each binary;
// the evaluation harness scores identification tools against it.
package groundtruth

import (
	"encoding/json"
	"fmt"
	"os"
	"slices"
)

// EndbrRole classifies where an end-branch instruction sits (Table I).
type EndbrRole int

// End-branch roles.
const (
	// RoleFuncEntry is an end branch at a function entry.
	RoleFuncEntry EndbrRole = iota + 1
	// RoleIndirectReturn is an end branch placed after a call to an
	// indirect-return function (setjmp family).
	RoleIndirectReturn
	// RoleException is an end branch at an exception landing pad.
	RoleException
	// RoleJumpTarget is a marker at an indirect-jump-only target, e.g.
	// an ARM `BTI j` switch-table case label. x86 has no equivalent
	// because NOTRACK exempts switch dispatch from tracking.
	RoleJumpTarget
)

// String names the role as in Table I's columns.
func (r EndbrRole) String() string {
	switch r {
	case RoleFuncEntry:
		return "func-entry"
	case RoleIndirectReturn:
		return "indirect-ret"
	case RoleException:
		return "exception"
	case RoleJumpTarget:
		return "jump-target"
	default:
		return fmt.Sprintf("EndbrRole(%d)", int(r))
	}
}

// Func is one true function entry.
type Func struct {
	// Name is the source-level function name.
	Name string `json:"name"`
	// Addr is the entry virtual address.
	Addr uint64 `json:"addr"`
	// Size is the function size in bytes (including landing pads and the
	// trailing alignment it owns, when any).
	Size uint64 `json:"size"`
	// Static marks internal-linkage functions.
	Static bool `json:"static,omitempty"`
	// HasEndbr records whether the entry starts with an end branch.
	HasEndbr bool `json:"has_endbr,omitempty"`
	// Dead marks functions never referenced by any instruction.
	Dead bool `json:"dead,omitempty"`
	// Intrinsic marks compiler-intrinsic helpers (get_pc_thunk family).
	Intrinsic bool `json:"intrinsic,omitempty"`
}

// EndbrSite is one end-branch instruction with its role.
type EndbrSite struct {
	Addr uint64    `json:"addr"`
	Role EndbrRole `json:"role"`
}

// GT is the complete ground truth for one binary.
type GT struct {
	// Program is the source program name.
	Program string `json:"program"`
	// Config is the human-readable build configuration string.
	Config string `json:"config"`
	// Lang is "c" or "c++".
	Lang string `json:"lang"`
	// Funcs are the true function entries (paper rules applied: no
	// .part/.cold fragments, intrinsics included).
	Funcs []Func `json:"funcs"`
	// PartBlocks are the entry addresses of .cold/.part fragments;
	// identifying one of these is a false positive.
	PartBlocks []uint64 `json:"part_blocks,omitempty"`
	// Endbrs records every end-branch instruction in .text with its role
	// (Table I input).
	Endbrs []EndbrSite `json:"endbrs,omitempty"`
}

// Entries returns the set of true entry addresses.
func (g *GT) Entries() map[uint64]bool {
	m := make(map[uint64]bool, len(g.Funcs))
	for _, f := range g.Funcs {
		m[f.Addr] = true
	}
	return m
}

// SortedEntries returns the entry addresses in ascending order.
func (g *GT) SortedEntries() []uint64 {
	out := make([]uint64, 0, len(g.Funcs))
	for _, f := range g.Funcs {
		out = append(out, f.Addr)
	}
	slices.Sort(out)
	return out
}

// FuncAt returns the function whose entry is at addr.
func (g *GT) FuncAt(addr uint64) (Func, bool) {
	for _, f := range g.Funcs {
		if f.Addr == addr {
			return f, true
		}
	}
	return Func{}, false
}

// Save writes the ground truth as JSON to path.
func (g *GT) Save(path string) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return fmt.Errorf("groundtruth: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("groundtruth: %w", err)
	}
	return nil
}

// Load reads a ground-truth sidecar from path.
func Load(path string) (*GT, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("groundtruth: %w", err)
	}
	var g GT
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("groundtruth: parse %s: %w", path, err)
	}
	return &g, nil
}
