// Package ghidra models Ghidra's function discovery (version 10.0.4 in
// the paper's evaluation): aggressive use of .eh_frame Frame Description
// Entries as function starts, recursive descent from the entry point and
// call targets, and frame-pointer prologue signatures over leftover gaps.
//
// The model reproduces the behaviour the paper measures: excellent recall
// wherever FDEs cover the code (x86-64, GCC x86) and a sharp recall drop
// on 32-bit Clang C binaries, which carry no FDE records; and false
// positives from FDEs that describe .cold/.part fragments.
package ghidra

import (
	"fmt"
	"slices"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/recdesc"
)

// Report is the identification result.
type Report struct {
	// Entries is the sorted set of identified function entries.
	Entries []uint64
	// FromFDE counts entries taken from .eh_frame.
	FromFDE int
	// FromTraversal counts entries found by recursive descent.
	FromTraversal int
	// FromPrologue counts entries found by prologue signatures.
	FromPrologue int
}

// Identify runs the Ghidra-style algorithm with a private analysis
// context.
func Identify(bin *elfx.Binary) (*Report, error) {
	return IdentifyWithContext(analysis.NewContext(bin))
}

// IdentifyWithContext runs the Ghidra-style algorithm using the shared
// per-binary artifacts memoized in actx.
func IdentifyWithContext(actx *analysis.Context) (*Report, error) {
	bin := actx.Binary()
	report := &Report{}
	found := make(map[uint64]bool)

	// Pass 1: .eh_frame FDE starts (parsed once per binary, shared with
	// the other .eh_frame consumers).
	fdes, err := actx.FDEs()
	if err != nil {
		return nil, fmt.Errorf("ghidra: eh_frame: %w", err)
	}
	seeds := []uint64{bin.Entry}
	for _, f := range fdes {
		if bin.InText(f.PCBegin) {
			if !found[f.PCBegin] {
				found[f.PCBegin] = true
				report.FromFDE++
			}
			seeds = append(seeds, f.PCBegin)
		}
	}

	// Pass 2: recursive descent from the entry point and every FDE
	// function, expanding through direct calls. Decoding is served from
	// the shared linear-sweep index where possible.
	idx := actx.Index()
	walker := recdesc.NewWalker(bin, idx)
	res := walker.Traverse(seeds)
	for e := range res.Functions {
		if !found[e] {
			found[e] = true
			report.FromTraversal++
		}
	}

	// Pass 3: prologue signatures over the gaps, instruction by
	// instruction. Ghidra's function start patterns recognize classic
	// frame-pointer prologues; it does not key on end-branch markers
	// (the paper's central observation).
	recdesc.WalkGapsIndexed(bin, idx, res.Covered, func(va uint64, _ bool) bool {
		if recdesc.ClassifyPrologueIndexed(bin, idx, va) != recdesc.PrologueFramePointer {
			return false
		}
		found[va] = true
		report.FromPrologue++
		// Newly found functions expand the call graph; their coverage is
		// marked in place on the shared array.
		sub := walker.TraverseInto([]uint64{va}, res.Covered)
		for e := range sub.Functions {
			if !found[e] {
				found[e] = true
				report.FromTraversal++
			}
		}
		return true
	})

	report.Entries = make([]uint64, 0, len(found))
	for e := range found {
		report.Entries = append(report.Entries, e)
	}
	slices.Sort(report.Entries)
	return report, nil
}
