// Package ghidra models Ghidra's function discovery (version 10.0.4 in
// the paper's evaluation): aggressive use of .eh_frame Frame Description
// Entries as function starts, recursive descent from the entry point and
// call targets, and frame-pointer prologue signatures over leftover gaps.
//
// The model reproduces the behaviour the paper measures: excellent recall
// wherever FDEs cover the code (x86-64, GCC x86) and a sharp recall drop
// on 32-bit Clang C binaries, which carry no FDE records; and false
// positives from FDEs that describe .cold/.part fragments.
package ghidra

import (
	"fmt"
	"sort"

	"github.com/funseeker/funseeker/internal/ehframe"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/recdesc"
)

// Report is the identification result.
type Report struct {
	// Entries is the sorted set of identified function entries.
	Entries []uint64
	// FromFDE counts entries taken from .eh_frame.
	FromFDE int
	// FromTraversal counts entries found by recursive descent.
	FromTraversal int
	// FromPrologue counts entries found by prologue signatures.
	FromPrologue int
}

// Identify runs the Ghidra-style algorithm.
func Identify(bin *elfx.Binary) (*Report, error) {
	report := &Report{}
	found := make(map[uint64]bool)

	// Pass 1: .eh_frame FDE starts.
	fdes, err := ehframe.Parse(bin.EHFrame, bin.EHFrameAddr, bin.PtrSize())
	if err != nil {
		return nil, fmt.Errorf("ghidra: eh_frame: %w", err)
	}
	seeds := []uint64{bin.Entry}
	for _, f := range fdes {
		if bin.InText(f.PCBegin) {
			if !found[f.PCBegin] {
				found[f.PCBegin] = true
				report.FromFDE++
			}
			seeds = append(seeds, f.PCBegin)
		}
	}

	// Pass 2: recursive descent from the entry point and every FDE
	// function, expanding through direct calls.
	res := recdesc.Traverse(bin, seeds)
	for e := range res.Functions {
		if !found[e] {
			found[e] = true
			report.FromTraversal++
		}
	}

	// Pass 3: prologue signatures over the gaps, instruction by
	// instruction. Ghidra's function start patterns recognize classic
	// frame-pointer prologues; it does not key on end-branch markers
	// (the paper's central observation).
	recdesc.WalkGaps(bin, res.Covered, func(va uint64, _ bool) bool {
		if recdesc.ClassifyPrologue(bin, va) != recdesc.PrologueFramePointer {
			return false
		}
		found[va] = true
		report.FromPrologue++
		// Newly found functions expand the call graph.
		sub := recdesc.Traverse(bin, []uint64{va})
		for i, v := range sub.Covered {
			if v {
				res.Covered[i] = true
			}
		}
		for e := range sub.Functions {
			if !found[e] {
				found[e] = true
				report.FromTraversal++
			}
		}
		return true
	})

	report.Entries = make([]uint64, 0, len(found))
	for e := range found {
		report.Entries = append(report.Entries, e)
	}
	sort.Slice(report.Entries, func(i, j int) bool { return report.Entries[i] < report.Entries[j] })
	return report, nil
}
