package ghidra

import (
	"testing"

	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

func build(t *testing.T, spec *synth.ProgSpec, cfg synth.Config) (*elfx.Binary, *groundtruth.GT) {
	t.Helper()
	res, err := synth.Compile(spec, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	bin, err := elfx.Load(res.Stripped)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return bin, res.GT
}

func sampleSpec() *synth.ProgSpec {
	return &synth.ProgSpec{
		Name: "ghidratest",
		Lang: synth.LangC,
		Seed: 41,
		Funcs: []synth.FuncSpec{
			{Name: "main", Calls: []int{1}},
			{Name: "a", Calls: []int{2}},
			{Name: "b", Static: true},
			{Name: "island"},
			{Name: "datacb", AddressTakenData: true},
		},
	}
}

func TestFullRecallWithFDEs(t *testing.T) {
	bin, gt := build(t, sampleSpec(), synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	rep, err := Identify(bin)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, e := range rep.Entries {
		found[e] = true
	}
	for _, f := range gt.Funcs {
		if !found[f.Addr] {
			t.Errorf("%s missed despite FDE coverage", f.Name)
		}
	}
	if rep.FromFDE == 0 {
		t.Error("no FDE-derived entries")
	}
}

func TestClangX86RecallDrop(t *testing.T) {
	cfgNoFDE := synth.Config{Compiler: synth.Clang, Mode: x86.Mode32, Opt: synth.O2}
	bin, gt := build(t, sampleSpec(), cfgNoFDE)
	rep, err := Identify(bin)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromFDE != 0 {
		t.Errorf("FromFDE = %d on a Clang x86 C binary", rep.FromFDE)
	}
	found := map[uint64]bool{}
	for _, e := range rep.Entries {
		found[e] = true
	}
	missed := 0
	for _, f := range gt.Funcs {
		if !found[f.Addr] {
			missed++
		}
	}
	if missed == 0 {
		t.Error("Ghidra model should miss functions without FDEs at O2")
	}
	// At O0, prologue signatures recover them.
	cfgO0 := cfgNoFDE
	cfgO0.Opt = synth.O0
	bin0, gt0 := build(t, sampleSpec(), cfgO0)
	rep0, err := Identify(bin0)
	if err != nil {
		t.Fatal(err)
	}
	found0 := map[uint64]bool{}
	for _, e := range rep0.Entries {
		found0[e] = true
	}
	missed0 := 0
	for _, f := range gt0.Funcs {
		if !found0[f.Addr] {
			missed0++
		}
	}
	if missed0 > 1 {
		t.Errorf("missed %d functions at O0; prologue scan should recover them", missed0)
	}
	if rep0.FromPrologue == 0 {
		t.Error("prologue scan found nothing at O0")
	}
}

func TestPartBlockFalsePositives(t *testing.T) {
	spec := sampleSpec()
	spec.Funcs[0].ColdPart = true
	bin, gt := build(t, spec, synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	rep, err := Identify(bin)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, e := range rep.Entries {
		found[e] = true
	}
	for _, p := range gt.PartBlocks {
		if !found[p] {
			t.Errorf("part block %#x not reported — Ghidra inherits the FDE false positive", p)
		}
	}
}
