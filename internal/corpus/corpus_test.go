package corpus

import (
	"reflect"
	"testing"

	"github.com/funseeker/funseeker/internal/synth"
)

func TestSuiteProgramCounts(t *testing.T) {
	// Suite sizes are part of the experimental identity (paper §III-A).
	counts := map[Suite]int{Coreutils: 108, Binutils: 15, SPEC: 47}
	for suite, want := range counts {
		specs := Generate(suite, Options{Scale: 0.1, Seed: 1})
		if len(specs) != want {
			t.Errorf("%v: %d programs, want %d", suite, len(specs), want)
		}
	}
}

func TestAllSpecsValidate(t *testing.T) {
	for _, suite := range AllSuites() {
		for _, spec := range Generate(suite, Options{Scale: 0.2, Seed: 3, Programs: 10}) {
			if err := spec.Validate(); err != nil {
				t.Errorf("%v/%s: %v", suite, spec.Name, err)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(SPEC, Options{Scale: 0.3, Seed: 9, Programs: 5})
	b := Generate(SPEC, Options{Scale: 0.3, Seed: 9, Programs: 5})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same options produced different corpora")
	}
	c := Generate(SPEC, Options{Scale: 0.3, Seed: 10, Programs: 5})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestLanguageMix(t *testing.T) {
	for _, suite := range []Suite{Coreutils, Binutils} {
		for _, spec := range Generate(suite, Options{Scale: 0.1, Seed: 2, Programs: 20}) {
			if spec.Lang != synth.LangC {
				t.Errorf("%v/%s is %v, C suites must be pure C", suite, spec.Name, spec.Lang)
			}
		}
	}
	cpp := 0
	specs := Generate(SPEC, Options{Scale: 0.1, Seed: 2})
	for _, spec := range specs {
		if spec.Lang == synth.LangCPP {
			cpp++
		}
	}
	frac := float64(cpp) / float64(len(specs))
	if frac < 0.3 || frac > 0.8 {
		t.Errorf("SPEC C++ fraction = %.2f, want ≈0.55", frac)
	}
}

func TestFunctionMixCalibration(t *testing.T) {
	// Aggregate the full-size corpus and check the headline Figure 3
	// fractions the weights encode.
	var total, endbr, static, dead, dataRef int
	for _, suite := range AllSuites() {
		for _, spec := range Generate(suite, Options{Scale: 1.0, Seed: 2022}) {
			for i := range spec.Funcs {
				f := &spec.Funcs[i]
				total++
				if f.Static {
					static++
				}
				if f.Dead {
					dead++
				}
				if f.AddressTakenData {
					dataRef++
				}
				if !f.Static && !f.Intrinsic || f.AddressTaken || f.AddressTakenData {
					endbr++
				}
			}
		}
	}
	pct := func(n int) float64 { return 100 * float64(n) / float64(total) }
	if got := pct(endbr); got < 86 || got > 93 {
		t.Errorf("endbr-carrying fraction = %.2f%%, want ≈89%%", got)
	}
	if got := pct(static); got < 8 || got > 14 {
		t.Errorf("static fraction = %.2f%%, want ≈11%%", got)
	}
	if got := pct(dead); got < 0.02 || got > 0.3 {
		t.Errorf("dead fraction = %.3f%%, want ≈0.08%%", got)
	}
	if dataRef == 0 {
		t.Error("no data-referenced functions generated")
	}
}

func TestSuiteStrings(t *testing.T) {
	if Coreutils.String() != "Coreutils" || SPEC.String() != "SPEC CPU 2017" {
		t.Error("suite names changed")
	}
	if Suite(99).String() == "" {
		t.Error("unknown suite must render")
	}
	if Generate(Suite(99), Options{}) != nil {
		t.Error("unknown suite should generate nothing")
	}
}

func TestScaleFloor(t *testing.T) {
	for _, spec := range Generate(Coreutils, Options{Scale: 0.01, Seed: 1, Programs: 3}) {
		if len(spec.Funcs) < 8 {
			t.Errorf("%s has %d funcs, floor is 8", spec.Name, len(spec.Funcs))
		}
	}
	// Zero scale falls back to 1.0.
	specs := Generate(Binutils, Options{Scale: 0, Seed: 1, Programs: 1})
	if len(specs[0].Funcs) < 100 {
		t.Errorf("zero scale should mean full size, got %d funcs", len(specs[0].Funcs))
	}
}

func TestDefaultOptions(t *testing.T) {
	opts := DefaultOptions()
	if opts.Scale != 1.0 || opts.Seed == 0 {
		t.Errorf("DefaultOptions = %+v", opts)
	}
}
