// Package corpus builds the three program suites used by the FunSeeker
// paper's evaluation — GNU Coreutils (108 C programs), GNU Binutils (15 C
// programs), and SPEC CPU 2017 (47 C/C++ programs) — as synthetic program
// specifications whose statistical profile is calibrated to the paper's
// measurements:
//
//   - the Figure 3 function-property mix (≈89% of functions carry an end
//     branch at the entry; ≈49% carry nothing but the end branch; ≈10%
//     are static, reached only by direct calls; a sliver are tail-called
//     or fully dead);
//   - the Table I end-branch location distribution (exception landing
//     pads are ≈20-28% of end branches in the C++-heavy SPEC suite and
//     absent from the C suites; indirect-return sites are a trace);
//   - the §V-C failure anatomy (dead static functions dominate false
//     negatives; single-reference tail-call targets account for the
//     rest; .part/.cold fragments cause the false positives).
package corpus

import (
	"fmt"
	"math/rand"

	"github.com/funseeker/funseeker/internal/synth"
)

// Suite identifies one benchmark suite.
type Suite int

// The paper's three suites.
const (
	// Coreutils models GNU Coreutils v9.0: many small C programs.
	Coreutils Suite = iota + 1
	// Binutils models GNU Binutils v2.37: fewer, larger C programs.
	Binutils
	// SPEC models SPEC CPU 2017: large programs, roughly half C++ with
	// exception handling.
	SPEC
)

// String names the suite as the paper's tables do.
func (s Suite) String() string {
	switch s {
	case Coreutils:
		return "Coreutils"
	case Binutils:
		return "Binutils"
	case SPEC:
		return "SPEC CPU 2017"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// AllSuites lists the suites in the paper's presentation order.
func AllSuites() []Suite { return []Suite{Coreutils, Binutils, SPEC} }

// Options tunes corpus generation.
type Options struct {
	// Scale multiplies the per-program function counts; 1.0 reproduces
	// the full-size corpus, smaller values produce faster smoke corpora.
	// Program counts are never scaled (the paper's suite sizes are part
	// of the experimental identity).
	Scale float64
	// Seed shifts every program's deterministic stream.
	Seed int64
	// Programs optionally overrides the number of programs per suite
	// (0 = the paper's count). Used by unit tests.
	Programs int
	// DataInText is the probability that a function carries a raw inline
	// data blob after its body (hand-written-assembly modeling). Zero —
	// the default — matches the paper's observation that GCC and Clang
	// never place data in .text; nonzero values drive the superset
	// disassembly ablation.
	DataInText float64
}

// DefaultOptions reproduces the paper-scale corpus.
func DefaultOptions() Options { return Options{Scale: 1.0, Seed: 2022} }

// suiteParams are the per-suite generation parameters.
type suiteParams struct {
	programs int
	funcsMin int
	funcsMax int
	cppRatio float64 // fraction of programs that are C++
	bodyMin  int
	bodyMax  int
	namestem string
}

func paramsFor(s Suite) suiteParams {
	switch s {
	case Coreutils:
		return suiteParams{programs: 108, funcsMin: 25, funcsMax: 70, cppRatio: 0, bodyMin: 3, bodyMax: 10, namestem: "coreutils"}
	case Binutils:
		return suiteParams{programs: 15, funcsMin: 120, funcsMax: 260, cppRatio: 0, bodyMin: 3, bodyMax: 12, namestem: "binutils"}
	case SPEC:
		return suiteParams{programs: 47, funcsMin: 90, funcsMax: 280, cppRatio: 0.55, bodyMin: 4, bodyMax: 14, namestem: "spec"}
	default:
		return suiteParams{}
	}
}

// funcKind is the Figure 3 class a generated function belongs to.
type funcKind int

const (
	kindExported   funcKind = iota // endbr only: exported, unreferenced
	kindDataRef                    // endbr only: address in a data table
	kindCodeRef                    // endbr only: address taken in code
	kindCalled                     // endbr + direct call target
	kindStaticCall                 // static: direct call target only
	kindCalledTail                 // endbr + called + tail-called
	kindEndbrTail                  // endbr + tail-called only
	kindStaticBoth                 // static: called + tail-called
	kindTailOnly                   // static: tail-called only
	kindDead                       // static, fully dead
	kindIntrinsic                  // non-static, no endbr, called
)

// kindWeights is the cumulative distribution matched to Figure 3. The
// exported/data/code split partitions the paper's 48.85% "EndBrAtHead
// only" region.
var kindWeights = []struct {
	kind funcKind
	pct  float64
}{
	{kindExported, 33.92},
	{kindDataRef, 11.0},
	{kindCodeRef, 3.85},
	{kindCalled, 37.79},
	{kindStaticCall, 10.01},
	{kindCalledTail, 1.23},
	{kindEndbrTail, 1.44},
	{kindStaticBoth, 0.44},
	{kindTailOnly, 0.23},
	{kindDead, 0.08},
	{kindIntrinsic, 0.015},
}

func pickKind(rng *rand.Rand) funcKind {
	x := rng.Float64() * 100
	acc := 0.0
	for _, kw := range kindWeights {
		acc += kw.pct
		if x < acc {
			return kw.kind
		}
	}
	return kindCalled
}

// externPool is the set of ordinary external functions programs import.
var externPool = []string{"printf", "malloc", "free", "memcpy", "strlen", "exit", "read", "write"}

// Generate builds the program specifications for one suite.
func Generate(s Suite, opts Options) []*synth.ProgSpec {
	p := paramsFor(s)
	if p.programs == 0 {
		return nil
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	nprog := p.programs
	if opts.Programs > 0 {
		nprog = opts.Programs
	}
	specs := make([]*synth.ProgSpec, 0, nprog)
	for i := 0; i < nprog; i++ {
		rng := rand.New(rand.NewSource(opts.Seed*1_000_003 + int64(s)*7919 + int64(i)))
		lang := synth.LangC
		if rng.Float64() < p.cppRatio {
			lang = synth.LangCPP
		}
		nf := p.funcsMin + rng.Intn(p.funcsMax-p.funcsMin+1)
		nf = int(float64(nf) * opts.Scale)
		if nf < 8 {
			nf = 8
		}
		spec := generateProgram(
			fmt.Sprintf("%s_%03d", p.namestem, i), lang, nf, p, rng, opts.Seed)
		if opts.DataInText > 0 {
			for j := range spec.Funcs {
				if rng.Float64() < opts.DataInText {
					spec.Funcs[j].TrailingData = 8 + rng.Intn(48)
				}
			}
		}
		specs = append(specs, spec)
	}
	return specs
}

// generateProgram builds one program with the calibrated function mix.
func generateProgram(name string, lang synth.Lang, nf int, p suiteParams, rng *rand.Rand, seed int64) *synth.ProgSpec {
	spec := &synth.ProgSpec{
		Name: name,
		Lang: lang,
		Seed: seed + int64(len(name)),
	}
	kinds := make([]funcKind, nf)
	// main is always an exported function.
	kinds[0] = kindExported
	for i := 1; i < nf; i++ {
		kinds[i] = pickKind(rng)
	}

	spec.Funcs = make([]synth.FuncSpec, nf)
	for i := range spec.Funcs {
		f := &spec.Funcs[i]
		if i == 0 {
			f.Name = "main"
		} else {
			f.Name = fmt.Sprintf("fn_%03d", i)
		}
		f.BodySize = p.bodyMin + rng.Intn(p.bodyMax-p.bodyMin+1)
		switch kinds[i] {
		case kindExported:
			// Exported, unreferenced within the binary.
		case kindDataRef:
			f.AddressTakenData = true
		case kindCodeRef:
			f.AddressTaken = true
		case kindStaticCall:
			f.Static = true
		case kindStaticBoth, kindTailOnly:
			f.Static = true
		case kindDead:
			f.Static = true
			f.Dead = true
		case kindIntrinsic:
			f.Intrinsic = true
		}
	}

	// callerPool: functions allowed to emit calls/jumps (live, not
	// intrinsic, not dead).
	var callerPool []int
	for i, k := range kinds {
		if k != kindDead && k != kindIntrinsic {
			callerPool = append(callerPool, i)
		}
	}
	pickCaller := func(not int) int {
		for tries := 0; tries < 16; tries++ {
			c := callerPool[rng.Intn(len(callerPool))]
			if c != not {
				return c
			}
		}
		return callerPool[0]
	}

	// Wire direct-call and tail-call references.
	for i, k := range kinds {
		switch k {
		case kindCalled, kindStaticCall, kindIntrinsic:
			ncallers := 1 + rng.Intn(3)
			for c := 0; c < ncallers; c++ {
				caller := pickCaller(i)
				spec.Funcs[caller].Calls = append(spec.Funcs[caller].Calls, i)
			}
		case kindCalledTail, kindStaticBoth:
			caller := pickCaller(i)
			spec.Funcs[caller].Calls = append(spec.Funcs[caller].Calls, i)
			for c := 0; c < 2; c++ {
				tc := pickCaller(i)
				spec.Funcs[tc].TailCalls = append(spec.Funcs[tc].TailCalls, i)
			}
		case kindEndbrTail:
			for c := 0; c < 2; c++ {
				tc := pickCaller(i)
				spec.Funcs[tc].TailCalls = append(spec.Funcs[tc].TailCalls, i)
			}
		case kindTailOnly:
			// A few tail-only targets have a single caller — these are
			// the tail-call false negatives the paper attributes 6.7%
			// of FunSeeker's misses to (dead functions dominate).
			ncallers := 2
			if rng.Float64() < 0.05 {
				ncallers = 1
			}
			seen := map[int]bool{}
			for c := 0; c < ncallers; c++ {
				tc := pickCaller(i)
				for seen[tc] {
					tc = pickCaller(i)
				}
				seen[tc] = true
				spec.Funcs[tc].TailCalls = append(spec.Funcs[tc].TailCalls, i)
			}
		}
	}

	// Sprinkle features over the live functions.
	for _, i := range callerPool {
		f := &spec.Funcs[i]
		if rng.Float64() < 0.25 {
			f.CallsPLT = append(f.CallsPLT, externPool[rng.Intn(len(externPool))])
		}
		if rng.Float64() < 0.08 {
			f.HasSwitch = true
			f.SwitchCases = 3 + rng.Intn(8)
		}
		if rng.Float64() < 0.03 {
			f.ColdPart = true
			if rng.Float64() < 0.4 {
				f.ColdCalled = true
			} else if rng.Float64() < 0.5 {
				f.SharedColdWith = []int{pickCaller(i)}
			}
		}
	}
	// One indirect-return call site in a few percent of programs: the
	// Table I "Indirect Ret." trace class (0.01-0.02% of end branches in
	// the paper).
	if rng.Float64() < 0.05 {
		host := callerPool[rng.Intn(len(callerPool))]
		irf := synth.IndirectReturnFuncs[rng.Intn(len(synth.IndirectReturnFuncs))]
		spec.Funcs[host].IndirectReturnCall = irf
	}

	// C++ programs: exception handling on a fraction of live functions
	// calibrated so landing pads are ≈20-28% of all end branches.
	if lang == synth.LangCPP {
		for _, i := range callerPool {
			f := &spec.Funcs[i]
			if rng.Float64() < 0.28 {
				f.HasEH = true
				f.NumLandingPads = 1 + rng.Intn(3)
				f.CallsPLT = append(f.CallsPLT, "__cxa_throw")
			}
		}
	}
	return spec
}
