package diffcheck

import (
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// Interesting decides whether a reduced candidate still reproduces the
// failure being minimized.
type Interesting func(spec *ProgSpec, cfg Config) bool

// maxMinimizeTries bounds the total number of oracle evaluations one
// minimization may spend.
const maxMinimizeTries = 2000

// Minimize shrinks a failing case to a (locally) minimal reproducer:
// the returned spec/config still satisfy interesting, but no single
// further reduction step — removing a function, clearing a feature,
// dropping a call edge, or simplifying the build configuration — does.
// interesting must hold for the input case.
func Minimize(spec *ProgSpec, cfg Config, interesting Interesting) (*ProgSpec, Config) {
	cur := cloneSpec(spec)
	tries := 0
	test := func(s *ProgSpec, c Config) bool {
		if tries >= maxMinimizeTries {
			return false
		}
		tries++
		return s.Validate() == nil && interesting(s, c)
	}

	for changed := true; changed && tries < maxMinimizeTries; {
		changed = false
		if simplifyConfig(&cfg, cur, test) {
			changed = true
		}
		var specChanged bool
		cur, specChanged = shrinkSpecOnce(cur, func(s *ProgSpec) bool { return test(s, cfg) })
		changed = changed || specChanged
	}
	return cur, cfg
}

// MinimizeBTI is Minimize for AArch64 cases: the spec reductions are
// shared, only the build-configuration simplification differs (drop
// PAC, lower the optimization level).
func MinimizeBTI(spec *ProgSpec, cfg BTIConfig, interesting func(*ProgSpec, BTIConfig) bool) (*ProgSpec, BTIConfig) {
	cur := cloneSpec(spec)
	tries := 0
	test := func(s *ProgSpec, c BTIConfig) bool {
		if tries >= maxMinimizeTries {
			return false
		}
		tries++
		return s.Validate() == nil && interesting(s, c)
	}

	for changed := true; changed && tries < maxMinimizeTries; {
		changed = false
		try := func(mut func(c *BTIConfig)) {
			cand := cfg
			mut(&cand)
			if cand != cfg && test(cur, cand) {
				cfg = cand
				changed = true
			}
		}
		try(func(c *BTIConfig) { c.PAC = false })
		try(func(c *BTIConfig) { c.Opt = synth.O0 })
		var specChanged bool
		cur, specChanged = shrinkSpecOnce(cur, func(s *ProgSpec) bool { return test(s, cfg) })
		changed = changed || specChanged
	}
	return cur, cfg
}

// MinimizeBTIResult shrinks a failed BTI case, preserving at least one
// of the original violation kinds (see MinimizeResult).
func MinimizeBTIResult(r *BTICaseResult) (*ProgSpec, BTIConfig) {
	kinds := make(map[string]bool, len(r.Violations))
	for _, v := range r.Violations {
		kinds[v.Check] = true
	}
	return MinimizeBTI(r.Spec, r.Config, func(spec *ProgSpec, cfg BTIConfig) bool {
		for _, v := range CheckBTISpec(spec, cfg) {
			if kinds[v.Check] {
				return true
			}
		}
		return false
	})
}

// shrinkSpecOnce runs one pass of the configuration-independent spec
// reductions — function removal (largest chunks first), per-function
// feature clearing, and call/tail-call edge dropping — accepting each
// candidate test admits. It returns the reduced spec and whether any
// reduction was accepted.
func shrinkSpecOnce(cur *ProgSpec, test func(*ProgSpec) bool) (*ProgSpec, bool) {
	changed := false
	for chunk := len(cur.Funcs) / 2; chunk >= 1; chunk /= 2 {
		for lo := len(cur.Funcs) - chunk; lo >= 0; lo -= chunk {
			// cur shrinks as removals succeed; re-validate bounds.
			if lo+chunk > len(cur.Funcs) || len(cur.Funcs)-chunk < 1 {
				continue
			}
			cand := removeFuncs(cur, lo, lo+chunk)
			if test(cand) {
				cur = cand
				changed = true
			}
		}
	}
	for i := 0; i < len(cur.Funcs); i++ {
		for _, mutate := range featureMutators {
			cand := cloneSpec(cur)
			if !mutate(&cand.Funcs[i]) {
				continue
			}
			if test(cand) {
				cur = cand
				changed = true
			}
		}
		for e := len(cur.Funcs[i].Calls) - 1; e >= 0; e-- {
			cand := cloneSpec(cur)
			cand.Funcs[i].Calls = deleteAt(cand.Funcs[i].Calls, e)
			if test(cand) {
				cur = cand
				changed = true
			}
		}
		for e := len(cur.Funcs[i].TailCalls) - 1; e >= 0; e-- {
			cand := cloneSpec(cur)
			cand.Funcs[i].TailCalls = deleteAt(cand.Funcs[i].TailCalls, e)
			if test(cand) {
				cur = cand
				changed = true
			}
		}
	}
	return cur, changed
}

// MinimizeResult shrinks a failed CaseResult, preserving at least one of
// the violation kinds observed in the original failure so the reproducer
// does not drift onto a different bug mid-shrink.
func MinimizeResult(r *CaseResult) (*ProgSpec, Config) {
	kinds := make(map[string]bool, len(r.Violations))
	for _, v := range r.Violations {
		kinds[v.Check] = true
	}
	return Minimize(r.Spec, r.Config, func(spec *ProgSpec, cfg Config) bool {
		for _, v := range CheckSpec(spec, cfg) {
			if kinds[v.Check] {
				return true
			}
		}
		return false
	})
}

// featureMutators are the single-step reductions tried per function.
// Each returns false when the function does not carry the feature.
var featureMutators = []func(f *synth.FuncSpec) bool{
	func(f *synth.FuncSpec) bool {
		if !f.HasEH {
			return false
		}
		f.HasEH, f.NumLandingPads = false, 0
		return true
	},
	func(f *synth.FuncSpec) bool {
		if !f.HasSwitch {
			return false
		}
		f.HasSwitch, f.SwitchCases = false, 0
		return true
	},
	func(f *synth.FuncSpec) bool {
		if !f.ColdPart {
			return false
		}
		f.ColdPart, f.ColdCalled, f.SharedColdWith = false, false, nil
		return true
	},
	func(f *synth.FuncSpec) bool {
		if len(f.SharedColdWith) == 0 {
			return false
		}
		f.SharedColdWith = f.SharedColdWith[:len(f.SharedColdWith)-1]
		return true
	},
	func(f *synth.FuncSpec) bool {
		if f.IndirectReturnCall == "" {
			return false
		}
		f.IndirectReturnCall = ""
		return true
	},
	func(f *synth.FuncSpec) bool {
		if len(f.CallsPLT) == 0 {
			return false
		}
		f.CallsPLT = nil
		return true
	},
	func(f *synth.FuncSpec) bool {
		if f.TrailingData == 0 {
			return false
		}
		f.TrailingData = 0
		return true
	},
	func(f *synth.FuncSpec) bool {
		if !f.AddressTaken && !f.AddressTakenData {
			return false
		}
		f.AddressTaken, f.AddressTakenData = false, false
		return true
	},
	func(f *synth.FuncSpec) bool {
		if !f.Dead {
			return false
		}
		f.Dead = false
		return true
	},
	func(f *synth.FuncSpec) bool {
		if !f.Intrinsic {
			return false
		}
		f.Intrinsic = false
		return true
	},
	func(f *synth.FuncSpec) bool {
		if !f.Static {
			return false
		}
		f.Static = false
		return true
	},
	func(f *synth.FuncSpec) bool {
		if f.BodySize <= 1 {
			return false
		}
		f.BodySize = f.BodySize / 2
		return true
	},
}

// simplifyConfig tries the canonical build configuration reductions.
func simplifyConfig(cfg *Config, spec *ProgSpec, test func(*ProgSpec, Config) bool) bool {
	changed := false
	try := func(mut func(c *Config) bool) {
		cand := *cfg
		if !mut(&cand) || cand == *cfg {
			return
		}
		if test(spec, cand) {
			*cfg = cand
			changed = true
		}
	}
	try(func(c *Config) bool { c.ManualEndbr = false; return true })
	try(func(c *Config) bool { c.PIE = false; return true })
	try(func(c *Config) bool { c.Mode = x86.Mode64; return true })
	try(func(c *Config) bool { c.Compiler = synth.GCC; return true })
	try(func(c *Config) bool { c.Opt = synth.O0; return true })
	return changed
}

// removeFuncs returns a copy of spec with functions [lo,hi) removed and
// every cross-reference remapped; references into the removed range are
// dropped.
func removeFuncs(spec *ProgSpec, lo, hi int) *ProgSpec {
	out := cloneSpec(spec)
	out.Funcs = append(out.Funcs[:lo], out.Funcs[hi:]...)
	remap := func(refs []int) []int {
		kept := refs[:0]
		for _, r := range refs {
			switch {
			case r < lo:
				kept = append(kept, r)
			case r >= hi:
				kept = append(kept, r-(hi-lo))
			}
		}
		return kept
	}
	for i := range out.Funcs {
		f := &out.Funcs[i]
		f.Calls = remap(f.Calls)
		f.TailCalls = remap(f.TailCalls)
		f.SharedColdWith = remap(f.SharedColdWith)
	}
	return out
}

// cloneSpec deep-copies a program specification.
func cloneSpec(spec *ProgSpec) *ProgSpec {
	out := *spec
	out.Funcs = make([]synth.FuncSpec, len(spec.Funcs))
	copy(out.Funcs, spec.Funcs)
	for i := range out.Funcs {
		f := &out.Funcs[i]
		f.Calls = append([]int(nil), f.Calls...)
		f.TailCalls = append([]int(nil), f.TailCalls...)
		f.SharedColdWith = append([]int(nil), f.SharedColdWith...)
		f.CallsPLT = append([]string(nil), f.CallsPLT...)
	}
	return &out
}

func deleteAt(xs []int, i int) []int {
	return append(xs[:i:i], xs[i+1:]...)
}
