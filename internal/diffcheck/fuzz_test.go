package diffcheck

import "testing"

// FuzzGeneratedCase lets the fuzzer explore the generator's seed space
// directly: every seed must produce a case that checks clean against the
// full invariant oracle. This subsumes TestRandomSeeds under coverage
// guidance — the mutator hunts for seeds whose generated programs reach
// novel oracle paths.
func FuzzGeneratedCase(f *testing.F) {
	for seed := int64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	f.Add(int64(0))
	f.Add(int64(-1))
	f.Add(int64(1) << 40)
	f.Fuzz(func(t *testing.T, seed int64) {
		if res := CheckSeed(seed, DefaultGenOptions()); res.Failed() {
			t.Fatalf("%s", res)
		}
	})
}

// FuzzSmallPrograms narrows the generator to tiny function counts, where
// boundary interactions (tail-call chains, cold parts, trailing data)
// are densest relative to program size.
func FuzzSmallPrograms(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(99))
	f.Fuzz(func(t *testing.T, seed int64) {
		opts := GenOptions{MinFuncs: 2, MaxFuncs: 6, DataInText: 0.10, ManualEndbrProb: 0.10}
		if res := CheckSeed(seed, opts); res.Failed() {
			t.Fatalf("%s", res)
		}
	})
}
