package diffcheck

import (
	"errors"
	"testing"

	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// fdeOnlySpec is a fixed program with every function role configuration
// ⑤ must carry on a no-CET binary: a live exported entry, a static
// helper reachable only by direct call, a dead static function (no
// references at all — only its FDE betrays it), a tail-only target, and
// a C++ function with landing pads (FDE + LSDA).
func fdeOnlySpec() *ProgSpec {
	return &ProgSpec{
		Name: "fde_only",
		Lang: synth.LangCPP,
		Seed: 11,
		Funcs: []synth.FuncSpec{
			{Name: "main", BodySize: 5, Calls: []int{1}, TailCalls: []int{3}},
			{Name: "helper", Static: true, BodySize: 4, Calls: []int{4}},
			{Name: "dead_static", Static: true, Dead: true, BodySize: 3},
			{Name: "tail_only", Static: true, BodySize: 3},
			{Name: "thrower", BodySize: 4, HasEH: true, NumLandingPads: 2,
				CallsPLT: []string{"__cxa_throw"}},
		},
	}
}

// fdeOnlyConfigs are the no-CET builds whose toolchains emit an FDE for
// every function (GCC both modes, Clang 64-bit) — the workload where
// configuration ⑤'s FDE evidence must carry full recovery on its own.
func fdeOnlyConfigs() []Config {
	var out []Config
	for _, base := range []Config{
		{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2, PIE: true},
		{Compiler: synth.GCC, Mode: x86.Mode32, Opt: synth.O0},
		{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.Os},
		{Compiler: synth.Clang, Mode: x86.Mode64, Opt: synth.O2},
		{Compiler: synth.Clang, Mode: x86.Mode64, Opt: synth.O3, PIE: true},
	} {
		base.NoCET = true
		out = append(out, base)
	}
	return out
}

// TestFDEOnlyRecall: on stripped no-CET binaries from full-FDE
// toolchains, configurations ①–④ recover essentially nothing beyond
// direct-call targets (E = ∅), RequireCET rejects the binary outright,
// and configuration ⑤ recovers every ground-truth function from the
// exception metadata alone — recall 1.0, far above the ≥ 0.9 the
// acceptance bar asks for.
func TestFDEOnlyRecall(t *testing.T) {
	for _, cfg := range fdeOnlyConfigs() {
		t.Run(cfg.String(), func(t *testing.T) {
			spec := fdeOnlySpec()
			res, err := synth.Compile(spec, cfg)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			bin, err := elfx.Load(res.Stripped)
			if err != nil {
				t.Fatalf("load: %v", err)
			}

			// The binary really is marker-free.
			rep1, err := core.Identify(bin, core.Config1)
			if err != nil {
				t.Fatalf("config 1: %v", err)
			}
			if len(rep1.Endbrs) != 0 {
				t.Fatalf("no-CET binary swept %d end branches", len(rep1.Endbrs))
			}

			// Configurations ①–④ with RequireCET reject it loudly.
			for i, opts := range []core.Options{core.Config1, core.Config2, core.Config3, core.Config4} {
				opts.RequireCET = true
				if _, err := core.Identify(bin, opts); !errors.Is(err, core.ErrNotCET) {
					t.Fatalf("config %d + RequireCET: err = %v, want ErrNotCET", i+1, err)
				}
			}

			// Without the gate they only see direct-call targets.
			rep4, err := core.Identify(bin, core.Config4)
			if err != nil {
				t.Fatalf("config 4: %v", err)
			}
			for _, e := range rep4.Entries {
				if !member(rep4.CallTargets, e) {
					t.Errorf("config 4 entry %#x is not a direct-call target — markerless recovery should be impossible", e)
				}
			}

			// Configuration ⑤ recovers the full ground truth from FDEs.
			rep5, err := core.Identify(bin, core.Config5)
			if err != nil {
				t.Fatalf("config 5: %v", err)
			}
			var missed []string
			for _, f := range res.GT.Funcs {
				if !member(rep5.Entries, f.Addr) {
					missed = append(missed, f.Name)
				}
			}
			if len(missed) > 0 {
				t.Errorf("config 5 missed %v (recall %d/%d, want 1.0)",
					missed, len(res.GT.Funcs)-len(missed), len(res.GT.Funcs))
			}
			if rep5.FusedFDEEntries == 0 {
				t.Error("config 5 reports zero fused FDE entries on an FDE-only binary")
			}
			if missing := firstNotIn(rep4.Entries, rep5.Entries); missing != 0 {
				t.Errorf("config 4 entry %#x absent from config 5", missing)
			}
			if len(rep5.Warnings) != 0 {
				t.Errorf("unexpected warnings: %v", rep5.Warnings)
			}
		})
	}
}

// TestFDEOnlyClang32: Clang 32-bit emits FDEs only for functions that
// need exception handling, so configuration ⑤'s recall legitimately
// degrades there — but it must still find every EH function and stay a
// superset of configuration ④. This pins the documented asymmetry
// rather than papering over it.
func TestFDEOnlyClang32(t *testing.T) {
	cfg := Config{Compiler: synth.Clang, Mode: x86.Mode32, Opt: synth.O2, NoCET: true}
	spec := fdeOnlySpec()
	res, err := synth.Compile(spec, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	bin, err := elfx.Load(res.Stripped)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rep4, err := core.Identify(bin, core.Config4)
	if err != nil {
		t.Fatalf("config 4: %v", err)
	}
	rep5, err := core.Identify(bin, core.Config5)
	if err != nil {
		t.Fatalf("config 5: %v", err)
	}
	if missing := firstNotIn(rep4.Entries, rep5.Entries); missing != 0 {
		t.Errorf("config 4 entry %#x absent from config 5", missing)
	}
	for _, f := range res.GT.Funcs {
		if f.Name == "thrower" && !member(rep5.Entries, f.Addr) {
			t.Errorf("config 5 missed EH function %s at %#x", f.Name, f.Addr)
		}
	}
}

// TestFDEOnlyDiffcheckBattery runs the full differential oracle over a
// spread of explicitly no-CET random cases, so the config-⑤ and
// RequireCET invariants are exercised on FDE-only binaries every run
// regardless of what the probabilistic generator draws.
func TestFDEOnlyDiffcheckBattery(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	opts := DefaultGenOptions()
	opts.NoCETProb = 1.0 // every case is a no-CET build
	for seed := int64(1); seed <= int64(n); seed++ {
		res := CheckSeed(seed, opts)
		if res.Failed() {
			t.Fatalf("%s", res)
		}
		if !res.Config.NoCET {
			t.Fatalf("seed %d: NoCETProb=1 drew a CET build %s", seed, res.Config)
		}
	}
}

// TestConfig5CETSuperset: on CET binaries configuration ⑤ must equal or
// grow configuration ④ — and the dead static function (the paper's
// dominant miss class) is exactly what the FDE evidence adds back.
func TestConfig5CETSuperset(t *testing.T) {
	spec := fdeOnlySpec()
	cfg := Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2} // CET build
	res, err := synth.Compile(spec, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	bin, err := elfx.Load(res.Stripped)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rep4, err := core.Identify(bin, core.Config4)
	if err != nil {
		t.Fatalf("config 4: %v", err)
	}
	rep5, err := core.Identify(bin, core.Config5)
	if err != nil {
		t.Fatalf("config 5: %v", err)
	}
	if missing := firstNotIn(rep4.Entries, rep5.Entries); missing != 0 {
		t.Fatalf("config 4 entry %#x absent from config 5", missing)
	}
	var dead uint64
	for _, f := range res.GT.Funcs {
		if f.Name == "dead_static" {
			dead = f.Addr
		}
	}
	if dead == 0 {
		t.Fatal("ground truth lost dead_static")
	}
	if member(rep4.Entries, dead) {
		t.Fatal("config 4 unexpectedly found the dead static function (test premise broken)")
	}
	if !member(rep5.Entries, dead) {
		t.Error("config 5 did not recover the dead static function from its FDE")
	}
}
