// Package diffcheck is the differential correctness harness for the
// FunSeeker reproduction: it generates randomized program specifications
// (layered on internal/synth), compiles each into a CET ELF image with
// known ground truth, runs every identifier in the module over the result
// through one shared analysis.Context, and checks a battery of
// cross-tool invariants:
//
//   - compilation, loading, and every identifier run without panicking;
//   - identification through a shared analysis.Context is byte-identical
//     to identification through a private context, and identification of
//     the stripped image matches the unstripped one;
//   - the linear sweep finds exactly the end branches the synthesizer
//     emitted (E == ground-truth end-branch sites);
//   - FILTERENDBR removes exactly the indirect-return and landing-pad
//     sites (E′ ⊆ E, with per-class counts matching ground truth) and
//     never fires a corrupt-metadata warning on well-formed binaries;
//   - the four configurations nest as the algebra says they must
//     (②⊆①, ②⊆③, ④⊆③, ②⊆④) and every reported set is sorted,
//     duplicate-free, and inside .text;
//   - the identified entry set matches the ground truth exactly, modulo
//     the failure classes the paper itself documents: unreferenced
//     (dead) functions and endbr-less tail-only targets may be missed,
//     and .cold/.part fragments may be spuriously reported — nothing
//     else may be;
//   - recursive descent with a memoized sweep index is byte-identical to
//     recursive descent without one;
//   - the shared context really did sweep once and parse .eh_frame at
//     most once (the PR-1 memoization contract).
//
// A failing case can be shrunk with Minimize to a minimal reproducer and
// persisted as a JSON regression spec under testdata/specs/, which the
// package test replays forever after. cmd/diffdrill drives long soak
// runs over seed ranges.
package diffcheck

import (
	"fmt"
	"math/rand"
)

// Violation is one invariant breach found while checking a case.
type Violation struct {
	// Check names the invariant, e.g. "filter-count" or "must-find".
	Check string
	// Detail is a human-readable description with addresses.
	Detail string
}

// String renders "check: detail".
func (v Violation) String() string { return v.Check + ": " + v.Detail }

// CaseResult is the outcome of checking one generated case.
type CaseResult struct {
	// Seed is the generator seed the case came from.
	Seed int64
	// Spec is the generated program specification.
	Spec *ProgSpec
	// Config is the build configuration.
	Config Config
	// Violations lists every invariant breach (empty = clean).
	Violations []Violation
}

// Failed reports whether any invariant was violated.
func (r *CaseResult) Failed() bool { return len(r.Violations) > 0 }

// String summarizes the case for logs.
func (r *CaseResult) String() string {
	if !r.Failed() {
		return fmt.Sprintf("seed %d (%s/%s): ok", r.Seed, r.Spec.Name, r.Config)
	}
	s := fmt.Sprintf("seed %d (%s/%s): %d violation(s)", r.Seed, r.Spec.Name, r.Config, len(r.Violations))
	for _, v := range r.Violations {
		s += "\n  " + v.String()
	}
	return s
}

// CheckSeed generates the case for one seed and checks every invariant.
func CheckSeed(seed int64, opts GenOptions) *CaseResult {
	rng := rand.New(rand.NewSource(seed))
	spec, cfg := GenCase(rng, opts)
	return &CaseResult{
		Seed:       seed,
		Spec:       spec,
		Config:     cfg,
		Violations: CheckSpec(spec, cfg),
	}
}
