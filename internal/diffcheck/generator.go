package diffcheck

import (
	"fmt"
	"math/rand"

	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// ProgSpec aliases the synthesizer's program specification.
type ProgSpec = synth.ProgSpec

// Config aliases the synthesizer's build configuration.
type Config = synth.Config

// GenOptions tunes the random case generator.
type GenOptions struct {
	// MinFuncs / MaxFuncs bound the function count (defaults 4 / 48).
	MinFuncs int
	MaxFuncs int
	// DataInText is the probability that a function carries a raw data
	// blob after its body. Trailing data legitimately desynchronizes the
	// linear sweep, so the oracle relaxes the sweep-exactness invariants
	// for such specs; the structural and differential invariants still
	// apply in full.
	DataInText float64
	// ManualEndbrProb is the probability the build uses -mmanual-endbr.
	ManualEndbrProb float64
	// NoCETProb is the probability the build runs without -fcf-protection
	// (synth.Config.NoCET): no end branches anywhere, EH metadata intact.
	// These are the FDE-only cases that exercise configuration ⑤'s
	// degraded path and the RequireCET gate. Mutually exclusive with
	// ManualEndbr — NoCET wins the draw.
	NoCETProb float64
}

// DefaultGenOptions is the mix used by tests and cmd/diffdrill.
func DefaultGenOptions() GenOptions {
	return GenOptions{MinFuncs: 4, MaxFuncs: 48, DataInText: 0.04, ManualEndbrProb: 0.06, NoCETProb: 0.10}
}

func (o *GenOptions) fill() {
	if o.MinFuncs <= 0 {
		o.MinFuncs = 4
	}
	if o.MaxFuncs < o.MinFuncs {
		o.MaxFuncs = o.MinFuncs + 44
	}
}

// externPool is the set of ordinary PLT imports random programs use.
var externPool = []string{
	"printf", "malloc", "free", "memcpy", "memset", "strlen", "exit",
	"read", "write", "qsort",
}

// GenCase draws one random (program spec, build configuration) pair from
// rng. The spec always passes synth Validate — by construction, not by
// retry — so every generated case must compile; a compile error is itself
// an invariant violation.
func GenCase(rng *rand.Rand, opts GenOptions) (*ProgSpec, Config) {
	opts.fill()
	cfg := genConfig(rng, opts)
	spec := genSpec(rng, opts)
	return spec, cfg
}

// genConfig draws a random build configuration across the paper's full
// cross product plus the §VI manual-endbr ablation knob.
func genConfig(rng *rand.Rand, opts GenOptions) Config {
	cfg := Config{
		Compiler: synth.GCC,
		Mode:     x86.Mode64,
		PIE:      rng.Intn(2) == 0,
		Opt:      synth.AllOptLevels()[rng.Intn(6)],
	}
	if rng.Intn(2) == 0 {
		cfg.Compiler = synth.Clang
	}
	if rng.Intn(2) == 0 {
		cfg.Mode = x86.Mode32
	}
	if rng.Float64() < opts.ManualEndbrProb {
		cfg.ManualEndbr = true
	}
	if rng.Float64() < opts.NoCETProb {
		cfg.ManualEndbr = false
		cfg.NoCET = true
	}
	return cfg
}

// genSpec draws one random program specification.
func genSpec(rng *rand.Rand, opts GenOptions) *ProgSpec {
	nf := opts.MinFuncs + rng.Intn(opts.MaxFuncs-opts.MinFuncs+1)
	lang := synth.LangC
	if rng.Float64() < 0.40 {
		lang = synth.LangCPP
	}
	spec := &ProgSpec{
		Name: fmt.Sprintf("diff_%08x", rng.Uint32()),
		Lang: lang,
		Seed: rng.Int63(),
	}
	spec.Funcs = make([]synth.FuncSpec, nf)

	// Function roles. main (index 0) stays a plain exported function so
	// the program always has a live entry.
	for i := range spec.Funcs {
		f := &spec.Funcs[i]
		if i == 0 {
			f.Name = "main"
		} else {
			f.Name = fmt.Sprintf("fn_%03d", i)
		}
		f.BodySize = 1 + rng.Intn(14)
		if i == 0 {
			continue
		}
		switch r := rng.Float64(); {
		case r < 0.04:
			// Dead: nothing may reference it. Random linkage — a dead
			// exported function still carries an end branch and is found;
			// a dead static one is the paper's dominant miss class.
			f.Dead = true
			f.Static = rng.Intn(2) == 0
		case r < 0.06:
			f.Intrinsic = true
			f.BodySize = 1 + rng.Intn(3)
		case r < 0.30:
			f.Static = true
		case r < 0.38:
			f.AddressTaken = true
		case r < 0.44:
			f.AddressTakenData = true
			f.Static = rng.Intn(3) == 0
		}
	}

	// Reference pools. Dead functions may still contain calls (their code
	// is swept even though nothing reaches it); intrinsics keep minimal
	// bodies and neither call nor get tail-called.
	var callers, targets []int
	for i := range spec.Funcs {
		f := &spec.Funcs[i]
		if !f.Intrinsic && (!f.Dead || rng.Intn(3) == 0) {
			callers = append(callers, i)
		}
		if !f.Dead && !f.Intrinsic {
			targets = append(targets, i)
		}
	}
	pickCaller := func(not int) int {
		for tries := 0; tries < 16; tries++ {
			if c := callers[rng.Intn(len(callers))]; c != not {
				return c
			}
		}
		return -1
	}

	// Direct-call edges: every non-dead target gets 0-3 callers.
	for _, i := range targets {
		f := &spec.Funcs[i]
		ncallers := rng.Intn(4)
		if f.Intrinsic && ncallers == 0 {
			ncallers = 1
		}
		for c := 0; c < ncallers; c++ {
			caller := pickCaller(-1) // self-calls (recursion) are legal
			if caller >= 0 {
				spec.Funcs[caller].Calls = append(spec.Funcs[caller].Calls, i)
			}
		}
	}

	// Tail-call edges, including endbr-less tail-only targets with one or
	// several distinct sources (the SELECTTAILCALL stress cases) and
	// chains through already-tail-called functions.
	for _, i := range targets {
		if spec.Funcs[i].Intrinsic {
			continue
		}
		if rng.Float64() >= 0.18 {
			continue
		}
		nsrc := 1 + rng.Intn(3)
		for c := 0; c < nsrc; c++ {
			if tc := pickCaller(i); tc >= 0 {
				spec.Funcs[tc].TailCalls = append(spec.Funcs[tc].TailCalls, i)
			}
		}
	}

	// Per-function features.
	for _, i := range callers {
		f := &spec.Funcs[i]
		if rng.Float64() < 0.30 {
			for n := 1 + rng.Intn(2); n > 0; n-- {
				f.CallsPLT = append(f.CallsPLT, externPool[rng.Intn(len(externPool))])
			}
		}
		if rng.Float64() < 0.10 {
			f.HasSwitch = true
			f.SwitchCases = 2 + rng.Intn(8)
		}
		if rng.Float64() < 0.07 {
			f.ColdPart = true
			switch {
			case rng.Float64() < 0.35:
				f.ColdCalled = true
			case rng.Float64() < 0.45:
				for n := 1 + rng.Intn(2); n > 0; n-- {
					if s := pickCaller(i); s >= 0 && !contains(f.SharedColdWith, s) {
						f.SharedColdWith = append(f.SharedColdWith, s)
					}
				}
			}
		}
		if rng.Float64() < 0.05 {
			f.IndirectReturnCall = synth.IndirectReturnFuncs[rng.Intn(len(synth.IndirectReturnFuncs))]
		}
		if lang == synth.LangCPP && !f.Intrinsic && rng.Float64() < 0.25 {
			f.HasEH = true
			f.NumLandingPads = 1 + rng.Intn(3)
			f.CallsPLT = append(f.CallsPLT, "__cxa_throw")
		}
		if rng.Float64() < opts.DataInText {
			f.TrailingData = 8 + rng.Intn(48)
		}
	}

	if err := spec.Validate(); err != nil {
		// A generator that emits invalid specs is itself a bug; fail loud
		// so the fuzzer/minimizer surfaces it immediately.
		panic(fmt.Sprintf("diffcheck: generated invalid spec: %v", err))
	}
	return spec
}

// specHasTrailingData reports whether any function embeds raw data in
// .text, which legitimately desynchronizes linear-sweep disassembly.
func specHasTrailingData(spec *ProgSpec) bool {
	for i := range spec.Funcs {
		if spec.Funcs[i].TrailingData > 0 {
			return true
		}
	}
	return false
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
