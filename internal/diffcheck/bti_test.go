package diffcheck

import (
	"math/rand"
	"testing"

	"github.com/funseeker/funseeker/internal/synth"
)

// TestBTIRandomSeeds is the AArch64 slice of the differential soak:
// every seed compiles through armsynth and must check clean against the
// BTI invariant battery, including the core-vs-bticore entry
// differential that pins the generic backend to the reference
// implementation.
func TestBTIRandomSeeds(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 40
	}
	opts := DefaultGenOptions()
	for seed := int64(1); seed <= int64(n); seed++ {
		res := CheckBTISeed(seed, opts)
		if res.Failed() {
			t.Fatalf("%s", res)
		}
	}
}

// TestBTIGeneratorDeterminism: the same seed must generate the same
// AArch64 case, keeping the harness replayable by seed alone.
func TestBTIGeneratorDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		s1, c1 := GenBTICase(rand.New(rand.NewSource(seed)), DefaultGenOptions())
		s2, c2 := GenBTICase(rand.New(rand.NewSource(seed)), DefaultGenOptions())
		if c1 != c2 {
			t.Fatalf("seed %d: configs differ: %s vs %s", seed, c1, c2)
		}
		if s1.Name != s2.Name || len(s1.Funcs) != len(s2.Funcs) {
			t.Fatalf("seed %d: specs differ", seed)
		}
	}
}

// TestBTIConfigJSONRoundTrip: the serialized ARM configuration decodes
// back to itself across the generator's draw space.
func TestBTIConfigJSONRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		_, cfg := GenBTICase(rand.New(rand.NewSource(seed)), DefaultGenOptions())
		dec, err := EncodeBTIConfig(cfg).Decode()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if dec != cfg {
			t.Fatalf("seed %d: round trip %s -> %s", seed, cfg, dec)
		}
	}
}

// TestMinimizeBTI exercises the shared shrinking machinery through the
// ARM entry point: the minimizer must strip functions and features not
// implied by the predicate and simplify the build configuration.
func TestMinimizeBTI(t *testing.T) {
	spec, cfg := GenBTICase(rand.New(rand.NewSource(7)), DefaultGenOptions())
	cfg.PAC = true
	interesting := func(s *ProgSpec, c BTIConfig) bool {
		for i := range s.Funcs {
			if s.Funcs[i].HasSwitch {
				return true
			}
		}
		return false
	}
	if !interesting(spec, cfg) {
		spec.Funcs[0].HasSwitch = true
		spec.Funcs[0].SwitchCases = 3
	}
	min, mcfg := MinimizeBTI(spec, cfg, interesting)
	if !interesting(min, mcfg) {
		t.Fatal("minimized spec lost the property")
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("minimized spec invalid: %v", err)
	}
	if len(min.Funcs) > 2 {
		t.Errorf("minimizer kept %d functions, want <= 2", len(min.Funcs))
	}
	if mcfg.PAC {
		t.Error("minimizer kept PAC though the property does not need it")
	}
	if mcfg.Opt != synth.O0 {
		t.Errorf("minimizer kept opt level %s, want O0", mcfg.Opt)
	}
}

// TestBTIRegressionCaseRoundTrip saves and reloads an AArch64 case and
// replays it through the arch dispatch in Replay.
func TestBTIRegressionCaseRoundTrip(t *testing.T) {
	spec := &ProgSpec{
		Name: "bti_roundtrip",
		Lang: synth.LangC,
		Seed: 1,
		Funcs: []synth.FuncSpec{
			{Name: "main", BodySize: 4, Calls: []int{1}},
			{Name: "helper", Static: true, BodySize: 3},
		},
	}
	cfgJSON := EncodeBTIConfig(BTIConfig{Opt: synth.O2, PAC: true})
	rc := &RegressionCase{
		Description: "round-trip probe",
		Arch:        "aarch64",
		BTIConfig:   &cfgJSON,
		Spec:        spec,
	}
	path := t.TempDir() + "/case.json"
	if err := rc.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadCase(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Arch != "aarch64" || loaded.BTIConfig == nil || loaded.BTIConfig.Opt != "O2" || !loaded.BTIConfig.PAC {
		t.Fatalf("loaded case mangled: %+v", loaded)
	}
	vs, err := loaded.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(vs) > 0 {
		t.Fatalf("well-formed probe case must replay clean, got %v", vs)
	}
}
