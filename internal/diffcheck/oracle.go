package diffcheck

import (
	"errors"
	"fmt"
	"runtime/debug"
	"slices"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/fetch"
	"github.com/funseeker/funseeker/internal/ghidra"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/idapro"
	"github.com/funseeker/funseeker/internal/recdesc"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// fourConfigs are the paper's Table II configurations in order ①..④.
var fourConfigs = []core.Options{core.Config1, core.Config2, core.Config3, core.Config4}

// CheckSpec compiles the spec under cfg and checks every invariant,
// returning the violations found (nil when the case is clean). Panics
// anywhere in the pipeline are caught and reported as violations.
func CheckSpec(spec *ProgSpec, cfg Config) (vs []Violation) {
	defer func() {
		if r := recover(); r != nil {
			vs = append(vs, Violation{
				Check:  "panic",
				Detail: fmt.Sprintf("%v\n%s", r, debug.Stack()),
			})
		}
	}()
	c := checker{}

	res, err := synth.Compile(spec, cfg)
	if err != nil {
		c.addf("compile", "valid spec failed to compile: %v", err)
		return c.vs
	}
	bin, err := elfx.Load(res.Stripped)
	if err != nil {
		c.addf("load", "stripped image unloadable: %v", err)
		return c.vs
	}
	full, err := elfx.Load(res.Image)
	if err != nil {
		c.addf("load", "unstripped image unloadable: %v", err)
		return c.vs
	}
	gt := res.GT
	hasData := specHasTrailingData(spec)
	ctx := analysis.NewContext(bin)

	// The four configurations through the shared context.
	reports := make([]*core.Report, len(fourConfigs))
	for i, opts := range fourConfigs {
		rep, err := core.IdentifyWithContext(ctx, opts)
		if err != nil {
			c.addf("identify", "config %d: %v", i+1, err)
			return c.vs
		}
		reports[i] = rep
		c.checkReportShape(fmt.Sprintf("config %d", i+1), rep, bin)
	}
	// Configuration ⑤ (EH fusion) through the same shared context.
	rep5, err := core.IdentifyWithContext(ctx, core.Config5)
	if err != nil {
		c.addf("identify", "config 5: %v", err)
		return c.vs
	}
	c.checkReportShape("config 5", rep5, bin)
	c.checkDifferentials(bin, full, ctx, reports)
	c.checkNesting(reports)
	c.checkConfig5(ctx, cfg, reports[3], rep5)
	c.checkRequireCET(ctx, cfg, reports, rep5)
	supEntries := c.checkSuperset(ctx, reports[3], hasData)
	if !hasData {
		c.checkEndbrExactness(reports[0], gt)
		c.checkFilterCounts(reports, gt)
		c.checkEntrySets(reports, rep5, supEntries, gt)
		c.checkClassification(ctx, gt)
	}
	c.checkBaselines(ctx, bin)
	c.checkRecdesc(bin, ctx)
	c.checkParallelSweep(bin)
	c.checkStats(ctx, bin)
	return c.vs
}

// checker accumulates violations.
type checker struct {
	vs []Violation
}

func (c *checker) addf(check, format string, args ...any) {
	c.vs = append(c.vs, Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
}

// checkReportShape validates the structural report invariants: every
// reported set is strictly ascending (sorted, duplicate-free) and every
// identified entry lies inside .text.
func (c *checker) checkReportShape(label string, rep *core.Report, bin *elfx.Binary) {
	sets := []struct {
		name string
		s    []uint64
	}{
		{"Entries", rep.Entries},
		{"Endbrs", rep.Endbrs},
		{"CallTargets", rep.CallTargets},
		{"JumpTargets", rep.JumpTargets},
		{"TailCallTargets", rep.TailCallTargets},
	}
	for _, set := range sets {
		if !strictlyAscending(set.s) {
			c.addf("report-sorted", "%s: %s not strictly ascending", label, set.name)
		}
	}
	for _, e := range rep.Entries {
		if !bin.InText(e) {
			c.addf("report-bounds", "%s: entry %#x outside .text [%#x,%#x)",
				label, e, bin.TextAddr, bin.TextEnd())
		}
	}
	for _, t := range rep.TailCallTargets {
		if !member(rep.Entries, t) {
			c.addf("tailcall-set", "%s: tail-call target %#x not in entries", label, t)
		}
	}
	if len(rep.Warnings) > 0 {
		c.addf("filter-warning", "%s: unexpected warnings on well-formed binary: %v",
			label, rep.Warnings)
	}
}

// checkDifferentials asserts the memoization and stripping contracts:
// identification through the shared context equals identification through
// a private context, repeated runs over the same context are stable, and
// the unstripped image identifies identically to the stripped one.
func (c *checker) checkDifferentials(bin, full *elfx.Binary, ctx *analysis.Context, reports []*core.Report) {
	for i, opts := range fourConfigs {
		private, err := core.Identify(bin, opts)
		if err != nil {
			c.addf("identify", "private context config %d: %v", i+1, err)
			continue
		}
		if !slices.Equal(private.Entries, reports[i].Entries) {
			c.addf("shared-vs-private",
				"config %d: shared-context entries differ from private-context entries: %s",
				i+1, diffSummary(reports[i].Entries, private.Entries))
		}
	}
	again, err := core.IdentifyWithContext(ctx, core.Config4)
	if err != nil {
		c.addf("identify", "repeat config 4: %v", err)
	} else if !slices.Equal(again.Entries, reports[3].Entries) {
		c.addf("shared-vs-private", "config 4 not stable across repeated runs on one context")
	}
	unstripped, err := core.Identify(full, core.Config4)
	if err != nil {
		c.addf("identify", "unstripped image: %v", err)
	} else if !slices.Equal(unstripped.Entries, reports[3].Entries) {
		c.addf("stripped-vs-unstripped", "config 4: %s",
			diffSummary(reports[3].Entries, unstripped.Entries))
	}
}

// checkNesting asserts the configuration algebra: ②⊆①, ②⊆③, ④⊆③, ②⊆④.
func (c *checker) checkNesting(reports []*core.Report) {
	pairs := []struct {
		sub, super int // 0-based config indices
	}{
		{1, 0}, {1, 2}, {3, 2}, {1, 3},
	}
	for _, p := range pairs {
		if missing := firstNotIn(reports[p.sub].Entries, reports[p.super].Entries); missing != 0 {
			c.addf("config-nesting", "config %d entry %#x absent from config %d",
				p.sub+1, missing, p.super+1)
		}
	}
}

// checkConfig5 asserts the EH-fusion contract of configuration ⑤:
// it is a superset of configuration ④ by construction, every in-text
// FDE start is recovered (on no-CET binaries this IS the detection —
// the FDE+LSDA evidence alone must carry it; on CET binaries FDE
// starts that are direct jump targets are treated as split-out
// fragments and may be skipped), the reported fused-entry count is
// consistent with the entry-set growth, and configurations without
// FuseEH never report fused entries.
func (c *checker) checkConfig5(ctx *analysis.Context, cfg Config, rep4, rep5 *core.Report) {
	if missing := firstNotIn(rep4.Entries, rep5.Entries); missing != 0 {
		c.addf("config-nesting", "config 4 entry %#x absent from config 5", missing)
	}
	ix, err := ctx.FDEIndex()
	if err != nil {
		c.addf("identify", "FDE index: %v", err)
		return
	}
	cet := len(rep4.Endbrs) > 0
	for _, s := range ix.Starts {
		if cet && member(rep4.JumpTargets, s) {
			continue // fragment heuristic: jump-target FDE starts are skippable on CET binaries
		}
		if !member(rep5.Entries, s) {
			c.addf("eh-fusion", "in-text FDE start %#x missed by config 5", s)
		}
	}
	if grown := len(rep5.Entries) - len(rep4.Entries); grown < rep5.FusedFDEEntries {
		c.addf("eh-fusion", "config 5 grew the entry set by %d but reports %d fused FDE starts",
			grown, rep5.FusedFDEEntries)
	}
	if rep4.FusedFDEEntries != 0 {
		c.addf("eh-fusion", "config 4 reports %d fused FDE entries, want 0", rep4.FusedFDEEntries)
	}
	if cfg.NoCET {
		if len(rep5.Entries) == 0 && len(ix.Starts) > 0 {
			c.addf("eh-fusion", "config 5 found nothing on a no-CET binary with %d FDE starts",
				len(ix.Starts))
		}
		if len(rep5.Endbrs) != 0 {
			c.addf("eh-fusion", "no-CET binary swept %d end branches, want 0", len(rep5.Endbrs))
		}
	}
}

// checkRequireCET asserts the CET gate is orthogonal to fusion: with
// RequireCET set every configuration — including ⑤, whose gate fires
// before the fusion stage — errors with ErrNotCET exactly when the
// sweep found no end branch (no-CET builds, or manual-endbr builds with
// nothing address-taken), and identifies exactly as its ungated twin
// otherwise.
func (c *checker) checkRequireCET(ctx *analysis.Context, cfg Config, reports []*core.Report, rep5 *core.Report) {
	gated := append(slices.Clone(fourConfigs), core.Config5)
	ungated := append(slices.Clone(reports), rep5)
	wantGate := len(reports[0].Endbrs) == 0
	if cfg.NoCET && !wantGate {
		c.addf("require-cet", "no-CET build swept %d end branches", len(reports[0].Endbrs))
	}
	for i, opts := range gated {
		opts.RequireCET = true
		rep, err := core.IdentifyWithContext(ctx, opts)
		if wantGate {
			if !errors.Is(err, core.ErrNotCET) {
				c.addf("require-cet", "config %d + RequireCET on marker-free binary: err = %v, want ErrNotCET",
					i+1, err)
			}
			continue
		}
		if err != nil {
			c.addf("require-cet", "config %d + RequireCET on CET binary: %v", i+1, err)
			continue
		}
		if !slices.Equal(rep.Entries, ungated[i].Entries) {
			c.addf("require-cet", "config %d + RequireCET changed the entry set: %s",
				i+1, diffSummary(ungated[i].Entries, rep.Entries))
		}
	}
}

// checkSuperset runs configuration ④ with the byte-level end-branch scan
// and asserts it is a conservative extension: E and the entry set only
// grow. On binaries without inline data the scan must find exactly the
// sweep's end branches — compiler-generated code never aliases an
// end-branch encoding at a misaligned offset.
func (c *checker) checkSuperset(ctx *analysis.Context, rep4 *core.Report, hasData bool) []uint64 {
	opts := core.Config4
	opts.SupersetEndbrScan = true
	sup, err := core.IdentifyWithContext(ctx, opts)
	if err != nil {
		c.addf("identify", "superset scan: %v", err)
		return nil
	}
	if missing := firstNotIn(rep4.Endbrs, sup.Endbrs); missing != 0 {
		c.addf("superset-subset", "sweep endbr %#x missing from superset scan", missing)
	}
	if missing := firstNotIn(rep4.Entries, sup.Entries); missing != 0 {
		c.addf("superset-subset", "config 4 entry %#x lost under superset scan", missing)
	}
	if !hasData && !slices.Equal(sup.Endbrs, rep4.Endbrs) {
		c.addf("superset-alias", "byte-level scan found end-branch encodings the sweep did not: %s",
			diffSummary(rep4.Endbrs, sup.Endbrs))
	}
	return sup.Entries
}

// checkEndbrExactness asserts the sweep found exactly the end branches
// the synthesizer emitted.
func (c *checker) checkEndbrExactness(rep1 *core.Report, gt *groundtruth.GT) {
	want := make([]uint64, 0, len(gt.Endbrs))
	for _, e := range gt.Endbrs {
		want = append(want, e.Addr)
	}
	slices.Sort(want)
	if !slices.Equal(rep1.Endbrs, want) {
		c.addf("endbr-exact", "swept E != ground-truth end-branch sites: %s",
			diffSummary(want, rep1.Endbrs))
	}
}

// checkFilterCounts asserts FILTERENDBR removed exactly the ground-truth
// indirect-return and landing-pad sites, in every filtering configuration.
func (c *checker) checkFilterCounts(reports []*core.Report, gt *groundtruth.GT) {
	wantIR, wantEH := 0, 0
	for _, e := range gt.Endbrs {
		switch e.Role {
		case groundtruth.RoleIndirectReturn:
			wantIR++
		case groundtruth.RoleException:
			wantEH++
		}
	}
	for i, rep := range reports {
		if i == 0 {
			continue // configuration ① does not filter
		}
		if rep.FilteredIndirectReturn != wantIR {
			c.addf("filter-count", "config %d filtered %d indirect-return endbrs, ground truth has %d",
				i+1, rep.FilteredIndirectReturn, wantIR)
		}
		if rep.FilteredLandingPads != wantEH {
			c.addf("filter-count", "config %d filtered %d landing-pad endbrs, ground truth has %d",
				i+1, rep.FilteredLandingPads, wantEH)
		}
	}
}

// checkEntrySets asserts exactness modulo the paper's documented failure
// classes. A ground-truth function MUST be identified when its entry
// carries an end branch or is a direct-call target; only endbr-less
// functions referenced by nothing or only by tail jumps may be missed.
// Spurious entries must be .cold/.part fragments — except configuration
// ①, which may also report the unfiltered non-entry end branches, and
// configuration ③, which reports every direct jump target by design.
func (c *checker) checkEntrySets(reports []*core.Report, rep5 *core.Report, supEntries []uint64, gt *groundtruth.GT) {
	truth := gt.Entries()
	parts := make(map[uint64]bool, len(gt.PartBlocks))
	for _, p := range gt.PartBlocks {
		parts[p] = true
	}
	callTargets := make(map[uint64]bool, len(reports[0].CallTargets))
	for _, t := range reports[0].CallTargets {
		callTargets[t] = true
	}
	nonEntryEndbrs := make(map[uint64]bool)
	for _, e := range gt.Endbrs {
		if e.Role != groundtruth.RoleFuncEntry {
			nonEntryEndbrs[e.Addr] = true
		}
	}

	var must []uint64
	for _, f := range gt.Funcs {
		if f.HasEndbr || callTargets[f.Addr] {
			must = append(must, f.Addr)
		}
	}
	checkOne := func(label string, entries []uint64, extraFP map[uint64]bool) {
		for _, addr := range must {
			if !member(entries, addr) {
				c.addf("must-find", "%s: ground-truth entry %#x (endbr or call target) missed",
					label, addr)
			}
		}
		for _, e := range entries {
			if truth[e] || parts[e] {
				continue
			}
			if extraFP != nil && extraFP[e] {
				continue
			}
			c.addf("fp-class", "%s: spurious entry %#x is not a .part/.cold fragment", label, e)
		}
	}
	jumpTargets := make(map[uint64]bool, len(reports[2].JumpTargets))
	for _, t := range reports[2].JumpTargets {
		jumpTargets[t] = true
	}
	checkOne("config 1", reports[0].Entries, nonEntryEndbrs)
	checkOne("config 2", reports[1].Entries, nil)
	checkOne("config 3", reports[2].Entries, jumpTargets)
	checkOne("config 4", reports[3].Entries, nil)
	checkOne("config 5", rep5.Entries, nil)
	if supEntries != nil {
		checkOne("config 4+superset", supEntries, nil)
	}
}

// checkClassification cross-checks the Table I study: the end-branch
// distribution computed from the binary's own metadata must match the
// ground-truth role counts exactly.
func (c *checker) checkClassification(ctx *analysis.Context, gt *groundtruth.GT) {
	dist, err := core.ClassifyEndbrsWithContext(ctx)
	if err != nil {
		c.addf("identify", "classify endbrs: %v", err)
		return
	}
	var want core.EndbrDistribution
	for _, e := range gt.Endbrs {
		switch e.Role {
		case groundtruth.RoleIndirectReturn:
			want.IndirectReturn++
		case groundtruth.RoleException:
			want.Exception++
		default:
			want.FuncEntry++
		}
	}
	if dist != want {
		c.addf("classify", "endbr distribution %+v != ground truth %+v", dist, want)
	}
}

// checkBaselines runs the IDA, Ghidra, and FETCH models for structural
// sanity: no errors, sorted unique entries, all inside .text. Their
// recall is intentionally imperfect, so no exactness is asserted.
func (c *checker) checkBaselines(ctx *analysis.Context, bin *elfx.Binary) {
	type run struct {
		name    string
		entries []uint64
		err     error
	}
	var runs []run
	if r, err := idapro.IdentifyWithContext(ctx); err != nil {
		runs = append(runs, run{name: "idapro", err: err})
	} else {
		runs = append(runs, run{name: "idapro", entries: r.Entries})
	}
	if r, err := ghidra.IdentifyWithContext(ctx); err != nil {
		runs = append(runs, run{name: "ghidra", err: err})
	} else {
		runs = append(runs, run{name: "ghidra", entries: r.Entries})
	}
	if r, err := fetch.IdentifyWithContext(ctx); err != nil {
		runs = append(runs, run{name: "fetch", err: err})
	} else {
		runs = append(runs, run{name: "fetch", entries: r.Entries})
	}
	for _, r := range runs {
		if r.err != nil {
			c.addf("identify", "%s: %v", r.name, r.err)
			continue
		}
		if !strictlyAscending(r.entries) {
			c.addf("report-sorted", "%s: entries not strictly ascending", r.name)
		}
		for _, e := range r.entries {
			if !bin.InText(e) {
				c.addf("report-bounds", "%s: entry %#x outside .text", r.name, e)
			}
		}
	}
}

// checkRecdesc asserts the recursive-descent walker produces
// byte-identical results with and without the memoized sweep index (the
// PR-1 fallback contract), and stays inside .text.
func (c *checker) checkRecdesc(bin *elfx.Binary, ctx *analysis.Context) {
	seeds := []uint64{bin.Entry}
	plain := recdesc.Traverse(bin, seeds)
	indexed := recdesc.TraverseIndexed(bin, ctx.Index(), seeds)
	pe, ie := plain.Entries(), indexed.Entries()
	if !slices.Equal(pe, ie) {
		c.addf("recdesc-differential", "indexed traversal entries differ from plain: %s",
			diffSummary(pe, ie))
	}
	if !slices.Equal(plain.Covered, indexed.Covered) {
		c.addf("recdesc-differential", "indexed traversal coverage differs from plain")
	}
	for _, e := range pe {
		if !bin.InText(e) {
			c.addf("recdesc-bounds", "entry %#x outside .text", e)
		}
	}
}

// checkParallelSweep asserts the sharded-sweep stitching contract: for
// any worker count, BuildIndexParallel must produce an index
// byte-identical to the sequential BuildIndex — same instruction stream
// (every field, compared with ==) and the same skipped-byte accounting,
// including on binaries with data-in-text where the shard seams can land
// mid-garbage. Odd worker counts are used deliberately so the seams
// fall at unaligned offsets.
func (c *checker) checkParallelSweep(bin *elfx.Binary) {
	seq := x86.BuildIndex(bin.Text, bin.TextAddr, bin.Mode)
	for _, workers := range []int{2, 3, 7} {
		par := x86.BuildIndexParallel(bin.Text, bin.TextAddr, bin.Mode, workers)
		if len(par.Insts) != len(seq.Insts) {
			c.addf("parallel-sweep", "workers=%d: %d instructions vs %d sequential",
				workers, len(par.Insts), len(seq.Insts))
			continue
		}
		for i := range seq.Insts {
			if par.Insts[i] != seq.Insts[i] {
				c.addf("parallel-sweep", "workers=%d: inst %d differs: parallel %+v vs sequential %+v",
					workers, i, par.Insts[i], seq.Insts[i])
				break
			}
		}
		if par.Skipped != seq.Skipped {
			c.addf("parallel-sweep", "workers=%d: skipped %d bytes vs %d sequential",
				workers, par.Skipped, seq.Skipped)
		}
	}
}

// checkStats asserts the shared-context memoization contract after the
// full battery above: one linear sweep, at most one .eh_frame parse and
// landing-pad join, at most one superset scan, and a healthy hit count.
func (c *checker) checkStats(ctx *analysis.Context, bin *elfx.Binary) {
	st := ctx.Stats()
	if st.Sweep.Computes != 1 {
		c.addf("stats", "linear sweep ran %d times on one context, want exactly 1", st.Sweep.Computes)
	}
	if st.Sweep.Hits < 5 {
		c.addf("stats", "sweep cache hits = %d, want >= 5 after the full tool battery", st.Sweep.Hits)
	}
	if st.EHParse.Computes > 1 {
		c.addf("stats", ".eh_frame parsed %d times, want at most 1", st.EHParse.Computes)
	}
	if len(bin.EHFrame) > 0 && st.EHParse.Computes != 1 {
		c.addf("stats", ".eh_frame present but parsed %d times, want exactly 1", st.EHParse.Computes)
	}
	if st.LandingPad.Computes > 1 {
		c.addf("stats", "landing-pad join ran %d times, want at most 1", st.LandingPad.Computes)
	}
	if st.Superset.Computes > 1 {
		c.addf("stats", "superset scan ran %d times, want at most 1", st.Superset.Computes)
	}
	if st.FDEIndex.Computes != 1 {
		c.addf("stats", "FDE index built %d times across the battery, want exactly 1", st.FDEIndex.Computes)
	}
}

// --- small set helpers --------------------------------------------------

// strictlyAscending reports whether s is sorted with no duplicates.
func strictlyAscending(s []uint64) bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// member reports whether sorted slice s contains v.
func member(s []uint64, v uint64) bool {
	_, ok := slices.BinarySearch(s, v)
	return ok
}

// firstNotIn returns the first element of sub missing from super (both
// sorted), or 0 when sub ⊆ super. Address 0 is never a valid entry.
func firstNotIn(sub, super []uint64) uint64 {
	for _, v := range sub {
		if !member(super, v) {
			return v
		}
	}
	return 0
}

// diffSummary renders the symmetric difference of two sorted sets,
// truncated for log readability.
func diffSummary(want, got []uint64) string {
	var onlyWant, onlyGot []uint64
	for _, v := range want {
		if !member(got, v) {
			onlyWant = append(onlyWant, v)
		}
	}
	for _, v := range got {
		if !member(want, v) {
			onlyGot = append(onlyGot, v)
		}
	}
	const maxShow = 8
	trunc := func(s []uint64) []uint64 {
		if len(s) > maxShow {
			return s[:maxShow]
		}
		return s
	}
	return fmt.Sprintf("missing=%#x extra=%#x (want %d, got %d)",
		trunc(onlyWant), trunc(onlyGot), len(want), len(got))
}
