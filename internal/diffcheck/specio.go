package diffcheck

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// RegressionCase is one persisted reproducer: a (usually minimized)
// program specification plus build configuration and a note about the
// violation it originally triggered. Checked-in cases under
// testdata/specs/ are replayed by the package test on every run.
type RegressionCase struct {
	// Description says what the case reproduces and when it was captured.
	Description string `json:"description"`
	// Seed is the generator seed the failure came from (0 if hand-built).
	Seed int64 `json:"seed,omitempty"`
	// Violations lists the Check names observed at capture time.
	Violations []string `json:"violations,omitempty"`
	// Arch selects the oracle the case replays under: "" (historical
	// cases) or "x86" runs CheckSpec, "aarch64" runs CheckBTISpec.
	Arch string `json:"arch,omitempty"`
	// Config is the x86 build configuration; nil for AArch64 cases.
	Config *ConfigJSON `json:"config,omitempty"`
	// BTIConfig is the ARM build configuration; nil for x86 cases.
	BTIConfig *BTIConfigJSON `json:"bti_config,omitempty"`
	// Spec is the program specification.
	Spec *ProgSpec `json:"spec"`
}

// ConfigJSON is the serialized form of a build configuration, using the
// human-readable spellings ("gcc"/"clang", 32/64, "O2").
type ConfigJSON struct {
	Compiler    string `json:"compiler"`
	Mode        int    `json:"mode"`
	PIE         bool   `json:"pie"`
	Opt         string `json:"opt"`
	ManualEndbr bool   `json:"manual_endbr,omitempty"`
	NoCET       bool   `json:"no_cet,omitempty"`
}

// EncodeConfig converts a synth configuration to its serialized form.
func EncodeConfig(cfg Config) ConfigJSON {
	return ConfigJSON{
		Compiler:    cfg.Compiler.String(),
		Mode:        int(cfg.Mode),
		PIE:         cfg.PIE,
		Opt:         cfg.Opt.String(),
		ManualEndbr: cfg.ManualEndbr,
		NoCET:       cfg.NoCET,
	}
}

// Decode converts the serialized configuration back to synth's form.
func (c ConfigJSON) Decode() (Config, error) {
	out := Config{PIE: c.PIE, ManualEndbr: c.ManualEndbr, NoCET: c.NoCET, Mode: x86.Mode(c.Mode)}
	switch c.Compiler {
	case "gcc":
		out.Compiler = synth.GCC
	case "clang":
		out.Compiler = synth.Clang
	default:
		return out, fmt.Errorf("diffcheck: unknown compiler %q", c.Compiler)
	}
	found := false
	for _, o := range synth.AllOptLevels() {
		if o.String() == c.Opt {
			out.Opt = o
			found = true
		}
	}
	if !found {
		return out, fmt.Errorf("diffcheck: unknown optimization level %q", c.Opt)
	}
	if err := out.Validate(); err != nil {
		return out, err
	}
	return out, nil
}

// BTIConfigJSON is the serialized form of an ARM build configuration.
type BTIConfigJSON struct {
	Opt string `json:"opt"`
	PAC bool   `json:"pac,omitempty"`
}

// EncodeBTIConfig converts an armsynth configuration to its serialized
// form.
func EncodeBTIConfig(cfg BTIConfig) BTIConfigJSON {
	return BTIConfigJSON{Opt: cfg.Opt.String(), PAC: cfg.PAC}
}

// Decode converts the serialized ARM configuration back to armsynth's
// form.
func (c BTIConfigJSON) Decode() (BTIConfig, error) {
	out := BTIConfig{PAC: c.PAC}
	for _, o := range synth.AllOptLevels() {
		if o.String() == c.Opt {
			out.Opt = o
			return out, nil
		}
	}
	return out, fmt.Errorf("diffcheck: unknown optimization level %q", c.Opt)
}

// Replay runs the case through the oracle its Arch selects, returning
// the violations found.
func (r *RegressionCase) Replay() ([]Violation, error) {
	if r.Arch == "aarch64" {
		if r.BTIConfig == nil {
			return nil, fmt.Errorf("diffcheck: aarch64 case lacks bti_config")
		}
		cfg, err := r.BTIConfig.Decode()
		if err != nil {
			return nil, err
		}
		return CheckBTISpec(r.Spec, cfg), nil
	}
	if r.Config == nil {
		return nil, fmt.Errorf("diffcheck: x86 case lacks config")
	}
	cfg, err := r.Config.Decode()
	if err != nil {
		return nil, err
	}
	return CheckSpec(r.Spec, cfg), nil
}

// Save writes the case as indented JSON to path, creating parent
// directories as needed.
func (r *RegressionCase) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("diffcheck: marshal: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("diffcheck: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("diffcheck: %w", err)
	}
	return nil
}

// LoadCase reads one regression case from path and validates it.
func LoadCase(path string) (*RegressionCase, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("diffcheck: %w", err)
	}
	var r RegressionCase
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("diffcheck: parse %s: %w", path, err)
	}
	if r.Spec == nil {
		return nil, fmt.Errorf("diffcheck: %s: missing spec", path)
	}
	if err := r.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("diffcheck: %s: %w", path, err)
	}
	switch r.Arch {
	case "", "x86":
		if r.Config == nil {
			return nil, fmt.Errorf("diffcheck: %s: missing config", path)
		}
		if _, err := r.Config.Decode(); err != nil {
			return nil, fmt.Errorf("diffcheck: %s: %w", path, err)
		}
	case "aarch64":
		if r.BTIConfig == nil {
			return nil, fmt.Errorf("diffcheck: %s: missing bti_config", path)
		}
		if _, err := r.BTIConfig.Decode(); err != nil {
			return nil, fmt.Errorf("diffcheck: %s: %w", path, err)
		}
	default:
		return nil, fmt.Errorf("diffcheck: %s: unknown arch %q", path, r.Arch)
	}
	return &r, nil
}

// LoadDir reads every *.json regression case under dir, sorted by file
// name. A missing directory yields an empty list.
func LoadDir(dir string) ([]*RegressionCase, []string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("diffcheck: %w", err)
	}
	sort.Strings(paths)
	var cases []*RegressionCase
	for _, p := range paths {
		r, err := LoadCase(p)
		if err != nil {
			return nil, nil, err
		}
		cases = append(cases, r)
	}
	return cases, paths, nil
}
