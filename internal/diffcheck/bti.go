package diffcheck

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"slices"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/armsynth"
	"github.com/funseeker/funseeker/internal/bticore"
	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
)

// BTIConfig aliases the ARM synthesizer's build configuration. It is a
// distinct type from Config (the x86 synth.Config alias) on purpose:
// the two synthesizers share ProgSpec but nothing about their build
// knobs, and the pinned x86 regression specs must keep deserializing
// into the exact shape they were captured with.
type BTIConfig = armsynth.Config

// BTICaseResult is the outcome of checking one generated AArch64 case.
type BTICaseResult struct {
	// Seed is the generator seed the case came from.
	Seed int64
	// Spec is the generated program specification.
	Spec *ProgSpec
	// Config is the ARM build configuration.
	Config BTIConfig
	// Violations lists every invariant breach (empty = clean).
	Violations []Violation
}

// Failed reports whether any invariant was violated.
func (r *BTICaseResult) Failed() bool { return len(r.Violations) > 0 }

// String summarizes the case for logs.
func (r *BTICaseResult) String() string {
	if !r.Failed() {
		return fmt.Sprintf("bti seed %d (%s/%s): ok", r.Seed, r.Spec.Name, r.Config)
	}
	s := fmt.Sprintf("bti seed %d (%s/%s): %d violation(s)", r.Seed, r.Spec.Name, r.Config, len(r.Violations))
	for _, v := range r.Violations {
		s += "\n  " + v.String()
	}
	return s
}

// GenBTICase draws one random (program spec, ARM build configuration)
// pair from rng. The spec distribution is the shared genSpec one — the
// ARM synthesizer ignores the x86-only features (PLT imports,
// indirect-return calls, EH, cold splitting, trailing data) and models
// everything else, so one generator covers both backends.
func GenBTICase(rng *rand.Rand, opts GenOptions) (*ProgSpec, BTIConfig) {
	opts.fill()
	cfg := BTIConfig{
		Opt: synth.AllOptLevels()[rng.Intn(6)],
		PAC: rng.Intn(2) == 0,
	}
	return genSpec(rng, opts), cfg
}

// CheckBTISeed generates the AArch64 case for one seed and checks every
// invariant.
func CheckBTISeed(seed int64, opts GenOptions) *BTICaseResult {
	rng := rand.New(rand.NewSource(seed))
	spec, cfg := GenBTICase(rng, opts)
	return &BTICaseResult{
		Seed:       seed,
		Spec:       spec,
		Config:     cfg,
		Violations: CheckBTISpec(spec, cfg),
	}
}

// CheckBTISpec compiles the spec into a BTI-enabled AArch64 image and
// checks the AArch64 slice of the invariant battery:
//
//   - compilation, loading, and every configuration run without
//     panicking, the loader reports ArchAArch64 with the BTI property
//     bit, and every report says arch "aarch64";
//   - identification through a shared analysis.Context equals
//     identification through a private one and is stable across repeats;
//   - the configurations nest (②⊆①, ②⊆③, ④⊆③, ②⊆④), and — since
//     AArch64 has no indirect-return or landing-pad analog — ① == ②
//     exactly (FILTERENDBR is a structural no-op);
//   - the superset marker scan equals the sweep exactly: on a
//     fixed-width ISA the byte-level scan degenerates to the word scan;
//   - configuration ④ through the generic core is entry-identical to
//     the dedicated bticore reference implementation, set by set — the
//     central backend-seam differential;
//   - the sweep's E is exactly the ground-truth call-accepting pads,
//     and its BTI j set is exactly the ground-truth jump-target sites;
//   - entry exactness modulo the documented failure classes (as on x86,
//     with config ③'s direct-jump targets the only FP class);
//   - the shared context swept exactly once.
func CheckBTISpec(spec *ProgSpec, cfg BTIConfig) (vs []Violation) {
	defer func() {
		if r := recover(); r != nil {
			vs = append(vs, Violation{
				Check:  "panic",
				Detail: fmt.Sprintf("%v\n%s", r, debug.Stack()),
			})
		}
	}()
	c := checker{}

	res, err := armsynth.Compile(spec, cfg)
	if err != nil {
		c.addf("compile", "valid spec failed to compile for arm64: %v", err)
		return c.vs
	}
	bin, err := elfx.Load(res.Image)
	if err != nil {
		c.addf("load", "arm64 image unloadable: %v", err)
		return c.vs
	}
	if bin.Arch != elfx.ArchAArch64 {
		c.addf("load", "loader reports arch %s, want aarch64", bin.Arch)
		return c.vs
	}
	if !bin.BTIEnabled {
		c.addf("load", "BTI property note not detected")
	}
	if bin.CETEnabled {
		c.addf("load", "CET flag set on an AArch64 binary")
	}
	gt := res.GT
	ctx := analysis.NewContext(bin)

	reports := make([]*core.Report, len(fourConfigs))
	for i, opts := range fourConfigs {
		rep, err := core.IdentifyWithContext(ctx, opts)
		if err != nil {
			c.addf("identify", "config %d: %v", i+1, err)
			return c.vs
		}
		reports[i] = rep
		c.checkReportShape(fmt.Sprintf("config %d", i+1), rep, bin)
		if rep.Arch != "aarch64" {
			c.addf("arch", "config %d report says arch %q, want aarch64", i+1, rep.Arch)
		}
		if rep.FilteredIndirectReturn != 0 || rep.FilteredLandingPads != 0 {
			c.addf("filter-count", "config %d filtered %d+%d pads on an ISA with no filter classes",
				i+1, rep.FilteredIndirectReturn, rep.FilteredLandingPads)
		}
	}
	c.checkBTIDifferentials(bin, ctx, reports)
	c.checkNesting(reports)
	if !slices.Equal(reports[0].Entries, reports[1].Entries) {
		c.addf("filter-noop", "config 1 and 2 differ though FILTERENDBR has nothing to remove: %s",
			diffSummary(reports[0].Entries, reports[1].Entries))
	}
	c.checkBTISuperset(ctx, reports[3])
	c.checkBTICore(res.Image, reports[3])
	c.checkBTIPadExactness(ctx, reports[0], gt)
	c.checkBTIEntrySets(reports, gt)

	st := ctx.Stats()
	if st.Sweep.Computes != 1 {
		c.addf("stats", "linear sweep ran %d times on one context, want exactly 1", st.Sweep.Computes)
	}
	if st.Superset.Computes > 1 {
		c.addf("stats", "superset scan ran %d times, want at most 1", st.Superset.Computes)
	}
	return c.vs
}

// checkBTIDifferentials asserts shared-context identification equals
// private-context identification and repeats are stable. (There is no
// stripped-vs-unstripped leg: the ARM synthesizer always emits one
// stripped image.)
func (c *checker) checkBTIDifferentials(bin *elfx.Binary, ctx *analysis.Context, reports []*core.Report) {
	for i, opts := range fourConfigs {
		private, err := core.Identify(bin, opts)
		if err != nil {
			c.addf("identify", "private context config %d: %v", i+1, err)
			continue
		}
		if !slices.Equal(private.Entries, reports[i].Entries) {
			c.addf("shared-vs-private",
				"config %d: shared-context entries differ from private-context entries: %s",
				i+1, diffSummary(reports[i].Entries, private.Entries))
		}
	}
	again, err := core.IdentifyWithContext(ctx, core.Config4)
	if err != nil {
		c.addf("identify", "repeat config 4: %v", err)
	} else if !slices.Equal(again.Entries, reports[3].Entries) {
		c.addf("shared-vs-private", "config 4 not stable across repeated runs on one context")
	}
}

// checkBTISuperset asserts the byte-level marker scan is an exact no-op
// extension on a fixed-width ISA: same E, same entries.
func (c *checker) checkBTISuperset(ctx *analysis.Context, rep4 *core.Report) {
	opts := core.Config4
	opts.SupersetEndbrScan = true
	sup, err := core.IdentifyWithContext(ctx, opts)
	if err != nil {
		c.addf("identify", "superset scan: %v", err)
		return
	}
	if !slices.Equal(sup.Endbrs, rep4.Endbrs) {
		c.addf("superset-alias", "word-aligned superset scan must equal the sweep on arm64: %s",
			diffSummary(rep4.Endbrs, sup.Endbrs))
	}
	if !slices.Equal(sup.Entries, rep4.Entries) {
		c.addf("superset-subset", "config 4 entries changed under superset scan: %s",
			diffSummary(rep4.Entries, sup.Entries))
	}
}

// checkBTICore asserts the generic arch-dispatched core produces exactly
// the sets of the dedicated bticore reference implementation. This is
// the load-bearing differential of the backend seam: two independent
// codepaths — one reading elfx/analysis/core, one standalone — must
// agree on every address.
func (c *checker) checkBTICore(image []byte, rep4 *core.Report) {
	ref, err := bticore.IdentifyBytes(image)
	if err != nil {
		c.addf("identify", "bticore reference: %v", err)
		return
	}
	if !slices.Equal(ref.Entries, rep4.Entries) {
		c.addf("core-vs-bticore", "entries: %s", diffSummary(ref.Entries, rep4.Entries))
	}
	if !slices.Equal(ref.CallTargets, rep4.CallTargets) {
		c.addf("core-vs-bticore", "call targets: %s", diffSummary(ref.CallTargets, rep4.CallTargets))
	}
	if !slices.Equal(ref.JumpTargets, rep4.JumpTargets) {
		c.addf("core-vs-bticore", "jump targets: %s", diffSummary(ref.JumpTargets, rep4.JumpTargets))
	}
	if !slices.Equal(ref.TailCallTargets, rep4.TailCallTargets) {
		c.addf("core-vs-bticore", "tail-call targets: %s", diffSummary(ref.TailCallTargets, rep4.TailCallTargets))
	}
	if ref.CallPads != len(rep4.Endbrs) {
		c.addf("core-vs-bticore", "call-pad count %d vs %d", len(rep4.Endbrs), ref.CallPads)
	}
}

// checkBTIPadExactness asserts the sweep recovered exactly the pads the
// synthesizer emitted: E is the call-accepting (func-entry role) sites,
// and the excluded BTI j set is the jump-target-role sites.
func (c *checker) checkBTIPadExactness(ctx *analysis.Context, rep1 *core.Report, gt *groundtruth.GT) {
	var wantE, wantJ []uint64
	for _, e := range gt.Endbrs {
		if e.Role == groundtruth.RoleJumpTarget {
			wantJ = append(wantJ, e.Addr)
		} else {
			wantE = append(wantE, e.Addr)
		}
	}
	slices.Sort(wantE)
	slices.Sort(wantJ)
	if !slices.Equal(rep1.Endbrs, wantE) {
		c.addf("endbr-exact", "swept E != ground-truth call pads: %s", diffSummary(wantE, rep1.Endbrs))
	}
	sw := ctx.Sweep()
	if !slices.Equal(sw.JumpPads, wantJ) {
		c.addf("jumppad-exact", "swept BTI j set != ground-truth jump-target sites: %s",
			diffSummary(wantJ, sw.JumpPads))
	}
	for _, j := range sw.JumpPads {
		if member(rep1.Endbrs, j) {
			c.addf("jumppad-exact", "BTI j pad %#x leaked into E", j)
		}
	}
}

// checkBTIEntrySets asserts exactness modulo the documented failure
// classes, as on x86 — except the ARM ground truth has no .cold/.part
// fragments and no non-entry call pads, so configurations ①②④ must be
// exact over the must-find set with zero unexplained extras, and only
// configuration ③'s direct-jump targets are an allowed FP class.
func (c *checker) checkBTIEntrySets(reports []*core.Report, gt *groundtruth.GT) {
	truth := gt.Entries()
	callTargets := make(map[uint64]bool, len(reports[0].CallTargets))
	for _, t := range reports[0].CallTargets {
		callTargets[t] = true
	}
	var must []uint64
	for _, f := range gt.Funcs {
		if f.HasEndbr || callTargets[f.Addr] {
			must = append(must, f.Addr)
		}
	}
	jumpTargets := make(map[uint64]bool, len(reports[2].JumpTargets))
	for _, t := range reports[2].JumpTargets {
		jumpTargets[t] = true
	}
	checkOne := func(label string, entries []uint64, extraFP map[uint64]bool) {
		for _, addr := range must {
			if !member(entries, addr) {
				c.addf("must-find", "%s: ground-truth entry %#x (pad or call target) missed", label, addr)
			}
		}
		for _, e := range entries {
			if truth[e] {
				continue
			}
			if extraFP != nil && extraFP[e] {
				continue
			}
			c.addf("fp-class", "%s: spurious entry %#x has no documented FP class", label, e)
		}
	}
	checkOne("config 1", reports[0].Entries, nil)
	checkOne("config 2", reports[1].Entries, nil)
	checkOne("config 3", reports[2].Entries, jumpTargets)
	checkOne("config 4", reports[3].Entries, nil)
}
