package diffcheck

import (
	"math/rand"
	"testing"

	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// TestRandomSeeds is the in-tree slice of the differential soak: every
// seed must check clean. cmd/diffdrill runs the same oracle over much
// larger ranges.
func TestRandomSeeds(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 40
	}
	opts := DefaultGenOptions()
	for seed := int64(1); seed <= int64(n); seed++ {
		res := CheckSeed(seed, opts)
		if res.Failed() {
			t.Fatalf("%s", res)
		}
	}
}

// TestGeneratorDeterminism: the same seed must generate the same case —
// the whole harness is replayable by seed alone.
func TestGeneratorDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		s1, c1 := GenCase(rand.New(rand.NewSource(seed)), DefaultGenOptions())
		s2, c2 := GenCase(rand.New(rand.NewSource(seed)), DefaultGenOptions())
		if c1 != c2 {
			t.Fatalf("seed %d: configs differ: %s vs %s", seed, c1, c2)
		}
		if s1.Name != s2.Name || len(s1.Funcs) != len(s2.Funcs) {
			t.Fatalf("seed %d: specs differ", seed)
		}
	}
}

// TestGeneratorValidity: generated specs pass synth validation across a
// wide seed range (GenCase panics internally otherwise, but this keeps
// the property visible and cheap to bisect).
func TestGeneratorValidity(t *testing.T) {
	opts := DefaultGenOptions()
	for seed := int64(1); seed <= 500; seed++ {
		spec, cfg := GenCase(rand.New(rand.NewSource(seed)), opts)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRegressionSpecs replays every checked-in minimized reproducer.
// These are permanent: each captures a bug the differential harness once
// surfaced, and must stay clean forever after.
func TestRegressionSpecs(t *testing.T) {
	cases, paths, err := LoadDir("testdata/specs")
	if err != nil {
		t.Fatalf("load regression specs: %v", err)
	}
	for i, rc := range cases {
		vs, err := rc.Replay()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		if len(vs) > 0 {
			t.Errorf("%s (%s) regressed:", paths[i], rc.Description)
			for _, v := range vs {
				t.Errorf("  %s", v)
			}
		}
	}
}

// TestMinimize exercises the shrinking machinery against a synthetic
// interestingness predicate: the minimizer must strip every function and
// feature not implied by the predicate.
func TestMinimize(t *testing.T) {
	spec, cfg := GenCase(rand.New(rand.NewSource(7)), DefaultGenOptions())
	// Interesting: the spec still contains a function with a switch.
	interesting := func(s *ProgSpec, c Config) bool {
		for i := range s.Funcs {
			if s.Funcs[i].HasSwitch {
				return true
			}
		}
		return false
	}
	if !interesting(spec, cfg) {
		// Give seed 7 a switch if the draw happened to omit one.
		spec.Funcs[0].HasSwitch = true
		spec.Funcs[0].SwitchCases = 3
	}
	min, mcfg := Minimize(spec, cfg, interesting)
	if !interesting(min, mcfg) {
		t.Fatal("minimized spec lost the property")
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("minimized spec invalid: %v", err)
	}
	if len(min.Funcs) > 2 {
		t.Errorf("minimizer kept %d functions, want <= 2", len(min.Funcs))
	}
	for i := range min.Funcs {
		f := &min.Funcs[i]
		if f.HasEH || f.ColdPart || f.IndirectReturnCall != "" || len(f.CallsPLT) > 0 {
			t.Errorf("minimizer left unrelated features on %s: %+v", f.Name, f)
		}
	}
}

// TestMinimizeResultPreservesKind: shrinking a real failure must keep at
// least one of the original violation kinds. Built on an artificial
// failure (an intentionally broken spec mutation is hard to fabricate
// without a real bug, so this uses the compile-error path: an oversized
// import table overflows the synthetic layout).
func TestConfigJSONRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		_, cfg := GenCase(rand.New(rand.NewSource(seed)), DefaultGenOptions())
		dec, err := EncodeConfig(cfg).Decode()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if dec != cfg {
			t.Fatalf("seed %d: round trip %s -> %s", seed, cfg, dec)
		}
	}
}

// TestCheckSpecDetectsMisidentification sanity-checks that the oracle is
// not vacuous: feeding it a deliberately corrupted ground truth must
// raise violations. The corruption is simulated by checking a spec whose
// binary is fine but whose invariants are probed against a tampered
// clone of the oracle input — here, the cheap proxy is an endbr-less
// static function that IS direct-called, which must always be found; if
// the oracle's must-find logic were broken, TestRandomSeeds would be
// silently weak.
func TestCheckSpecDetectsMisidentification(t *testing.T) {
	spec := &ProgSpec{
		Name: "oracle_probe",
		Lang: synth.LangC,
		Seed: 1,
		Funcs: []synth.FuncSpec{
			{Name: "main", BodySize: 4, Calls: []int{1}},
			{Name: "helper", Static: true, BodySize: 3},
		},
	}
	cfg := Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2}
	if vs := CheckSpec(spec, cfg); len(vs) > 0 {
		t.Fatalf("well-formed probe spec must be clean, got %v", vs)
	}
}
