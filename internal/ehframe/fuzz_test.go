package ehframe

import "testing"

// fuzzSectionVA mirrors the .eh_frame placement the synthesizer uses.
const fuzzSectionVA = 0x402000

// buildSeed produces a well-formed .eh_frame section to anchor the fuzz
// corpus on the valid-input region.
func buildSeed(ptrSize int, withLSDA bool) []byte {
	b := NewBuilder(fuzzSectionVA, ptrSize)
	b.AddFDE(0x401000, 0x40, false, 0)
	b.AddFDE(0x401040, 0x80, withLSDA, 0x403000)
	b.AddFDE(0x4010c0, 0x10, false, 0)
	return b.Bytes()
}

// buildUnknownAugSeed assembles a section mixing a CIE with an unknown
// augmentation character ("zQR", FDEs undecodable) and a healthy "zR"
// CIE with one FDE — the shape the skip-and-warn path degrades on.
func buildUnknownAugSeed() []byte {
	sec := buildCIE("zQR", []byte{0xAA, EncUData4})
	sec = appendFDE(sec, 0, []byte{0x00, 0x90, 0x04, 0x08, 0x30, 0x00, 0x00, 0x00, 0x00})
	goodOff := len(sec)
	sec = append(sec, buildCIE("zR", []byte{EncUData4})...)
	sec = appendFDE(sec, goodOff, []byte{0x00, 0xa0, 0x04, 0x08, 0x50, 0x00, 0x00, 0x00, 0x00})
	return terminate(sec)
}

// FuzzParse feeds arbitrary bytes to the .eh_frame parser. Malformed
// input must produce an error or a truncated FDE list — never a panic —
// and any FDE that is returned must have a sane range.
func FuzzParse(f *testing.F) {
	f.Add(buildSeed(8, false), 8)
	f.Add(buildSeed(8, true), 8)
	f.Add(buildSeed(4, true), 4)
	f.Add([]byte{}, 8)
	f.Add([]byte{0, 0, 0, 0}, 8)                            // lone terminator
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5}, 8) // bogus length
	// Unknown augmentation characters: degraded parse, not an error.
	f.Add(terminate(buildCIE("zQ", []byte{0x00})), 8)
	f.Add(buildUnknownAugSeed(), 4)
	f.Fuzz(func(t *testing.T, data []byte, ptrSize int) {
		if ptrSize != 4 && ptrSize != 8 {
			ptrSize = 8
		}
		fdes, err := Parse(data, fuzzSectionVA, ptrSize)
		if err != nil {
			return
		}
		for _, fde := range fdes {
			if fde.PCBegin+fde.PCRange < fde.PCBegin {
				t.Fatalf("FDE range overflows: begin %#x range %#x (input %x)", fde.PCBegin, fde.PCRange, data)
			}
			if !fde.HasLSDA && fde.LSDA != 0 {
				t.Fatalf("LSDA address set without HasLSDA (input %x)", data)
			}
		}
		// Parsing is deterministic.
		again, err2 := Parse(data, fuzzSectionVA, ptrSize)
		if err2 != nil || len(again) != len(fdes) {
			t.Fatalf("re-parse diverged: %d FDEs/%v vs %d FDEs", len(again), err2, len(fdes))
		}
	})
}

// FuzzParseBuilderMutations starts from builder output and lets the
// fuzzer corrupt it: the parser sees near-valid structures, the hardest
// region for length-field and pointer-encoding handling.
func FuzzParseBuilderMutations(f *testing.F) {
	base := buildSeed(8, true)
	f.Add(base, 0, byte(0))
	f.Add(base, 4, byte(0xff))
	f.Add(base, len(base)/2, byte(0x80))
	f.Fuzz(func(t *testing.T, data []byte, pos int, val byte) {
		mutated := append([]byte(nil), data...)
		if len(mutated) > 0 {
			mutated[((pos%len(mutated))+len(mutated))%len(mutated)] = val
		}
		// Must not panic; any error is acceptable.
		_, _ = Parse(mutated, fuzzSectionVA, 8)
		_, _ = Parse(mutated, fuzzSectionVA, 4)
	})
}
