package ehframe

import (
	"encoding/binary"
	"fmt"

	"github.com/funseeker/funseeker/internal/leb128"
)

// Builder constructs a .eh_frame section image. The section's virtual
// address must be known up front because GCC/Clang-style FDEs use
// pcrel|sdata4 pointers.
type Builder struct {
	sectionVA uint64
	ptrSize   int
	buf       []byte
	cieOff    map[string]uint64 // augmentation -> CIE offset
}

// NewBuilder returns a Builder for a section that will be mapped at
// sectionVA on an architecture with the given pointer size.
func NewBuilder(sectionVA uint64, ptrSize int) *Builder {
	return &Builder{
		sectionVA: sectionVA,
		ptrSize:   ptrSize,
		cieOff:    make(map[string]uint64),
	}
}

// cie returns the offset of the CIE with the given augmentation,
// emitting it on first use. aug is "zR" for plain frames or "zPLR" for
// frames with a personality routine and LSDA pointers.
func (b *Builder) cie(aug string) uint64 {
	if off, ok := b.cieOff[aug]; ok {
		return off
	}
	off := uint64(len(b.buf))

	var body []byte
	body = append(body, 0, 0, 0, 0) // CIE id = 0
	body = append(body, 1)          // version
	body = append(body, aug...)
	body = append(body, 0)
	body = leb128.AppendUleb(body, 1)                     // code alignment
	body = leb128.AppendSleb(body, -int64(b.ptrSize))     // data alignment
	body = append(body, returnAddressRegister(b.ptrSize)) // RA register
	var augData []byte
	for _, c := range aug {
		switch c {
		case 'z':
		case 'P':
			// Personality: pcrel|sdata4 pointer; the synthetic runtime
			// places the personality at a fixed fake offset of 0 from
			// the field, which parsers skip anyway.
			augData = append(augData, EncPCRel|EncSData4)
			augData = append(augData, 0, 0, 0, 0)
		case 'L':
			augData = append(augData, EncPCRel|EncSData4)
		case 'R':
			augData = append(augData, EncPCRel|EncSData4)
		}
	}
	body = leb128.AppendUleb(body, uint64(len(augData)))
	body = append(body, augData...)
	// Initial CFI: def_cfa sp, ptrSize; offset ra, 1.
	body = append(body, cfaDefCFA)
	body = leb128.AppendUleb(body, uint64(cfaSPRegister(b.ptrSize)))
	body = leb128.AppendUleb(body, uint64(b.ptrSize))
	body = append(body, opOffset|returnAddressRegister(b.ptrSize))
	body = leb128.AppendUleb(body, 1)

	b.appendEntry(body)
	b.cieOff[aug] = off
	return off
}

// returnAddressRegister is the DWARF register number of the return
// address column: 16 (RA) on x86-64, 8 (EIP) on x86.
func returnAddressRegister(ptrSize int) byte {
	if ptrSize == 8 {
		return 16
	}
	return 8
}

// cfaSPRegister is the DWARF number of the stack pointer: 7 on x86-64
// (RSP), 4 on x86 (ESP).
func cfaSPRegister(ptrSize int) byte {
	if ptrSize == 8 {
		return 7
	}
	return 4
}

// AddFDE appends an FDE covering [pcBegin, pcBegin+pcRange). When
// hasLSDA is true the FDE references the LSDA at the given address and a
// "zPLR" CIE is used, matching how compilers segregate EH-carrying
// functions.
func (b *Builder) AddFDE(pcBegin, pcRange uint64, hasLSDA bool, lsdaVA uint64) {
	aug := "zR"
	if hasLSDA {
		aug = "zPLR"
	}
	cieOff := b.cie(aug)

	entryOff := uint64(len(b.buf)) // offset of the length field
	var body []byte
	// CIE pointer: distance from this field back to the CIE.
	ciePtr := uint32(entryOff + 4 - cieOff)
	body = binary.LittleEndian.AppendUint32(body, ciePtr)

	// pc begin: pcrel sdata4 relative to the field's VA. The field sits
	// at entryOff + 4 (length) + 4 (cie pointer) within the section.
	fieldVA := b.sectionVA + entryOff + 8
	body = binary.LittleEndian.AppendUint32(body, uint32(int32(int64(pcBegin)-int64(fieldVA))))
	body = binary.LittleEndian.AppendUint32(body, uint32(pcRange))

	if hasLSDA {
		// Augmentation data: 4-byte pcrel sdata4 LSDA pointer.
		body = leb128.AppendUleb(body, 4)
		lsdaFieldVA := b.sectionVA + entryOff + 4 + uint64(len(body))
		body = binary.LittleEndian.AppendUint32(body, uint32(int32(int64(lsdaVA)-int64(lsdaFieldVA))))
	} else {
		body = leb128.AppendUleb(body, 0)
	}
	// A couple of CFI nops emulate the advance/offset stream compilers
	// emit; parsers ignore them for function identification.
	body = append(body, cfaNop, cfaNop, cfaNop)
	b.appendEntry(body)
}

// appendEntry writes a length-prefixed entry, padding the body to the
// pointer-size alignment as the DWARF EH format requires.
func (b *Builder) appendEntry(body []byte) {
	for (len(body)+4)%b.ptrSize != 0 {
		body = append(body, cfaNop)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(body)))
	b.buf = append(b.buf, body...)
}

// Bytes finalizes the section with the 4-byte zero terminator.
func (b *Builder) Bytes() []byte {
	out := make([]byte, len(b.buf), len(b.buf)+4)
	copy(out, b.buf)
	return append(out, 0, 0, 0, 0)
}

// Size reports the final section size including the terminator.
func (b *Builder) Size() int { return len(b.buf) + 4 }

// EstimateFDESize returns the on-disk size of one FDE with or without an
// LSDA pointer, enabling section-size precomputation during layout.
func EstimateFDESize(ptrSize int, hasLSDA bool) int {
	bodyLen := 4 + 4 + 4 + 1 + 3 // cie ptr + pcbegin + pcrange + auglen + nops
	if hasLSDA {
		bodyLen += 4
	}
	for (bodyLen+4)%ptrSize != 0 {
		bodyLen++
	}
	return 4 + bodyLen
}

// Validate re-parses the built section, returning an error when the
// builder produced something the parser rejects. Intended for tests and
// the synthetic compiler's self-checks.
func (b *Builder) Validate() error {
	fdes, err := Parse(b.Bytes(), b.sectionVA, b.ptrSize)
	if err != nil {
		return fmt.Errorf("ehframe: self-validation failed: %w", err)
	}
	_ = fdes
	return nil
}
