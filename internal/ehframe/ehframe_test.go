package ehframe

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildParseRoundtrip64(t *testing.T) {
	const sectionVA = 0x4a0000
	b := NewBuilder(sectionVA, 8)
	b.AddFDE(0x401000, 0x40, false, 0)
	b.AddFDE(0x401040, 0x100, true, 0x480010)
	b.AddFDE(0x401140, 0x8, false, 0)
	data := b.Bytes()

	fdes, err := Parse(data, sectionVA, 8)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(fdes) != 3 {
		t.Fatalf("got %d FDEs, want 3", len(fdes))
	}
	want := []FDE{
		{PCBegin: 0x401000, PCRange: 0x40},
		{PCBegin: 0x401040, PCRange: 0x100, LSDA: 0x480010, HasLSDA: true},
		{PCBegin: 0x401140, PCRange: 0x8},
	}
	for i, w := range want {
		if fdes[i] != w {
			t.Errorf("FDE %d = %+v, want %+v", i, fdes[i], w)
		}
	}
}

func TestBuildParseRoundtrip32(t *testing.T) {
	const sectionVA = 0x804c000
	b := NewBuilder(sectionVA, 4)
	b.AddFDE(0x8049000, 0x30, false, 0)
	b.AddFDE(0x8049030, 0x200, true, 0x804b100)
	data := b.Bytes()
	fdes, err := Parse(data, sectionVA, 4)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(fdes) != 2 {
		t.Fatalf("got %d FDEs, want 2", len(fdes))
	}
	if fdes[0].PCBegin != 0x8049000 || fdes[0].PCRange != 0x30 {
		t.Errorf("FDE 0 = %+v", fdes[0])
	}
	if !fdes[1].HasLSDA || fdes[1].LSDA != 0x804b100 {
		t.Errorf("FDE 1 = %+v", fdes[1])
	}
}

func TestCIESharing(t *testing.T) {
	b := NewBuilder(0x1000, 8)
	for i := 0; i < 10; i++ {
		b.AddFDE(uint64(0x2000+i*0x100), 0x80, false, 0)
	}
	// All ten plain FDEs share one "zR" CIE. Count CIEs by walking
	// entries: an entry whose ID field is zero is a CIE.
	data := b.Bytes()
	cies := 0
	off := 0
	for off+4 <= len(data) {
		length := int(binary.LittleEndian.Uint32(data[off:]))
		if length == 0 {
			break
		}
		if binary.LittleEndian.Uint32(data[off+4:]) == 0 {
			cies++
		}
		off += 4 + length
	}
	if cies != 1 {
		t.Fatalf("got %d CIEs, want 1", cies)
	}
}

func TestMixedCIEs(t *testing.T) {
	b := NewBuilder(0x1000, 8)
	b.AddFDE(0x2000, 0x10, false, 0)
	b.AddFDE(0x2010, 0x10, true, 0x3000)
	b.AddFDE(0x2020, 0x10, false, 0)
	b.AddFDE(0x2030, 0x10, true, 0x3020)
	fdes, err := Parse(b.Bytes(), 0x1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(fdes) != 4 {
		t.Fatalf("got %d FDEs", len(fdes))
	}
	if fdes[0].HasLSDA || !fdes[1].HasLSDA || fdes[2].HasLSDA || !fdes[3].HasLSDA {
		t.Fatalf("LSDA flags wrong: %+v", fdes)
	}
	if fdes[3].LSDA != 0x3020 {
		t.Fatalf("FDE 3 LSDA = %#x", fdes[3].LSDA)
	}
}

func TestEmptySection(t *testing.T) {
	b := NewBuilder(0, 8)
	fdes, err := Parse(b.Bytes(), 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(fdes) != 0 {
		t.Fatalf("got %d FDEs from empty section", len(fdes))
	}
	// Entirely empty input is also fine: no terminator needed.
	fdes, err = Parse(nil, 0, 8)
	if err != nil || len(fdes) != 0 {
		t.Fatalf("nil input: %v, %d", err, len(fdes))
	}
}

func TestParseErrors(t *testing.T) {
	t.Run("overrun-length", func(t *testing.T) {
		data := []byte{0xFF, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}
		if _, err := Parse(data, 0, 8); err == nil {
			t.Fatal("want error for overrunning entry")
		}
	})
	t.Run("unknown-cie", func(t *testing.T) {
		// A lone FDE pointing at a CIE that does not exist.
		var data []byte
		body := []byte{0x99, 0x00, 0x00, 0x00, 1, 2, 3, 4, 5, 6, 7, 8, 0}
		data = binary.LittleEndian.AppendUint32(data, uint32(len(body)))
		data = append(data, body...)
		data = append(data, 0, 0, 0, 0)
		if _, err := Parse(data, 0, 8); err == nil {
			t.Fatal("want error for unknown CIE reference")
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		body := []byte{0, 0, 0, 0, 99 /* version */, 'z', 'R', 0}
		var data []byte
		data = binary.LittleEndian.AppendUint32(data, uint32(len(body)))
		data = append(data, body...)
		data = append(data, 0, 0, 0, 0)
		if _, err := Parse(data, 0, 8); err == nil {
			t.Fatal("want error for CIE version 99")
		}
	})
	t.Run("bad-ptr-size", func(t *testing.T) {
		if _, err := Parse(nil, 0, 2); err == nil {
			t.Fatal("want error for pointer size 2")
		}
	})
	t.Run("dwarf64", func(t *testing.T) {
		data := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
		if _, err := Parse(data, 0, 8); err == nil {
			t.Fatal("want error for 64-bit DWARF")
		}
	})
}

func TestEstimateFDESize(t *testing.T) {
	for _, ptrSize := range []int{4, 8} {
		for _, hasLSDA := range []bool{false, true} {
			b := NewBuilder(0x1000, ptrSize)
			before := len(b.Bytes()) - 4 // exclude terminator
			b.AddFDE(0x2000, 0x10, hasLSDA, 0x3000)
			// Skip the CIE the first FDE created: measure a second FDE.
			mid := len(b.Bytes()) - 4
			b.AddFDE(0x2010, 0x10, hasLSDA, 0x3010)
			after := len(b.Bytes()) - 4
			got := after - mid
			want := EstimateFDESize(ptrSize, hasLSDA)
			if got != want {
				t.Errorf("ptrSize=%d lsda=%v: FDE size %d, estimate %d", ptrSize, hasLSDA, got, want)
			}
			_ = before
		}
	}
}

func TestValidate(t *testing.T) {
	b := NewBuilder(0x5000, 8)
	b.AddFDE(0x401000, 0x40, true, 0x6000)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRoundtripQuick drives the builder/parser pair with randomized
// function layouts.
func TestRoundtripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sectionVA := uint64(0x400000 + rng.Intn(1<<20)&^7)
		ptrSize := 8
		if rng.Intn(2) == 0 {
			ptrSize = 4
		}
		b := NewBuilder(sectionVA, ptrSize)
		type rec struct {
			begin, rng2, lsda uint64
			has               bool
		}
		n := 1 + rng.Intn(20)
		recs := make([]rec, 0, n)
		pc := uint64(0x401000)
		for i := 0; i < n; i++ {
			size := uint64(16 + rng.Intn(4096))
			has := rng.Intn(3) == 0
			lsda := uint64(0)
			if has {
				lsda = sectionVA - uint64(0x1000+rng.Intn(0x800))
			}
			recs = append(recs, rec{begin: pc, rng2: size, lsda: lsda, has: has})
			b.AddFDE(pc, size, has, lsda)
			pc += size + uint64(rng.Intn(64))
		}
		fdes, err := Parse(b.Bytes(), sectionVA, ptrSize)
		if err != nil || len(fdes) != n {
			return false
		}
		for i, r := range recs {
			f := fdes[i]
			if f.PCBegin != r.begin || f.PCRange != r.rng2 || f.HasLSDA != r.has {
				return false
			}
			if r.has && f.LSDA != r.lsda {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
