// Package ehframe encodes and parses the DWARF-based .eh_frame section
// used for stack unwinding and C++ exception handling.
//
// The section is a sequence of length-prefixed entries: CIEs (Common
// Information Entries) carrying shared configuration — notably the pointer
// encodings declared by the augmentation string — and FDEs (Frame
// Description Entries), each describing one contiguous code range
// (pc begin / pc range) with an optional pointer to the range's LSDA in
// .gcc_except_table.
//
// Both a builder (used by the synthetic compiler) and a parser (used by
// the FETCH- and Ghidra-style baselines and by FunSeeker's landing-pad
// filter) are provided. The builder emits the encodings GCC and Clang use
// in practice: augmentation "zR" (or "zPLR" when a personality routine
// and LSDA are present) with pcrel|sdata4 pointers.
package ehframe

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/funseeker/funseeker/internal/leb128"
)

// DWARF exception-handling pointer-encoding constants (DW_EH_PE_*).
const (
	// EncAbsPtr is an absolute pointer of the natural word size.
	EncAbsPtr byte = 0x00
	// EncULEB128 is an unsigned LEB128 value.
	EncULEB128 byte = 0x01
	// EncUData2 is an unsigned 2-byte value.
	EncUData2 byte = 0x02
	// EncUData4 is an unsigned 4-byte value.
	EncUData4 byte = 0x03
	// EncUData8 is an unsigned 8-byte value.
	EncUData8 byte = 0x04
	// EncSLEB128 is a signed LEB128 value.
	EncSLEB128 byte = 0x09
	// EncSData2 is a signed 2-byte value.
	EncSData2 byte = 0x0A
	// EncSData4 is a signed 4-byte value.
	EncSData4 byte = 0x0B
	// EncSData8 is a signed 8-byte value.
	EncSData8 byte = 0x0C
	// EncPCRel marks a value relative to the address of the field itself.
	EncPCRel byte = 0x10
	// EncDataRel marks a value relative to the section start.
	EncDataRel byte = 0x30
	// EncIndirect marks a pointer to the value rather than the value.
	EncIndirect byte = 0x80
	// EncOmit marks an omitted field.
	EncOmit byte = 0xFF
)

// Common DWARF CFI opcodes used in initial/FDE instruction streams.
const (
	cfaNop            byte = 0x00
	cfaDefCFA         byte = 0x0C
	cfaDefCFAOffset   byte = 0x0E
	cfaAdvanceLoc4    byte = 0x04
	cfaOffsetExtended byte = 0x05
	opAdvanceLoc      byte = 0x40 // high-2-bits=01 forms
	opOffset          byte = 0x80 // high-2-bits=10 forms
)

// FDE is one parsed Frame Description Entry.
type FDE struct {
	// PCBegin is the absolute start address of the covered code range.
	PCBegin uint64
	// PCRange is the length of the covered range in bytes.
	PCRange uint64
	// LSDA is the absolute address of the range's Language-Specific Data
	// Area; valid when HasLSDA.
	LSDA uint64
	// HasLSDA reports whether the FDE carries an LSDA pointer.
	HasLSDA bool
}

// Errors returned by the parser.
var (
	// ErrMalformed is returned for structurally invalid section data.
	ErrMalformed = errors.New("ehframe: malformed section")
	// ErrUnsupportedEncoding is returned for pointer encodings the parser
	// does not implement.
	ErrUnsupportedEncoding = errors.New("ehframe: unsupported pointer encoding")
)

// cieInfo is the subset of CIE state needed to decode its FDEs.
type cieInfo struct {
	fdeEnc  byte
	lsdaEnc byte
	hasL    bool
	// skipFDEs marks a CIE whose FDE pointer encoding could not be
	// determined (an unrecognized augmentation character appeared before
	// 'R'): its FDEs cannot be decoded and are dropped with a warning.
	skipFDEs bool
}

// Parse decodes every FDE in the section. sectionVA is the virtual address
// the section is mapped at (needed for pcrel pointers) and ptrSize is the
// architecture pointer size in bytes (4 or 8).
//
// Unrecognized CIE augmentation characters do not fail the parse: the 'z'
// augmentation-data length makes unknown trailing entries skippable, so
// the affected CIE is degraded (see ParseWithWarnings) rather than
// dropping every FDE in the section.
func Parse(data []byte, sectionVA uint64, ptrSize int) ([]FDE, error) {
	fdes, _, err := ParseWithWarnings(data, sectionVA, ptrSize)
	return fdes, err
}

// ParseWithWarnings is Parse plus the list of non-fatal degradations the
// parser applied. Today these are all CIE-augmentation downgrades: a CIE
// with an augmentation character the parser does not recognize stops
// interpreting its augmentation data there (the 'z' length field bounds
// it), and — when the unknown character precedes 'R', leaving the FDE
// pointer encoding unknowable — that one CIE's FDEs are skipped instead
// of failing the whole section. A well-formed GCC/Clang section produces
// no warnings.
func ParseWithWarnings(data []byte, sectionVA uint64, ptrSize int) ([]FDE, []string, error) {
	if ptrSize != 4 && ptrSize != 8 {
		return nil, nil, fmt.Errorf("ehframe: bad pointer size %d", ptrSize)
	}
	var fdes []FDE
	var warns []string
	cies := make(map[uint64]cieInfo)
	skipped := make(map[uint64]int) // CIE offset -> FDEs dropped
	var skippedOrder []uint64       // first-skip order, for deterministic warnings
	off := uint64(0)
	for off+4 <= uint64(len(data)) {
		length := uint64(binary.LittleEndian.Uint32(data[off:]))
		if length == 0 {
			break // terminator
		}
		if length == 0xFFFFFFFF {
			return nil, warns, fmt.Errorf("%w: 64-bit DWARF length not supported", ErrUnsupportedEncoding)
		}
		entryStart := off + 4
		entryEnd := entryStart + length
		if entryEnd > uint64(len(data)) {
			return nil, warns, fmt.Errorf("%w: entry at %#x overruns section", ErrMalformed, off)
		}
		body := data[entryStart:entryEnd]
		if len(body) < 4 {
			return nil, warns, fmt.Errorf("%w: entry at %#x too short", ErrMalformed, off)
		}
		id := binary.LittleEndian.Uint32(body)
		if id == 0 {
			info, warn, err := parseCIE(body[4:])
			if err != nil {
				return nil, warns, fmt.Errorf("CIE at %#x: %w", off, err)
			}
			if warn != "" {
				warns = append(warns, fmt.Sprintf("CIE at %#x: %s", off, warn))
			}
			cies[off] = info
		} else {
			ciePos := entryStart - uint64(id)
			info, ok := cies[ciePos]
			if !ok {
				return nil, warns, fmt.Errorf("%w: FDE at %#x references unknown CIE %#x", ErrMalformed, off, ciePos)
			}
			if info.skipFDEs {
				if skipped[ciePos] == 0 {
					skippedOrder = append(skippedOrder, ciePos)
				}
				skipped[ciePos]++
				off = entryEnd
				continue
			}
			fde, err := parseFDE(body[4:], info, sectionVA+entryStart+4, ptrSize)
			if err != nil {
				return nil, warns, fmt.Errorf("FDE at %#x: %w", off, err)
			}
			fdes = append(fdes, fde)
		}
		off = entryEnd
	}
	for _, cieOff := range skippedOrder {
		warns = append(warns, fmt.Sprintf("skipped %d FDE(s) of CIE at %#x: FDE pointer encoding unknown", skipped[cieOff], cieOff))
	}
	return fdes, warns, nil
}

// parseCIE extracts the pointer encodings from a CIE body (after the ID).
// The warning return is non-empty when the CIE parsed but was degraded
// (unknown augmentation character); it is a fragment suitable for
// prefixing with the CIE's section offset.
func parseCIE(body []byte) (cieInfo, string, error) {
	r := leb128.NewReader(body)
	version, err := r.Byte()
	if err != nil {
		return cieInfo{}, "", err
	}
	if version != 1 && version != 3 {
		return cieInfo{}, "", fmt.Errorf("%w: CIE version %d", ErrUnsupportedEncoding, version)
	}
	// Augmentation string, NUL-terminated.
	var aug []byte
	for {
		b, err := r.Byte()
		if err != nil {
			return cieInfo{}, "", err
		}
		if b == 0 {
			break
		}
		aug = append(aug, b)
	}
	if _, err := r.Uleb(); err != nil { // code alignment factor
		return cieInfo{}, "", err
	}
	if _, err := r.Sleb(); err != nil { // data alignment factor
		return cieInfo{}, "", err
	}
	// Return-address register: byte in v1, ULEB in v3.
	if version == 1 {
		if _, err := r.Byte(); err != nil {
			return cieInfo{}, "", err
		}
	} else {
		if _, err := r.Uleb(); err != nil {
			return cieInfo{}, "", err
		}
	}
	info := cieInfo{fdeEnc: EncAbsPtr}
	if len(aug) == 0 || aug[0] != 'z' {
		return info, "", nil
	}
	augLen, err := r.Uleb()
	if err != nil {
		return cieInfo{}, "", err
	}
	augData, err := r.Bytes(int(augLen))
	if err != nil {
		return cieInfo{}, "", err
	}
	ar := leb128.NewReader(augData)
	var warn string
	seenR := false
	for _, c := range aug[1:] {
		if warn != "" {
			break
		}
		switch c {
		case 'R':
			enc, err := ar.Byte()
			if err != nil {
				return cieInfo{}, "", err
			}
			info.fdeEnc = enc
			seenR = true
		case 'L':
			enc, err := ar.Byte()
			if err != nil {
				return cieInfo{}, "", err
			}
			info.lsdaEnc = enc
			info.hasL = true
		case 'P':
			enc, err := ar.Byte()
			if err != nil {
				return cieInfo{}, "", err
			}
			// Skip the personality pointer; its size follows from enc.
			if _, err := skipEncoded(ar, enc); err != nil {
				return cieInfo{}, "", err
			}
		case 'S', 'B':
			// Signal frame / ARM B-key markers: no data.
		default:
			// Unknown augmentation character. Its augmentation-data
			// layout is unknowable, so stop interpreting augData here —
			// the 'z' length already bounded it, so the CIE body is
			// still well framed. Without 'R' the FDE pointer encoding
			// is unknown too, making this CIE's FDEs undecodable.
			warn = fmt.Sprintf("unrecognized augmentation %q in %q, remaining augmentation data ignored", string(c), string(aug))
			if !seenR {
				info.skipFDEs = true
				warn += "; FDE pointer encoding unknown, its FDEs will be skipped"
			}
		}
	}
	return info, warn, nil
}

// parseFDE decodes one FDE body. fieldVA is the virtual address of the
// first byte of the body (the pc-begin field), used for pcrel decoding.
func parseFDE(body []byte, info cieInfo, fieldVA uint64, ptrSize int) (FDE, error) {
	r := leb128.NewReader(body)
	pcBegin, err := readEncoded(r, info.fdeEnc, fieldVA+uint64(r.Offset()), ptrSize)
	if err != nil {
		return FDE{}, err
	}
	// pc-range uses the value format of the encoding without the
	// application (pcrel) bits.
	pcRange, err := readEncoded(r, info.fdeEnc&0x0F, 0, ptrSize)
	if err != nil {
		return FDE{}, err
	}
	// Reject ranges that wrap the address space: every consumer computes
	// the covered end as PCBegin+PCRange, and a wrapped interval would
	// corrupt downstream function-extent logic.
	if pcBegin+pcRange < pcBegin {
		return FDE{}, fmt.Errorf("%w: pc range %#x at %#x wraps address space", ErrMalformed, pcRange, pcBegin)
	}
	fde := FDE{PCBegin: pcBegin, PCRange: pcRange}
	if info.hasL {
		augLen, err := r.Uleb()
		if err != nil {
			return FDE{}, err
		}
		if info.lsdaEnc != EncOmit && augLen > 0 {
			lsda, err := readEncoded(r, info.lsdaEnc, fieldVA+uint64(r.Offset()), ptrSize)
			if err != nil {
				return FDE{}, err
			}
			if lsda != 0 {
				fde.LSDA = lsda
				fde.HasLSDA = true
			}
		} else if err := r.Skip(int(augLen)); err != nil {
			return FDE{}, err
		}
	}
	return fde, nil
}

// readEncoded reads one DW_EH_PE-encoded pointer. fieldVA is the virtual
// address of the field (for pcrel application).
func readEncoded(r *leb128.Reader, enc byte, fieldVA uint64, ptrSize int) (uint64, error) {
	if enc == EncOmit {
		return 0, nil
	}
	var value uint64
	format := enc & 0x0F
	switch format {
	case EncAbsPtr:
		b, err := r.Bytes(ptrSize)
		if err != nil {
			return 0, err
		}
		if ptrSize == 8 {
			value = binary.LittleEndian.Uint64(b)
		} else {
			value = uint64(binary.LittleEndian.Uint32(b))
		}
	case EncUData2:
		b, err := r.Bytes(2)
		if err != nil {
			return 0, err
		}
		value = uint64(binary.LittleEndian.Uint16(b))
	case EncUData4:
		b, err := r.Bytes(4)
		if err != nil {
			return 0, err
		}
		value = uint64(binary.LittleEndian.Uint32(b))
	case EncUData8, EncSData8:
		b, err := r.Bytes(8)
		if err != nil {
			return 0, err
		}
		value = binary.LittleEndian.Uint64(b)
	case EncSData2:
		b, err := r.Bytes(2)
		if err != nil {
			return 0, err
		}
		value = uint64(int64(int16(binary.LittleEndian.Uint16(b))))
	case EncSData4:
		b, err := r.Bytes(4)
		if err != nil {
			return 0, err
		}
		value = uint64(int64(int32(binary.LittleEndian.Uint32(b))))
	case EncULEB128:
		v, err := r.Uleb()
		if err != nil {
			return 0, err
		}
		value = v
	case EncSLEB128:
		v, err := r.Sleb()
		if err != nil {
			return 0, err
		}
		value = uint64(v)
	default:
		return 0, fmt.Errorf("%w: format %#x", ErrUnsupportedEncoding, format)
	}
	switch enc & 0x70 {
	case 0: // absolute
	case EncPCRel:
		value += fieldVA
	default:
		return 0, fmt.Errorf("%w: application %#x", ErrUnsupportedEncoding, enc&0x70)
	}
	// The indirect bit (0x80) dereferences through memory; the synthetic
	// toolchain never emits it for FDE/LSDA pointers.
	if enc&EncIndirect != 0 {
		return 0, fmt.Errorf("%w: indirect pointers", ErrUnsupportedEncoding)
	}
	return value, nil
}

// skipEncoded advances past one encoded pointer without interpreting it.
func skipEncoded(r *leb128.Reader, enc byte) (int, error) {
	format := enc & 0x0F
	switch format {
	case EncAbsPtr, EncUData8, EncSData8:
		return 8, r.Skip(8)
	case EncUData2, EncSData2:
		return 2, r.Skip(2)
	case EncUData4, EncSData4:
		return 4, r.Skip(4)
	case EncULEB128:
		_, err := r.Uleb()
		return 0, err
	case EncSLEB128:
		_, err := r.Sleb()
		return 0, err
	default:
		return 0, fmt.Errorf("%w: format %#x", ErrUnsupportedEncoding, format)
	}
}
